package canely

import (
	"fmt"
	"time"

	"canely/internal/can"
	"canely/internal/fault"
	"canely/internal/gateway"
	"canely/internal/replay"
	"canely/internal/sim"
	"canely/internal/stack"
)

// FederationConfig parameterizes a simulated multi-segment CANELy
// federation: S independent segment buses, each running the full
// single-segment protocol stack of this package, bridged by gateways over
// one backbone bus that carries the hierarchical membership digests
// (internal/federation) and whatever traffic the gateways' filter tables
// admit.
type FederationConfig struct {
	// Node is the per-segment parameterization: substrate, bit rate and the
	// protocol timing every node and every gateway member stack uses.
	// Node.Script, stochastic injection and DualMedia are ignored here —
	// federation faults are scripted through SegmentScript/BackboneScript.
	Node Config

	// Segments is the number of segments (1..32 with redundant gateways,
	// 1..64 without: segment ids and gateway ids live in NodeSet space).
	Segments int
	// NodesPerSegment is the number of plain nodes per segment (ids 0..n-1
	// inside the segment; at most 60, ids 61/62 belong to the gateways).
	NodesPerSegment int
	// RedundantGateways attaches a second, backup gateway to every segment.
	// The backup's digests stay leader-suppressed while the primary lives,
	// and take over within 2*Tann of its failure.
	RedundantGateways bool

	// Tann and Tstale parameterize the federation layer (federation.Config);
	// zero values default to 10ms / 40ms.
	Tann   time.Duration
	Tstale time.Duration
	// Queue and Latency parameterize the gateways' store-and-forward stage.
	Queue   int
	Latency time.Duration

	// SegmentScript optionally injects faults on every segment medium. The
	// single (typically stateful) injector is shared across all segment
	// media behind per-medium fault.Tag stamps, so rules scope to segments
	// via Match.Segments.
	SegmentScript Injector
	// BackboneScript optionally injects faults on the backbone medium,
	// behind fault.TagDigests: digest transmissions arrive tagged with the
	// segment they summarize, so a Match.Segments rule partitions one
	// segment off the backbone (and Sender-scoped CrashSenders rules crash
	// one gateway's backbone port).
	BackboneScript Injector

	// SegmentHooks, when set, supplies the layer-boundary hooks for one
	// segment's stacks (plain nodes and gateway member links), overriding
	// Node.Hooks. Node ids repeat across segments, so observers that need
	// segment-scoped logs (the equivalence harness) hook per segment.
	SegmentHooks func(seg can.NodeID) *Hooks

	// RecordFed captures every gateway's federation event/command streams
	// into a log retrievable with Federation.FedLog (replay.Verify-able).
	RecordFed bool
}

// DefaultFederationConfig returns a 4-segment, 4-nodes-per-segment
// federation over the default single-segment parameterization.
func DefaultFederationConfig() FederationConfig {
	return FederationConfig{
		Node:            DefaultConfig(),
		Segments:        4,
		NodesPerSegment: 4,
		Tann:            10 * time.Millisecond,
		Tstale:          40 * time.Millisecond,
	}
}

// Local member ids of the gateways inside each segment. Plain nodes use
// 0..NodesPerSegment-1, so the gateways sit at the top of the id space
// (lowest bus priority for their segment-local protocol traffic).
const (
	primaryGatewayMember = can.NodeID(62)
	backupGatewayMember  = can.NodeID(61)
)

// Federation is a simulated multi-segment CANELy system. Like Network it
// is single-goroutine and, for a given configuration and scripts, exactly
// deterministic on either substrate.
type Federation struct {
	cfg      FederationConfig
	sched    *sim.Scheduler
	backbone stack.Medium
	segMedia []stack.Medium
	nodes    [][]*stack.Stack     // [segment][node]
	gws      [][]*gateway.Gateway // [segment][0=primary,1=backup]
	fedLog   *replay.Log
}

// gatewayID is the federation-wide identity of a segment's idx-th gateway:
// the digest source, the suppression tiebreaker (primary below backup) and
// the backbone attach id.
func (c FederationConfig) gatewayID(seg, idx int) can.NodeID {
	if c.RedundantGateways {
		return can.NodeID(2*seg + idx)
	}
	return can.NodeID(seg)
}

// Validate checks the federation configuration.
func (c FederationConfig) Validate() error {
	if err := c.Node.Validate(); err != nil {
		return err
	}
	maxSegs := int(can.MaxNodes)
	if c.RedundantGateways {
		maxSegs = int(can.MaxNodes) / 2
	}
	if c.Segments < 1 || c.Segments > maxSegs {
		return fmt.Errorf("canely: %d segments outside 1..%d", c.Segments, maxSegs)
	}
	if c.NodesPerSegment < 1 || c.NodesPerSegment > int(backupGatewayMember) {
		return fmt.Errorf("canely: %d nodes per segment outside 1..%d",
			c.NodesPerSegment, int(backupGatewayMember))
	}
	return nil
}

// NewFederation builds the federation: all segment media, plain node
// stacks, gateways and the backbone, on one scheduler.
func NewFederation(cfg FederationConfig) *Federation {
	if cfg.Tann == 0 {
		cfg.Tann = 10 * time.Millisecond
	}
	if cfg.Tstale == 0 {
		cfg.Tstale = 40 * time.Millisecond
	}
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("canely: invalid federation config: %v", err))
	}
	f := &Federation{cfg: cfg, sched: sim.NewScheduler()}
	// The federation runs untraced even on the bit-accurate substrate: at
	// 32 segments a global trace would dominate the run, and the
	// equivalence harness observes through Hooks, which work on both
	// substrates anyway.
	f.backbone = stack.NewMedium(f.sched, stack.MediumConfig{
		Substrate: cfg.Node.Substrate, Rate: cfg.Node.Rate,
		Injector: fault.TagDigests{Inner: cfg.BackboneScript},
	})
	if cfg.RecordFed {
		f.fedLog = replay.New()
	}
	scfg := cfg.Node.stackConfig()
	gateways := 1
	if cfg.RedundantGateways {
		gateways = 2
	}
	for s := 0; s < cfg.Segments; s++ {
		m := stack.NewMedium(f.sched, stack.MediumConfig{
			Substrate: cfg.Node.Substrate, Rate: cfg.Node.Rate,
			Injector: fault.Tag{Segment: can.NodeID(s), Inner: cfg.SegmentScript},
		})
		f.segMedia = append(f.segMedia, m)
		hooks := cfg.Node.Hooks
		if cfg.SegmentHooks != nil {
			hooks = cfg.SegmentHooks(can.NodeID(s))
		}
		view := f.SegmentMembers(s)
		var nodes []*stack.Stack
		for n := 0; n < cfg.NodesPerSegment; n++ {
			st, err := stack.New(f.sched, []stack.Medium{m}, can.NodeID(n), scfg, nil, hooks)
			if err != nil {
				panic(fmt.Sprintf("canely: %v", err))
			}
			nodes = append(nodes, st)
		}
		f.nodes = append(f.nodes, nodes)

		var gws []*gateway.Gateway
		for i := 0; i < gateways; i++ {
			g, err := gateway.New(f.sched, gateway.Config{
				ID: cfg.gatewayID(s, i), Tann: cfg.Tann, Tstale: cfg.Tstale,
				Queue: cfg.Queue, Latency: cfg.Latency, Recorder: f.fedLog,
			})
			if err != nil {
				panic(fmt.Sprintf("canely: %v", err))
			}
			member := primaryGatewayMember
			if i == 1 {
				member = backupGatewayMember
			}
			if _, err := g.AddMemberLink(m, can.NodeID(s), member, view, scfg, hooks); err != nil {
				panic(fmt.Sprintf("canely: %v", err))
			}
			if _, err := g.AddRawLink(f.backbone); err != nil {
				panic(fmt.Sprintf("canely: %v", err))
			}
			gws = append(gws, g)
		}
		f.gws = append(f.gws, gws)
	}
	return f
}

// SegmentMembers returns a segment's pre-agreed bootstrap view: its plain
// nodes plus its gateway member identities.
func (f *Federation) SegmentMembers(seg int) NodeSet {
	return f.cfg.SegmentMembers()
}

// SegmentMembers is the per-segment bootstrap view implied by the
// configuration (every segment starts identical).
func (c FederationConfig) SegmentMembers() NodeSet {
	var view NodeSet
	for n := 0; n < c.NodesPerSegment; n++ {
		view = view.Add(can.NodeID(n))
	}
	view = view.Add(primaryGatewayMember)
	if c.RedundantGateways {
		view = view.Add(backupGatewayMember)
	}
	return view
}

// Site returns the full site view: every configured segment.
func (f *Federation) Site() NodeSet {
	var site NodeSet
	for s := 0; s < f.cfg.Segments; s++ {
		site = site.Add(can.NodeID(s))
	}
	return site
}

// BootstrapAll installs the pre-agreed segment views at every node and the
// pre-agreed site view at every gateway, and starts all protocol
// machinery.
func (f *Federation) BootstrapAll() {
	f.bootstrap(func(int) NodeSet { return f.Site() })
}

// BootstrapCold installs the pre-agreed segment views at every node but
// seeds each gateway's site view with only its own segment, so the full
// site is assembled purely through digest exchange — the starting condition
// of the site-view convergence experiments.
func (f *Federation) BootstrapCold() {
	f.bootstrap(func(seg int) NodeSet { return MakeSet(can.NodeID(seg)) })
}

func (f *Federation) bootstrap(site func(seg int) NodeSet) {
	for s := range f.nodes {
		view := f.SegmentMembers(s)
		for _, st := range f.nodes[s] {
			st.Bootstrap(view)
		}
	}
	for s, gws := range f.gws {
		for _, g := range gws {
			if err := g.Bootstrap(site(s)); err != nil {
				panic(fmt.Sprintf("canely: %v", err))
			}
		}
	}
}

// Run advances the simulation by d of virtual time.
func (f *Federation) Run(d time.Duration) { f.sched.RunFor(d) }

// Now returns the current virtual time as an offset from the start.
func (f *Federation) Now() time.Duration { return time.Duration(f.sched.Now()) }

// Gateway returns a segment's idx-th gateway (0 = primary, 1 = backup).
func (f *Federation) Gateway(seg, idx int) *gateway.Gateway { return f.gws[seg][idx] }

// Gateways returns all gateways, segment-major.
func (f *Federation) Gateways() []*gateway.Gateway {
	var out []*gateway.Gateway
	for _, gws := range f.gws {
		out = append(out, gws...)
	}
	return out
}

// SegmentNode returns one plain node's stack.
func (f *Federation) SegmentNode(seg, node int) *stack.Stack { return f.nodes[seg][node] }

// CrashSegment fail-silences every node and gateway of a segment — the
// whole-segment crash fault of the federation experiments.
func (f *Federation) CrashSegment(seg int) {
	for _, st := range f.nodes[seg] {
		st.Crash()
	}
	for _, g := range f.gws[seg] {
		g.Crash()
	}
}

// Scheduler exposes the simulation scheduler for scripting application
// events at virtual instants.
func (f *Federation) Scheduler() *sim.Scheduler { return f.sched }

// FedLog returns the recorded gateway federation-core streams, or nil
// unless RecordFed was set.
func (f *Federation) FedLog() *replay.Log { return f.fedLog }
