package canely

import (
	"testing"
	"time"

	"canely/internal/trace"
)

// TestTraceShowsFullCrashPipeline is a white-box sanity check that the
// crash-handling pipeline actually exercises every stage: ELS silence ->
// FDA diffusion -> fd notification -> view change at every node.
func TestTraceShowsFullCrashPipeline(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 4)
	net.BootstrapAll()
	net.Run(50 * time.Millisecond)
	net.Node(1).Crash()
	net.Run(cfg.DetectionLatencyBound() + cfg.Tm)

	tr := net.Trace()
	if tr.Count(trace.KindCrash) != 1 {
		t.Fatalf("crash events = %d", tr.Count(trace.KindCrash))
	}
	if tr.Count(trace.KindELS) == 0 {
		t.Fatal("no explicit life-signs emitted")
	}
	// The three survivors each deliver exactly one fda notification.
	if got := tr.Count(trace.KindFDANotify); got != 3 {
		t.Fatalf("fda notifications = %d, want 3 (one per survivor)", got)
	}
	// Views changed at the three survivors.
	if got := tr.Count(trace.KindViewChange); got != 3 {
		t.Fatalf("view changes = %d, want 3", got)
	}
}
