package canely

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/fault"
)

// viewsOf collects the membership views of all alive member nodes.
func viewsOf(net *Network) map[NodeID]NodeSet {
	out := make(map[NodeID]NodeSet)
	for _, nd := range net.Nodes() {
		if nd.Alive() && nd.Member() {
			out[nd.ID()] = nd.View()
		}
	}
	return out
}

// requireAgreement asserts all alive members hold the given view.
func requireAgreement(t *testing.T, net *Network, want NodeSet) {
	t.Helper()
	for id, v := range viewsOf(net) {
		if v != want {
			t.Fatalf("node %v view = %v, want %v", id, v, want)
		}
	}
}

func TestBootstrapSteadyState(t *testing.T) {
	net := NewNetwork(DefaultConfig(), 4)
	net.BootstrapAll()
	net.Run(500 * time.Millisecond)

	want := MakeSet(0, 1, 2, 3)
	requireAgreement(t, net, want)
	for _, nd := range net.Nodes() {
		if !nd.Member() {
			t.Fatalf("node %v lost membership in steady state", nd.ID())
		}
		// With no application traffic every node must emit explicit
		// life-signs roughly every Tb.
		if nd.LifeSigns() < 40 {
			t.Fatalf("node %v life-signs = %d, want ~50 over 500ms/Tb=10ms", nd.ID(), nd.LifeSigns())
		}
	}
}

func TestNoFalseDetectionInSteadyState(t *testing.T) {
	net := NewNetwork(DefaultConfig(), 8)
	net.BootstrapAll()
	changes := 0
	for _, nd := range net.Nodes() {
		nd.OnChange(func(Change) { changes++ })
	}
	net.Run(time.Second)
	if changes != 0 {
		t.Fatalf("membership changes = %d in a fault-free steady state", changes)
	}
}

func TestCrashDetectionAndAgreement(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 5)
	net.BootstrapAll()
	net.Run(100 * time.Millisecond)

	type notice struct {
		at     time.Duration
		failed NodeSet
	}
	notices := make(map[NodeID][]notice)
	for _, nd := range net.Nodes() {
		id := nd.ID()
		nd.OnChange(func(c Change) {
			if !c.Failed.Empty() {
				notices[id] = append(notices[id], notice{net.Now(), c.Failed})
			}
		})
	}

	crashAt := net.Now()
	net.Node(2).Crash()
	net.Run(cfg.DetectionLatencyBound() + cfg.Tm + 10*time.Millisecond)

	want := MakeSet(0, 1, 3, 4)
	requireAgreement(t, net, want)
	for _, nd := range net.Nodes() {
		if nd.ID() == 2 {
			continue
		}
		ns := notices[nd.ID()]
		if len(ns) != 1 {
			t.Fatalf("node %v failure notices = %d, want 1", nd.ID(), len(ns))
		}
		if ns[0].failed != MakeSet(2) {
			t.Fatalf("node %v notified failed=%v", nd.ID(), ns[0].failed)
		}
		latency := ns[0].at - crashAt
		if latency > cfg.DetectionLatencyBound() {
			t.Fatalf("node %v detection latency %v exceeds bound %v",
				nd.ID(), latency, cfg.DetectionLatencyBound())
		}
	}
}

func TestImplicitHeartbeatsSuppressLifeSigns(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 4)
	net.BootstrapAll()
	for _, nd := range net.Nodes() {
		// Cyclic application traffic faster than the heartbeat period: the
		// paper's bandwidth saver — no explicit life-signs needed.
		nd.StartCyclicTraffic(1, cfg.Tb/2, []byte{1, 2})
	}
	net.Run(time.Second)
	for _, nd := range net.Nodes() {
		if nd.LifeSigns() != 0 {
			t.Fatalf("node %v sent %d explicit life-signs despite fast traffic",
				nd.ID(), nd.LifeSigns())
		}
	}
	requireAgreement(t, net, MakeSet(0, 1, 2, 3))
}

func TestSlowTrafficStillNeedsLifeSigns(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 3)
	net.BootstrapAll()
	for _, nd := range net.Nodes() {
		nd.StartCyclicTraffic(1, 4*cfg.Tb, []byte{1})
	}
	net.Run(time.Second)
	for _, nd := range net.Nodes() {
		if nd.LifeSigns() == 0 {
			t.Fatalf("node %v sent no life-signs despite slow traffic", nd.ID())
		}
	}
	requireAgreement(t, net, MakeSet(0, 1, 2))
}

func TestCrashDetectedViaMissingImplicitHeartbeat(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 4)
	net.BootstrapAll()
	for _, nd := range net.Nodes() {
		nd.StartCyclicTraffic(1, cfg.Tb/3, []byte{0xAA})
	}
	net.Run(50 * time.Millisecond)
	net.Node(3).Crash()
	net.Run(cfg.DetectionLatencyBound() + cfg.Tm)
	requireAgreement(t, net, MakeSet(0, 1, 2))
}

func TestJoin(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 4)
	// Bootstrap only 0..2; node 3 joins later.
	for i := 0; i < 3; i++ {
		net.Node(NodeID(i)).Bootstrap(MakeSet(0, 1, 2))
	}
	net.Run(60 * time.Millisecond)

	var joinerChanges []Change
	net.Node(3).OnChange(func(c Change) { joinerChanges = append(joinerChanges, c) })
	net.Node(3).Join()
	net.Run(2*cfg.Tm + 20*time.Millisecond)

	want := MakeSet(0, 1, 2, 3)
	if !net.Node(3).Member() {
		t.Fatalf("joiner not a member; view=%v", net.Node(3).View())
	}
	requireAgreement(t, net, want)
	if len(joinerChanges) == 0 {
		t.Fatal("joiner received no membership change notification")
	}
	// Existing members must now surveil the joiner, and vice versa.
	if !net.Node(0).Monitoring(3) {
		t.Fatal("member 0 not monitoring the joiner")
	}
	if !net.Node(3).Monitoring(0) {
		t.Fatal("joiner not monitoring existing members")
	}
}

func TestLeave(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 4)
	net.BootstrapAll()
	net.Run(60 * time.Millisecond)

	var final []Change
	net.Node(1).OnChange(func(c Change) { final = append(final, c) })
	net.Node(1).Leave()
	net.Run(2*cfg.Tm + 20*time.Millisecond)

	want := MakeSet(0, 2, 3)
	requireAgreement(t, net, want)
	if net.Node(1).Member() {
		t.Fatal("leaver still believes it is a member")
	}
	if len(final) == 0 || !final[len(final)-1].Left {
		t.Fatalf("leaver did not get its final notification: %+v", final)
	}
	// The leaver must stop signalling and being monitored.
	before := net.Node(1).LifeSigns()
	net.Run(200 * time.Millisecond)
	if net.Node(1).LifeSigns() != before {
		t.Fatal("withdrawn node still emits life-signs")
	}
	if net.Node(0).Monitoring(1) {
		t.Fatal("members still monitor the withdrawn node")
	}
	requireAgreement(t, net, want)
}

func TestColdStartConcurrentJoins(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 4)
	for _, nd := range net.Nodes() {
		nd.Join()
	}
	net.Run(cfg.TjoinWait + 3*cfg.Tm)
	want := MakeSet(0, 1, 2, 3)
	for _, nd := range net.Nodes() {
		if !nd.Member() {
			t.Fatalf("node %v did not integrate on cold start: view=%v", nd.ID(), nd.View())
		}
	}
	requireAgreement(t, net, want)
}

func TestMultipleSimultaneousJoins(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 6)
	for i := 0; i < 3; i++ {
		net.Node(NodeID(i)).Bootstrap(MakeSet(0, 1, 2))
	}
	net.Run(30 * time.Millisecond)
	for i := 3; i < 6; i++ {
		net.Node(NodeID(i)).Join()
	}
	net.Run(2*cfg.Tm + 20*time.Millisecond)
	requireAgreement(t, net, MakeSet(0, 1, 2, 3, 4, 5))
}

func TestSimultaneousJoinAndLeave(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 5)
	for i := 0; i < 4; i++ {
		net.Node(NodeID(i)).Bootstrap(MakeSet(0, 1, 2, 3))
	}
	net.Run(30 * time.Millisecond)
	net.Node(4).Join()
	net.Node(1).Leave()
	net.Run(2*cfg.Tm + 20*time.Millisecond)
	requireAgreement(t, net, MakeSet(0, 2, 3, 4))
}

func TestCrashDuringMembershipCycle(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 5)
	net.BootstrapAll()
	net.Run(25 * time.Millisecond)
	net.Node(4).Crash()
	net.Run(10 * time.Millisecond)
	net.Node(0).Crash() // second failure in the same cycle (f = 2)
	net.Run(cfg.DetectionLatencyBound() + 2*cfg.Tm)
	requireAgreement(t, net, MakeSet(1, 2, 3))
}

func TestInconsistentFailureSignStillAgrees(t *testing.T) {
	// Script: the first FDA failure-sign transmission is inconsistently
	// omitted at node 1. Eager diffusion must still deliver the
	// notification everywhere.
	script := fault.NewScript(fault.Rule{
		Match:    fault.NewMatch(can.TypeFDA),
		Decision: fault.Decision{InconsistentVictims: can.MakeSet(1)},
	})
	cfg := DefaultConfig()
	cfg.Script = script
	net := NewNetwork(cfg, 5)
	net.BootstrapAll()
	net.Run(50 * time.Millisecond)
	net.Node(3).Crash()
	net.Run(cfg.DetectionLatencyBound() + cfg.Tm)
	if !script.Exhausted() {
		t.Fatalf("scenario did not trigger: %s", script.PendingRules())
	}
	requireAgreement(t, net, MakeSet(0, 1, 2, 4))
}

func TestInconsistentELSOmission(t *testing.T) {
	// One node's explicit life-sign is repeatedly omitted at node 0 only:
	// node 0's surveillance timer for it expires, FDA fires... but the
	// node is alive and its next life-sign or the failure-sign agreement
	// keeps the system consistent: all correct nodes agree on SOME common
	// view (the paper accepts that an alive-but-unheard node may be
	// removed; what matters is consistency).
	script := fault.NewScript(fault.Rule{
		Match:    fault.Match{Type: can.TypeELS, Param: 2, Sender: fault.AnySender},
		Decision: fault.Decision{InconsistentVictims: can.MakeSet(0)},
		Repeat:   true,
	})
	cfg := DefaultConfig()
	cfg.Script = script
	net := NewNetwork(cfg, 4)
	net.BootstrapAll()
	net.Run(time.Second)
	views := viewsOf(net)
	var ref NodeSet
	first := true
	for id, v := range views {
		if id == 2 {
			continue // node 2 may or may not have been expelled
		}
		if first {
			ref, first = v, false
		} else if v != ref {
			t.Fatalf("correct nodes disagree: %v", views)
		}
	}
}

func TestAgreementUnderBackgroundNoise(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.PCorrupt = 0.02
		cfg.PInconsistent = 0.01
		net := NewNetwork(cfg, 6)
		net.BootstrapAll()
		for _, nd := range net.Nodes() {
			nd.StartCyclicTraffic(1, 5*time.Millisecond, []byte{1, 2, 3, 4})
		}
		net.Run(200 * time.Millisecond)
		net.Node(5).Crash()
		net.Run(cfg.DetectionLatencyBound() + 2*cfg.Tm)

		views := viewsOf(net)
		var ref NodeSet
		first := true
		for id, v := range views {
			if first {
				ref, first = v, false
			} else if v != ref {
				t.Fatalf("seed %d: node %v view %v disagrees with %v", seed, id, v, ref)
			}
		}
		if ref.Contains(5) {
			t.Fatalf("seed %d: crashed node still in agreed view %v", seed, ref)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (NodeSet, int64, uint64) {
		cfg := DefaultConfig()
		cfg.Seed = 42
		cfg.PCorrupt = 0.05
		net := NewNetwork(cfg, 5)
		net.BootstrapAll()
		for _, nd := range net.Nodes() {
			nd.StartCyclicTraffic(0, 7*time.Millisecond, []byte{9})
		}
		net.Run(120 * time.Millisecond)
		net.Node(2).Crash()
		net.Run(150 * time.Millisecond)
		return net.Node(0).View(), net.Stats().BitsBusy, net.Scheduler().Fired()
	}
	v1, b1, f1 := run()
	v2, b2, f2 := run()
	if v1 != v2 || b1 != b2 || f1 != f2 {
		t.Fatalf("runs diverged: (%v,%d,%d) vs (%v,%d,%d)", v1, b1, f1, v2, b2, f2)
	}
}

func TestRejoinAfterLeave(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 3)
	net.BootstrapAll()
	net.Run(60 * time.Millisecond)
	net.Node(2).Leave()
	net.Run(3 * cfg.Tm)
	requireAgreement(t, net, MakeSet(0, 1))
	// Much later (>> Tm), the node reintegrates.
	net.Run(10 * cfg.Tm)
	net.Node(2).Join()
	net.Run(2*cfg.Tm + 20*time.Millisecond)
	requireAgreement(t, net, MakeSet(0, 1, 2))
	if !net.Node(2).Member() {
		t.Fatal("rejoined node is not a member")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tm = 0
	if cfg.Validate() == nil {
		t.Fatal("zero Tm accepted")
	}
	cfg = DefaultConfig()
	cfg.Trha = cfg.Tm
	if cfg.Validate() == nil {
		t.Fatal("Trha >= Tm accepted")
	}
	cfg = DefaultConfig()
	cfg.TjoinWait = cfg.Tm
	if cfg.Validate() == nil {
		t.Fatal("TjoinWait <= Tm accepted")
	}
}

func TestSteadyStateBandwidthIsOnlyLifeSigns(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 4)
	net.BootstrapAll()
	net.Run(time.Second)
	st := net.Stats()
	if st.BitsByType[can.TypeRHA] != 0 {
		t.Fatal("RHA ran without membership changes (the s22 skip is broken)")
	}
	if st.BitsByType[can.TypeFDA] != 0 {
		t.Fatal("FDA ran without failures")
	}
	if st.BitsByType[can.TypeELS] == 0 {
		t.Fatal("no life-sign traffic in an idle system")
	}
}
