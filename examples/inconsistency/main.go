// Inconsistency: the failure scenario that motivates the whole protocol
// suite ([18], paper §3). A fault hits the last two bits of a frame so
// that only part of the network accepts it, and the sender crashes before
// CAN's automatic retransmission can repair the damage — an *inconsistent
// message omission* that native CAN cannot mask.
//
// The demo runs the scenario twice:
//
//  1. Against a plain data stream: the victims provably never receive the
//     message (native CAN's LCAN2 weakness, observable in the trace).
//  2. Against the CANELy failure-sign (FDA): the eager diffusion repairs
//     the inconsistency and every correct node delivers the notification.
package main

import (
	"fmt"
	"time"

	"canely"
	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/fault"
	"canely/internal/sim"
)

// part 1: native CAN, inconsistent omission on application data.
func nativeCAN() {
	fmt.Println("--- native CAN: inconsistent omission of a data message ---")
	sched := sim.NewScheduler()
	script := fault.NewScript(fault.Rule{
		Match: fault.NewMatch(can.TypeData),
		Decision: fault.Decision{
			InconsistentVictims: can.MakeSet(2, 3),
			CrashSenders:        true,
		},
	})
	b := bus.New(sched, bus.Config{Injector: script})
	received := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		layer := canlayer.New(b.Attach(can.NodeID(i)))
		layer.HandleDataInd(func(mid can.MID, _ []byte) {
			if mid.Type == can.TypeData {
				received[i]++
			}
		})
		if i == 0 {
			sched.After(time.Millisecond, func() {
				_ = layer.DataReq(can.DataSign(1, 0, 1), []byte{0xBE, 0xEF})
			})
		}
	}
	sched.Run()
	for i := 1; i < 4; i++ {
		fmt.Printf("  node %d received %d copies\n", i, received[i])
	}
	fmt.Println("  -> nodes 2 and 3 never got the message; node 1 did. Agreement broken.")
	fmt.Println()
}

// part 2: the same physics, but the message is a CANELy failure-sign.
func canely2() {
	fmt.Println("--- CANELy: the same fault hits the FDA failure-sign ---")
	cfg := canely.DefaultConfig()
	cfg.Script = fault.NewScript(fault.Rule{
		Match: fault.NewMatch(can.TypeFDA),
		Decision: fault.Decision{
			InconsistentVictims: can.MakeSet(2, 3),
		},
	})
	net := canely.NewNetwork(cfg, 5)
	notified := map[canely.NodeID]time.Duration{}
	for _, nd := range net.Nodes() {
		nd := nd
		nd.OnChange(func(c canely.Change) {
			if c.Failed.Contains(4) {
				if _, dup := notified[nd.ID()]; !dup {
					notified[nd.ID()] = net.Now()
				}
			}
		})
	}
	net.BootstrapAll()
	net.Run(50 * time.Millisecond)
	fmt.Printf("  [%8v] crashing node 4; the first failure-sign will be\n", net.Now())
	fmt.Println("             inconsistently omitted at nodes 2 and 3")
	net.Node(4).Crash()
	net.Run(cfg.DetectionLatencyBound() + cfg.Tm)

	for _, nd := range net.Nodes() {
		if nd.ID() == 4 {
			continue
		}
		at, ok := notified[nd.ID()]
		if !ok {
			panic(fmt.Sprintf("node %v missed the failure notification", nd.ID()))
		}
		fmt.Printf("  node %v delivered the failure notification at %v\n", nd.ID(), at)
	}
	fmt.Println("  -> eager diffusion repaired the inconsistency: all correct nodes agree.")
	fmt.Println()
	fmt.Println("final views:")
	for _, nd := range net.Nodes() {
		if nd.Alive() {
			fmt.Printf("  %v: %v\n", nd.ID(), nd.View())
		}
	}
}

func main() {
	nativeCAN()
	canely2()
}
