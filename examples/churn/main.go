// Churn: the Figure 10 "multiple join/leave" regime made visible. A
// 32-node plant runs in steady state; then 20 nodes join and leave in
// waves while the membership service keeps every correct node's view
// consistent, and the bus-bandwidth cost of the protocol suite is printed
// per phase — the quantity the paper plots against Tm.
package main

import (
	"fmt"
	"time"

	"canely"
)

const (
	members = 32
	churned = 20
)

func protocolUtilization(net *canely.Network, window canely.BusStats, span time.Duration) float64 {
	bits := int64(0)
	for typ, b := range window.BitsByType {
		switch typ.String() {
		case "FDA", "RHA", "JOIN", "LEAVE", "ELS":
			bits += b
		}
	}
	return float64(net.Rate().DurationOf(int(bits))) / float64(span)
}

func main() {
	cfg := canely.DefaultConfig()
	cfg.Tm = 50 * time.Millisecond
	net := canely.NewNetwork(cfg, members)
	for i := 0; i < churned; i++ {
		net.AddNode(canely.NodeID(members + i))
	}

	var view canely.NodeSet
	for i := 0; i < members; i++ {
		view = view.Add(canely.NodeID(i))
	}
	for i := 0; i < members; i++ {
		net.Node(canely.NodeID(i)).Bootstrap(view)
	}
	// Most members signal implicitly via application traffic.
	for i := 8; i < members; i++ {
		net.Node(canely.NodeID(i)).StartCyclicTraffic(1, cfg.Tb/2, []byte{1, 2, 3, 4})
	}

	phase := func(name string, span time.Duration, action func()) {
		before := net.Stats()
		start := net.Now()
		action()
		net.Run(span)
		window := net.Stats().Sub(before)
		fmt.Printf("%-28s %8v  protocol-bandwidth=%5.2f%%  total-bus=%5.2f%%\n",
			name, net.Now()-start,
			100*protocolUtilization(net, window, span),
			100*window.Utilization(net.Rate(), span))
	}

	fmt.Printf("churn demo: %d members, %d churning nodes, Tm=%v\n\n", members, churned, cfg.Tm)
	phase("steady state", 4*cfg.Tm, func() {})
	phase("mass join (20 nodes)", 4*cfg.Tm, func() {
		for i := 0; i < churned; i++ {
			net.Node(canely.NodeID(members + i)).Join()
		}
	})

	joined := 0
	for i := 0; i < churned; i++ {
		if net.Node(canely.NodeID(members + i)).Member() {
			joined++
		}
	}
	fmt.Printf("\n%d/%d churning nodes integrated; view size at node 0: %d\n\n",
		joined, churned, net.Node(0).View().Count())

	phase("steady state (52 nodes)", 4*cfg.Tm, func() {})
	phase("mass leave (20 nodes)", 4*cfg.Tm, func() {
		for i := 0; i < churned; i++ {
			net.Node(canely.NodeID(members + i)).Leave()
		}
	})

	// Consistency check across every remaining member.
	ref := net.Node(0).View()
	for _, nd := range net.Nodes() {
		if nd.Alive() && nd.Member() && nd.View() != ref {
			panic(fmt.Sprintf("view divergence at %v: %v vs %v", nd.ID(), nd.View(), ref))
		}
	}
	fmt.Printf("\nall members agree on the final view: %v nodes\n", ref.Count())
}
