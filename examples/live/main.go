// Live: the simulator's protocol stack on a real wall clock — an in-process
// canelyd broker listening on a TCP loopback socket, five nodes each dialing
// it and running failure detection and membership against real timers. The
// same scenario as examples/quickstart, except time is time: the crash is
// detected in actual milliseconds, not simulated ones.
//
// For the true multi-process version of this scenario, run the canelyd and
// canelynode commands (see the README quickstart); this example keeps
// everything in one process so `go run ./examples/live` just works.
package main

import (
	"fmt"
	"time"

	"canely/internal/can"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/rt"
	"canely/internal/stack"
)

func main() {
	// A modest bit rate stretches frame durations to ~100 µs, comfortably
	// above OS timer jitter. Protocol periods are relaxed for the same
	// reason: live Tb is 150 ms where the simulator uses 10 ms.
	broker, err := rt.ListenBroker("127.0.0.1:0", rt.BrokerConfig{Rate: can.Rate125Kbps})
	if err != nil {
		panic(err)
	}
	defer broker.Close()
	addr := broker.Addr().String()
	fmt.Printf("broker up on %s at %v bit/s\n", addr, broker.Rate())

	scfg := stack.Config{
		FD: fd.Config{Tb: 150 * time.Millisecond, Ttd: 50 * time.Millisecond},
		Membership: membership.Config{
			Tm:        400 * time.Millisecond,
			TjoinWait: 2 * time.Second,
			RHA:       membership.RHAConfig{Trha: 100 * time.Millisecond, J: 2},
		},
		J: 2,
	}
	detect := scfg.FD.DetectionLatency()

	const founders = 5
	view := can.RangeSet(0, founders)
	nodes := make([]*rt.Node, founders)
	for i := range nodes {
		n, err := rt.StartNode(rt.NodeConfig{
			ID: can.NodeID(i), Broker: addr, Stack: scfg,
		})
		if err != nil {
			panic(err)
		}
		defer n.Close()
		nodes[i] = n
	}

	start := time.Now()
	nodes[0].OnChange(func(c membership.Change) {
		fmt.Printf("[%8v] node 0: membership change — active=%v failed=%v\n",
			time.Since(start).Round(time.Millisecond), c.Active, c.Failed)
	})
	for _, n := range nodes {
		n.Bootstrap(view)
	}
	time.Sleep(2 * detect)
	fmt.Printf("[%8v] steady state: view at node 0 = %v\n",
		time.Since(start).Round(time.Millisecond), nodes[0].View())

	// Kill node 3. Its heartbeat stops on the real bus; the survivors'
	// surveillance timers expire on the wall clock and the failure-sign
	// diffuses — detection latency here is genuine elapsed time.
	fmt.Printf("[%8v] crashing node 3\n", time.Since(start).Round(time.Millisecond))
	nodes[3].Crash()
	time.Sleep(detect + scfg.Membership.Tm)

	fmt.Println("\nfinal views:")
	for _, n := range nodes {
		if n.Alive() {
			fmt.Printf("  %v: %v\n", n.ID(), n.View())
		}
	}
}
