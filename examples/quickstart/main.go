// Quickstart: bring up a five-node CANELy network, watch the membership
// service at work — steady state, a node crash detected and agreed within
// tens of milliseconds, and a new node joining the view.
package main

import (
	"fmt"
	"time"

	"canely"
)

func main() {
	cfg := canely.DefaultConfig()
	net := canely.NewNetwork(cfg, 5)

	// Subscribe to membership change notifications on node 0.
	net.Node(0).OnChange(func(c canely.Change) {
		if !c.Failed.Empty() {
			fmt.Printf("[%8v] node 0: membership change — failed=%v, active=%v\n",
				net.Now(), c.Failed, c.Active)
			return
		}
		fmt.Printf("[%8v] node 0: membership change — active=%v\n", net.Now(), c.Active)
	})

	// Install the pre-agreed initial view and run to steady state.
	net.BootstrapAll()
	net.Run(100 * time.Millisecond)
	fmt.Printf("[%8v] steady state: view at node 0 = %v\n", net.Now(), net.Node(0).View())

	// Kill node 3. Its silence is noticed within Tb+Ttd, the failure-sign
	// is diffused by the FDA micro-protocol, and every correct node agrees.
	fmt.Printf("[%8v] crashing node 3\n", net.Now())
	net.Node(3).Crash()
	net.Run(cfg.DetectionLatencyBound() + cfg.Tm)
	fmt.Printf("[%8v] after detection: view at node 0 = %v\n", net.Now(), net.Node(0).View())

	// A sixth node joins: the RHA micro-protocol agrees on the new view at
	// the next membership cycle.
	joiner := net.AddNode(5)
	fmt.Printf("[%8v] node 5 requests to join\n", net.Now())
	joiner.Join()
	net.Run(2 * cfg.Tm)
	fmt.Printf("[%8v] after join: view at node 0 = %v, node 5 member = %t\n",
		net.Now(), net.Node(0).View(), joiner.Member())

	// Every correct node holds the same view — that is the service.
	fmt.Println("\nfinal views:")
	for _, nd := range net.Nodes() {
		if nd.Alive() {
			fmt.Printf("  %v: %v\n", nd.ID(), nd.View())
		}
	}
	st := net.Stats()
	fmt.Printf("\nbus: %d frames, %.2f%% utilization over %v\n",
		st.FramesOK, 100*st.Utilization(net.Rate(), net.Now()), net.Now())
}
