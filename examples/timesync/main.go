// Timesync: the CANELy clock synchronization service ([15]; Figure 11's
// "tens of µs" row) working hand in hand with the membership service.
// Four nodes with realistically drifting crystals synchronize to within
// tens of microseconds; when the synchronization master crashes, the
// membership change hands the role to the next node with no election.
package main

import (
	"fmt"
	"time"

	"canely"
)

func main() {
	cfg := canely.DefaultConfig()
	net := canely.NewNetwork(cfg, 4)
	net.BootstrapAll()

	// Crystals with rate errors up to ±120 ppm.
	drifts := []float64{120e-6, -80e-6, 40e-6, -10e-6}
	for i, nd := range net.Nodes() {
		if err := nd.EnableClockSync(drifts[i], 100*time.Millisecond); err != nil {
			panic(err)
		}
	}

	spread := func() time.Duration {
		var lo, hi time.Duration
		first := true
		for _, nd := range net.Nodes() {
			if !nd.Alive() {
				continue
			}
			v := nd.ClockNow()
			if first {
				lo, hi, first = v, v, false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi - lo
	}

	fmt.Println("clock spread among alive nodes (virtual time):")
	for i := 0; i < 5; i++ {
		net.Run(200 * time.Millisecond)
		fmt.Printf("  [%8v] spread = %v\n", net.Now(), spread())
	}

	fmt.Printf("\n[%8v] crashing the synchronization master (node 0)\n", net.Now())
	net.Node(0).Crash()
	net.Run(cfg.DetectionLatencyBound() + cfg.Tm)
	fmt.Printf("[%8v] membership removed it: view = %v\n", net.Now(), net.Node(1).View())
	fmt.Println("           node 1 is now master by the same deterministic rule")

	for i := 0; i < 5; i++ {
		net.Run(200 * time.Millisecond)
		fmt.Printf("  [%8v] spread = %v\n", net.Now(), spread())
	}
	if s := spread(); s > 60*time.Microsecond {
		panic(fmt.Sprintf("spread %v escaped the tens-of-µs envelope", s))
	}
	fmt.Println("\nprecision held through the master failover — no election protocol needed.")
}
