// Failover: a distributed control application — the scenario the paper's
// introduction motivates. A primary controller drives an actuator with a
// cyclic setpoint stream; a hot-standby backup takes over the moment the
// membership service reports the primary's crash.
//
// The takeover decision needs no extra coordination protocol: because the
// CANELy site membership view is agreed by all correct nodes, "the lowest
// surviving controller id becomes primary" is a safe deterministic rule.
package main

import (
	"fmt"
	"time"

	"canely"
)

const (
	controllerA = canely.NodeID(0) // primary
	controllerB = canely.NodeID(1) // hot standby
	actuator    = canely.NodeID(2)
	sensor      = canely.NodeID(3)

	setpointStream = uint8(10)
)

// controller drives the actuator while it is the lowest-id controller in
// the agreed membership view.
type controller struct {
	node    *canely.Node
	net     *canely.Network
	active  bool
	emitted int
}

func (c *controller) evaluate(view canely.NodeSet) {
	leader := controllerB
	if view.Contains(controllerA) {
		leader = controllerA
	}
	wasActive := c.active
	c.active = c.node.ID() == leader
	if c.active && !wasActive {
		fmt.Printf("[%8v] %v: taking over as primary (view=%v)\n",
			c.net.Now(), c.node.ID(), view)
		c.node.StartCyclicTraffic(setpointStream, 5*time.Millisecond, []byte{0x42})
	}
	if !c.active && wasActive {
		fmt.Printf("[%8v] %v: standing down\n", c.net.Now(), c.node.ID())
		c.node.StopTraffic()
	}
}

func main() {
	cfg := canely.DefaultConfig()
	net := canely.NewNetwork(cfg, 4)

	a := &controller{node: net.Node(controllerA), net: net}
	b := &controller{node: net.Node(controllerB), net: net}
	for _, c := range []*controller{a, b} {
		c := c
		c.node.OnChange(func(ch canely.Change) { c.evaluate(ch.Active) })
	}

	// The actuator counts setpoints and reports gaps in actuation.
	var lastSetpoint time.Duration
	var longestGap time.Duration

	net.BootstrapAll()
	a.evaluate(net.Node(controllerA).View()) // initial leader election
	b.evaluate(net.Node(controllerB).View())

	// The sensor also produces cyclic traffic (implicit heartbeats).
	net.Node(sensor).StartCyclicTraffic(11, 8*time.Millisecond, []byte{0x01})

	// Sample the actuator's view of actuation gaps by polling virtual time
	// around the crash.
	sched := net.Scheduler()
	probe := func() {
		now := net.Now()
		if lastSetpoint != 0 && now-lastSetpoint > longestGap {
			longestGap = now - lastSetpoint
		}
	}
	// Track setpoint arrivals through the membership-independent app path:
	// a ticker approximates the actuator sampling its input register.
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * 2 * time.Millisecond
		sched.After(at, probe)
	}
	// Record actual arrivals: the primary emits every 5 ms while active.
	tick := func() { lastSetpoint = net.Now() }
	for i := 1; i < 40; i++ {
		sched.After(time.Duration(i)*5*time.Millisecond, tick)
	}

	net.Run(100 * time.Millisecond)
	fmt.Printf("[%8v] steady state: primary=%v emitting setpoints\n", net.Now(), controllerA)

	// Kill the primary mid-operation.
	fmt.Printf("[%8v] !!! primary controller crashes\n", net.Now())
	net.Node(controllerA).Crash()
	crashAt := net.Now()
	net.Run(cfg.DetectionLatencyBound() + cfg.Tm)

	if !b.active {
		panic("backup failed to take over")
	}
	takeoverLatency := cfg.DetectionLatencyBound()
	fmt.Printf("[%8v] backup is primary; worst-case takeover bound %v after crash at %v\n",
		net.Now(), takeoverLatency, crashAt)

	net.Run(100 * time.Millisecond)
	fmt.Printf("\nfinal view at actuator: %v\n", net.Node(actuator).View())
	fmt.Printf("control loop survived: backup emitted cyclic setpoints after takeover\n")
	st := net.Stats()
	fmt.Printf("bus utilization: %.2f%% over %v (%d frames)\n",
		100*st.Utilization(net.Rate(), net.Now()), net.Now(), st.FramesOK)
}
