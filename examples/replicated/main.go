// Replicated: a tiny replicated state machine over CANELy group
// communication — the "semantically rich services" the paper's abstract
// promises, composed: process groups name the replicas, the TOTCAN-style
// totally ordered broadcast sequences the commands, and the site
// membership service prunes crashed replicas.
//
// Three replicas of a counter apply increment/decrement commands issued
// concurrently from different sites. Total order makes every replica walk
// the exact same state sequence; when one replica's site crashes, the
// group view shrinks consistently and the survivors keep going.
package main

import (
	"fmt"
	"time"

	"canely"
)

const replicaGroup = canely.GroupID(3)

type replica struct {
	node  *canely.Node
	state int
	log   []string
}

func (r *replica) apply(from canely.NodeID, cmd []byte) {
	if len(cmd) != 1 {
		return
	}
	switch cmd[0] {
	case '+':
		r.state++
	case '-':
		r.state--
	}
	r.log = append(r.log, fmt.Sprintf("%c from %v -> %d", cmd[0], from, r.state))
}

func main() {
	cfg := canely.DefaultConfig()
	net := canely.NewNetwork(cfg, 4) // 3 replicas + 1 observer site

	replicas := make([]*replica, 3)
	for i := 0; i < 3; i++ {
		nd := net.Node(canely.NodeID(i))
		if err := nd.EnableGroups(); err != nil {
			panic(err)
		}
		if err := nd.EnableOrderedBroadcast(5 * time.Millisecond); err != nil {
			panic(err)
		}
		r := &replica{node: nd}
		nd.OnOrderedDeliver(r.apply)
		replicas[i] = r
	}
	net.BootstrapAll()
	for _, r := range replicas {
		if err := r.node.JoinGroup(replicaGroup); err != nil {
			panic(err)
		}
	}
	net.Run(20 * time.Millisecond)
	fmt.Printf("replica group view: %v\n\n", replicas[0].node.GroupView(replicaGroup))

	// Concurrent commands from all three replicas.
	sched := net.Scheduler()
	cmds := []struct {
		at   time.Duration
		who  int
		cmd  byte
		note string
	}{
		{1 * time.Millisecond, 0, '+', "n00 increments"},
		{1 * time.Millisecond, 1, '+', "n01 increments (same instant)"},
		{2 * time.Millisecond, 2, '-', "n02 decrements"},
		{3 * time.Millisecond, 0, '+', "n00 increments again"},
	}
	base := net.Now()
	for _, c := range cmds {
		c := c
		sched.At(sched.Now().Add(c.at), func() {
			fmt.Printf("[%8v] %s\n", net.Now()-base, c.note)
			if err := replicas[c.who].node.OrderedBroadcast([]byte{c.cmd}); err != nil {
				panic(err)
			}
		})
	}
	net.Run(30 * time.Millisecond)

	fmt.Println("\ncommand logs (identical order at every replica):")
	for i, r := range replicas {
		fmt.Printf("  replica %d: state=%d\n", i, r.state)
		for _, line := range r.log {
			fmt.Printf("    %s\n", line)
		}
	}
	for i := 1; i < 3; i++ {
		if replicas[i].state != replicas[0].state {
			panic("replica divergence")
		}
		for k := range replicas[0].log {
			if replicas[i].log[k] != replicas[0].log[k] {
				panic("log divergence")
			}
		}
	}

	// Crash one replica's site: the group view shrinks everywhere.
	fmt.Printf("\n[%8v] crashing replica site n02\n", net.Now()-base)
	net.Node(2).Crash()
	net.Run(cfg.DetectionLatencyBound() + cfg.Tm)
	fmt.Printf("group view after crash: %v (at n00) / %v (at n01)\n",
		replicas[0].node.GroupView(replicaGroup),
		replicas[1].node.GroupView(replicaGroup))

	// The survivors keep sequencing commands.
	replicas[0].node.OrderedBroadcast([]byte{'+'})
	net.Run(20 * time.Millisecond)
	fmt.Printf("\nsurvivors after one more command: n00=%d n01=%d (agreed)\n",
		replicas[0].state, replicas[1].state)
	if replicas[0].state != replicas[1].state {
		panic("survivor divergence")
	}
}
