// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablation studies called out in DESIGN.md. Each
// benchmark reports the reproduced quantities as custom metrics (all time
// figures are *virtual* bus time — the simulation itself runs much faster).
//
// Experiment index:
//
//	BenchmarkFigure1Table           — Figure 1 (TTP vs CAN attribute table)
//	BenchmarkFigure10Analytical     — Figure 10, analytical worst case
//	BenchmarkFigure10Measured       — Figure 10, measured from simulation
//	BenchmarkFigure11Inaccessibility— Figure 11, inaccessibility rows
//	BenchmarkFigure11Membership     — Figure 11, membership latency cell
//	BenchmarkRelatedWorkLatency     — §6.6 CANELy vs OSEK vs CANopen
//	BenchmarkFDADiffusion           — FDA cost per failure-sign broadcast
//	BenchmarkRHAAgreement           — RHA cost per join/leave agreement
//	BenchmarkMembershipCycle        — steady-state cycle engine throughput
//	BenchmarkCampaignThroughput     — campaign engine scaling across workers
//	BenchmarkAblation*              — design-choice ablations
package canely_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"canely"
	"canely/internal/analysis"
	"canely/internal/bus"
	"canely/internal/campaign"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/core/fd"
	"canely/internal/core/proto"
	"canely/internal/edcan"
	"canely/internal/experiments"
	"canely/internal/sim"
)

// BenchmarkFigure1Table regenerates the Figure 1 comparison table.
func BenchmarkFigure1Table(b *testing.B) {
	b.ReportAllocs()
	var s string
	for i := 0; i < b.N; i++ {
		s = analysis.Figure1().String()
	}
	b.ReportMetric(float64(len(s)), "table-bytes")
}

// BenchmarkFigure10Analytical evaluates the analytical bandwidth model over
// the paper's full x-axis and reports the curve endpoints.
func BenchmarkFigure10Analytical(b *testing.B) {
	b.ReportAllocs()
	m := analysis.DefaultModel()
	var rows []analysis.Figure10Row
	for i := 0; i < b.N; i++ {
		rows = Figure10Rows(m)
	}
	first, last := rows[0], rows[len(rows)-1]
	b.ReportMetric(100*first.Utilization[analysis.SeriesNoChanges], "util%-nochg@30ms")
	b.ReportMetric(100*first.Utilization[analysis.SeriesMultiJoinLeave], "util%-multi@30ms")
	b.ReportMetric(100*last.Utilization[analysis.SeriesNoChanges], "util%-nochg@90ms")
	b.ReportMetric(100*last.Utilization[analysis.SeriesMultiJoinLeave], "util%-multi@90ms")
}

// Figure10Rows is the sweep used by the analytical benchmark.
func Figure10Rows(m analysis.BandwidthModel) []analysis.Figure10Row {
	return analysis.Figure10(m, nil)
}

// BenchmarkFigure10Measured reproduces Figure 10 from full-stack
// simulation (n=32, b=8, f=4, c∈{0,1,20}) at the x-axis endpoints.
func BenchmarkFigure10Measured(b *testing.B) {
	b.ReportAllocs()
	cfg := experiments.DefaultFigure10Config()
	tms := []time.Duration{30 * time.Millisecond, 90 * time.Millisecond}
	var points []experiments.Figure10Point
	for i := 0; i < b.N; i++ {
		points = experiments.MeasureFigure10(cfg, tms)
	}
	for _, p := range points {
		if p.Tm == 30*time.Millisecond {
			switch p.Series {
			case analysis.SeriesNoChanges:
				b.ReportMetric(100*p.Measured, "util%-nochg@30ms")
			case analysis.SeriesCrashFailures:
				b.ReportMetric(100*p.Measured, "util%-crash@30ms")
			case analysis.SeriesJoinLeave:
				b.ReportMetric(100*p.Measured, "util%-join@30ms")
			case analysis.SeriesMultiJoinLeave:
				b.ReportMetric(100*p.Measured, "util%-multi@30ms")
			}
		}
	}
}

// BenchmarkFigure11Inaccessibility reproduces the inaccessibility rows of
// Figure 11 (CAN 14-2880 bit times, CANELy 14-2160).
func BenchmarkFigure11Inaccessibility(b *testing.B) {
	b.ReportAllocs()
	var canLo, canHi, elyLo, elyHi int
	for i := 0; i < b.N; i++ {
		canLo, canHi = analysis.CANInaccessibility().Bounds()
		elyLo, elyHi = analysis.CANELyInaccessibility().Bounds()
	}
	b.ReportMetric(float64(canLo), "can-min-bits")
	b.ReportMetric(float64(canHi), "can-max-bits")
	b.ReportMetric(float64(elyLo), "canely-min-bits")
	b.ReportMetric(float64(elyHi), "canely-max-bits")
}

// BenchmarkFigure11Membership measures the Figure 11 membership latency
// cell ("tens of ms") from simulation.
func BenchmarkFigure11Membership(b *testing.B) {
	b.ReportAllocs()
	var mean time.Duration
	for i := 0; i < b.N; i++ {
		lat := experiments.MeasureMembershipLatency(5, int64(i+1))
		mean = lat.Mean()
	}
	b.ReportMetric(float64(mean)/1e6, "virt-ms-mean")
}

// BenchmarkRelatedWorkLatency reproduces the §6.6 comparison: CANELy in
// tens of virtual ms, OSEK NM near one virtual second, CANopen between.
func BenchmarkRelatedWorkLatency(b *testing.B) {
	b.ReportAllocs()
	cfg := experiments.DefaultLatencyConfig()
	cfg.Trials = 3
	var results []experiments.LatencyResult
	for i := 0; i < b.N; i++ {
		results = experiments.MeasureAllLatencies(cfg)
	}
	for _, r := range results {
		switch r.Scheme {
		case "CANELy":
			b.ReportMetric(float64(r.Measured.Mean())/1e6, "canely-virt-ms")
		case "OSEK NM":
			b.ReportMetric(float64(r.Measured.Mean())/1e6, "osek-virt-ms")
		case "CANopen guarding":
			b.ReportMetric(float64(r.Measured.Mean())/1e6, "canopen-virt-ms")
		}
	}
}

// fdaAgent binds a bare FDA core to a CAN layer — the minimal runtime
// needed to benchmark the diffusion protocol in isolation.
type fdaAgent struct {
	layer *canlayer.Layer
	core  *fd.FDA
}

func newFDAAgent(layer *canlayer.Layer) *fdaAgent {
	a := &fdaAgent{layer: layer, core: fd.NewFDA()}
	layer.HandleRTRInd(func(mid can.MID) {
		a.exec(a.core.Step(proto.Event{Kind: proto.EvRTRInd, MID: mid}))
	})
	return a
}

func (a *fdaAgent) Request(failed can.NodeID) {
	a.exec(a.core.Step(proto.Event{Kind: proto.EvFDARequest, Node: failed}))
}

func (a *fdaAgent) exec(cmds []proto.Command) {
	for _, c := range cmds {
		switch c.Kind {
		case proto.CmdSendRTR:
			if c.UnlessPending && a.layer.PendingEquivalentRTR(c.MID) {
				continue
			}
			_ = a.layer.RTRReq(c.MID)
		case proto.CmdAbort:
			a.layer.AbortReq(c.MID)
		}
	}
}

// BenchmarkFDADiffusion measures the wire cost of one complete FDA
// failure-sign agreement across 32 nodes: the paper's design target is two
// physical frames thanks to remote-frame clustering.
func BenchmarkFDADiffusion(b *testing.B) {
	b.ReportAllocs()
	var frames int
	for i := 0; i < b.N; i++ {
		sched := sim.NewScheduler()
		bs := bus.New(sched, bus.Config{})
		for n := 0; n < 32; n++ {
			newFDAAgent(canlayer.New(bs.Attach(can.NodeID(n))))
		}
		agent := newFDAAgent(canlayer.New(bs.Attach(can.NodeID(32))))
		agent.Request(63)
		sched.Run()
		frames = bs.Stats().FramesOK
	}
	b.ReportMetric(float64(frames), "frames/failure-sign")
}

// BenchmarkRHAAgreement measures one RHA execution agreeing on a join in a
// 16-member view: virtual wall time and wire frames.
func BenchmarkRHAAgreement(b *testing.B) {
	b.ReportAllocs()
	var frames int
	var virt time.Duration
	for i := 0; i < b.N; i++ {
		cfg := canely.DefaultConfig()
		net := canely.NewNetwork(cfg, 17)
		var view canely.NodeSet
		for n := 0; n < 16; n++ {
			view = view.Add(canely.NodeID(n))
		}
		for n := 0; n < 16; n++ {
			net.Node(canely.NodeID(n)).Bootstrap(view)
		}
		net.Run(20 * time.Millisecond)
		before := net.Stats()
		start := net.Now()
		var joined time.Duration
		net.Node(16).OnChange(func(c canely.Change) {
			if joined == 0 && c.Active.Contains(16) {
				joined = net.Now()
			}
		})
		net.Node(16).Join()
		net.Run(2 * cfg.Tm)
		frames = int(net.Stats().Sub(before).BitsByType[can.TypeRHA])
		virt = joined - start
	}
	b.ReportMetric(float64(frames), "rha-bits/join")
	b.ReportMetric(float64(virt)/1e6, "virt-ms/join")
}

// BenchmarkMembershipCycle measures simulator throughput for the
// steady-state membership engine: virtual seconds simulated per wall
// second for a 32-node network.
func BenchmarkMembershipCycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := canely.DefaultConfig()
		net := canely.NewNetwork(cfg, 32)
		net.BootstrapAll()
		net.Run(time.Second)
	}
	b.ReportMetric(1000, "virt-ms/op")
}

// BenchmarkCampaignThroughput measures the simulation-campaign engine's
// scaling along two axes: the substrate (bit-accurate vs fast frame-level)
// and the worker count (1, 2, 4, GOMAXPROCS) on a fixed 32-run crash-QoS
// campaign (n=8). Runs are independent single-threaded simulations, so
// throughput should scale near-linearly until the core count is exhausted;
// the fast substrate multiplies whatever the worker ladder achieves.
func BenchmarkCampaignThroughput(b *testing.B) {
	b.ReportAllocs()
	const runs = 32
	for _, sub := range []canely.Substrate{canely.SubstrateBitAccurate, canely.SubstrateFast} {
		benchmarkCampaignLadder(b, sub, runs)
	}
}

func benchmarkCampaignLadder(b *testing.B, sub canely.Substrate, runs int) {
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("substrate=%v/workers=%d", sub, workers), func(b *testing.B) {
			cfg := canely.DefaultConfig()
			cfg.Substrate = sub
			spec := experiments.CrashQoSSpec(cfg, 8, nil,
				campaign.SeedRange{Base: 1, N: runs})
			runner := campaign.Runner{Workers: workers}
			var total int
			for i := 0; i < b.N; i++ {
				results, err := runner.Run(context.Background(), spec)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Failed() {
						b.Fatalf("run %d failed: %s", r.Params.Index, r.Err)
					}
				}
				total += len(results)
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "runs/sec")
		})
	}
}

// BenchmarkAblationImplicitHeartbeats quantifies the bandwidth saved by
// using application traffic as implicit heartbeats (§6.1/§6.3): ELS bits
// with and without cyclic application traffic.
func BenchmarkAblationImplicitHeartbeats(b *testing.B) {
	b.ReportAllocs()
	run := func(implicit bool) int64 {
		cfg := canely.DefaultConfig()
		net := canely.NewNetwork(cfg, 8)
		net.BootstrapAll()
		if implicit {
			for _, nd := range net.Nodes() {
				nd.StartCyclicTraffic(1, cfg.Tb/2, []byte{1, 2})
			}
		}
		net.Run(time.Second)
		return net.Stats().BitsByType[can.TypeELS]
	}
	var with, without int64
	for i := 0; i < b.N; i++ {
		without = run(false)
		with = run(true)
	}
	b.ReportMetric(float64(without), "els-bits-explicit")
	b.ReportMetric(float64(with), "els-bits-implicit")
}

// BenchmarkAblationClustering compares the wire cost of a reliable
// failure-sign broadcast under FDA (clusterable remote frames) against the
// generic EDCAN diffusion of data frames: the clustering is what keeps the
// agreement at ~2 frames instead of ~n.
func BenchmarkAblationClustering(b *testing.B) {
	b.ReportAllocs()
	const nodes = 16
	var fdaFrames, edcanFrames int
	for i := 0; i < b.N; i++ {
		// FDA over remote frames.
		sched := sim.NewScheduler()
		bs := bus.New(sched, bus.Config{})
		var agents []*fdaAgent
		for n := 0; n < nodes; n++ {
			agents = append(agents, newFDAAgent(canlayer.New(bs.Attach(can.NodeID(n)))))
		}
		agents[0].Request(63)
		sched.Run()
		fdaFrames = bs.Stats().FramesOK

		// EDCAN over data frames, no duplicate suppression (J large) to
		// expose the raw diffusion cost.
		sched2 := sim.NewScheduler()
		bs2 := bus.New(sched2, bus.Config{})
		var bcs []*edcan.Broadcaster
		for n := 0; n < nodes; n++ {
			bc, err := edcan.New(canlayer.New(bs2.Attach(can.NodeID(n))), edcan.Config{J: nodes})
			if err != nil {
				b.Fatal(err)
			}
			bcs = append(bcs, bc)
		}
		if _, err := bcs[0].Broadcast([]byte{63}); err != nil {
			b.Fatal(err)
		}
		sched2.Run()
		edcanFrames = bs2.Stats().FramesOK
	}
	b.ReportMetric(float64(fdaFrames), "fda-frames")
	b.ReportMetric(float64(edcanFrames), "edcan-frames")
}

// BenchmarkAblationRHASkip quantifies the saving of skipping RHA when no
// join/leave is pending (Figure 9 line s22).
func BenchmarkAblationRHASkip(b *testing.B) {
	b.ReportAllocs()
	run := func(skip bool) int64 {
		cfg := canely.DefaultConfig()
		cfg.RHAEveryCycle = !skip
		net := canely.NewNetwork(cfg, 8)
		net.BootstrapAll()
		net.Run(time.Second)
		return net.Stats().BitsByType[can.TypeRHA]
	}
	var withSkip, withoutSkip int64
	for i := 0; i < b.N; i++ {
		withSkip = run(true)
		withoutSkip = run(false)
	}
	b.ReportMetric(float64(withSkip), "rha-bits-skip")
	b.ReportMetric(float64(withoutSkip), "rha-bits-everycycle")
}

// BenchmarkAblationDuplicateBound quantifies the LCAN4 duplicate
// suppression bound j in EDCAN: frames per broadcast at j=1 vs j=n.
func BenchmarkAblationDuplicateBound(b *testing.B) {
	b.ReportAllocs()
	const nodes = 16
	run := func(j int) int {
		sched := sim.NewScheduler()
		bs := bus.New(sched, bus.Config{})
		var bcs []*edcan.Broadcaster
		for n := 0; n < nodes; n++ {
			bc, err := edcan.New(canlayer.New(bs.Attach(can.NodeID(n))), edcan.Config{J: j})
			if err != nil {
				b.Fatal(err)
			}
			bcs = append(bcs, bc)
		}
		if _, err := bcs[0].Broadcast([]byte{1}); err != nil {
			b.Fatal(err)
		}
		sched.Run()
		return bs.Stats().FramesOK
	}
	var tight, loose int
	for i := 0; i < b.N; i++ {
		tight = run(1)
		loose = run(nodes)
	}
	b.ReportMetric(float64(tight), "frames-j1")
	b.ReportMetric(float64(loose), "frames-jn")
}

// BenchmarkAblationLazyVsEager compares the two [18] reliable broadcast
// strategies this suite builds on: RELCAN's lazy confirm (2 frames
// fault-free, diffusion only on sender death) against EDCAN's eager
// diffusion (pays the fan-out on every broadcast).
func BenchmarkAblationLazyVsEager(b *testing.B) {
	b.ReportAllocs()
	const nodes = 16
	var lazyFrames, eagerFrames int
	for i := 0; i < b.N; i++ {
		sched := sim.NewScheduler()
		bs := bus.New(sched, bus.Config{})
		var rels []*edcan.RELCAN
		for n := 0; n < nodes; n++ {
			rel, err := edcan.NewRELCAN(sched, canlayer.New(bs.Attach(can.NodeID(n))),
				edcan.RELCANConfig{Timeout: 2 * time.Millisecond, J: 2})
			if err != nil {
				b.Fatal(err)
			}
			rels = append(rels, rel)
		}
		if _, err := rels[0].Broadcast([]byte{1}); err != nil {
			b.Fatal(err)
		}
		sched.Run()
		lazyFrames = bs.Stats().FramesOK

		sched2 := sim.NewScheduler()
		bs2 := bus.New(sched2, bus.Config{})
		var bcs []*edcan.Broadcaster
		for n := 0; n < nodes; n++ {
			bc, err := edcan.New(canlayer.New(bs2.Attach(can.NodeID(n))), edcan.Config{J: nodes})
			if err != nil {
				b.Fatal(err)
			}
			bcs = append(bcs, bc)
		}
		if _, err := bcs[0].Broadcast([]byte{1}); err != nil {
			b.Fatal(err)
		}
		sched2.Run()
		eagerFrames = bs2.Stats().FramesOK
	}
	b.ReportMetric(float64(lazyFrames), "relcan-frames")
	b.ReportMetric(float64(eagerFrames), "edcan-frames")
}
