package canely_test

import (
	"testing"
	"time"

	"canely"
)

// BenchmarkSteadyStateStep measures the pure core + binding hot path: an
// 8-node bootstrapped network on the fast substrate in steady state — no
// joins, no leaves, no crashes, no fault injection — advancing one second of
// virtual time per op. Every op therefore covers the same event population
// (ELS life-signs, surveillance restarts, membership cycles with the RHA
// skip) and the metric that matters is allocs/op: the steady-state loop is
// supposed to run allocation-free once the network is warm.
func BenchmarkSteadyStateStep(b *testing.B) {
	cfg := canely.DefaultConfig()
	cfg.Substrate = canely.SubstrateFast
	net := canely.NewNetwork(cfg, 8)
	net.BootstrapAll()
	// Warm up: first cycles grow buffers, queues and scheduler slabs.
	net.Run(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Run(time.Second)
	}
}
