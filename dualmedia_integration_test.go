package canely

import (
	"testing"
	"time"

	"canely/internal/fault"
)

// TestDualMediaNetworkSurvivesMediumJam runs the whole CANELy system over
// replicated media and jams medium A mid-run: membership stays consistent,
// no node is falsely expelled, and the selection units fail over.
func TestDualMediaNetworkSurvivesMediumJam(t *testing.T) {
	jam := fault.NewScript(fault.Rule{
		Match:      fault.NewMatch(0),
		Occurrence: 60, // let the system settle, then medium A dies
		Decision:   fault.Decision{Corrupt: true},
		Repeat:     true,
	})
	cfg := DefaultConfig()
	cfg.DualMedia = true
	cfg.Script = jam
	net := NewNetwork(cfg, 4)
	net.BootstrapAll()
	changes := 0
	for _, nd := range net.Nodes() {
		nd.OnChange(func(Change) { changes++ })
	}
	net.Run(time.Second)

	want := MakeSet(0, 1, 2, 3)
	for _, nd := range net.Nodes() {
		if !nd.Alive() {
			t.Fatalf("node %v not alive despite media redundancy", nd.ID())
		}
		if nd.View() != want {
			t.Fatalf("node %v view = %v, want %v", nd.ID(), nd.View(), want)
		}
	}
	if changes != 0 {
		t.Fatalf("membership changes = %d; a medium jam must be transparent", changes)
	}
	failedOver := 0
	for _, nd := range net.Nodes() {
		if nd.ActiveMedium() == 1 {
			failedOver++
		}
	}
	if failedOver == 0 {
		t.Fatal("no selection unit failed over — the jam never bit")
	}
}

// TestSingleMediumJamPartitionsWithoutRedundancy is the control: the same
// jam on a single-medium network takes the whole service down (every
// controller eventually bus-off), motivating the redundancy scheme.
func TestSingleMediumJamPartitionsWithoutRedundancy(t *testing.T) {
	jam := fault.NewScript(fault.Rule{
		Match:      fault.NewMatch(0),
		Occurrence: 60,
		Decision:   fault.Decision{Corrupt: true},
		Repeat:     true,
	})
	cfg := DefaultConfig()
	cfg.Script = jam
	net := NewNetwork(cfg, 4)
	net.BootstrapAll()
	net.Run(2 * time.Second)
	alive := 0
	for _, nd := range net.Nodes() {
		if nd.Alive() {
			alive++
		}
	}
	if alive != 0 {
		t.Fatalf("%d nodes still alive under a permanent jam without redundancy", alive)
	}
}

// TestDualMediaCrashStillDetected confirms a genuine node crash is still
// detected and agreed under dual media (the redundancy must not mask real
// failures).
func TestDualMediaCrashStillDetected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DualMedia = true
	net := NewNetwork(cfg, 4)
	net.BootstrapAll()
	net.Run(100 * time.Millisecond)
	net.Node(3).Crash()
	net.Run(cfg.DetectionLatencyBound() + cfg.Tm)
	requireAgreement(t, net, MakeSet(0, 1, 2))
	if net.Node(3).Alive() {
		t.Fatal("crashed node reports alive")
	}
}
