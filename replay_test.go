package canely

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"canely/internal/replay"
)

// The replay suite: a recorded run must re-execute on fresh cores with
// command-for-command equality (the sans-I/O determinism guarantee), both
// in memory and across a JSON save/load round trip.

// recordScenario runs one equivalence scenario with core recording enabled
// and returns the captured log.
func recordScenario(t *testing.T, sc eqScenario) *replay.Log {
	t.Helper()
	cfg := sc.cfg()
	cfg.Record = true
	net := NewNetwork(cfg, sc.nodes)
	sc.drive(net)
	log := net.EventLog()
	if log == nil || len(log.Records) == 0 {
		t.Fatal("recording produced no events; the replay check is vacuous")
	}
	return log
}

func TestReplayReproducesCommandStreams(t *testing.T) {
	for _, sc := range equivalenceScenarios() {
		if sc.name != "crash" && sc.name != "churn" && sc.name != "inconsistent-omission-sender-crash" {
			continue
		}
		t.Run(sc.name, func(t *testing.T) {
			log := recordScenario(t, sc)
			if err := log.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReplayReproducesDualMediaRun(t *testing.T) {
	sc := eqScenario{
		name:  "dual-media",
		nodes: 6,
		cfg: func() Config {
			cfg := DefaultConfig()
			cfg.Seed = 7
			cfg.DualMedia = true
			return cfg
		},
		drive: func(net *Network) {
			net.BootstrapAll()
			for _, nd := range net.Nodes() {
				nd.StartCyclicTraffic(1, 9*time.Millisecond, []byte{byte(nd.ID())})
			}
			net.Run(150 * time.Millisecond)
			net.Node(1).Crash()
			net.Run(200 * time.Millisecond)
		},
	}
	log := recordScenario(t, sc)
	if err := log.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestReplaySaveLoadRoundTrip(t *testing.T) {
	sc := equivalenceScenarios()[1] // crash
	log := recordScenario(t, sc)
	var buf bytes.Buffer
	if err := log.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := replay.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Records) != len(log.Records) || len(loaded.Nodes) != len(log.Nodes) {
		t.Fatalf("round trip lost records: %d/%d nodes, %d/%d records",
			len(loaded.Nodes), len(log.Nodes), len(loaded.Records), len(log.Records))
	}
	if err := loaded.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayDetectsDivergence(t *testing.T) {
	sc := equivalenceScenarios()[1] // crash
	log := recordScenario(t, sc)
	// Corrupt one recorded command: verification must fail loudly.
	for i := range log.Records {
		if len(log.Records[i].Commands) > 0 {
			log.Records[i].Commands[0].Node ^= 1
			break
		}
	}
	if err := log.Verify(); err == nil {
		t.Fatal("verification accepted a corrupted command stream")
	}
}

// goldenCrashScenario is the seeded scenario whose rendered command stream
// is pinned in testdata/golden_crash_trace.txt.
func goldenCrashScenario(sub Substrate) eqScenario {
	return eqScenario{
		name:  "golden-crash",
		nodes: 3,
		cfg: func() Config {
			cfg := DefaultConfig()
			cfg.Seed = 42
			cfg.Substrate = sub
			return cfg
		},
		drive: func(net *Network) {
			net.BootstrapAll()
			net.Run(60 * time.Millisecond)
			net.Node(2).Crash()
			net.Run(100 * time.Millisecond)
		},
	}
}

// TestGoldenCrashTrace pins the exact rendered command stream of one seeded
// crash scenario. Any change to this file is a behavior change of the
// protocol cores and must be deliberate: regenerate with GOLDEN_UPDATE=1.
func TestGoldenCrashTrace(t *testing.T) {
	got := recordScenario(t, goldenCrashScenario(SubstrateBitAccurate)).Render()
	golden := filepath.Join("testdata", "golden_crash_trace.txt")
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with GOLDEN_UPDATE=1)", err)
	}
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("golden trace diverges at line %d:\n got: %s\nwant: %s\n(regenerate with GOLDEN_UPDATE=1 if deliberate)",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("golden trace length changed: got %d lines, want %d (regenerate with GOLDEN_UPDATE=1 if deliberate)",
			len(gl), len(wl))
	}
}

// TestGoldenTraceSubstrateIndependent runs the pinned golden scenario on BOTH
// simulation substrates and demands the byte-identical rendered command
// stream from each, plus replay (==) equality of every recorded run. This is
// the regression tripwire for scheduler and bus-stepping rewrites: an arena
// scheduler that reorders same-instant events, or a batched fastbus advance
// that lands an arbitration one microsecond late, shows up here as a one-line
// diff against testdata/golden_crash_trace.txt instead of a silent drift.
func TestGoldenTraceSubstrateIndependent(t *testing.T) {
	golden := filepath.Join("testdata", "golden_crash_trace.txt")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with GOLDEN_UPDATE=1)", err)
	}
	for _, sub := range []struct {
		name string
		sub  Substrate
	}{
		{"bit-accurate", SubstrateBitAccurate},
		{"fast", SubstrateFast},
	} {
		t.Run(sub.name, func(t *testing.T) {
			log := recordScenario(t, goldenCrashScenario(sub.sub))
			if got := log.Render(); got != string(want) {
				gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
				for i := 0; i < len(gl) && i < len(wl); i++ {
					if gl[i] != wl[i] {
						t.Fatalf("substrate %s diverges from golden trace at line %d:\n got: %s\nwant: %s",
							sub.name, i+1, gl[i], wl[i])
					}
				}
				t.Fatalf("substrate %s trace length: got %d lines, want %d", sub.name, len(gl), len(wl))
			}
			// Replay equality: re-executing the recorded inputs on fresh
			// cores must reproduce the command stream exactly (==).
			if err := log.Verify(); err != nil {
				t.Fatalf("substrate %s replay: %v", sub.name, err)
			}
		})
	}
}
