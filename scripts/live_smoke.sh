#!/usr/bin/env bash
# Deadline-bounded smoke of the live runtime: one canelyd broker plus a
# three-node wall-clock cluster over a unix socket. Passes when every node
# exits cleanly and all three print the same full final view.
set -euo pipefail

workdir="$(mktemp -d)"
trap 'kill "${broker_pid:-}" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/canelyd" ./cmd/canelyd
go build -o "$workdir/canelynode" ./cmd/canelynode

sock="unix:$workdir/bus.sock"
"$workdir/canelyd" -listen "$sock" -rate 125000 -quiet &
broker_pid=$!
for _ in $(seq 50); do
  [ -S "$workdir/bus.sock" ] && break
  sleep 0.1
done
[ -S "$workdir/bus.sock" ] || { echo "broker socket never appeared" >&2; exit 1; }

# Short timers, short run; `timeout` bounds a wedged cluster.
common=(-broker "$sock" -bootstrap 0-2 -duration 3s
        -tb 150ms -ttd 50ms -tm 400ms -tjoinwait 2s -trha 100ms)
pids=()
for id in 0 1 2; do
  timeout 60 "$workdir/canelynode" -id "$id" "${common[@]}" \
    > "$workdir/node$id.out" &
  pids+=($!)
done
for pid in "${pids[@]}"; do
  wait "$pid" || { echo "a node process failed" >&2; cat "$workdir"/node*.out >&2; exit 1; }
done

cat "$workdir"/node*.out
views="$(sed -n 's/.*final view \({[^}]*}\).*/\1/p' "$workdir"/node*.out | sort -u)"
if [ "$views" != "{n00,n01,n02}" ]; then
  echo "live cluster views diverged or incomplete:" >&2
  echo "$views" >&2
  exit 1
fi
echo "live smoke OK: three processes agree on $views"
