#!/usr/bin/env bash
# Deadline-bounded smoke of the live runtime, in two stages:
#
#   1. One canelyd broker plus a three-node wall-clock cluster over a unix
#      socket; every node must exit printing the same full final view.
#   2. A two-segment federation: two brokers, one canelyfed gateway
#      dual-homed across them, three canelynode processes per segment.
#      Every node must converge on its segment view (gateway member
#      included) and the gateway must report the full two-segment site.
set -euo pipefail

workdir="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/canelyd" ./cmd/canelyd
go build -o "$workdir/canelynode" ./cmd/canelynode
go build -o "$workdir/canelyfed" ./cmd/canelyfed

# wait_sock PATH blocks until a unix socket appears (or fails after 5 s).
wait_sock() {
  for _ in $(seq 50); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "broker socket $1 never appeared" >&2
  return 1
}

### Stage 1: single-segment three-node cluster.
sock="unix:$workdir/bus.sock"
"$workdir/canelyd" -listen "$sock" -rate 125000 -quiet &
wait_sock "$workdir/bus.sock"

# Short timers, short run; `timeout` bounds a wedged cluster.
timing=(-tb 150ms -ttd 50ms -tm 400ms -tjoinwait 2s -trha 100ms)
pids=()
for id in 0 1 2; do
  timeout 60 "$workdir/canelynode" -broker "$sock" -id "$id" \
    -bootstrap 0-2 -duration 3s "${timing[@]}" \
    > "$workdir/node$id.out" &
  pids+=($!)
done
for pid in "${pids[@]}"; do
  wait "$pid" || { echo "a node process failed" >&2; cat "$workdir"/node*.out >&2; exit 1; }
done

cat "$workdir"/node*.out
views="$(sed -n 's/.*final view \({[^}]*}\).*/\1/p' "$workdir"/node*.out | sort -u)"
if [ "$views" != "{n00,n01,n02}" ]; then
  echo "live cluster views diverged or incomplete:" >&2
  echo "$views" >&2
  exit 1
fi
echo "live smoke OK: three processes agree on $views"

### Stage 2: two-segment federation through a gateway.
seg0="unix:$workdir/seg0.sock"
seg1="unix:$workdir/seg1.sock"
"$workdir/canelyd" -listen "$seg0" -rate 125000 -quiet &
"$workdir/canelyd" -listen "$seg1" -rate 125000 -quiet &
wait_sock "$workdir/seg0.sock"
wait_sock "$workdir/seg1.sock"

timeout 90 "$workdir/canelyfed" -brokers "$seg0,$seg1" -id 9 -member 5 \
  -views "0-2,5;0-2,5" -tann 300ms -tstale 1200ms -duration 6s \
  "${timing[@]}" > "$workdir/gateway.out" &
gw_pid=$!

pids=()
for seg in 0 1; do
  for id in 0 1 2; do
    sock_var="seg$seg"
    timeout 90 "$workdir/canelynode" -broker "${!sock_var}" -id "$id" \
      -bootstrap 0-2,5 -duration 6s "${timing[@]}" \
      > "$workdir/fed-s$seg-n$id.out" &
    pids+=($!)
  done
done
for pid in "${pids[@]}" "$gw_pid"; do
  wait "$pid" || {
    echo "a federation process failed" >&2
    cat "$workdir"/fed-*.out "$workdir/gateway.out" >&2
    exit 1
  }
done

cat "$workdir"/fed-*.out "$workdir/gateway.out"
fed_views="$(sed -n 's/.*final view \({[^}]*}\).*/\1/p' "$workdir"/fed-*.out | sort -u)"
if [ "$fed_views" != "{n00,n01,n02,n05}" ]; then
  echo "federation segment views diverged or incomplete:" >&2
  echo "$fed_views" >&2
  exit 1
fi
site="$(sed -n 's/.*final site \({[^}]*}\).*/\1/p' "$workdir/gateway.out")"
if [ "$site" != "{n00,n01}" ]; then
  echo "gateway site view $site, want {n00,n01}" >&2
  exit 1
fi
echo "federation smoke OK: six processes agree on $fed_views, gateway site $site"
