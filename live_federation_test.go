package canely

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"canely/internal/replay"
)

// TestLiveProcessFederation is the multi-process federation acceptance run:
// two canelyd brokers emulating two CAN segments, one canelyfed gateway
// dual-homed across them, and three canelynode processes per segment — all
// over real unix sockets with wall-clock timers. Every node must converge
// on its segment view including the gateway's member identity, the gateway
// must report the full two-segment site, and its recorded federation
// streams must verify under pure replay.
func TestLiveProcessFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process live federation in -short mode")
	}
	dir := t.TempDir()
	build := func(name string) string {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		return bin
	}
	canelyd, canelynode, canelyfed := build("canelyd"), build("canelynode"), build("canelyfed")

	socks := []string{
		"unix:" + filepath.Join(dir, "seg0.sock"),
		"unix:" + filepath.Join(dir, "seg1.sock"),
	}
	for _, sock := range socks {
		broker := exec.Command(canelyd, "-listen", sock, "-rate", "125000", "-quiet")
		if err := broker.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			broker.Process.Kill()
			broker.Wait()
		})
		waitForSocket(t, strings.TrimPrefix(sock, "unix:"), 5*time.Second)
	}

	record := filepath.Join(dir, "gateway.replay.json")
	timing := []string{
		"-tb", "150ms", "-ttd", "50ms", "-tm", "400ms",
		"-tjoinwait", "2s", "-trha", "100ms", "-duration", "6s",
	}
	// Each segment bootstraps {n00,n01,n02,n05}: three plain nodes plus the
	// gateway's member identity. The gateway bootstraps the site {s0,s1}.
	gw := exec.Command(canelyfed, append([]string{
		"-brokers", socks[0] + "," + socks[1],
		"-id", "9", "-member", "5", "-views", "0-2,5;0-2,5",
		"-tann", "300ms", "-tstale", "1200ms",
		"-record", record,
	}, timing...)...)
	gw.Stderr = os.Stderr
	var gwOut strings.Builder
	gw.Stdout = &gwOut
	if err := gw.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Process.Kill(); gw.Wait() })

	type proc struct {
		seg, id int
		cmd     *exec.Cmd
		buf     *strings.Builder
	}
	var nodes []*proc
	for seg := 0; seg < 2; seg++ {
		for id := 0; id < 3; id++ {
			cmd := exec.Command(canelynode, append([]string{
				"-broker", socks[seg], "-id", strconv.Itoa(id), "-bootstrap", "0-2,5",
			}, timing...)...)
			cmd.Stderr = os.Stderr
			p := &proc{seg: seg, id: id, cmd: cmd, buf: &strings.Builder{}}
			cmd.Stdout = p.buf
			nodes = append(nodes, p)
		}
	}

	done := make(chan *proc, len(nodes)+1)
	for _, p := range nodes {
		if err := p.cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.cmd.Process.Kill(); p.cmd.Wait() })
		go func(p *proc) {
			if err := p.cmd.Wait(); err != nil {
				t.Errorf("segment %d node %d: %v\n%s", p.seg, p.id, err, p.buf.String())
			}
			done <- p
		}(p)
	}
	go func() {
		if err := gw.Wait(); err != nil {
			t.Errorf("gateway: %v\n%s", err, gwOut.String())
		}
		done <- nil
	}()

	deadline := time.After(40 * time.Second)
	for i := 0; i < len(nodes)+1; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatal("federation processes did not exit in time (wedged cluster)")
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// Every node in every segment agrees on the segment view, gateway
	// member included.
	for _, p := range nodes {
		out := strings.TrimSpace(p.buf.String())
		if v := viewOf(t, out); v != "{n00,n01,n02,n05}" {
			t.Errorf("segment %d node %d view %s, want {n00,n01,n02,n05}\nfull: %s",
				p.seg, p.id, v, out)
		}
		if !strings.Contains(out, "member=true alive=true") {
			t.Errorf("segment %d node %d not a live member: %s", p.seg, p.id, out)
		}
	}
	// The gateway holds both segments in its site view.
	gwLine := strings.TrimSpace(gwOut.String())
	if v := viewOf(t, gwLine); v != "{n00,n01}" {
		t.Errorf("gateway site %s, want {n00,n01}\nfull: %s", v, gwLine)
	}
	if !strings.Contains(gwLine, "alive=true") {
		t.Errorf("gateway not alive: %s", gwLine)
	}

	// The recorded live federation run must reproduce exactly on a fresh
	// pure federation core.
	f, err := os.Open(record)
	if err != nil {
		t.Fatalf("recorded log missing: %v", err)
	}
	defer f.Close()
	log, err := replay.Load(f)
	if err != nil {
		t.Fatalf("loading recorded log: %v", err)
	}
	if len(log.Records) == 0 {
		t.Fatal("recorded log is empty")
	}
	if err := log.Verify(); err != nil {
		t.Fatalf("live federation capture does not replay: %v", err)
	}
}
