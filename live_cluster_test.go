package canely

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"canely/internal/replay"
)

// TestLiveProcessCluster is the multi-process acceptance run: one canelyd
// broker and five canelynode processes over a real unix socket, wall-clock
// timers throughout. The scenario exercises the full membership lifecycle —
// a founding site of four, a fifth node joining, one node leaving and one
// crashing — and every correct process must print an identical final view.
// One node records its core streams; the capture must verify under pure
// replay.
func TestLiveProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process live cluster in -short mode")
	}
	dir := t.TempDir()
	build := func(name string) string {
		bin := filepath.Join(dir, name)
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		return bin
	}
	canelyd, canelynode := build("canelyd"), build("canelynode")

	sock := "unix:" + filepath.Join(dir, "bus.sock")
	broker := exec.Command(canelyd, "-listen", sock, "-rate", "125000", "-quiet")
	if err := broker.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		broker.Process.Kill()
		broker.Wait()
	}()
	// The broker listens before printing its banner; give it a moment.
	waitForSocket(t, strings.TrimPrefix(sock, "unix:"), 5*time.Second)

	record := filepath.Join(dir, "node0.replay.json")
	timing := []string{
		"-tb", "150ms", "-ttd", "50ms", "-tm", "400ms",
		"-tjoinwait", "2s", "-trha", "100ms", "-duration", "5s",
	}
	spawn := func(args ...string) *exec.Cmd {
		cmd := exec.Command(canelynode, append(append([]string{"-broker", sock}, timing...), args...)...)
		cmd.Stderr = os.Stderr
		return cmd
	}
	nodes := []*exec.Cmd{
		spawn("-id", "0", "-bootstrap", "0-3", "-record", record),
		spawn("-id", "1", "-bootstrap", "0-3"),
		spawn("-id", "2", "-bootstrap", "0-3", "-crash", "3s"),
		spawn("-id", "3", "-bootstrap", "0-3", "-leave", "2s"),
		spawn("-id", "4", "-join"),
	}
	type result struct {
		id  int
		err error
	}
	bufs := make([]strings.Builder, len(nodes))
	done := make(chan result, len(nodes))
	for i, cmd := range nodes {
		cmd.Stdout = &bufs[i]
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
		go func(id int, cmd *exec.Cmd) {
			done <- result{id, cmd.Wait()}
		}(i, cmd)
	}

	outputs := make(map[int]string, len(nodes))
	deadline := time.After(30 * time.Second)
	for range nodes {
		select {
		case r := <-done:
			if r.err != nil {
				t.Fatalf("node %d: %v\n%s", r.id, r.err, bufs[r.id].String())
			}
			outputs[r.id] = strings.TrimSpace(bufs[r.id].String())
		case <-deadline:
			t.Fatal("node processes did not exit in time (wedged cluster)")
		}
	}

	// Correct nodes: 0, 1 (founders that stayed) and 4 (the joiner). All
	// three must report the same view, containing exactly themselves.
	wantView := viewOf(t, outputs[0])
	if wantView != "{n00,n01,n04}" {
		t.Errorf("node 0 final view %s, want {n00,n01,n04}\nfull: %s", wantView, outputs[0])
	}
	for _, id := range []int{1, 4} {
		if v := viewOf(t, outputs[id]); v != wantView {
			t.Errorf("node %d view %s, node 0 view %s — disagreement\n%s\n%s",
				id, v, wantView, outputs[id], outputs[0])
		}
	}
	for _, id := range []int{0, 1, 4} {
		if !strings.Contains(outputs[id], "member=true alive=true") {
			t.Errorf("node %d not a live member: %s", id, outputs[id])
		}
	}
	// The leaver withdrew; the crashed node is dead.
	if !strings.Contains(outputs[3], "member=false") {
		t.Errorf("leaver still a member: %s", outputs[3])
	}
	if !strings.Contains(outputs[2], "alive=false") {
		t.Errorf("crashed node still alive: %s", outputs[2])
	}

	// The recorded live run must reproduce exactly on fresh pure cores.
	f, err := os.Open(record)
	if err != nil {
		t.Fatalf("recorded log missing: %v", err)
	}
	defer f.Close()
	log, err := replay.Load(f)
	if err != nil {
		t.Fatalf("loading recorded log: %v", err)
	}
	if len(log.Records) == 0 {
		t.Fatal("recorded log is empty")
	}
	if err := log.Verify(); err != nil {
		t.Fatalf("live capture does not replay: %v", err)
	}
}

// viewOf extracts the "{...}" view set from a canelynode final line.
func viewOf(t *testing.T, out string) string {
	t.Helper()
	open := strings.Index(out, "{")
	close := strings.Index(out, "}")
	if open < 0 || close < open {
		t.Fatalf("no view in output: %q", out)
	}
	return out[open : close+1]
}

// waitForSocket polls for a unix socket to appear.
func waitForSocket(t *testing.T, path string, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if _, err := os.Stat(path); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("socket %s never appeared", path)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
