package canely

import (
	"testing"
	"time"
)

// TestFacadeSurface exercises the introspection and control surface of the
// public API that the scenario tests do not reach.
func TestFacadeSurface(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 3)
	net.BootstrapAll()

	if net.Rate() != cfg.Rate {
		t.Fatal("Rate passthrough wrong")
	}
	nd := net.Node(0)
	if nd.ControllerState() != "error-active" {
		t.Fatalf("ControllerState = %q", nd.ControllerState())
	}
	if tec, rec := nd.ErrorCounters(); tec != 0 || rec != 0 {
		t.Fatalf("fresh counters = %d/%d", tec, rec)
	}
	if nd.ActiveMedium() != 0 {
		t.Fatal("single-medium node must report medium 0")
	}

	nd.StartCyclicTraffic(1, 2*time.Millisecond, []byte{1})
	net.Run(10 * time.Millisecond)
	before := net.Stats().FramesOK
	nd.StopTraffic()
	net.Run(20 * time.Millisecond)
	// Only life-signs flow after StopTraffic; application frames ceased.
	after := net.Stats()
	if after.FramesOK == before {
		t.Fatal("bus went fully silent — life-signs should continue")
	}
	net.Run(2 * cfg.Tm)
	if nd.Cycles() == 0 {
		t.Fatal("membership cycles not counted")
	}
}

func TestFacadeGroupLeave(t *testing.T) {
	net := NewNetwork(DefaultConfig(), 3)
	for _, nd := range net.Nodes() {
		if err := nd.EnableGroups(); err != nil {
			t.Fatal(err)
		}
	}
	net.BootstrapAll()
	net.Run(5 * time.Millisecond)
	var changes []GroupChange
	net.Node(2).OnGroupChange(func(c GroupChange) { changes = append(changes, c) })
	g := GroupID(4)
	net.Node(0).JoinGroup(g)
	net.Run(10 * time.Millisecond)
	if err := net.Node(0).LeaveGroup(g); err != nil {
		t.Fatal(err)
	}
	net.Run(10 * time.Millisecond)
	if !net.Node(2).GroupView(g).Empty() {
		t.Fatalf("group view = %v after leave", net.Node(2).GroupView(g))
	}
	if len(changes) != 2 {
		t.Fatalf("group changes = %d, want join+leave", len(changes))
	}
	// Leave without enable errors.
	if err := net.Node(1).LeaveGroup(g); net.Node(1).st.Groups == nil && err != nil {
		// node 1 has groups enabled in this test; check a fresh network
		net2 := NewNetwork(DefaultConfig(), 1)
		if err := net2.Node(0).LeaveGroup(g); err == nil {
			t.Fatal("LeaveGroup without enable accepted")
		}
	}
}

func TestClockNowPanicsWithoutEnable(t *testing.T) {
	net := NewNetwork(DefaultConfig(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("ClockNow without EnableClockSync should panic")
		}
	}()
	net.Node(0).ClockNow()
}

func TestOnGroupChangePanicsWithoutEnable(t *testing.T) {
	net := NewNetwork(DefaultConfig(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("OnGroupChange without enable should panic")
		}
	}()
	net.Node(0).OnGroupChange(func(GroupChange) {})
}
