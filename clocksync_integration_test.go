package canely

import (
	"testing"
	"time"
)

// TestClockSyncIntegration exercises the Figure 11 clock-synchronization
// row end to end: drifting crystals, membership-selected master, and
// failover of the master through a crash.
func TestClockSyncIntegration(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 4)
	net.BootstrapAll()
	drifts := []float64{120e-6, -80e-6, 40e-6, 0}
	for i, nd := range net.Nodes() {
		if err := nd.EnableClockSync(drifts[i], 100*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	spread := func() time.Duration {
		var lo, hi time.Duration
		first := true
		for _, nd := range net.Nodes() {
			if !nd.Alive() {
				continue
			}
			v := nd.ClockNow()
			if first {
				lo, hi, first = v, v, false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi - lo
	}

	net.Run(time.Second)
	if got := spread(); got > 60*time.Microsecond {
		t.Fatalf("synchronized spread = %v, want tens of µs", got)
	}

	// Master (node 0, lowest in the view) dies. Membership removes it,
	// node 1 becomes master by the same deterministic rule, and precision
	// recovers without any election protocol.
	net.Node(0).Crash()
	net.Run(cfg.DetectionLatencyBound() + cfg.Tm)
	net.Run(time.Second)
	if got := spread(); got > 60*time.Microsecond {
		t.Fatalf("post-failover spread = %v", got)
	}
	if net.Node(1).View().Contains(0) {
		t.Fatal("membership did not remove the crashed master")
	}
}

func TestEnableClockSyncTwiceRejected(t *testing.T) {
	net := NewNetwork(DefaultConfig(), 2)
	net.BootstrapAll()
	if err := net.Node(0).EnableClockSync(0, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := net.Node(0).EnableClockSync(0, 100*time.Millisecond); err == nil {
		t.Fatal("double enable accepted")
	}
}
