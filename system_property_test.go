package canely

import (
	"fmt"
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/fault"
)

// This file checks the paper's system-level guarantees as properties over
// randomized executions: for many seeds, random background faults, random
// crash/join/leave schedules — all correct members must end in agreement,
// failed nodes must be expelled, and notifications must be consistent.

// scenario is one randomized execution plan derived from a seed.
type scenario struct {
	seed    int64
	n       int
	crash   []NodeID
	leave   []NodeID
	join    []NodeID
	crashAt []time.Duration
}

func buildScenario(seed int64) scenario {
	// Simple deterministic derivation (no shared RNG with the network).
	s := scenario{seed: seed, n: 6 + int(seed%3)}
	s.crash = []NodeID{NodeID(seed % int64(s.n-1))}
	s.crashAt = []time.Duration{time.Duration(40+seed*7%60) * time.Millisecond}
	if seed%2 == 0 {
		s.leave = []NodeID{NodeID((seed + 2) % int64(s.n-1))}
	}
	s.join = []NodeID{NodeID(s.n)}
	// Avoid the crash and leave colliding on the same node.
	if len(s.leave) == 1 && s.leave[0] == s.crash[0] {
		s.leave[0] = (s.leave[0] + 1) % NodeID(s.n-1)
	}
	return s
}

func TestSystemAgreementUnderRandomizedFaultsAndChurn(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sc := buildScenario(seed)
			cfg := DefaultConfig()
			cfg.Seed = seed
			cfg.PCorrupt = 0.03
			cfg.PInconsistent = 0.015
			net := NewNetwork(cfg, sc.n)
			joiner := net.AddNode(sc.join[0])

			var view NodeSet
			for i := 0; i < sc.n; i++ {
				view = view.Add(NodeID(i))
			}
			for i := 0; i < sc.n; i++ {
				net.Node(NodeID(i)).Bootstrap(view)
			}
			for i := 0; i < sc.n; i += 2 {
				net.Node(NodeID(i)).StartCyclicTraffic(1, 4*time.Millisecond, []byte{1, 2})
			}

			sched := net.Scheduler()
			sched.After(sc.crashAt[0], func() { net.Node(sc.crash[0]).Crash() })
			sched.After(60*time.Millisecond, func() { joiner.Join() })
			for _, l := range sc.leave {
				l := l
				sched.After(80*time.Millisecond, func() { net.Node(l).Leave() })
			}
			net.Run(600 * time.Millisecond)

			// Property 1: all alive members agree on one view.
			var ref NodeSet
			first := true
			for _, nd := range net.Nodes() {
				if !nd.Alive() || !nd.Member() {
					continue
				}
				if first {
					ref, first = nd.View(), false
				} else if nd.View() != ref {
					t.Fatalf("views diverge: %v vs %v", nd.View(), ref)
				}
			}
			if first {
				t.Fatal("no members survived")
			}
			// Property 2: the crashed node was expelled.
			if ref.Contains(sc.crash[0]) {
				t.Fatalf("crashed node %v still in view %v", sc.crash[0], ref)
			}
			// Property 3: leavers are out and know it.
			for _, l := range sc.leave {
				if ref.Contains(l) {
					t.Fatalf("left node %v still in view %v", l, ref)
				}
				if net.Node(l).Member() {
					t.Fatalf("left node %v still believes it is a member", l)
				}
			}
			// Property 4: the joiner integrated (joins are retried, so the
			// background noise cannot permanently exclude it).
			if !ref.Contains(sc.join[0]) {
				t.Fatalf("joiner %v missing from view %v", sc.join[0], ref)
			}
		})
	}
}

func TestSystemViewsNeverContainNeverAttachedNodes(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.PInconsistent = 0.02
		net := NewNetwork(cfg, 5)
		net.BootstrapAll()
		net.Run(400 * time.Millisecond)
		legal := MakeSet(0, 1, 2, 3, 4)
		for _, nd := range net.Nodes() {
			if !nd.View().SubsetOf(legal) {
				t.Fatalf("seed %d: view %v contains phantom nodes", seed, nd.View())
			}
		}
	}
}

func TestSystemFailureNotificationsAreConsistentAcrossMembers(t *testing.T) {
	// Every member must deliver the same multiset of failure notifications
	// (here: exactly one, for the crashed node), even when failure-sign
	// transmissions suffer inconsistent omissions.
	script := fault.NewScript(
		fault.Rule{
			Match:    fault.NewMatch(can.TypeFDA),
			Decision: fault.Decision{InconsistentVictims: can.MakeSet(0)},
		},
		fault.Rule{
			Match:    fault.NewMatch(can.TypeFDA),
			Decision: fault.Decision{InconsistentVictims: can.MakeSet(2)},
		},
	)
	cfg := DefaultConfig()
	cfg.Script = script
	net := NewNetwork(cfg, 5)
	net.BootstrapAll()
	failedSeen := make(map[NodeID][]NodeSet)
	for _, nd := range net.Nodes() {
		id := nd.ID()
		nd.OnChange(func(c Change) {
			if !c.Failed.Empty() {
				failedSeen[id] = append(failedSeen[id], c.Failed)
			}
		})
	}
	net.Run(40 * time.Millisecond)
	net.Node(4).Crash()
	net.Run(cfg.DetectionLatencyBound() + 2*cfg.Tm)

	for _, id := range []NodeID{0, 1, 2, 3} {
		got := failedSeen[id]
		if len(got) != 1 || got[0] != MakeSet(4) {
			t.Fatalf("node %v failure notifications = %v, want exactly [{n04}]", id, got)
		}
	}
}

// TestBabblingNodeConfinedAndExpelled exercises weak-fail-silent
// enforcement end to end: a node whose every transmission is corrupted
// (a defective transceiver) is driven to bus-off by fault confinement and
// then expelled from the membership by the failure detection service.
func TestBabblingNodeConfinedAndExpelled(t *testing.T) {
	script := fault.NewScript(fault.Rule{
		Match:    fault.Match{Type: fault.AnyType, Param: fault.AnyParam, Sender: 4},
		Decision: fault.Decision{Corrupt: true},
		Repeat:   true,
	})
	cfg := DefaultConfig()
	cfg.Script = script
	net := NewNetwork(cfg, 5)
	net.BootstrapAll()
	// The defective node babbles application data as fast as it can.
	net.Node(4).StartCyclicTraffic(1, time.Millisecond, []byte{0xBA, 0xD0})
	net.Run(time.Second)

	requireAgreement(t, net, MakeSet(0, 1, 2, 3))
	// The defective node stopped consuming bandwidth once confined.
	st := net.Stats()
	if st.FramesError < 32 {
		t.Fatalf("errors = %d, confinement should have taken ~32 failed attempts", st.FramesError)
	}
	if st.FramesError > 40 {
		t.Fatalf("errors = %d, bus-off did not silence the babbler", st.FramesError)
	}
}
