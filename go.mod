module canely

go 1.22
