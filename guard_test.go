package canely_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"canely"
)

// TestNetworkSingleGoroutineGuard: a Network driven from a goroutine other
// than its creator must panic loudly instead of corrupting the simulation —
// the misuse a campaign worker pool would otherwise make easy.
func TestNetworkSingleGoroutineGuard(t *testing.T) {
	net := canely.NewNetwork(canely.DefaultConfig(), 2)
	net.BootstrapAll()

	recovered := make(chan any, 1)
	go func() {
		defer func() { recovered <- recover() }()
		net.Run(time.Millisecond)
	}()
	r := <-recovered
	if r == nil {
		t.Fatal("cross-goroutine Run did not panic")
	}
	if msg := fmt.Sprint(r); !strings.Contains(msg, "single-goroutine") {
		t.Fatalf("panic message %q does not explain the contract", msg)
	}

	// AddNode and BootstrapAll are guarded too.
	go func() {
		defer func() { recovered <- recover() }()
		net.AddNode(5)
	}()
	if r := <-recovered; r == nil {
		t.Fatal("cross-goroutine AddNode did not panic")
	}

	// The owner goroutine is unaffected.
	net.Run(time.Millisecond)
}

// TestNetworkPerWorkerConstructionIsLegal: the supported campaign pattern —
// each goroutine builds and drives its own Network — must keep working.
func TestNetworkPerWorkerConstructionIsLegal(t *testing.T) {
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			defer func() {
				if r := recover(); r != nil {
					done <- fmt.Errorf("worker panic: %v", r)
					return
				}
				done <- nil
			}()
			cfg := canely.DefaultConfig()
			cfg.Seed = seed
			net := canely.NewNetwork(cfg, 3)
			net.BootstrapAll()
			net.Run(20 * time.Millisecond)
		}(int64(w + 1))
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
