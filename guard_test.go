package canely_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"canely"
)

// TestNetworkConcurrentUseGuard: entering a Network while another goroutine
// is driving it must panic loudly instead of corrupting the simulation — the
// misuse a campaign worker pool would otherwise make easy. The overlap is
// made deterministic by blocking the driving goroutine inside a scheduled
// callback until the intruding goroutine has observed its panic.
func TestNetworkConcurrentUseGuard(t *testing.T) {
	net := canely.NewNetwork(canely.DefaultConfig(), 2)
	net.BootstrapAll()

	attempt := func(name string, call func()) {
		recovered := make(chan any, 1)
		go func() {
			defer func() { recovered <- recover() }()
			call()
		}()
		r := <-recovered
		if r == nil {
			t.Errorf("concurrent %s did not panic", name)
			return
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "single-goroutine") {
			t.Errorf("%s panic message %q does not explain the contract", name, msg)
		}
	}

	net.Scheduler().After(100*time.Microsecond, func() {
		// Run is in progress on the test goroutine right now.
		attempt("Run", func() { net.Run(time.Millisecond) })
		attempt("AddNode", func() { net.AddNode(5) })
		attempt("BootstrapAll", net.BootstrapAll)
	})
	net.Run(time.Millisecond)

	// Sequential use afterwards is unaffected.
	net.Run(time.Millisecond)
}

// TestNetworkPerWorkerConstructionIsLegal: the supported campaign pattern —
// each goroutine builds and drives its own Network — must keep working.
func TestNetworkPerWorkerConstructionIsLegal(t *testing.T) {
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(seed int64) {
			defer func() {
				if r := recover(); r != nil {
					done <- fmt.Errorf("worker panic: %v", r)
					return
				}
				done <- nil
			}()
			cfg := canely.DefaultConfig()
			cfg.Seed = seed
			net := canely.NewNetwork(cfg, 3)
			net.BootstrapAll()
			net.Run(20 * time.Millisecond)
		}(int64(w + 1))
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
