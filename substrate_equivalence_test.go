package canely

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/fault"
)

// The substrate equivalence suite: a seeded simulation must deliver the
// same frame sequence, drive the same fault-injector decision stream and
// reach the same final membership views on the bit-accurate and the fast
// substrate. Each scenario runs twice with identical seeds and scripts and
// the full layer-boundary event logs are compared byte for byte.

// eqRecorder captures every hook-observable event in global order.
type eqRecorder struct {
	log   []string
	views map[NodeID]NodeSet
}

func newEqRecorder() *eqRecorder {
	return &eqRecorder{views: make(map[NodeID]NodeSet)}
}

func (r *eqRecorder) hooks() *Hooks {
	return &Hooks{
		OnIndication: func(node NodeID, f can.Frame, own bool) {
			r.log = append(r.log, fmt.Sprintf("n%02d ind %08x rtr=%t dlc=%d data=%x own=%t",
				node, f.ID, f.RTR, f.DLC, f.Data, own))
		},
		OnConfirm: func(node NodeID, f can.Frame) {
			r.log = append(r.log, fmt.Sprintf("n%02d cnf %08x rtr=%t", node, f.ID, f.RTR))
		},
		OnBusOff: func(node NodeID) {
			r.log = append(r.log, fmt.Sprintf("n%02d busoff", node))
		},
		OnFDANotify: func(node, failed NodeID) {
			r.log = append(r.log, fmt.Sprintf("n%02d fda-nty failed=%v", node, failed))
		},
		OnFDNotify: func(node, failed NodeID) {
			r.log = append(r.log, fmt.Sprintf("n%02d fd-nty failed=%v", node, failed))
		},
		OnViewChange: func(node NodeID, ch Change) {
			r.log = append(r.log, fmt.Sprintf("n%02d view active=%v failed=%v left=%t",
				node, ch.Active, ch.Failed, ch.Left))
			r.views[node] = ch.Active
		},
	}
}

// eqScenario is one table entry: cfg must build a FRESH config per call
// (fault scripts are stateful), drive runs the workload.
type eqScenario struct {
	name  string
	nodes int
	cfg   func() Config
	drive func(net *Network)
}

func equivalenceScenarios() []eqScenario {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Seed = 42
		return cfg
	}
	traffic := func(net *Network) {
		for _, nd := range net.Nodes() {
			nd.StartCyclicTraffic(1, 7*time.Millisecond, []byte{byte(nd.ID()), 0xAB})
		}
	}
	return []eqScenario{
		{
			name:  "steady-state",
			nodes: 8,
			cfg:   base,
			drive: func(net *Network) {
				net.BootstrapAll()
				traffic(net)
				net.Run(300 * time.Millisecond)
			},
		},
		{
			name:  "crash",
			nodes: 8,
			cfg:   base,
			drive: func(net *Network) {
				net.BootstrapAll()
				traffic(net)
				net.Run(120 * time.Millisecond)
				net.Node(3).Crash()
				net.Run(250 * time.Millisecond)
			},
		},
		{
			name:  "churn",
			nodes: 6,
			cfg:   base,
			drive: func(net *Network) {
				// Bootstrap only 0..4; node 5 joins later; node 2 leaves.
				var view NodeSet
				for i := 0; i < 5; i++ {
					view = view.Add(NodeID(i))
				}
				for i := 0; i < 5; i++ {
					net.Node(NodeID(i)).Bootstrap(view)
				}
				traffic(net)
				net.Run(100 * time.Millisecond)
				net.Node(5).Join()
				net.Run(200 * time.Millisecond)
				net.Node(2).Leave()
				net.Run(200 * time.Millisecond)
			},
		},
		{
			name:  "inconsistent-omission-sender-crash",
			nodes: 8,
			cfg: func() Config {
				cfg := base()
				// The third frame with node 5 among the senders is omitted
				// at nodes 1 and 6 in the last two bits, and node 5 crashes
				// before it can retransmit — the LCAN4 worst case the FDA
				// diffusion exists for.
				cfg.Script = fault.NewScript(fault.Rule{
					Match:      fault.Match{Type: fault.AnyType, Param: fault.AnyParam, Sender: 5},
					Occurrence: 3,
					Decision: fault.Decision{
						InconsistentVictims: MakeSet(1, 6),
						CrashSenders:        true,
					},
				})
				return cfg
			},
			drive: func(net *Network) {
				net.BootstrapAll()
				traffic(net)
				net.Run(400 * time.Millisecond)
			},
		},
		{
			name:  "stochastic-faults",
			nodes: 8,
			cfg: func() Config {
				cfg := base()
				cfg.PCorrupt = 0.02
				cfg.PInconsistent = 0.01
				return cfg
			},
			drive: func(net *Network) {
				net.BootstrapAll()
				traffic(net)
				net.Run(150 * time.Millisecond)
				net.Node(6).Crash()
				net.Run(250 * time.Millisecond)
			},
		},
	}
}

// runScenario executes one scenario on one substrate and returns the event
// log, the final views of every node and the wire statistics.
func runScenario(sc eqScenario, sub Substrate) (*eqRecorder, map[NodeID]NodeSet, BusStats) {
	rec := newEqRecorder()
	cfg := sc.cfg()
	cfg.Substrate = sub
	cfg.Hooks = rec.hooks()
	net := NewNetwork(cfg, sc.nodes)
	sc.drive(net)
	final := make(map[NodeID]NodeSet)
	for _, nd := range net.Nodes() {
		final[nd.ID()] = nd.View()
	}
	return rec, final, net.Stats()
}

func TestSubstrateEquivalence(t *testing.T) {
	for _, sc := range equivalenceScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			bitRec, bitViews, bitStats := runScenario(sc, SubstrateBitAccurate)
			fastRec, fastViews, fastStats := runScenario(sc, SubstrateFast)

			if len(bitRec.log) == 0 {
				t.Fatal("scenario produced no events; the comparison is vacuous")
			}
			for i := range bitRec.log {
				if i >= len(fastRec.log) {
					t.Fatalf("fast log ends at %d/%d events; next bit event: %s",
						i, len(bitRec.log), bitRec.log[i])
				}
				if bitRec.log[i] != fastRec.log[i] {
					lo := i - 3
					if lo < 0 {
						lo = 0
					}
					t.Fatalf("logs diverge at event %d:\n  bit:  %s\n  fast: %s\ncontext:\n%s",
						i, bitRec.log[i], fastRec.log[i],
						strings.Join(bitRec.log[lo:i+1], "\n"))
				}
			}
			if len(fastRec.log) > len(bitRec.log) {
				t.Fatalf("fast log has %d extra events; first: %s",
					len(fastRec.log)-len(bitRec.log), fastRec.log[len(bitRec.log)])
			}

			for id, v := range bitViews {
				if fastViews[id] != v {
					t.Errorf("final view of %v: bit=%v fast=%v", id, v, fastViews[id])
				}
			}

			if bitStats.FramesOK != fastStats.FramesOK ||
				bitStats.FramesError != fastStats.FramesError ||
				bitStats.FramesInconsistent != fastStats.FramesInconsistent ||
				bitStats.BitsBusy != fastStats.BitsBusy ||
				bitStats.ErrorBits != fastStats.ErrorBits ||
				bitStats.Inaccessibility != fastStats.Inaccessibility {
				t.Errorf("stats differ:\n  bit:  %+v\n  fast: %+v", bitStats, fastStats)
			}
			for typ, bits := range bitStats.BitsByType {
				if fastStats.BitsByType[typ] != bits {
					t.Errorf("BitsByType[%v]: bit=%d fast=%d", typ, bits, fastStats.BitsByType[typ])
				}
			}
			for typ, bits := range fastStats.BitsByType {
				if _, ok := bitStats.BitsByType[typ]; !ok && bits != 0 {
					t.Errorf("BitsByType[%v]: bit absent, fast=%d", typ, bits)
				}
			}
		})
	}
}

// The federation scenario family: a multi-segment gateway topology must
// deliver identical per-segment frame sequences, identical gateway site
// transitions and identical final site views on both substrates. Logs are
// compared per segment — node ids repeat across segments, and cross-medium
// interleaving at equal instants is a scheduler artifact, not protocol
// behaviour — which is exactly the delivered-frame-sequence guarantee the
// single-segment suite pins, once per segment bus.

// fedEqRecorder captures per-segment hook logs plus per-gateway site
// transitions and final site views.
type fedEqRecorder struct {
	segLogs map[NodeID][]string
	site    map[NodeID][]string
	finals  map[NodeID]NodeSet
}

func newFedEqRecorder() *fedEqRecorder {
	return &fedEqRecorder{
		segLogs: make(map[NodeID][]string),
		site:    make(map[NodeID][]string),
		finals:  make(map[NodeID]NodeSet),
	}
}

// segmentHooks returns the hooks of one segment, appending to its log.
func (r *fedEqRecorder) segmentHooks(seg NodeID) *Hooks {
	return &Hooks{
		OnIndication: func(node NodeID, f can.Frame, own bool) {
			r.segLogs[seg] = append(r.segLogs[seg], fmt.Sprintf("n%02d ind %08x rtr=%t dlc=%d data=%x own=%t",
				node, f.ID, f.RTR, f.DLC, f.Data, own))
		},
		OnConfirm: func(node NodeID, f can.Frame) {
			r.segLogs[seg] = append(r.segLogs[seg], fmt.Sprintf("n%02d cnf %08x rtr=%t", node, f.ID, f.RTR))
		},
		OnViewChange: func(node NodeID, ch Change) {
			r.segLogs[seg] = append(r.segLogs[seg], fmt.Sprintf("n%02d view active=%v failed=%v left=%t",
				node, ch.Active, ch.Failed, ch.Left))
		},
	}
}

// fedEqScenario is one federation table entry; cfg must build a fresh
// config per call (fault scripts are stateful).
type fedEqScenario struct {
	name  string
	cfg   func() FederationConfig
	drive func(fed *Federation)
}

func federationEquivalenceScenarios() []fedEqScenario {
	base := func() FederationConfig {
		cfg := DefaultFederationConfig()
		cfg.Node.Seed = 42
		cfg.NodesPerSegment = 3
		return cfg
	}
	return []fedEqScenario{
		{
			name: "fed-steady-state",
			cfg:  base,
			drive: func(fed *Federation) {
				fed.BootstrapAll()
				fed.Run(250 * time.Millisecond)
			},
		},
		{
			name: "fed-gateway-failover",
			cfg: func() FederationConfig {
				cfg := base()
				cfg.RedundantGateways = true
				return cfg
			},
			drive: func(fed *Federation) {
				fed.BootstrapAll()
				fed.Run(100 * time.Millisecond)
				fed.Gateway(1, 0).Crash()
				fed.Run(200 * time.Millisecond)
			},
		},
		{
			name: "fed-segment-partition",
			cfg: func() FederationConfig {
				cfg := base()
				cfg.BackboneScript = fault.NewScript(fault.Rule{
					Match: fault.Match{Type: can.TypeFed, Param: fault.AnyParam,
						Sender: fault.AnySender, Segments: MakeSet(2)},
					Occurrence: 6,
					Repeat:     true,
					Decision:   fault.Decision{Corrupt: true},
				})
				return cfg
			},
			drive: func(fed *Federation) {
				fed.BootstrapAll()
				fed.Run(300 * time.Millisecond)
			},
		},
		{
			name: "fed-segment-crash",
			cfg:  base,
			drive: func(fed *Federation) {
				fed.BootstrapAll()
				fed.Run(120 * time.Millisecond)
				fed.CrashSegment(3)
				fed.Run(200 * time.Millisecond)
			},
		},
	}
}

// runFedScenario executes one federation scenario on one substrate.
func runFedScenario(sc fedEqScenario, sub Substrate) *fedEqRecorder {
	rec := newFedEqRecorder()
	cfg := sc.cfg()
	cfg.Node.Substrate = sub
	cfg.SegmentHooks = rec.segmentHooks
	fed := NewFederation(cfg)
	for _, g := range fed.Gateways() {
		id := g.ID()
		g.OnSiteChange(func(active, failed NodeSet) {
			rec.site[id] = append(rec.site[id], fmt.Sprintf("site active=%v failed=%v", active, failed))
		})
	}
	sc.drive(fed)
	for _, g := range fed.Gateways() {
		rec.finals[g.ID()] = g.SiteView()
	}
	return rec
}

func TestSubstrateEquivalenceFederation(t *testing.T) {
	for _, sc := range federationEquivalenceScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			bit := runFedScenario(sc, SubstrateBitAccurate)
			fast := runFedScenario(sc, SubstrateFast)

			total := 0
			for seg, bitLog := range bit.segLogs {
				total += len(bitLog)
				fastLog := fast.segLogs[seg]
				for i := range bitLog {
					if i >= len(fastLog) {
						t.Fatalf("segment %v: fast log ends at %d/%d events; next bit event: %s",
							seg, i, len(bitLog), bitLog[i])
					}
					if bitLog[i] != fastLog[i] {
						t.Fatalf("segment %v logs diverge at event %d:\n  bit:  %s\n  fast: %s",
							seg, i, bitLog[i], fastLog[i])
					}
				}
				if len(fastLog) > len(bitLog) {
					t.Fatalf("segment %v: fast log has %d extra events; first: %s",
						seg, len(fastLog)-len(bitLog), fastLog[len(bitLog)])
				}
			}
			if total == 0 {
				t.Fatal("scenario produced no segment events; the comparison is vacuous")
			}

			for gw, bitSite := range bit.site {
				if got := strings.Join(fast.site[gw], "\n"); got != strings.Join(bitSite, "\n") {
					t.Errorf("gateway %v site transitions differ:\n  bit:\n%s\n  fast:\n%s",
						gw, strings.Join(bitSite, "\n"), got)
				}
			}
			for gw, v := range bit.finals {
				if fast.finals[gw] != v {
					t.Errorf("final site view of gateway %v: bit=%v fast=%v", gw, v, fast.finals[gw])
				}
			}
		})
	}
}

// TestSubstrateEquivalenceDualMedia exercises the media-redundancy path:
// the selection unit must behave identically over both substrates.
func TestSubstrateEquivalenceDualMedia(t *testing.T) {
	sc := eqScenario{
		nodes: 6,
		cfg: func() Config {
			cfg := DefaultConfig()
			cfg.Seed = 7
			cfg.DualMedia = true
			return cfg
		},
		drive: func(net *Network) {
			net.BootstrapAll()
			for _, nd := range net.Nodes() {
				nd.StartCyclicTraffic(1, 9*time.Millisecond, []byte{byte(nd.ID())})
			}
			net.Run(150 * time.Millisecond)
			net.Node(1).Crash()
			net.Run(200 * time.Millisecond)
		},
	}
	bitRec, bitViews, _ := runScenario(sc, SubstrateBitAccurate)
	fastRec, fastViews, _ := runScenario(sc, SubstrateFast)
	if len(bitRec.log) == 0 {
		t.Fatal("scenario produced no events")
	}
	if len(bitRec.log) != len(fastRec.log) {
		t.Fatalf("log lengths differ: bit=%d fast=%d", len(bitRec.log), len(fastRec.log))
	}
	for i := range bitRec.log {
		if bitRec.log[i] != fastRec.log[i] {
			t.Fatalf("logs diverge at event %d:\n  bit:  %s\n  fast: %s", i, bitRec.log[i], fastRec.log[i])
		}
	}
	for id, v := range bitViews {
		if fastViews[id] != v {
			t.Errorf("final view of %v: bit=%v fast=%v", id, v, fastViews[id])
		}
	}
}
