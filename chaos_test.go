package canely

import (
	"testing"
	"time"
)

// TestChaosLongRunLiveness drives a network through two virtual seconds of
// continuous churn under background fault injection and asserts liveness
// and safety throughout: every join eventually lands, every leave
// completes, views never diverge among members, and the system never
// deadlocks into an empty view.
func TestChaosLongRunLiveness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 2026
	cfg.PCorrupt = 0.02
	cfg.PInconsistent = 0.01
	const core = 5    // permanent members
	const churner = 5 // the node that cycles in and out
	net := NewNetwork(cfg, core)
	cyc := net.AddNode(churner)

	var view NodeSet
	for i := 0; i < core; i++ {
		view = view.Add(NodeID(i))
	}
	for i := 0; i < core; i++ {
		net.Node(NodeID(i)).Bootstrap(view)
	}
	for i := 0; i < core; i++ {
		net.Node(NodeID(i)).StartCyclicTraffic(1, 4*time.Millisecond, []byte{1})
	}

	joins, leaves := 0, 0
	for round := 0; round < 8; round++ {
		cyc.Join()
		net.Run(3 * cfg.Tm)
		if !cyc.Member() {
			// Background noise can delay a join by a retry cycle.
			net.Run(2 * cfg.TjoinWait)
		}
		if !cyc.Member() {
			t.Fatalf("round %d: churner never joined (view=%v)", round, cyc.View())
		}
		joins++
		checkAgreement(t, net, round, "post-join")

		cyc.Leave()
		net.Run(3 * cfg.Tm)
		if cyc.Member() {
			t.Fatalf("round %d: churner never left", round)
		}
		leaves++
		checkAgreement(t, net, round, "post-leave")
		// The paper's reintegration precondition: wait >> Tm.
		net.Run(4 * cfg.Tm)
	}
	if joins != 8 || leaves != 8 {
		t.Fatalf("rounds incomplete: %d joins, %d leaves", joins, leaves)
	}
	// Core members survived the whole ordeal.
	for i := 0; i < core; i++ {
		if !net.Node(NodeID(i)).Member() {
			t.Fatalf("core member %d lost membership", i)
		}
	}
}

func checkAgreement(t *testing.T, net *Network, round int, phase string) {
	t.Helper()
	var ref NodeSet
	first := true
	for _, nd := range net.Nodes() {
		if !nd.Alive() || !nd.Member() {
			continue
		}
		if first {
			ref, first = nd.View(), false
		} else if nd.View() != ref {
			t.Fatalf("round %d %s: views diverge: %v vs %v", round, phase, nd.View(), ref)
		}
	}
	if first {
		t.Fatalf("round %d %s: no members", round, phase)
	}
}
