package canely

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/fault"
)

// TestFederationConverges32x16 is the federation acceptance scenario: 32
// segments of 16 nodes each converge on one global site view, then suffer
// a scripted backbone partition of segment 7 (every digest it transmits is
// corrupted until fault confinement forces its gateway's backbone port
// bus-off) and a scripted crash of segment 12's gateway (CrashSenders on
// its 5th digest). The surviving 30 gateways must agree on exactly the
// surviving site view; each isolated gateway must decay to its own
// segment. Runs on both simulated substrates.
func TestFederationConverges32x16(t *testing.T) {
	for _, substrate := range []Substrate{SubstrateBitAccurate, SubstrateFast} {
		t.Run(substrate.String(), func(t *testing.T) {
			script := fault.NewScript(
				// Partition: segment 7's digests never survive the backbone.
				fault.Rule{
					Match: fault.Match{Type: can.TypeFed, Param: fault.AnyParam,
						Sender: fault.AnySender, Segments: can.MakeSet(7)},
					Repeat:   true,
					Decision: fault.Decision{Corrupt: true},
				},
				// Gateway crash: segment 12's gateway dies mid-operation.
				fault.Rule{
					Match:      fault.Match{Type: can.TypeFed, Param: fault.AnyParam, Sender: 12},
					Occurrence: 5,
					Decision:   fault.Decision{CrashSenders: true},
				},
			)
			cfg := DefaultFederationConfig()
			cfg.Node.Substrate = substrate
			cfg.Segments = 32
			cfg.NodesPerSegment = 16
			cfg.BackboneScript = script

			fed := NewFederation(cfg)
			fed.BootstrapAll()
			fed.Run(400 * time.Millisecond)

			if !script.Exhausted() {
				t.Fatalf("scripted faults did not all fire: %s", script.PendingRules())
			}
			all := fed.Site()
			want := all.Remove(7).Remove(12)
			for s := 0; s < cfg.Segments; s++ {
				got := fed.Gateway(s, 0).SiteView()
				switch s {
				case 7, 12:
					if wantOwn := can.MakeSet(can.NodeID(s)); got != wantOwn {
						t.Errorf("isolated gateway %d site view %v, want %v", s, got, wantOwn)
					}
				default:
					if got != want {
						t.Errorf("gateway %d site view %v, want %v", s, got, want)
					}
				}
			}
		})
	}
}

// TestFederationSegmentCrashAndFailover exercises the remaining federation
// faults at 4 segments with redundant gateways: a whole-segment crash is
// removed from every surviving site view by digest staleness, while a
// primary-gateway crash in another segment is ridden through by the backup
// (leader suppression lapses within 2*Tann) without the segment ever
// leaving the site view. The gateways' recorded federation streams must
// re-execute exactly.
func TestFederationSegmentCrashAndFailover(t *testing.T) {
	for _, substrate := range []Substrate{SubstrateBitAccurate, SubstrateFast} {
		t.Run(substrate.String(), func(t *testing.T) {
			cfg := DefaultFederationConfig()
			cfg.Node.Substrate = substrate
			cfg.RedundantGateways = true
			cfg.RecordFed = true

			fed := NewFederation(cfg)

			var removals []NodeSet
			witness := fed.Gateway(0, 0)
			witness.OnSiteChange(func(_, failed NodeSet) {
				if !failed.Empty() {
					removals = append(removals, failed)
				}
			})

			fed.BootstrapAll()
			fed.Run(150 * time.Millisecond)
			all := fed.Site()
			for _, g := range fed.Gateways() {
				if got := g.SiteView(); got != all {
					t.Fatalf("gateway %v site view %v before faults, want %v", g.ID(), got, all)
				}
			}

			fed.Gateway(2, 0).Crash() // primary of segment 2: backup rides through
			fed.CrashSegment(3)       // whole segment 3: removed by staleness
			fed.Run(250 * time.Millisecond)

			want := all.Remove(3)
			for _, g := range fed.Gateways() {
				if !g.Alive() {
					continue
				}
				if got := g.SiteView(); got != want {
					t.Errorf("gateway %v site view %v after faults, want %v", g.ID(), got, want)
				}
			}
			if len(removals) != 1 || removals[0] != can.MakeSet(3) {
				t.Errorf("witness saw removals %v, want exactly [{n03}] (segment 2 must ride through failover)",
					removals)
			}

			if len(fed.FedLog().Records) == 0 {
				t.Fatal("RecordFed captured nothing")
			}
			if err := fed.FedLog().Verify(); err != nil {
				t.Fatalf("federation capture does not replay: %v", err)
			}
		})
	}
}
