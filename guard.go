package canely

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
)

// A Network is a single-goroutine object: the discrete-event simulation it
// wraps has no internal locking, so sharing one Network across goroutines
// (for instance handing the same instance to several campaign workers)
// silently corrupts the event queue. NewNetwork records the creating
// goroutine and the mutating entry points (Run, AddNode, BootstrapAll)
// panic when called from any other one — each internal/campaign worker must
// construct its own Network inside its extractor. Callbacks fired during
// Run execute on the owner goroutine, so re-entering the facade from a
// membership or scheduler callback stays legal.

// goroutineID parses the current goroutine's id from its stack header
// ("goroutine 123 [running]:"). It is only called on the facade's mutating
// entry points, never per simulated event, so the ~µs cost is invisible.
func goroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	header := bytes.TrimPrefix(buf[:n], []byte("goroutine "))
	if i := bytes.IndexByte(header, ' '); i > 0 {
		if id, err := strconv.ParseInt(string(header[:i]), 10, 64); err == nil {
			return id
		}
	}
	return -1
}

// checkOwner enforces the single-goroutine contract.
func (n *Network) checkOwner() {
	if id := goroutineID(); id != n.owner {
		panic(fmt.Sprintf(
			"canely: Network created on goroutine %d used from goroutine %d; "+
				"a Network is single-goroutine — build one Network per campaign worker",
			n.owner, id))
	}
}
