package canely

// A Network is a single-goroutine object: the discrete-event simulation it
// wraps has no internal locking, so entering one Network from two
// goroutines at once (for instance handing the same instance to several
// campaign workers) silently corrupts the event queue. The mutating entry
// points (Run, AddNode, BootstrapAll) hold an atomic in-use flag and panic
// when they observe an overlap — each internal/campaign worker must
// construct its own Network inside its extractor. Callbacks fired during
// Run execute on the goroutine driving Run and never re-enter the guarded
// entry points, so re-entering the facade from a membership or scheduler
// callback stays legal.
//
// The flag costs a couple of nanoseconds per entry, so campaign extractors
// — which cross the facade a handful of times per run — pay nothing for
// the protection. (An earlier revision pinned the Network to its creating
// goroutine by parsing runtime.Stack; that caught hand-offs that are
// perfectly safe under a happens-before edge, and its ~10µs per check was
// a measurable share of short campaign runs.)

// enter acquires the in-use flag. leave must be called (deferred) by every
// caller that enters successfully.
func (n *Network) enter() {
	if !n.busy.CompareAndSwap(0, 1) {
		panic("canely: concurrent use of a single-goroutine Network; " +
			"build one Network per campaign worker")
	}
}

// leave releases the in-use flag.
func (n *Network) leave() { n.busy.Store(0) }
