// Command latency runs the §6.6 related-work study: the same node crash
// detected by the CANELy failure detection suite, by the OSEK NM logical
// ring and by CANopen master-slave node guarding, all on the same simulated
// bus. The paper's claim: CANELy detects in tens of milliseconds where the
// OSEK ring needs on the order of one second. Trials run as a parallel
// simulation campaign (see internal/campaign), so raising -trials is cheap.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"canely"
	"canely/internal/analysis"
	"canely/internal/experiments"
)

// options collects the flag values so the report is testable.
type options struct {
	nodes     int
	trials    int
	seed      int64
	workers   int
	tb        time.Duration
	substrate canely.Substrate
}

// report renders the full study: measured comparison, analytical worst
// cases, and the latency/bandwidth trade-off sweep.
func report(o options) string {
	cfg := experiments.DefaultLatencyConfig()
	cfg.N = o.nodes
	cfg.Trials = o.trials
	cfg.Seed = o.seed
	cfg.Workers = o.workers
	cfg.CANELy.Tb = o.tb
	cfg.CANELy.Substrate = o.substrate

	var sb strings.Builder
	fmt.Fprintf(&sb, "Failure detection latency, %d nodes, %d trials per scheme\n\n", o.nodes, o.trials)
	results := experiments.MeasureAllLatencies(cfg)
	sb.WriteString(experiments.FormatLatencies(results))
	sb.WriteString("\n")

	model := analysis.DefaultRelatedWork()
	model.N = o.nodes
	model.CANELy.Tb = o.tb
	sb.WriteString("Analytical worst cases (§6.6):\n")
	sb.WriteString(model.FormatRelatedWork())

	sb.WriteString("\nLatency / bandwidth trade-off over the heartbeat period Tb:\n")
	sb.WriteString(experiments.FormatTradeoff(
		experiments.MeasureLatencyBandwidthTradeoff(o.substrate, nil, o.nodes, o.trials, o.seed)))
	return sb.String()
}

func main() {
	var o options
	var substrate string
	flag.IntVar(&o.nodes, "nodes", 8, "network size")
	flag.IntVar(&o.trials, "trials", 10, "crash trials per scheme")
	flag.Int64Var(&o.seed, "seed", 1, "simulation seed")
	flag.IntVar(&o.workers, "workers", 0, "campaign workers (0 = GOMAXPROCS)")
	flag.DurationVar(&o.tb, "tb", 10*time.Millisecond, "CANELy heartbeat period")
	flag.StringVar(&substrate, "substrate", "bit", "CANELy medium substrate: bit (bit-accurate) or fast (frame-level)")
	flag.Parse()
	sub, err := canely.ParseSubstrate(substrate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "latency:", err)
		os.Exit(2)
	}
	o.substrate = sub
	fmt.Print(report(o))
}
