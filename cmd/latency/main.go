// Command latency runs the §6.6 related-work study: the same node crash
// detected by the CANELy failure detection suite, by the OSEK NM logical
// ring and by CANopen master-slave node guarding, all on the same simulated
// bus. The paper's claim: CANELy detects in tens of milliseconds where the
// OSEK ring needs on the order of one second.
package main

import (
	"flag"
	"fmt"
	"time"

	"canely/internal/analysis"
	"canely/internal/experiments"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 8, "network size")
		trials = flag.Int("trials", 10, "crash trials per scheme")
		seed   = flag.Int64("seed", 1, "simulation seed")
		tb     = flag.Duration("tb", 10*time.Millisecond, "CANELy heartbeat period")
	)
	flag.Parse()

	cfg := experiments.DefaultLatencyConfig()
	cfg.N = *nodes
	cfg.Trials = *trials
	cfg.Seed = *seed
	cfg.CANELy.Tb = *tb

	fmt.Printf("Failure detection latency, %d nodes, %d trials per scheme\n\n", *nodes, *trials)
	results := experiments.MeasureAllLatencies(cfg)
	fmt.Print(experiments.FormatLatencies(results))
	fmt.Println()

	model := analysis.DefaultRelatedWork()
	model.N = *nodes
	model.CANELy.Tb = *tb
	fmt.Println("Analytical worst cases (§6.6):")
	fmt.Print(model.FormatRelatedWork())

	fmt.Println()
	fmt.Println("Latency / bandwidth trade-off over the heartbeat period Tb:")
	fmt.Print(experiments.FormatTradeoff(
		experiments.MeasureLatencyBandwidthTradeoff(nil, *nodes, *trials, *seed)))
}
