package main

import (
	"strings"
	"testing"
	"time"
)

// TestReportSmoke runs the whole main path on a small configuration and
// checks every section of the study is present and non-empty.
func TestReportSmoke(t *testing.T) {
	out := report(options{nodes: 6, trials: 2, seed: 1, tb: 10 * time.Millisecond})
	if out == "" {
		t.Fatal("empty report")
	}
	for _, want := range []string{
		"Failure detection latency",
		"CANELy", "OSEK NM", "CANopen guarding", "TTP (TDMA model)",
		"Analytical worst cases",
		"trade-off", "ELS util",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report lacks %q:\n%s", want, out)
		}
	}
	// Parseability of the comparison table: a CANELy row with a millisecond
	// latency figure.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "CANELy") {
			if !strings.Contains(line, "ms") {
				t.Fatalf("CANELy row has no latency figure: %q", line)
			}
			return
		}
	}
	t.Fatal("no CANELy row found")
}
