// Command compare regenerates the attribute comparison tables of the
// paper: Figure 1 (TTP vs standard CAN) and Figure 11 (TTP vs CAN vs
// CANELy), including the computed cells — the inaccessibility bounds from
// the scenario enumeration of [22] and the membership latency measured on
// the simulated CANELy stack.
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"canely/internal/analysis"
	"canely/internal/can"
	"canely/internal/experiments"
)

// report renders the full comparison study: the Figure 1 and Figure 11
// tables, the inaccessibility scenario enumerations and the response-time
// analysis of the protocol traffic.
func report(trials int, seed int64) string {
	var b strings.Builder

	fmt.Fprint(&b, analysis.Figure1())
	b.WriteString("\n")

	in := analysis.DefaultFigure11Inputs()
	lat := experiments.MeasureMembershipLatency(trials, seed)
	in.MembershipLatency = lat.Max()
	fmt.Fprint(&b, analysis.Figure11(in))
	b.WriteString("\n")

	b.WriteString("Inaccessibility scenario enumeration (after [22]):\n\n")
	b.WriteString("Native CAN:\n")
	b.WriteString(analysis.CANInaccessibility().FormatScenarios())
	b.WriteString("\n")
	b.WriteString("CANELy (inaccessibility control bounds the retransmission burst):\n")
	b.WriteString(analysis.CANELyInaccessibility().FormatScenarios())
	b.WriteString("\n")
	fmt.Fprintf(&b, "Measured membership latency over %d crash trials: %v\n", trials, &lat)

	b.WriteString("\n")
	b.WriteString("MCAN4 response-time analysis of the protocol traffic (after [20]),\n")
	b.WriteString("8 nodes, Tb=10ms, Tm=50ms, 1 Mbit/s, CANELy inaccessibility charged:\n")
	_, hi := analysis.CANELyInaccessibility().Bounds()
	res, err := analysis.ResponseTimes(
		analysis.CANELyMessageSet(8, 10*time.Millisecond, 50*time.Millisecond),
		can.Rate1Mbps, can.FormatExtended, can.Rate1Mbps.DurationOf(hi))
	if err != nil {
		fmt.Fprintf(&b, "analysis failed: %v\n", err)
		return b.String()
	}
	b.WriteString(analysis.FormatResponseTimes(res))
	return b.String()
}

func main() {
	var (
		trials = flag.Int("trials", 10, "membership latency measurement trials")
		seed   = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	fmt.Print(report(*trials, *seed))
}
