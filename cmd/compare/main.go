// Command compare regenerates the attribute comparison tables of the
// paper: Figure 1 (TTP vs standard CAN) and Figure 11 (TTP vs CAN vs
// CANELy), including the computed cells — the inaccessibility bounds from
// the scenario enumeration of [22] and the membership latency measured on
// the simulated CANELy stack.
package main

import (
	"flag"
	"fmt"
	"time"

	"canely/internal/analysis"
	"canely/internal/can"
	"canely/internal/experiments"
)

func main() {
	var (
		trials = flag.Int("trials", 10, "membership latency measurement trials")
		seed   = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	fmt.Print(analysis.Figure1())
	fmt.Println()

	in := analysis.DefaultFigure11Inputs()
	lat := experiments.MeasureMembershipLatency(*trials, *seed)
	in.MembershipLatency = lat.Max()
	fmt.Print(analysis.Figure11(in))
	fmt.Println()

	fmt.Println("Inaccessibility scenario enumeration (after [22]):")
	fmt.Println()
	fmt.Println("Native CAN:")
	fmt.Print(analysis.CANInaccessibility().FormatScenarios())
	fmt.Println()
	fmt.Println("CANELy (inaccessibility control bounds the retransmission burst):")
	fmt.Print(analysis.CANELyInaccessibility().FormatScenarios())
	fmt.Println()
	fmt.Printf("Measured membership latency over %d crash trials: %v\n", *trials, &lat)

	fmt.Println()
	fmt.Println("MCAN4 response-time analysis of the protocol traffic (after [20]),")
	fmt.Println("8 nodes, Tb=10ms, Tm=50ms, 1 Mbit/s, CANELy inaccessibility charged:")
	_, hi := analysis.CANELyInaccessibility().Bounds()
	res, err := analysis.ResponseTimes(
		analysis.CANELyMessageSet(8, 10*time.Millisecond, 50*time.Millisecond),
		can.Rate1Mbps, can.FormatExtended, can.Rate1Mbps.DurationOf(hi))
	if err != nil {
		fmt.Println("analysis failed:", err)
		return
	}
	fmt.Print(analysis.FormatResponseTimes(res))
}
