package main

import (
	"strings"
	"testing"
)

// TestReportSmoke runs the whole main path on a small trial count and
// checks every section of the study is present.
func TestReportSmoke(t *testing.T) {
	out := report(2, 1)
	if out == "" {
		t.Fatal("empty report")
	}
	for _, want := range []string{
		"Figure 1 - Comparison of TTP and CAN",
		"Figure 11 - Comparison of TTP, CAN and CANELy",
		"Membership service",
		"Inaccessibility scenario enumeration",
		"Native CAN:",
		"error burst over 16 retransmissions",
		"Measured membership latency over 2 crash trials",
		"MCAN4 response-time analysis",
		"FDA failure-sign",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report lacks %q:\n%s", want, out)
		}
	}
	// Parseability of the Figure 11 table: the CANELy membership cell must
	// carry the measured latency figure.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Membership ") && strings.Contains(line, "latency") {
			if !strings.Contains(line, "ms") {
				t.Fatalf("membership row has no measured latency: %q", line)
			}
			return
		}
	}
	t.Fatal("no measured membership latency row found")
}
