package main

import (
	"testing"

	"canely/internal/can"
)

func TestParseSet(t *testing.T) {
	cases := []struct {
		spec string
		want can.NodeSet
	}{
		{"", 0},
		{"0-4", can.RangeSet(0, 5)},
		{"0,2,5", can.MakeSet(0, 2, 5)},
		{"1-2,7", can.MakeSet(1, 2, 7)},
		{" 3 , 5 ", can.MakeSet(3, 5)},
	}
	for _, c := range cases {
		got, err := parseSet(c.spec)
		if err != nil {
			t.Fatalf("%q: %v", c.spec, err)
		}
		if got != c.want {
			t.Fatalf("%q = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestParseSetErrors(t *testing.T) {
	for _, spec := range []string{"x", "4-1", "1-", "-3", "1,,2"} {
		if _, err := parseSet(spec); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
}
