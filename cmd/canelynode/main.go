// Command canelynode runs one live CANELy site against a canelyd broker.
//
//	canelyd -listen unix:/tmp/canely.sock &
//	for i in 0 1 2 3 4; do
//	  canelynode -broker unix:/tmp/canely.sock -id $i -bootstrap 0-4 \
//	    -duration 3s &
//	done
//
// Each process assembles the full protocol stack — failure detection,
// failure-sign diffusion, reception-history agreement and site membership —
// over a socket connection to the broker, driven by wall-clock timers.
// Every process prints its final membership view on exit in an identical
// format, so agreement across a cluster is one `sort | uniq` away.
//
// Scenario flags: -bootstrap installs a pre-agreed initial view (every
// founding member must be given the same set); -join integrates into a
// running site instead; -leave and -crash schedule departure at an offset
// from start. -record FILE captures the node's core event/command stream
// for offline re-verification with `canelysim -replay FILE`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"canely/internal/can"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/replay"
	"canely/internal/rt"
	"canely/internal/stack"
)

// parseSet parses "0-4" or "0,1,2,3,4" (or a mix) into a NodeSet.
func parseSet(spec string) (can.NodeSet, error) {
	var s can.NodeSet
	if spec == "" {
		return s, nil
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if lo, hi, ok := strings.Cut(item, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a > b {
				return 0, fmt.Errorf("malformed range %q", item)
			}
			s |= can.RangeSet(can.NodeID(a), can.NodeID(b+1))
			continue
		}
		id, err := strconv.Atoi(item)
		if err != nil {
			return 0, fmt.Errorf("malformed id %q", item)
		}
		s = s.Add(can.NodeID(id))
	}
	return s, nil
}

func main() {
	var (
		broker   = flag.String("broker", ":8964", "broker address, unix:/path or [tcp:]host:port")
		brokerB  = flag.String("brokerb", "", "second broker for replicated media (optional)")
		id       = flag.Int("id", 0, "node identity")
		boot     = flag.String("bootstrap", "", "pre-agreed initial view, e.g. 0-4 or 0,2,5 (founding members only)")
		join     = flag.Bool("join", false, "join a running site instead of bootstrapping")
		duration = flag.Duration("duration", 3*time.Second, "wall-clock run time before reporting the final view")
		leave    = flag.Duration("leave", 0, "voluntarily leave this long after start (0 = never)")
		crash    = flag.Duration("crash", 0, "fail-silent this long after start (0 = never)")
		tb       = flag.Duration("tb", 150*time.Millisecond, "heartbeat period Tb")
		ttd      = flag.Duration("ttd", 50*time.Millisecond, "assumed transmission delay bound Ttd")
		tm       = flag.Duration("tm", 400*time.Millisecond, "membership cycle period Tm")
		tjoin    = flag.Duration("tjoinwait", 2*time.Second, "maximum join wait delay (>> Tm)")
		trha     = flag.Duration("trha", 100*time.Millisecond, "RHA maximum termination time (< Tm)")
		jBound   = flag.Int("j", 2, "inconsistent omission degree bound")
		traffic  = flag.Duration("traffic", 0, "cyclic application traffic period (0 = none)")
		record   = flag.String("record", "", "save the core event/command stream to this file (JSON)")
		verbose  = flag.Bool("v", false, "log membership changes and link state as they happen")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if *verbose {
			fmt.Fprintf(os.Stderr, "node %d: "+format+"\n", append([]any{*id}, args...)...)
		}
	}

	view, err := parseSet(*boot)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if (view == 0) == !*join {
		fmt.Fprintln(os.Stderr, "exactly one of -bootstrap and -join is required")
		os.Exit(2)
	}

	cfg := rt.NodeConfig{
		ID:      can.NodeID(*id),
		Broker:  *broker,
		BrokerB: *brokerB,
		Stack: stack.Config{
			FD: fd.Config{Tb: *tb, Ttd: *ttd},
			Membership: membership.Config{
				Tm:        *tm,
				TjoinWait: *tjoin,
				RHA:       membership.RHAConfig{Trha: *trha, J: *jBound},
			},
			J: *jBound,
		},
		Record: *record != "",
		Dial:   rt.DialConfig{Logf: logf},
	}
	n, err := rt.StartNode(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	n.OnChange(func(c membership.Change) {
		logf("membership change: active=%v failed=%v", c.Active, c.Failed)
	})

	if *join {
		logf("joining via %s", *broker)
		n.Join()
	} else {
		logf("bootstrapping view %v", view)
		n.Bootstrap(view)
	}
	if *traffic > 0 {
		n.StartCyclicTraffic(1, *traffic, []byte("live"))
	}

	end := time.After(*duration)
	var leaveC, crashC <-chan time.Time
	if *leave > 0 {
		leaveC = time.After(*leave)
	}
	if *crash > 0 {
		crashC = time.After(*crash)
	}
	for done := false; !done; {
		select {
		case <-leaveC:
			logf("leaving")
			n.Leave()
			leaveC = nil
		case <-crashC:
			logf("crashing")
			n.Crash()
			crashC = nil
		case <-end:
			done = true
		}
	}

	// The canonical agreement line: every correct process in a cluster must
	// print an identical view.
	fmt.Printf("node %d final view %v member=%t alive=%t\n",
		*id, n.View(), n.Member(), n.Alive())

	n.Close()
	if *record != "" {
		if err := saveLog(n.EventLog(), *record); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		logf("recorded %d core events to %s", len(n.EventLog().Records), *record)
	}
}

// saveLog writes a recorded event log to path.
func saveLog(log *replay.Log, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := log.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
