// Command brokerload drives a sharded rt.Broker with a large population of
// concurrent connections — a handful of raw protocol nodes generating frame
// traffic plus hundreds-to-thousands of passive wire.RoleTap observers —
// and reports what the broker sustained: connection counts, delivered
// frames, tap fan-out throughput, queue depths and drops.
//
// By default it starts its own broker (with /metrics) and loads it:
//
//	brokerload -conns 1200 -duration 10s
//
// Point it at an existing broker with -addr; -metrics then names the
// broker's metrics endpoint (optional, for the final scrape).
//
// The exit status is the verdict: 0 when every requested connection held
// for the whole run, 1 otherwise.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"canely/internal/can"
	"canely/internal/rt"
	"canely/internal/wire"
)

func main() {
	var (
		addr     = flag.String("addr", "", "broker address (unix:/path or host:port); empty starts an in-process broker")
		conns    = flag.Int("conns", 1200, "total concurrent connections (nodes + taps)")
		nodes    = flag.Int("nodes", 16, "traffic-generating node connections (rest are taps)")
		period   = flag.Duration("period", 8*time.Millisecond, "per-node transmit request period (fan-out load = nodes/period x taps msgs/s)")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		rate     = flag.Int("rate", int(can.Rate1Mbps), "broker bit rate when starting in-process")
		metrics  = flag.String("metrics", "", "metrics URL to scrape at the end (defaults to the in-process broker's)")
		verbose  = flag.Bool("v", false, "log broker connection lifecycle")
	)
	flag.Parse()
	if *nodes < 1 || *nodes > int(can.MaxNodes) {
		fmt.Fprintf(os.Stderr, "brokerload: -nodes must be 1..%d (CAN node identities)\n", can.MaxNodes)
		os.Exit(2)
	}
	if *conns < *nodes {
		fmt.Fprintf(os.Stderr, "brokerload: -conns (%d) must be >= -nodes (%d)\n", *conns, *nodes)
		os.Exit(2)
	}
	if err := run(*addr, *conns, *nodes, *period, *duration, can.BitRate(*rate), *metrics, *verbose); err != nil {
		fmt.Fprintf(os.Stderr, "brokerload: %v\n", err)
		os.Exit(1)
	}
}

// counters aggregates what the client population observed.
type counters struct {
	dialFailures atomic.Int64
	lost         atomic.Int64 // connections that died before the deadline
	tapFrames    atomic.Int64 // frame indications across all taps
	ownFrames    atomic.Int64 // self-receptions across all nodes
	requests     atomic.Int64 // transmit requests issued
}

func run(addr string, conns, nodes int, period, duration time.Duration, rate can.BitRate, metricsURL string, verbose bool) error {
	if addr == "" {
		cfg := rt.BrokerConfig{Rate: rate, MetricsAddr: "127.0.0.1:0"}
		if verbose {
			cfg.Logf = func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) }
		}
		b, err := rt.ListenBroker("127.0.0.1:0", cfg)
		if err != nil {
			return err
		}
		defer b.Close()
		addr = b.Addr().String()
		if metricsURL == "" {
			metricsURL = b.MetricsURL()
		}
		fmt.Printf("broker: %s (metrics %s)\n", addr, metricsURL)
	}
	network, address := rt.SplitAddr(addr)

	var c counters
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Taps first: the observers must be attached before traffic starts or
	// the early frames are invisible to them.
	taps := conns - nodes
	for i := 0; i < taps; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tap(network, address, stop, &c)
		}()
	}
	// Stagger node start so arbitration sees overlapping requests quickly
	// without a thundering-herd handshake.
	for i := 0; i < nodes; i++ {
		id := can.NodeID(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			node(network, address, id, period, stop, &c)
		}()
	}

	start := time.Now()
	time.Sleep(duration)
	// Scrape under load, before teardown, so the gauges are meaningful.
	var liveMetrics string
	if metricsURL != "" {
		if body, err := scrape(metricsURL); err == nil {
			liveMetrics = body
		} else {
			fmt.Fprintf(os.Stderr, "brokerload: metrics scrape: %v\n", err)
		}
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	held := int64(conns) - c.dialFailures.Load() - c.lost.Load()
	fmt.Printf("connections: %d requested, %d held for %v (%d dial failures, %d lost)\n",
		conns, held, elapsed.Round(time.Millisecond), c.dialFailures.Load(), c.lost.Load())
	fmt.Printf("traffic: %d requests, %d own-frame confirm indications\n",
		c.requests.Load(), c.ownFrames.Load())
	tapped := c.tapFrames.Load()
	fmt.Printf("tap fan-out: %d frame indications across %d taps (%.0f msgs/s)\n",
		tapped, taps, float64(tapped)/elapsed.Seconds())

	if liveMetrics != "" {
		fmt.Printf("broker /metrics (under load):\n%s", liveMetrics)
	}
	if held < int64(conns) {
		return fmt.Errorf("only %d of %d connections survived the run", held, conns)
	}
	return nil
}

// dial connects and handshakes one client.
func dial(network, address string, id can.NodeID, role wire.Role) (net.Conn, error) {
	conn, err := net.DialTimeout(network, address, 10*time.Second)
	if err != nil {
		return nil, err
	}
	if err := wire.Write(conn, wire.Msg{Kind: wire.KindHello, Node: id, Role: role}); err != nil {
		conn.Close()
		return nil, err
	}
	welcome, err := wire.Read(conn)
	if err != nil || welcome.Kind != wire.KindWelcome {
		conn.Close()
		return nil, fmt.Errorf("bad welcome: %v", err)
	}
	return conn, nil
}

// tap holds one passive observer connection: count every frame indication
// until told to stop.
func tap(network, address string, stop <-chan struct{}, c *counters) {
	conn, err := dial(network, address, 0, wire.RoleTap)
	if err != nil {
		c.dialFailures.Add(1)
		return
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Buffered reads: at full fan-out a tap sees hundreds of thousands
		// of 16-byte records per second; one syscall each would make the
		// load generator, not the broker, the bottleneck.
		r := bufio.NewReaderSize(conn, 16<<10)
		for {
			m, err := wire.Read(r)
			if err != nil {
				return
			}
			if m.Kind == wire.KindFrame {
				c.tapFrames.Add(1)
			}
		}
	}()
	select {
	case <-stop:
		conn.Close()
		<-done
	case <-done:
		c.lost.Add(1)
		conn.Close()
	}
}

// node holds one traffic-generating connection: request a frame every
// period and drain indications.
func node(network, address string, id can.NodeID, period time.Duration, stop <-chan struct{}, c *counters) {
	conn, err := dial(network, address, id, wire.RoleNode)
	if err != nil {
		c.dialFailures.Add(1)
		return
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := bufio.NewReaderSize(conn, 16<<10)
		for {
			m, err := wire.Read(r)
			if err != nil {
				return
			}
			if m.Kind == wire.KindFrame && m.Own {
				c.ownFrames.Add(1)
			}
		}
	}()
	tick := time.NewTicker(period)
	defer tick.Stop()
	seq := uint32(0)
	for {
		select {
		case <-stop:
			conn.Close()
			<-done
			return
		case <-done:
			c.lost.Add(1)
			conn.Close()
			return
		case <-tick.C:
			f := can.Frame{ID: uint32(id)<<16 | (seq & 0xffff), DLC: 4}
			f.Data[0], f.Data[1] = byte(id), byte(seq)
			seq++
			if err := wire.Write(conn, wire.Msg{Kind: wire.KindRequest, Frame: f}); err != nil {
				c.lost.Add(1)
				conn.Close()
				<-done
				return
			}
			c.requests.Add(1)
		}
	}
}

// scrape fetches the metrics endpoint body.
func scrape(url string) (string, error) {
	cl := http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	return string(body), err
}
