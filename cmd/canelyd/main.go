// Command canelyd is the CANELy bus broker: it emulates one CAN medium
// over local sockets so independent canelynode processes share a bus.
//
//	canelyd -listen :8964
//	canelyd -listen unix:/tmp/canely.sock -rate 125000
//
// The broker runs the frame-level bus substrate — priority arbitration,
// wired-AND clustering of identical remote frames, per-frame duration
// pacing at the configured bit rate and TEC/REC fault confinement — on a
// wall-clock-paced event loop, so the medium behaves exactly like the
// simulator's, only in real time. For media redundancy run two brokers and
// point canelynode at both.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"canely/internal/can"
	"canely/internal/rt"
)

func main() {
	var (
		listen  = flag.String("listen", ":8964", "listen address, unix:/path or [tcp:]host:port")
		rate    = flag.Int("rate", int(can.Rate1Mbps), "emulated bit rate (bit/s)")
		metrics = flag.String("metrics", "", "serve /metrics on this host:port (empty disables)")
		shards  = flag.Int("shards", 0, "writer-shard count (0 picks a CPU-proportional default)")
		queue   = flag.Int("queue", 0, "per-client outbound queue bound in messages (0 = default)")
		quiet   = flag.Bool("quiet", false, "suppress connection lifecycle logging")
	)
	flag.Parse()

	cfg := rt.BrokerConfig{
		Rate:        can.BitRate(*rate),
		MetricsAddr: *metrics,
		Shards:      *shards,
		QueueDepth:  *queue,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	b, err := rt.ListenBroker(*listen, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("canelyd: bus up on %v at %d bit/s\n", b.Addr(), b.Rate())
	if url := b.MetricsURL(); url != "" {
		fmt.Printf("canelyd: metrics at %s\n", url)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("canelyd: shutting down")
	b.Close()
}
