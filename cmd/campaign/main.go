// Command campaign runs a parallel Monte-Carlo simulation campaign: a
// parameter grid over the CANELy configuration × a seed sweep, fanned out
// over a worker pool (internal/campaign), with the failure-detector QoS of
// every run (detection latency, mistaken suspicions, agreement violations)
// reduced to statistical aggregates. Aggregates are deterministic: the same
// grid and seeds produce byte-identical JSON at any -workers value.
//
// Examples:
//
//	campaign -grid "tb=5ms,10ms,20ms" -seeds 200 -o report.json
//	campaign -grid "tb=10ms;pcorrupt=0,0.01" -seeds 1000 -csv report.csv
//	campaign -bench BENCH_campaign.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"canely"
	"canely/internal/campaign"
	"canely/internal/experiments"
	"canely/internal/prof"
)

// The knob tables map grid keys to configuration setters; the table a key
// lives in decides how its values parse.
var durationKnobs = map[string]func(*canely.Config, time.Duration){
	"tb":        func(c *canely.Config, v time.Duration) { c.Tb = v },
	"tm":        func(c *canely.Config, v time.Duration) { c.Tm = v },
	"ttd":       func(c *canely.Config, v time.Duration) { c.Ttd = v },
	"trha":      func(c *canely.Config, v time.Duration) { c.Trha = v },
	"tjoinwait": func(c *canely.Config, v time.Duration) { c.TjoinWait = v },
}

var floatKnobs = map[string]func(*canely.Config, float64){
	"pcorrupt":      func(c *canely.Config, v float64) { c.PCorrupt = v },
	"pinconsistent": func(c *canely.Config, v float64) { c.PInconsistent = v },
}

var intKnobs = map[string]func(*canely.Config, int){
	"j": func(c *canely.Config, v int) { c.J = v },
	"k": func(c *canely.Config, v int) { c.K = v },
}

// parseGrid turns "tb=5ms,10ms;pcorrupt=0,0.01" into campaign axes.
func parseGrid(spec string) ([]campaign.Axis, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var axes []campaign.Axis
	for _, part := range strings.Split(spec, ";") {
		key, vals, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || vals == "" {
			return nil, fmt.Errorf("axis %q: want key=v1,v2,...", part)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		ax := campaign.Axis{Name: key}
		for _, raw := range strings.Split(vals, ",") {
			raw = strings.TrimSpace(raw)
			var av campaign.AxisValue
			switch {
			case durationKnobs[key] != nil:
				d, err := time.ParseDuration(raw)
				if err != nil {
					return nil, fmt.Errorf("axis %q: bad duration %q: %v", key, raw, err)
				}
				apply := durationKnobs[key]
				av = campaign.AxisValue{Label: d.String(), Apply: func(c *canely.Config) { apply(c, d) }, Value: d}
			case floatKnobs[key] != nil:
				f, err := strconv.ParseFloat(raw, 64)
				if err != nil {
					return nil, fmt.Errorf("axis %q: bad float %q: %v", key, raw, err)
				}
				apply := floatKnobs[key]
				av = campaign.AxisValue{Label: raw, Apply: func(c *canely.Config) { apply(c, f) }, Value: f}
			case intKnobs[key] != nil:
				n, err := strconv.Atoi(raw)
				if err != nil {
					return nil, fmt.Errorf("axis %q: bad int %q: %v", key, raw, err)
				}
				apply := intKnobs[key]
				av = campaign.AxisValue{Label: raw, Apply: func(c *canely.Config) { apply(c, n) }, Value: n}
			default:
				return nil, fmt.Errorf("unknown grid key %q (known: tb, tm, ttd, trha, tjoinwait, pcorrupt, pinconsistent, j, k)", key)
			}
			ax.Values = append(ax.Values, av)
		}
		axes = append(axes, ax)
	}
	return axes, nil
}

// benchReport is the BENCH_campaign.json artifact: the campaign engine's
// throughput ladder on the default E10 grid, measured once per substrate —
// the perf baseline future changes regress against. FastVsBitSpeedup is the
// single-worker runs/sec ratio, the honest per-core comparison.
type benchReport struct {
	Benchmark     string `json:"benchmark"`
	Nodes         int    `json:"nodes"`
	Grid          string `json:"grid"`
	RunsPerLadder int    `json:"runs_per_ladder"`
	// Host pins the measurement conditions next to the numbers: on a
	// 1-core host the worker ladder can only show contention overhead, so a
	// flat speedup column there says nothing about the engine's scaling.
	Host             hostInfo          `json:"host"`
	Substrates       []substrateSeries `json:"substrates"`
	FastVsBitSpeedup float64           `json:"fast_vs_bit_speedup"`
	P99DetectionMs   float64           `json:"p99_detection_ms"`
	// AllocsPerRun/BytesPerRun is the heap churn of one complete campaign
	// run (fast substrate, workers=1): the PR-over-PR allocation trajectory.
	AllocsPerRun float64 `json:"allocs_per_run"`
	BytesPerRun  float64 `json:"bytes_per_run"`
	// The pre-PR fast/workers=1 throughput on this host and the speedup the
	// current numbers show against it.
	PrePRFastW1RunsPerSec float64           `json:"pre_pr_fast_w1_runs_per_sec"`
	FastW1SpeedupVsPrePR  float64           `json:"fast_w1_speedup_vs_pre_pr"`
	SteadyState           *steadyStateStats `json:"steady_state"`
	Federation            *federationStats  `json:"federation"`
	GossipComparison      *gossipStats      `json:"gossip_comparison"`
}

// gossipStats is the CANELy-vs-SWIM scaling section of the bench
// artifact: detection latency, false-suspicion rate and per-node
// bandwidth at cluster sizes far beyond the 64-identity simulation cap,
// from the seeded model campaign (internal/experiments gossip
// comparison).
type gossipStats struct {
	Seeds  int           `json:"seeds"`
	Points []gossipPoint `json:"points"`
}

type gossipPoint struct {
	Nodes int `json:"nodes"`

	CANELyDetectMs     float64 `json:"canely_detect_ms"`
	CANELyDetectCI95Ms float64 `json:"canely_detect_ci95_ms"`
	CANELyFPNodeHour   float64 `json:"canely_fp_per_node_hour"`
	CANELyFPCI95       float64 `json:"canely_fp_ci95"`
	CANELyBWBps        float64 `json:"canely_bw_bps"`
	CANELyBWCI95Bps    float64 `json:"canely_bw_ci95_bps"`

	GossipDetectMs     float64 `json:"gossip_detect_ms"`
	GossipDetectCI95Ms float64 `json:"gossip_detect_ci95_ms"`
	GossipFPNodeHour   float64 `json:"gossip_fp_per_node_hour"`
	GossipFPCI95       float64 `json:"gossip_fp_ci95"`
	GossipBWBps        float64 `json:"gossip_bw_bps"`
	GossipBWCI95Bps    float64 `json:"gossip_bw_ci95_bps"`
}

// measureGossip runs the comparison sweep for the bench artifact.
func measureGossip() *gossipStats {
	const seeds = 50
	points := experiments.MeasureGossipComparison([]int{10, 100, 1000, 10000}, seeds, 1)
	gs := &gossipStats{Seeds: seeds}
	for _, p := range points {
		gs.Points = append(gs.Points, gossipPoint{
			Nodes:              p.Nodes,
			CANELyDetectMs:     p.CANELyDetectMs,
			CANELyDetectCI95Ms: p.CANELyDetectCI95Ms,
			CANELyFPNodeHour:   p.CANELyFPPerNodeHour,
			CANELyFPCI95:       p.CANELyFPCI95,
			CANELyBWBps:        p.CANELyBWBitsPerSec,
			CANELyBWCI95Bps:    p.CANELyBWCI95,
			GossipDetectMs:     p.GossipDetectMs,
			GossipDetectCI95Ms: p.GossipDetectCI95Ms,
			GossipFPNodeHour:   p.GossipFPPerNodeHour,
			GossipFPCI95:       p.GossipFPCI95,
			GossipBWBps:        p.GossipBWBitsPerSec,
			GossipBWCI95Bps:    p.GossipBWCI95,
		})
	}
	return gs
}

// federationStats is the multi-segment scaling section of the bench
// artifact: cold-boot site-view convergence and segment-crash detection
// latency as the segment count grows (internal/experiments federation
// campaign, fast substrate).
type federationStats struct {
	NodesPerSegment int               `json:"nodes_per_segment"`
	Seeds           int               `json:"seeds"`
	Points          []federationPoint `json:"points"`
}

type federationPoint struct {
	Segments       int     `json:"segments"`
	ConvergeMs     float64 `json:"converge_ms"`
	ConvergeCI95Ms float64 `json:"converge_ci95_ms"`
	DetectMs       float64 `json:"detect_ms"`
	DetectCI95Ms   float64 `json:"detect_ci95_ms"`
}

// measureFederation runs the federation scaling sweep for the bench
// artifact.
func measureFederation() *federationStats {
	const nodesPer, seeds = 4, 20
	points := experiments.MeasureFederationSweep(
		canely.SubstrateFast, []int{4, 8, 16, 32}, nodesPer, seeds, 1)
	fs := &federationStats{NodesPerSegment: nodesPer, Seeds: seeds}
	for _, p := range points {
		fs.Points = append(fs.Points, federationPoint{
			Segments:       p.Segments,
			ConvergeMs:     p.ConvergeMs,
			ConvergeCI95Ms: p.ConvergeCI95Ms,
			DetectMs:       p.DetectMs,
			DetectCI95Ms:   p.DetectCI95Ms,
		})
	}
	return fs
}

// hostInfo records the machine the ladder was measured on, so numbers from
// different hosts are never compared as if they were one series.
type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

func currentHost() hostInfo {
	return hostInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

type substrateSeries struct {
	Substrate string       `json:"substrate"`
	Workers   []benchPoint `json:"workers"`
}

type benchPoint struct {
	Workers    int     `json:"workers"`
	RunsPerSec float64 `json:"runs_per_sec"`
	Speedup    float64 `json:"speedup_vs_1"`
	// AllocsPerRun is the whole-process heap churn per campaign run at this
	// worker count: if per-worker state is shared or false-shared, allocator
	// contention shows up here as data instead of ladder guesswork.
	AllocsPerRun float64 `json:"allocs_per_run"`
}

// Pre-PR steady-state baseline (BenchmarkSteadyStateStep on the command
// stream / eager-tracing code before the zero-allocation pass), kept here so
// every regenerated BENCH_campaign.json carries the comparison.
const (
	prePRSteadyAllocsPerOp = 8991
	prePRSteadyBytesPerOp  = 2119357
	prePRSteadyNsPerOp     = 1970422
	// Campaign throughput (fast substrate, workers=1, E10 grid) measured on
	// the same 1-CPU host immediately before this pass.
	prePRFastW1RunsPerSec = 3664.7
)

// steadyStateStats mirrors BenchmarkSteadyStateStep: one op advances an
// 8-node bootstrapped fast-substrate network by one second of virtual time
// with no membership churn.
type steadyStateStats struct {
	Benchmark   string  `json:"benchmark"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// The pre-PR numbers the current ones are compared against.
	PrePRNsPerOp     float64 `json:"pre_pr_ns_per_op"`
	PrePRAllocsPerOp float64 `json:"pre_pr_allocs_per_op"`
	PrePRBytesPerOp  float64 `json:"pre_pr_bytes_per_op"`
}

// measureSteadyState is the in-CLI twin of BenchmarkSteadyStateStep, so one
// `campaign -bench` invocation regenerates the whole artifact.
func measureSteadyState() *steadyStateStats {
	cfg := canely.DefaultConfig()
	cfg.Substrate = canely.SubstrateFast
	net := canely.NewNetwork(cfg, 8)
	net.BootstrapAll()
	net.Run(time.Second) // warm up buffers, slabs and queues
	const ops = 20
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < ops; i++ {
		net.Run(time.Second)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return &steadyStateStats{
		Benchmark:        "steady-state-step (8 nodes, 1s virtual time per op)",
		NsPerOp:          float64(elapsed.Nanoseconds()) / ops,
		AllocsPerOp:      float64(after.Mallocs-before.Mallocs) / ops,
		BytesPerOp:       float64(after.TotalAlloc-before.TotalAlloc) / ops,
		PrePRNsPerOp:     prePRSteadyNsPerOp,
		PrePRAllocsPerOp: prePRSteadyAllocsPerOp,
		PrePRBytesPerOp:  prePRSteadyBytesPerOp,
	}
}

// measureThroughput times the crash-QoS campaign over the given grid at each
// worker count, once per substrate. Each (substrate, workers) cell is timed
// over the full grid × seeds run, best of reps to shed scheduler noise.
func measureThroughput(grid string, nodes, seeds int) benchReport {
	rep := benchReport{Benchmark: "campaign-throughput", Nodes: nodes, Grid: grid}
	rep.Host = currentHost()
	ladder := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	const reps = 3
	for _, sub := range []canely.Substrate{canely.SubstrateBitAccurate, canely.SubstrateFast} {
		series := substrateSeries{Substrate: sub.String()}
		seen := map[int]bool{}
		var base float64
		for _, w := range ladder {
			if seen[w] {
				continue
			}
			seen[w] = true
			var best, cellAllocs float64
			for attempt := 0; attempt < reps; attempt++ {
				axes, err := parseGrid(grid)
				if err != nil {
					panic(err)
				}
				cfg := canely.DefaultConfig()
				cfg.Substrate = sub
				spec := experiments.CrashQoSSpec(cfg, nodes, axes,
					campaign.SeedRange{Base: 1, N: seeds})
				runner := campaign.Runner{Workers: w}
				measureAllocs := attempt == 0
				var before runtime.MemStats
				if measureAllocs {
					runtime.GC()
					runtime.ReadMemStats(&before)
				}
				start := time.Now()
				results, err := runner.Run(context.Background(), spec)
				if err != nil {
					panic(err)
				}
				if rps := float64(len(results)) / time.Since(start).Seconds(); rps > best {
					best = rps
				}
				if measureAllocs {
					var after runtime.MemStats
					runtime.ReadMemStats(&after)
					cellAllocs = float64(after.Mallocs-before.Mallocs) / float64(len(results))
					if sub == canely.SubstrateFast && w == 1 {
						rep.AllocsPerRun = cellAllocs
						rep.BytesPerRun = float64(after.TotalAlloc-before.TotalAlloc) / float64(len(results))
					}
				}
				rep.RunsPerLadder = len(results)
				if rep.P99DetectionMs == 0 {
					rep.P99DetectionMs = campaign.MergeMetric(results, "detection_ms").Quantile(0.99)
				}
			}
			if base == 0 {
				base = best
			}
			series.Workers = append(series.Workers, benchPoint{
				Workers: w, RunsPerSec: best, Speedup: best / base,
				AllocsPerRun: cellAllocs,
			})
		}
		rep.Substrates = append(rep.Substrates, series)
	}
	rep.SteadyState = measureSteadyState()
	rep.Federation = measureFederation()
	rep.GossipComparison = measureGossip()
	if len(rep.Substrates) == 2 &&
		len(rep.Substrates[0].Workers) > 0 && len(rep.Substrates[1].Workers) > 0 {
		bit := rep.Substrates[0].Workers[0].RunsPerSec
		fast := rep.Substrates[1].Workers[0].RunsPerSec
		if bit > 0 {
			rep.FastVsBitSpeedup = fast / bit
		}
		rep.PrePRFastW1RunsPerSec = prePRFastW1RunsPerSec
		rep.FastW1SpeedupVsPrePR = fast / prePRFastW1RunsPerSec
	}
	return rep
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func main() {
	var (
		grid      = flag.String("grid", "tb=5ms,10ms,20ms,40ms", "parameter grid: \"key=v1,v2;key2=...\" over tb, tm, ttd, trha, tjoinwait, pcorrupt, pinconsistent, j, k")
		nodes     = flag.Int("nodes", 8, "network size per run")
		seeds     = flag.Int("seeds", 50, "seeded trials per grid point")
		seed      = flag.Int64("seed", 1, "first seed of the sweep")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		substrate = flag.String("substrate", "fast", "medium substrate: fast (frame-level) or bit (bit-accurate); both produce identical campaign results")
		out       = flag.String("o", "", "write the aggregate report as JSON to this path")
		csvOut    = flag.String("csv", "", "write the aggregate report as CSV to this path")
		bench     = flag.String("bench", "", "measure per-substrate engine throughput at 1/2/4/max workers over the grid and write BENCH JSON to this path")
		quiet     = flag.Bool("q", false, "suppress the progress meter")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (pprof) to this file at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		}
	}()

	axes, err := parseGrid(*grid)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(2)
	}
	if *nodes < 2 {
		fmt.Fprintln(os.Stderr, "campaign: -nodes must be at least 2")
		os.Exit(2)
	}
	// A campaign with no runs has no aggregates — reject it up front rather
	// than emit a report of NaNs.
	if *seeds < 1 {
		fmt.Fprintln(os.Stderr, "campaign: -seeds must be at least 1 (a zero-run campaign has no aggregates)")
		os.Exit(2)
	}
	sub, err := canely.ParseSubstrate(*substrate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(2)
	}
	cfg := canely.DefaultConfig()
	cfg.Substrate = sub
	spec := experiments.CrashQoSSpec(cfg, *nodes, axes,
		campaign.SeedRange{Base: *seed, N: *seeds})
	if spec.TotalRuns() == 0 {
		fmt.Fprintln(os.Stderr, "campaign: the grid × seeds intersection is empty; nothing to run")
		os.Exit(2)
	}

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	runner := campaign.Runner{Workers: *workers}
	if !*quiet {
		lastTenth := -1
		runner.Progress = func(done, total int) {
			if tenth := done * 10 / total; tenth > lastTenth {
				lastTenth = tenth
				fmt.Fprintf(os.Stderr, "\rcampaign: %d/%d runs", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	start := time.Now()
	results, err := runner.Run(context.Background(), spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	rep := campaign.Summarize(spec, results)

	fmt.Print(rep.Table())
	fmt.Printf("\n%d runs in %v (%.1f runs/sec, workers=%d)\n",
		rep.Runs, elapsed.Round(time.Millisecond),
		float64(rep.Runs)/elapsed.Seconds(), *workers)

	if *out != "" {
		b, err := rep.JSON()
		if err == nil {
			err = os.WriteFile(*out, b, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("aggregate JSON written to %s\n", *out)
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err == nil {
			err = rep.WriteCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: write %s: %v\n", *csvOut, err)
			os.Exit(1)
		}
		fmt.Printf("aggregate CSV written to %s\n", *csvOut)
	}
	if *bench != "" {
		fmt.Printf("measuring engine throughput per substrate at 1/2/4/%d workers...\n", runtime.GOMAXPROCS(0))
		br := measureThroughput(*grid, *nodes, 16)
		if err := writeJSON(*bench, br); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: write %s: %v\n", *bench, err)
			os.Exit(1)
		}
		for _, s := range br.Substrates {
			for _, p := range s.Workers {
				fmt.Printf("  substrate=%-5s workers=%-3d %8.1f runs/sec  %.2fx\n",
					s.Substrate, p.Workers, p.RunsPerSec, p.Speedup)
			}
		}
		fmt.Printf("fast vs bit speedup (workers=1): %.2fx\n", br.FastVsBitSpeedup)
		for _, p := range br.Federation.Points {
			fmt.Printf("  federation segments=%-3d converge %6.2fms ±%.3f  detect %6.2fms ±%.3f\n",
				p.Segments, p.ConvergeMs, p.ConvergeCI95Ms, p.DetectMs, p.DetectCI95Ms)
		}
		for _, p := range br.GossipComparison.Points {
			fmt.Printf("  gossip-cmp nodes=%-6d canely %8.1fms ±%5.1f fp=%.2f/h bw=%5.0fkbps | gossip %6.1fms ±%5.1f fp=%.2f/h bw=%5.0fkbps\n",
				p.Nodes,
				p.CANELyDetectMs, p.CANELyDetectCI95Ms, p.CANELyFPNodeHour, p.CANELyBWBps/1000,
				p.GossipDetectMs, p.GossipDetectCI95Ms, p.GossipFPNodeHour, p.GossipBWBps/1000)
		}
		fmt.Printf("bench JSON written to %s\n", *bench)
	}
}
