package main

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"canely"
	"canely/internal/campaign"
	"canely/internal/experiments"
)

func TestParseGrid(t *testing.T) {
	axes, err := parseGrid("tb=5ms,10ms; pcorrupt=0,0.01 ;j=2")
	if err != nil {
		t.Fatal(err)
	}
	if len(axes) != 3 {
		t.Fatalf("got %d axes, want 3", len(axes))
	}
	if axes[0].Name != "tb" || len(axes[0].Values) != 2 {
		t.Fatalf("tb axis wrong: %+v", axes[0])
	}
	if axes[0].Values[1].Label != "10ms" || axes[0].Values[1].Value != 10*time.Millisecond {
		t.Fatalf("tb value wrong: %+v", axes[0].Values[1])
	}
	var cfg canely.Config
	axes[0].Values[0].Apply(&cfg)
	axes[1].Values[1].Apply(&cfg)
	axes[2].Values[0].Apply(&cfg)
	if cfg.Tb != 5*time.Millisecond || cfg.PCorrupt != 0.01 || cfg.J != 2 {
		t.Fatalf("applied config wrong: %+v", cfg)
	}
}

func TestParseGridEmpty(t *testing.T) {
	axes, err := parseGrid("  ")
	if err != nil || axes != nil {
		t.Fatalf("blank grid: got %v, %v; want nil, nil", axes, err)
	}
}

func TestParseGridErrors(t *testing.T) {
	for _, bad := range []string{
		"tb",            // no '='
		"tb=",           // no values
		"tb=fast",       // bad duration
		"pcorrupt=lots", // bad float
		"j=two",         // bad int
		"warp=9",        // unknown key
	} {
		if _, err := parseGrid(bad); err == nil {
			t.Errorf("parseGrid(%q): want error, got nil", bad)
		}
	}
}

// TestCampaignEndToEnd runs a tiny real campaign through the same spec the
// CLI builds and checks the exported artifacts are well-formed.
func TestCampaignEndToEnd(t *testing.T) {
	axes, err := parseGrid("tb=10ms")
	if err != nil {
		t.Fatal(err)
	}
	spec := experiments.CrashQoSSpec(canely.DefaultConfig(), 5, axes,
		campaign.SeedRange{Base: 1, N: 2})
	runner := campaign.Runner{Workers: 2}
	results, err := runner.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	rep := campaign.Summarize(spec, results)
	if rep.Runs != 2 || rep.Failed != 0 {
		t.Fatalf("runs=%d failed=%d, want 2/0", rep.Runs, rep.Failed)
	}
	table := rep.Table()
	if !strings.Contains(table, "tb=10ms") || !strings.Contains(table, "detection_ms") {
		t.Fatalf("table lacks expected content:\n%s", table)
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded campaign.Report
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("exported JSON does not round-trip: %v", err)
	}
	if decoded.Name != "crash-detection-qos" {
		t.Fatalf("decoded name %q", decoded.Name)
	}
}
