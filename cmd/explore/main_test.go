package main

import (
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strings"
	"testing"
	"time"

	"canely/internal/explore"
	"canely/internal/replay"
)

// TestRunSmoke searches a bounded slice of the reduced tree and checks the
// clean-exit contract: code 0, a final stats line and no counterexample.
func TestRunSmoke(t *testing.T) {
	var out, errOut strings.Builder
	code := run(&out, &errOut, options{
		workers:   2,
		schedules: 2000,
		out:       filepath.Join(t.TempDir(), "cx.json"),
	})
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"schedules=", "distinct=", "no violation"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output lacks %q:\n%s", want, out.String())
		}
	}
}

// TestRunExhausts explores a shallow tree to exhaustion: the walk must
// terminate on its own and say so.
func TestRunExhausts(t *testing.T) {
	var out, errOut strings.Builder
	code := run(&out, &errOut, options{
		workers: 1,
		depth:   6,
		out:     filepath.Join(t.TempDir(), "cx.json"),
	})
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "frontier exhausted") {
		t.Fatalf("output lacks exhaustion notice:\n%s", out.String())
	}
}

// TestRunSnapshotModesAgree exhausts the same bounded tree with checkpoint
// resumption on and off (-no-snapshot) and pins the whole stats line
// except the checkpoint fields: schedule, crash, prune, sleep, distinct,
// frontier and depth counts must be byte-identical — resumption changes
// the work per run, never the exploration.
func TestRunSnapshotModesAgree(t *testing.T) {
	counts := regexp.MustCompile(`(schedules|crash|pruned|slept|distinct|frontier|depth)=\d+`)
	stats := func(noSnapshot bool) (fields []string, resumed string) {
		t.Helper()
		var out, errOut strings.Builder
		code := run(&out, &errOut, options{
			workers:    2,
			depth:      9,
			noSnapshot: noSnapshot,
			out:        filepath.Join(t.TempDir(), "cx.json"),
		})
		if code != 0 {
			t.Fatalf("no-snapshot=%v: exit code %d, want 0\nstdout:\n%s", noSnapshot, code, out.String())
		}
		line, _, _ := strings.Cut(out.String(), "\n")
		m := regexp.MustCompile(`resumed=\d+`).FindString(line)
		return counts.FindAllString(line, -1), m
	}
	snap, snapResumed := stats(false)
	plain, plainResumed := stats(true)
	if !slices.Equal(snap, plain) {
		t.Errorf("exploration counts differ between modes:\n  snapshot:    %v\n  no-snapshot: %v", snap, plain)
	}
	if snapResumed == "resumed=0" {
		t.Error("snapshot mode resumed no runs from checkpoints")
	}
	if plainResumed != "resumed=0" {
		t.Errorf("-no-snapshot mode reported %s, want resumed=0", plainResumed)
	}
}

// TestRunFaultCounterexample injects the reception fault and checks the
// violation contract end to end: exit 1, a saved replay log that loads and
// re-executes byte-for-byte — the artifact canelysim -replay consumes.
func TestRunFaultCounterexample(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cx.json")
	var out, errOut strings.Builder
	code := run(&out, &errOut, options{
		workers:   2,
		schedules: 200000,
		deadline:  time.Minute,
		drop:      "0:fda",
		out:       path,
	})
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "VIOLATION") {
		t.Fatalf("output lacks violation notice:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := replay.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Verify(); err != nil {
		t.Fatalf("saved counterexample does not re-execute: %v", err)
	}
}

// TestRunBadOptions: malformed fault specs must exit 2 before any search.
func TestRunBadOptions(t *testing.T) {
	for _, drop := range []string{"0", "9:fda", "0:warp", "x:fda"} {
		var out, errOut strings.Builder
		if code := run(&out, &errOut, options{drop: drop}); code != 2 {
			t.Errorf("drop %q: exit code %d, want 2", drop, code)
		}
	}
}

// TestRunGossipScenario exhausts the SWIM baseline scenario through the
// CLI seam: -scenario=gossip must terminate cleanly with zero violations,
// exactly as the canely scenario does.
func TestRunGossipScenario(t *testing.T) {
	var out, errOut strings.Builder
	code := run(&out, &errOut, options{
		scenario: "gossip",
		workers:  2,
		out:      filepath.Join(t.TempDir(), "cx.json"),
	})
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"frontier exhausted", "no violation"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output lacks %q:\n%s", want, out.String())
		}
	}
}

// TestRunBadScenario: an unknown scenario name must exit 2 before any search.
func TestRunBadScenario(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(&out, &errOut, options{scenario: "warp"}); code != 2 {
		t.Errorf("exit code %d, want 2\nstderr:\n%s", code, errOut.String())
	}
}

// TestProgressLineFinite pins the stats formatter against degenerate
// inputs: at zero elapsed time and zero counters every printed figure must
// be a plain finite number — no NaN, no Inf, and no astronomical rate from
// dividing by a sub-nanosecond epsilon.
func TestProgressLineFinite(t *testing.T) {
	for _, elapsed := range []time.Duration{0, -time.Millisecond, time.Second} {
		line := progressLine(explore.Stats{}, elapsed)
		for _, bad := range []string{"NaN", "Inf", "e+", "e-"} {
			if strings.Contains(line, bad) {
				t.Errorf("elapsed=%v: stats line contains %q:\n%s", elapsed, bad, line)
			}
		}
		if elapsed <= 0 && !strings.Contains(line, "(0/s)") {
			t.Errorf("elapsed=%v: rate not pinned to 0:\n%s", elapsed, line)
		}
	}
	// A populated Stats at zero elapsed must still print rate 0, not
	// schedules/1e-9.
	s := explore.Stats{Schedules: 1234, Pruned: 10}
	if line := progressLine(s, 0); !strings.Contains(line, "(0/s)") {
		t.Errorf("nonzero stats at zero elapsed: rate not 0:\n%s", line)
	}
}
