// Command explore runs the parallel state-space exploration engine
// (internal/explore) over the 3-node join+crash scenario: a stateless model
// checker for the membership and failure-detection agreement and liveness
// properties, searching systematically permuted event orderings.
//
// Progress streams to stderr (schedules/s, frontier depth, prune rate,
// distinct states, checkpoint hit-rate and prefix-replay steps saved).
// On a violated property the counterexample schedule is
// written as a replay log and the process exits 1; `canelysim -replay FILE`
// re-executes the log against fresh protocol cores byte-for-byte.
//
// Examples:
//
//	explore -schedules 1000000 -workers 4
//	explore -naive -depth 8                      # unreduced reference walk
//	explore -no-snapshot                         # root-replay mode (A/B baseline)
//	explore -checkpoint 4 -snap-budget 33554432  # sparse checkpoints, 32 MiB cap
//	explore -drop 0:fda -o counterexample.json   # find an injected-fault trace
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"canely/internal/can"
	"canely/internal/explore"
)

type options struct {
	scenario   string
	workers    int
	schedules  uint64
	depth      int
	deadline   time.Duration
	naive      bool
	noPrune    bool
	noPOR      bool
	noSnapshot bool
	checkpoint int
	snapBudget int64
	drop       string
	out        string
	progress   time.Duration
}

// dropTypes names the injectable reception-fault frame types.
var dropTypes = map[string]can.MsgType{
	"fda":    can.TypeFDA,
	"rha":    can.TypeRHA,
	"join":   can.TypeJoin,
	"leave":  can.TypeLeave,
	"els":    can.TypeELS,
	"data":   can.TypeData,
	"gossip": can.TypeGossip,
}

// buildScenario applies the option overrides to the selected scenario.
func buildScenario(o options) (explore.Scenario, error) {
	var sc explore.Scenario
	switch o.scenario {
	case "", "canely":
		sc = explore.DefaultScenario()
	case "gossip":
		sc = explore.DefaultGossipScenario()
	default:
		return sc, fmt.Errorf("unknown -scenario %q (want \"canely\" or \"gossip\")", o.scenario)
	}
	if o.depth > 0 {
		sc.MaxDepth = o.depth
	}
	if o.drop != "" {
		node, typ, ok := strings.Cut(o.drop, ":")
		if !ok {
			return sc, fmt.Errorf("malformed -drop %q (want node:type, e.g. 0:fda)", o.drop)
		}
		id, err := strconv.Atoi(node)
		if err != nil || !can.NodeID(id).Valid() || id >= sc.Nodes {
			return sc, fmt.Errorf("bad -drop node %q (scenario has nodes 0..%d)", node, sc.Nodes-1)
		}
		t, ok := dropTypes[strings.ToLower(typ)]
		if !ok {
			return sc, fmt.Errorf("unknown -drop frame type %q (known: fda, rha, join, leave, els, data, gossip)", typ)
		}
		sc.Drop = true
		sc.DropNode = can.NodeID(id)
		sc.DropType = t
	}
	return sc, sc.Validate()
}

// run executes one exploration and reports the exit code: 0 for a clean
// search, 1 for a violated property, 2 for unusable options.
func run(out, progress io.Writer, o options) int {
	sc, err := buildScenario(o)
	if err != nil {
		fmt.Fprintln(progress, "explore:", err)
		return 2
	}
	eng, err := explore.New(explore.Config{
		Scenario:      sc,
		Workers:       o.workers,
		Target:        o.schedules,
		Prune:         !o.naive && !o.noPrune,
		POR:           !o.naive && !o.noPOR,
		NoSnapshot:    o.noSnapshot,
		SnapshotEvery: o.checkpoint,
		SnapBudget:    o.snapBudget,
	})
	if err != nil {
		fmt.Fprintln(progress, "explore:", err)
		return 2
	}

	ctx := context.Background()
	if o.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.deadline)
		defer cancel()
	}

	start := time.Now()
	done := make(chan struct{})
	tick := make(chan struct{})
	go func() {
		defer close(tick)
		if o.progress <= 0 {
			return
		}
		t := time.NewTicker(o.progress)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintln(progress, progressLine(eng.Stats(), time.Since(start)))
			}
		}
	}()

	res, runErr := eng.Run(ctx)
	close(done)
	<-tick
	elapsed := time.Since(start)

	fmt.Fprintln(out, progressLine(res.Stats, elapsed))
	switch {
	case res.Exhausted:
		fmt.Fprintf(out, "frontier exhausted: the bounded schedule tree (depth %d) is fully explored\n", sc.MaxDepth)
	case runErr != nil:
		fmt.Fprintf(out, "stopped at deadline: %v\n", runErr)
	}

	if v := res.Violation; v != nil {
		fmt.Fprintf(out, "VIOLATION after %d runs: %s\n", res.Runs(), v.Msg)
		fmt.Fprintf(out, "decision vector (%d choices): %v\n", len(v.Vec), v.Vec)
		if err := saveCounterexample(v, o.out); err != nil {
			fmt.Fprintln(progress, "explore:", err)
		} else {
			fmt.Fprintf(out, "counterexample saved to %s (%d records); verify with: canelysim -replay %s\n",
				o.out, len(v.Log.Records), o.out)
		}
		return 1
	}
	fmt.Fprintf(out, "no violation in %d schedules\n", res.Schedules)
	return 0
}

// progressLine formats one stats snapshot.
func progressLine(s explore.Stats, elapsed time.Duration) string {
	// A zero (or negative, under clock skew) elapsed must report rate 0,
	// not divide toward +Inf or NaN: the first ticker firing can race the
	// engine start, and a rate of "9223372036854775807/s" in the log is
	// noise at best and breaks naive log parsers at worst.
	rate := 0.0
	if sec := elapsed.Seconds(); sec > 0 {
		rate = float64(s.Schedules) / sec
	}
	pruneRate := 0.0
	hitRate := 0.0
	if r := s.Runs(); r > 0 {
		pruneRate = 100 * float64(s.Pruned+s.Slept) / float64(r)
		hitRate = 100 * float64(s.Resumed) / float64(r)
	}
	return fmt.Sprintf("t=%-8s schedules=%d (%.0f/s) crash=%d pruned=%d slept=%d (%.1f%%) distinct=%d frontier=%d depth=%d resumed=%d (%.1f%% hit) saved=%d snap=%d/%dKiB",
		elapsed.Truncate(100*time.Millisecond), s.Schedules, rate,
		s.CrashSchedules, s.Pruned, s.Slept, pruneRate, s.Distinct, s.Frontier, s.PeakDepth,
		s.Resumed, hitRate, s.ReplaySaved, s.Snapshots, s.SnapBytes>>10)
}

// saveCounterexample writes the violation's replay log to path.
func saveCounterexample(v *explore.Violation, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := v.Log.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	var o options
	flag.StringVar(&o.scenario, "scenario", "canely", "scenario to explore: canely (composite cores) or gossip (SWIM baseline)")
	flag.IntVar(&o.workers, "workers", 1, "worker pool size")
	flag.Uint64Var(&o.schedules, "schedules", 0, "stop after this many schedule runs (0 = exhaust the tree)")
	flag.IntVar(&o.depth, "depth", 0, "override the decision-depth bound (0 = scenario default)")
	flag.DurationVar(&o.deadline, "deadline", 0, "wall-clock bound for the search (0 = none)")
	flag.BoolVar(&o.naive, "naive", false, "disable all reductions (reference enumeration)")
	flag.BoolVar(&o.noPrune, "no-prune", false, "disable state-hash pruning")
	flag.BoolVar(&o.noPOR, "no-por", false, "disable the sleep-set partial-order reduction")
	flag.BoolVar(&o.noSnapshot, "no-snapshot", false, "disable checkpoint-and-branch resumption (replay every prefix from the root)")
	flag.IntVar(&o.checkpoint, "checkpoint", 1, "checkpoint cadence: capture at every k-th new branch decision")
	flag.Int64Var(&o.snapBudget, "snap-budget", 0, "cap live checkpoint memory in bytes (0 = unlimited)")
	flag.StringVar(&o.drop, "drop", "", "inject a reception fault: node:type (e.g. 0:fda)")
	flag.StringVar(&o.out, "o", "counterexample.json", "counterexample replay log path")
	flag.DurationVar(&o.progress, "progress", time.Second, "progress reporting interval (0 = quiet)")
	flag.Parse()
	os.Exit(run(os.Stdout, os.Stderr, o))
}
