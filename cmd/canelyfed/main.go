// Command canelyfed runs one live federation gateway across canelyd
// brokers, one broker per CAN segment.
//
//	canelyd -listen unix:/tmp/seg0.sock &
//	canelyd -listen unix:/tmp/seg1.sock &
//	canelyfed -brokers unix:/tmp/seg0.sock,unix:/tmp/seg1.sock \
//	  -id 9 -member 5 -views "0-2,5;0-2,5" -duration 5s &
//	for s in 0 1; do for i in 0 1 2; do
//	  canelynode -broker unix:/tmp/seg$s.sock -id $i -bootstrap 0-2,5 \
//	    -duration 5s &
//	done; done
//
// The gateway joins every segment as an ordinary member (-member is its
// local id on each bus, -views the pre-agreed per-segment bootstrap views)
// and opens a second, raw connection per broker under its federation-wide
// identity (-id) on which site digests travel as TypeFed frames. On exit it
// prints its final cross-segment site view; gateways bridging the same
// segments must print identical lines.
//
// -record FILE captures the federation core's event/command stream for
// offline re-verification with `canelysim -replay FILE`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"canely/internal/can"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/replay"
	"canely/internal/rt"
	"canely/internal/stack"
)

// parseSet parses "0-4" or "0,1,2,3,4" (or a mix) into a NodeSet.
func parseSet(spec string) (can.NodeSet, error) {
	var s can.NodeSet
	if spec == "" {
		return s, nil
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if lo, hi, ok := strings.Cut(item, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a > b {
				return 0, fmt.Errorf("malformed range %q", item)
			}
			s |= can.RangeSet(can.NodeID(a), can.NodeID(b+1))
			continue
		}
		id, err := strconv.Atoi(item)
		if err != nil {
			return 0, fmt.Errorf("malformed id %q", item)
		}
		s = s.Add(can.NodeID(id))
	}
	return s, nil
}

// parseViews parses semicolon-separated per-segment view specs.
func parseViews(spec string) ([]can.NodeSet, error) {
	var views []can.NodeSet
	for _, chunk := range strings.Split(spec, ";") {
		v, err := parseSet(chunk)
		if err != nil {
			return nil, err
		}
		views = append(views, v)
	}
	return views, nil
}

// parseSegments parses a comma-separated segment id list.
func parseSegments(spec string) ([]can.NodeID, error) {
	if spec == "" {
		return nil, nil
	}
	var segs []can.NodeID
	for _, item := range strings.Split(spec, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(item))
		if err != nil {
			return nil, fmt.Errorf("malformed segment id %q", item)
		}
		segs = append(segs, can.NodeID(id))
	}
	return segs, nil
}

func main() {
	var (
		brokers  = flag.String("brokers", "", "comma-separated broker addresses, one per segment")
		id       = flag.Int("id", 9, "federation-wide gateway identity (digest source)")
		member   = flag.Int("member", 5, "the gateway's member identity on every segment bus")
		segments = flag.String("segments", "", "comma-separated segment ids (default 0,1,...)")
		viewSpec = flag.String("views", "", "semicolon-separated pre-agreed bootstrap views, one per broker, e.g. 0-2,5;0-2,5")
		site     = flag.String("site", "", "pre-agreed initial site view (default: the segment ids)")
		duration = flag.Duration("duration", 3*time.Second, "wall-clock run time before reporting the final site view")
		crash    = flag.Duration("crash", 0, "fail-silent this long after start (0 = never)")
		tb       = flag.Duration("tb", 150*time.Millisecond, "heartbeat period Tb")
		ttd      = flag.Duration("ttd", 50*time.Millisecond, "assumed transmission delay bound Ttd")
		tm       = flag.Duration("tm", 400*time.Millisecond, "membership cycle period Tm")
		tjoin    = flag.Duration("tjoinwait", 2*time.Second, "maximum join wait delay (>> Tm)")
		trha     = flag.Duration("trha", 100*time.Millisecond, "RHA maximum termination time (< Tm)")
		jBound   = flag.Int("j", 2, "inconsistent omission degree bound")
		tann     = flag.Duration("tann", 300*time.Millisecond, "digest announcement period Tann")
		tstale   = flag.Duration("tstale", 1200*time.Millisecond, "remote segment staleness bound Tstale (>= 4*Tann)")
		record   = flag.String("record", "", "save the federation event/command stream to this file (JSON)")
		verbose  = flag.Bool("v", false, "log site changes as they happen")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if *verbose {
			fmt.Fprintf(os.Stderr, "gateway %d: "+format+"\n", append([]any{*id}, args...)...)
		}
	}

	addrs := strings.Split(*brokers, ",")
	if *brokers == "" || len(addrs) < 2 {
		fmt.Fprintln(os.Stderr, "-brokers must list at least two broker addresses")
		os.Exit(2)
	}
	views, err := parseViews(*viewSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	segs, err := parseSegments(*segments)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if segs == nil {
		for i := range addrs {
			segs = append(segs, can.NodeID(i))
		}
	}
	siteView, err := parseSet(*site)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if siteView == 0 {
		for _, s := range segs {
			siteView = siteView.Add(s)
		}
	}

	cfg := rt.GatewayConfig{
		ID:       can.NodeID(*id),
		Member:   can.NodeID(*member),
		Brokers:  addrs,
		Segments: segs,
		Views:    views,
		Stack: stack.Config{
			FD: fd.Config{Tb: *tb, Ttd: *ttd},
			Membership: membership.Config{
				Tm:        *tm,
				TjoinWait: *tjoin,
				RHA:       membership.RHAConfig{Trha: *trha, J: *jBound},
			},
			J: *jBound,
		},
		Tann:   *tann,
		Tstale: *tstale,
		Record: *record != "",
		Dial:   rt.DialConfig{Logf: logf},
	}
	g, err := rt.StartGateway(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	g.OnSiteChange(func(active, failed can.NodeSet) {
		logf("site change: active=%v failed=%v", active, failed)
	})

	logf("bootstrapping site %v over %d segments", siteView, len(addrs))
	if err := g.Bootstrap(siteView); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	end := time.After(*duration)
	var crashC <-chan time.Time
	if *crash > 0 {
		crashC = time.After(*crash)
	}
	for done := false; !done; {
		select {
		case <-crashC:
			logf("crashing")
			g.Crash()
			crashC = nil
		case <-end:
			done = true
		}
	}

	// The canonical agreement line: every correct gateway bridging the same
	// segments must print an identical site view.
	fmt.Printf("gateway %d final site %v alive=%t\n", *id, g.SiteView(), g.Alive())

	g.Close()
	if *record != "" {
		if err := saveLog(g.EventLog(), *record); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		logf("recorded %d federation events to %s", len(g.EventLog().Records), *record)
	}
}

// saveLog writes a recorded event log to path.
func saveLog(log *replay.Log, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := log.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
