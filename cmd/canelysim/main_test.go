package main

import (
	"testing"
	"time"
)

func TestParseEvents(t *testing.T) {
	evs, err := parseEvents("2@100ms, 5@1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].node != 2 || evs[0].at != 100*time.Millisecond {
		t.Fatalf("first = %+v", evs[0])
	}
	if evs[1].node != 5 || evs[1].at != time.Second {
		t.Fatalf("second = %+v", evs[1])
	}
}

func TestParseEventsEmpty(t *testing.T) {
	evs, err := parseEvents("")
	if err != nil || evs != nil {
		t.Fatalf("empty spec: %v %v", evs, err)
	}
}

func TestParseEventsErrors(t *testing.T) {
	for _, spec := range []string{"2", "x@1s", "2@notaduration", "2@"} {
		if _, err := parseEvents(spec); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
}
