// Command canelysim runs a CANELy scenario on the simulated bus and prints
// the event trace, the final membership views and the bus statistics.
//
// Scenario events are given as comma-separated "id@offset" items, e.g.
//
//	canelysim -nodes 5 -duration 500ms -crash 2@100ms -join 5@200ms
//
// crashes node 2 at t=100ms and has a sixth node join at t=200ms.
//
// With -record FILE the run additionally captures every protocol core's
// event/command stream to FILE (JSON); -replay FILE re-executes such a
// capture against fresh cores and verifies command-for-command equality —
// no simulation is run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"canely"
	"canely/internal/prof"
	"canely/internal/replay"
)

type event struct {
	node canely.NodeID
	at   time.Duration
}

// parseEvents parses "id@offset[,id@offset...]".
func parseEvents(spec string) ([]event, error) {
	if spec == "" {
		return nil, nil
	}
	var out []event
	for _, item := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(item), "@", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("malformed event %q (want id@offset)", item)
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad node id in %q: %v", item, err)
		}
		at, err := time.ParseDuration(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad offset in %q: %v", item, err)
		}
		out = append(out, event{canely.NodeID(id), at})
	}
	return out, nil
}

func main() {
	var (
		nodes    = flag.Int("nodes", 4, "number of initially bootstrapped nodes")
		duration = flag.Duration("duration", 500*time.Millisecond, "virtual time to simulate")
		tm       = flag.Duration("tm", 50*time.Millisecond, "membership cycle period Tm")
		tb       = flag.Duration("tb", 10*time.Millisecond, "heartbeat period Tb")
		seed     = flag.Int64("seed", 1, "simulation seed")
		pCorrupt = flag.Float64("pcorrupt", 0, "per-transmission consistent corruption probability")
		pIncons  = flag.Float64("pincons", 0, "per-transmission inconsistent omission probability")
		crashes  = flag.String("crash", "", "crash events, id@offset[,...]")
		joins    = flag.String("join", "", "join events, id@offset[,...] (ids beyond -nodes are created)")
		leaves   = flag.String("leave", "", "leave events, id@offset[,...]")
		traffic  = flag.Duration("traffic", 0, "cyclic application traffic period (0 = none)")
		dual     = flag.Bool("dualmedia", false, "replicated media with reception by selection")
		showAll  = flag.Bool("trace", false, "dump the full event trace")
		subFlag  = flag.String("substrate", "bit", "medium substrate: bit (bit-accurate, traced) or fast (frame-level, no trace)")
		record   = flag.String("record", "", "save the per-node core event/command streams to this file (JSON)")
		replayF  = flag.String("replay", "", "verify a recorded event log instead of simulating")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile (pprof) to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile (pprof) to this file at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canelysim:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "canelysim:", err)
		}
	}()

	if *replayF != "" {
		if err := verifyReplay(*replayF); err != nil {
			fmt.Fprintln(os.Stderr, "canelysim:", err)
			os.Exit(1)
		}
		return
	}

	substrate, err := canely.ParseSubstrate(*subFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canelysim:", err)
		os.Exit(2)
	}
	cfg := canely.DefaultConfig()
	cfg.Substrate = substrate
	cfg.Tm = *tm
	cfg.Tb = *tb
	cfg.Seed = *seed
	cfg.PCorrupt = *pCorrupt
	cfg.PInconsistent = *pIncons
	cfg.DualMedia = *dual
	cfg.Record = *record != ""
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "invalid configuration:", err)
		os.Exit(2)
	}

	crashEvents, err := parseEvents(*crashes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	joinEvents, err := parseEvents(*joins)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	leaveEvents, err := parseEvents(*leaves)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	net := canely.NewNetwork(cfg, *nodes)
	for _, e := range joinEvents {
		if net.Node(e.node) == nil {
			net.AddNode(e.node)
		}
	}
	// Bootstrap only the base nodes; join-event nodes integrate later.
	var view canely.NodeSet
	for i := 0; i < *nodes; i++ {
		view = view.Add(canely.NodeID(i))
	}
	for i := 0; i < *nodes; i++ {
		net.Node(canely.NodeID(i)).Bootstrap(view)
	}
	if *traffic > 0 {
		for _, nd := range net.Nodes() {
			nd.StartCyclicTraffic(1, *traffic, []byte{0xCA, 0xFE})
		}
	}

	sched := net.Scheduler()
	for _, e := range crashEvents {
		e := e
		sched.After(e.at, func() { net.Node(e.node).Crash() })
	}
	for _, e := range joinEvents {
		e := e
		sched.After(e.at, func() { net.Node(e.node).Join() })
	}
	for _, e := range leaveEvents {
		e := e
		sched.After(e.at, func() { net.Node(e.node).Leave() })
	}

	net.Run(*duration)

	if *showAll {
		net.Trace().Dump(os.Stdout)
		fmt.Println()
	}
	fmt.Println("=== event summary ===")
	if net.Trace() == nil {
		fmt.Println("(tracing disabled under the fast substrate; rerun with -substrate bit)")
	}
	fmt.Print(net.Trace().Summary())
	fmt.Println("\n=== final views ===")
	for _, nd := range net.Nodes() {
		status := "member"
		switch {
		case !nd.Alive():
			status = "crashed"
		case !nd.Member():
			status = "not a member"
		}
		fmt.Printf("  %v: %-14s view=%v life-signs=%d\n", nd.ID(), status, nd.View(), nd.LifeSigns())
	}
	fmt.Println("\n=== bus statistics ===")
	fmt.Print(net.Stats())
	u := net.Stats().Utilization(net.Rate(), net.Now())
	fmt.Printf("overall bus utilization: %.2f%% over %v\n", 100*u, net.Now())

	if *record != "" {
		if err := saveLog(net.EventLog(), *record); err != nil {
			fmt.Fprintln(os.Stderr, "canelysim:", err)
			os.Exit(1)
		}
		fmt.Printf("\nrecorded %d core events to %s\n", len(net.EventLog().Records), *record)
	}
}

// saveLog writes a recorded event log to path.
func saveLog(log *replay.Log, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := log.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// verifyReplay loads a recorded log and re-executes it on fresh cores,
// checking command-for-command equality.
func verifyReplay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	log, err := replay.Load(f)
	if err != nil {
		return err
	}
	if err := log.Verify(); err != nil {
		return err
	}
	fmt.Printf("replay OK: %d records over %d nodes reproduced exactly\n",
		len(log.Records), len(log.Nodes))
	return nil
}
