package main

import (
	"strings"
	"testing"
	"time"
)

// TestReportAnalytical runs the default main path (analytical only) and
// checks both frame-format tables and the footnote 11 figure are present.
func TestReportAnalytical(t *testing.T) {
	out := report(options{
		tmLo: 30 * time.Millisecond, tmHi: 90 * time.Millisecond, tmStep: 10 * time.Millisecond,
	})
	if out == "" {
		t.Fatal("empty report")
	}
	for _, want := range []string{
		"Figure 10",
		"standard (11-bit) frames",
		"extended (29-bit) frames",
		"Footnote 11 check",
		"%", // utilization figures are rendered as percentages
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Measured from full-stack simulation") {
		t.Fatal("measured section must be off by default")
	}
}

// TestReportMeasuredSmoke exercises the -measured path on a single Tm point
// with a single churn trial to keep the smoke test fast.
func TestReportMeasuredSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack measurement in -short mode")
	}
	out := report(options{
		measured: true, seed: 1, churnTrials: 1,
		tmLo: 30 * time.Millisecond, tmHi: 30 * time.Millisecond, tmStep: 10 * time.Millisecond,
	})
	for _, want := range []string{"Measured from full-stack simulation", "Churn sweep", "per-request delta"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report lacks %q", want)
		}
	}
}
