// Command bandwidth regenerates Figure 10 of the paper: CAN bandwidth
// utilization of the site membership protocol suite as a function of the
// membership cycle period Tm, for the four operating regimes (no changes /
// f crash failures / single join-leave / multiple join-leave).
//
// By default it prints the analytical worst-case model in both frame
// formats (the paper analyzed standard 11-bit frames; this repository's
// stack runs on extended 29-bit frames). With -measured it also runs the
// full-stack simulation at every point (n=32, b=8, f=4, c=20).
package main

import (
	"flag"
	"fmt"
	"time"

	"canely/internal/analysis"
	"canely/internal/can"
	"canely/internal/experiments"
)

func main() {
	var (
		measured = flag.Bool("measured", false, "also measure from full-stack simulation")
		seed     = flag.Int64("seed", 1, "simulation seed for -measured")
		tmLo     = flag.Duration("tm-min", 30*time.Millisecond, "smallest Tm")
		tmHi     = flag.Duration("tm-max", 90*time.Millisecond, "largest Tm")
		tmStep   = flag.Duration("tm-step", 10*time.Millisecond, "Tm increment")
	)
	flag.Parse()

	var tms []time.Duration
	for tm := *tmLo; tm <= *tmHi; tm += *tmStep {
		tms = append(tms, tm)
	}

	fmt.Println("Figure 10 — CAN bandwidth utilization by the site membership protocols")
	fmt.Println("Operating conditions: n=32, b=8, f=4, c in {0,1,20}, 1 Mbit/s")
	fmt.Println()
	fmt.Println("Analytical worst case, standard (11-bit) frames — the paper's plot:")
	std := analysis.DefaultModel()
	fmt.Print(analysis.FormatFigure10(analysis.Figure10(std, tms)))
	fmt.Println()
	fmt.Println("Analytical worst case, extended (29-bit) frames — this stack's wire format:")
	ext := std
	ext.Format = can.FormatExtended
	fmt.Print(analysis.FormatFigure10(analysis.Figure10(ext, tms)))
	fmt.Println()
	fmt.Printf("Footnote 11 check: each join/leave request adds %.2f%% at Tm=30ms (paper: ~0.16%%)\n",
		100*std.PerRequestDelta(30*time.Millisecond))

	if *measured {
		fmt.Println()
		fmt.Println("Measured from full-stack simulation (vs extended-format analysis):")
		cfg := experiments.DefaultFigure10Config()
		cfg.Seed = *seed
		fmt.Print(experiments.FormatFigure10(experiments.MeasureFigure10(cfg, tms)))
		fmt.Println()
		fmt.Println("Churn sweep at Tm=50ms (footnote 11's marginal request cost, measured):")
		fmt.Print(experiments.FormatChurn(experiments.MeasureChurnSweep(nil, 50*time.Millisecond, *seed)))
	}
}
