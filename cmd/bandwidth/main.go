// Command bandwidth regenerates Figure 10 of the paper: CAN bandwidth
// utilization of the site membership protocol suite as a function of the
// membership cycle period Tm, for the four operating regimes (no changes /
// f crash failures / single join-leave / multiple join-leave).
//
// By default it prints the analytical worst-case model in both frame
// formats (the paper analyzed standard 11-bit frames; this repository's
// stack runs on extended 29-bit frames). With -measured it also runs the
// full-stack simulation at every point (n=32, b=8, f=4, c=20) and the
// churn sweep as a parallel campaign.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"canely"
	"canely/internal/analysis"
	"canely/internal/can"
	"canely/internal/experiments"
)

// options collects the flag values so the report is testable.
type options struct {
	measured    bool
	seed        int64
	churnTrials int
	tmLo, tmHi  time.Duration
	tmStep      time.Duration
	substrate   canely.Substrate
}

// report renders the Figure 10 study.
func report(o options) string {
	var tms []time.Duration
	for tm := o.tmLo; tm <= o.tmHi; tm += o.tmStep {
		tms = append(tms, tm)
	}

	var sb strings.Builder
	sb.WriteString("Figure 10 — CAN bandwidth utilization by the site membership protocols\n")
	sb.WriteString("Operating conditions: n=32, b=8, f=4, c in {0,1,20}, 1 Mbit/s\n\n")
	sb.WriteString("Analytical worst case, standard (11-bit) frames — the paper's plot:\n")
	std := analysis.DefaultModel()
	sb.WriteString(analysis.FormatFigure10(analysis.Figure10(std, tms)))
	sb.WriteString("\nAnalytical worst case, extended (29-bit) frames — this stack's wire format:\n")
	ext := std
	ext.Format = can.FormatExtended
	sb.WriteString(analysis.FormatFigure10(analysis.Figure10(ext, tms)))
	fmt.Fprintf(&sb, "\nFootnote 11 check: each join/leave request adds %.2f%% at Tm=30ms (paper: ~0.16%%)\n",
		100*std.PerRequestDelta(30*time.Millisecond))

	if o.measured {
		sb.WriteString("\nMeasured from full-stack simulation (vs extended-format analysis):\n")
		cfg := experiments.DefaultFigure10Config()
		cfg.Seed = o.seed
		cfg.Substrate = o.substrate
		sb.WriteString(experiments.FormatFigure10(experiments.MeasureFigure10(cfg, tms)))
		fmt.Fprintf(&sb, "\nChurn sweep at Tm=50ms (footnote 11's marginal request cost, %d trials per point):\n",
			o.churnTrials)
		sb.WriteString(experiments.FormatChurn(
			experiments.MeasureChurnSweep(o.substrate, nil, 50*time.Millisecond, o.churnTrials, o.seed)))
	}
	return sb.String()
}

func main() {
	var o options
	var substrate string
	flag.BoolVar(&o.measured, "measured", false, "also measure from full-stack simulation")
	flag.Int64Var(&o.seed, "seed", 1, "simulation seed for -measured")
	flag.IntVar(&o.churnTrials, "churn-trials", 5, "seeded trials per churn point for -measured")
	flag.DurationVar(&o.tmLo, "tm-min", 30*time.Millisecond, "smallest Tm")
	flag.DurationVar(&o.tmHi, "tm-max", 90*time.Millisecond, "largest Tm")
	flag.DurationVar(&o.tmStep, "tm-step", 10*time.Millisecond, "Tm increment")
	flag.StringVar(&substrate, "substrate", "bit", "medium substrate for -measured: bit (bit-accurate) or fast (frame-level)")
	flag.Parse()
	sub, err := canely.ParseSubstrate(substrate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bandwidth:", err)
		os.Exit(2)
	}
	o.substrate = sub
	fmt.Print(report(o))
}
