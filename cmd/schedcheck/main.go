// Command schedcheck runs the CAN response-time analysis of [20] (Tindell &
// Burns) over a message set, with or without the CANELy protocol streams
// merged in, and reports worst-case response times and schedulability —
// the analysis behind the MCAN4 bounded-transmission-delay property and
// the Ttd parameter of the failure detector.
//
// The message set is read from a file (or stdin with "-"), one message per
// line: "name priority period bytes [rtr]". Example:
//
//	engine-speed   10  5ms    4
//	brake-status   11  10ms   2
//	logging        50  100ms  8
//
// Usage:
//
//	schedcheck -set messages.txt -nodes 8 -tb 10ms -tm 50ms
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"canely/internal/analysis"
	"canely/internal/can"
)

// options collects the analysis parameterization (the command's flags).
type options struct {
	rate     int
	extended bool
	inacc    string
	protocol bool
	nodes    int
	tb, tm   time.Duration
}

// report parses a message set and renders the response-time analysis. It
// also returns how many messages are unschedulable (the process exit
// status) and an error for malformed input or parameters.
func report(in io.Reader, o options) (out string, unsched int, err error) {
	app, err := analysis.ParseMessageSet(in)
	if err != nil {
		return "", 0, err
	}

	format := can.FormatStandard
	if o.extended {
		format = can.FormatExtended
	}
	var tina time.Duration
	switch o.inacc {
	case "none":
	case "can":
		_, bits := analysis.CANInaccessibility().Bounds()
		tina = can.BitRate(o.rate).DurationOf(bits)
	case "canely":
		_, bits := analysis.CANELyInaccessibility().Bounds()
		tina = can.BitRate(o.rate).DurationOf(bits)
	default:
		return "", 0, fmt.Errorf("unknown -inaccessibility %q", o.inacc)
	}

	set := app
	if o.protocol {
		// Protocol streams keep the top priorities; application priorities
		// are shifted above them, mirroring the mid encoding.
		set = analysis.CANELyMessageSet(o.nodes, o.tb, o.tm)
		for _, m := range app {
			m.Priority += 100
			set = append(set, m)
		}
	}

	results, err := analysis.ResponseTimes(set, can.BitRate(o.rate), format, tina)
	if err != nil {
		return "", 0, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "response-time analysis @ %d bit/s, %v frames, inaccessibility=%v\n\n",
		o.rate, format, tina)
	b.WriteString(analysis.FormatResponseTimes(results))

	var worstProto time.Duration
	for _, r := range results {
		if !r.Schedulable {
			unsched++
		}
		if o.protocol && r.Message.Priority < 100 && r.R > worstProto {
			worstProto = r.R
		}
	}
	if o.protocol {
		fmt.Fprintf(&b, "\nderived Ttd (worst protocol response time): %v\n", worstProto)
	}
	if unsched > 0 {
		fmt.Fprintf(&b, "\nWARNING: %d message(s) unschedulable\n", unsched)
	}
	return b.String(), unsched, nil
}

func main() {
	var (
		setPath  = flag.String("set", "-", "message set file (- for stdin)")
		rate     = flag.Int("rate", int(can.Rate1Mbps), "bit rate (bit/s)")
		extended = flag.Bool("extended", true, "29-bit identifiers (11-bit when false)")
		inacc    = flag.String("inaccessibility", "canely", "charge inaccessibility: none, can, canely")
		protocol = flag.Bool("protocol", true, "merge the CANELy protocol streams")
		nodes    = flag.Int("nodes", 8, "network size for the protocol streams")
		tb       = flag.Duration("tb", 10*time.Millisecond, "heartbeat period")
		tm       = flag.Duration("tm", 50*time.Millisecond, "membership cycle period")
	)
	flag.Parse()

	in := os.Stdin
	if *setPath != "-" {
		f, err := os.Open(*setPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	out, unsched, err := report(in, options{
		rate:     *rate,
		extended: *extended,
		inacc:    *inacc,
		protocol: *protocol,
		nodes:    *nodes,
		tb:       *tb,
		tm:       *tm,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Print(out)
	if unsched > 0 {
		os.Exit(1)
	}
}
