package main

import (
	"strings"
	"testing"
	"time"
)

func defaults() options {
	return options{
		rate:     1_000_000,
		extended: true,
		inacc:    "canely",
		protocol: true,
		nodes:    8,
		tb:       10 * time.Millisecond,
		tm:       50 * time.Millisecond,
	}
}

const exampleSet = `
engine-speed   10  5ms    4
brake-status   11  10ms   2
logging        50  100ms  8
`

// TestReportSmoke runs the whole main path on the doc-comment example set
// with default flags and checks the analysis table is present and complete.
func TestReportSmoke(t *testing.T) {
	out, unsched, err := report(strings.NewReader(exampleSet), defaults())
	if err != nil {
		t.Fatal(err)
	}
	if unsched != 0 {
		t.Fatalf("example set reported %d unschedulable messages:\n%s", unsched, out)
	}
	for _, want := range []string{
		"response-time analysis @ 1000000 bit/s",
		"message", "prio", "period",
		"FDA failure-sign",
		"ELS n07", // all 8 protocol ELS streams merged in
		"engine-speed", "brake-status", "logging",
		"derived Ttd",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report lacks %q:\n%s", want, out)
		}
	}
	// Every row of the example set must be schedulable ("yes" column).
	for _, name := range []string{"engine-speed", "brake-status", "logging"} {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, name) && !strings.HasSuffix(strings.TrimSpace(line), "yes") {
				t.Fatalf("%s row not schedulable: %q", name, line)
			}
		}
	}
}

// TestReportBadInput: malformed message sets and unknown parameters must
// surface as errors, not as partial tables.
func TestReportBadInput(t *testing.T) {
	if _, _, err := report(strings.NewReader("not a message line"), defaults()); err == nil {
		t.Error("malformed set line did not error")
	}
	o := defaults()
	o.inacc = "bogus"
	if _, _, err := report(strings.NewReader(exampleSet), o); err == nil {
		t.Error("unknown inaccessibility mode did not error")
	}
}
