// Package canely is a faithful, simulation-backed implementation of the
// CANELy (CAN Enhanced Layer) node failure detection and site membership
// services described in:
//
//	J. Rufino, P. Veríssimo, G. Arroz. "Node Failure Detection and
//	Membership in CANELy". DSN 2003.
//
// The package assembles, per node, the full protocol stack of the paper's
// Figure 5 — CAN standard layer (with the can-data.nty extension), the FDA
// and RHA micro-protocols, the node failure detection protocol and the site
// membership protocol — through internal/stack, over one of two pluggable
// simulation substrates (Config.Substrate):
//
//   - SubstrateBitAccurate (default): the internal/bus simulator, with
//     bit-time-accurate wire accounting, a full structured event trace and
//     per-message-type occupancy statistics — the diagnostic substrate;
//   - SubstrateFast: the internal/fastbus frame-level simulator, with
//     identical MAC/LLC semantics (arbitration, wired-AND clustering, exact
//     frame durations, inconsistent omissions, fault confinement) but no
//     trace — roughly an order of magnitude more campaign runs per second.
//
// A seeded run delivers the same frame sequence and reaches the same
// membership views on either substrate (see the equivalence tests).
//
// # Quick start
//
//	net := canely.NewNetwork(canely.DefaultConfig(), 4)
//	net.BootstrapAll()                    // pre-agreed initial view
//	net.Run(100 * time.Millisecond)       // steady state
//	net.Node(2).Crash()                   // kill a node
//	net.Run(100 * time.Millisecond)
//	view := net.Node(0).View()            // {n00,n01,n03}
//
// All time is virtual: a Network is single-threaded and deterministic for a
// given seed and fault script, which makes every experiment in this
// repository exactly reproducible.
package canely

import (
	"fmt"
	"sync/atomic"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/core/fd"
	"canely/internal/core/groups"
	"canely/internal/core/membership"
	"canely/internal/fault"
	"canely/internal/replay"
	"canely/internal/sim"
	"canely/internal/stack"
	"canely/internal/trace"
)

// Re-exported identity and set types: the public API vocabulary.
type (
	// NodeID identifies a node (site); valid values are 0..63.
	NodeID = can.NodeID
	// NodeSet is a set of nodes: membership views, failed sets, RHVs.
	NodeSet = can.NodeSet
	// Change is a membership change notification (msh-can.nty).
	Change = membership.Change
	// BitRate is the bus signalling rate in bits per second.
	BitRate = can.BitRate
	// Injector decides per-transmission fault injection.
	Injector = fault.Injector
	// BusStats aggregates wire occupancy and outcome counters.
	BusStats = bus.Stats
	// GroupID names a process group.
	GroupID = groups.GroupID
	// GroupChange is a process-group view change notification.
	GroupChange = groups.Change
	// Substrate selects the simulation substrate (see Config.Substrate).
	Substrate = stack.Substrate
	// Hooks is the uniform layer-boundary observation and fault-injection
	// surface of the per-node stack (see Config.Hooks).
	Hooks = stack.Hooks
)

// Substrate values for Config.Substrate.
const (
	// SubstrateBitAccurate runs on the bit-time-accurate bus simulator with
	// full tracing — the diagnostic substrate, and the zero-value default.
	SubstrateBitAccurate = stack.BitAccurate
	// SubstrateFast runs on the frame-level fastbus simulator: identical
	// semantics and timing, no trace, much faster Monte-Carlo campaigns.
	SubstrateFast = stack.Fast
)

// ParseSubstrate parses a -substrate CLI flag value ("bit" or "fast").
func ParseSubstrate(v string) (Substrate, error) { return stack.ParseSubstrate(v) }

// MakeSet builds a NodeSet from ids.
func MakeSet(ids ...NodeID) NodeSet { return can.MakeSet(ids...) }

// Config parameterizes a CANELy network.
type Config struct {
	// Rate is the bus bit rate (default 1 Mbit/s).
	Rate BitRate
	// Seed drives all stochastic behaviour (fault injection, traffic
	// jitter); runs with equal seeds are identical.
	Seed int64

	// Substrate selects the simulation substrate: SubstrateBitAccurate
	// (default; full trace) or SubstrateFast (no trace, fastest campaigns).
	// The protocol stack and its outcomes are identical on both.
	Substrate Substrate

	// Tb is the heartbeat period: the maximum interval between consecutive
	// life-sign transmit requests at a node.
	Tb time.Duration
	// Ttd is the bound assumed for the network message transmission delay.
	Ttd time.Duration
	// Tm is the membership cycle period.
	Tm time.Duration
	// TjoinWait is the maximum join wait delay (>> Tm).
	TjoinWait time.Duration
	// Trha is the RHA maximum termination time (< Tm).
	Trha time.Duration
	// J is the inconsistent omission degree bound (LCAN4).
	J int
	// K is the omission degree bound (MCAN3) enforced on stochastic
	// injection per reference interval.
	K int

	// PCorrupt and PInconsistent enable background stochastic fault
	// injection at the given per-transmission probabilities (bounded by K
	// and J per OmissionInterval).
	PCorrupt      float64
	PInconsistent float64
	// OmissionInterval is the reference interval for the K and J bounds.
	OmissionInterval time.Duration

	// Script optionally overlays deterministic scripted faults; scripted
	// decisions take precedence over stochastic ones.
	Script Injector

	// Hooks optionally observes (and perturbs) every node's stack at its
	// layer boundaries: frame indications and confirmations entering the
	// standard layer, can-data.nty, fda-can.nty, fd-can.nty and membership
	// view changes. The same Hooks value serves all nodes; callbacks carry
	// the node identity. Substrate-independent — the equivalence tests are
	// built on it.
	Hooks *Hooks

	// RHAEveryCycle disables the Figure 9 line s22 bandwidth optimization
	// (skipping RHA when no join/leave is pending). Ablation knob only.
	RHAEveryCycle bool

	// Record enables capture of every node's core event/command streams
	// into an event log retrievable with Network.EventLog — the input to
	// deterministic replay verification (internal/replay, canelysim
	// -record/-replay).
	Record bool

	// DualMedia enables the CANELy media redundancy scheme ([17]): every
	// node drives two replicated buses through a selection unit, so a
	// single-medium partition or jam never partitions the network. Script
	// and the stochastic injector apply to medium A; MediumBScript (if
	// set) applies to medium B. Both media use Config.Substrate.
	DualMedia     bool
	MediumBScript Injector

	// Scheduler, when non-nil, is Reset and reused as the network's event
	// scheduler instead of allocating a fresh one. Campaign workers pool a
	// scheduler per goroutine this way, so steady-state run churn reuses
	// one warm arena instead of regrowing heap and slot storage every run.
	// The network takes ownership for its lifetime: do not share one
	// scheduler between two live networks. Behaviour is identical either
	// way — a Reset scheduler is indistinguishable from a fresh one.
	Scheduler *sim.Scheduler
}

// DefaultConfig returns the parameterization used throughout the paper's
// operating envelope: 1 Mbit/s, Tb = 10 ms, Tm = 50 ms, j = 2.
func DefaultConfig() Config {
	return Config{
		Rate:             can.Rate1Mbps,
		Seed:             1,
		Tb:               10 * time.Millisecond,
		Ttd:              2 * time.Millisecond,
		Tm:               50 * time.Millisecond,
		TjoinWait:        120 * time.Millisecond,
		Trha:             5 * time.Millisecond,
		J:                2,
		K:                4,
		OmissionInterval: 100 * time.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("canely: bit rate must be positive")
	}
	fdCfg := fd.Config{Tb: c.Tb, Ttd: c.Ttd}
	if err := fdCfg.Validate(); err != nil {
		return err
	}
	mshCfg := membership.Config{
		Tm:        c.Tm,
		TjoinWait: c.TjoinWait,
		RHA:       membership.RHAConfig{Trha: c.Trha, J: c.J},
	}
	return mshCfg.Validate()
}

// DetectionLatencyBound returns the worst-case crash-to-notification
// latency under this configuration.
func (c Config) DetectionLatencyBound() time.Duration {
	return fd.Config{Tb: c.Tb, Ttd: c.Ttd}.DetectionLatency()
}

// stackConfig translates the network configuration to the per-node stack
// parameterization.
func (c Config) stackConfig() stack.Config {
	return stack.Config{
		FD: fd.Config{Tb: c.Tb, Ttd: c.Ttd},
		Membership: membership.Config{
			Tm:            c.Tm,
			TjoinWait:     c.TjoinWait,
			RHA:           membership.RHAConfig{Trha: c.Trha, J: c.J},
			RHAEveryCycle: c.RHAEveryCycle,
		},
		J: c.J,
	}
}

// Network is a simulated CANELy system: one medium (or two replicated
// media) plus a set of nodes, each running the full protocol stack.
//
// A Network is single-goroutine: it must never be entered from two
// goroutines at once (see guard.go). Campaigns parallelize by building one
// Network per run inside each worker, never by sharing an instance.
type Network struct {
	cfg     Config
	sched   *sim.Scheduler
	medium  stack.Medium
	mediumB stack.Medium // second medium when cfg.DualMedia
	tr      *trace.Trace
	rng     *sim.RNG
	nodes   map[NodeID]*Node
	order   []NodeID
	log     *replay.Log  // non-nil when cfg.Record
	busy    atomic.Int32 // concurrent-use guard (see guard.go)
}

// NewNetwork builds a network with nodes 0..n-1 attached. Additional nodes
// can be added with AddNode before the simulation starts.
func NewNetwork(cfg Config, n int) *Network {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("canely: invalid config: %v", err))
	}
	sched := cfg.Scheduler
	if sched != nil {
		sched.Reset()
	} else {
		sched = sim.NewScheduler()
	}
	rng := sim.NewRNG(cfg.Seed)
	// The fast substrate never traces; leaving tr nil turns every Emit in
	// the protocol stack into a nil-receiver no-op.
	var tr *trace.Trace
	if cfg.Substrate != SubstrateFast {
		tr = trace.New(func() sim.Time { return sched.Now() })
	}

	var inj fault.Injector = fault.None{}
	if cfg.PCorrupt > 0 || cfg.PInconsistent > 0 {
		inj = fault.NewStochastic(rng.Split("fault"), cfg.PCorrupt, cfg.PInconsistent,
			cfg.K, cfg.J, cfg.OmissionInterval)
	}
	if cfg.Script != nil {
		inj = fault.Chain{cfg.Script, inj}
	}

	net := &Network{
		cfg:   cfg,
		sched: sched,
		medium: stack.NewMedium(sched, stack.MediumConfig{
			Substrate: cfg.Substrate, Rate: cfg.Rate, Injector: inj, Trace: tr,
		}),
		tr:    tr,
		rng:   rng,
		nodes: make(map[NodeID]*Node),
	}
	if cfg.Record {
		net.log = replay.New()
	}
	if cfg.DualMedia {
		injB := fault.Injector(fault.None{})
		if cfg.MediumBScript != nil {
			injB = cfg.MediumBScript
		}
		net.mediumB = stack.NewMedium(sched, stack.MediumConfig{
			Substrate: cfg.Substrate, Rate: cfg.Rate, Injector: injB,
		})
	}
	for i := 0; i < n; i++ {
		net.addNode(NodeID(i))
	}
	return net
}

// AddNode attaches a node with the full CANELy stack.
func (n *Network) AddNode(id NodeID) *Node {
	n.enter()
	defer n.leave()
	return n.addNode(id)
}

// addNode is AddNode without the concurrency guard, for use from NewNetwork
// (where the Network has not escaped to any other goroutine yet).
func (n *Network) addNode(id NodeID) *Node {
	media := []stack.Medium{n.medium}
	if n.mediumB != nil {
		media = append(media, n.mediumB)
	}
	scfg := n.cfg.stackConfig()
	scfg.Recorder = n.log
	st, err := stack.New(n.sched, media, id, scfg, n.tr, n.cfg.Hooks)
	if err != nil {
		panic(fmt.Sprintf("canely: %v", err))
	}
	node := &Node{id: id, net: n, st: st}
	n.nodes[id] = node
	n.order = append(n.order, id)
	return node
}

// Node returns the node with the given id, or nil.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Nodes returns all nodes in attach order.
func (n *Network) Nodes() []*Node {
	out := make([]*Node, 0, len(n.order))
	for _, id := range n.order {
		out = append(out, n.nodes[id])
	}
	return out
}

// BootstrapAll installs the pre-agreed view containing every attached node
// and starts all protocol machinery.
func (n *Network) BootstrapAll() {
	n.enter()
	defer n.leave()
	var view NodeSet
	for _, id := range n.order {
		view = view.Add(id)
	}
	for _, id := range n.order {
		n.nodes[id].st.Bootstrap(view)
	}
}

// Run advances the simulation by d of virtual time. Only one goroutine may
// drive the Network at a time.
func (n *Network) Run(d time.Duration) {
	n.enter()
	defer n.leave()
	n.sched.RunFor(d)
}

// Now returns the current virtual time as an offset from the start.
func (n *Network) Now() time.Duration { return time.Duration(n.sched.Now()) }

// Stats returns a snapshot of medium-A wire statistics.
func (n *Network) Stats() BusStats { return n.medium.Stats() }

// Trace returns the network-wide event trace. It is nil under
// SubstrateFast, which never traces; all trace.Trace methods are
// nil-receiver safe, so reading an absent trace yields empty results.
func (n *Network) Trace() *trace.Trace { return n.tr }

// EventLog returns the recorded core event/command log, or nil unless
// Config.Record was set. The log grows as the simulation runs; verify or
// save it when driving is done.
func (n *Network) EventLog() *replay.Log { return n.log }

// Scheduler exposes the simulation scheduler for advanced scripting
// (scheduling application events at virtual instants).
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Rate returns the configured bus bit rate.
func (n *Network) Rate() BitRate { return n.cfg.Rate }

// Node is one CANELy site: the full protocol stack of Figure 5, assembled
// by internal/stack over the network's media.
type Node struct {
	id  NodeID
	net *Network
	st  *stack.Stack

	tickers []*sim.Ticker
	seq     uint8
}

// ID returns the node identity.
func (nd *Node) ID() NodeID { return nd.id }

// View returns the node's current site membership view (Rf).
func (nd *Node) View() NodeSet { return nd.st.Msh.View() }

// Member reports whether the node is currently a full member.
func (nd *Node) Member() bool { return nd.st.Msh.Member() }

// Bootstrap installs a pre-agreed initial view at this node and starts its
// protocol machinery. All initial members must be bootstrapped with the
// same view.
func (nd *Node) Bootstrap(view NodeSet) { nd.st.Bootstrap(view) }

// Join requests integration into the set of active sites.
func (nd *Node) Join() { nd.st.Join() }

// Leave requests withdrawal from the site membership view.
func (nd *Node) Leave() { nd.st.Leave() }

// OnChange registers a membership change consumer (msh-can.nty).
func (nd *Node) OnChange(fn func(Change)) { nd.st.OnChange(fn) }

// Crash fail-silences the node immediately (on both media under
// DualMedia).
func (nd *Node) Crash() {
	for _, t := range nd.tickers {
		t.Stop()
	}
	nd.st.Crash()
}

// Alive reports whether the node is operational: not crashed and not shut
// down by fault confinement (bus-off). A bus-off node is weak-fail-silent:
// its process may run on, but it can neither send nor receive, so from the
// system's perspective it has failed and its local view is stale. Under
// DualMedia the node is alive while at least one medium serves it.
func (nd *Node) Alive() bool { return nd.st.Alive() }

// ActiveMedium returns the index of the medium the node currently receives
// from (always 0 without DualMedia).
func (nd *Node) ActiveMedium() int { return nd.st.ActiveMedium() }

// Send broadcasts one application data message on a stream. Application
// traffic doubles as an implicit heartbeat (can-data.nty).
func (nd *Node) Send(stream uint8, payload []byte) error {
	nd.seq++
	return nd.st.Layer.DataReq(can.DataSign(stream, nd.id, nd.seq), payload)
}

// StartCyclicTraffic emits one application message on the stream every
// period — the cyclic traffic pattern typical of CAN control applications,
// which the failure detector exploits to avoid explicit life-signs.
func (nd *Node) StartCyclicTraffic(stream uint8, period time.Duration, payload []byte) {
	t := sim.NewTicker(nd.net.sched, func() {
		if nd.Alive() {
			_ = nd.Send(stream, payload)
		}
	})
	// Stagger the first emission to avoid lock-step collisions.
	first := nd.net.rng.Split(fmt.Sprintf("traffic/%d/%d", nd.id, stream)).Duration(period)
	t.StartAt(first, period)
	nd.tickers = append(nd.tickers, t)
}

// StopTraffic stops all cyclic traffic generators on the node.
func (nd *Node) StopTraffic() {
	for _, t := range nd.tickers {
		t.Stop()
	}
	nd.tickers = nil
}

// LifeSigns returns how many explicit life-sign frames this node has
// requested — the quantity the Figure 10 analysis calls b.
func (nd *Node) LifeSigns() int { return nd.st.Det.LifeSigns() }

// ControllerState reports the node's fault-confinement state on medium A
// ("error-active", "error-passive" or "bus-off").
func (nd *Node) ControllerState() string { return nd.st.Ports[0].State().String() }

// ErrorCounters returns the medium-A controller's transmit and receive
// error counters (TEC, REC).
func (nd *Node) ErrorCounters() (tec, rec int) { return nd.st.Ports[0].Counters() }

// Monitoring reports whether the node currently surveils node r.
func (nd *Node) Monitoring(r NodeID) bool { return nd.st.Det.Monitoring(r) }

// Cycles returns the number of completed membership cycles.
func (nd *Node) Cycles() int { return nd.st.Msh.Cycles }

// EnableClockSync starts the CANELy clock synchronization service on this
// node ([15]; the Figure 11 "tens of µs" row). drift is the node crystal's
// fractional rate error (e.g. 100e-6 for +100 ppm); period is the round
// period. The synchronization master is the lowest node in the agreed
// membership view, so a master crash is healed by the membership service
// with no extra election.
func (nd *Node) EnableClockSync(drift float64, period time.Duration) error {
	return nd.st.EnableClockSync(drift, period)
}

// ClockNow returns the node's synchronized local clock reading.
// EnableClockSync must have been called.
func (nd *Node) ClockNow() time.Duration {
	if nd.st.Sync == nil {
		panic("canely: clock sync not enabled")
	}
	return nd.st.Sync.Clock().Now()
}

// EnableGroups starts the process-group membership service on this node:
// group registrations travel over a RELCAN reliable broadcast and group
// views are pruned by the site membership service (§6's motivating use).
func (nd *Node) EnableGroups() error { return nd.st.EnableGroups() }

// JoinGroup announces a local process joining a group. EnableGroups must
// have been called.
func (nd *Node) JoinGroup(g GroupID) error {
	if nd.st.Groups == nil {
		return fmt.Errorf("canely: groups not enabled on %v", nd.id)
	}
	return nd.st.Groups.Join(g)
}

// LeaveGroup announces the local process leaving a group.
func (nd *Node) LeaveGroup(g GroupID) error {
	if nd.st.Groups == nil {
		return fmt.Errorf("canely: groups not enabled on %v", nd.id)
	}
	return nd.st.Groups.Leave(g)
}

// GroupView returns the agreed set of sites hosting members of a group.
func (nd *Node) GroupView(g GroupID) NodeSet {
	if nd.st.Groups == nil {
		return can.EmptySet
	}
	return nd.st.Groups.View(g)
}

// OnGroupChange registers a group view change consumer.
func (nd *Node) OnGroupChange(fn func(GroupChange)) {
	if nd.st.Groups == nil {
		panic("canely: groups not enabled")
	}
	nd.st.Groups.OnChange(fn)
}

// EnableOrderedBroadcast starts the TOTCAN-style totally ordered broadcast
// service ([18]) with the given accept-deadline offset. Every node that
// participates must enable it with the same delta.
func (nd *Node) EnableOrderedBroadcast(delta time.Duration) error {
	return nd.st.EnableOrdered(delta)
}

// OrderedBroadcast sends a payload (≤ 4 bytes) in network-wide total order.
func (nd *Node) OrderedBroadcast(data []byte) error {
	if nd.st.Ordered == nil {
		return fmt.Errorf("canely: ordered broadcast not enabled on %v", nd.id)
	}
	_, err := nd.st.Ordered.Broadcast(data)
	return err
}

// OnOrderedDeliver registers a total-order delivery consumer.
func (nd *Node) OnOrderedDeliver(fn func(from NodeID, data []byte)) {
	if nd.st.Ordered == nil {
		panic("canely: ordered broadcast not enabled")
	}
	nd.st.Ordered.Deliver(func(origin can.NodeID, _ uint8, data []byte) {
		fn(origin, data)
	})
}
