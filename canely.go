// Package canely is a faithful, simulation-backed implementation of the
// CANELy (CAN Enhanced Layer) node failure detection and site membership
// services described in:
//
//	J. Rufino, P. Veríssimo, G. Arroz. "Node Failure Detection and
//	Membership in CANELy". DSN 2003.
//
// The package assembles, per node, the full protocol stack of the paper's
// Figure 5 — CAN standard layer (with the can-data.nty extension), the FDA
// and RHA micro-protocols, the node failure detection protocol and the site
// membership protocol — on top of a bit-time-accurate discrete-event CAN
// bus simulator with fault injection (consistent corruptions, inconsistent
// omissions in the last two bits, node crashes, fault confinement).
//
// # Quick start
//
//	net := canely.NewNetwork(canely.DefaultConfig(), 4)
//	net.BootstrapAll()                    // pre-agreed initial view
//	net.Run(100 * time.Millisecond)       // steady state
//	net.Node(2).Crash()                   // kill a node
//	net.Run(100 * time.Millisecond)
//	view := net.Node(0).View()            // {n00,n01,n03}
//
// All time is virtual: a Network is single-threaded and deterministic for a
// given seed and fault script, which makes every experiment in this
// repository exactly reproducible.
package canely

import (
	"fmt"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/clocksync"
	"canely/internal/core/fd"
	"canely/internal/core/groups"
	"canely/internal/core/membership"
	"canely/internal/edcan"
	"canely/internal/fault"
	"canely/internal/redundancy"
	"canely/internal/sim"
	"canely/internal/trace"
)

// Re-exported identity and set types: the public API vocabulary.
type (
	// NodeID identifies a node (site); valid values are 0..63.
	NodeID = can.NodeID
	// NodeSet is a set of nodes: membership views, failed sets, RHVs.
	NodeSet = can.NodeSet
	// Change is a membership change notification (msh-can.nty).
	Change = membership.Change
	// BitRate is the bus signalling rate in bits per second.
	BitRate = can.BitRate
	// Injector decides per-transmission fault injection.
	Injector = fault.Injector
	// BusStats aggregates wire occupancy and outcome counters.
	BusStats = bus.Stats
	// GroupID names a process group.
	GroupID = groups.GroupID
	// GroupChange is a process-group view change notification.
	GroupChange = groups.Change
)

// MakeSet builds a NodeSet from ids.
func MakeSet(ids ...NodeID) NodeSet { return can.MakeSet(ids...) }

// Config parameterizes a CANELy network.
type Config struct {
	// Rate is the bus bit rate (default 1 Mbit/s).
	Rate BitRate
	// Seed drives all stochastic behaviour (fault injection, traffic
	// jitter); runs with equal seeds are identical.
	Seed int64

	// Tb is the heartbeat period: the maximum interval between consecutive
	// life-sign transmit requests at a node.
	Tb time.Duration
	// Ttd is the bound assumed for the network message transmission delay.
	Ttd time.Duration
	// Tm is the membership cycle period.
	Tm time.Duration
	// TjoinWait is the maximum join wait delay (>> Tm).
	TjoinWait time.Duration
	// Trha is the RHA maximum termination time (< Tm).
	Trha time.Duration
	// J is the inconsistent omission degree bound (LCAN4).
	J int
	// K is the omission degree bound (MCAN3) enforced on stochastic
	// injection per reference interval.
	K int

	// PCorrupt and PInconsistent enable background stochastic fault
	// injection at the given per-transmission probabilities (bounded by K
	// and J per OmissionInterval).
	PCorrupt      float64
	PInconsistent float64
	// OmissionInterval is the reference interval for the K and J bounds.
	OmissionInterval time.Duration

	// Script optionally overlays deterministic scripted faults; scripted
	// decisions take precedence over stochastic ones.
	Script Injector

	// RHAEveryCycle disables the Figure 9 line s22 bandwidth optimization
	// (skipping RHA when no join/leave is pending). Ablation knob only.
	RHAEveryCycle bool

	// DualMedia enables the CANELy media redundancy scheme ([17]): every
	// node drives two replicated buses through a selection unit, so a
	// single-medium partition or jam never partitions the network. Script
	// and the stochastic injector apply to medium A; MediumBScript (if
	// set) applies to medium B.
	DualMedia     bool
	MediumBScript Injector
}

// DefaultConfig returns the parameterization used throughout the paper's
// operating envelope: 1 Mbit/s, Tb = 10 ms, Tm = 50 ms, j = 2.
func DefaultConfig() Config {
	return Config{
		Rate:             can.Rate1Mbps,
		Seed:             1,
		Tb:               10 * time.Millisecond,
		Ttd:              2 * time.Millisecond,
		Tm:               50 * time.Millisecond,
		TjoinWait:        120 * time.Millisecond,
		Trha:             5 * time.Millisecond,
		J:                2,
		K:                4,
		OmissionInterval: 100 * time.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Rate <= 0 {
		return fmt.Errorf("canely: bit rate must be positive")
	}
	fdCfg := fd.Config{Tb: c.Tb, Ttd: c.Ttd}
	if err := fdCfg.Validate(); err != nil {
		return err
	}
	mshCfg := membership.Config{
		Tm:        c.Tm,
		TjoinWait: c.TjoinWait,
		RHA:       membership.RHAConfig{Trha: c.Trha, J: c.J},
	}
	return mshCfg.Validate()
}

// DetectionLatencyBound returns the worst-case crash-to-notification
// latency under this configuration.
func (c Config) DetectionLatencyBound() time.Duration {
	return fd.Config{Tb: c.Tb, Ttd: c.Ttd}.DetectionLatency()
}

// Network is a simulated CANELy system: one bus (or two replicated media)
// plus a set of nodes, each running the full protocol stack.
//
// A Network is single-goroutine: it must only be driven from the goroutine
// that created it (see guard.go). Campaigns parallelize by building one
// Network per run inside each worker, never by sharing an instance.
type Network struct {
	cfg   Config
	sched *sim.Scheduler
	bus   *bus.Bus
	busB  *bus.Bus // second medium when cfg.DualMedia
	tr    *trace.Trace
	rng   *sim.RNG
	nodes map[NodeID]*Node
	order []NodeID
	owner int64 // id of the goroutine that owns this network
}

// NewNetwork builds a network with nodes 0..n-1 attached. Additional nodes
// can be added with AddNode before the simulation starts.
func NewNetwork(cfg Config, n int) *Network {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("canely: invalid config: %v", err))
	}
	sched := sim.NewScheduler()
	tr := trace.New(func() sim.Time { return sched.Now() })
	rng := sim.NewRNG(cfg.Seed)

	var inj fault.Injector = fault.None{}
	if cfg.PCorrupt > 0 || cfg.PInconsistent > 0 {
		inj = fault.NewStochastic(rng.Split("fault"), cfg.PCorrupt, cfg.PInconsistent,
			cfg.K, cfg.J, cfg.OmissionInterval)
	}
	if cfg.Script != nil {
		inj = fault.Chain{cfg.Script, inj}
	}

	b := bus.New(sched, bus.Config{Rate: cfg.Rate, Injector: inj, Trace: tr})
	net := &Network{
		cfg:   cfg,
		sched: sched,
		bus:   b,
		tr:    tr,
		rng:   rng,
		nodes: make(map[NodeID]*Node),
		owner: goroutineID(),
	}
	if cfg.DualMedia {
		injB := fault.Injector(fault.None{})
		if cfg.MediumBScript != nil {
			injB = cfg.MediumBScript
		}
		net.busB = bus.New(sched, bus.Config{Rate: cfg.Rate, Injector: injB})
	}
	for i := 0; i < n; i++ {
		net.AddNode(NodeID(i))
	}
	return net
}

// AddNode attaches a node with the full CANELy stack.
func (n *Network) AddNode(id NodeID) *Node {
	n.checkOwner()
	port := n.bus.Attach(id)
	var ctrl canlayer.Controller = port
	var dual *redundancy.DualPort
	if n.busB != nil {
		dual = redundancy.NewDualPort(n.sched, port, n.busB.Attach(id), 0)
		ctrl = dual
	}
	layer := canlayer.New(ctrl)
	fda := fd.NewFDA(layer)
	det, err := fd.NewDetector(n.sched, layer, fda, fd.Config{Tb: n.cfg.Tb, Ttd: n.cfg.Ttd}, n.tr)
	if err != nil {
		panic(err)
	}
	msh, err := membership.New(n.sched, layer, det, membership.Config{
		Tm:            n.cfg.Tm,
		TjoinWait:     n.cfg.TjoinWait,
		RHA:           membership.RHAConfig{Trha: n.cfg.Trha, J: n.cfg.J},
		RHAEveryCycle: n.cfg.RHAEveryCycle,
	}, n.tr)
	if err != nil {
		panic(err)
	}
	node := &Node{
		id: id, net: n, port: port, dual: dual, layer: layer,
		fda: fda, det: det, msh: msh,
	}
	n.nodes[id] = node
	n.order = append(n.order, id)
	return node
}

// Node returns the node with the given id, or nil.
func (n *Network) Node(id NodeID) *Node { return n.nodes[id] }

// Nodes returns all nodes in attach order.
func (n *Network) Nodes() []*Node {
	out := make([]*Node, 0, len(n.order))
	for _, id := range n.order {
		out = append(out, n.nodes[id])
	}
	return out
}

// BootstrapAll installs the pre-agreed view containing every attached node
// and starts all protocol machinery.
func (n *Network) BootstrapAll() {
	n.checkOwner()
	var view NodeSet
	for _, id := range n.order {
		view = view.Add(id)
	}
	for _, id := range n.order {
		n.nodes[id].msh.Bootstrap(view)
	}
}

// Run advances the simulation by d of virtual time. It must be called from
// the goroutine that created the Network.
func (n *Network) Run(d time.Duration) {
	n.checkOwner()
	n.sched.RunFor(d)
}

// Now returns the current virtual time as an offset from the start.
func (n *Network) Now() time.Duration { return time.Duration(n.sched.Now()) }

// Stats returns a snapshot of bus statistics.
func (n *Network) Stats() BusStats { return n.bus.Stats() }

// Trace returns the network-wide event trace.
func (n *Network) Trace() *trace.Trace { return n.tr }

// Scheduler exposes the simulation scheduler for advanced scripting
// (scheduling application events at virtual instants).
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Rate returns the configured bus bit rate.
func (n *Network) Rate() BitRate { return n.cfg.Rate }

// Node is one CANELy site: the full protocol stack of Figure 5.
type Node struct {
	id    NodeID
	net   *Network
	port  *bus.Port
	layer *canlayer.Layer
	fda   *fd.FDA
	det   *fd.Detector
	msh   *membership.Protocol

	dual    *redundancy.DualPort
	tickers []*sim.Ticker
	seq     uint8
	sync    *clocksync.Synchronizer
	grp     *groups.Service
	ordered *edcan.Ordered
}

// ID returns the node identity.
func (nd *Node) ID() NodeID { return nd.id }

// View returns the node's current site membership view (Rf).
func (nd *Node) View() NodeSet { return nd.msh.View() }

// Member reports whether the node is currently a full member.
func (nd *Node) Member() bool { return nd.msh.Member() }

// Bootstrap installs a pre-agreed initial view at this node and starts its
// protocol machinery. All initial members must be bootstrapped with the
// same view.
func (nd *Node) Bootstrap(view NodeSet) { nd.msh.Bootstrap(view) }

// Join requests integration into the set of active sites.
func (nd *Node) Join() { nd.msh.Join() }

// Leave requests withdrawal from the site membership view.
func (nd *Node) Leave() { nd.msh.Leave() }

// OnChange registers a membership change consumer (msh-can.nty).
func (nd *Node) OnChange(fn func(Change)) { nd.msh.OnChange(fn) }

// Crash fail-silences the node immediately (on both media under
// DualMedia).
func (nd *Node) Crash() {
	for _, t := range nd.tickers {
		t.Stop()
	}
	if nd.dual != nil {
		nd.dual.Crash()
		return
	}
	nd.port.Crash()
}

// Alive reports whether the node is operational: not crashed and not shut
// down by fault confinement (bus-off). A bus-off node is weak-fail-silent:
// its process may run on, but it can neither send nor receive, so from the
// system's perspective it has failed and its local view is stale. Under
// DualMedia the node is alive while at least one medium serves it.
func (nd *Node) Alive() bool {
	if nd.dual != nil {
		return nd.dual.Operational()
	}
	return nd.port.Operational()
}

// ActiveMedium returns the index of the medium the node currently receives
// from (always 0 without DualMedia).
func (nd *Node) ActiveMedium() int {
	if nd.dual == nil {
		return 0
	}
	return nd.dual.Active()
}

// Send broadcasts one application data message on a stream. Application
// traffic doubles as an implicit heartbeat (can-data.nty).
func (nd *Node) Send(stream uint8, payload []byte) error {
	nd.seq++
	return nd.layer.DataReq(can.DataSign(stream, nd.id, nd.seq), payload)
}

// StartCyclicTraffic emits one application message on the stream every
// period — the cyclic traffic pattern typical of CAN control applications,
// which the failure detector exploits to avoid explicit life-signs.
func (nd *Node) StartCyclicTraffic(stream uint8, period time.Duration, payload []byte) {
	t := sim.NewTicker(nd.net.sched, func() {
		if nd.Alive() {
			_ = nd.Send(stream, payload)
		}
	})
	// Stagger the first emission to avoid lock-step collisions.
	first := nd.net.rng.Split(fmt.Sprintf("traffic/%d/%d", nd.id, stream)).Duration(period)
	t.StartAt(first, period)
	nd.tickers = append(nd.tickers, t)
}

// StopTraffic stops all cyclic traffic generators on the node.
func (nd *Node) StopTraffic() {
	for _, t := range nd.tickers {
		t.Stop()
	}
	nd.tickers = nil
}

// LifeSigns returns how many explicit life-sign frames this node has
// requested — the quantity the Figure 10 analysis calls b.
func (nd *Node) LifeSigns() int { return nd.det.LifeSigns() }

// ControllerState reports the node's fault-confinement state
// ("error-active", "error-passive" or "bus-off").
func (nd *Node) ControllerState() string { return nd.port.State().String() }

// ErrorCounters returns the controller's transmit and receive error
// counters (TEC, REC).
func (nd *Node) ErrorCounters() (tec, rec int) { return nd.port.Counters() }

// Monitoring reports whether the node currently surveils node r.
func (nd *Node) Monitoring(r NodeID) bool { return nd.det.Monitoring(r) }

// Cycles returns the number of completed membership cycles.
func (nd *Node) Cycles() int { return nd.msh.Cycles }

// EnableClockSync starts the CANELy clock synchronization service on this
// node ([15]; the Figure 11 "tens of µs" row). drift is the node crystal's
// fractional rate error (e.g. 100e-6 for +100 ppm); period is the round
// period. The synchronization master is the lowest node in the agreed
// membership view, so a master crash is healed by the membership service
// with no extra election.
func (nd *Node) EnableClockSync(drift float64, period time.Duration) error {
	if nd.sync != nil {
		return fmt.Errorf("canely: clock sync already enabled on %v", nd.id)
	}
	clock := clocksync.NewClock(nd.net.sched, drift, time.Microsecond)
	master := func() NodeID {
		ids := nd.msh.View().IDs()
		if len(ids) == 0 {
			return nd.id // not yet integrated: act alone
		}
		return ids[0]
	}
	s, err := clocksync.New(nd.net.sched, nd.layer, clock, master, clocksync.Config{Period: period})
	if err != nil {
		return err
	}
	nd.sync = s
	s.Start()
	return nil
}

// ClockNow returns the node's synchronized local clock reading.
// EnableClockSync must have been called.
func (nd *Node) ClockNow() time.Duration {
	if nd.sync == nil {
		panic("canely: clock sync not enabled")
	}
	return nd.sync.Clock().Now()
}

// EnableGroups starts the process-group membership service on this node:
// group registrations travel over a RELCAN reliable broadcast and group
// views are pruned by the site membership service (§6's motivating use).
func (nd *Node) EnableGroups() error {
	if nd.grp != nil {
		return fmt.Errorf("canely: groups already enabled on %v", nd.id)
	}
	rel, err := edcan.NewRELCAN(nd.net.sched, nd.layer, edcan.RELCANConfig{
		Timeout: 2 * nd.net.cfg.Ttd,
		J:       nd.net.cfg.J,
	})
	if err != nil {
		return err
	}
	nd.grp = groups.New(rel, nd.msh, nd.id)
	return nil
}

// JoinGroup announces a local process joining a group. EnableGroups must
// have been called.
func (nd *Node) JoinGroup(g GroupID) error {
	if nd.grp == nil {
		return fmt.Errorf("canely: groups not enabled on %v", nd.id)
	}
	return nd.grp.Join(g)
}

// LeaveGroup announces the local process leaving a group.
func (nd *Node) LeaveGroup(g GroupID) error {
	if nd.grp == nil {
		return fmt.Errorf("canely: groups not enabled on %v", nd.id)
	}
	return nd.grp.Leave(g)
}

// GroupView returns the agreed set of sites hosting members of a group.
func (nd *Node) GroupView(g GroupID) NodeSet {
	if nd.grp == nil {
		return can.EmptySet
	}
	return nd.grp.View(g)
}

// OnGroupChange registers a group view change consumer.
func (nd *Node) OnGroupChange(fn func(GroupChange)) {
	if nd.grp == nil {
		panic("canely: groups not enabled")
	}
	nd.grp.OnChange(fn)
}

// EnableOrderedBroadcast starts the TOTCAN-style totally ordered broadcast
// service ([18]) with the given accept-deadline offset. Every node that
// participates must enable it with the same delta.
func (nd *Node) EnableOrderedBroadcast(delta time.Duration) error {
	if nd.ordered != nil {
		return fmt.Errorf("canely: ordered broadcast already enabled on %v", nd.id)
	}
	ord, err := edcan.NewOrdered(nd.net.sched, nd.layer, edcan.OrderedConfig{
		Delta: delta,
		J:     nd.net.cfg.J,
	})
	if err != nil {
		return err
	}
	nd.ordered = ord
	return nil
}

// OrderedBroadcast sends a payload (≤ 4 bytes) in network-wide total order.
func (nd *Node) OrderedBroadcast(data []byte) error {
	if nd.ordered == nil {
		return fmt.Errorf("canely: ordered broadcast not enabled on %v", nd.id)
	}
	_, err := nd.ordered.Broadcast(data)
	return err
}

// OnOrderedDeliver registers a total-order delivery consumer.
func (nd *Node) OnOrderedDeliver(fn func(from NodeID, data []byte)) {
	if nd.ordered == nil {
		panic("canely: ordered broadcast not enabled")
	}
	nd.ordered.Deliver(func(origin can.NodeID, _ uint8, data []byte) {
		fn(origin, data)
	})
}
