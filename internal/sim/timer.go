package sim

// Timer is a restartable one-shot alarm on the virtual timeline. It mirrors
// the "start alarm / cancel alarm / alarm expires" interface the CANELy
// protocol specifications (Figures 7–9 of the paper) are written against.
//
// Unlike time.Timer there is no channel: expiry invokes a callback inline on
// the simulation event loop, which is single-threaded and deterministic.
//
// Restarting is lazy: the surveillance timers of the failure-detection layer
// are restarted on every delivered frame but almost never expire, so Start
// only records the new deadline when an already-scheduled placeholder event
// fires early enough. The placeholder re-arms itself to the real deadline
// when it fires, which turns the per-frame restart from two heap operations
// into a field write.
type Timer struct {
	s  *Scheduler
	fn func()
	// expireFn is the pre-bound method value: a `t.expire` expression at
	// every (re)schedule would allocate a fresh closure each time.
	expireFn func()
	ev       Event
	period   Duration
	deadline Time
	armed    bool
	started  bool
}

// NewTimer creates a stopped timer that runs fn on expiry.
func NewTimer(s *Scheduler, fn func()) *Timer {
	if s == nil {
		panic("sim: NewTimer with nil scheduler")
	}
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	t := &Timer{s: s, fn: fn}
	t.expireFn = t.expire
	return t
}

// Start arms the timer to expire d from now, cancelling any earlier arming.
func (t *Timer) Start(d Duration) {
	if d < 0 {
		panic("sim: Timer.Start with negative duration")
	}
	t.period = d
	t.started = true
	t.armed = true
	t.deadline = t.s.Now().Add(d)
	// Invariant while armed: ev is pending and ev.When() <= deadline, so the
	// placeholder always fires at or before the real deadline and can re-arm.
	if t.ev.Pending() && t.ev.When() <= t.deadline {
		return
	}
	t.ev.Cancel()
	t.ev = t.s.At(t.deadline, t.expireFn)
}

// Restart re-arms the timer with its previous duration. It panics if the
// timer was never started.
func (t *Timer) Restart() {
	if !t.started {
		panic("sim: Restart of a never-started timer")
	}
	t.Start(t.period)
}

// Stop disarms the timer. It reports whether the timer was armed.
// The placeholder event, if any, is left queued and fires as a no-op (or is
// reused by a later Start), which keeps Stop O(1).
func (t *Timer) Stop() bool {
	was := t.armed
	t.armed = false
	return was
}

// Armed reports whether the timer is currently counting down.
func (t *Timer) Armed() bool { return t.armed }

// Deadline returns the expiry instant, or Never when disarmed.
func (t *Timer) Deadline() Time {
	if !t.armed {
		return Never
	}
	return t.deadline
}

func (t *Timer) expire() {
	t.ev = Event{}
	if !t.armed {
		return // stopped after the placeholder was scheduled
	}
	if t.deadline > t.s.Now() {
		// The deadline moved later since this placeholder was scheduled;
		// chase it.
		t.ev = t.s.At(t.deadline, t.expireFn)
		return
	}
	t.armed = false
	t.fn()
}

// Ticker repeatedly invokes a callback with a fixed period. Protocols use it
// for cyclic traffic generators and membership cycles.
type Ticker struct {
	s      *Scheduler
	fn     func()
	tickFn func() // pre-bound t.tick, see Timer.expireFn
	period Duration
	ev     Event
}

// NewTicker creates a stopped ticker.
func NewTicker(s *Scheduler, fn func()) *Ticker {
	if s == nil {
		panic("sim: NewTicker with nil scheduler")
	}
	if fn == nil {
		panic("sim: NewTicker with nil callback")
	}
	t := &Ticker{s: s, fn: fn}
	t.tickFn = t.tick
	return t
}

// Start begins ticking every period, with the first tick one period from
// now. A non-positive period panics.
func (t *Ticker) Start(period Duration) {
	if period <= 0 {
		panic("sim: Ticker.Start with non-positive period")
	}
	t.Stop()
	t.period = period
	t.ev = t.s.After(period, t.tickFn)
}

// StartAt begins ticking every period with the first tick at the given
// offset from now (may differ from the period, e.g. for phase-staggering
// cyclic senders).
func (t *Ticker) StartAt(first, period Duration) {
	if period <= 0 {
		panic("sim: Ticker.StartAt with non-positive period")
	}
	if first < 0 {
		panic("sim: Ticker.StartAt with negative first offset")
	}
	t.Stop()
	t.period = period
	t.ev = t.s.After(first, t.tickFn)
}

// Stop halts the ticker.
func (t *Ticker) Stop() {
	t.ev.Cancel()
	t.ev = Event{}
}

// Running reports whether the ticker is active.
func (t *Ticker) Running() bool { return t.ev.Pending() }

func (t *Ticker) tick() {
	// Re-arm before invoking the callback so the callback may Stop the
	// ticker and observe Running() == false afterwards.
	t.ev = t.s.After(t.period, t.tickFn)
	t.fn()
}
