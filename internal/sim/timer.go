package sim

// Timer is a restartable one-shot alarm on the virtual timeline. It mirrors
// the "start alarm / cancel alarm / alarm expires" interface the CANELy
// protocol specifications (Figures 7–9 of the paper) are written against.
//
// Unlike time.Timer there is no channel: expiry invokes a callback inline on
// the simulation event loop, which is single-threaded and deterministic.
type Timer struct {
	s      *Scheduler
	fn     func()
	ev     *Event
	period Duration
}

// NewTimer creates a stopped timer that runs fn on expiry.
func NewTimer(s *Scheduler, fn func()) *Timer {
	if s == nil {
		panic("sim: NewTimer with nil scheduler")
	}
	if fn == nil {
		panic("sim: NewTimer with nil callback")
	}
	return &Timer{s: s, fn: fn}
}

// Start arms the timer to expire d from now, cancelling any earlier arming.
func (t *Timer) Start(d Duration) {
	t.Stop()
	t.period = d
	t.ev = t.s.After(d, t.expire)
}

// Restart re-arms the timer with its previous duration. It panics if the
// timer was never started.
func (t *Timer) Restart() {
	if t.period == 0 && t.ev == nil {
		panic("sim: Restart of a never-started timer")
	}
	t.Start(t.period)
}

// Stop disarms the timer. It reports whether the timer was armed.
func (t *Timer) Stop() bool {
	if t.ev == nil {
		return false
	}
	live := t.ev.Cancel()
	t.ev = nil
	return live
}

// Armed reports whether the timer is currently counting down.
func (t *Timer) Armed() bool { return t.ev != nil && t.ev.Pending() }

// Deadline returns the expiry instant, or Never when disarmed.
func (t *Timer) Deadline() Time {
	if !t.Armed() {
		return Never
	}
	return t.ev.When()
}

func (t *Timer) expire() {
	t.ev = nil
	t.fn()
}

// Ticker repeatedly invokes a callback with a fixed period. Protocols use it
// for cyclic traffic generators and membership cycles.
type Ticker struct {
	s      *Scheduler
	fn     func()
	period Duration
	ev     *Event
}

// NewTicker creates a stopped ticker.
func NewTicker(s *Scheduler, fn func()) *Ticker {
	if s == nil {
		panic("sim: NewTicker with nil scheduler")
	}
	if fn == nil {
		panic("sim: NewTicker with nil callback")
	}
	return &Ticker{s: s, fn: fn}
}

// Start begins ticking every period, with the first tick one period from
// now. A non-positive period panics.
func (t *Ticker) Start(period Duration) {
	if period <= 0 {
		panic("sim: Ticker.Start with non-positive period")
	}
	t.Stop()
	t.period = period
	t.ev = t.s.After(period, t.tick)
}

// StartAt begins ticking every period with the first tick at the given
// offset from now (may differ from the period, e.g. for phase-staggering
// cyclic senders).
func (t *Ticker) StartAt(first, period Duration) {
	if period <= 0 {
		panic("sim: Ticker.StartAt with non-positive period")
	}
	if first < 0 {
		panic("sim: Ticker.StartAt with negative first offset")
	}
	t.Stop()
	t.period = period
	t.ev = t.s.After(first, t.tick)
}

// Stop halts the ticker.
func (t *Ticker) Stop() {
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}

// Running reports whether the ticker is active.
func (t *Ticker) Running() bool { return t.ev != nil && t.ev.Pending() }

func (t *Ticker) tick() {
	// Re-arm before invoking the callback so the callback may Stop the
	// ticker and observe Running() == false afterwards.
	t.ev = t.s.After(t.period, t.tick)
	t.fn()
}
