package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a deterministic random stream. Components never share a stream:
// each derives its own via Split, so adding a consumer of randomness in one
// module cannot perturb the draws seen by another (runs stay comparable
// across code changes).
//
// Seeding is lazy: math/rand source initialization costs tens of
// microseconds, which dominates network construction in campaign runs that
// never draw (no stochastic faults, no jittered traffic). The draw sequence
// for a given seed is unchanged.
type RNG struct {
	r    *rand.Rand
	seed int64
}

// NewRNG returns a stream seeded with the given value.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed}
}

// src seeds the underlying source on first use.
func (g *RNG) src() *rand.Rand {
	if g.r == nil {
		g.r = rand.New(rand.NewSource(g.seed))
	}
	return g.r
}

// Seed returns the seed this stream was created with.
func (g *RNG) Seed() int64 { return g.seed }

// Split derives an independent child stream, named so derivation is stable
// across runs (e.g. Split("bus"), Split("node/3")).
func (g *RNG) Split(name string) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	child := g.seed ^ int64(h.Sum64())
	// Avoid the degenerate all-zero seed.
	if child == 0 {
		child = int64(h.Sum64()) | 1
	}
	return NewRNG(child)
}

// Float64 returns a uniform draw in [0,1).
func (g *RNG) Float64() float64 { return g.src().Float64() }

// Intn returns a uniform draw in [0,n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.src().Intn(n) }

// Int63 returns a non-negative uniform 63-bit draw.
func (g *RNG) Int63() int64 { return g.src().Int63() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.src().Float64() < p
}

// Duration returns a uniform draw in [0, d).
func (g *RNG) Duration(d Duration) Duration {
	if d <= 0 {
		return 0
	}
	return Duration(g.src().Int63n(int64(d)))
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.src().Perm(n) }

// Pick returns a uniformly chosen element index of a non-empty length.
func (g *RNG) Pick(n int) int {
	if n <= 0 {
		panic("sim: Pick from empty range")
	}
	return g.src().Intn(n)
}

// Subset returns a uniformly random subset of [0,n) of the given size.
func (g *RNG) Subset(n, size int) []int {
	if size < 0 || size > n {
		panic("sim: Subset size out of range")
	}
	perm := g.src().Perm(n)
	out := append([]int(nil), perm[:size]...)
	return out
}
