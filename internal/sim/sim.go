// Package sim provides a deterministic discrete-event simulation kernel:
// virtual time, an event scheduler, cancellable timers and reproducible,
// per-component random number streams.
//
// Every protocol layer in this repository runs on top of a Scheduler. All
// concurrency in the simulated system is expressed as events on a single
// virtual timeline, which makes every run bit-for-bit reproducible for a
// given seed and fault script.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time: simulated CAN runs
// have no relation to the wall clock.
type Time int64

// Duration mirrors time.Duration (nanoseconds) on the virtual timeline.
type Duration = time.Duration

// Common durations re-exported for readability at call sites.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Never is a sentinel Time that is after every reachable instant.
const Never = Time(math.MaxInt64)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String renders the instant as a duration offset, e.g. "12.345ms".
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return Duration(t).String()
}

// Event is a scheduled callback and the handle to cancel it: the heap node
// itself is handed back to the scheduler's callers, so scheduling costs one
// allocation, not two. Events with equal deadlines fire in scheduling order
// (seq), which keeps runs deterministic.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	fired bool
	gone  bool // cancelled
}

// Cancel prevents the event from firing. It is a no-op if the event already
// fired or was already cancelled. It reports whether the event was live.
func (e *Event) Cancel() bool {
	if e == nil || e.fired || e.gone {
		return false
	}
	e.gone = true
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (e *Event) Pending() bool {
	return e != nil && !e.fired && !e.gone
}

// When returns the instant the event fires (or fired).
func (e *Event) When() Time {
	if e == nil {
		return Never
	}
	return e.at
}

// eventQueue is a hand-rolled 4-ary min-heap of events ordered by (at, seq).
// The ordering key is total (seq is unique), so the pop order is independent
// of the heap shape; the concrete sift code exists purely to keep the
// scheduler's hottest operations free of interface dispatch and boxing. The
// wide fan-out halves the sift-up depth against a binary heap, which is
// where the scheduler spends its comparisons: pushes outnumber pops'
// sift-down work on the shallow queues the simulations carry.
type eventQueue []*Event

// before reports whether event a fires before event b.
func before(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(ev *Event) {
	h := append(*q, ev)
	*q = h
	// Sift up.
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !before(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The queue must be non-empty.
func (q *eventQueue) pop() *Event {
	h := *q
	n := len(h) - 1
	min := h[0]
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	// Sift down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		j := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if before(h[c], h[j]) {
				j = c
			}
		}
		if !before(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return min
}

// Scheduler is a deterministic discrete-event scheduler. The zero value is
// not usable; create one with NewScheduler.
type Scheduler struct {
	now     Time
	seq     uint64
	queue   eventQueue
	running bool
	stopped bool
	fired   uint64
	// slab is the tail of the current event allocation chunk. Carving events
	// out of chunks instead of allocating one object per At call takes the
	// allocator off the scheduler's hot path.
	slab []Event
	// free recycles events whose lifetime has ended (fired with the callback
	// returned, or cancelled and reaped from the queue). With it, the
	// steady-state event churn costs no allocation at all: the slab only
	// grows to the peak number of simultaneously live events. Recycling is
	// what makes the handle-validity contract of At load-bearing.
	free []*Event
}

// NewScheduler returns a scheduler positioned at virtual time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued (including cancelled
// events not yet reaped).
func (s *Scheduler) Pending() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.gone {
			n++
		}
	}
	return n
}

// At schedules fn to run at the given instant. Scheduling in the past
// (before Now) panics: in a discrete-event simulation that is always a bug.
//
// The returned handle is valid while the event is pending. Once the event
// has fired (and its callback returned) or was cancelled, the scheduler may
// recycle the Event for a later At, so holders must drop or replace stale
// references instead of calling Cancel/Pending/When on them — the
// sim.Timer/Ticker machinery and the stack binding follow this discipline.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free = s.free[:n-1]
		ev.fired, ev.gone = false, false
	} else {
		if len(s.slab) == 0 {
			s.slab = make([]Event, 128)
		}
		ev = &s.slab[0]
		s.slab = s.slab[1:]
	}
	ev.at, ev.seq, ev.fn = t, s.seq, fn
	s.seq++
	s.queue.push(ev)
	return ev
}

// After schedules fn to run d from now. Negative d panics.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: After with negative duration %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Step executes the next pending event, advancing virtual time to its
// deadline. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := s.queue.pop()
		if ev.gone {
			s.free = append(s.free, ev)
			continue
		}
		s.now = ev.at
		ev.fired = true
		s.fired++
		fn := ev.fn
		ev.fn = nil // release the closure before the callback reschedules
		fn()
		// Recycle only now: during fn the handle is still the firing event's
		// (holders clear their references from inside the callback), and an
		// At call made by fn must not be handed this very event while the
		// holder can still observe it.
		s.free = append(s.free, ev)
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.running = true
	s.stopped = false
	for !s.stopped && s.Step() {
	}
	s.running = false
}

// RunUntil executes events with deadlines <= t, then advances time to t.
// Events scheduled for after t remain queued.
func (s *Scheduler) RunUntil(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, s.now))
	}
	s.running = true
	s.stopped = false
	for !s.stopped {
		next, ok := s.peek()
		if !ok || next > t {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
	s.running = false
}

// RunFor executes events for a span of d from the current instant.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Stop aborts a Run/RunUntil in progress after the current event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// peek returns the deadline of the next live event.
func (s *Scheduler) peek() (Time, bool) {
	for len(s.queue) > 0 {
		ev := s.queue[0]
		if ev.gone {
			s.free = append(s.free, s.queue.pop())
			continue
		}
		return ev.at, true
	}
	return 0, false
}

// NextDeadline returns the instant of the next live event, or Never.
func (s *Scheduler) NextDeadline() Time {
	t, ok := s.peek()
	if !ok {
		return Never
	}
	return t
}
