// Package sim provides a deterministic discrete-event simulation kernel:
// virtual time, an event scheduler, cancellable timers and reproducible,
// per-component random number streams.
//
// Every protocol layer in this repository runs on top of a Scheduler. All
// concurrency in the simulated system is expressed as events on a single
// virtual timeline, which makes every run bit-for-bit reproducible for a
// given seed and fault script.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time: simulated CAN runs
// have no relation to the wall clock.
type Time int64

// Duration mirrors time.Duration (nanoseconds) on the virtual timeline.
type Duration = time.Duration

// Common durations re-exported for readability at call sites.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Never is a sentinel Time that is after every reachable instant.
const Never = Time(math.MaxInt64)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String renders the instant as a duration offset, e.g. "12.345ms".
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return Duration(t).String()
}

// Event is the opaque handle to a scheduled callback: a (slot, generation)
// reference into the scheduler's arena. The zero value refers to no event
// (Cancel is a no-op, Pending is false, When is Never).
//
// The handle stays valid while the event is pending. Once the event has
// fired (and its callback returned) or was cancelled, the scheduler recycles
// the slot and bumps its generation, so every operation on a stale handle
// degrades to a harmless no-op — a stale Cancel can never hit an unrelated
// event. Handles are values: copy them freely, compare them to the zero
// Event to test "never scheduled".
type Event struct {
	s    *Scheduler
	slot int32
	gen  uint32
}

// live reports whether the handle still names its original event.
func (e Event) live() bool {
	return e.s != nil && int(e.slot) < len(e.s.gens) && e.s.gens[e.slot] == e.gen
}

// Cancel prevents the event from firing. It is a no-op if the event already
// fired, was already cancelled, or the handle is stale or zero. It reports
// whether the event was live.
func (e Event) Cancel() bool {
	if !e.live() || e.s.state[e.slot] != slotPending {
		return false
	}
	e.s.state[e.slot] = slotGone
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (e Event) Pending() bool {
	return e.live() && e.s.state[e.slot] == slotPending
}

// When returns the instant the event fires (or, from inside its own
// callback, the instant it is firing). Stale and zero handles return Never.
func (e Event) When() Time {
	if !e.live() {
		return Never
	}
	return e.s.at[e.slot]
}

// Slot lifecycle states in the arena.
const (
	slotPending uint8 = iota // queued, will fire
	slotGone                 // cancelled, awaiting reap from the heap
	slotFiring               // callback executing right now
)

// heapEntry is one element of the scheduler's priority queue. The ordering
// key (at, seq) is stored inline so the hot sift loops compare within one
// contiguous array and never chase into the arena — the struct-of-arrays
// counterpart of the old *Event heap.
type heapEntry struct {
	at   Time
	seq  uint64
	slot int32
}

// entryBefore reports whether entry a fires before entry b. The key is
// total (seq is unique), so pop order is independent of heap shape.
func entryBefore(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Scheduler is a deterministic discrete-event scheduler. The zero value is
// not usable; create one with NewScheduler.
//
// Storage is struct-of-arrays: callbacks, deadlines and lifecycle state live
// in parallel slices indexed by dense slots; the 4-ary min-heap orders
// (at, seq) pairs carried inline in its entries. Slots are recycled through
// a free list with a per-slot generation counter, so steady-state event
// churn costs no allocation and stale handles are detectable. The wide heap
// fan-out halves sift-up depth against a binary heap, which is where the
// scheduler spends its comparisons: pushes outnumber pops' sift-down work
// on the shallow queues the simulations carry.
type Scheduler struct {
	now     Time
	seq     uint64
	running bool
	stopped bool
	fired   uint64

	heap []heapEntry

	// The arena: parallel per-slot slices. at is kept for When queries;
	// the ordering copy travels inside heap entries.
	at    []Time
	fns   []func()
	state []uint8
	gens  []uint32
	free  []int32
}

// NewScheduler returns a scheduler positioned at virtual time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Reset returns the scheduler to virtual time zero, dropping every queued
// event while keeping the arena and heap capacity. Every handle issued
// before the Reset is invalidated (its generation is bumped), so a retained
// pre-Reset Event degrades to the usual stale no-op. Reset is what makes
// per-worker scheduler pooling allocation-free: a campaign worker reuses
// one scheduler across thousands of runs and the arena only ever grows to
// the peak live-event population of the largest run.
func (s *Scheduler) Reset() {
	s.now, s.seq, s.fired = 0, 0, 0
	s.running, s.stopped = false, false
	s.heap = s.heap[:0]
	s.free = s.free[:0]
	for i := range s.fns {
		s.fns[i] = nil // release closures promptly
		s.gens[i]++    // invalidate all pre-Reset handles
		s.state[i] = slotGone
		s.free = append(s.free, int32(i))
	}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// Pending returns the number of events still queued (excluding cancelled
// events not yet reaped).
func (s *Scheduler) Pending() int {
	n := 0
	for _, e := range s.heap {
		if s.state[e.slot] == slotPending {
			n++
		}
	}
	return n
}

// At schedules fn to run at the given instant. Scheduling in the past
// (before Now) panics: in a discrete-event simulation that is always a bug.
//
// The returned handle is valid while the event is pending; once the event
// has fired (and its callback returned) or was cancelled, the handle goes
// stale and every operation on it is a no-op (see Event).
func (s *Scheduler) At(t Time, fn func()) Event {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = int32(len(s.fns))
		s.at = append(s.at, 0)
		s.fns = append(s.fns, nil)
		s.state = append(s.state, 0)
		s.gens = append(s.gens, 0)
	}
	s.at[slot] = t
	s.fns[slot] = fn
	s.state[slot] = slotPending
	s.push(heapEntry{at: t, seq: s.seq, slot: slot})
	s.seq++
	return Event{s: s, slot: slot, gen: s.gens[slot]}
}

// After schedules fn to run d from now. Negative d panics.
func (s *Scheduler) After(d Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: After with negative duration %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// release recycles a slot whose event's lifetime ended (fired with the
// callback returned, or cancelled and reaped from the heap). The generation
// bump is what turns retained handles stale.
func (s *Scheduler) release(slot int32) {
	s.gens[slot]++
	s.fns[slot] = nil
	s.free = append(s.free, slot)
}

// push inserts an entry into the 4-ary min-heap.
func (s *Scheduler) push(e heapEntry) {
	h := append(s.heap, e)
	s.heap = h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !entryBefore(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum entry. The heap must be non-empty.
func (s *Scheduler) pop() heapEntry {
	h := s.heap
	n := len(h) - 1
	min := h[0]
	h[0] = h[n]
	h = h[:n]
	s.heap = h
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		j := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entryBefore(h[c], h[j]) {
				j = c
			}
		}
		if !entryBefore(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return min
}

// Step executes the next pending event, advancing virtual time to its
// deadline. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	for len(s.heap) > 0 {
		e := s.pop()
		if s.state[e.slot] == slotGone {
			s.release(e.slot)
			continue
		}
		s.now = e.at
		s.state[e.slot] = slotFiring
		s.fired++
		fn := s.fns[e.slot]
		s.fns[e.slot] = nil // release the closure before the callback reschedules
		fn()
		// Recycle only now: during fn the handle is still the firing
		// event's (When answers, Cancel/Pending report not-pending), and an
		// At call made by fn can never be handed a slot the holder could
		// still observe under the old generation.
		s.release(e.slot)
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (s *Scheduler) Run() {
	s.running = true
	s.stopped = false
	for !s.stopped && s.Step() {
	}
	s.running = false
}

// RunUntil executes events with deadlines <= t, then advances time to t.
// Events scheduled for after t remain queued.
func (s *Scheduler) RunUntil(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, s.now))
	}
	s.running = true
	s.stopped = false
	for !s.stopped {
		next, ok := s.peek()
		if !ok || next > t {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
	s.running = false
}

// RunFor executes events for a span of d from the current instant.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Stop aborts a Run/RunUntil in progress after the current event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// peek returns the deadline of the next live event.
func (s *Scheduler) peek() (Time, bool) {
	for len(s.heap) > 0 {
		e := s.heap[0]
		if s.state[e.slot] == slotGone {
			s.pop()
			s.release(e.slot)
			continue
		}
		return e.at, true
	}
	return 0, false
}

// NextDeadline returns the instant of the next live event, or Never.
func (s *Scheduler) NextDeadline() Time {
	t, ok := s.peek()
	if !ok {
		return Never
	}
	return t
}
