package sim

import (
	"testing"
	"testing/quick"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.After(3*Millisecond, func() { got = append(got, 3) })
	s.After(1*Millisecond, func() { got = append(got, 1) })
	s.After(2*Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != Time(3*Millisecond) {
		t.Fatalf("Now = %v, want 3ms", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(Millisecond), func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	ev := s.After(Millisecond, func() { ran = true })
	if !ev.Pending() {
		t.Fatal("event should be pending")
	}
	if !ev.Cancel() {
		t.Fatal("Cancel should report live event")
	}
	if ev.Cancel() {
		t.Fatal("second Cancel should report dead event")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var got []Time
	s.After(Millisecond, func() {
		got = append(got, s.Now())
		s.After(Millisecond, func() { got = append(got, s.Now()) })
	})
	s.Run()
	if len(got) != 2 || got[0] != Time(Millisecond) || got[1] != Time(2*Millisecond) {
		t.Fatalf("nested schedule times = %v", got)
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.After(2*Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.At(Time(Millisecond), func() {})
	})
	s.Run()
}

func TestRunUntilAdvancesTime(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(10*Millisecond, func() { fired = true })
	s.RunUntil(Time(5 * Millisecond))
	if fired {
		t.Fatal("future event fired early")
	}
	if s.Now() != Time(5*Millisecond) {
		t.Fatalf("Now = %v, want 5ms", s.Now())
	}
	s.RunFor(5 * Millisecond)
	if !fired {
		t.Fatal("event did not fire at its deadline")
	}
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(5*Millisecond, func() { fired = true })
	s.RunUntil(Time(5 * Millisecond))
	if !fired {
		t.Fatal("event at the RunUntil boundary should fire")
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 1; i <= 5; i++ {
		s.After(Duration(i)*Millisecond, func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 2 {
		t.Fatalf("count = %d, want 2 (Run should stop)", count)
	}
	if s.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", s.Pending())
	}
}

func TestNextDeadline(t *testing.T) {
	s := NewScheduler()
	if s.NextDeadline() != Never {
		t.Fatal("empty scheduler should report Never")
	}
	ev := s.After(7*Millisecond, func() {})
	if s.NextDeadline() != Time(7*Millisecond) {
		t.Fatalf("NextDeadline = %v", s.NextDeadline())
	}
	ev.Cancel()
	if s.NextDeadline() != Never {
		t.Fatal("cancelled event should not be a deadline")
	}
}

func TestTimerStartStopRestart(t *testing.T) {
	s := NewScheduler()
	fires := 0
	tm := NewTimer(s, func() { fires++ })
	tm.Start(2 * Millisecond)
	if !tm.Armed() {
		t.Fatal("timer should be armed")
	}
	s.RunFor(Millisecond)
	tm.Start(2 * Millisecond) // re-arm: pushes deadline to t=3ms
	s.RunFor(Millisecond + 500*Microsecond)
	if fires != 0 {
		t.Fatal("re-armed timer fired at the old deadline")
	}
	s.RunFor(Millisecond)
	if fires != 1 {
		t.Fatalf("fires = %d, want 1", fires)
	}
	if tm.Armed() {
		t.Fatal("one-shot timer should disarm after expiry")
	}
	tm.Restart()
	s.RunFor(3 * Millisecond)
	if fires != 2 {
		t.Fatalf("fires after Restart = %d, want 2", fires)
	}
}

func TestTimerStopPreventsExpiry(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := NewTimer(s, func() { fired = true })
	tm.Start(Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop should report the timer was armed")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report disarmed")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerDeadline(t *testing.T) {
	s := NewScheduler()
	tm := NewTimer(s, func() {})
	if tm.Deadline() != Never {
		t.Fatal("disarmed timer should report Never")
	}
	tm.Start(4 * Millisecond)
	if tm.Deadline() != Time(4*Millisecond) {
		t.Fatalf("Deadline = %v, want 4ms", tm.Deadline())
	}
}

func TestTickerPeriodic(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	tk := NewTicker(s, func() { ticks = append(ticks, s.Now()) })
	tk.Start(10 * Millisecond)
	s.RunUntil(Time(35 * Millisecond))
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 ticks", ticks)
	}
	for i, at := range ticks {
		want := Time((i + 1) * 10 * int(Millisecond))
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	tk.Stop()
	s.RunUntil(Time(100 * Millisecond))
	if len(ticks) != 3 {
		t.Fatal("ticker kept ticking after Stop")
	}
}

func TestTickerStartAtPhase(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	tk := NewTicker(s, func() { ticks = append(ticks, s.Now()) })
	tk.StartAt(3*Millisecond, 10*Millisecond)
	s.RunUntil(Time(25 * Millisecond))
	if len(ticks) != 3 || ticks[0] != Time(3*Millisecond) || ticks[1] != Time(13*Millisecond) {
		t.Fatalf("phased ticks = %v", ticks)
	}
}

func TestTickerSelfStop(t *testing.T) {
	s := NewScheduler()
	n := 0
	var tk *Ticker
	tk = NewTicker(s, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	tk.Start(Millisecond)
	s.Run()
	if n != 2 {
		t.Fatalf("n = %d, want 2 (self-stop)", n)
	}
	if tk.Running() {
		t.Fatal("ticker should not be running after self-stop")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same-seed streams diverged")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	root := NewRNG(7)
	a := root.Split("bus")
	b := root.Split("node/1")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams look correlated: %d identical draws", same)
	}
	// Split derivation must be stable.
	c := NewRNG(7).Split("bus")
	d := NewRNG(7).Split("bus")
	for i := 0; i < 16; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("Split not stable across instances")
		}
	}
}

func TestRNGBoolEdges(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 32; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGSubset(t *testing.T) {
	g := NewRNG(3)
	sub := g.Subset(10, 4)
	if len(sub) != 4 {
		t.Fatalf("subset size = %d", len(sub))
	}
	seen := map[int]bool{}
	for _, v := range sub {
		if v < 0 || v >= 10 {
			t.Fatalf("subset element %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("subset has duplicate %d", v)
		}
		seen[v] = true
	}
}

// Property: for any batch of non-negative delays, Run visits events in
// non-decreasing time order and ends with Now at the max delay.
func TestSchedulerMonotonicProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		s := NewScheduler()
		var visited []Time
		var max Duration
		for _, d16 := range delays {
			d := Duration(d16) * Microsecond
			if d > max {
				max = d
			}
			s.After(d, func() { visited = append(visited, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(visited); i++ {
			if visited[i] < visited[i-1] {
				return false
			}
		}
		return len(delays) == 0 || s.Now() == Time(max)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RNG.Duration(d) draws stay inside [0, d).
func TestRNGDurationRangeProperty(t *testing.T) {
	g := NewRNG(99)
	prop := func(d32 uint32) bool {
		d := Duration(d32) + 1
		v := g.Duration(d)
		return v >= 0 && v < d
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0).Add(5 * Millisecond)
	if t0 != Time(5*Millisecond) {
		t.Fatalf("Add = %v", t0)
	}
	if t0.Sub(Time(2*Millisecond)) != 3*Millisecond {
		t.Fatal("Sub wrong")
	}
	if !Time(1).Before(Time(2)) || !Time(2).After(Time(1)) {
		t.Fatal("Before/After wrong")
	}
	if Never.String() != "never" {
		t.Fatal("Never.String")
	}
}

func TestAccessorsAndGuards(t *testing.T) {
	s := NewScheduler()
	if s.Fired() != 0 {
		t.Fatal("fresh scheduler fired events")
	}
	ev := s.After(Millisecond, func() {})
	if ev.When() != Time(Millisecond) {
		t.Fatalf("When = %v", ev.When())
	}
	var zeroEv Event
	if zeroEv.When() != Never || zeroEv.Pending() || zeroEv.Cancel() {
		t.Fatal("zero event accessors wrong")
	}
	s.Run()
	if s.Fired() != 1 {
		t.Fatalf("Fired = %d", s.Fired())
	}
	// Guard panics.
	for _, fn := range []func(){
		func() { s.After(-1, func() {}) },
		func() { s.At(s.Now(), nil) },
		func() { NewTimer(nil, func() {}) },
		func() { NewTimer(s, nil) },
		func() { NewTicker(nil, func() {}) },
		func() { NewTicker(s, nil) },
		func() { NewTimer(s, func() {}).Restart() },
		func() { NewTicker(s, func() {}).Start(0) },
		func() { NewTicker(s, func() {}).StartAt(-1, Millisecond) },
		func() { NewTicker(s, func() {}).StartAt(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRNGDrawSurface(t *testing.T) {
	g := NewRNG(5)
	if g.Seed() != 5 {
		t.Fatal("Seed accessor wrong")
	}
	if v := g.Float64(); v < 0 || v >= 1 {
		t.Fatalf("Float64 = %f", v)
	}
	if v := g.Intn(10); v < 0 || v >= 10 {
		t.Fatalf("Intn = %d", v)
	}
	if p := g.Perm(5); len(p) != 5 {
		t.Fatalf("Perm = %v", p)
	}
	if v := g.Pick(3); v < 0 || v >= 3 {
		t.Fatalf("Pick = %d", v)
	}
	if g.Duration(0) != 0 {
		t.Fatal("Duration(0) should be 0")
	}
	for _, fn := range []func(){
		func() { g.Pick(0) },
		func() { g.Subset(3, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// The handle-validity contract against the arena storage: a handle kept
// past its event's lifetime must degrade to a no-op, never reach into a
// recycled slot.

func TestHandleCancelAfterFire(t *testing.T) {
	s := NewScheduler()
	fired := false
	ev := s.After(Millisecond, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event did not fire")
	}
	if ev.Cancel() {
		t.Fatal("Cancel after fire reported a live event")
	}
	if ev.Pending() {
		t.Fatal("fired event still pending")
	}
	if ev.When() != Never {
		t.Fatalf("stale When = %v, want Never", ev.When())
	}
}

func TestHandleReuseStaleCancelIsNoOp(t *testing.T) {
	// Fire an event, then keep scheduling until its arena slot is reused.
	// The stale handle must not cancel (or even observe) the new tenant.
	s := NewScheduler()
	stale := s.After(Millisecond, func() {})
	s.Run()

	// The freed slot is handed to the next At; the stale handle's
	// generation no longer matches.
	ran := false
	fresh := s.After(Millisecond, func() { ran = true })
	if stale.Cancel() {
		t.Fatal("stale Cancel reported success")
	}
	if stale.Pending() {
		t.Fatal("stale handle claims pending")
	}
	if !fresh.Pending() {
		t.Fatal("stale Cancel killed an unrelated event")
	}
	s.Run()
	if !ran {
		t.Fatal("reused-slot event did not fire")
	}
}

func TestHandleStaleAcrossCancelReap(t *testing.T) {
	// Cancelled-then-reaped slots go through the same generation bump.
	s := NewScheduler()
	ev := s.After(Millisecond, func() { t.Fatal("cancelled event ran") })
	if !ev.Cancel() {
		t.Fatal("first Cancel should succeed")
	}
	s.Run() // reaps the cancelled entry, recycling the slot
	ran := false
	fresh := s.After(Millisecond, func() { ran = true })
	if ev.Cancel() || ev.Pending() {
		t.Fatal("handle survived reap")
	}
	s.Run()
	if !ran || fresh.Pending() {
		t.Fatal("fresh event disturbed by stale handle")
	}
}

func TestSchedulerResetInvalidatesHandles(t *testing.T) {
	s := NewScheduler()
	ev := s.After(Millisecond, func() { t.Fatal("pre-Reset event survived Reset") })
	s.Reset()
	if ev.Cancel() || ev.Pending() || ev.When() != Never {
		t.Fatal("pre-Reset handle still live")
	}
	if s.Now() != 0 || s.Fired() != 0 || s.Pending() != 0 {
		t.Fatalf("Reset state: now=%v fired=%d pending=%d", s.Now(), s.Fired(), s.Pending())
	}
	// The reset scheduler must behave exactly like a fresh one.
	var got []int
	s.After(2*Millisecond, func() { got = append(got, 2) })
	s.After(Millisecond, func() { got = append(got, 1) })
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("post-Reset order = %v", got)
	}
	if s.Now() != Time(2*Millisecond) {
		t.Fatalf("post-Reset Now = %v", s.Now())
	}
}

func TestSchedulerResetReusesArena(t *testing.T) {
	// After a warm-up run, Reset + an equal-sized run must not allocate:
	// the arena, heap and free list retain their capacity.
	s := NewScheduler()
	load := func() {
		for i := 0; i < 64; i++ {
			d := Duration(i+1) * Microsecond
			s.After(d, func() {})
		}
		s.Run()
	}
	load()
	allocs := testing.AllocsPerRun(10, func() {
		s.Reset()
		load()
	})
	if allocs > 0 {
		t.Fatalf("Reset+run allocated %v times per run, want 0", allocs)
	}
}

func TestTimerShortenWithPendingPlaceholder(t *testing.T) {
	// Lazy restart keeps a placeholder event queued at the *old* deadline.
	// Shortening the timer must not trust that placeholder: Start with a
	// shorter duration has to cancel it and fire at the new, earlier
	// deadline.
	s := NewScheduler()
	var firedAt Time
	fires := 0
	tm := NewTimer(s, func() { fires++; firedAt = s.Now() })
	tm.Start(10 * Millisecond) // placeholder queued at t=10ms
	tm.Start(2 * Millisecond)  // earlier deadline: placeholder unusable
	if got := tm.Deadline(); got != Time(2*Millisecond) {
		t.Fatalf("Deadline = %v, want 2ms", got)
	}
	s.RunFor(2 * Millisecond)
	if fires != 1 {
		t.Fatalf("fires at t=2ms = %d, want 1 (timer stuck on old placeholder)", fires)
	}
	if firedAt != Time(2*Millisecond) {
		t.Fatalf("fired at %v, want 2ms", firedAt)
	}
	s.RunFor(20 * Millisecond) // the cancelled 10ms placeholder must be inert
	if fires != 1 {
		t.Fatalf("fires after draining = %d, want 1", fires)
	}
}

func TestTimerShortenAfterLazyRestart(t *testing.T) {
	// Same edge reached through the lazy path: a restart that *lengthens* the
	// deadline leaves the placeholder at the old instant (ev.When() <
	// deadline), and only then is the timer shortened to a deadline that is
	// earlier than the pending placeholder.
	s := NewScheduler()
	fires := 0
	var firedAt Time
	tm := NewTimer(s, func() { fires++; firedAt = s.Now() })
	tm.Start(5 * Millisecond) // placeholder at t=5ms
	s.RunFor(Millisecond)
	tm.Start(10 * Millisecond) // lazy: placeholder stays at t=5ms, deadline t=11ms
	if got := tm.Deadline(); got != Time(11*Millisecond) {
		t.Fatalf("Deadline = %v, want 11ms", got)
	}
	s.RunFor(Millisecond) // t=2ms
	tm.Start(Millisecond) // deadline t=3ms, earlier than the t=5ms placeholder
	s.RunFor(Millisecond) // t=3ms
	if fires != 1 || firedAt != Time(3*Millisecond) {
		t.Fatalf("fires=%d at %v, want 1 at 3ms", fires, firedAt)
	}
	s.RunFor(20 * Millisecond)
	if fires != 1 {
		t.Fatalf("fires after draining = %d, want 1", fires)
	}
}
