package explore

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/replay"
)

// TestPinnedBaseline pins the exact schedule counts of the historical
// in-test DFS (internal/core's TestInterleavingExplorer before the engine
// was extracted): one worker, no pruning, no POR must walk the identical
// tree in the identical order — 1200 schedules, 641 of them exercising the
// crash. Any drift here means the extraction changed harness semantics.
func TestPinnedBaseline(t *testing.T) {
	e, err := New(Config{Scenario: DefaultScenario(), Workers: 1, Target: 1200})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("schedule %v violates the protocol: %s", res.Violation.Vec, res.Violation.Msg)
	}
	if res.Schedules != 1200 || res.CrashSchedules != 641 {
		t.Fatalf("explored %d schedules (%d with a crash), the historical DFS explored 1200 (641)",
			res.Schedules, res.CrashSchedules)
	}
	if res.Pruned != 0 || res.Slept != 0 {
		t.Fatalf("naive mode pruned %d / slept %d runs, want 0/0", res.Pruned, res.Slept)
	}
}

// TestReduction exhausts a depth-bounded tree twice — naively and with
// pruning + POR — and checks the issue's reduction claim: the reduced walk
// covers the same bounded state space (both exhaust, both violation-free)
// in less than half the runs.
func TestReduction(t *testing.T) {
	sc := DefaultScenario()
	sc.MaxDepth = 8

	naive, err := New(Config{Scenario: sc, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rn, err := naive.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rn.Violation != nil || !rn.Exhausted {
		t.Fatalf("naive: violation=%+v exhausted=%v", rn.Violation, rn.Exhausted)
	}

	red, err := New(Config{Scenario: sc, Workers: 1, Prune: true, POR: true})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := red.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rr.Violation != nil || !rr.Exhausted {
		t.Fatalf("reduced: violation=%+v exhausted=%v", rr.Violation, rr.Exhausted)
	}

	if rr.Runs()*2 >= rn.Runs() {
		t.Fatalf("hash pruning + POR explored %d runs vs %d naive: want >2x reduction",
			rr.Runs(), rn.Runs())
	}
	if rr.Distinct == 0 || rr.Pruned == 0 {
		t.Fatalf("reduced walk recorded distinct=%d pruned=%d, expected both nonzero",
			rr.Distinct, rr.Pruned)
	}
	t.Logf("naive %d runs, reduced %d runs (%d completed, %d pruned, %d slept, %d distinct states): %.1fx",
		rn.Runs(), rr.Runs(), rr.Schedules, rr.Pruned, rr.Slept, rr.Distinct,
		float64(rn.Runs())/float64(rr.Runs()))
}

// TestParallelExhaustsReducedTree runs the worker pool with work stealing
// over a depth-bounded tree and checks it reaches the same exhaustion with
// zero violations regardless of the nondeterministic work split.
func TestParallelExhaustsReducedTree(t *testing.T) {
	sc := DefaultScenario()
	sc.MaxDepth = 12
	ref, err := New(Config{Scenario: sc, Workers: 1, Prune: true, POR: true})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		e, err := New(Config{Scenario: sc, Workers: workers, Prune: true, POR: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("w=%d: schedule %v violates the protocol: %s",
				workers, res.Violation.Vec, res.Violation.Msg)
		}
		if !res.Exhausted {
			t.Fatalf("w=%d: frontier not exhausted (outstanding=%d)", workers, res.Frontier)
		}
		// Prune interleavings differ across worker counts (whichever run
		// reaches a state first inserts it), so run counts may differ
		// slightly — but the distinct-state space is schedule-independent.
		if res.Distinct != rs.Distinct {
			t.Fatalf("w=%d visited %d distinct states, single worker visited %d",
				workers, res.Distinct, rs.Distinct)
		}
	}
}

// TestFaultCounterexample injects a reception fault outside the model's
// assumptions (node 0 silently misses every failure-sign frame) and checks
// the full counterexample pipeline: the explorer finds the violated
// agreement, captures the schedule as a replay log, the log verifies
// byte-for-byte against fresh cores, and it round-trips through
// Save/Load — the exact artifact `canelysim -replay` consumes.
func TestFaultCounterexample(t *testing.T) {
	sc := DefaultScenario()
	sc.Drop = true
	sc.DropNode = 0
	sc.DropType = can.TypeFDA
	e, err := New(Config{Scenario: sc, Workers: 2, Target: 200000})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := e.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Violation
	if v == nil {
		t.Fatalf("no violation found in %d runs, the drop fault must break agreement", res.Runs())
	}
	if !v.Crashed {
		t.Fatalf("the counterexample must exercise the crash, got %q", v.Msg)
	}
	if len(v.Log.Records) == 0 {
		t.Fatal("counterexample log is empty")
	}
	if err := v.Log.Verify(); err != nil {
		t.Fatalf("counterexample log does not re-execute: %v", err)
	}

	path := filepath.Join(t.TempDir(), "counterexample.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Log.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := replay.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Records) != len(v.Log.Records) {
		t.Fatalf("round-trip lost records: %d != %d", len(loaded.Records), len(v.Log.Records))
	}
	if err := loaded.Verify(); err != nil {
		t.Fatalf("loaded counterexample does not re-execute: %v", err)
	}
	t.Logf("violation after %d runs: %s (|vec|=%d, %d records)",
		res.Runs(), v.Msg, len(v.Vec), len(v.Log.Records))
}

// TestDeterministicReplay re-runs one decision vector several times and
// checks the run is a pure function of the vector: same counts, same
// choices, same outcome. This is what makes counterexample capture and the
// stateless frontier sound.
func TestDeterministicReplay(t *testing.T) {
	e, err := New(Config{Scenario: DefaultScenario(), Workers: 1, POR: true})
	if err != nil {
		t.Fatal(err)
	}
	vec := []int{1, 0, 2, 0, 1}
	first := e.run(item{vec: vec}, nil, false)
	if first.err != nil {
		t.Fatalf("vector %v unexpectedly violates: %v", vec, first.err)
	}
	for i := 0; i < 3; i++ {
		again := e.run(item{vec: vec}, nil, false)
		if len(again.counts) != len(first.counts) || len(again.fullVec) != len(first.fullVec) {
			t.Fatalf("replay %d diverged: counts %v vs %v", i, again.counts, first.counts)
		}
		for j := range first.counts {
			if again.counts[j] != first.counts[j] {
				t.Fatalf("replay %d: branch count %d changed %d -> %d", i, j, first.counts[j], again.counts[j])
			}
		}
		for j := range first.fullVec {
			if again.fullVec[j] != first.fullVec[j] {
				t.Fatalf("replay %d: choice %d changed", i, j)
			}
		}
	}
}

// TestScenarioValidate exercises the scenario validation paths.
func TestScenarioValidate(t *testing.T) {
	good := DefaultScenario()
	if err := good.Validate(); err != nil {
		t.Fatalf("default scenario invalid: %v", err)
	}
	cases := []func(*Scenario){
		func(s *Scenario) { s.Nodes = 1 },
		func(s *Scenario) { s.Nodes = can.MaxNodes + 1 },
		func(s *Scenario) { s.MaxSteps = 0 },
		func(s *Scenario) { s.MaxDepth = 0 },
		func(s *Scenario) { s.Bootstrap = can.EmptySet },
		func(s *Scenario) { s.Joiners = s.Bootstrap },
		func(s *Scenario) { s.Crash = 63 },
	}
	for i, mut := range cases {
		sc := DefaultScenario()
		mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Fatalf("case %d: invalid scenario accepted", i)
		}
	}
	if _, err := New(Config{Scenario: Scenario{}}); err == nil {
		t.Fatal("zero scenario accepted")
	}
}

// TestSnapshotSoundness is the checkpoint-and-branch A/B: the identical
// exploration run with snapshots on and off must walk the identical tree —
// same schedule, crash, prune, sleep and distinct-state counts — and reach
// the same verdict. Checkpoint resumption only changes how a run reaches
// its first new decision, never what it decides there.
func TestSnapshotSoundness(t *testing.T) {
	sc := DefaultScenario()
	sc.MaxDepth = 12
	for _, mode := range []struct {
		name  string
		prune bool
		por   bool
	}{{"naive", false, false}, {"reduced", true, true}} {
		snap, err := New(Config{Scenario: sc, Workers: 1, Prune: mode.prune, POR: mode.por})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := snap.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		plain, err := New(Config{Scenario: sc, Workers: 1, Prune: mode.prune, POR: mode.por, NoSnapshot: true})
		if err != nil {
			t.Fatal(err)
		}
		rp, err := plain.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rs.Violation != nil || rp.Violation != nil {
			t.Fatalf("%s: unexpected violation (snap=%v plain=%v)", mode.name, rs.Violation, rp.Violation)
		}
		if !rs.Exhausted || !rp.Exhausted {
			t.Fatalf("%s: exhausted snap=%v plain=%v", mode.name, rs.Exhausted, rp.Exhausted)
		}
		if rs.Schedules != rp.Schedules || rs.CrashSchedules != rp.CrashSchedules ||
			rs.Pruned != rp.Pruned || rs.Slept != rp.Slept || rs.Distinct != rp.Distinct {
			t.Fatalf("%s: snapshot mode diverged: %d/%d/%d/%d/%d vs %d/%d/%d/%d/%d "+
				"(schedules/crash/pruned/slept/distinct)", mode.name,
				rs.Schedules, rs.CrashSchedules, rs.Pruned, rs.Slept, rs.Distinct,
				rp.Schedules, rp.CrashSchedules, rp.Pruned, rp.Slept, rp.Distinct)
		}
		if rs.Resumed == 0 || rs.ReplaySaved == 0 {
			t.Fatalf("%s: snapshot arm never resumed a checkpoint (resumed=%d saved=%d)",
				mode.name, rs.Resumed, rs.ReplaySaved)
		}
		if rp.Resumed != 0 || rp.Snapshots != 0 {
			t.Fatalf("%s: -no-snapshot arm used checkpoints (resumed=%d captured=%d)",
				mode.name, rp.Resumed, rp.Snapshots)
		}
		if rs.SnapBytes != 0 {
			t.Fatalf("%s: exhausted run leaks %d checkpoint bytes", mode.name, rs.SnapBytes)
		}
		t.Logf("%s: %d schedules, %d resumed, %d replay steps saved, %d snapshots",
			mode.name, rs.Schedules, rs.Resumed, rs.ReplaySaved, rs.Snapshots)
	}
}

// TestSnapshotDegraded pins that a sparse checkpoint cadence and a tiny
// memory budget only degrade performance, never coverage: the tree counts
// still match the unconstrained run.
func TestSnapshotDegraded(t *testing.T) {
	sc := DefaultScenario()
	sc.MaxDepth = 10
	ref, err := New(Config{Scenario: sc, Workers: 1, Prune: true, POR: true})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Scenario: sc, Workers: 1, Prune: true, POR: true, SnapshotEvery: 3},
		{Scenario: sc, Workers: 1, Prune: true, POR: true, SnapBudget: 16 << 10},
	} {
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil || !res.Exhausted {
			t.Fatalf("every=%d budget=%d: violation=%v exhausted=%v",
				cfg.SnapshotEvery, cfg.SnapBudget, res.Violation, res.Exhausted)
		}
		if res.Schedules != rr.Schedules || res.Pruned != rr.Pruned ||
			res.Slept != rr.Slept || res.Distinct != rr.Distinct {
			t.Fatalf("every=%d budget=%d diverged: %d/%d/%d/%d vs %d/%d/%d/%d",
				cfg.SnapshotEvery, cfg.SnapBudget,
				res.Schedules, res.Pruned, res.Slept, res.Distinct,
				rr.Schedules, rr.Pruned, rr.Slept, rr.Distinct)
		}
	}
}

// TestSettleShortcutSound pins the quiescence shortcut against the full
// settle phase: identical tree counts and identical verdicts with the
// shortcut on and off, in the healthy scenario and under the injected drop
// fault (where a violation must be found either way).
func TestSettleShortcutSound(t *testing.T) {
	sc := DefaultScenario()
	sc.MaxDepth = 8
	run := func(scen Scenario, disable bool) Result {
		t.Helper()
		e, err := New(Config{Scenario: scen, Workers: 1, Prune: true, POR: true})
		if err != nil {
			t.Fatal(err)
		}
		e.noQuiesce = disable
		res, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	fast, full := run(sc, false), run(sc, true)
	if fast.Violation != nil || full.Violation != nil {
		t.Fatalf("healthy scenario violated: fast=%v full=%v", fast.Violation, full.Violation)
	}
	if fast.Schedules != full.Schedules || fast.CrashSchedules != full.CrashSchedules ||
		fast.Pruned != full.Pruned || fast.Slept != full.Slept || fast.Distinct != full.Distinct {
		t.Fatalf("shortcut diverged: %d/%d/%d/%d/%d vs %d/%d/%d/%d/%d",
			fast.Schedules, fast.CrashSchedules, fast.Pruned, fast.Slept, fast.Distinct,
			full.Schedules, full.CrashSchedules, full.Pruned, full.Slept, full.Distinct)
	}
	if fast.Steps >= full.Steps {
		t.Fatalf("shortcut saved nothing: %d steps vs %d", fast.Steps, full.Steps)
	}

	bad := sc
	bad.Drop = true
	bad.DropNode = 0
	bad.DropType = can.TypeFDA
	fastV, fullV := run(bad, false), run(bad, true)
	if fastV.Violation == nil || fullV.Violation == nil {
		t.Fatalf("drop fault missed: fast=%v full=%v", fastV.Violation, fullV.Violation)
	}
	if fastV.Violation.Msg != fullV.Violation.Msg {
		t.Fatalf("shortcut changed the counterexample: %q vs %q",
			fastV.Violation.Msg, fullV.Violation.Msg)
	}
}

// BenchmarkExploreSnapshot exhausts the depth-12 reduced tree per
// iteration, with checkpoint-and-branch on and off — the issue's headline
// comparison (O(1) state cloning vs O(depth) root replay, plus the
// deterministic-tail and quiescence fast paths shared by both arms).
func BenchmarkExploreSnapshot(b *testing.B) {
	sc := DefaultScenario()
	sc.MaxDepth = 12
	for _, mode := range []struct {
		name string
		off  bool
	}{{"checkpoint", false}, {"root-replay", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var sched, steps, saved uint64
			for i := 0; i < b.N; i++ {
				e, err := New(Config{Scenario: sc, Workers: 1, Prune: true, POR: true, NoSnapshot: mode.off})
				if err != nil {
					b.Fatal(err)
				}
				res, err := e.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if res.Violation != nil || !res.Exhausted {
					b.Fatalf("violation=%v exhausted=%v", res.Violation, res.Exhausted)
				}
				sched, steps, saved = res.Schedules, res.Steps, res.ReplaySaved
			}
			b.ReportMetric(float64(sched)*float64(b.N)/b.Elapsed().Seconds(), "sched/s")
			b.ReportMetric(float64(steps), "steps/exhaust")
			b.ReportMetric(float64(saved), "saved-steps")
		})
	}
}

// BenchmarkSystemSnapshot measures one checkpoint capture: a deep copy of
// the whole system (every node's cores, the pending-frame arena, the timer
// wheel) — the constant that replaces O(depth) replay per branch.
func BenchmarkSystemSnapshot(b *testing.B) {
	sc := DefaultScenario()
	s, err := NewSystem(&sc, nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if !s.stepFirst() {
			break
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Snapshot()
	}
}

// BenchmarkSystemRestore measures the allocation-free resume: restoring a
// checkpoint into recycled System storage.
func BenchmarkSystemRestore(b *testing.B) {
	sc := DefaultScenario()
	s, err := NewSystem(&sc, nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if !s.stepFirst() {
			break
		}
	}
	dst := s.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Restore(s)
	}
}

// BenchmarkExploreThroughput measures naive single-worker schedule
// execution — the per-run cost that every reduction multiplies.
func BenchmarkExploreThroughput(b *testing.B) {
	e, err := New(Config{Scenario: DefaultScenario(), Workers: 1, Target: uint64(b.N)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := e.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if res.Violation != nil {
		b.Fatalf("violation: %s", res.Violation.Msg)
	}
	b.StopTimer()
	if res.Schedules > 0 {
		b.ReportMetric(float64(e.steps.Load())/float64(res.Schedules), "steps/schedule")
	}
}
