package explore

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/replay"
)

// TestPinnedBaseline pins the exact schedule counts of the historical
// in-test DFS (internal/core's TestInterleavingExplorer before the engine
// was extracted): one worker, no pruning, no POR must walk the identical
// tree in the identical order — 1200 schedules, 641 of them exercising the
// crash. Any drift here means the extraction changed harness semantics.
func TestPinnedBaseline(t *testing.T) {
	e, err := New(Config{Scenario: DefaultScenario(), Workers: 1, Target: 1200})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("schedule %v violates the protocol: %s", res.Violation.Vec, res.Violation.Msg)
	}
	if res.Schedules != 1200 || res.CrashSchedules != 641 {
		t.Fatalf("explored %d schedules (%d with a crash), the historical DFS explored 1200 (641)",
			res.Schedules, res.CrashSchedules)
	}
	if res.Pruned != 0 || res.Slept != 0 {
		t.Fatalf("naive mode pruned %d / slept %d runs, want 0/0", res.Pruned, res.Slept)
	}
}

// TestReduction exhausts a depth-bounded tree twice — naively and with
// pruning + POR — and checks the issue's reduction claim: the reduced walk
// covers the same bounded state space (both exhaust, both violation-free)
// in less than half the runs.
func TestReduction(t *testing.T) {
	sc := DefaultScenario()
	sc.MaxDepth = 8

	naive, err := New(Config{Scenario: sc, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rn, err := naive.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rn.Violation != nil || !rn.Exhausted {
		t.Fatalf("naive: violation=%+v exhausted=%v", rn.Violation, rn.Exhausted)
	}

	red, err := New(Config{Scenario: sc, Workers: 1, Prune: true, POR: true})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := red.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rr.Violation != nil || !rr.Exhausted {
		t.Fatalf("reduced: violation=%+v exhausted=%v", rr.Violation, rr.Exhausted)
	}

	if rr.Runs()*2 >= rn.Runs() {
		t.Fatalf("hash pruning + POR explored %d runs vs %d naive: want >2x reduction",
			rr.Runs(), rn.Runs())
	}
	if rr.Distinct == 0 || rr.Pruned == 0 {
		t.Fatalf("reduced walk recorded distinct=%d pruned=%d, expected both nonzero",
			rr.Distinct, rr.Pruned)
	}
	t.Logf("naive %d runs, reduced %d runs (%d completed, %d pruned, %d slept, %d distinct states): %.1fx",
		rn.Runs(), rr.Runs(), rr.Schedules, rr.Pruned, rr.Slept, rr.Distinct,
		float64(rn.Runs())/float64(rr.Runs()))
}

// TestParallelExhaustsReducedTree runs the worker pool with work stealing
// over a depth-bounded tree and checks it reaches the same exhaustion with
// zero violations regardless of the nondeterministic work split.
func TestParallelExhaustsReducedTree(t *testing.T) {
	sc := DefaultScenario()
	sc.MaxDepth = 12
	ref, err := New(Config{Scenario: sc, Workers: 1, Prune: true, POR: true})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ref.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		e, err := New(Config{Scenario: sc, Workers: workers, Prune: true, POR: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("w=%d: schedule %v violates the protocol: %s",
				workers, res.Violation.Vec, res.Violation.Msg)
		}
		if !res.Exhausted {
			t.Fatalf("w=%d: frontier not exhausted (outstanding=%d)", workers, res.Frontier)
		}
		// Prune interleavings differ across worker counts (whichever run
		// reaches a state first inserts it), so run counts may differ
		// slightly — but the distinct-state space is schedule-independent.
		if res.Distinct != rs.Distinct {
			t.Fatalf("w=%d visited %d distinct states, single worker visited %d",
				workers, res.Distinct, rs.Distinct)
		}
	}
}

// TestFaultCounterexample injects a reception fault outside the model's
// assumptions (node 0 silently misses every failure-sign frame) and checks
// the full counterexample pipeline: the explorer finds the violated
// agreement, captures the schedule as a replay log, the log verifies
// byte-for-byte against fresh cores, and it round-trips through
// Save/Load — the exact artifact `canelysim -replay` consumes.
func TestFaultCounterexample(t *testing.T) {
	sc := DefaultScenario()
	sc.Drop = true
	sc.DropNode = 0
	sc.DropType = can.TypeFDA
	e, err := New(Config{Scenario: sc, Workers: 2, Target: 200000})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := e.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Violation
	if v == nil {
		t.Fatalf("no violation found in %d runs, the drop fault must break agreement", res.Runs())
	}
	if !v.Crashed {
		t.Fatalf("the counterexample must exercise the crash, got %q", v.Msg)
	}
	if len(v.Log.Records) == 0 {
		t.Fatal("counterexample log is empty")
	}
	if err := v.Log.Verify(); err != nil {
		t.Fatalf("counterexample log does not re-execute: %v", err)
	}

	path := filepath.Join(t.TempDir(), "counterexample.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Log.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	loaded, err := replay.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Records) != len(v.Log.Records) {
		t.Fatalf("round-trip lost records: %d != %d", len(loaded.Records), len(v.Log.Records))
	}
	if err := loaded.Verify(); err != nil {
		t.Fatalf("loaded counterexample does not re-execute: %v", err)
	}
	t.Logf("violation after %d runs: %s (|vec|=%d, %d records)",
		res.Runs(), v.Msg, len(v.Vec), len(v.Log.Records))
}

// TestDeterministicReplay re-runs one decision vector several times and
// checks the run is a pure function of the vector: same counts, same
// choices, same outcome. This is what makes counterexample capture and the
// stateless frontier sound.
func TestDeterministicReplay(t *testing.T) {
	e, err := New(Config{Scenario: DefaultScenario(), Workers: 1, POR: true})
	if err != nil {
		t.Fatal(err)
	}
	vec := []int{1, 0, 2, 0, 1}
	first := e.run(vec, nil, false)
	if first.err != nil {
		t.Fatalf("vector %v unexpectedly violates: %v", vec, first.err)
	}
	for i := 0; i < 3; i++ {
		again := e.run(vec, nil, false)
		if len(again.counts) != len(first.counts) || len(again.fullVec) != len(first.fullVec) {
			t.Fatalf("replay %d diverged: counts %v vs %v", i, again.counts, first.counts)
		}
		for j := range first.counts {
			if again.counts[j] != first.counts[j] {
				t.Fatalf("replay %d: branch count %d changed %d -> %d", i, j, first.counts[j], again.counts[j])
			}
		}
		for j := range first.fullVec {
			if again.fullVec[j] != first.fullVec[j] {
				t.Fatalf("replay %d: choice %d changed", i, j)
			}
		}
	}
}

// TestScenarioValidate exercises the scenario validation paths.
func TestScenarioValidate(t *testing.T) {
	good := DefaultScenario()
	if err := good.Validate(); err != nil {
		t.Fatalf("default scenario invalid: %v", err)
	}
	cases := []func(*Scenario){
		func(s *Scenario) { s.Nodes = 1 },
		func(s *Scenario) { s.Nodes = can.MaxNodes + 1 },
		func(s *Scenario) { s.MaxSteps = 0 },
		func(s *Scenario) { s.MaxDepth = 0 },
		func(s *Scenario) { s.Bootstrap = can.EmptySet },
		func(s *Scenario) { s.Joiners = s.Bootstrap },
		func(s *Scenario) { s.Crash = 63 },
	}
	for i, mut := range cases {
		sc := DefaultScenario()
		mut(&sc)
		if err := sc.Validate(); err == nil {
			t.Fatalf("case %d: invalid scenario accepted", i)
		}
	}
	if _, err := New(Config{Scenario: Scenario{}}); err == nil {
		t.Fatal("zero scenario accepted")
	}
}

// BenchmarkExploreThroughput measures naive single-worker schedule
// execution — the per-run cost that every reduction multiplies.
func BenchmarkExploreThroughput(b *testing.B) {
	e, err := New(Config{Scenario: DefaultScenario(), Workers: 1, Target: uint64(b.N)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := e.Run(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	if res.Violation != nil {
		b.Fatalf("violation: %s", res.Violation.Msg)
	}
	b.StopTimer()
	if res.Schedules > 0 {
		b.ReportMetric(float64(e.steps.Load())/float64(res.Schedules), "steps/schedule")
	}
}
