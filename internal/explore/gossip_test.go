package explore

import (
	"context"
	"testing"
	"time"

	"canely/internal/can"
)

// TestGossipScenarioExhausts runs the SWIM join+crash scenario through the
// unchanged engine — fingerprint pruning, sleep-set POR and
// checkpoint-and-branch all active — and checks the depth-bounded schedule
// tree exhausts with zero violations: under the bounded-delay model
// (Ttd < AckTimeout, so acks beat their probe timers) the gossip lattice
// converges on every explored schedule, crash or no crash.
func TestGossipScenarioExhausts(t *testing.T) {
	sc := DefaultGossipScenario()
	e, err := New(Config{Scenario: sc, Workers: 4, Prune: true, POR: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("schedule %v violates the gossip properties: %s", res.Violation.Vec, res.Violation.Msg)
	}
	if !res.Exhausted {
		t.Fatalf("frontier not exhausted (outstanding=%d)", res.Frontier)
	}
	if res.CrashSchedules == 0 {
		t.Fatal("no schedule exercised the crash branch")
	}
	if res.Pruned == 0 || res.Snapshots == 0 {
		t.Fatalf("pruning/checkpointing inactive: pruned=%d snapshots=%d", res.Pruned, res.Snapshots)
	}
	t.Logf("exhausted: %d runs (%d schedules, %d crash, %d pruned, %d distinct states)",
		res.Runs(), res.Schedules, res.CrashSchedules, res.Pruned, res.Distinct)
}

// TestGossipFaultCounterexample injects a reception fault outside the
// model (the joiner silently misses every gossip datagram, so it can never
// learn the view) and checks the counterexample pipeline over gossip
// cores: the violation is found, captured as a replay log, and the log
// re-executes byte-for-byte against fresh gossip cores.
func TestGossipFaultCounterexample(t *testing.T) {
	sc := DefaultGossipScenario()
	sc.Drop = true
	sc.DropNode = 2
	sc.DropType = can.TypeGossip
	e, err := New(Config{Scenario: sc, Workers: 2, Target: 200000, Prune: true, POR: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := e.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Violation
	if v == nil {
		t.Fatalf("no violation in %d runs: a deaf joiner cannot converge", res.Runs())
	}
	if len(v.Log.Records) == 0 {
		t.Fatal("counterexample log is empty")
	}
	if err := v.Log.Verify(); err != nil {
		t.Fatalf("gossip counterexample does not re-execute: %v", err)
	}
	t.Logf("violation after %d runs: %s (|vec|=%d, %d records)",
		res.Runs(), v.Msg, len(v.Vec), len(v.Log.Records))
}

// TestGossipSnapshotSoundness pins checkpoint-and-branch over gossip
// cores: with snapshots disabled the exploration visits the identical
// distinct-state space and finds the same (absence of) violations.
func TestGossipSnapshotSoundness(t *testing.T) {
	sc := DefaultGossipScenario()
	sc.MaxDepth = 10
	with, err := New(Config{Scenario: sc, Workers: 1, Prune: true, POR: true})
	if err != nil {
		t.Fatal(err)
	}
	rw, err := with.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	without, err := New(Config{Scenario: sc, Workers: 1, Prune: true, POR: true, NoSnapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	ro, err := without.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rw.Violation != nil || ro.Violation != nil {
		t.Fatalf("violations: with=%v without=%v", rw.Violation, ro.Violation)
	}
	if rw.Distinct != ro.Distinct || rw.Schedules != ro.Schedules {
		t.Fatalf("snapshot resumption changed the exploration: distinct %d vs %d, schedules %d vs %d",
			rw.Distinct, ro.Distinct, rw.Schedules, ro.Schedules)
	}
	if rw.Resumed == 0 {
		t.Fatal("no run resumed from a checkpoint")
	}
}
