package explore

import (
	"fmt"
	"hash/maphash"
	"time"

	"canely/internal/can"
	"canely/internal/core"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/core/proto"
	"canely/internal/replay"
	"canely/internal/sim"
)

// never is the horizon sentinel: after every reachable instant, but far
// enough from overflow that adding a skew to it stays ordered.
const never = sim.Time(1 << 62)

// Scenario parameterizes the system under exploration: the join+crash
// workload of the paper's Figures 8/9 generalized over population size,
// horizon and fault injection.
type Scenario struct {
	// Nodes is the population size; node ids run 0..Nodes-1.
	Nodes int
	// Config parameterizes every node's protocol cores.
	Config core.Config
	// Bootstrap is the pre-agreed initial view; its members come up
	// integrated. Joiners request integration at t=0.
	Bootstrap can.NodeSet
	Joiners   can.NodeSet
	// Crash selects the crash-fault branch: when HasCrash is set, the
	// explorer may crash node Crash at any decision point up to CrashBy.
	Crash    can.NodeID
	HasCrash bool
	CrashBy  sim.Time
	// End bounds the nondeterministic schedule horizon; MaxSteps bounds
	// the whole run's length in steps.
	End sim.Time
	// Settle extends the run past End deterministically (pending frames
	// first, then earliest timers; no branching, no crash) before the
	// terminal liveness check. A bounded horizon can cut a legal recovery
	// mid-flight — a falsely-suspected node rejoins within TjoinWait, but
	// not within an arbitrary cutoff — and flagging that as a violation
	// would be a horizon artifact, not a protocol defect. Genuinely stuck
	// states (divergent views with no agreement pending) survive any
	// settle window and are still caught. Cover at least two full rejoin
	// rounds: 2*(TjoinWait + Tm + Trha + detection latency).
	Settle   time.Duration
	MaxSteps int
	// MaxDepth caps the number of decision points the search branches on.
	MaxDepth int
	// Ttd is the bounded frame-delivery delay: every pending frame must be
	// delivered within Ttd of its transmit request, which bounds how far a
	// timer may fire ahead of the pending queue.
	Ttd time.Duration
	// Skew is the clock-jitter window for timer races: a due timer is
	// schedulable only within Skew of the earliest armed deadline.
	Skew time.Duration
	// Drop, when set, injects a reception fault outside the model's fault
	// assumptions: DropNode silently misses every frame of type DropType.
	// This deliberately breaks the MAC broadcast property the protocols
	// rely on, so the engine can demonstrate counterexample capture.
	Drop     bool
	DropNode can.NodeID
	DropType can.MsgType
}

// DefaultScenario returns the 3-node join+crash scenario the original
// in-test explorer searched: nodes 0,1 bootstrap a pre-agreed view, node 2
// requests to join, node 1 may crash up to 150ms in.
func DefaultScenario() Scenario {
	return Scenario{
		Nodes: 3,
		Config: core.Config{
			FD: fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond},
			Membership: membership.Config{
				Tm:        50 * time.Millisecond,
				TjoinWait: 120 * time.Millisecond,
				RHA:       membership.RHAConfig{Trha: 5 * time.Millisecond, J: 2},
			},
		},
		Bootstrap: can.MakeSet(0, 1),
		Joiners:   can.MakeSet(2),
		Crash:     1,
		HasCrash:  true,
		CrashBy:   sim.Time(150 * time.Millisecond),
		End:       sim.Time(500 * time.Millisecond),
		Settle:    400 * time.Millisecond,
		MaxSteps:  6000,
		MaxDepth:  25,
		Ttd:       2 * time.Millisecond,
		Skew:      time.Millisecond,
	}
}

// Validate rejects malformed scenarios.
func (sc *Scenario) Validate() error {
	if sc.Nodes < 2 || sc.Nodes > can.MaxNodes {
		return fmt.Errorf("explore: scenario wants %d nodes, supported range is [2,%d]", sc.Nodes, can.MaxNodes)
	}
	if sc.MaxSteps <= 0 || sc.MaxDepth <= 0 {
		return fmt.Errorf("explore: MaxSteps and MaxDepth must be positive")
	}
	if sc.Settle < 0 {
		return fmt.Errorf("explore: negative settle window")
	}
	if sc.Bootstrap.Empty() {
		return fmt.Errorf("explore: empty bootstrap view")
	}
	if !sc.Bootstrap.Intersect(sc.Joiners).Empty() {
		return fmt.Errorf("explore: bootstrap view %v overlaps joiners %v", sc.Bootstrap, sc.Joiners)
	}
	if sc.HasCrash && !sc.Bootstrap.Union(sc.Joiners).Contains(sc.Crash) {
		return fmt.Errorf("explore: crash node %v is not part of the population", sc.Crash)
	}
	return sc.Config.FD.Validate()
}

// want is the membership view every surviving full member must converge on.
func (sc *Scenario) want(crashed bool) can.NodeSet {
	w := sc.Bootstrap.Union(sc.Joiners)
	if crashed {
		w = w.Remove(sc.Crash)
	}
	return w
}

// frame is one pending transmission on the modelled bus.
type frame struct {
	mid     can.MID
	rtr     bool
	data    [can.MaxData]byte
	dataLen uint8
	sender  can.NodeID
	sentAt  sim.Time
}

// pendKey indexes the pending queue by (sender, mid). A mid's type
// determines its frame kind, so a chain under one key is homogeneous in
// rtr/data.
type pendKey struct {
	sender can.NodeID
	mid    can.MID
}

// entry is one slot of the pending-frame arena. Slots are append-only
// between compactions; removal marks dead and unlinks from the two index
// chains, so aborts and lookups are O(chain) instead of the old harness's
// O(queue) scan (which made deep schedules quadratic).
type entry struct {
	f       frame
	dead    bool
	nextKey int32 // next live entry with the same (sender, mid), -1 ends
	nextMID int32 // next live rtr entry with the same mid, -1 ends
}

// actionKind discriminates action.
type actionKind uint8

const (
	actFrame actionKind = iota // deliver a pending frame
	actTimer                   // fire a due timer
	actCrash                   // crash the scenario's crash node
)

// action is one schedulable step.
type action struct {
	kind  actionKind
	frame int32 // entries index, actFrame only
	node  can.NodeID
	timer proto.TimerID
}

// actionID is a frame action's schedule-independent identity, the unit the
// POR sleep sets track: delivering "the frame (sender, mid, rtr, payload)"
// commutes or conflicts with other actions regardless of its queue
// position. The payload is part of the identity (exactly, not hashed —
// can.MaxData is 8, so it fits a uint64): two pending data frames under the
// same (sender, mid) but with different payloads are distinct actions, and
// sleeping one must not silence the other.
type actionID struct {
	sender can.NodeID
	mid    can.MID
	rtr    bool
	payLen uint8
	pay    uint64
}

// System is one system instance under exploration: the pure cores of every
// node plus the modelled MAC layer (pending-frame queue with the broadcast,
// clustering and bounded-delay properties the protocols assume) and the
// per-node logical timers. It is rebuilt per schedule and driven through
// one decision vector.
type System struct {
	scen *Scenario

	now     sim.Time
	nodes   []*core.Node
	alive   []bool
	crashed bool

	// Pending-frame queue: arena + (sender,mid) chains + per-mid rtr
	// chains. liveFrames counts non-dead entries.
	entries    []entry
	byKey      map[pendKey]int32
	byMID      map[can.MID]int32
	liveFrames int

	// timers[n][id] is node n's armed deadline for logical timer id;
	// armedTimers[n] is the bitmask of armed ids.
	timers      [][proto.NumTimers]sim.Time
	armedTimers []uint8

	// rec, when non-nil, captures every core Step for counterexample
	// replay.
	rec *replay.Log

	// Reused scratch.
	buf     proto.CommandBuf
	actions []action
	due     []action
}

// NewSystem builds a fresh system at its initial state: bootstrap members
// installed, joiners requesting integration. The scenario must outlive the
// system. rec, when non-nil, records every core step (replay capture).
func NewSystem(scen *Scenario, rec *replay.Log) (*System, error) {
	s := &System{scen: scen, rec: rec}
	s.byKey = make(map[pendKey]int32, 16)
	s.byMID = make(map[can.MID]int32, 16)
	s.timers = make([][proto.NumTimers]sim.Time, scen.Nodes)
	s.armedTimers = make([]uint8, scen.Nodes)
	for i := 0; i < scen.Nodes; i++ {
		n, err := core.New(can.NodeID(i), scen.Config)
		if err != nil {
			return nil, err
		}
		s.nodes = append(s.nodes, n)
		s.alive = append(s.alive, true)
		if rec != nil {
			rec.Register(can.NodeID(i), scen.Config)
		}
	}
	for v := scen.Bootstrap; !v.Empty(); {
		r := v.Lowest()
		v = v.Remove(r)
		s.step(r, proto.Event{Kind: proto.EvBootstrap, View: scen.Bootstrap})
	}
	for v := scen.Joiners; !v.Empty(); {
		r := v.Lowest()
		v = v.Remove(r)
		s.step(r, proto.Event{Kind: proto.EvJoin})
	}
	return s, nil
}

// step pumps one event into a node's composite core and applies the
// resulting command stream to the modelled bus and alarms. Inter-core
// commands were already routed by the composite; marker/trace kinds are
// no-ops here.
func (s *System) step(n can.NodeID, ev proto.Event) {
	s.buf.Reset()
	s.nodes[n].StepInto(ev, &s.buf)
	if s.rec != nil {
		s.rec.Append(n, ev, s.buf.Commands())
	}
	for i := 0; i < s.buf.Len(); i++ {
		c := s.buf.At(i)
		switch c.Kind {
		case proto.CmdSendRTR:
			if c.UnlessPending && s.pendingRTR(c.MID) {
				continue
			}
			s.push(frame{mid: c.MID, rtr: true, sender: n, sentAt: s.now})
		case proto.CmdSendData:
			f := frame{mid: c.MID, sender: n, sentAt: s.now}
			f.dataLen = uint8(copy(f.data[:], c.Payload()))
			s.push(f)
		case proto.CmdAbort:
			s.abort(n, c.MID)
		case proto.CmdSetTimer:
			s.timers[n][c.Timer] = s.now.Add(time.Duration(c.Delay))
			s.armedTimers[n] |= 1 << c.Timer
		case proto.CmdCancelTimer:
			s.armedTimers[n] &^= 1 << c.Timer
		}
	}
}

// push appends a frame to the pending queue and links it into both index
// chains (tail insertion keeps chains in queue order).
func (s *System) push(f frame) {
	idx := int32(len(s.entries))
	s.entries = append(s.entries, entry{f: f, nextKey: -1, nextMID: -1})
	s.liveFrames++
	k := pendKey{f.sender, f.mid}
	if head, ok := s.byKey[k]; ok {
		i := head
		for s.entries[i].nextKey >= 0 {
			i = s.entries[i].nextKey
		}
		s.entries[i].nextKey = idx
	} else {
		s.byKey[k] = idx
	}
	if f.rtr {
		if head, ok := s.byMID[f.mid]; ok {
			i := head
			for s.entries[i].nextMID >= 0 {
				i = s.entries[i].nextMID
			}
			s.entries[i].nextMID = idx
		} else {
			s.byMID[f.mid] = idx
		}
	}
}

// pendingRTR reports whether any remote frame with the mid is queued: an
// O(1) head lookup replacing the old harness's queue scan.
func (s *System) pendingRTR(mid can.MID) bool {
	_, ok := s.byMID[mid]
	return ok
}

// abort removes the oldest pending frame of (sender, mid), mirroring the
// old harness's first-match removal — an O(chain) operation on the
// (sender, mid) index instead of an O(queue) scan.
func (s *System) abort(sender can.NodeID, mid can.MID) {
	k := pendKey{sender, mid}
	head, ok := s.byKey[k]
	if !ok {
		return
	}
	e := &s.entries[head]
	if e.nextKey >= 0 {
		s.byKey[k] = e.nextKey
	} else {
		delete(s.byKey, k)
	}
	e.nextKey = -1
	if e.f.rtr {
		s.unlinkMID(head)
	}
	e.dead = true
	s.liveFrames--
}

// unlinkMID removes entry idx from its per-mid rtr chain.
func (s *System) unlinkMID(idx int32) {
	mid := s.entries[idx].f.mid
	head, ok := s.byMID[mid]
	if !ok {
		return
	}
	if head == idx {
		if next := s.entries[idx].nextMID; next >= 0 {
			s.byMID[mid] = next
		} else {
			delete(s.byMID, mid)
		}
		s.entries[idx].nextMID = -1
		return
	}
	for i := head; ; {
		next := s.entries[i].nextMID
		if next < 0 {
			return
		}
		if next == idx {
			s.entries[i].nextMID = s.entries[idx].nextMID
			s.entries[idx].nextMID = -1
			return
		}
		i = next
	}
}

// unlinkKey removes entry idx from its (sender, mid) chain.
func (s *System) unlinkKey(idx int32) {
	k := pendKey{s.entries[idx].f.sender, s.entries[idx].f.mid}
	head, ok := s.byKey[k]
	if !ok {
		return
	}
	if head == idx {
		if next := s.entries[idx].nextKey; next >= 0 {
			s.byKey[k] = next
		} else {
			delete(s.byKey, k)
		}
		s.entries[idx].nextKey = -1
		return
	}
	for i := head; ; {
		next := s.entries[i].nextKey
		if next < 0 {
			return
		}
		if next == idx {
			s.entries[i].nextKey = s.entries[idx].nextKey
			s.entries[idx].nextKey = -1
			return
		}
		i = next
	}
}

// kill marks entry idx dead and unlinks it from both chains.
func (s *System) kill(idx int32) {
	e := &s.entries[idx]
	if e.dead {
		return
	}
	s.unlinkKey(idx)
	if e.f.rtr {
		s.unlinkMID(idx)
	}
	e.dead = true
	s.liveFrames--
}

// compact rewrites the arena without dead entries, preserving queue order,
// and rebuilds both indexes. Called from enabled() so no action index can
// dangle across the compaction.
func (s *System) compact() {
	live := s.entries[:0]
	for i := range s.entries {
		if !s.entries[i].dead {
			live = append(live, s.entries[i])
		}
	}
	s.entries = live
	clear(s.byKey)
	clear(s.byMID)
	for i := range s.entries {
		s.entries[i].nextKey = -1
		s.entries[i].nextMID = -1
	}
	for i := range s.entries {
		idx := int32(i)
		e := &s.entries[i]
		k := pendKey{e.f.sender, e.f.mid}
		if head, ok := s.byKey[k]; ok {
			j := head
			for s.entries[j].nextKey >= 0 {
				j = s.entries[j].nextKey
			}
			s.entries[j].nextKey = idx
		} else {
			s.byKey[k] = idx
		}
		if e.f.rtr {
			if head, ok := s.byMID[e.f.mid]; ok {
				j := head
				for s.entries[j].nextMID >= 0 {
					j = s.entries[j].nextMID
				}
				s.entries[j].nextMID = idx
			} else {
				s.byMID[e.f.mid] = idx
			}
		}
	}
}

// horizon is the latest instant a timer may fire at: every pending frame
// must have been delivered within Ttd of its transmit request.
func (s *System) horizon() sim.Time {
	h := never
	for i := range s.entries {
		if s.entries[i].dead {
			continue
		}
		if d := s.entries[i].f.sentAt.Add(s.scen.Ttd); d < h {
			h = d
		}
	}
	return h
}

// enabled appends the schedulable actions to the system's reused action
// buffer in deterministic order: pending frames (queue order), due timers
// (deadline, then node, then timer id), the crash. The returned slice is
// valid until the next enabled call.
//
// A timer is schedulable when its deadline respects the frame-delivery
// bound (horizon) and lies within Skew of the earliest armed deadline:
// timers on one virtual clock fire in deadline order, but near-simultaneous
// deadlines (bootstrap-synchronized scans, the members' cycle timers) race
// within clock jitter — exactly the races worth exploring. Without the
// bound the search would "explore" unreal schedules that starve a node's
// timers forever.
func (s *System) enabled() []action {
	if len(s.entries) > 64 && s.liveFrames*2 < len(s.entries) {
		s.compact()
	}
	out := s.actions[:0]
	for i := range s.entries {
		if !s.entries[i].dead {
			out = append(out, action{kind: actFrame, frame: int32(i)})
		}
	}
	h := s.horizon()
	minD := never
	for n := range s.timers {
		armed := s.armedTimers[n]
		for id := proto.TimerID(0); id < proto.NumTimers; id++ {
			if armed&(1<<id) != 0 && s.timers[n][id] < minD {
				minD = s.timers[n][id]
			}
		}
	}
	due := s.due[:0]
	for n := range s.timers {
		armed := s.armedTimers[n]
		for id := proto.TimerID(0); id < proto.NumTimers; id++ {
			if armed&(1<<id) == 0 {
				continue
			}
			if d := s.timers[n][id]; d <= h && d <= minD.Add(s.scen.Skew) {
				due = append(due, action{kind: actTimer, node: can.NodeID(n), timer: id})
			}
		}
	}
	// Insertion sort by (deadline, node, id): due lists are tiny, and the
	// comparator must match the original harness exactly so naive
	// enumeration is schedule-for-schedule identical.
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && s.timerLess(due[j], due[j-1]); j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	s.due = due
	out = append(out, due...)
	if s.scen.HasCrash && !s.crashed && s.now <= s.scen.CrashBy {
		out = append(out, action{kind: actCrash})
	}
	s.actions = out
	return out
}

func (s *System) timerLess(a, b action) bool {
	da, db := s.timers[a.node][a.timer], s.timers[b.node][b.timer]
	if da != db {
		return da < db
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.timer < b.timer
}

// id returns a frame action's schedule-independent identity; timer and
// crash actions are identified by their fields directly and never enter a
// sleep set.
func (s *System) id(a action) actionID {
	f := &s.entries[a.frame].f
	id := actionID{sender: f.sender, mid: f.mid, rtr: f.rtr, payLen: f.dataLen}
	for i := 0; i < int(f.dataLen); i++ {
		id.pay |= uint64(f.data[i]) << (8 * i)
	}
	return id
}

// apply executes one schedulable action.
func (s *System) apply(a action) {
	switch a.kind {
	case actCrash:
		s.crashed = true
		s.alive[s.scen.Crash] = false
		for i := range s.entries {
			if !s.entries[i].dead && s.entries[i].f.sender == s.scen.Crash {
				s.kill(int32(i))
			}
		}
		s.armedTimers[s.scen.Crash] = 0
	case actTimer:
		d := s.timers[a.node][a.timer]
		s.armedTimers[a.node] &^= 1 << a.timer
		if d > s.now {
			s.now = d
		}
		s.step(a.node, proto.Event{
			Kind: proto.EvTimerFired, Timer: a.timer, At: s.now, Node: a.node,
		})
	case actFrame:
		f := s.entries[a.frame].f
		// Identical remote frames merge into the one transmission the
		// receivers observe (the clustering property the FDA relies on);
		// identical data frames from one sender collapse the same way.
		if f.rtr {
			for i := s.byMID[f.mid]; i >= 0; {
				next := s.entries[i].nextMID
				s.kill(i)
				i = next
			}
		} else {
			for i := s.byKey[pendKey{f.sender, f.mid}]; i >= 0; {
				next := s.entries[i].nextKey
				s.kill(i)
				i = next
			}
		}
		for n := 0; n < s.scen.Nodes; n++ {
			if !s.alive[n] {
				continue
			}
			if s.scen.Drop && can.NodeID(n) == s.scen.DropNode && f.mid.Type == s.scen.DropType {
				continue
			}
			if f.rtr {
				s.step(can.NodeID(n), proto.Event{Kind: proto.EvRTRInd, MID: f.mid, At: s.now})
			} else {
				s.step(can.NodeID(n), proto.Event{Kind: proto.EvDataNty, MID: f.mid, At: s.now})
				ev := proto.Event{Kind: proto.EvDataInd, MID: f.mid, At: s.now}
				ev.Data = f.data
				ev.DataLen = f.dataLen
				s.step(can.NodeID(n), ev)
			}
		}
	}
}

// Fingerprint writes the complete system state into h: virtual time, the
// crash flag, liveness bits, every node's composite-core fingerprint, the
// pending-frame queue and the armed timers. Pending frames are written in
// queue order with a count prefix (queue order is itself part of the state:
// it fixes the decision indexing of every future schedule); timer slots are
// written only while armed. Two Systems reached by different schedules hash
// equal exactly when no future action sequence can distinguish them.
func (s *System) Fingerprint(h *maphash.Hash) {
	proto.HashU64(h, uint64(s.now))
	proto.HashBool(h, s.crashed)
	var aliveBits uint64
	for n, a := range s.alive {
		if a {
			aliveBits |= 1 << n
		}
	}
	proto.HashU64(h, aliveBits)
	for _, nd := range s.nodes {
		nd.Fingerprint(h)
	}
	proto.HashU64(h, uint64(s.liveFrames))
	for i := range s.entries {
		if s.entries[i].dead {
			continue
		}
		f := &s.entries[i].f
		proto.HashU64(h, uint64(f.sender))
		proto.HashU64(h, uint64(f.mid.Encode()))
		proto.HashBool(h, f.rtr)
		proto.HashU64(h, uint64(f.sentAt))
		proto.HashU64(h, uint64(f.dataLen))
		var pay uint64
		for j := 0; j < int(f.dataLen); j++ {
			pay |= uint64(f.data[j]) << (8 * j)
		}
		proto.HashU64(h, pay)
	}
	for n := range s.timers {
		proto.HashU64(h, uint64(s.armedTimers[n]))
		armed := s.armedTimers[n]
		for id := proto.TimerID(0); id < proto.NumTimers; id++ {
			if armed&(1<<id) != 0 {
				proto.HashU64(h, uint64(s.timers[n][id]))
			}
		}
	}
}

// checkSafety asserts the per-step invariant: a full member's view contains
// itself.
func (s *System) checkSafety() error {
	for n := 0; n < s.scen.Nodes; n++ {
		nd := s.nodes[n]
		if s.alive[n] && nd.Msh.Member() && !nd.Msh.View().Contains(can.NodeID(n)) {
			return fmt.Errorf("node %v is a member of a view %v omitting itself", can.NodeID(n), nd.Msh.View())
		}
	}
	return nil
}

// checkTerminal asserts liveness + agreement at the end of a schedule:
// every surviving node integrated and converged on exactly the alive set.
func (s *System) checkTerminal() error {
	want := s.scen.want(s.crashed)
	for n := 0; n < s.scen.Nodes; n++ {
		if !s.alive[n] {
			continue
		}
		nd := s.nodes[n]
		if !nd.Msh.Member() {
			return fmt.Errorf("node %v never (re)integrated; view=%v", can.NodeID(n), nd.Msh.View())
		}
		if got := nd.Msh.View(); got != want {
			return fmt.Errorf("node %v converged on %v, want %v", can.NodeID(n), got, want)
		}
	}
	return nil
}
