package explore

import (
	"fmt"
	"hash/maphash"
	"time"
	"unsafe"

	"canely/internal/can"
	"canely/internal/core"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/core/proto"
	"canely/internal/gossip"
	"canely/internal/replay"
	"canely/internal/sim"
)

// never is the horizon sentinel: after every reachable instant, but far
// enough from overflow that adding a skew to it stays ordered.
const never = sim.Time(1 << 62)

// Scenario parameterizes the system under exploration: the join+crash
// workload of the paper's Figures 8/9 generalized over population size,
// horizon and fault injection.
type Scenario struct {
	// Nodes is the population size; node ids run 0..Nodes-1.
	Nodes int
	// Config parameterizes every node's protocol cores.
	Config core.Config
	// Gossip switches the system to the SWIM baseline: every node runs a
	// gossip core instead of the CANELy composite, frames of
	// can.TypeGossip are delivered unicast to their destination (the
	// datagram substrate's routing), and the safety/terminal checks
	// assert the gossip lattice invariants. nil selects CANELy mode.
	Gossip *gossip.Config
	// Bootstrap is the pre-agreed initial view; its members come up
	// integrated. Joiners request integration at t=0.
	Bootstrap can.NodeSet
	Joiners   can.NodeSet
	// Crash selects the crash-fault branch: when HasCrash is set, the
	// explorer may crash node Crash at any decision point up to CrashBy.
	Crash    can.NodeID
	HasCrash bool
	CrashBy  sim.Time
	// End bounds the nondeterministic schedule horizon; MaxSteps bounds
	// the whole run's length in steps.
	End sim.Time
	// Settle extends the run past End deterministically (pending frames
	// first, then earliest timers; no branching, no crash) before the
	// terminal liveness check. A bounded horizon can cut a legal recovery
	// mid-flight — a falsely-suspected node rejoins within TjoinWait, but
	// not within an arbitrary cutoff — and flagging that as a violation
	// would be a horizon artifact, not a protocol defect. Genuinely stuck
	// states (divergent views with no agreement pending) survive any
	// settle window and are still caught. Cover at least two full rejoin
	// rounds: 2*(TjoinWait + Tm + Trha + detection latency).
	Settle   time.Duration
	MaxSteps int
	// MaxDepth caps the number of decision points the search branches on.
	MaxDepth int
	// Ttd is the bounded frame-delivery delay: every pending frame must be
	// delivered within Ttd of its transmit request, which bounds how far a
	// timer may fire ahead of the pending queue.
	Ttd time.Duration
	// Skew is the clock-jitter window for timer races: a due timer is
	// schedulable only within Skew of the earliest armed deadline.
	Skew time.Duration
	// Drop, when set, injects a reception fault outside the model's fault
	// assumptions: DropNode silently misses every frame of type DropType.
	// This deliberately breaks the MAC broadcast property the protocols
	// rely on, so the engine can demonstrate counterexample capture.
	Drop     bool
	DropNode can.NodeID
	DropType can.MsgType
}

// DefaultScenario returns the 3-node join+crash scenario the original
// in-test explorer searched: nodes 0,1 bootstrap a pre-agreed view, node 2
// requests to join, node 1 may crash up to 150ms in.
func DefaultScenario() Scenario {
	return Scenario{
		Nodes: 3,
		Config: core.Config{
			FD: fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond},
			Membership: membership.Config{
				Tm:        50 * time.Millisecond,
				TjoinWait: 120 * time.Millisecond,
				RHA:       membership.RHAConfig{Trha: 5 * time.Millisecond, J: 2},
			},
		},
		Bootstrap: can.MakeSet(0, 1),
		Joiners:   can.MakeSet(2),
		Crash:     1,
		HasCrash:  true,
		CrashBy:   sim.Time(150 * time.Millisecond),
		End:       sim.Time(500 * time.Millisecond),
		Settle:    400 * time.Millisecond,
		MaxSteps:  6000,
		MaxDepth:  25,
		Ttd:       2 * time.Millisecond,
		Skew:      time.Millisecond,
	}
}

// DefaultGossipScenario returns the SWIM analogue of the default
// join+crash scenario: nodes 0,1 bootstrap, node 2 joins through them,
// node 1 may crash up to 80ms in. The timing respects the soundness
// argument of the bounded-delay model: Ttd < AckTimeout, so an in-flight
// ack always lands before the probe timer that would falsely expire on it,
// and the only suspicion the search can produce is the real crash.
func DefaultGossipScenario() Scenario {
	return Scenario{
		Nodes: 3,
		Gossip: &gossip.Config{
			Period:         20 * time.Millisecond,
			AckTimeout:     5 * time.Millisecond,
			SuspectTimeout: 60 * time.Millisecond,
			Fanout:         1,
			Retransmit:     3,
		},
		Bootstrap: can.MakeSet(0, 1),
		Joiners:   can.MakeSet(2),
		Crash:     1,
		HasCrash:  true,
		CrashBy:   sim.Time(80 * time.Millisecond),
		End:       sim.Time(200 * time.Millisecond),
		Settle:    300 * time.Millisecond,
		MaxSteps:  6000,
		MaxDepth:  25,
		Ttd:       2 * time.Millisecond,
		Skew:      time.Millisecond,
	}
}

// Validate rejects malformed scenarios.
func (sc *Scenario) Validate() error {
	if sc.Nodes < 2 || sc.Nodes > can.MaxNodes {
		return fmt.Errorf("explore: scenario wants %d nodes, supported range is [2,%d]", sc.Nodes, can.MaxNodes)
	}
	if sc.MaxSteps <= 0 || sc.MaxDepth <= 0 {
		return fmt.Errorf("explore: MaxSteps and MaxDepth must be positive")
	}
	if sc.Settle < 0 {
		return fmt.Errorf("explore: negative settle window")
	}
	if sc.Bootstrap.Empty() {
		return fmt.Errorf("explore: empty bootstrap view")
	}
	if !sc.Bootstrap.Intersect(sc.Joiners).Empty() {
		return fmt.Errorf("explore: bootstrap view %v overlaps joiners %v", sc.Bootstrap, sc.Joiners)
	}
	if sc.HasCrash && !sc.Bootstrap.Union(sc.Joiners).Contains(sc.Crash) {
		return fmt.Errorf("explore: crash node %v is not part of the population", sc.Crash)
	}
	if sc.Gossip != nil {
		return sc.Gossip.Validate()
	}
	return sc.Config.FD.Validate()
}

// want is the membership view every surviving full member must converge on.
func (sc *Scenario) want(crashed bool) can.NodeSet {
	w := sc.Bootstrap.Union(sc.Joiners)
	if crashed {
		w = w.Remove(sc.Crash)
	}
	return w
}

// frame is one pending transmission on the modelled bus.
type frame struct {
	mid     can.MID
	rtr     bool
	data    [can.MaxData]byte
	dataLen uint8
	sender  can.NodeID
	sentAt  sim.Time
}

// entry is one slot of the pending-frame arena. Live entries form a
// doubly-linked queue in transmit-request order (head oldest); dead slots
// chain through next on the free list and are reused by the next push. The
// arena therefore never grows past the live high-water mark, every queue
// operation — push, first-match abort, clustering kill, the fused
// enabled/horizon walk — is O(live frames), and a snapshot of the queue is
// a plain slice copy: no index maps to maintain, rebuild or clone.
type entry struct {
	f    frame
	prev int32 // previous live entry, -1 at the head
	next int32 // next live entry, -1 at the tail; free-list chain when dead
	live bool
}

// actionKind discriminates action.
type actionKind uint8

const (
	actFrame actionKind = iota // deliver a pending frame
	actTimer                   // fire a due timer
	actCrash                   // crash the scenario's crash node
)

// action is one schedulable step.
type action struct {
	kind  actionKind
	frame int32 // entries index, actFrame only
	node  can.NodeID
	timer proto.TimerID
}

// actionID is a frame action's schedule-independent identity, the unit the
// POR sleep sets track: delivering "the frame (sender, mid, rtr, payload)"
// commutes or conflicts with other actions regardless of its queue
// position. The payload is part of the identity (exactly, not hashed —
// can.MaxData is 8, so it fits a uint64): two pending data frames under the
// same (sender, mid) but with different payloads are distinct actions, and
// sleeping one must not silence the other.
type actionID struct {
	sender can.NodeID
	mid    can.MID
	rtr    bool
	payLen uint8
	pay    uint64
}

// System is one system instance under exploration: the pure cores of every
// node plus the modelled MAC layer (pending-frame queue with the broadcast,
// clustering and bounded-delay properties the protocols assume) and the
// per-node logical timers. It is rebuilt per schedule and driven through
// one decision vector.
type System struct {
	scen *Scenario

	now sim.Time
	// Exactly one of nodes (CANELy composite cores) and gnodes (SWIM
	// gossip cores) is populated, per Scenario.Gossip.
	nodes   []*core.Node
	gnodes  []*gossip.Core
	alive   []bool
	crashed bool

	// Pending-frame queue: slot arena threaded by a doubly-linked live
	// list in queue order (head..tail) plus a free-slot chain. liveFrames
	// counts live entries.
	entries    []entry
	head       int32
	tail       int32
	free       int32
	liveFrames int

	// timers[n][id] is node n's armed deadline for logical timer id;
	// armedTimers[n] is the bitmask of armed ids.
	timers      [][proto.NumTimers]sim.Time
	armedTimers []uint8

	// rec, when non-nil, captures every core Step for counterexample
	// replay.
	rec *replay.Log

	// Reused scratch.
	buf     proto.CommandBuf
	actions []action
	due     []action
}

// NewSystem builds a fresh system at its initial state: bootstrap members
// installed, joiners requesting integration. The scenario must outlive the
// system. rec, when non-nil, records every core step (replay capture).
func NewSystem(scen *Scenario, rec *replay.Log) (*System, error) {
	s := &System{scen: scen, rec: rec, head: -1, tail: -1, free: -1}
	s.timers = make([][proto.NumTimers]sim.Time, scen.Nodes)
	s.armedTimers = make([]uint8, scen.Nodes)
	for i := 0; i < scen.Nodes; i++ {
		if scen.Gossip != nil {
			g, err := gossip.New(can.NodeID(i), *scen.Gossip)
			if err != nil {
				return nil, err
			}
			s.gnodes = append(s.gnodes, g)
			if rec != nil {
				rec.RegisterGossip(can.NodeID(i), *scen.Gossip)
			}
		} else {
			n, err := core.New(can.NodeID(i), scen.Config)
			if err != nil {
				return nil, err
			}
			s.nodes = append(s.nodes, n)
			if rec != nil {
				rec.Register(can.NodeID(i), scen.Config)
			}
		}
		s.alive = append(s.alive, true)
	}
	for v := scen.Bootstrap; !v.Empty(); {
		r := v.Lowest()
		v = v.Remove(r)
		s.step(r, proto.Event{Kind: proto.EvBootstrap, View: scen.Bootstrap})
	}
	for v := scen.Joiners; !v.Empty(); {
		r := v.Lowest()
		v = v.Remove(r)
		// A gossip joiner is seeded with the bootstrap members as its
		// introduction contacts; the CANELy joiner broadcasts a join sign
		// and carries no view (keeping its recorded event unchanged).
		ev := proto.Event{Kind: proto.EvJoin}
		if scen.Gossip != nil {
			ev.View = scen.Bootstrap
		}
		s.step(r, ev)
	}
	return s, nil
}

// step pumps one event into a node's composite core and applies the
// resulting command stream to the modelled bus and alarms. Inter-core
// commands were already routed by the composite; marker/trace kinds are
// no-ops here.
func (s *System) step(n can.NodeID, ev proto.Event) {
	s.buf.Reset()
	if s.scen.Gossip != nil {
		s.gnodes[n].StepInto(ev, &s.buf)
	} else {
		s.nodes[n].StepInto(ev, &s.buf)
	}
	if s.rec != nil {
		s.rec.Append(n, ev, s.buf.Commands())
	}
	for i := 0; i < s.buf.Len(); i++ {
		c := s.buf.At(i)
		switch c.Kind {
		case proto.CmdSendRTR:
			if c.UnlessPending && s.pendingRTR(c.MID) {
				continue
			}
			s.push(frame{mid: c.MID, rtr: true, sender: n, sentAt: s.now})
		case proto.CmdSendData:
			f := frame{mid: c.MID, sender: n, sentAt: s.now}
			f.dataLen = uint8(copy(f.data[:], c.Payload()))
			s.push(f)
		case proto.CmdAbort:
			s.abort(n, c.MID)
		case proto.CmdSetTimer:
			s.timers[n][c.Timer] = s.now.Add(time.Duration(c.Delay))
			s.armedTimers[n] |= 1 << c.Timer
		case proto.CmdCancelTimer:
			s.armedTimers[n] &^= 1 << c.Timer
		}
	}
}

// push appends a frame at the tail of the pending queue, reusing a free
// slot when one exists.
func (s *System) push(f frame) {
	idx := s.free
	if idx >= 0 {
		s.free = s.entries[idx].next
	} else {
		idx = int32(len(s.entries))
		s.entries = append(s.entries, entry{})
	}
	s.entries[idx] = entry{f: f, prev: s.tail, next: -1, live: true}
	if s.tail >= 0 {
		s.entries[s.tail].next = idx
	} else {
		s.head = idx
	}
	s.tail = idx
	s.liveFrames++
}

// pendingRTR reports whether any remote frame with the mid is queued. The
// live list rarely exceeds a handful of frames, so the scan beats the
// hash-map lookup it replaced.
func (s *System) pendingRTR(mid can.MID) bool {
	for i := s.head; i >= 0; i = s.entries[i].next {
		if s.entries[i].f.rtr && s.entries[i].f.mid == mid {
			return true
		}
	}
	return false
}

// abort removes the oldest pending frame of (sender, mid), mirroring the
// layered implementation's first-match removal.
func (s *System) abort(sender can.NodeID, mid can.MID) {
	for i := s.head; i >= 0; i = s.entries[i].next {
		if f := &s.entries[i].f; f.sender == sender && f.mid == mid {
			s.kill(i)
			return
		}
	}
}

// kill unlinks entry idx from the live queue and pushes the slot onto the
// free chain.
func (s *System) kill(idx int32) {
	e := &s.entries[idx]
	if !e.live {
		return
	}
	if e.prev >= 0 {
		s.entries[e.prev].next = e.next
	} else {
		s.head = e.next
	}
	if e.next >= 0 {
		s.entries[e.next].prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.live = false
	e.next = s.free
	s.free = idx
	s.liveFrames--
}

// enabled appends the schedulable actions to the system's reused action
// buffer in deterministic order: pending frames (queue order), due timers
// (deadline, then node, then timer id), the crash. The returned slice is
// valid until the next enabled call.
//
// A timer is schedulable when its deadline respects the frame-delivery
// bound (horizon) and lies within Skew of the earliest armed deadline:
// timers on one virtual clock fire in deadline order, but near-simultaneous
// deadlines (bootstrap-synchronized scans, the members' cycle timers) race
// within clock jitter — exactly the races worth exploring. Without the
// bound the search would "explore" unreal schedules that starve a node's
// timers forever.
func (s *System) enabled() []action {
	out := s.actions[:0]
	// One pass over the live queue yields both the frame actions (queue
	// order) and the horizon — the latest instant a timer may fire at, since
	// every pending frame must be delivered within Ttd of its request.
	h := never
	for i := s.head; i >= 0; i = s.entries[i].next {
		out = append(out, action{kind: actFrame, frame: i})
		if d := s.entries[i].f.sentAt.Add(s.scen.Ttd); d < h {
			h = d
		}
	}
	minD := never
	for n := range s.timers {
		armed := s.armedTimers[n]
		for id := proto.TimerID(0); id < proto.NumTimers; id++ {
			if armed&(1<<id) != 0 && s.timers[n][id] < minD {
				minD = s.timers[n][id]
			}
		}
	}
	due := s.due[:0]
	for n := range s.timers {
		armed := s.armedTimers[n]
		for id := proto.TimerID(0); id < proto.NumTimers; id++ {
			if armed&(1<<id) == 0 {
				continue
			}
			if d := s.timers[n][id]; d <= h && d <= minD.Add(s.scen.Skew) {
				due = append(due, action{kind: actTimer, node: can.NodeID(n), timer: id})
			}
		}
	}
	// Insertion sort by (deadline, node, id): due lists are tiny, and the
	// comparator must match the original harness exactly so naive
	// enumeration is schedule-for-schedule identical.
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && s.timerLess(due[j], due[j-1]); j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	s.due = due
	out = append(out, due...)
	if s.scen.HasCrash && !s.crashed && s.now <= s.scen.CrashBy {
		out = append(out, action{kind: actCrash})
	}
	s.actions = out
	return out
}

func (s *System) timerLess(a, b action) bool {
	da, db := s.timers[a.node][a.timer], s.timers[b.node][b.timer]
	if da != db {
		return da < db
	}
	if a.node != b.node {
		return a.node < b.node
	}
	return a.timer < b.timer
}

// id returns a frame action's schedule-independent identity; timer and
// crash actions are identified by their fields directly and never enter a
// sleep set.
func (s *System) id(a action) actionID {
	f := &s.entries[a.frame].f
	id := actionID{sender: f.sender, mid: f.mid, rtr: f.rtr, payLen: f.dataLen}
	for i := 0; i < int(f.dataLen); i++ {
		id.pay |= uint64(f.data[i]) << (8 * i)
	}
	return id
}

// apply executes one schedulable action.
func (s *System) apply(a action) {
	switch a.kind {
	case actCrash:
		s.crashed = true
		s.alive[s.scen.Crash] = false
		for i := s.head; i >= 0; {
			next := s.entries[i].next
			if s.entries[i].f.sender == s.scen.Crash {
				s.kill(i)
			}
			i = next
		}
		s.armedTimers[s.scen.Crash] = 0
	case actTimer:
		d := s.timers[a.node][a.timer]
		s.armedTimers[a.node] &^= 1 << a.timer
		if d > s.now {
			s.now = d
		}
		s.step(a.node, proto.Event{
			Kind: proto.EvTimerFired, Timer: a.timer, At: s.now, Node: a.node,
		})
	case actFrame:
		f := s.entries[a.frame].f
		// Identical remote frames merge into the one transmission the
		// receivers observe (the clustering property the FDA relies on);
		// identical data frames from one sender collapse the same way.
		if f.rtr {
			for i := s.head; i >= 0; {
				next := s.entries[i].next
				if s.entries[i].f.rtr && s.entries[i].f.mid == f.mid {
					s.kill(i)
				}
				i = next
			}
		} else {
			for i := s.head; i >= 0; {
				next := s.entries[i].next
				if e := &s.entries[i].f; e.sender == f.sender && e.mid == f.mid {
					s.kill(i)
				}
				i = next
			}
		}
		// Gossip traffic is point-to-point: only the addressed node hears
		// the frame (the datagram substrate's routing), and there is no
		// observation notification — a datagram network has no shared wire
		// to observe.
		if f.mid.Type == can.TypeGossip {
			dst := can.GossipDest(f.mid)
			if int(dst) < s.scen.Nodes && s.alive[dst] &&
				!(s.scen.Drop && dst == s.scen.DropNode && f.mid.Type == s.scen.DropType) {
				ev := proto.Event{Kind: proto.EvDataInd, MID: f.mid, At: s.now}
				ev.Data = f.data
				ev.DataLen = f.dataLen
				s.step(dst, ev)
			}
			return
		}
		for n := 0; n < s.scen.Nodes; n++ {
			if !s.alive[n] {
				continue
			}
			if s.scen.Drop && can.NodeID(n) == s.scen.DropNode && f.mid.Type == s.scen.DropType {
				continue
			}
			if f.rtr {
				s.step(can.NodeID(n), proto.Event{Kind: proto.EvRTRInd, MID: f.mid, At: s.now})
			} else {
				s.step(can.NodeID(n), proto.Event{Kind: proto.EvDataNty, MID: f.mid, At: s.now})
				ev := proto.Event{Kind: proto.EvDataInd, MID: f.mid, At: s.now}
				ev.Data = f.data
				ev.DataLen = f.dataLen
				s.step(can.NodeID(n), ev)
			}
		}
	}
}

// Fingerprint writes the complete system state into h: virtual time, the
// crash flag, liveness bits, every node's composite-core fingerprint, the
// pending-frame queue and the armed timers. Pending frames are written in
// queue order with a count prefix (queue order is itself part of the state:
// it fixes the decision indexing of every future schedule); timer slots are
// written only while armed. Two Systems reached by different schedules hash
// equal exactly when no future action sequence can distinguish them.
func (s *System) Fingerprint(h *maphash.Hash) {
	proto.HashU64(h, uint64(s.now))
	proto.HashBool(h, s.crashed)
	var aliveBits uint64
	for n, a := range s.alive {
		if a {
			aliveBits |= 1 << n
		}
	}
	proto.HashU64(h, aliveBits)
	for _, nd := range s.nodes {
		nd.Fingerprint(h)
	}
	for _, g := range s.gnodes {
		g.Fingerprint(h)
	}
	proto.HashU64(h, uint64(s.liveFrames))
	for i := s.head; i >= 0; i = s.entries[i].next {
		f := &s.entries[i].f
		proto.HashU64(h, uint64(f.sender))
		proto.HashU64(h, uint64(f.mid.Encode()))
		proto.HashBool(h, f.rtr)
		proto.HashU64(h, uint64(f.sentAt))
		proto.HashU64(h, uint64(f.dataLen))
		var pay uint64
		for j := 0; j < int(f.dataLen); j++ {
			pay |= uint64(f.data[j]) << (8 * j)
		}
		proto.HashU64(h, pay)
	}
	for n := range s.timers {
		proto.HashU64(h, uint64(s.armedTimers[n]))
		armed := s.armedTimers[n]
		for id := proto.TimerID(0); id < proto.NumTimers; id++ {
			if armed&(1<<id) != 0 {
				proto.HashU64(h, uint64(s.timers[n][id]))
			}
		}
	}
}

// stepFirst applies enabled()[0] without materializing the action list —
// the fast path for the deterministic tail of a run, where the decision
// budget is exhausted and choice 0 is always taken. Frames precede timers
// in enabled(), so any queued frame means action 0 is the queue head. With
// no frames pending the horizon is never, so the earliest armed deadline is
// always due and within any skew of itself; ties break by (node, id), which
// the ascending scan already yields. With no timers either, the crash is
// action 0 when schedulable. Returns false when nothing is enabled.
func (s *System) stepFirst() bool {
	if s.head >= 0 {
		s.apply(action{kind: actFrame, frame: s.head})
		return true
	}
	best := action{kind: actTimer}
	bestD := never
	found := false
	for n := range s.timers {
		armed := s.armedTimers[n]
		for id := proto.TimerID(0); id < proto.NumTimers; id++ {
			if armed&(1<<id) != 0 && s.timers[n][id] < bestD {
				bestD = s.timers[n][id]
				best.node = can.NodeID(n)
				best.timer = id
				found = true
			}
		}
	}
	if found {
		s.apply(best)
		return true
	}
	if s.scen.HasCrash && !s.crashed && s.now <= s.scen.CrashBy {
		s.apply(action{kind: actCrash})
		return true
	}
	return false
}

// quiescent reports whether the run has converged into the protocol's
// steady state, from which the settle phase provably cannot change the
// terminal verdict: every surviving node is an integrated member of exactly
// the expected view, no membership cycle carries pending work (Rj, Rl and
// the failed set all empty), no RHA execution is running, no FDA agreement
// is in flight, every pending frame is an explicit life-sign, and the crash
// branch is no longer schedulable.
//
// In that state the only future actions are ELS deliveries, FD scan firings
// that re-arm themselves, and membership cycles over empty sets — none of
// which touches a view. A node's life-sign is always delivered before the
// remote surveillance timer that would expire on it fires (frames precede
// timers in deterministic order, and the Ttd horizon holds every timer back
// until the queue drains), so no false suspicion can arise either. The
// terminal liveness check is therefore already decided, and the engine may
// skip the settle phase entirely. TestSettleShortcutSound pins this
// argument against the full settle run.
func (s *System) quiescent() bool {
	if s.scen.HasCrash && !s.crashed && s.now <= s.scen.CrashBy {
		return false
	}
	// SWIM has no frame-free steady state — probe traffic never ceases,
	// and any in-flight piggyback could still start a (refutable)
	// suspicion. The settle phase therefore always runs to its horizon in
	// gossip mode; the shortcut applies only to the CANELy cores.
	if s.scen.Gossip != nil {
		return false
	}
	want := s.scen.want(s.crashed)
	for n := 0; n < s.scen.Nodes; n++ {
		if !s.alive[n] {
			continue
		}
		nd := s.nodes[n]
		if !nd.Msh.Member() || nd.Msh.View() != want || !nd.Msh.Quiescent() ||
			nd.RHA.Running() || !nd.Det.Quiet() {
			return false
		}
	}
	for i := s.head; i >= 0; i = s.entries[i].next {
		if s.entries[i].f.mid.Type != can.TypeELS {
			return false
		}
	}
	return true
}

// Snapshot returns an independent deep copy of the system: a checkpoint a
// branch can later resume from in O(1) instead of replaying the whole
// decision prefix from the root. The replay recorder is deliberately not
// carried over — counterexample capture always re-executes from the root so
// the log covers the complete run.
func (s *System) Snapshot() *System {
	c := &System{
		scen:        s.scen,
		now:         s.now,
		crashed:     s.crashed,
		head:        s.head,
		tail:        s.tail,
		free:        s.free,
		liveFrames:  s.liveFrames,
		nodes:       make([]*core.Node, len(s.nodes)),
		gnodes:      make([]*gossip.Core, len(s.gnodes)),
		alive:       append([]bool(nil), s.alive...),
		entries:     append([]entry(nil), s.entries...),
		timers:      append([][proto.NumTimers]sim.Time(nil), s.timers...),
		armedTimers: append([]uint8(nil), s.armedTimers...),
	}
	for i, n := range s.nodes {
		c.nodes[i] = n.Clone()
	}
	for i, g := range s.gnodes {
		c.gnodes[i] = g.Clone()
	}
	return c
}

// Restore replaces s's state with a deep copy of src's, reusing s's
// storage throughout — the allocation-free path pooled systems resume
// through. Both systems must have been built for the same scenario. The
// replay recorder and scratch buffers keep s's own values.
func (s *System) Restore(src *System) {
	s.now = src.now
	s.crashed = src.crashed
	s.head, s.tail, s.free = src.head, src.tail, src.free
	s.liveFrames = src.liveFrames
	for i := range src.nodes {
		s.nodes[i].Restore(src.nodes[i])
	}
	for i := range src.gnodes {
		s.gnodes[i].Restore(src.gnodes[i])
	}
	copy(s.alive, src.alive)
	s.entries = append(s.entries[:0], src.entries...)
	copy(s.timers, src.timers)
	copy(s.armedTimers, src.armedTimers)
}

// coreBytes is the flat footprint of one node's protocol cores, used by
// sizeBytes to estimate checkpoint memory against the snapshot budget.
const coreBytes = int(unsafe.Sizeof(core.Node{}) + unsafe.Sizeof(fd.FDA{}) +
	unsafe.Sizeof(fd.Detector{}) + unsafe.Sizeof(membership.Protocol{}) +
	unsafe.Sizeof(membership.RHA{}))

// sizeBytes estimates the heap footprint of one Snapshot of this system.
// Flat struct sizes plus the backing arrays; the RHA duplicate-counter maps
// are typically empty at checkpoint time and are ignored.
func (s *System) sizeBytes() int {
	return int(unsafe.Sizeof(*s)) +
		len(s.nodes)*coreBytes +
		len(s.gnodes)*int(unsafe.Sizeof(gossip.Core{})) +
		len(s.alive) +
		len(s.entries)*int(unsafe.Sizeof(entry{})) +
		len(s.timers)*int(unsafe.Sizeof([proto.NumTimers]sim.Time{})) +
		len(s.armedTimers)
}

// checkSafety asserts the per-step invariant: a full member's view contains
// itself.
func (s *System) checkSafety() error {
	if s.scen.Gossip != nil {
		for n := 0; n < s.scen.Nodes; n++ {
			if !s.alive[n] {
				continue
			}
			g := s.gnodes[n]
			if !g.View().Contains(can.NodeID(n)) {
				return fmt.Errorf("gossip node %v evicted itself from its view %v", can.NodeID(n), g.View())
			}
			if bad := g.Suspects() &^ g.View(); bad != 0 {
				return fmt.Errorf("gossip node %v suspects non-members %v", can.NodeID(n), bad)
			}
			if bad := g.Dead() & g.View(); bad != 0 {
				return fmt.Errorf("gossip node %v holds %v both dead and member", can.NodeID(n), bad)
			}
		}
		return nil
	}
	for n := 0; n < s.scen.Nodes; n++ {
		nd := s.nodes[n]
		if s.alive[n] && nd.Msh.Member() && !nd.Msh.View().Contains(can.NodeID(n)) {
			return fmt.Errorf("node %v is a member of a view %v omitting itself", can.NodeID(n), nd.Msh.View())
		}
	}
	return nil
}

// checkTerminal asserts liveness + agreement at the end of a schedule:
// every surviving node integrated and converged on exactly the alive set.
func (s *System) checkTerminal() error {
	want := s.scen.want(s.crashed)
	if s.scen.Gossip != nil {
		for n := 0; n < s.scen.Nodes; n++ {
			if !s.alive[n] {
				continue
			}
			g := s.gnodes[n]
			if got := g.View(); got != want {
				return fmt.Errorf("gossip node %v converged on %v, want %v", can.NodeID(n), got, want)
			}
			if !g.Suspects().Empty() {
				return fmt.Errorf("gossip node %v still suspects %v at the horizon", can.NodeID(n), g.Suspects())
			}
		}
		return nil
	}
	for n := 0; n < s.scen.Nodes; n++ {
		if !s.alive[n] {
			continue
		}
		nd := s.nodes[n]
		if !nd.Msh.Member() {
			return fmt.Errorf("node %v never (re)integrated; view=%v", can.NodeID(n), nd.Msh.View())
		}
		if got := nd.Msh.View(); got != want {
			return fmt.Errorf("node %v converged on %v, want %v", can.NodeID(n), got, want)
		}
	}
	return nil
}
