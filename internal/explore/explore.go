// Package explore is the parallel state-space exploration engine over the
// sans-I/O protocol cores: a model checker (in the spirit of CHESS/dPOR)
// for the join+crash scenario of the paper's Figures 8/9.
//
// Each schedule is identified by a decision vector. Historically every
// schedule was replayed from the initial state — O(depth) work before the
// first new decision. The engine now checkpoints: at each branch decision a
// run captures a deep snapshot of the System (the pure cores clone in O(1)
// relative to the schedule prefix), and the frontier items for the sibling
// branches carry that snapshot, so branch expansion resumes from the parent
// state instead of the root. Snapshots are reference-counted — the last
// sibling takes ownership of the checkpoint and mutates it in place, every
// other sibling clones — and are subject to a configurable memory budget;
// over budget (or at a sparser SnapshotEvery cadence) children fall back to
// replaying the prefix from the nearest earlier checkpoint, or from the
// root. Decision vectors are still recorded for every run, so a violating
// schedule is re-executed from the root with capture enabled and replays
// byte-for-byte through `canelysim -replay` regardless of how the violating
// run itself was resumed.
//
// The schedule tree is walked depth-first by a pool of workers over a
// work-stealing frontier. Two reductions cut the tree (both optional, both
// off in the pinned compatibility mode):
//
//   - state-hash pruning: at every decision point past the replayed prefix
//     the full system fingerprint (xor the sleep-set fingerprint) is
//     inserted into a sharded visited set; a hit means an equivalent
//     exploration already branched here, so the run stops and spawns no
//     children. A hash collision can only merge two distinct states and
//     skip schedules — it can never manufacture a violation.
//   - sleep-set partial-order reduction: delivering two pending frames
//     with different senders, different message identifiers and passive
//     types (neither TypeFDA nor TypeRHA — those deliveries emit
//     queue-mutating commands) commutes, so only one order is explored.
//     Timer and crash actions are dependent with everything.
//
// Violations are captured as internal/replay logs, so a counterexample
// replays byte-for-byte through `canelysim -replay`.
package explore

import (
	"context"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
	"canely/internal/replay"
)

// Config parameterizes one exploration.
type Config struct {
	Scenario Scenario
	// Workers is the pool size; 0 means 1. A single worker with Prune and
	// POR off reproduces the historical in-test DFS schedule-for-schedule.
	Workers int
	// Target caps the number of schedule runs started (completed, pruned
	// or slept). 0 explores until the frontier is exhausted.
	Target uint64
	// Prune enables state-hash pruning of converged branches.
	Prune bool
	// POR enables the sleep-set partial-order reduction.
	POR bool
	// NoSnapshot disables checkpoint-and-branch resumption: every run
	// replays its decision prefix from the root, as the engine always did
	// before checkpointing. Exploration order, schedule counts and
	// violations are identical either way (TestSnapshotSoundness pins
	// this); only the work per run changes.
	NoSnapshot bool
	// SnapshotEvery captures a checkpoint at every k-th new branch
	// decision of a run (<=1 means every one). Sparser cadences trade
	// snapshot memory for partial prefix replay in the children.
	SnapshotEvery int
	// SnapBudget caps the live checkpoint memory in bytes; once the
	// estimated footprint of outstanding snapshots exceeds it, runs stop
	// capturing and children degrade to prefix replay until consumption
	// frees room. 0 means unlimited.
	SnapBudget int64
}

// Stats is a consistent-enough snapshot of the exploration counters (each
// counter is atomic; the set is read without a global lock).
type Stats struct {
	// Schedules counts completed runs: schedules executed to their horizon
	// and checked for liveness + agreement. CrashSchedules is the subset
	// that exercised the crash.
	Schedules      uint64
	CrashSchedules uint64
	// Pruned counts runs stopped at a decision point whose state hash was
	// already visited; Slept counts runs stopped because every enabled
	// action was in the sleep set (the trace is a reordering of an
	// explored one). Neither reaches the terminal check.
	Pruned uint64
	Slept  uint64
	// Steps is the total number of actions actually applied across all
	// runs. Checkpoint resumption skips the replayed prefix, so with
	// snapshots on this is lower than the same exploration replayed from
	// the root — the saved work is counted in ReplaySaved instead.
	Steps uint64
	// Distinct is the visited-set population: distinct (state, sleep set)
	// fingerprints seen at decision points.
	Distinct uint64
	// Frontier is the number of live work items (queued + running).
	Frontier int64
	// PeakDepth is the deepest decision vector observed.
	PeakDepth int64
	// Resumed counts runs that started from a parent checkpoint instead
	// of the root; ReplaySaved is the total prefix steps those
	// resumptions avoided re-applying.
	Resumed     uint64
	ReplaySaved uint64
	// Snapshots counts checkpoints captured; SnapBytes is the estimated
	// footprint of the checkpoints currently alive (captured, not yet
	// consumed by their last sibling).
	Snapshots uint64
	SnapBytes int64
}

// Runs returns the total schedule runs started.
func (s Stats) Runs() uint64 { return s.Schedules + s.Pruned + s.Slept }

// Violation is a counterexample: a schedule whose execution violated
// safety, liveness or agreement.
type Violation struct {
	// Vec is the full decision vector of the violating schedule (the
	// explored prefix extended with the zero choices actually taken).
	Vec []int
	// Crashed reports whether the schedule exercised the crash.
	Crashed bool
	// Msg is the violated property.
	Msg string
	// Log is the per-node event/command capture; replay.Verify re-executes
	// it against fresh cores and must reproduce it byte-for-byte.
	Log *replay.Log
}

// Result is the outcome of one exploration.
type Result struct {
	Stats
	// Violation is nil when every explored schedule satisfied the checked
	// properties.
	Violation *Violation
	// Exhausted reports that the frontier emptied: the bounded schedule
	// tree (as reduced by pruning and POR) was fully explored.
	Exhausted bool
}

// Engine runs one exploration. Counters may be snapshotted concurrently
// with Run via Stats.
type Engine struct {
	cfg  Config
	seed maphash.Seed

	// initial is the scenario's initial state, built once; every root run
	// restores a pooled System from it instead of rebuilding the cores.
	initial *System

	schedules      atomic.Uint64
	crashSchedules atomic.Uint64
	pruned         atomic.Uint64
	slept          atomic.Uint64
	steps          atomic.Uint64
	attempts       atomic.Uint64
	outstanding    atomic.Int64
	peakDepth      atomic.Int64
	resumed        atomic.Uint64
	replaySaved    atomic.Uint64
	snapshots      atomic.Uint64
	snapBytes      atomic.Int64

	// noQuiesce disables the settle-phase quiescence shortcut; test-only,
	// used to pin the shortcut's soundness against the full settle.
	noQuiesce bool

	// syspool recycles System storage between runs, checkpoint captures
	// and checkpoint clones: in steady state no run allocates its state,
	// it restores recycled storage in place.
	syspool sync.Pool

	visited   visitedSet
	deques    []deque
	victim    atomic.Uint32
	violation atomic.Pointer[Violation]
}

// New validates the configuration and builds an engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 1
	}
	e := &Engine{cfg: cfg, seed: maphash.MakeSeed()}
	initial, err := NewSystem(&e.cfg.Scenario, nil)
	if err != nil {
		return nil, err
	}
	e.initial = initial
	e.visited.init()
	e.deques = make([]deque, cfg.Workers)
	return e, nil
}

// Stats snapshots the live counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Schedules:      e.schedules.Load(),
		CrashSchedules: e.crashSchedules.Load(),
		Pruned:         e.pruned.Load(),
		Slept:          e.slept.Load(),
		Steps:          e.steps.Load(),
		Distinct:       e.visited.size.Load(),
		Frontier:       e.outstanding.Load(),
		PeakDepth:      e.peakDepth.Load(),
		Resumed:        e.resumed.Load(),
		ReplaySaved:    e.replaySaved.Load(),
		Snapshots:      e.snapshots.Load(),
		SnapBytes:      e.snapBytes.Load(),
	}
}

// Run explores until the frontier is exhausted, the target is reached, a
// violation is found, or ctx expires — whichever comes first.
func (e *Engine) Run(ctx context.Context) (Result, error) {
	e.outstanding.Store(1)
	e.deques[0].push(item{}) // the root: the empty prefix

	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			e.worker(ctx, self)
		}(w)
	}
	wg.Wait()

	res := Result{
		Stats:     e.Stats(),
		Violation: e.violation.Load(),
		Exhausted: e.outstanding.Load() == 0 && e.violation.Load() == nil,
	}
	return res, ctx.Err()
}

// item is one frontier entry: an unexplored branch prefix, optionally with
// the checkpoint it can resume from.
type item struct {
	// vec is the decision vector selecting the branch.
	vec []int
	// snap, when non-nil, is a checkpoint of the parent run at decision
	// snap.depth <= len(vec); the run restores it and replays only
	// decisions snap.depth..len(vec)-1 instead of the whole prefix. nil
	// means replay from the root.
	snap *snapshot
	// counts carries the parent's branch factors for decisions
	// 0..snap.depth-1, seeding the resumed run's count record so children
	// index identically to a root replay. Shared read-only across
	// siblings.
	counts []int
}

// snapshot is a ref-counted checkpoint of a System at one branch decision.
// refs is the number of frontier items still due to consume it: the last
// consumer takes ownership of sys and mutates it in place, every earlier
// consumer deep-clones. Cloning strictly precedes the clone's decrement, so
// ownership (only taken at refs==1) can never race a clone in progress.
type snapshot struct {
	sys *System
	// sleep is the run's sleep set at the decision point (read-only).
	sleep []actionID
	// depth and steps are the decision index and applied-step count at
	// capture time.
	depth int
	steps int
	bytes int64
	refs  atomic.Int32
}

// getSystem returns recycled System storage (state unspecified — the
// caller restores over it), falling back to a fresh deep copy of the
// initial state when the pool is dry.
func (e *Engine) getSystem() *System {
	if v := e.syspool.Get(); v != nil {
		return v.(*System)
	}
	return e.initial.Snapshot()
}

// consume returns a System holding the checkpointed state, transferring or
// copying per the ref-count protocol, and releases the checkpoint's memory
// accounting when the last reference goes. Copies restore into recycled
// storage; only the last sibling may mutate sn.sys in place, and only it
// can observe refs==1, so a copy in progress (which decrements strictly
// after it completes) never races the handoff.
func (e *Engine) consume(sn *snapshot) *System {
	if sn.refs.CompareAndSwap(1, 0) {
		sys := sn.sys
		sn.sys = nil
		e.snapBytes.Add(-sn.bytes)
		return sys
	}
	sys := e.getSystem()
	sys.Restore(sn.sys)
	if sn.refs.Add(-1) == 0 {
		// Everyone copied (an ownership handoff raced and lost): recycle
		// the original.
		e.syspool.Put(sn.sys)
		sn.sys = nil
		e.snapBytes.Add(-sn.bytes)
	}
	return sys
}

// worker is one member of the pool: pop own work LIFO (depth-first), steal
// from a round-robin victim when dry, stop on exhaustion, target, violation
// or ctx expiry.
func (e *Engine) worker(ctx context.Context, self int) {
	for {
		if ctx.Err() != nil || e.violation.Load() != nil {
			return
		}
		it, ok := e.deques[self].pop()
		if !ok {
			it, ok = e.steal(self)
		}
		if !ok {
			if e.outstanding.Load() == 0 {
				return
			}
			time.Sleep(20 * time.Microsecond)
			continue
		}
		if e.cfg.Target > 0 && !e.claim() {
			// Target reached: put the item back for accounting symmetry
			// (outstanding stays consistent) and stop this worker.
			e.deques[self].push(it)
			return
		}
		e.explore(self, it)
	}
}

// claim reserves one run attempt against the target.
func (e *Engine) claim() bool {
	for {
		n := e.attempts.Load()
		if n >= e.cfg.Target {
			return false
		}
		if e.attempts.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// steal takes work from other workers' deques, round-robin from an atomic
// victim cursor (the same chunked-claim idiom internal/campaign uses for
// its run cursor).
func (e *Engine) steal(self int) (item, bool) {
	n := len(e.deques)
	start := int(e.victim.Add(1))
	for i := 0; i < n; i++ {
		v := (start + i) % n
		if v == self {
			continue
		}
		if batch, ok := e.deques[v].stealHalf(); ok {
			// Keep one, queue the rest locally.
			for _, it := range batch[1:] {
				e.deques[self].push(it)
			}
			return batch[0], true
		}
	}
	return item{}, false
}

// explore runs the schedule selected by it and pushes the sibling branches
// it discovers, handing each the checkpoint nearest its branch point.
func (e *Engine) explore(self int, it item) {
	r := e.run(it, nil, e.cfg.Prune)

	switch {
	case r.err != nil:
		v := e.capture(it.vec, r)
		e.violation.CompareAndSwap(nil, v)
		e.outstanding.Add(-1)
		return
	case r.pruned:
		e.pruned.Add(1)
	case r.slept:
		e.slept.Add(1)
	default:
		e.schedules.Add(1)
		if r.crashed {
			e.crashSchedules.Add(1)
		}
	}
	// CAS-max: a plain load/store pair lets a smaller concurrent maximum
	// overwrite a larger one.
	for d := int64(len(r.counts)); ; {
		cur := e.peakDepth.Load()
		if d <= cur || e.peakDepth.CompareAndSwap(cur, d) {
			break
		}
	}

	// Branch on every decision point past the explored prefix: choice 0 is
	// the schedule just run, alternatives are new schedules. A pruned run
	// still branches on the decisions before the prune point — those
	// states were first visits, inserted by this very run.
	pushed := int64(0)
	for i := len(it.vec); i < len(r.counts); i++ {
		pushed += int64(r.counts[i] - 1)
	}
	// Publish every checkpoint's reference count before any child that
	// carries it becomes stealable.
	for i := len(it.vec); i < len(r.counts); i++ {
		if sn := r.snaps[i-len(it.vec)]; sn != nil {
			sn.refs.Add(int32(r.counts[i] - 1))
		}
	}
	// One transition on the frontier gauge: this item becomes its children.
	// Split Add(pushed)/Add(-1) pairs let a concurrent Stats read observe
	// a torn intermediate value.
	e.outstanding.Add(pushed - 1)
	for i := len(it.vec); i < len(r.counts); i++ {
		sn := r.snaps[i-len(it.vec)]
		var cts []int
		if sn != nil {
			cts = r.counts[:sn.depth]
		}
		for c := r.counts[i] - 1; c >= 1; c-- {
			child := make([]int, i+1)
			copy(child, it.vec)
			child[i] = c
			e.deques[self].push(item{vec: child, snap: sn, counts: cts})
		}
	}
}

// runResult is the outcome of a single schedule execution.
type runResult struct {
	counts  []int // branching factor at each decision point (awake actions)
	fullVec []int // the choices actually taken, decision by decision
	// snaps[j] is the checkpoint children branching at decision
	// len(it.vec)+j resume from (nil: root replay); parallel to the new
	// suffix of counts.
	snaps   []*snapshot
	crashed bool
	pruned  bool
	slept   bool
	err     error
}

// run executes one schedule described by it (choice 0 assumed past the end
// of it.vec), resuming from it.snap when present. rec, when non-nil,
// captures every core step; recording runs always start from the root so
// the log covers the complete schedule. prune gates the visited-set check
// (the counterexample re-run disables it: the set is already populated and
// would cut the replay short — pruning never alters choices, so the
// replayed path is identical either way). The run's System storage comes
// from and returns to the engine's recycling pool.
func (e *Engine) run(it item, rec *replay.Log, prune bool) runResult {
	sc := &e.cfg.Scenario
	var res runResult
	var sleep []actionID
	var s *System
	decision := 0
	steps := 0
	base := 0
	switch {
	case rec != nil:
		sys, err := NewSystem(sc, rec)
		if err != nil {
			return runResult{err: err}
		}
		s = sys
	case it.snap != nil:
		sn := it.snap
		s = e.consume(sn)
		s.rec = nil
		decision = sn.depth
		steps = sn.steps
		base = sn.steps
		res.counts = append(res.counts, it.counts...)
		res.fullVec = append(res.fullVec, it.vec[:sn.depth]...)
		if len(sn.sleep) > 0 {
			sleep = append(sleep, sn.sleep...)
		}
		e.resumed.Add(1)
		e.replaySaved.Add(uint64(sn.steps))
	default:
		s = e.getSystem()
		s.Restore(e.initial)
		s.rec = nil
	}
	if rec == nil {
		defer func() { e.syspool.Put(s) }()
	}
	capture := rec == nil && !e.cfg.NoSnapshot
	var curSnap *snapshot
	newBranches := 0
	var h maphash.Hash
	h.SetSeed(e.seed)
	defer func() { e.steps.Add(uint64(steps - base)) }()

	for steps < sc.MaxSteps && s.now < sc.End {
		if decision >= sc.MaxDepth && len(sleep) == 0 {
			// Deterministic tail: the decision budget is spent and the
			// sleep set is empty (with choice forever 0 it can only
			// shrink), so every remaining choice is action 0 — no counts,
			// no prune inserts, no sleep bookkeeping. stepFirst applies
			// enabled()[0] without materializing the action list, and a
			// quiescent system short-circuits straight to the terminal
			// check (see System.quiescent for the argument).
			if !e.noQuiesce && s.quiescent() {
				break
			}
			if !s.stepFirst() {
				break
			}
			steps++
			if err := s.checkSafety(); err != nil {
				res.crashed = s.crashed
				res.err = err
				return res
			}
			continue
		}
		en := s.enabled()
		if len(en) == 0 {
			break
		}

		// Sleep-set filter: skip actions whose delivery order was already
		// covered by an explored sibling.
		awake := en
		if e.cfg.POR && len(sleep) > 0 {
			awake = awake[:0] // enabled()'s buffer; filter in place
			for _, a := range en {
				if a.kind == actFrame && sleeps(sleep, s.id(a)) {
					continue
				}
				awake = append(awake, a)
			}
			if len(awake) == 0 {
				res.slept = true
				res.crashed = s.crashed
				return res
			}
		}

		choice := 0
		if len(awake) > 1 && decision < sc.MaxDepth {
			if decision >= len(it.vec) {
				if prune {
					h.Reset()
					s.Fingerprint(&h)
					// The key is (state, sleep set, decision index). The
					// sleep set masks part of the subtree, so states
					// reached with different sleep sets must not merge;
					// the decision index bounds how deep the subtree may
					// still branch (MaxDepth counts decisions, not steps),
					// so a state first reached near the cap must not hide
					// a shallower re-entry that deserves deeper
					// exploration.
					key := h.Sum64() ^ sleepHash(e.seed, sleep) ^ proto.Mix64(uint64(decision))
					if !e.visited.insert(key) {
						// An equivalent exploration already branched here;
						// its children cover this subtree.
						res.pruned = true
						res.crashed = s.crashed
						return res
					}
				}
				// Checkpoint this branch point for the sibling children,
				// at the configured cadence and within the memory budget.
				// Skipped captures degrade the children to replaying from
				// curSnap (or the root) — never to wrong answers.
				if capture && newBranches%e.cfg.SnapshotEvery == 0 &&
					(e.cfg.SnapBudget == 0 || e.snapBytes.Load() < e.cfg.SnapBudget) {
					snapSys := e.getSystem()
					snapSys.Restore(s)
					snapSys.rec = nil
					sn := &snapshot{sys: snapSys, depth: decision, steps: steps}
					if len(sleep) > 0 {
						sn.sleep = append([]actionID(nil), sleep...)
					}
					sn.bytes = int64(sn.sys.sizeBytes())
					e.snapBytes.Add(sn.bytes)
					e.snapshots.Add(1)
					curSnap = sn
				}
				newBranches++
				res.snaps = append(res.snaps, curSnap)
			}
			res.counts = append(res.counts, len(awake))
			if decision < len(it.vec) {
				choice = it.vec[decision]
			}
			decision++
			if choice >= len(awake) {
				choice = len(awake) - 1
			}
			res.fullVec = append(res.fullVec, choice)
		}
		if choice >= len(awake) {
			choice = len(awake) - 1
		}
		chosen := awake[choice]

		// Sleep propagation: the explored earlier siblings join the set,
		// then everything dependent with the chosen action wakes up.
		if e.cfg.POR {
			if chosen.kind != actFrame {
				// Timers and the crash are dependent with everything.
				sleep = sleep[:0]
			} else {
				cid := s.id(chosen)
				for i := 0; i < choice; i++ {
					if a := awake[i]; a.kind == actFrame {
						sleep = append(sleep, s.id(a))
					}
				}
				kept := sleep[:0]
				for _, x := range sleep {
					if commutes(x, cid) {
						kept = append(kept, x)
					}
				}
				sleep = kept
			}
		}

		s.apply(chosen)
		steps++

		if err := s.checkSafety(); err != nil {
			res.crashed = s.crashed
			res.err = err
			return res
		}
	}
	// Deterministic settle: past the horizon the run continues without
	// branching — pending frames first, then the earliest timer — long
	// enough for any recovery the horizon truncated to complete. This keeps
	// the terminal liveness check honest at a bounded horizon: a node
	// falsely suspected just before End (a legal timer-vs-life-sign race
	// inside the skew window) needs up to a rejoin round to reintegrate,
	// and flagging that in-flight recovery would be a horizon artifact. A
	// genuinely stuck divergence survives any settle window and is still
	// reported. Frames-before-timers makes the suffix race-free: a pending
	// life sign always lands before the surveillance timer that would
	// falsely expire on it. A quiescent system skips the rest of the
	// settle: from the converged steady state the remaining steps are pure
	// life-sign cycling and cannot change the terminal verdict.
	settleEnd := sc.End.Add(sc.Settle)
	for steps < sc.MaxSteps && s.now < settleEnd {
		if !e.noQuiesce && s.quiescent() {
			break
		}
		if !s.stepFirst() {
			break
		}
		steps++
		if err := s.checkSafety(); err != nil {
			res.crashed = s.crashed
			res.err = err
			return res
		}
	}
	res.crashed = s.crashed
	res.err = s.checkTerminal()
	return res
}

// capture re-runs a violating schedule from the root with recording enabled
// and wraps it as a Violation. The re-run follows the exact same path even
// when the violating run was checkpoint-resumed: resumption reproduces the
// root-replay state by construction, pruning is off (it never alters
// choices, only cuts runs short) and the sleep-set evolution is a pure
// function of the prefix.
func (e *Engine) capture(vec []int, r runResult) *Violation {
	rec := &replay.Log{}
	rr := e.run(item{vec: vec}, rec, false)
	v := &Violation{Vec: rr.fullVec, Crashed: rr.crashed, Log: rec}
	if rr.err != nil {
		v.Msg = rr.err.Error()
	} else {
		// Should be unreachable: the replayed path is deterministic.
		v.Msg = fmt.Sprintf("violation vanished on recorded re-run (first seen: %v)", r.err)
	}
	return v
}

// passive reports whether delivering a frame of the type emits no
// queue-mutating command: every type except the failure-sign (the FDA
// answers a first copy with an eager re-diffusion request), the RHA
// vector (whose reception can abort and resend the local proposal) and
// gossip datagrams (pings and ping-reqs are answered with acks or
// forwarded probes).
func passive(t can.MsgType) bool {
	return t != can.TypeFDA && t != can.TypeRHA && t != can.TypeGossip
}

// commutes reports whether delivering the two pending frames in either
// order reaches the same state: different senders, different message
// identifiers (so neither delivery merges the other away) and both
// passive (their deliveries only update per-sender surveillance slots,
// chase the scan-timer minimum, and latch membership sets — all
// order-insensitive).
func commutes(x, y actionID) bool {
	return x.sender != y.sender && x.mid != y.mid &&
		passive(x.mid.Type) && passive(y.mid.Type)
}

// sleeps reports whether id is in the sleep set.
func sleeps(sleep []actionID, id actionID) bool {
	for _, x := range sleep {
		if x == id {
			return true
		}
	}
	return false
}

// sleepHash folds the sleep set order-independently into a 64-bit value.
// It is xor-ed into the visited key: a state reached with different sleep
// sets must not prune against itself — the sleep sets mask different
// subtrees, and merging them is the classic sleep-set/state-caching
// unsoundness.
func sleepHash(seed maphash.Seed, sleep []actionID) uint64 {
	var acc uint64
	var h maphash.Hash
	for _, x := range sleep {
		h.SetSeed(seed)
		proto.HashU64(&h, uint64(x.sender))
		proto.HashU64(&h, uint64(x.mid.Encode()))
		proto.HashBool(&h, x.rtr)
		proto.HashU64(&h, uint64(x.payLen))
		proto.HashU64(&h, x.pay)
		acc ^= proto.Mix64(h.Sum64())
	}
	return acc
}

// deque is one worker's frontier shard: a mutex-protected stack. The owner
// pushes and pops at the tail (LIFO keeps the walk depth-first, bounding
// the frontier); thieves take half from the head, where the shallowest —
// largest — subtrees sit.
type deque struct {
	mu    sync.Mutex
	items []item
}

func (d *deque) push(it item) {
	d.mu.Lock()
	d.items = append(d.items, it)
	d.mu.Unlock()
}

func (d *deque) pop() (item, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return item{}, false
	}
	it := d.items[n-1]
	d.items[n-1] = item{}
	d.items = d.items[:n-1]
	return it, true
}

// stealHalf removes the older half of the stack (at least one item).
func (d *deque) stealHalf() ([]item, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return nil, false
	}
	take := (n + 1) / 2
	batch := make([]item, take)
	copy(batch, d.items[:take])
	kept := copy(d.items, d.items[take:])
	for i := kept; i < n; i++ {
		d.items[i] = item{} // drop stale references
	}
	d.items = d.items[:kept]
	return batch, true
}

// visitedSet is the sharded distinct-state set. Shards are selected by the
// key's low bits; each shard is an independently locked map, so concurrent
// inserts from the worker pool rarely contend.
type visitedSet struct {
	shards [64]visitedShard
	size   atomic.Uint64
}

type visitedShard struct {
	mu   sync.Mutex
	keys map[uint64]struct{}
	_    [40]byte // keep neighbouring shards off one cache line
}

func (v *visitedSet) init() {
	for i := range v.shards {
		v.shards[i].keys = make(map[uint64]struct{})
	}
}

// insert adds key and reports whether it was new.
func (v *visitedSet) insert(key uint64) bool {
	sh := &v.shards[key&63]
	sh.mu.Lock()
	_, dup := sh.keys[key]
	if !dup {
		sh.keys[key] = struct{}{}
	}
	sh.mu.Unlock()
	if !dup {
		v.size.Add(1)
	}
	return !dup
}
