package federation_test

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
	"canely/internal/federation"
	"canely/internal/fptest"
	"canely/internal/sim"
)

func at(ms int) sim.Time { return sim.Time(time.Duration(ms) * time.Millisecond) }

// TestCoreFingerprint drives a gateway core through its event surface:
// local view feeds, bootstrap, remote digests, leader suppression, the
// periodic announce and the staleness scan all perturb the hash;
// re-delivered digests and own-echo frames do not.
func TestCoreFingerprint(t *testing.T) {
	cfg := federation.Config{
		Gateway: 1,
		Locals:  can.MakeSet(0),
		Tann:    10 * time.Millisecond,
		Tstale:  40 * time.Millisecond,
	}
	fresh := func() fptest.Core {
		c, err := federation.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	digest := func(seg can.NodeID, gw can.NodeID, view can.NodeSet, ms int) proto.Event {
		return proto.Event{Kind: proto.EvDataInd, MID: can.FedDigestSign(seg, gw), At: at(ms)}.WithPayload(view.Bytes())
	}
	fptest.Check(t, fresh, []fptest.Step{
		{Name: "local segment view", Ev: proto.Event{Kind: proto.EvFedLocalView, Node: 0, View: can.MakeSet(0, 1), At: at(0)}, Mutates: true},
		{Name: "bootstrap", Ev: proto.Event{Kind: proto.EvBootstrap, View: can.MakeSet(0, 2), At: at(0)}, Mutates: true},
		{Name: "remote digest", Ev: digest(2, 5, can.MakeSet(3, 4), 5), Mutates: true},
		{Name: "re-delivered digest", Ev: digest(2, 5, can.MakeSet(3, 4), 5)},
		{Name: "own echo ignored", Ev: digest(2, 1, can.MakeSet(9), 5)},
		{Name: "leader suppression", Ev: digest(0, 0, can.MakeSet(0, 1), 5), Mutates: true},
		{Name: "announce past suppression", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFedAnnounce, At: at(30)}, Mutates: true},
		{Name: "staleness scan expels silent segment", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFedScan, At: at(45)}, Mutates: true},
	})
}

// TestCoreClone checks the gateway core's Clone contract over the same
// digest/announce/scan machinery.
func TestCoreClone(t *testing.T) {
	cfg := federation.Config{
		Gateway: 1,
		Locals:  can.MakeSet(0),
		Tann:    10 * time.Millisecond,
		Tstale:  40 * time.Millisecond,
	}
	fresh := func() fptest.Core {
		c, err := federation.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	digest := func(seg can.NodeID, gw can.NodeID, view can.NodeSet, ms int) proto.Event {
		return proto.Event{Kind: proto.EvDataInd, MID: can.FedDigestSign(seg, gw), At: at(ms)}.WithPayload(view.Bytes())
	}
	fptest.CheckClone(t, fresh,
		func(c fptest.Core) fptest.Core { return c.(*federation.Core).Clone() },
		[]fptest.Step{
			{Name: "local segment view", Ev: proto.Event{Kind: proto.EvFedLocalView, Node: 0, View: can.MakeSet(0, 1), At: at(0)}, Mutates: true},
			{Name: "bootstrap", Ev: proto.Event{Kind: proto.EvBootstrap, View: can.MakeSet(0, 2), At: at(0)}, Mutates: true},
			{Name: "remote digest", Ev: digest(2, 5, can.MakeSet(3, 4), 5), Mutates: true},
			{Name: "leader suppression", Ev: digest(0, 0, can.MakeSet(0, 1), 5), Mutates: true},
			{Name: "announce past suppression", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFedAnnounce, At: at(30)}, Mutates: true},
			{Name: "staleness scan expels silent segment", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFedScan, At: at(45)}, Mutates: true},
		})
}
