// Package federation implements the hierarchical membership layer of a
// multi-segment CANELy site. A single CAN bus tops out at a few dozen
// nodes, so a production-scale site is a federation of segments joined by
// gateways; per-segment CANELy membership (internal/core/membership) runs
// unchanged inside every segment, and this layer agrees on which *segments*
// are alive — the cross-segment site view.
//
// The mechanism is digest exchange. Every gateway periodically announces a
// digest for each segment it is attached to: a TypeFed data frame
// mid = {FED, segment, gateway} whose 8-byte payload is the segment's
// current membership view as a NodeSet. Digests travel over the backbone
// medium that interconnects the gateways (or, for a dual-homed gateway
// bridging two segments directly, stay local). A segment is in the site
// view while a fresh, non-empty digest for it exists; a segment whose
// digests stop — its gateways crashed, or it was partitioned off the
// backbone — is removed after the staleness bound Tstale, exactly like a
// silent node is removed by the failure detector inside a segment.
//
// Redundant gateways on one segment coordinate by leader suppression: a
// gateway that hears a digest for its own segment from a lower-numbered
// gateway stays silent for a suppression window (2·Tann). When the leader
// crashes its digests stop, the window lapses, and the backup resumes
// announcing within 2·Tann + Tann — which is why Validate requires
// Tstale ≥ 4·Tann: remote segments must ride through a failover without a
// false removal.
//
// Core is written in the same sans-I/O Step(Event) []Command style as the
// other protocol cores: it is pure, comparable-value-typed and replayable
// by internal/replay. The runtime binding (internal/gateway) pumps local
// segment views in as EvFedLocalView, received backbone frames as
// EvDataInd, and executes the digest transmissions, timers and site
// notifications the core emits.
package federation

import (
	"fmt"
	"hash/maphash"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
	"canely/internal/sim"
)

// suppressPeriods is the leader-suppression window in announce periods: a
// backup gateway stays silent for this long after hearing a lower-numbered
// gateway announce its segment.
const suppressPeriods = 2

// Config parameterizes one gateway's federation core.
type Config struct {
	// Gateway is the federation-wide gateway identity: the source of this
	// core's digests and the tiebreaker for leader suppression (lower id
	// announces).
	Gateway can.NodeID `json:"gateway"`
	// Locals is the set of segment ids this gateway is attached to and
	// responsible for announcing.
	Locals can.NodeSet `json:"locals"`
	// Tann is the digest announcement period.
	Tann time.Duration `json:"tann"`
	// Tstale is the staleness bound: a remote segment unheard for Tstale is
	// removed from the site view. Must be at least 4·Tann so a gateway
	// failover (suppression window plus one announce period) cannot cause a
	// false removal.
	Tstale time.Duration `json:"tstale"`
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if !c.Gateway.Valid() {
		return fmt.Errorf("federation: invalid gateway id %d", c.Gateway)
	}
	if c.Tann <= 0 {
		return fmt.Errorf("federation: announce period Tann must be positive, got %v", c.Tann)
	}
	if c.Tstale < 4*c.Tann {
		return fmt.Errorf("federation: staleness bound Tstale=%v must be at least 4*Tann=%v to ride through gateway failover",
			c.Tstale, 4*c.Tann)
	}
	return nil
}

// Core is the federation membership protocol core at one gateway. It is
// pure: all I/O flows through proto Events and Commands.
type Core struct {
	cfg Config

	booted bool
	// site is the current cross-segment site view: the set of segments
	// believed alive.
	site can.NodeSet
	// members holds the last known membership view per segment — fed by
	// EvFedLocalView for local segments, by digests for remote ones.
	members [can.MaxNodes]can.NodeSet

	// deadlines is indexed by segment id; armed is the set of remote
	// segments under staleness surveillance. One scan timer chases the
	// earliest deadline, exactly like the failure detector's.
	deadlines   [can.MaxNodes]sim.Time
	armed       can.NodeSet
	scanAt      sim.Time
	scanPending bool

	// suppressUntil implements leader suppression per local segment.
	suppressUntil [can.MaxNodes]sim.Time

	// announced counts digest transmissions for the bandwidth experiments.
	announced int
}

// New creates the federation core for one gateway.
func New(cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Core{cfg: cfg}, nil
}

// Clone returns an independent deep copy of the core.
func (c *Core) Clone() *Core {
	d := *c
	return &d
}

// Step consumes one event and returns a fresh command slice (nil when the
// event produced no action). Compatibility wrapper over StepInto.
func (c *Core) Step(ev proto.Event) []proto.Command {
	var buf proto.CommandBuf
	c.StepInto(ev, &buf)
	return buf.Commands()
}

// StepInto consumes one event, appending the resulting commands to buf.
func (c *Core) StepInto(ev proto.Event, buf *proto.CommandBuf) {
	switch ev.Kind {
	case proto.EvBootstrap:
		c.bootstrap(ev.View, ev.At, buf)
	case proto.EvFedLocalView:
		c.localView(ev.Node, ev.View, ev.At, buf)
	case proto.EvDataInd:
		if ev.MID.Type == can.TypeFed {
			c.digest(ev.MID, ev.At, ev.Payload(), buf)
		}
	case proto.EvTimerFired:
		switch ev.Timer {
		case proto.TimerFedAnnounce:
			c.announce(ev.At, buf)
		case proto.TimerFedScan:
			c.scan(ev.At, buf)
		}
	}
}

// SiteView returns the current cross-segment site view.
func (c *Core) SiteView() can.NodeSet { return c.site }

// Fingerprint writes the core's complete mutable state into h. Member
// views and suppression windows are sparse per-segment arrays, folded
// order-independently over their non-zero slots; a staleness deadline is
// meaningful only while its armed bit is set, and scanAt only while the
// scan timer is pending.
func (c *Core) Fingerprint(h *maphash.Hash) {
	proto.HashU64(h, uint64(c.cfg.Gateway))
	proto.HashBool(h, c.booted)
	proto.HashU64(h, uint64(c.site))
	var acc uint64
	for i, m := range c.members {
		if m != can.EmptySet {
			acc ^= proto.MixPair(uint64(i), uint64(m))
		}
	}
	proto.HashU64(h, acc)
	proto.HashU64(h, uint64(c.armed))
	for s := c.armed; !s.Empty(); {
		seg := s.Lowest()
		s = s.Remove(seg)
		proto.HashU64(h, uint64(c.deadlines[seg]))
	}
	proto.HashBool(h, c.scanPending)
	if c.scanPending {
		proto.HashU64(h, uint64(c.scanAt))
	}
	acc = 0
	for i, until := range c.suppressUntil {
		if until != 0 {
			acc ^= proto.MixPair(uint64(i), uint64(until))
		}
	}
	proto.HashU64(h, acc)
	proto.HashU64(h, uint64(c.announced))
}

// Members returns the last known membership view of a segment.
func (c *Core) Members(seg can.NodeID) can.NodeSet {
	if !seg.Valid() {
		return can.EmptySet
	}
	return c.members[seg]
}

// Booted reports whether the core has been bootstrapped.
func (c *Core) Booted() bool { return c.booted }

// Announced returns the number of digest transmissions requested.
func (c *Core) Announced() int { return c.announced }

// bootstrap installs the pre-agreed initial site view and starts the
// announce cycle. Remote segments in the initial view get a full staleness
// grace; local segments are announced immediately. Drivers must bootstrap
// the per-segment member stacks first so the local views announced here are
// non-empty.
func (c *Core) bootstrap(site can.NodeSet, at sim.Time, buf *proto.CommandBuf) {
	if c.booted {
		return
	}
	c.booted = true
	c.site = site
	for s := site.Diff(c.cfg.Locals); !s.Empty(); {
		seg := s.Lowest()
		s = s.Remove(seg)
		c.arm(seg, at, buf)
	}
	c.announceLocals(at, buf)
	buf.Put(proto.SetTimer(proto.TimerFedAnnounce, sim.Duration(c.cfg.Tann)))
}

// localView absorbs a segment-local membership view (EvFedLocalView). A
// non-empty view keeps or puts the segment in the site; a view that became
// empty — every member of the local segment crashed — removes it at once
// (remote gateways remove it by staleness when its digests stop). Changes
// are announced immediately so cross-segment convergence is event-driven,
// not just periodic.
func (c *Core) localView(seg can.NodeID, view can.NodeSet, at sim.Time, buf *proto.CommandBuf) {
	if !seg.Valid() || !c.cfg.Locals.Contains(seg) {
		return
	}
	changed := c.members[seg] != view
	c.members[seg] = view
	if !c.booted {
		return
	}
	switch {
	case !view.Empty() && !c.site.Contains(seg):
		c.updateSite(c.site.Add(seg), can.EmptySet, buf)
	case view.Empty() && c.site.Contains(seg):
		c.updateSite(c.site.Remove(seg), can.MakeSet(seg), buf)
	}
	if changed && !view.Empty() && at >= c.suppressUntil[seg] {
		c.emitDigest(seg, buf)
	}
}

// digest absorbs a TypeFed frame from another gateway. For a local segment
// it only feeds leader suppression; for a remote segment it refreshes the
// staleness deadline and (re)admits the segment to the site view. Empty and
// malformed payloads are ignored: a live segment always has members, so an
// announced view is never empty.
func (c *Core) digest(mid can.MID, at sim.Time, payload []byte, buf *proto.CommandBuf) {
	seg := can.NodeID(mid.Param)
	if !seg.Valid() || mid.Src == c.cfg.Gateway {
		return
	}
	view, err := can.SetFromBytes(payload)
	if err != nil || view.Empty() {
		return
	}
	if c.cfg.Locals.Contains(seg) {
		if mid.Src < c.cfg.Gateway {
			c.suppressUntil[seg] = at.Add(suppressPeriods * sim.Duration(c.cfg.Tann))
		}
		return
	}
	c.members[seg] = view
	if !c.booted {
		return
	}
	c.arm(seg, at, buf)
	if !c.site.Contains(seg) {
		c.updateSite(c.site.Add(seg), can.EmptySet, buf)
	}
}

// announce fires the periodic digest cycle for every local segment and
// re-arms the announce timer.
func (c *Core) announce(at sim.Time, buf *proto.CommandBuf) {
	if !c.booted {
		return
	}
	c.announceLocals(at, buf)
	buf.Put(proto.SetTimer(proto.TimerFedAnnounce, sim.Duration(c.cfg.Tann)))
}

// announceLocals emits one digest per local segment with a non-empty,
// unsuppressed view.
func (c *Core) announceLocals(at sim.Time, buf *proto.CommandBuf) {
	for s := c.cfg.Locals; !s.Empty(); {
		seg := s.Lowest()
		s = s.Remove(seg)
		if c.members[seg].Empty() || at < c.suppressUntil[seg] {
			continue
		}
		c.emitDigest(seg, buf)
	}
}

// emitDigest traces and queues one digest transmission.
func (c *Core) emitDigest(seg can.NodeID, buf *proto.CommandBuf) {
	c.announced++
	buf.Put(proto.TraceFedDigest(seg, c.members[seg]))
	buf.Put(proto.SendData(can.FedDigestSign(seg, c.cfg.Gateway), c.members[seg].Bytes()))
}

// arm (re)starts staleness surveillance of a remote segment and keeps the
// scan-timer invariant (a pending timer no later than the earliest armed
// deadline — the detector's chasing-minimum pattern).
func (c *Core) arm(seg can.NodeID, at sim.Time, buf *proto.CommandBuf) {
	c.deadlines[seg] = at.Add(sim.Duration(c.cfg.Tstale))
	c.armed = c.armed.Add(seg)
	c.ensureScan(c.deadlines[seg], at, buf)
}

// ensureScan keeps a scan timer pending no later than the given deadline.
func (c *Core) ensureScan(at, now sim.Time, buf *proto.CommandBuf) {
	if c.scanPending && c.scanAt <= at {
		return
	}
	c.scanAt = at
	c.scanPending = true
	buf.Put(proto.SetTimer(proto.TimerFedScan, at.Sub(now)))
}

// scan removes remote segments whose digests went stale and re-arms at the
// earliest remaining deadline.
func (c *Core) scan(now sim.Time, buf *proto.CommandBuf) {
	c.scanPending = false
	var expired can.NodeSet
	next := sim.Never
	for s := c.armed; !s.Empty(); {
		seg := s.Lowest()
		s = s.Remove(seg)
		if dl := c.deadlines[seg]; dl <= now {
			expired = expired.Add(seg)
		} else if dl < next {
			next = dl
		}
	}
	c.armed = c.armed.Diff(expired)
	if !expired.Empty() {
		for s := expired; !s.Empty(); {
			seg := s.Lowest()
			s = s.Remove(seg)
			buf.Put(proto.TraceSegmentStale(seg))
		}
		failed := expired.Intersect(c.site)
		if !failed.Empty() {
			c.updateSite(c.site.Diff(failed), failed, buf)
		}
	}
	if next != sim.Never {
		c.ensureScan(next, now, buf)
	}
}

// updateSite installs a new site view and notifies the application.
func (c *Core) updateSite(site, failed can.NodeSet, buf *proto.CommandBuf) {
	old := c.site
	c.site = site
	buf.Put(proto.TraceSiteChange(old, site))
	buf.Put(proto.NotifySite(site, failed))
}
