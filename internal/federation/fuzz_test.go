package federation

// FuzzFederationCore drives a three-gateway federation — gateway 0 owning
// segment 0, gateways 1 and 2 redundantly owning segment 1 — through
// arbitrary interleavings of time, digest delivery, digest loss, gateway
// crashes and local membership churn. Because the cores are sans-I/O the
// fuzzer needs no bus: a minimal binding per gateway tracks the two logical
// timers and collects outgoing digests, and the fuzz ops decide which of
// them are delivered where.
//
// Checked invariants:
//
//   - Step never panics and never arms a non-positive timer delay.
//   - A gateway's own live segment (non-empty local view) is always in its
//     own site view once bootstrapped.
//   - Agreement: after the fault-free stabilization epilogue (3·Tstale of
//     lockstep announce/deliver rounds), every surviving gateway holds the
//     same site view, and that view is exactly the set of segments that
//     still have a live gateway and a non-empty membership view — no two
//     live segments disagree on a stabilized site view.

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
	"canely/internal/sim"
)

const (
	fuzzTann   = 10 * time.Millisecond
	fuzzTstale = 40 * time.Millisecond
)

// fedBinding is a minimal timer-and-outbox binding over one pure core.
type fedBinding struct {
	core  *Core
	alive bool
	now   sim.Time

	announceAt    sim.Time
	announceArmed bool
	scanAt        sim.Time
	scanArmed     bool

	// out collects emitted digests until a fuzz op delivers or drops them.
	out []proto.Command
}

func newFedBinding(t *testing.T, gw can.NodeID, locals ...can.NodeID) *fedBinding {
	t.Helper()
	core, err := New(Config{Gateway: gw, Locals: can.MakeSet(locals...), Tann: fuzzTann, Tstale: fuzzTstale})
	if err != nil {
		t.Fatal(err)
	}
	return &fedBinding{core: core, alive: true}
}

func (b *fedBinding) step(t *testing.T, ev proto.Event) {
	t.Helper()
	ev.At = b.now
	for _, c := range b.core.Step(ev) {
		switch c.Kind {
		case proto.CmdSetTimer:
			if c.Delay <= 0 {
				t.Fatalf("non-positive timer delay in %v (event %v)", c, ev)
			}
			switch c.Timer {
			case proto.TimerFedAnnounce:
				b.announceAt, b.announceArmed = b.now.Add(c.Delay), true
			case proto.TimerFedScan:
				b.scanAt, b.scanArmed = b.now.Add(c.Delay), true
			}
		case proto.CmdCancelTimer:
			switch c.Timer {
			case proto.TimerFedAnnounce:
				b.announceArmed = false
			case proto.TimerFedScan:
				b.scanArmed = false
			}
		case proto.CmdSendData:
			b.out = append(b.out, c)
		}
	}
}

// advance moves the binding's clock to the target instant, firing due
// timers in deadline order.
func (b *fedBinding) advance(t *testing.T, to sim.Time) {
	for b.alive {
		next, timer := sim.Never, proto.TimerFedAnnounce
		if b.announceArmed && b.announceAt < next {
			next, timer = b.announceAt, proto.TimerFedAnnounce
		}
		if b.scanArmed && b.scanAt < next {
			next, timer = b.scanAt, proto.TimerFedScan
		}
		if next > to {
			break
		}
		b.now = next
		if timer == proto.TimerFedAnnounce {
			b.announceArmed = false
		} else {
			b.scanArmed = false
		}
		b.step(t, proto.Event{Kind: proto.EvTimerFired, Timer: timer})
	}
	if to > b.now {
		b.now = to
	}
}

// flush delivers the binding's pending digests to every other live binding
// and clears the outbox.
func (b *fedBinding) flush(t *testing.T, others []*fedBinding) {
	for _, c := range b.out {
		for _, o := range others {
			if o == b || !o.alive {
				continue
			}
			o.step(t, proto.Event{Kind: proto.EvDataInd, MID: c.MID}.WithPayload(c.Payload()))
		}
	}
	b.out = nil
}

func FuzzFederationCore(f *testing.F) {
	f.Add([]byte{0, 20, 1, 0, 2, 0, 3, 0, 0, 50})       // settle, exchange, settle
	f.Add([]byte{7, 0, 0, 60, 2, 0, 3, 0})              // crash the segment-1 leader
	f.Add([]byte{9, 0, 0, 30, 1, 0, 9, 7, 0, 30, 1, 0}) // segment-1 churn incl. death
	f.Add([]byte{4, 0, 0, 90, 6, 0, 8, 0, 0, 90, 1, 0}) // losses + backup crash
	f.Fuzz(func(t *testing.T, data []byte) {
		a := newFedBinding(t, 0, 0) // sole gateway of segment 0
		b := newFedBinding(t, 1, 1) // segment-1 leader
		c := newFedBinding(t, 2, 1) // segment-1 backup
		all := []*fedBinding{a, b, c}

		seg0 := can.MakeSet(0, 1, 2)
		seg1 := can.MakeSet(3, 4)
		a.step(t, proto.Event{Kind: proto.EvFedLocalView, Node: 0, View: seg0})
		b.step(t, proto.Event{Kind: proto.EvFedLocalView, Node: 1, View: seg1})
		c.step(t, proto.Event{Kind: proto.EvFedLocalView, Node: 1, View: seg1})
		site := can.MakeSet(0, 1)
		for _, x := range all {
			x.step(t, proto.Event{Kind: proto.EvBootstrap, View: site})
		}

		now := sim.Time(0)
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 10 {
			case 0: // advance global time, firing due timers everywhere
				now = now.Add(time.Duration(arg%100+1) * time.Millisecond)
				for _, x := range all {
					x.advance(t, now)
				}
			case 1:
				a.flush(t, all)
			case 2:
				b.flush(t, all)
			case 3:
				c.flush(t, all)
			case 4:
				a.out = nil // backbone loss
			case 5:
				b.out = nil
			case 6:
				c.out = nil
			case 7:
				b.alive = false
			case 8:
				c.alive = false
			case 9:
				// Segment-1 membership churn, applied consistently at both
				// of its gateways. arg==7 empties the view: segment death.
				view := can.NodeSet(uint64(arg%8)) << 3
				for _, x := range []*fedBinding{b, c} {
					if x.alive {
						x.step(t, proto.Event{Kind: proto.EvFedLocalView, Node: 1, View: view})
					}
					x.core.members[1] = view // keep a crashed gateway's record coherent
				}
				seg1 = view
			}
			// Local liveness invariant: a bootstrapped gateway always keeps
			// its own live segment in its own site view.
			if a.alive && !seg0.Empty() && !a.core.SiteView().Contains(0) {
				t.Fatalf("gateway 0 lost its own live segment: site=%v", a.core.SiteView())
			}
			for _, x := range []*fedBinding{b, c} {
				if x.alive && !seg1.Empty() && !x.core.SiteView().Contains(1) {
					t.Fatalf("gateway %v lost its own live segment: site=%v",
						x.core.cfg.Gateway, x.core.SiteView())
				}
			}
		}

		// Stabilization epilogue: fault-free lockstep rounds long enough to
		// drain suppression windows and staleness deadlines.
		for r := 0; r < int(3*fuzzTstale/fuzzTann); r++ {
			now = now.Add(fuzzTann)
			for _, x := range all {
				x.advance(t, now)
			}
			for _, x := range all {
				if x.alive {
					x.flush(t, all)
				} else {
					x.out = nil
				}
			}
		}

		var want can.NodeSet
		if a.alive && !seg0.Empty() {
			want = want.Add(0)
		}
		if (b.alive || c.alive) && !seg1.Empty() {
			want = want.Add(1)
		}
		for _, x := range all {
			if !x.alive {
				continue
			}
			if got := x.core.SiteView(); got != want {
				t.Fatalf("stabilized site view of gateway %v = %v, want %v (alive: a=%t b=%t c=%t seg0=%v seg1=%v)",
					x.core.cfg.Gateway, got, want, a.alive, b.alive, c.alive, seg0, seg1)
			}
		}
	})
}
