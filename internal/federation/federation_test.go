package federation

import (
	"strings"
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
	"canely/internal/sim"
)

func testConfig(gw can.NodeID, locals ...can.NodeID) Config {
	return Config{
		Gateway: gw,
		Locals:  can.MakeSet(locals...),
		Tann:    10 * time.Millisecond,
		Tstale:  40 * time.Millisecond,
	}
}

func mustCore(t *testing.T, cfg Config) *Core {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func at(ms int64) sim.Time { return sim.Time(0).Add(time.Duration(ms) * time.Millisecond) }

// kinds extracts the command-kind sequence for compact assertions.
func kinds(cmds []proto.Command) []proto.CommandKind {
	var ks []proto.CommandKind
	for _, c := range cmds {
		ks = append(ks, c.Kind)
	}
	return ks
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(0, 0)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Gateway = 99
	if err := bad.Validate(); err == nil {
		t.Error("invalid gateway id accepted")
	}
	bad = good
	bad.Tann = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero Tann accepted")
	}
	bad = good
	bad.Tstale = 3 * good.Tann
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "failover") {
		t.Errorf("Tstale < 4*Tann accepted (err=%v)", err)
	}
}

// TestBootstrapAnnouncesAndArms pins the bootstrap command stream: one
// digest per local segment with a known view, the announce timer, and a
// staleness scan for the remote segments of the initial site.
func TestBootstrapAnnouncesAndArms(t *testing.T) {
	c := mustCore(t, testConfig(0, 0))
	// Local view arrives before bootstrap (the documented driver order).
	if cmds := c.Step(proto.Event{Kind: proto.EvFedLocalView, Node: 0, View: can.MakeSet(0, 1, 2)}); cmds != nil {
		t.Fatalf("pre-boot local view emitted commands: %v", cmds)
	}
	cmds := c.Step(proto.Event{Kind: proto.EvBootstrap, At: at(0), View: can.MakeSet(0, 1)})
	want := []proto.CommandKind{
		proto.CmdSetTimer,                 // staleness scan for remote segment 1
		proto.CmdTrace, proto.CmdSendData, // digest for local segment 0
		proto.CmdSetTimer, // announce period
	}
	got := kinds(cmds)
	if len(got) != len(want) {
		t.Fatalf("bootstrap commands: got %v", cmds)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bootstrap command %d = %v, want %v (full: %v)", i, got[i], want[i], cmds)
		}
	}
	dig := cmds[2]
	if dig.MID != can.FedDigestSign(0, 0) {
		t.Errorf("digest mid = %v", dig.MID)
	}
	view, err := can.SetFromBytes(dig.Payload())
	if err != nil || view != can.MakeSet(0, 1, 2) {
		t.Errorf("digest payload view = %v (err=%v)", view, err)
	}
	if c.SiteView() != can.MakeSet(0, 1) {
		t.Errorf("site after bootstrap = %v", c.SiteView())
	}
}

// TestPeriodicAnnounceRearms pins the announce cycle: digest plus re-armed
// timer at every expiry, and nothing for a local segment with an empty view.
func TestPeriodicAnnounceRearms(t *testing.T) {
	c := mustCore(t, testConfig(0, 0))
	c.Step(proto.Event{Kind: proto.EvFedLocalView, Node: 0, View: can.MakeSet(0, 1)})
	c.Step(proto.Event{Kind: proto.EvBootstrap, At: at(0), View: can.MakeSet(0)})
	cmds := c.Step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFedAnnounce, At: at(10)})
	got := kinds(cmds)
	want := []proto.CommandKind{proto.CmdTrace, proto.CmdSendData, proto.CmdSetTimer}
	if len(got) != len(want) || got[1] != proto.CmdSendData || got[2] != proto.CmdSetTimer {
		t.Fatalf("announce cycle commands: %v", cmds)
	}
	if cmds[2].Delay != 10*time.Millisecond {
		t.Errorf("announce re-arm delay = %v", cmds[2].Delay)
	}
	// An empty local view (every member crashed) stops the digests and
	// removes the segment from the local site view at once.
	cmds = c.Step(proto.Event{Kind: proto.EvFedLocalView, Node: 0, View: can.EmptySet, At: at(15)})
	var sawNotify bool
	for _, cmd := range cmds {
		if cmd.Kind == proto.CmdNotifySite {
			sawNotify = true
			if cmd.Failed != can.MakeSet(0) || cmd.Active != can.EmptySet {
				t.Errorf("empty-view site change: %v", cmd)
			}
		}
	}
	if !sawNotify {
		t.Fatalf("empty local view did not notify: %v", cmds)
	}
	cmds = c.Step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFedAnnounce, At: at(20)})
	for _, cmd := range cmds {
		if cmd.Kind == proto.CmdSendData {
			t.Fatalf("digest announced for an empty segment view: %v", cmds)
		}
	}
}

// TestDigestAdmitsAndStalenessRemoves walks the remote-segment lifecycle:
// a fresh digest admits the segment to the site view, silence beyond
// Tstale removes it, and a later digest re-admits it.
func TestDigestAdmitsAndStalenessRemoves(t *testing.T) {
	c := mustCore(t, testConfig(0, 0))
	c.Step(proto.Event{Kind: proto.EvFedLocalView, Node: 0, View: can.MakeSet(0)})
	c.Step(proto.Event{Kind: proto.EvBootstrap, At: at(0), View: can.MakeSet(0)})

	dig := proto.Event{Kind: proto.EvDataInd, At: at(5), MID: can.FedDigestSign(3, 6)}.
		WithPayload(can.MakeSet(10, 11).Bytes())
	cmds := c.Step(dig)
	if c.SiteView() != can.MakeSet(0, 3) {
		t.Fatalf("site after digest = %v (cmds %v)", c.SiteView(), cmds)
	}
	if c.Members(3) != can.MakeSet(10, 11) {
		t.Errorf("segment 3 members = %v", c.Members(3))
	}
	var scanDelay time.Duration
	for _, cmd := range cmds {
		if cmd.Kind == proto.CmdSetTimer && cmd.Timer == proto.TimerFedScan {
			scanDelay = cmd.Delay
		}
	}
	if scanDelay != 40*time.Millisecond {
		t.Fatalf("staleness scan delay = %v, want Tstale", scanDelay)
	}

	// Silence: the scan fires at the deadline and removes the segment.
	cmds = c.Step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFedScan, At: at(45)})
	if c.SiteView() != can.MakeSet(0) {
		t.Fatalf("site after staleness = %v (cmds %v)", c.SiteView(), cmds)
	}
	var sawNotify bool
	for _, cmd := range cmds {
		if cmd.Kind == proto.CmdNotifySite {
			sawNotify = true
			if cmd.Failed != can.MakeSet(3) {
				t.Errorf("staleness notify failed = %v", cmd.Failed)
			}
		}
	}
	if !sawNotify {
		t.Fatalf("staleness removal did not notify: %v", cmds)
	}

	// The segment heals: a new digest re-admits it.
	c.Step(proto.Event{Kind: proto.EvDataInd, At: at(50), MID: can.FedDigestSign(3, 6)}.
		WithPayload(can.MakeSet(10).Bytes()))
	if c.SiteView() != can.MakeSet(0, 3) {
		t.Fatalf("site after re-admission = %v", c.SiteView())
	}
}

// TestEmptyAndMalformedDigestsIgnored: a live segment always has members,
// so empty or short payloads must not perturb the site view.
func TestEmptyAndMalformedDigestsIgnored(t *testing.T) {
	c := mustCore(t, testConfig(0, 0))
	c.Step(proto.Event{Kind: proto.EvFedLocalView, Node: 0, View: can.MakeSet(0)})
	c.Step(proto.Event{Kind: proto.EvBootstrap, At: at(0), View: can.MakeSet(0)})
	if cmds := c.Step(proto.Event{Kind: proto.EvDataInd, At: at(1), MID: can.FedDigestSign(2, 5)}.
		WithPayload(can.EmptySet.Bytes())); cmds != nil {
		t.Errorf("empty digest produced commands: %v", cmds)
	}
	if cmds := c.Step(proto.Event{Kind: proto.EvDataInd, At: at(1), MID: can.FedDigestSign(2, 5)}.
		WithPayload([]byte{1, 2})); cmds != nil {
		t.Errorf("short digest produced commands: %v", cmds)
	}
	if c.SiteView() != can.MakeSet(0) {
		t.Errorf("site perturbed by ignorable digests: %v", c.SiteView())
	}
}

// TestLeaderSuppressionAndFailover: a backup gateway stays silent while a
// lower-numbered gateway announces its segment, and resumes within the
// suppression window after the leader goes silent.
func TestLeaderSuppressionAndFailover(t *testing.T) {
	backup := mustCore(t, testConfig(1, 0))
	backup.Step(proto.Event{Kind: proto.EvFedLocalView, Node: 0, View: can.MakeSet(0, 1)})
	backup.Step(proto.Event{Kind: proto.EvBootstrap, At: at(0), View: can.MakeSet(0)})

	// The leader's digest for the shared segment suppresses the backup.
	backup.Step(proto.Event{Kind: proto.EvDataInd, At: at(1), MID: can.FedDigestSign(0, 0)}.
		WithPayload(can.MakeSet(0, 1).Bytes()))
	cmds := backup.Step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFedAnnounce, At: at(10)})
	for _, cmd := range cmds {
		if cmd.Kind == proto.CmdSendData {
			t.Fatalf("suppressed backup announced: %v", cmds)
		}
	}

	// The leader crashes (no more digests). Suppression lapses 2*Tann after
	// the last leader digest; the next announce expiry emits again.
	cmds = backup.Step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFedAnnounce, At: at(30)})
	var announced bool
	for _, cmd := range cmds {
		if cmd.Kind == proto.CmdSendData {
			announced = true
			if cmd.MID != can.FedDigestSign(0, 1) {
				t.Errorf("failover digest mid = %v", cmd.MID)
			}
		}
	}
	if !announced {
		t.Fatalf("backup did not take over after leader silence: %v", cmds)
	}
}

// TestDigestForLocalSegmentFromHigherGatewayIgnored: only lower-numbered
// peers suppress; a higher-numbered backup's digest must not silence the
// leader.
func TestDigestForLocalSegmentFromHigherGatewayIgnored(t *testing.T) {
	leader := mustCore(t, testConfig(0, 0))
	leader.Step(proto.Event{Kind: proto.EvFedLocalView, Node: 0, View: can.MakeSet(0, 1)})
	leader.Step(proto.Event{Kind: proto.EvBootstrap, At: at(0), View: can.MakeSet(0)})
	leader.Step(proto.Event{Kind: proto.EvDataInd, At: at(1), MID: can.FedDigestSign(0, 1)}.
		WithPayload(can.MakeSet(0, 1).Bytes()))
	cmds := leader.Step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFedAnnounce, At: at(10)})
	var announced bool
	for _, cmd := range cmds {
		if cmd.Kind == proto.CmdSendData {
			announced = true
		}
	}
	if !announced {
		t.Fatalf("leader suppressed by a higher-numbered backup: %v", cmds)
	}
}

// TestLocalViewChangeAnnouncesImmediately: convergence is event-driven, not
// only periodic — a membership change inside a local segment re-announces
// right away.
func TestLocalViewChangeAnnouncesImmediately(t *testing.T) {
	c := mustCore(t, testConfig(0, 0))
	c.Step(proto.Event{Kind: proto.EvFedLocalView, Node: 0, View: can.MakeSet(0, 1, 2)})
	c.Step(proto.Event{Kind: proto.EvBootstrap, At: at(0), View: can.MakeSet(0)})
	cmds := c.Step(proto.Event{Kind: proto.EvFedLocalView, Node: 0, View: can.MakeSet(0, 1), At: at(5)})
	var dig *proto.Command
	for i, cmd := range cmds {
		if cmd.Kind == proto.CmdSendData {
			dig = &cmds[i]
		}
	}
	if dig == nil {
		t.Fatalf("local view change did not announce: %v", cmds)
	}
	view, err := can.SetFromBytes(dig.Payload())
	if err != nil || view != can.MakeSet(0, 1) {
		t.Errorf("announced view = %v (err=%v)", view, err)
	}
	// An identical view is not a change and must not re-announce.
	if cmds := c.Step(proto.Event{Kind: proto.EvFedLocalView, Node: 0, View: can.MakeSet(0, 1), At: at(6)}); cmds != nil {
		t.Errorf("unchanged view re-announced: %v", cmds)
	}
}

// TestForeignLocalViewIgnored: views for segments outside Locals are not
// this gateway's to absorb.
func TestForeignLocalViewIgnored(t *testing.T) {
	c := mustCore(t, testConfig(0, 0))
	c.Step(proto.Event{Kind: proto.EvBootstrap, At: at(0), View: can.MakeSet(0)})
	if cmds := c.Step(proto.Event{Kind: proto.EvFedLocalView, Node: 5, View: can.MakeSet(1), At: at(1)}); cmds != nil {
		t.Errorf("foreign local view produced commands: %v", cmds)
	}
	if c.Members(5) != can.EmptySet {
		t.Errorf("foreign local view absorbed: %v", c.Members(5))
	}
}
