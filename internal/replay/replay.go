// Package replay records the event/command streams of the sans-I/O
// protocol cores during a live run and deterministically re-executes them.
//
// Because a core is pure — Step(Event) []Command, no scheduler, bus or
// trace handles — its entire behaviour is a function of its configuration
// and the event sequence it consumed. A Log captures both; Verify rebuilds
// fresh cores from the recorded configurations, pumps the recorded events
// through them in order, and asserts command-for-command equality with the
// recorded outputs. Any divergence (a non-deterministic core, an unrecorded
// input, a behaviour change between versions) is reported with its exact
// position.
//
// Logs serialize to JSON (Save/Load), so a capture from one binary can be
// re-verified by another — the regression harness behind golden traces and
// `canelysim -record/-replay`.
package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"canely/internal/can"
	"canely/internal/core"
	"canely/internal/core/proto"
	"canely/internal/federation"
	"canely/internal/gossip"
)

// NodeConfig is the recorded configuration of one node's core: a composite
// protocol core (Core), a gateway's federation core (Fed) or a SWIM
// gossip core (Gossip) — exactly one is set.
type NodeConfig struct {
	ID     can.NodeID         `json:"id"`
	Core   *core.Config       `json:"core,omitempty"`
	Fed    *federation.Config `json:"fed,omitempty"`
	Gossip *gossip.Config     `json:"gossip,omitempty"`
}

// Record is one Step of one node: the event consumed and the fully-routed
// command stream it produced.
type Record struct {
	Node     can.NodeID      `json:"node"`
	Event    proto.Event     `json:"event"`
	Commands []proto.Command `json:"commands,omitempty"`
}

// Log is a captured run: the core configurations plus the global,
// delivery-ordered record sequence.
type Log struct {
	Nodes   []NodeConfig `json:"nodes"`
	Records []Record     `json:"records"`
}

// New creates an empty log.
func New() *Log { return &Log{} }

// Register adds a node's composite-core configuration. Must be called
// before any of the node's records are appended.
func (l *Log) Register(id can.NodeID, cfg core.Config) {
	l.Nodes = append(l.Nodes, NodeConfig{ID: id, Core: &cfg})
}

// RegisterFed adds a gateway's federation-core configuration. Must be
// called before any of the gateway's records are appended. Gateway and
// node ids share one namespace per log; drivers keep separate logs when
// they collide.
func (l *Log) RegisterFed(id can.NodeID, cfg federation.Config) {
	l.Nodes = append(l.Nodes, NodeConfig{ID: id, Fed: &cfg})
}

// RegisterGossip adds a node's gossip-core configuration. Must be called
// before any of the node's records are appended.
func (l *Log) RegisterGossip(id can.NodeID, cfg gossip.Config) {
	l.Nodes = append(l.Nodes, NodeConfig{ID: id, Gossip: &cfg})
}

// Append records one Step. The command slice is copied: callers (the stack
// binding) hand in views of reused buffers that are invalid past the call.
// Recording is a diagnostic mode, so this cold-path allocation is fine.
func (l *Log) Append(id can.NodeID, ev proto.Event, cmds []proto.Command) {
	var copied []proto.Command
	if len(cmds) > 0 {
		copied = make([]proto.Command, len(cmds))
		copy(copied, cmds)
	}
	l.Records = append(l.Records, Record{Node: id, Event: ev, Commands: copied})
}

// Save writes the log as indented JSON.
func (l *Log) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(l)
}

// Load reads a log written by Save.
func Load(r io.Reader) (*Log, error) {
	var l Log
	if err := json.NewDecoder(r).Decode(&l); err != nil {
		return nil, fmt.Errorf("replay: decoding log: %w", err)
	}
	return &l, nil
}

// stepper is the replayable surface both core kinds share.
type stepper interface {
	StepInto(proto.Event, *proto.CommandBuf)
}

// Verify re-executes the log on fresh cores and checks command-for-command
// equality. It returns nil when the replay reproduces the capture exactly.
func (l *Log) Verify() error {
	nodes := make(map[can.NodeID]stepper, len(l.Nodes))
	for _, nc := range l.Nodes {
		switch {
		case nc.Fed != nil:
			n, err := federation.New(*nc.Fed)
			if err != nil {
				return fmt.Errorf("replay: rebuilding federation core %v: %w", nc.ID, err)
			}
			nodes[nc.ID] = n
		case nc.Core != nil:
			n, err := core.New(nc.ID, *nc.Core)
			if err != nil {
				return fmt.Errorf("replay: rebuilding core %v: %w", nc.ID, err)
			}
			nodes[nc.ID] = n
		case nc.Gossip != nil:
			n, err := gossip.New(nc.ID, *nc.Gossip)
			if err != nil {
				return fmt.Errorf("replay: rebuilding gossip core %v: %w", nc.ID, err)
			}
			nodes[nc.ID] = n
		default:
			return fmt.Errorf("replay: node %v registered without a core configuration", nc.ID)
		}
	}
	var buf proto.CommandBuf
	for i, rec := range l.Records {
		n := nodes[rec.Node]
		if n == nil {
			return fmt.Errorf("replay: record %d references unregistered node %v", i, rec.Node)
		}
		buf.Reset()
		n.StepInto(rec.Event, &buf)
		got := buf.Commands()
		if len(got) != len(rec.Commands) {
			return fmt.Errorf("replay: record %d (node %v, %v): %d commands, recorded %d\n got: %v\nwant: %v",
				i, rec.Node, rec.Event, len(got), len(rec.Commands), got, rec.Commands)
		}
		for j := range got {
			if got[j] != rec.Commands[j] {
				return fmt.Errorf("replay: record %d (node %v, %v) command %d:\n got: %v\nwant: %v",
					i, rec.Node, rec.Event, j, got[j], rec.Commands[j])
			}
		}
	}
	return nil
}

// Render formats the record stream as stable text, one line per record —
// the byte-exact form golden-trace tests pin.
func (l *Log) Render() string {
	var sb strings.Builder
	for _, rec := range l.Records {
		fmt.Fprintf(&sb, "%v n%02d %v", rec.Event.At, int(rec.Node), rec.Event)
		for _, c := range rec.Commands {
			fmt.Fprintf(&sb, " | %v", c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
