package replay

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
	"canely/internal/federation"
	"canely/internal/sim"
)

// TestFederationLogRoundTrips drives a federation core, records its
// event/command streams, and checks that the capture saves, loads,
// verifies on a fresh core and renders every federation command kind.
func TestFederationLogRoundTrips(t *testing.T) {
	cfg := federation.Config{
		Gateway: 7,
		Locals:  can.MakeSet(0),
		Tann:    10 * time.Millisecond,
		Tstale:  40 * time.Millisecond,
	}
	core, err := federation.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	log := New()
	log.RegisterFed(7, cfg)
	step := func(ev proto.Event) {
		log.Append(7, ev, core.Step(ev))
	}
	step(proto.Event{Kind: proto.EvFedLocalView, Node: 0, View: can.MakeSet(0, 1, 7)})
	step(proto.Event{Kind: proto.EvBootstrap, View: can.MakeSet(0, 2)})
	step(proto.Event{Kind: proto.EvDataInd, At: 1, MID: can.FedDigestSign(2, 9)}.
		WithPayload(can.MakeSet(3, 4).Bytes()))
	step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFedAnnounce,
		At: sim.Time(10 * time.Millisecond)})
	step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFedScan,
		At: sim.Time(50 * time.Millisecond)})
	if len(log.Records) == 0 {
		t.Fatal("no records captured")
	}

	var buf bytes.Buffer
	if err := log.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Verify(); err != nil {
		t.Fatalf("federation capture does not replay: %v", err)
	}

	rendered := loaded.Render()
	for _, want := range []string{
		"fed-local-view s00",
		"bootstrap",
		"send-data FED(s00)@n07",
		"notify-site",
		"site {n00,n02",     // TraceSiteChange (segment removal by staleness)
		"segment s02 stale", // TraceSegmentStale
		"set-timer fed-announce",
		"set-timer fed-scan",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q:\n%s", want, rendered)
		}
	}
}

// TestVerifyRejectsConfiglessNode pins the new exactly-one-core contract.
func TestVerifyRejectsConfiglessNode(t *testing.T) {
	log := New()
	log.Nodes = append(log.Nodes, NodeConfig{ID: 1})
	if err := log.Verify(); err == nil {
		t.Fatal("config-less node accepted")
	}
}
