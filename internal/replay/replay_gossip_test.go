package replay

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
	"canely/internal/gossip"
	"canely/internal/sim"
)

// TestGossipLogRoundTrips drives a SWIM gossip core, records its
// event/command streams, and checks that the capture saves, loads and
// verifies command-for-command on a fresh core — the property that lets
// the explorer hand counterexample schedules over gossip scenarios to the
// replay harness unchanged.
func TestGossipLogRoundTrips(t *testing.T) {
	cfg := gossip.Config{
		Period:         20 * time.Millisecond,
		AckTimeout:     5 * time.Millisecond,
		SuspectTimeout: 120 * time.Millisecond,
		Fanout:         2,
		Retransmit:     3,
	}
	core, err := gossip.New(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	log := New()
	log.RegisterGossip(0, cfg)
	step := func(ev proto.Event) {
		log.Append(0, ev, core.Step(ev))
	}
	at := func(ms int) sim.Time { return sim.Time(time.Duration(ms) * time.Millisecond) }
	step(proto.Event{Kind: proto.EvBootstrap, View: can.MakeSet(0, 1, 2)})
	step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerGossipTick, At: at(20)})
	step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerGossipAck, At: at(25)})
	step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerGossipTick, At: at(40)})
	step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerGossipSuspect, At: at(200)})
	step(proto.Event{Kind: proto.EvLeave, At: at(210)})
	if len(log.Records) == 0 {
		t.Fatal("no records captured")
	}

	var buf bytes.Buffer
	if err := log.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Verify(); err != nil {
		t.Fatalf("gossip capture does not replay: %v", err)
	}

	rendered := loaded.Render()
	for _, want := range []string{
		"bootstrap",
		"send-data GOSSIP",
		"set-timer gossip-tick",
		"set-timer gossip-ack",
		"failed", // the suspect scan confirmed an unresponsive peer
		"leave-req",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("render missing %q:\n%s", want, rendered)
		}
	}
}
