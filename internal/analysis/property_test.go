package analysis

import (
	"testing"
	"testing/quick"
	"time"

	"canely/internal/can"
)

// Property: frame sizing is strictly monotone in payload size, and
// extended frames always cost more than standard ones.
func TestFrameSizingMonotoneProperty(t *testing.T) {
	for data := 1; data <= can.MaxData; data++ {
		for _, f := range []can.FrameFormat{can.FormatStandard, can.FormatExtended} {
			if can.WorstFrameBits(f, data) <= can.WorstFrameBits(f, data-1) {
				t.Fatalf("%v frame bits not monotone at %d bytes", f, data)
			}
		}
		if can.WorstFrameBits(can.FormatExtended, data) <= can.WorstFrameBits(can.FormatStandard, data) {
			t.Fatalf("extended not larger than standard at %d bytes", data)
		}
	}
}

// Property: bandwidth utilization decreases monotonically in Tm and
// increases monotonically in each load parameter.
func TestBandwidthModelMonotoneProperty(t *testing.T) {
	prop := func(bRaw, fRaw, jRaw uint8) bool {
		m := DefaultModel()
		m.B = int(bRaw%16) + 1
		m.F = int(fRaw%8) + 1
		m.J = int(jRaw % 4)
		u30 := m.Utilization(30*time.Millisecond, SeriesMultiJoinLeave)
		u60 := m.Utilization(60*time.Millisecond, SeriesMultiJoinLeave)
		if u30 <= u60 {
			return false
		}
		// More life-sign nodes cost more.
		m2 := m
		m2.B = m.B + 1
		if m2.Utilization(30*time.Millisecond, SeriesNoChanges) <=
			m.Utilization(30*time.Millisecond, SeriesNoChanges) {
			return false
		}
		// More failures cost more.
		m3 := m
		m3.F = m.F + 1
		return m3.Utilization(30*time.Millisecond, SeriesCrashFailures) >
			m.Utilization(30*time.Millisecond, SeriesCrashFailures)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: inaccessibility worst case scales linearly with the
// retransmission bound, with the same minimum.
func TestInaccessibilityScalingProperty(t *testing.T) {
	prop := func(rRaw uint8) bool {
		r := int(rRaw%30) + 1
		p := InaccessibilityParams{Format: can.FormatExtended, DataBytes: 8, Retries: r}
		lo, hi := p.Bounds()
		if lo != can.ErrorFrameMinBits {
			return false
		}
		cycle := can.WorstFrameBits(can.FormatExtended, 8) + can.ErrorFrameMaxBits + can.InterframeBits
		return hi == r*cycle
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: in a response-time analysis, a higher-priority message never
// has a larger queuing delay than a lower-priority one of the same shape.
func TestResponseTimePriorityOrderProperty(t *testing.T) {
	prop := func(nRaw uint8) bool {
		n := int(nRaw%6) + 2
		msgs := make([]Message, 0, n)
		for i := 0; i < n; i++ {
			msgs = append(msgs, Message{
				Name:      string(rune('a' + i)),
				Priority:  i + 1,
				Period:    10 * time.Millisecond,
				DataBytes: 8,
			})
		}
		res, err := ResponseTimes(msgs, can.Rate1Mbps, can.FormatStandard, 0)
		if err != nil {
			return false
		}
		for i := 1; i < len(res); i++ {
			if res[i].W < res[i-1].W {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding inaccessibility never reduces any response time.
func TestResponseTimeInaccessibilityMonotoneProperty(t *testing.T) {
	msgs := CANELyMessageSet(8, 10*time.Millisecond, 50*time.Millisecond)
	base, err := ResponseTimes(msgs, can.Rate1Mbps, can.FormatExtended, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tina := range []time.Duration{100 * time.Microsecond, 2160 * time.Microsecond} {
		loaded, err := ResponseTimes(msgs, can.Rate1Mbps, can.FormatExtended, tina)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if loaded[i].R < base[i].R {
				t.Fatalf("inaccessibility reduced R for %s", base[i].Message.Name)
			}
		}
	}
}
