package analysis

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ParseMessageSet reads a message-set specification, one message per line:
//
//	name priority period bytes [rtr]
//
// e.g.
//
//	engine-speed   10  5ms   4
//	guard-poll     20  100ms 0  rtr
//
// Blank lines and lines starting with '#' are ignored. Fields are
// whitespace-separated; the period uses Go duration syntax.
func ParseMessageSet(r io.Reader) ([]Message, error) {
	var out []Message
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields) > 5 {
			return nil, fmt.Errorf("analysis: line %d: want 'name prio period bytes [rtr]', got %q", lineNo, line)
		}
		prio, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("analysis: line %d: bad priority %q: %v", lineNo, fields[1], err)
		}
		period, err := time.ParseDuration(fields[2])
		if err != nil {
			return nil, fmt.Errorf("analysis: line %d: bad period %q: %v", lineNo, fields[2], err)
		}
		bytes, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("analysis: line %d: bad byte count %q: %v", lineNo, fields[3], err)
		}
		m := Message{Name: fields[0], Priority: prio, Period: period, DataBytes: bytes}
		if len(fields) == 5 {
			if fields[4] != "rtr" {
				return nil, fmt.Errorf("analysis: line %d: unknown flag %q", lineNo, fields[4])
			}
			m.Remote = true
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analysis: reading message set: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: empty message set")
	}
	return out, nil
}
