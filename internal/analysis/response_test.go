package analysis

import (
	"strings"
	"testing"
	"time"

	"canely/internal/can"
)

func TestResponseTimesHandExample(t *testing.T) {
	// Two standard 8-byte streams at 1 Mbit/s: C = 135 µs each
	// (108 nominal + 24 stuff + 3 IFS bits).
	msgs := []Message{
		{Name: "A", Priority: 1, Period: 10 * time.Millisecond, DataBytes: 8},
		{Name: "B", Priority: 2, Period: 10 * time.Millisecond, DataBytes: 8},
	}
	res, err := ResponseTimes(msgs, can.Rate1Mbps, can.FormatStandard, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := 135 * time.Microsecond
	// A: blocked by one B frame, no higher interference: R = C_B + C_A.
	if res[0].C != c || res[0].B != c || res[0].R != 2*c {
		t.Fatalf("A: C=%v B=%v R=%v, want C=B=%v R=%v", res[0].C, res[0].B, res[0].R, c, 2*c)
	}
	// B: no blocking (lowest), one interference hit from A.
	if res[1].B != 0 || res[1].R != 2*c {
		t.Fatalf("B: B=%v R=%v, want B=0 R=%v", res[1].B, res[1].R, 2*c)
	}
	for _, r := range res {
		if !r.Schedulable {
			t.Fatalf("%s unschedulable", r.Message.Name)
		}
	}
}

func TestResponseTimesInterferenceGrowsWithLoad(t *testing.T) {
	base := []Message{
		{Name: "hi", Priority: 1, Period: time.Millisecond, DataBytes: 8},
		{Name: "probe", Priority: 10, Period: 20 * time.Millisecond, DataBytes: 8},
	}
	loaded := append([]Message{
		{Name: "hi2", Priority: 2, Period: time.Millisecond, DataBytes: 8},
	}, base...)
	r1, err := ResponseTimes(base, can.Rate1Mbps, can.FormatStandard, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ResponseTimes(loaded, can.Rate1Mbps, can.FormatStandard, 0)
	if err != nil {
		t.Fatal(err)
	}
	probe1 := r1[len(r1)-1]
	probe2 := r2[len(r2)-1]
	if probe2.R <= probe1.R {
		t.Fatalf("more load should worsen the probe: %v vs %v", probe1.R, probe2.R)
	}
}

func TestResponseTimesInaccessibilityAddsToBlocking(t *testing.T) {
	msgs := []Message{{Name: "only", Priority: 1, Period: 10 * time.Millisecond, Remote: true}}
	without, _ := ResponseTimes(msgs, can.Rate1Mbps, can.FormatExtended, 0)
	with, _ := ResponseTimes(msgs, can.Rate1Mbps, can.FormatExtended, 2880*time.Microsecond)
	delta := with[0].R - without[0].R
	if delta != 2880*time.Microsecond {
		t.Fatalf("inaccessibility delta = %v, want 2.88ms", delta)
	}
}

func TestResponseTimesDetectsOverload(t *testing.T) {
	// A 1 Mbit/s bus cannot carry an 8-byte frame every 100 µs (C=135µs).
	msgs := []Message{
		{Name: "storm", Priority: 1, Period: 100 * time.Microsecond, DataBytes: 8},
		{Name: "victim", Priority: 2, Period: 50 * time.Millisecond, DataBytes: 8},
	}
	res, err := ResponseTimes(msgs, can.Rate1Mbps, can.FormatStandard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Schedulable {
		t.Fatal("victim under a storm should be unschedulable")
	}
}

func TestResponseTimesValidation(t *testing.T) {
	if _, err := ResponseTimes(nil, can.Rate1Mbps, can.FormatStandard, 0); err == nil {
		t.Fatal("empty set accepted")
	}
	dup := []Message{
		{Name: "a", Priority: 1, Period: time.Millisecond},
		{Name: "b", Priority: 1, Period: time.Millisecond},
	}
	if _, err := ResponseTimes(dup, can.Rate1Mbps, can.FormatStandard, 0); err == nil {
		t.Fatal("duplicate priorities accepted")
	}
	bad := []Message{{Name: "a", Priority: 1}}
	if _, err := ResponseTimes(bad, can.Rate1Mbps, can.FormatStandard, 0); err == nil {
		t.Fatal("zero period accepted")
	}
	badData := []Message{{Name: "a", Priority: 1, Period: time.Millisecond, DataBytes: 9}}
	if _, err := ResponseTimes(badData, can.Rate1Mbps, can.FormatStandard, 0); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestDeriveTtd(t *testing.T) {
	app := []Message{
		{Name: "sensor", Priority: 1, Period: 5 * time.Millisecond, DataBytes: 4},
		{Name: "actuator", Priority: 2, Period: 10 * time.Millisecond, DataBytes: 2},
	}
	ttd, err := DeriveTtd(app, 32, 10*time.Millisecond, 50*time.Millisecond,
		can.Rate1Mbps, CANELyInaccessibility())
	if err != nil {
		t.Fatal(err)
	}
	// Ttd must cover at least the inaccessibility bound (2.16 ms) plus
	// frame times, and stay well under the membership cycle.
	if ttd < 2200*time.Microsecond {
		t.Fatalf("Ttd = %v implausibly low", ttd)
	}
	if ttd > 10*time.Millisecond {
		t.Fatalf("Ttd = %v implausibly high for this load", ttd)
	}
}

func TestDeriveTtdRejectsOverload(t *testing.T) {
	app := []Message{
		{Name: "storm", Priority: 1, Period: 50 * time.Microsecond, DataBytes: 8},
	}
	// The storm outranks even the protocol traffic after the offset?
	// No — protocol traffic keeps the top priorities, so it still wins
	// arbitration. Overload must instead show up when the protocol
	// periods cannot absorb the inaccessibility; use a tiny Tb to force
	// an ELS stream faster than the bus can carry.
	if _, err := DeriveTtd(app, 64, 200*time.Microsecond, 50*time.Millisecond,
		can.Rate50Kbps, CANInaccessibility()); err == nil {
		t.Fatal("unschedulable protocol stream not reported")
	}
}

func TestFormatResponseTimes(t *testing.T) {
	res, err := ResponseTimes(CANELyMessageSet(8, 10*time.Millisecond, 50*time.Millisecond),
		can.Rate1Mbps, can.FormatExtended, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResponseTimes(res)
	if !strings.Contains(out, "FDA failure-sign") || !strings.Contains(out, "yes") {
		t.Fatalf("format = %q", out)
	}
}
