package analysis

import (
	"fmt"
	"strings"
	"time"

	"canely/internal/can"
)

// Inaccessibility analysis, after [22] ("How hard is hard real-time
// communication on field-buses?"): periods where the network refrains from
// providing service while remaining operational. Figure 11 of the paper
// reports the resulting bounds: 14–2880 bit times for standard CAN and
// 14–2160 bit times under CANELy's inaccessibility control.

// InaccessibilityParams parameterizes the scenario enumeration.
type InaccessibilityParams struct {
	// Format and DataBytes size the longest frame involved in recovery.
	Format    can.FrameFormat
	DataBytes int
	// Retries bounds the consecutive error-recovery retransmissions of a
	// single frame. Native CAN allows the transmit error counter to climb
	// from 0 to the error-passive limit (128) in steps of 8 while staying
	// fully active: 16 back-to-back attempts. CANELy's inaccessibility
	// control [22,16] bounds the burst to 12 attempts, trading residual
	// omission coverage for a tighter worst case.
	Retries int
}

// CANInaccessibility returns the native CAN worst-case parameters
// (29-bit frames, 8 data bytes, 16 back-to-back attempts).
func CANInaccessibility() InaccessibilityParams {
	return InaccessibilityParams{Format: can.FormatExtended, DataBytes: 8, Retries: 16}
}

// CANELyInaccessibility returns the parameters under CANELy's
// inaccessibility control (burst bounded to 12 attempts).
func CANELyInaccessibility() InaccessibilityParams {
	return InaccessibilityParams{Format: can.FormatExtended, DataBytes: 8, Retries: 12}
}

// InaccessibilityScenario is one enumerated inaccessibility event.
type InaccessibilityScenario struct {
	Name string
	Bits int
}

// Scenarios enumerates the inaccessibility events from shortest to longest.
func (p InaccessibilityParams) Scenarios() []InaccessibilityScenario {
	frame := can.WorstFrameBits(p.Format, p.DataBytes)
	errMin := can.ErrorFrameMinBits
	errMax := can.ErrorFrameMaxBits
	cycle := frame + errMax + can.InterframeBits
	return []InaccessibilityScenario{
		{
			// A single bit error detected at the end of a frame: the bus
			// carries only the error frame before service resumes.
			Name: "bit error, active error frame",
			Bits: errMin,
		},
		{
			Name: "bit error, superposed error flags",
			Bits: errMax,
		},
		{
			// A reactive overload frame delays the next start of frame.
			Name: "overload frame",
			Bits: can.OverloadFrameMaxBits + can.InterframeBits,
		},
		{
			// The longest frame destroyed by an error at its last bit:
			// the whole frame is wasted plus the recovery signalling.
			Name: "longest frame destroyed at last bit",
			Bits: cycle,
		},
		{
			// The worst case: an error burst destroys every back-to-back
			// retransmission attempt of the longest frame until the
			// fault-confinement bound stops the burst.
			Name: fmt.Sprintf("error burst over %d retransmissions", p.Retries),
			Bits: p.Retries * cycle,
		},
	}
}

// Bounds returns the (min, max) inaccessibility duration in bit times.
func (p InaccessibilityParams) Bounds() (minBits, maxBits int) {
	sc := p.Scenarios()
	minBits, maxBits = sc[0].Bits, sc[0].Bits
	for _, s := range sc[1:] {
		if s.Bits < minBits {
			minBits = s.Bits
		}
		if s.Bits > maxBits {
			maxBits = s.Bits
		}
	}
	return minBits, maxBits
}

// BoundsAt converts the bounds to durations at a bit rate.
func (p InaccessibilityParams) BoundsAt(r can.BitRate) (time.Duration, time.Duration) {
	lo, hi := p.Bounds()
	return r.DurationOf(lo), r.DurationOf(hi)
}

// FormatScenarios renders the enumeration as a table.
func (p InaccessibilityParams) FormatScenarios() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-45s %10s\n", "scenario", "bit times")
	for _, s := range p.Scenarios() {
		fmt.Fprintf(&sb, "%-45s %10d\n", s.Name, s.Bits)
	}
	return sb.String()
}
