// Package analysis reproduces the analytical evaluation of the paper: the
// CAN bandwidth utilization of the site membership protocol suite
// (Figure 10), the inaccessibility bounds and attribute comparisons of
// Figures 1 and 11, and the related-work latency models of §6.6.
//
// The bandwidth model follows the paper's "very conservative approach":
// multiple events occur in the same period of reference, every
// micro-protocol consumes its maximum bandwidth (protocol and
// network-related overheads included), and extremely harsh operating
// conditions are assumed.
package analysis

import (
	"fmt"
	"strings"
	"time"

	"canely/internal/can"
)

// BandwidthModel is the worst-case bandwidth analysis of §6.5 / [16].
type BandwidthModel struct {
	// N is the network size (paper: n = 32).
	N int
	// B is the number of nodes issuing explicit life-sign messages in the
	// reference period (paper: b = 8; the rest signal implicitly).
	B int
	// F is the number of node crash failures per cycle (paper: f = 4).
	F int
	// J is the inconsistent omission degree bound (LCAN4).
	J int
	// K is the omission degree bound (MCAN3), charged as error-frame
	// overhead against each failure's diffusion.
	K int
	// Rate is the bus bit rate (paper: 1 Mbit/s).
	Rate can.BitRate
	// Format selects frame sizing. The paper's analysis uses standard
	// (11-bit) frames; this repository's simulator uses extended frames
	// because the CANELy mid needs 29 bits. Both shapes are reproduced.
	Format can.FrameFormat
}

// DefaultModel returns the operating conditions of Figure 10.
func DefaultModel() BandwidthModel {
	return BandwidthModel{
		N:      32,
		B:      8,
		F:      4,
		J:      2,
		K:      4,
		Rate:   can.Rate1Mbps,
		Format: can.FormatStandard,
	}
}

// signSlotBits is the wire cost of one remote-frame protocol sign
// (life-sign, failure-sign, join/leave request), worst-case stuffed,
// interframe space included.
func (m BandwidthModel) signSlotBits() int {
	return can.WorstSlotBits(m.Format, 0)
}

// rhvSlotBits is the wire cost of one RHV broadcast: a data frame carrying
// the 8-byte reception history vector.
func (m BandwidthModel) rhvSlotBits() int {
	return can.WorstSlotBits(m.Format, 8)
}

// errorSlotBits is the recovery overhead of one omission: a worst-case
// error frame plus the following intermission.
func (m BandwidthModel) errorSlotBits() int {
	return can.ErrorFrameMaxBits + can.InterframeBits
}

// LifeSignBits is the per-cycle cost of explicit node activity signalling:
// at most B life-sign remote frames.
func (m BandwidthModel) LifeSignBits() int {
	return m.B * m.signSlotBits()
}

// FDABits is the worst-case cost of one failure-sign diffusion: the
// original transmission, the clustered eager re-diffusion wave, one further
// wave per tolerated inconsistent omission, and error-frame overhead for
// each of those inconsistencies.
func (m BandwidthModel) FDABits() int {
	frames := 2 + m.J
	return frames*m.signSlotBits() + m.J*m.errorSlotBits()
}

// RHABits is the worst-case cost of one RHA execution agreeing on c
// join/leave requests. Inconsistent deliveries of the requests produce
// divergent initial vectors; their number is bounded by the inconsistent
// omission degree, so at most min(c,J)+1 distinct RHVs circulate, and each
// value is transmitted at most J+1 times before the duplicate-suppression
// bound aborts further copies.
func (m BandwidthModel) RHABits(c int) int {
	if c <= 0 {
		return 0
	}
	distinct := c
	if distinct > m.J {
		distinct = m.J
	}
	distinct++ // the agreed base vector
	return distinct * (m.J + 1) * m.rhvSlotBits()
}

// JoinLeaveBits is the per-cycle cost of c join/leave requests: the request
// remote frames plus the RHA execution that agrees on them.
func (m BandwidthModel) JoinLeaveBits(c int) int {
	if c <= 0 {
		return 0
	}
	return c*m.signSlotBits() + m.RHABits(c)
}

// Series identifies the four curves of Figure 10.
type Series int

// Figure 10 series.
const (
	// SeriesNoChanges: no crash failures and no join/leave events — only
	// explicit life-signs consume bandwidth.
	SeriesNoChanges Series = iota
	// SeriesCrashFailures: F nodes fail within the cycle (FDA runs).
	SeriesCrashFailures
	// SeriesJoinLeave: one join/leave event on top of the failures (c=1).
	SeriesJoinLeave
	// SeriesMultiJoinLeave: a massive number of join/leaves (c=20).
	SeriesMultiJoinLeave
)

// String names the series as in the figure's legend.
func (s Series) String() string {
	switch s {
	case SeriesNoChanges:
		return "no msh. changes"
	case SeriesCrashFailures:
		return "f crash failures"
	case SeriesJoinLeave:
		return "join/leave event"
	default:
		return "multiple join/leave"
	}
}

// MultiJoinLeaveCount is the c=20 regime of Figure 10.
const MultiJoinLeaveCount = 20

// CycleBits returns the worst-case protocol bits consumed in one
// membership cycle for a series.
func (m BandwidthModel) CycleBits(s Series) int {
	bits := m.LifeSignBits()
	switch s {
	case SeriesNoChanges:
	case SeriesCrashFailures:
		bits += m.F * m.FDABits()
	case SeriesJoinLeave:
		bits += m.F*m.FDABits() + m.JoinLeaveBits(1)
	case SeriesMultiJoinLeave:
		bits += m.F*m.FDABits() + m.JoinLeaveBits(MultiJoinLeaveCount)
	}
	return bits
}

// Utilization returns the fraction of bus bandwidth the membership suite
// consumes over a cycle period tm.
func (m BandwidthModel) Utilization(tm time.Duration, s Series) float64 {
	window := m.Rate.Bits(tm)
	if window <= 0 {
		return 0
	}
	return float64(m.CycleBits(s)) / float64(window)
}

// PerRequestDelta returns the marginal utilization of one additional
// join/leave request — the footnote 11 quantity (≈0.16% at Tm = 30 ms).
func (m BandwidthModel) PerRequestDelta(tm time.Duration) float64 {
	window := m.Rate.Bits(tm)
	if window <= 0 {
		return 0
	}
	return float64(m.signSlotBits()) / float64(window)
}

// Figure10Row is one x-axis point of the reproduced figure.
type Figure10Row struct {
	Tm          time.Duration
	Utilization [4]float64 // indexed by Series
}

// Figure10 evaluates the model over the paper's x-axis (Tm = 30..90 ms).
func Figure10(m BandwidthModel, tms []time.Duration) []Figure10Row {
	if len(tms) == 0 {
		for tm := 30; tm <= 90; tm += 10 {
			tms = append(tms, time.Duration(tm)*time.Millisecond)
		}
	}
	rows := make([]Figure10Row, 0, len(tms))
	for _, tm := range tms {
		var r Figure10Row
		r.Tm = tm
		for s := SeriesNoChanges; s <= SeriesMultiJoinLeave; s++ {
			r.Utilization[s] = m.Utilization(tm, s)
		}
		rows = append(rows, r)
	}
	return rows
}

// FormatFigure10 renders the rows as the table behind the figure.
func FormatFigure10(rows []Figure10Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %18s %18s %18s %20s\n", "Tm",
		SeriesNoChanges, SeriesCrashFailures, SeriesJoinLeave, SeriesMultiJoinLeave)
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10v %17.2f%% %17.2f%% %17.2f%% %19.2f%%\n",
			r.Tm,
			100*r.Utilization[SeriesNoChanges],
			100*r.Utilization[SeriesCrashFailures],
			100*r.Utilization[SeriesJoinLeave],
			100*r.Utilization[SeriesMultiJoinLeave])
	}
	return sb.String()
}
