package analysis

import (
	"strings"
	"testing"
	"time"

	"canely/internal/can"
)

func TestParseMessageSet(t *testing.T) {
	spec := `
# application streams
engine-speed   10  5ms   4
brake-status   11  10ms  2

guard-poll     20  100ms 0  rtr
`
	msgs, err := ParseMessageSet(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 3 {
		t.Fatalf("messages = %d", len(msgs))
	}
	if msgs[0].Name != "engine-speed" || msgs[0].Priority != 10 ||
		msgs[0].Period != 5*time.Millisecond || msgs[0].DataBytes != 4 || msgs[0].Remote {
		t.Fatalf("first = %+v", msgs[0])
	}
	if !msgs[2].Remote {
		t.Fatal("rtr flag lost")
	}
}

func TestParseMessageSetErrors(t *testing.T) {
	for name, spec := range map[string]string{
		"too few fields": "a 1 5ms",
		"bad priority":   "a x 5ms 4",
		"bad period":     "a 1 fivems 4",
		"bad bytes":      "a 1 5ms x",
		"unknown flag":   "a 1 5ms 4 wat",
		"empty":          "# nothing\n",
	} {
		if _, err := ParseMessageSet(strings.NewReader(spec)); err == nil {
			t.Fatalf("%s: accepted %q", name, spec)
		}
	}
}

func TestParseMessageSetFeedsAnalysis(t *testing.T) {
	spec := "a 1 5ms 8\nb 2 10ms 8\n"
	msgs, err := ParseMessageSet(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ResponseTimes(msgs, can.Rate1Mbps, can.FormatStandard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || !res[0].Schedulable {
		t.Fatalf("analysis on parsed set failed: %+v", res)
	}
}
