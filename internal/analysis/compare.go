package analysis

import (
	"fmt"
	"strings"
	"time"

	"canely/internal/can"
	"canely/internal/core/fd"
)

// ComparisonRow is one attribute of the TTP / CAN / CANELy comparison
// tables (Figures 1 and 11).
type ComparisonRow struct {
	Parameter string
	Cells     []string
}

// ComparisonTable is a rendered attribute table.
type ComparisonTable struct {
	Title   string
	Columns []string
	Rows    []ComparisonRow
}

// String renders the table with aligned columns.
func (t ComparisonTable) String() string {
	width := len(t.Title)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n%s\n", t.Title, strings.Repeat("=", width))
	fmt.Fprintf(&sb, "%-28s", "Parameter")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, " | %-24s", c)
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 28+len(t.Columns)*27))
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-28s", r.Parameter)
		for _, c := range r.Cells {
			fmt.Fprintf(&sb, " | %-24s", c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Figure1 reproduces the TTP vs standard CAN comparison.
func Figure1() ComparisonTable {
	return ComparisonTable{
		Title:   "Figure 1 - Comparison of TTP and CAN",
		Columns: []string{"TTP", "Standard CAN"},
		Rows: []ComparisonRow{
			{"Error detection domains", []string{"value and time", "value domain"}},
			{"Omission handling", []string{"masking", "detection/recovery"}},
			{"", []string{"frame diffusion", "frame retransmission"}},
			{"Media redundancy", []string{"no", "no"}},
			{"Channel redundancy", []string{"yes", "no"}},
			{"Babbling idiot avoidance", []string{"bus guardian", "not provided"}},
			{"Communications", []string{"broadcast", "broadcast"}},
			{"Membership service", []string{"provided", "not provided"}},
			{"Clock synchronization", []string{"in us range", "not provided"}},
		},
	}
}

// Figure11Inputs carries the measured/derived quantities of Figure 11.
type Figure11Inputs struct {
	// CANInaccess and CANELyInaccess are the inaccessibility bounds in bit
	// times, from the scenario enumeration.
	CANInaccess    [2]int
	CANELyInaccess [2]int
	// MembershipLatency is the CANELy node failure detection plus
	// membership notification latency (measured or bounded).
	MembershipLatency time.Duration
}

// DefaultFigure11Inputs derives the inputs analytically from the default
// configuration (Tb = 10 ms, Ttd = 2 ms, 1 Mbit/s).
func DefaultFigure11Inputs() Figure11Inputs {
	canLo, canHi := CANInaccessibility().Bounds()
	elyLo, elyHi := CANELyInaccessibility().Bounds()
	lat := fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond}.DetectionLatency()
	return Figure11Inputs{
		CANInaccess:       [2]int{canLo, canHi},
		CANELyInaccess:    [2]int{elyLo, elyHi},
		MembershipLatency: lat,
	}
}

// Figure11 reproduces the TTP / CAN / CANELy comparison with the computed
// cells filled in.
func Figure11(in Figure11Inputs) ComparisonTable {
	return ComparisonTable{
		Title:   "Figure 11 - Comparison of TTP, CAN and CANELy",
		Columns: []string{"TTP", "CAN", "CANELy"},
		Rows: []ComparisonRow{
			{"Omission handling", []string{"masking", "detection/recovery", "both algorithms"}},
			{"", []string{"diffusion", "retransmission", ""}},
			{"Inaccessibility duration", []string{
				"unknown",
				fmt.Sprintf("%d - %d bit-times", in.CANInaccess[0], in.CANInaccess[1]),
				fmt.Sprintf("%d - %d bit-times", in.CANELyInaccess[0], in.CANELyInaccess[1]),
			}},
			{"Inaccessibility control", []string{"not addressed", "no", "yes"}},
			{"Media redundancy", []string{"no", "no", "yes"}},
			{"Channel redundancy", []string{"yes", "no", "yes (optional)"}},
			{"Babbling idiot avoidance", []string{"bus guardian", "not provided", "not provided"}},
			{"Communications", []string{"broadcast", "broadcast", "broadcast/multicast"}},
			{"Membership", []string{"provided", "not provided",
				fmt.Sprintf("%v latency (tens of ms)", in.MembershipLatency)}},
			{"Clock synch. precision", []string{"in us range", "not provided", "tens of us"}},
		},
	}
}

// RelatedWorkModel captures the §6.6 latency comparison between CANELy's
// failure detection and the industry-standard alternatives.
type RelatedWorkModel struct {
	// N is the network size.
	N int
	// CANELy is the failure-detection parameterization.
	CANELy fd.Config
	// OSEKTTyp is the typical interval between consecutive ring messages
	// in OSEK NM (each alive node forwards the logical-ring token TTyp
	// after receiving it).
	OSEKTTyp time.Duration
	// OSEKTMax is the ring-message timeout after which a successor is
	// skipped and the skipped node deemed absent.
	OSEKTMax time.Duration
	// CANopenGuardTime and CANopenLifeFactor parameterize CANopen node
	// guarding: a slave is lost after LifeFactor missed guard requests.
	CANopenGuardTime  time.Duration
	CANopenLifeFactor int
}

// DefaultRelatedWork returns the §6.6 reference operating point.
func DefaultRelatedWork() RelatedWorkModel {
	return RelatedWorkModel{
		N:                 8,
		CANELy:            fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond},
		OSEKTTyp:          100 * time.Millisecond,
		OSEKTMax:          260 * time.Millisecond,
		CANopenGuardTime:  100 * time.Millisecond,
		CANopenLifeFactor: 2,
	}
}

// CANELyLatency is the worst-case failure detection latency of the CANELy
// suite: the remote surveillance window plus failure-sign diffusion.
func (m RelatedWorkModel) CANELyLatency() time.Duration {
	return m.CANELy.DetectionLatency()
}

// OSEKLatency is the worst-case detection latency of the OSEK NM logical
// ring: the token must travel the whole ring before the silent node's slot
// comes up, and only after TMax is the node skipped. For the reference
// values this lands "in the order of one second", as §6.6 reports.
func (m RelatedWorkModel) OSEKLatency() time.Duration {
	return time.Duration(m.N-1)*m.OSEKTTyp + m.OSEKTMax
}

// CANopenLatency is the worst-case detection latency of CANopen
// master-slave node guarding: the master declares a slave lost after
// LifeFactor consecutive unanswered guard requests — and only the master
// learns it directly.
func (m RelatedWorkModel) CANopenLatency() time.Duration {
	return time.Duration(m.CANopenLifeFactor+1) * m.CANopenGuardTime
}

// FormatRelatedWork renders the §6.6 comparison.
func (m RelatedWorkModel) FormatRelatedWork() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s %14s  %s\n", "scheme", "worst-case", "notes")
	fmt.Fprintf(&sb, "%-34s %14v  %s\n", "CANELy failure detection",
		m.CANELyLatency(), "distributed, consistent (FDA)")
	fmt.Fprintf(&sb, "%-34s %14v  %s\n", "OSEK NM logical ring",
		m.OSEKLatency(), "distributed, ring rotation bound")
	fmt.Fprintf(&sb, "%-34s %14v  %s\n", "CANopen node guarding",
		m.CANopenLatency(), "centralized, master only")
	return sb.String()
}

// BitTimeAt converts bit times to duration for presentation.
func BitTimeAt(bits int, r can.BitRate) time.Duration { return r.DurationOf(bits) }
