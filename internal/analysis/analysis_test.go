package analysis

import (
	"strings"
	"testing"
	"time"

	"canely/internal/can"
)

func TestFigure10ShapeAndMagnitudes(t *testing.T) {
	m := DefaultModel()
	rows := Figure10(m, nil)
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7 (Tm=30..90)", len(rows))
	}
	// Paper calibration points at Tm = 30 ms:
	//   bottom curve (no changes) ~1.5%; top curve (c=20) ~13%.
	at30 := rows[0]
	if at30.Tm != 30*time.Millisecond {
		t.Fatalf("first row Tm = %v", at30.Tm)
	}
	u0 := at30.Utilization[SeriesNoChanges]
	if u0 < 0.010 || u0 > 0.020 {
		t.Fatalf("no-changes @30ms = %.4f, want ~0.015", u0)
	}
	uTop := at30.Utilization[SeriesMultiJoinLeave]
	if uTop < 0.10 || uTop > 0.16 {
		t.Fatalf("multi join/leave @30ms = %.4f, want ~0.13", uTop)
	}
	// Curve ordering must match the figure at every x: no-changes <
	// f crashes < single join/leave < multiple join/leave.
	for _, r := range rows {
		for s := SeriesNoChanges; s < SeriesMultiJoinLeave; s++ {
			if r.Utilization[s] >= r.Utilization[s+1] {
				t.Fatalf("ordering violated at Tm=%v: %v", r.Tm, r.Utilization)
			}
		}
	}
	// Each curve decays as 1/Tm: value at 90 ms is a third of 30 ms.
	at90 := rows[len(rows)-1]
	for s := SeriesNoChanges; s <= SeriesMultiJoinLeave; s++ {
		ratio := at30.Utilization[s] / at90.Utilization[s]
		if ratio < 2.9 || ratio > 3.1 {
			t.Fatalf("series %v not 1/Tm: 30ms/90ms = %.3f", s, ratio)
		}
	}
}

func TestPerRequestDeltaMatchesFootnote(t *testing.T) {
	// Footnote 11: each join/leave request adds ~0.16% at Tm = 30 ms.
	m := DefaultModel()
	d := m.PerRequestDelta(30 * time.Millisecond)
	if d < 0.0014 || d > 0.0020 {
		t.Fatalf("per-request delta = %.5f, want ~0.0016", d)
	}
}

func TestBandwidthComponentsPositiveAndMonotone(t *testing.T) {
	m := DefaultModel()
	if m.LifeSignBits() <= 0 || m.FDABits() <= 0 {
		t.Fatal("components must be positive")
	}
	if m.RHABits(0) != 0 {
		t.Fatal("no requests -> RHA skipped (zero bits)")
	}
	if m.RHABits(1) > m.RHABits(5) {
		t.Fatal("RHA cost must not decrease with request count")
	}
	if m.JoinLeaveBits(1) >= m.JoinLeaveBits(20) {
		t.Fatal("join/leave cost must grow with c")
	}
}

func TestExtendedFormatCostsMore(t *testing.T) {
	std := DefaultModel()
	ext := DefaultModel()
	ext.Format = can.FormatExtended
	for s := SeriesNoChanges; s <= SeriesMultiJoinLeave; s++ {
		if ext.Utilization(30*time.Millisecond, s) <= std.Utilization(30*time.Millisecond, s) {
			t.Fatalf("extended frames must cost more (series %v)", s)
		}
	}
}

func TestFormatFigure10(t *testing.T) {
	out := FormatFigure10(Figure10(DefaultModel(), nil))
	if !strings.Contains(out, "no msh. changes") || !strings.Contains(out, "30ms") {
		t.Fatalf("table = %q", out)
	}
	if strings.Count(out, "\n") != 8 {
		t.Fatalf("table lines = %d", strings.Count(out, "\n"))
	}
}

func TestInaccessibilityBoundsMatchFigure11(t *testing.T) {
	lo, hi := CANInaccessibility().Bounds()
	if lo != 14 || hi != 2880 {
		t.Fatalf("CAN bounds = %d-%d, paper reports 14-2880", lo, hi)
	}
	lo, hi = CANELyInaccessibility().Bounds()
	if lo != 14 || hi != 2160 {
		t.Fatalf("CANELy bounds = %d-%d, paper reports 14-2160", lo, hi)
	}
}

func TestInaccessibilityScenarioOrdering(t *testing.T) {
	sc := CANInaccessibility().Scenarios()
	for i := 1; i < len(sc); i++ {
		if sc[i].Bits < sc[i-1].Bits {
			t.Fatalf("scenarios not ordered: %v", sc)
		}
	}
	if !strings.Contains(CANInaccessibility().FormatScenarios(), "error burst") {
		t.Fatal("scenario table incomplete")
	}
}

func TestInaccessibilityBoundsAt(t *testing.T) {
	lo, hi := CANInaccessibility().BoundsAt(can.Rate1Mbps)
	if lo != 14*time.Microsecond {
		t.Fatalf("lo = %v", lo)
	}
	if hi != 2880*time.Microsecond {
		t.Fatalf("hi = %v", hi)
	}
}

func TestFigure1Table(t *testing.T) {
	tab := Figure1()
	s := tab.String()
	for _, want := range []string{"TTP", "Standard CAN", "Membership service", "bus guardian"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Figure 1 missing %q:\n%s", want, s)
		}
	}
	for _, r := range tab.Rows {
		if len(r.Cells) != len(tab.Columns) {
			t.Fatalf("row %q has %d cells", r.Parameter, len(r.Cells))
		}
	}
}

func TestFigure11Table(t *testing.T) {
	tab := Figure11(DefaultFigure11Inputs())
	s := tab.String()
	for _, want := range []string{"14 - 2880 bit-times", "14 - 2160 bit-times", "CANELy", "tens of us"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Figure 11 missing %q:\n%s", want, s)
		}
	}
	for _, r := range tab.Rows {
		if len(r.Cells) != 3 {
			t.Fatalf("row %q has %d cells", r.Parameter, len(r.Cells))
		}
	}
}

func TestRelatedWorkLatencies(t *testing.T) {
	m := DefaultRelatedWork()
	// §6.6: OSEK detection "in the order of one second".
	osek := m.OSEKLatency()
	if osek < 500*time.Millisecond || osek > 2*time.Second {
		t.Fatalf("OSEK latency = %v, want order of 1s", osek)
	}
	// CANELy: "tens of ms" (Figure 11).
	ely := m.CANELyLatency()
	if ely > 50*time.Millisecond {
		t.Fatalf("CANELy latency = %v, want tens of ms", ely)
	}
	if ely >= m.CANopenLatency() || m.CANopenLatency() >= osek {
		t.Fatalf("ordering: CANELy %v < CANopen %v < OSEK %v expected",
			ely, m.CANopenLatency(), osek)
	}
	if !strings.Contains(m.FormatRelatedWork(), "OSEK") {
		t.Fatal("related-work table incomplete")
	}
}

func TestBitTimeAt(t *testing.T) {
	if BitTimeAt(100, can.Rate1Mbps) != 100*time.Microsecond {
		t.Fatal("BitTimeAt wrong")
	}
}
