package analysis

import (
	"fmt"
	"sort"
	"time"

	"canely/internal/can"
)

// Response-time analysis for CAN after Tindell & Burns [20] ("Guaranteeing
// message latencies on Controller Area Network"), the analysis the paper's
// MCAN4 property (bounded transmission delay Ttd = Tqueue + Ttx + Tina)
// rests on. Given a static message set with unique priorities, the worst
// case queuing delay of each message is the longest priority-level busy
// period: blocking by one lower-priority frame already on the wire, plus
// interference from every higher-priority stream, plus the worst-case
// inaccessibility.

// Message is one periodic message stream in the analyzed set.
type Message struct {
	// Name labels the stream in reports.
	Name string
	// Priority orders arbitration: lower value wins. Must be unique.
	Priority int
	// Period is the minimum inter-arrival time.
	Period time.Duration
	// DataBytes sizes the frame (0..8); Remote marks a data-less remote
	// frame.
	DataBytes int
	Remote    bool
}

// wireTime returns the worst-case transmission time of the message's
// frame, interframe space included.
func (m Message) wireTime(rate can.BitRate, format can.FrameFormat) time.Duration {
	data := m.DataBytes
	if m.Remote {
		data = 0
	}
	return rate.DurationOf(can.WorstSlotBits(format, data))
}

// ResponseResult is the analysis outcome for one message.
type ResponseResult struct {
	Message Message
	// C is the frame transmission time, B the blocking term, W the worst
	// queuing delay and R = W + C the worst-case response time.
	C, B, W, R time.Duration
	// Schedulable reports whether R fits within the message's period.
	Schedulable bool
}

// ResponseTimes runs the analysis over a message set. tina is the
// worst-case inaccessibility charged to every busy period (use the
// Inaccessibility bounds for the chosen fault assumptions; zero for a
// fault-free analysis).
func ResponseTimes(msgs []Message, rate can.BitRate, format can.FrameFormat, tina time.Duration) ([]ResponseResult, error) {
	if len(msgs) == 0 {
		return nil, fmt.Errorf("analysis: empty message set")
	}
	seen := map[int]bool{}
	for _, m := range msgs {
		if m.Period <= 0 {
			return nil, fmt.Errorf("analysis: message %q needs a positive period", m.Name)
		}
		if m.DataBytes < 0 || m.DataBytes > can.MaxData {
			return nil, fmt.Errorf("analysis: message %q data size %d out of range", m.Name, m.DataBytes)
		}
		if seen[m.Priority] {
			return nil, fmt.Errorf("analysis: duplicate priority %d", m.Priority)
		}
		seen[m.Priority] = true
	}
	ordered := append([]Message(nil), msgs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Priority < ordered[j].Priority })

	bit := rate.BitTime()
	out := make([]ResponseResult, 0, len(ordered))
	for i, m := range ordered {
		res := ResponseResult{Message: m, C: m.wireTime(rate, format)}
		// Blocking: the longest lower-priority frame that may already be
		// on the wire, plus the inaccessibility allowance.
		for _, lp := range ordered[i+1:] {
			if c := lp.wireTime(rate, format); c > res.B {
				res.B = c
			}
		}
		res.B += tina

		// Busy-period iteration.
		w := res.B
		horizon := 10 * m.Period
		for iter := 0; ; iter++ {
			next := res.B
			for _, hp := range ordered[:i] {
				c := hp.wireTime(rate, format)
				n := (w + bit + hp.Period - 1) / hp.Period
				next += time.Duration(n) * c
			}
			if next == w {
				break
			}
			w = next
			if w > horizon || iter > 10000 {
				// Unschedulable at this priority level.
				w = horizon
				break
			}
		}
		res.W = w
		res.R = w + res.C
		res.Schedulable = res.R <= m.Period && res.W < 10*m.Period
		out = append(out, res)
	}
	return out, nil
}

// CANELyMessageSet returns the protocol message streams of the CANELy
// suite for a network of n nodes with heartbeat period tb and membership
// cycle tm, ready to be merged with the application's own streams. The
// protocol streams hold the top priorities, as the mid encoding enforces.
func CANELyMessageSet(n int, tb, tm time.Duration) []Message {
	set := []Message{
		{Name: "FDA failure-sign", Priority: 1, Period: tm, Remote: true},
		{Name: "RHA vector", Priority: 2, Period: tm, DataBytes: 8},
		{Name: "JOIN/LEAVE", Priority: 3, Period: tm, Remote: true},
	}
	// One life-sign stream per node, each with period Tb; their mutual
	// priority order follows the node identifier in the mid encoding.
	for i := 0; i < maxInt(1, n); i++ {
		set = append(set, Message{
			Name:     fmt.Sprintf("ELS n%02d", i),
			Priority: 4 + i,
			Period:   tb,
			Remote:   true,
		})
	}
	return set
}

// DeriveTtd computes the MCAN4 bound for the CANELy protocol traffic given
// the application streams sharing the bus: the worst response time over
// the protocol messages, inaccessibility included. This is the value to
// configure as Config.Ttd.
func DeriveTtd(appMsgs []Message, n int, tb, tm time.Duration, rate can.BitRate, inacc InaccessibilityParams) (time.Duration, error) {
	set := CANELyMessageSet(n, tb, tm)
	base := 100
	for _, m := range appMsgs {
		m.Priority += base
		set = append(set, m)
	}
	_, hiBits := inacc.Bounds()
	results, err := ResponseTimes(set, rate, can.FormatExtended, rate.DurationOf(hiBits))
	if err != nil {
		return 0, err
	}
	var worst time.Duration
	for _, r := range results {
		if r.Message.Priority < base {
			if !r.Schedulable {
				return 0, fmt.Errorf("analysis: protocol stream %q unschedulable (R=%v > T=%v)",
					r.Message.Name, r.R, r.Message.Period)
			}
			if r.R > worst {
				worst = r.R
			}
		}
	}
	return worst, nil
}

// FormatResponseTimes renders the analysis as a table.
func FormatResponseTimes(results []ResponseResult) string {
	out := fmt.Sprintf("%-22s %5s %10s %10s %10s %6s\n", "message", "prio", "C", "R", "period", "ok")
	for _, r := range results {
		ok := "yes"
		if !r.Schedulable {
			ok = "NO"
		}
		out += fmt.Sprintf("%-22s %5d %10v %10v %10v %6s\n",
			r.Message.Name, r.Message.Priority, r.C, r.R, r.Message.Period, ok)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
