// Package bus simulates a single-channel CAN broadcast bus with the exact
// properties the CANELy protocol suite is designed against (paper §4):
//
//   - carrier sense with deterministic collision resolution: among all
//     pending transmit requests, the frame with the numerically lowest
//     identifier wins arbitration (MCAN property of the MAC sub-layer);
//   - wired-AND clustering: identical remote frames transmitted
//     simultaneously by several nodes merge into a single physical frame,
//     and every clustered sender obtains a transmit confirmation;
//   - broadcast with value-domain correctness: all correct nodes receiving
//     an uncorrupted frame receive the same frame (MCAN1);
//   - error detection and automatic retransmission: consistent corruptions
//     are observed by every node, signalled with an error frame and masked
//     by retransmission (MCAN2, LCAN1-3);
//   - inconsistent omissions: an error in the last two bits of a frame can
//     leave a subset of receivers without a frame the others accepted; the
//     sender retransmits (duplicates) unless it crashes first (inconsistent
//     message omission, LCAN4);
//   - fault confinement: transmit/receive error counters drive the
//     error-active / error-passive / bus-off controller states, enforcing
//     weak-fail-silence of defective nodes.
//
// Timing is bit-accurate under worst-case stuffing: each transmission
// occupies the bus for its frame length plus the interframe space, error
// recovery adds error-frame overhead, and all of it is accounted in Stats
// (total and per message type), from which the Figure 10 bandwidth
// measurements are taken.
package bus

import (
	"fmt"
	"time"

	"canely/internal/can"
	"canely/internal/fault"
	"canely/internal/sim"
	"canely/internal/trace"
)

// Handler receives controller indications. Implemented by the CAN standard
// layer (internal/canlayer).
type Handler interface {
	// OnFrame signals the successful reception of a frame (the .ind
	// service). own marks self-reception of the node's own transmission.
	OnFrame(f can.Frame, own bool)
	// OnConfirm signals the successful transmission of a frame (.cnf).
	OnConfirm(f can.Frame)
	// OnBusOff signals that fault confinement shut the controller down.
	OnBusOff()
}

// Config parameterizes a simulated bus.
type Config struct {
	// Rate is the signalling rate; defaults to 1 Mbit/s.
	Rate can.BitRate
	// Injector decides per-transmission faults; defaults to fault.None.
	Injector fault.Injector
	// Trace receives bus events; nil discards them.
	Trace *trace.Trace
}

// Bus is the simulated channel. Create one with New, attach Ports, then run
// the scheduler.
type Bus struct {
	sched *sim.Scheduler
	rate  can.BitRate
	inj   fault.Injector
	tr    *trace.Trace

	ports map[can.NodeID]*Port
	order []can.NodeID

	busy         bool
	arbScheduled bool
	current      *transmission

	stats Stats
}

// transmission is the frame currently on the wire.
type transmission struct {
	frame   can.Frame
	senders can.NodeSet
	attempt int
}

// New creates a bus on the given scheduler.
func New(sched *sim.Scheduler, cfg Config) *Bus {
	if sched == nil {
		panic("bus: nil scheduler")
	}
	if cfg.Rate == 0 {
		cfg.Rate = can.Rate1Mbps
	}
	if cfg.Injector == nil {
		cfg.Injector = fault.None{}
	}
	return &Bus{
		sched: sched,
		rate:  cfg.Rate,
		inj:   cfg.Injector,
		tr:    cfg.Trace,
		ports: make(map[can.NodeID]*Port),
		stats: newStats(),
	}
}

// Rate returns the configured bit rate.
func (b *Bus) Rate() can.BitRate { return b.rate }

// Scheduler returns the simulation scheduler the bus runs on.
func (b *Bus) Scheduler() *sim.Scheduler { return b.sched }

// Stats returns a snapshot of the accumulated bus statistics.
func (b *Bus) Stats() Stats { return b.stats.clone() }

// Attach connects a new controller to the bus. Attaching the same node id
// twice panics: node identity is a static configuration property.
func (b *Bus) Attach(id can.NodeID) *Port {
	if !id.Valid() {
		panic(fmt.Sprintf("bus: invalid node id %d", id))
	}
	if _, dup := b.ports[id]; dup {
		panic(fmt.Sprintf("bus: node %v attached twice", id))
	}
	p := &Port{bus: b, id: id, alive: true}
	b.ports[id] = p
	b.order = append(b.order, id)
	return p
}

// Port returns the attached port for a node id, or nil.
func (b *Bus) Port(id can.NodeID) *Port { return b.ports[id] }

// AliveSet returns the set of nodes whose controllers are operational
// (attached, not crashed, not bus-off).
func (b *Bus) AliveSet() can.NodeSet {
	var s can.NodeSet
	for _, id := range b.order {
		if p := b.ports[id]; p.operational() {
			s = s.Add(id)
		}
	}
	return s
}

// kick schedules an arbitration pass if the bus is idle and work is queued.
func (b *Bus) kick() {
	if b.busy || b.arbScheduled {
		return
	}
	for _, id := range b.order {
		if p := b.ports[id]; p.operational() && len(p.queue) > 0 {
			b.arbScheduled = true
			b.sched.At(b.sched.Now(), b.arbitrate)
			return
		}
	}
}

// arbitrate resolves the next transmission: the lowest pending identifier
// wins; identical remote frames from several nodes cluster into one
// physical frame.
func (b *Bus) arbitrate() {
	b.arbScheduled = false
	if b.busy {
		return
	}
	now := b.sched.Now()
	var winner *can.Frame
	suspendedWork := sim.Never
	for _, id := range b.order {
		p := b.ports[id]
		if !p.operational() || len(p.queue) == 0 {
			continue
		}
		if p.suspendUntil > now {
			// Error-passive suspend transmission: this node sits out this
			// arbitration; remember to retry when its penalty elapses.
			if p.suspendUntil < suspendedWork {
				suspendedWork = p.suspendUntil
			}
			continue
		}
		head := &p.queue[0].frame
		if winner == nil || head.ID < winner.ID {
			winner = head
		}
	}
	if winner == nil {
		if suspendedWork != sim.Never {
			b.sched.At(suspendedWork, b.kick)
		}
		return
	}
	frame := *winner
	var senders can.NodeSet
	attempt := 0
	for _, id := range b.order {
		p := b.ports[id]
		if !p.operational() || len(p.queue) == 0 || p.suspendUntil > now {
			continue
		}
		head := p.queue[0]
		switch {
		case head.frame == frame || head.frame.SameWire(frame):
			senders = senders.Add(id)
			head.attempts++
			if head.attempts > attempt {
				attempt = head.attempts
			}
		case head.frame.ID == frame.ID:
			// Two distinct frames with one identifier would corrupt each
			// other on a real bus; the CANELy mid scheme statically
			// prevents it, so reaching here is a protocol bug.
			panic(fmt.Sprintf("bus: identifier collision %#x between distinct frames", frame.ID))
		}
	}
	if senders.Empty() {
		panic("bus: arbitration winner has no sender")
	}

	b.busy = true
	b.current = &transmission{frame: frame, senders: senders, attempt: attempt}
	bits := can.FrameBits(frame)
	b.tr.Emit(trace.KindTxStart, -1, "%v senders=%v attempt=%d", frame, senders, attempt)
	b.sched.After(b.rate.DurationOf(bits), b.complete)
}

// complete finishes the transmission on the wire, applying any injected
// fault and dispatching indications/confirmations.
func (b *Bus) complete() {
	tx := b.current
	receivers := b.AliveSet().Diff(tx.senders)
	decision := b.inj.Decide(fault.TxContext{
		Now:       b.sched.Now(),
		Frame:     tx.frame,
		Senders:   tx.senders,
		Receivers: receivers,
		Attempt:   tx.attempt,
	})

	frameBits := can.FrameBits(tx.frame)
	switch {
	case decision.Corrupt:
		b.stats.recordError(tx.frame, frameBits, b.rate)
		b.tr.Emit(trace.KindTxError, -1, "%v attempt=%d", tx.frame, tx.attempt)
		b.bumpErrorCounters(tx.senders, receivers)
		// The frame plus the error frame plus intermission occupy the wire;
		// the request stays queued at every sender for retransmission.
		b.finish(can.ErrorFrameMaxBits + can.InterframeBits)

	case !decision.InconsistentVictims.Empty():
		victims := decision.InconsistentVictims.Intersect(receivers)
		accepted := receivers.Diff(victims)
		b.stats.recordInconsistent(tx.frame, frameBits, b.rate)
		b.tr.Emit(trace.KindTxIncons, -1, "%v victims=%v crash=%t", tx.frame, victims, decision.CrashSenders)
		// Nodes past the last-but-one bit accept the frame; the victims
		// signal an error the senders observe, so the senders treat the
		// attempt as failed and keep the request queued.
		b.deliver(tx.frame, accepted, can.EmptySet)
		b.bumpErrorCounters(tx.senders, victims)
		if decision.CrashSenders {
			for _, id := range tx.senders.IDs() {
				b.ports[id].Crash()
			}
		}
		b.finish(can.ErrorFrameMaxBits + can.InterframeBits)

	default:
		b.stats.recordSuccess(tx.frame, frameBits, b.rate)
		b.tr.Emit(trace.KindTxSuccess, -1, "%v senders=%v", tx.frame, tx.senders)
		b.deliver(tx.frame, receivers, tx.senders)
		for _, id := range tx.senders.IDs() {
			p := b.ports[id]
			if !p.operational() {
				// The sender crashed (or went bus-off) while its frame was
				// on the wire: the frame still completed, but there is no
				// queue entry left and nobody to confirm to.
				continue
			}
			p.dequeue(tx.frame)
			p.onTxSuccess()
			if p.handler != nil {
				p.handler.OnConfirm(tx.frame)
			}
		}
		if decision.CrashSenders {
			for _, id := range tx.senders.IDs() {
				b.ports[id].Crash()
			}
		}
		overhead := can.InterframeBits
		if n := decision.OverloadFrames; n > 0 {
			// ISO 11898 bounds reactive overload frames to two in a row.
			if n > 2 {
				n = 2
			}
			overhead += n * can.OverloadFrameMaxBits
		}
		b.finish(overhead)
	}
}

// deliver dispatches a frame indication to receivers and self-reception to
// senders, in deterministic node order.
func (b *Bus) deliver(f can.Frame, receivers, senders can.NodeSet) {
	for _, id := range b.order {
		p := b.ports[id]
		if !p.operational() || p.handler == nil {
			continue
		}
		switch {
		case receivers.Contains(id):
			p.onRxSuccess()
			p.handler.OnFrame(f, false)
		case senders.Contains(id):
			p.handler.OnFrame(f, true)
		}
	}
}

// bumpErrorCounters applies the fault-confinement counter rules after a
// failed transmission.
func (b *Bus) bumpErrorCounters(senders, victims can.NodeSet) {
	for _, id := range senders.IDs() {
		b.ports[id].onTxError()
	}
	for _, id := range victims.IDs() {
		b.ports[id].onRxError()
	}
}

// suspendTransmissionBits is the extra idle penalty an error-passive node
// pays after transmitting (ISO 11898 §8.9).
const suspendTransmissionBits = 8

// finish occupies the wire for the trailing overhead then frees the bus,
// applying the suspend-transmission penalty to error-passive senders.
func (b *Bus) finish(overheadBits int) {
	senders := can.EmptySet
	if b.current != nil {
		senders = b.current.senders
	}
	busFree := b.sched.Now().Add(b.rate.DurationOf(overheadBits))
	for _, id := range senders.IDs() {
		if p := b.ports[id]; p.state == ErrorPassive {
			p.suspendUntil = busFree.Add(b.rate.DurationOf(suspendTransmissionBits))
		}
	}
	b.stats.recordOverhead(overheadBits, b.rate)
	b.current = nil
	b.sched.At(busFree, func() {
		b.busy = false
		b.kick()
	})
}

// transmittingFrame reports whether the given identifier is on the wire now.
func (b *Bus) transmitting(id uint32) bool {
	return b.busy && b.current != nil && b.current.frame.ID == id
}

// Elapsed returns the bus time base for utilization computations.
func (b *Bus) Elapsed() time.Duration { return time.Duration(b.sched.Now()) }
