package bus

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/fault"
	"canely/internal/sim"
)

// recorder is a Handler that records everything it is told.
type recorder struct {
	frames   []can.Frame
	own      []bool
	confirms []can.Frame
	busOff   bool
}

func (r *recorder) OnFrame(f can.Frame, own bool) {
	r.frames = append(r.frames, f)
	r.own = append(r.own, own)
}
func (r *recorder) OnConfirm(f can.Frame) { r.confirms = append(r.confirms, f) }
func (r *recorder) OnBusOff()             { r.busOff = true }

// rig builds a bus with n attached, handled nodes.
type rig struct {
	sched *sim.Scheduler
	bus   *Bus
	ports []*Port
	recs  []*recorder
}

func newRig(t *testing.T, n int, inj fault.Injector) *rig {
	t.Helper()
	s := sim.NewScheduler()
	b := New(s, Config{Injector: inj})
	r := &rig{sched: s, bus: b}
	for i := 0; i < n; i++ {
		p := b.Attach(can.NodeID(i))
		rec := &recorder{}
		p.SetHandler(rec)
		r.ports = append(r.ports, p)
		r.recs = append(r.recs, rec)
	}
	return r
}

func dataFrame(src can.NodeID, ref uint8) can.Frame {
	f := can.Frame{ID: can.DataSign(0, src, ref).Encode()}
	f.SetPayload([]byte{byte(src), ref})
	return f
}

func rtrFrame(mid can.MID) can.Frame {
	return can.Frame{ID: mid.Encode(), RTR: true}
}

func TestBroadcastDelivery(t *testing.T) {
	r := newRig(t, 4, nil)
	f := dataFrame(0, 1)
	if err := r.ports[0].Request(f); err != nil {
		t.Fatal(err)
	}
	r.sched.Run()

	// Sender gets self-reception + confirm; receivers get the frame once.
	if len(r.recs[0].frames) != 1 || !r.recs[0].own[0] {
		t.Fatalf("sender self-reception wrong: %v %v", r.recs[0].frames, r.recs[0].own)
	}
	if len(r.recs[0].confirms) != 1 {
		t.Fatalf("sender confirms = %d", len(r.recs[0].confirms))
	}
	for i := 1; i < 4; i++ {
		if len(r.recs[i].frames) != 1 || r.recs[i].own[0] {
			t.Fatalf("receiver %d frames wrong", i)
		}
		if r.recs[i].frames[0].ID != f.ID {
			t.Fatal("MCAN1 violated: receiver saw a different frame")
		}
	}
}

func TestTransmissionTiming(t *testing.T) {
	r := newRig(t, 2, nil)
	f := dataFrame(0, 1)
	r.ports[0].Request(f)
	r.sched.Run()
	want := can.Rate1Mbps.DurationOf(can.SlotBits(f))
	if got := time.Duration(r.sched.Now()); got != want {
		t.Fatalf("bus busy for %v, want %v (frame+IFS)", got, want)
	}
}

func TestArbitrationLowestIDWins(t *testing.T) {
	r := newRig(t, 3, nil)
	hi := dataFrame(1, 1) // DATA type: low priority
	lo := rtrFrame(can.FDASign(5))
	// Queue both before the bus starts: same instant.
	r.ports[1].Request(hi)
	r.ports[2].Request(lo)
	r.sched.Run()
	// Receiver 0 must see FDA first, DATA second.
	if len(r.recs[0].frames) != 2 {
		t.Fatalf("frames = %d", len(r.recs[0].frames))
	}
	if r.recs[0].frames[0].ID != lo.ID || r.recs[0].frames[1].ID != hi.ID {
		t.Fatal("arbitration order wrong: lowest identifier must win")
	}
}

func TestRemoteFrameClustering(t *testing.T) {
	r := newRig(t, 4, nil)
	f := rtrFrame(can.FDASign(9))
	r.ports[0].Request(f)
	r.ports[1].Request(f)
	r.sched.Run()
	// One physical frame: both senders confirmed, receivers saw it once.
	if len(r.recs[0].confirms) != 1 || len(r.recs[1].confirms) != 1 {
		t.Fatal("both clustered senders must be confirmed")
	}
	if len(r.recs[2].frames) != 1 || len(r.recs[3].frames) != 1 {
		t.Fatalf("receivers must see exactly one frame, got %d/%d",
			len(r.recs[2].frames), len(r.recs[3].frames))
	}
	if got := r.bus.Stats().FramesOK; got != 1 {
		t.Fatalf("physical frames = %d, want 1 (wired-AND)", got)
	}
}

func TestDataFramesNeverCluster(t *testing.T) {
	r := newRig(t, 3, nil)
	r.ports[0].Request(dataFrame(0, 1))
	r.ports[1].Request(dataFrame(1, 1))
	r.sched.Run()
	if got := r.bus.Stats().FramesOK; got != 2 {
		t.Fatalf("physical frames = %d, want 2", got)
	}
}

func TestConsistentCorruptionMaskedByRetransmission(t *testing.T) {
	script := fault.NewScript(fault.Rule{
		Match:    fault.NewMatch(can.TypeData),
		Decision: fault.Decision{Corrupt: true},
	})
	r := newRig(t, 3, script)
	r.ports[0].Request(dataFrame(0, 7))
	r.sched.Run()
	// LCAN1/LCAN2: the message is eventually delivered everywhere, exactly
	// once (no one accepted the corrupted attempt).
	for i := 1; i < 3; i++ {
		if len(r.recs[i].frames) != 1 {
			t.Fatalf("receiver %d got %d frames", i, len(r.recs[i].frames))
		}
	}
	st := r.bus.Stats()
	if st.FramesError != 1 || st.FramesOK != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Inaccessibility == 0 {
		t.Fatal("error recovery must be accounted as inaccessibility")
	}
}

func TestInconsistentOmissionDuplicates(t *testing.T) {
	// Victim 2 misses the first attempt; sender retransmits; node 1 ends
	// with a duplicate (LCAN3 at-least-once), node 2 with one copy.
	script := fault.NewScript(fault.Rule{
		Match:    fault.NewMatch(can.TypeData),
		Decision: fault.Decision{InconsistentVictims: can.MakeSet(2)},
	})
	r := newRig(t, 3, script)
	r.ports[0].Request(dataFrame(0, 7))
	r.sched.Run()
	if len(r.recs[1].frames) != 2 {
		t.Fatalf("non-victim should hold a duplicate, got %d", len(r.recs[1].frames))
	}
	if len(r.recs[2].frames) != 1 {
		t.Fatalf("victim should get the retransmission, got %d", len(r.recs[2].frames))
	}
	if len(r.recs[0].confirms) != 1 {
		t.Fatal("sender should confirm once, on the successful attempt")
	}
}

func TestInconsistentOmissionWithSenderCrash(t *testing.T) {
	// The full failure scenario of [18]: sender dies before retransmitting;
	// node 1 has the message, node 2 never gets it.
	script := fault.NewScript(fault.Rule{
		Match: fault.NewMatch(can.TypeData),
		Decision: fault.Decision{
			InconsistentVictims: can.MakeSet(2),
			CrashSenders:        true,
		},
	})
	r := newRig(t, 3, script)
	r.ports[0].Request(dataFrame(0, 7))
	r.sched.Run()
	if len(r.recs[1].frames) != 1 {
		t.Fatalf("non-victim frames = %d", len(r.recs[1].frames))
	}
	if len(r.recs[2].frames) != 0 {
		t.Fatalf("victim must never receive (inconsistent omission), got %d", len(r.recs[2].frames))
	}
	if r.ports[0].Alive() {
		t.Fatal("sender should have crashed")
	}
	if len(r.recs[0].confirms) != 0 {
		t.Fatal("crashed sender must not be confirmed")
	}
}

func TestCrashStopsReception(t *testing.T) {
	r := newRig(t, 3, nil)
	r.ports[2].Crash()
	r.ports[0].Request(dataFrame(0, 1))
	r.sched.Run()
	if len(r.recs[2].frames) != 0 {
		t.Fatal("crashed node received a frame")
	}
	if r.bus.AliveSet() != can.MakeSet(0, 1) {
		t.Fatalf("AliveSet = %v", r.bus.AliveSet())
	}
}

func TestRequestRejectedAfterCrash(t *testing.T) {
	r := newRig(t, 2, nil)
	r.ports[0].Crash()
	if err := r.ports[0].Request(dataFrame(0, 1)); err == nil {
		t.Fatal("request on crashed node must be rejected")
	}
}

func TestAbortPendingOnly(t *testing.T) {
	r := newRig(t, 2, nil)
	f1 := rtrFrame(can.FDASign(1))
	f2 := dataFrame(0, 9)
	r.ports[0].Request(f1)
	r.ports[0].Request(f2)
	// Step into the first transmission: f1 is on the wire, f2 pending.
	r.sched.Step() // arbitration event
	if ok := r.ports[0].Abort(f1.ID); ok {
		t.Fatal("abort must not recall a frame on the wire")
	}
	if ok := r.ports[0].Abort(f2.ID); !ok {
		t.Fatal("abort of a pending request must succeed")
	}
	r.sched.Run()
	if len(r.recs[1].frames) != 1 || r.recs[1].frames[0].ID != f1.ID {
		t.Fatal("only the on-wire frame should have been delivered")
	}
}

func TestRequestReplacesSameID(t *testing.T) {
	r := newRig(t, 2, nil)
	blocker := rtrFrame(can.FDASign(0))
	r.ports[1].Request(blocker) // occupies the wire first
	f := dataFrame(0, 1)
	f.SetPayload([]byte{1})
	r.ports[0].Request(f)
	r.sched.Step() // start blocker transmission
	g := f
	g.SetPayload([]byte{2})
	r.ports[0].Request(g) // replaces the pending f
	r.sched.Run()
	var got []can.Frame
	for _, fr := range r.recs[1].frames {
		if !fr.RTR {
			got = append(got, fr)
		}
	}
	if len(got) != 1 || got[0].Data[0] != 2 {
		t.Fatalf("replacement failed: %v", got)
	}
}

func TestPendingEquivalent(t *testing.T) {
	r := newRig(t, 2, nil)
	blocker := dataFrame(1, 1)
	r.ports[1].Request(blocker)
	r.sched.Step() // blocker on the wire
	f := rtrFrame(can.FDASign(3))
	r.ports[0].Request(f)
	if !r.ports[0].PendingEquivalent(f) {
		t.Fatal("queued equivalent not found")
	}
	if r.ports[0].PendingEquivalent(rtrFrame(can.FDASign(4))) {
		t.Fatal("different param should not be equivalent")
	}
	r.sched.Run()
	if r.ports[0].PendingEquivalent(f) {
		t.Fatal("transmitted request should leave the queue")
	}
}

func TestBusOffAfterRepeatedTxErrors(t *testing.T) {
	script := fault.NewScript(fault.Rule{
		Match:    fault.NewMatch(can.TypeData),
		Decision: fault.Decision{Corrupt: true},
		Repeat:   true,
	})
	r := newRig(t, 2, script)
	r.ports[0].Request(dataFrame(0, 1))
	// TEC += 8 per error: 32 failed attempts reach the bus-off limit 256.
	r.sched.RunUntil(sim.Time(time.Second))
	if r.ports[0].State() != BusOff {
		tec, _ := r.ports[0].Counters()
		t.Fatalf("state = %v (tec=%d), want bus-off", r.ports[0].State(), tec)
	}
	if !r.recs[0].busOff {
		t.Fatal("handler must be told about bus-off")
	}
	if r.ports[0].Operational() {
		t.Fatal("bus-off controller must not be operational")
	}
	// The weak-fail-silent enforcement: the defective node stopped
	// babbling, so the bus went idle before the deadline.
	if r.sched.Pending() != 0 && r.bus.Stats().FramesError >= 33 {
		t.Fatal("bus-off node kept transmitting")
	}
}

func TestErrorPassiveTransition(t *testing.T) {
	script := fault.NewScript(fault.Rule{
		Match:      fault.NewMatch(can.TypeData),
		Decision:   fault.Decision{Corrupt: true},
		Repeat:     true,
		Occurrence: 1,
	})
	r := newRig(t, 2, script)
	r.ports[0].Request(dataFrame(0, 1))
	// Run 16 failed attempts: TEC = 128 -> error passive.
	for i := 0; i < 16*3+2; i++ {
		if !r.sched.Step() {
			break
		}
	}
	tec, _ := r.ports[0].Counters()
	if tec < PassiveLimit {
		t.Skipf("tec=%d; stepping did not reach passive yet", tec)
	}
	if r.ports[0].State() != ErrorPassive && r.ports[0].State() != BusOff {
		t.Fatalf("state = %v", r.ports[0].State())
	}
}

func TestStatsPerTypeAccounting(t *testing.T) {
	r := newRig(t, 2, nil)
	els := rtrFrame(can.ELSSign(0))
	r.ports[0].Request(els)
	r.sched.Run()
	st := r.bus.Stats()
	wantBits := int64(can.SlotBits(els))
	if st.BitsBusy != wantBits {
		t.Fatalf("BitsBusy = %d, want %d", st.BitsBusy, wantBits)
	}
	if st.BitsByType[can.TypeELS] != wantBits {
		t.Fatalf("ELS bits = %d, want %d", st.BitsByType[can.TypeELS], wantBits)
	}
	u := st.TypeUtilization(can.Rate1Mbps, r.bus.Elapsed(), can.TypeELS)
	if u <= 0.99 || u > 1.01 {
		t.Fatalf("utilization = %f, want ~1 (bus fully busy)", u)
	}
}

func TestStatsSubWindow(t *testing.T) {
	r := newRig(t, 2, nil)
	r.ports[0].Request(rtrFrame(can.ELSSign(0)))
	r.sched.Run()
	before := r.bus.Stats()
	r.ports[0].Request(rtrFrame(can.ELSSign(0)))
	r.sched.Run()
	window := r.bus.Stats().Sub(before)
	if window.FramesOK != 1 {
		t.Fatalf("windowed frames = %d, want 1", window.FramesOK)
	}
	if window.BitsBusy != before.BitsBusy {
		t.Fatal("two identical frames should cost the same bits")
	}
}

func TestAttachTwicePanics(t *testing.T) {
	r := newRig(t, 1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double attach should panic")
		}
	}()
	r.bus.Attach(0)
}

func TestIdentifierCollisionPanics(t *testing.T) {
	r := newRig(t, 2, nil)
	a := dataFrame(0, 1)
	b := a // same identifier, different payload, different sender
	b.SetPayload([]byte{0xFF})
	r.ports[0].Request(a)
	r.ports[1].Request(b)
	defer func() {
		if recover() == nil {
			t.Fatal("distinct frames with one identifier should panic")
		}
	}()
	r.sched.Run()
}

func TestBackToBackFramesKeepInterframeSpace(t *testing.T) {
	r := newRig(t, 2, nil)
	f1 := dataFrame(0, 1)
	f2 := dataFrame(0, 2)
	r.ports[0].Request(f1)
	r.ports[0].Request(f2)
	r.sched.Run()
	want := can.Rate1Mbps.DurationOf(can.SlotBits(f1) + can.SlotBits(f2))
	if got := time.Duration(r.sched.Now()); got != want {
		t.Fatalf("two frames took %v, want %v", got, want)
	}
}

func TestSameInstantRequestsCluster(t *testing.T) {
	// Requests submitted from events at the same instant must cluster even
	// though their submissions are sequential.
	r := newRig(t, 4, nil)
	f := rtrFrame(can.FDASign(2))
	at := sim.Time(time.Millisecond)
	for i := 0; i < 3; i++ {
		p := r.ports[i]
		r.sched.At(at, func() { p.Request(f) })
	}
	r.sched.Run()
	if got := r.bus.Stats().FramesOK; got != 1 {
		t.Fatalf("physical frames = %d, want 1", got)
	}
	if len(r.recs[3].frames) != 1 {
		t.Fatalf("receiver saw %d frames", len(r.recs[3].frames))
	}
}

func TestMidTransmissionRequestWaits(t *testing.T) {
	r := newRig(t, 3, nil)
	f := rtrFrame(can.FDASign(2))
	r.ports[0].Request(f)
	r.sched.Step() // arbitration: node 0 alone on the wire
	// Node 1 requests the identical remote frame mid-transmission: it must
	// NOT cluster (it missed arbitration) and transmits its own copy later.
	r.ports[1].Request(f)
	r.sched.Run()
	if got := r.bus.Stats().FramesOK; got != 2 {
		t.Fatalf("physical frames = %d, want 2 (late request cannot cluster)", got)
	}
	// Receiver 2 sees a duplicate — exactly what FDA's ndup counters absorb.
	if len(r.recs[2].frames) != 2 {
		t.Fatalf("receiver frames = %d", len(r.recs[2].frames))
	}
}

func TestErrorPassiveSuspendTransmission(t *testing.T) {
	// Drive node 0 error-passive (17 scripted corruptions leave TEC at
	// 17*8-1 = 135 after the final success), then race it against an
	// error-active node: the suspend-transmission penalty must let the
	// active node's LOWER-priority frame through first once the passive
	// node has just transmitted.
	rules := make([]fault.Rule, 0, 17)
	for i := 0; i < 17; i++ {
		rules = append(rules, fault.Rule{
			Match:    fault.Match{Type: can.TypeData, Param: fault.AnyParam, Sender: 0},
			Decision: fault.Decision{Corrupt: true},
		})
	}
	script := fault.NewScript(rules...)
	r := newRig(t, 3, script)
	r.ports[0].Request(dataFrame(0, 1))
	r.sched.Run() // 16 failures then the 17th attempt succeeds
	if r.ports[0].State() != ErrorPassive {
		tec, _ := r.ports[0].Counters()
		t.Fatalf("state = %v (tec=%d), want error-passive", r.ports[0].State(), tec)
	}

	// Both nodes queue immediately after the passive node's success: the
	// passive node has the higher-priority frame (FDA) but must wait the
	// suspend penalty, so the active node's DATA frame wins the next slot.
	r.ports[0].Request(rtrFrame(can.FDASign(1)))
	r.ports[1].Request(dataFrame(1, 9))
	var order []uint32
	base := len(r.recs[2].frames)
	r.sched.Run()
	for _, f := range r.recs[2].frames[base:] {
		order = append(order, f.ID)
	}
	if len(order) != 2 {
		t.Fatalf("frames observed = %d", len(order))
	}
	if order[0] != dataFrame(1, 9).ID {
		t.Fatalf("suspend-transmission not enforced: order = %#x", order)
	}
	if order[1] != rtrFrame(can.FDASign(1)).ID {
		t.Fatalf("suspended frame never followed: order = %#x", order)
	}
}

func TestSuspendOnlyAppliesToPassiveNodes(t *testing.T) {
	r := newRig(t, 3, nil)
	// An error-active node transmits back-to-back with no extra gap.
	f1, f2 := dataFrame(0, 1), dataFrame(0, 2)
	r.ports[0].Request(f1)
	r.ports[0].Request(f2)
	r.sched.Run()
	want := can.Rate1Mbps.DurationOf(can.SlotBits(f1) + can.SlotBits(f2))
	if got := time.Duration(r.sched.Now()); got != want {
		t.Fatalf("active node delayed: %v, want %v", got, want)
	}
}

func TestOverloadFramesDelayNextFrame(t *testing.T) {
	script := fault.NewScript(fault.Rule{
		Match:    fault.NewMatch(can.TypeData),
		Decision: fault.Decision{OverloadFrames: 2},
	})
	r := newRig(t, 2, script)
	f1, f2 := dataFrame(0, 1), dataFrame(0, 2)
	r.ports[0].Request(f1)
	r.ports[0].Request(f2)
	r.sched.Run()
	// Both frames delivered, but two overload frames sit between them.
	if len(r.recs[1].frames) != 2 {
		t.Fatalf("frames = %d", len(r.recs[1].frames))
	}
	want := can.Rate1Mbps.DurationOf(
		can.SlotBits(f1) + 2*can.OverloadFrameMaxBits + can.SlotBits(f2))
	if got := time.Duration(r.sched.Now()); got != want {
		t.Fatalf("elapsed %v, want %v (overload accounted)", got, want)
	}
	// Overload time counts as inaccessibility.
	if r.bus.Stats().Inaccessibility != can.Rate1Mbps.DurationOf(2*can.OverloadFrameMaxBits) {
		t.Fatalf("inaccessibility = %v", r.bus.Stats().Inaccessibility)
	}
}

func TestOverloadFramesClampedToTwo(t *testing.T) {
	script := fault.NewScript(fault.Rule{
		Match:    fault.NewMatch(can.TypeData),
		Decision: fault.Decision{OverloadFrames: 9},
	})
	r := newRig(t, 2, script)
	f := dataFrame(0, 1)
	r.ports[0].Request(f)
	r.sched.Run()
	want := can.Rate1Mbps.DurationOf(can.SlotBits(f) + 2*can.OverloadFrameMaxBits)
	if got := time.Duration(r.sched.Now()); got != want {
		t.Fatalf("elapsed %v, want %v (clamp to 2 overload frames)", got, want)
	}
}

func TestBusAccessors(t *testing.T) {
	r := newRig(t, 2, nil)
	if r.bus.Rate() != can.Rate1Mbps {
		t.Fatal("Rate accessor wrong")
	}
	if r.bus.Scheduler() != r.sched {
		t.Fatal("Scheduler accessor wrong")
	}
	if r.bus.Port(1) != r.ports[1] || r.bus.Port(60) != nil {
		t.Fatal("Port accessor wrong")
	}
	if r.ports[1].ID() != 1 {
		t.Fatal("ID accessor wrong")
	}
	f := dataFrame(0, 1)
	blocker := rtrFrame(can.FDASign(0))
	r.ports[1].Request(blocker)
	r.sched.Step() // blocker on the wire
	r.ports[0].Request(f)
	if !r.ports[0].Pending(f.ID) || r.ports[0].Pending(12345) {
		t.Fatal("Pending accessor wrong")
	}
	if r.ports[0].QueueLen() != 1 {
		t.Fatalf("QueueLen = %d", r.ports[0].QueueLen())
	}
	r.sched.Run()
	if r.ports[0].TxSuccesses() != 1 {
		t.Fatalf("TxSuccesses = %d", r.ports[0].TxSuccesses())
	}
	if r.ports[0].RxSuccesses() != 1 { // the blocker frame
		t.Fatalf("RxSuccesses = %d", r.ports[0].RxSuccesses())
	}
	for _, s := range []ControllerState{ErrorActive, ErrorPassive, BusOff} {
		if s.String() == "" {
			t.Fatal("state String empty")
		}
	}
	st := r.bus.Stats()
	if u := st.Utilization(can.Rate1Mbps, time.Duration(r.sched.Now())); u <= 0.99 {
		t.Fatalf("utilization = %f for a saturated run", u)
	}
	if st.Utilization(can.Rate1Mbps, 0) != 0 {
		t.Fatal("zero-window utilization should be 0")
	}
	if st.String() == "" {
		t.Fatal("stats String empty")
	}
}
