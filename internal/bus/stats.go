package bus

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"canely/internal/can"
)

// Stats accumulates bus occupancy and outcome counters. Per-type bit
// accounting is what the Figure 10 bandwidth measurement reduces.
type Stats struct {
	// FramesOK counts successfully completed physical frames.
	FramesOK int
	// FramesError counts consistently corrupted transmissions.
	FramesError int
	// FramesInconsistent counts transmissions hit in the last two bits.
	FramesInconsistent int

	// BitsBusy is the total wire occupancy in bit times: frames, error
	// frames and interframe spaces.
	BitsBusy int64
	// BitsByType attributes frame bits (including their recovery overhead)
	// to the CANELy message type that occupied the wire.
	BitsByType map[can.MsgType]int64
	// ErrorBits is the wire time spent on error signalling and wasted
	// (corrupted) frames — the raw material of inaccessibility.
	ErrorBits int64
	// Inaccessibility is the accumulated time the bus was operational but
	// not providing useful service (error recovery), cf. [22].
	Inaccessibility time.Duration

	lastType can.MsgType
}

func newStats() Stats {
	return Stats{BitsByType: make(map[can.MsgType]int64)}
}

func (s *Stats) clone() Stats {
	out := *s
	out.BitsByType = make(map[can.MsgType]int64, len(s.BitsByType))
	for k, v := range s.BitsByType {
		out.BitsByType[k] = v
	}
	return out
}

func (s *Stats) typeOf(f can.Frame) can.MsgType {
	mid, err := can.DecodeMID(f.ID)
	if err != nil {
		return 0
	}
	return mid.Type
}

func (s *Stats) recordSuccess(f can.Frame, bits int, r can.BitRate) {
	s.FramesOK++
	s.BitsBusy += int64(bits)
	s.lastType = s.typeOf(f)
	s.BitsByType[s.lastType] += int64(bits)
}

func (s *Stats) recordError(f can.Frame, bits int, r can.BitRate) {
	s.FramesError++
	s.BitsBusy += int64(bits)
	s.ErrorBits += int64(bits)
	s.lastType = s.typeOf(f)
	s.BitsByType[s.lastType] += int64(bits)
	s.Inaccessibility += r.DurationOf(bits)
}

func (s *Stats) recordInconsistent(f can.Frame, bits int, r can.BitRate) {
	s.FramesInconsistent++
	s.BitsBusy += int64(bits)
	s.lastType = s.typeOf(f)
	s.BitsByType[s.lastType] += int64(bits)
}

// recordOverhead accounts trailing wire occupancy (interframe space, error
// frame bits) against the type of the frame that caused it.
func (s *Stats) recordOverhead(bits int, r can.BitRate) {
	s.BitsBusy += int64(bits)
	s.BitsByType[s.lastType] += int64(bits)
	if bits > can.InterframeBits {
		err := bits - can.InterframeBits
		s.ErrorBits += int64(err)
		s.Inaccessibility += r.DurationOf(err)
	}
}

// Sub returns the difference s - earlier, for windowed measurements.
func (s Stats) Sub(earlier Stats) Stats {
	out := s.clone()
	out.FramesOK -= earlier.FramesOK
	out.FramesError -= earlier.FramesError
	out.FramesInconsistent -= earlier.FramesInconsistent
	out.BitsBusy -= earlier.BitsBusy
	out.ErrorBits -= earlier.ErrorBits
	out.Inaccessibility -= earlier.Inaccessibility
	for k, v := range earlier.BitsByType {
		out.BitsByType[k] -= v
	}
	return out
}

// Utilization returns the fraction of the elapsed interval the bus was
// busy, at the given bit rate.
func (s Stats) Utilization(r can.BitRate, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.DurationOf(int(s.BitsBusy))) / float64(elapsed)
}

// TypeUtilization returns the fraction of the elapsed interval consumed by
// frames of the given types (including their recovery overhead).
func (s Stats) TypeUtilization(r can.BitRate, elapsed time.Duration, types ...can.MsgType) float64 {
	if elapsed <= 0 {
		return 0
	}
	var bits int64
	for _, t := range types {
		bits += s.BitsByType[t]
	}
	return float64(r.DurationOf(int(bits))) / float64(elapsed)
}

// String renders a compact multi-line summary.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "frames ok=%d err=%d incons=%d busy=%d bits (err=%d) inaccess=%v\n",
		s.FramesOK, s.FramesError, s.FramesInconsistent, s.BitsBusy, s.ErrorBits, s.Inaccessibility)
	types := make([]int, 0, len(s.BitsByType))
	for t := range s.BitsByType {
		types = append(types, int(t))
	}
	sort.Ints(types)
	for _, t := range types {
		fmt.Fprintf(&sb, "  %-6v %d bits\n", can.MsgType(t), s.BitsByType[can.MsgType(t)])
	}
	return sb.String()
}
