package bus

import (
	"errors"
	"fmt"
	"sort"

	"canely/internal/can"
	"canely/internal/sim"
	"canely/internal/trace"
)

// ControllerState is the CAN fault-confinement state of a controller.
type ControllerState int

// Fault-confinement states (ISO 11898 §8).
const (
	// ErrorActive controllers participate fully and signal errors with
	// active (dominant) error flags.
	ErrorActive ControllerState = iota
	// ErrorPassive controllers may still communicate but signal errors
	// passively and wait a suspend-transmission penalty.
	ErrorPassive
	// BusOff controllers are disconnected from bus traffic: the hardware
	// realization of the weak-fail-silent assumption (paper §4).
	BusOff
)

// String names the state.
func (s ControllerState) String() string {
	switch s {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	default:
		return "bus-off"
	}
}

// Fault-confinement thresholds (ISO 11898 §8): counter deltas and the state
// boundaries. Exported so the frame-level substrate (internal/fastbus) runs
// the exact same confinement arithmetic.
const (
	TECOnError     = 8
	RECOnError     = 1
	PassiveLimit   = 128
	BusOffLimit    = 256
	MaxRECAfterFix = 120 // REC clamp after recovery, per the standard
)

// txReq is a queued transmit request.
type txReq struct {
	frame    can.Frame
	attempts int
}

// Port is a CAN controller attached to the bus: a priority-ordered transmit
// queue, a receive path with self-reception, abort support, and the TEC/REC
// fault-confinement machinery.
type Port struct {
	bus     *Bus
	id      can.NodeID
	handler Handler
	queue   []*txReq

	alive bool
	tec   int
	rec   int
	state ControllerState

	// suspendUntil implements the error-passive suspend-transmission rule
	// (ISO 11898 §8.9): after transmitting, an error-passive node must
	// wait eight extra bit times before competing for the bus again,
	// restoring fairness toward error-active nodes.
	suspendUntil sim.Time

	// Counters exposed for tests and experiment reports.
	txOK int
	rxOK int
}

// ID returns the node identity of this controller.
func (p *Port) ID() can.NodeID { return p.id }

// SetHandler installs the indication receiver. Must be called before the
// simulation delivers traffic to this node.
func (p *Port) SetHandler(h Handler) { p.handler = h }

// State returns the fault-confinement state.
func (p *Port) State() ControllerState { return p.state }

// Counters returns (TEC, REC).
func (p *Port) Counters() (tec, rec int) { return p.tec, p.rec }

// Alive reports whether the node has not crashed. A bus-off controller on a
// live node reports true here but false from Operational.
func (p *Port) Alive() bool { return p.alive }

// Operational reports whether the controller exchanges traffic: alive and
// not bus-off.
func (p *Port) Operational() bool { return p.operational() }

func (p *Port) operational() bool { return p.alive && p.state != BusOff }

// TxSuccesses returns the number of successfully transmitted frames.
func (p *Port) TxSuccesses() int { return p.txOK }

// RxSuccesses returns the number of successfully received frames.
func (p *Port) RxSuccesses() int { return p.rxOK }

// ErrRequestRejected reports a transmit request on a dead or bus-off
// controller.
var ErrRequestRejected = errors.New("bus: controller not operational")

// Request queues a frame for transmission. A pending request with the same
// identifier is replaced (mailbox semantics of real CAN controllers); a
// frame currently being transmitted is not affected. The queue is kept in
// identifier order so the head is always the local arbitration candidate.
func (p *Port) Request(f can.Frame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if !p.operational() {
		return ErrRequestRejected
	}
	replaced := false
	for _, r := range p.queue {
		if r.frame.ID == f.ID && r.frame.RTR == f.RTR {
			r.frame = f
			r.attempts = 0
			replaced = true
			break
		}
	}
	if !replaced {
		p.queue = append(p.queue, &txReq{frame: f})
		sort.SliceStable(p.queue, func(i, j int) bool {
			return p.queue[i].frame.ID < p.queue[j].frame.ID
		})
	}
	p.bus.kick()
	return nil
}

// PendingEquivalent reports whether a transmit request indistinguishable on
// the wire from f is queued — FDA recipients use this to honour the paper's
// "in the absence of an equivalent transmit request" guard.
func (p *Port) PendingEquivalent(f can.Frame) bool {
	for _, r := range p.queue {
		if r.frame.SameWire(f) {
			return true
		}
	}
	return false
}

// Pending reports whether a request with the identifier is queued.
func (p *Port) Pending(id uint32) bool {
	for _, r := range p.queue {
		if r.frame.ID == id {
			return true
		}
	}
	return false
}

// QueueLen returns the number of queued transmit requests.
func (p *Port) QueueLen() int { return len(p.queue) }

// Abort cancels a pending transmit request (the can-abort.req service). Per
// the paper it "has effect only on pending requests": a frame already on
// the wire is not recalled. It reports whether a request was removed.
func (p *Port) Abort(id uint32) bool {
	if p.bus.transmitting(id) && p.bus.current.senders.Contains(p.id) {
		return false
	}
	for i, r := range p.queue {
		if r.frame.ID == id {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			return true
		}
	}
	return false
}

// Crash fail-silences the node: the controller stops transmitting and
// receiving immediately and its queue is discarded.
func (p *Port) Crash() {
	if !p.alive {
		return
	}
	p.alive = false
	p.queue = nil
	p.bus.tr.Emit(trace.KindCrash, int(p.id), "node crashed")
}

// dequeue removes the queued request matching a completed frame.
func (p *Port) dequeue(f can.Frame) {
	for i, r := range p.queue {
		if r.frame.ID == f.ID && r.frame.RTR == f.RTR {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("bus: %v confirmed a frame it never queued: %v", p.id, f))
}

// Fault-confinement transitions.

func (p *Port) onTxSuccess() {
	p.txOK++
	if p.tec > 0 {
		p.tec--
	}
	p.refreshState()
}

func (p *Port) onRxSuccess() {
	p.rxOK++
	if p.rec > 0 {
		if p.rec > PassiveLimit {
			p.rec = MaxRECAfterFix
		} else {
			p.rec--
		}
	}
	p.refreshState()
}

func (p *Port) onTxError() {
	p.tec += TECOnError
	p.refreshState()
}

func (p *Port) onRxError() {
	p.rec += RECOnError
	p.refreshState()
}

func (p *Port) refreshState() {
	switch {
	case p.tec >= BusOffLimit:
		if p.state != BusOff {
			p.state = BusOff
			p.queue = nil
			p.bus.tr.Emit(trace.KindBusOff, int(p.id), "tec=%d", p.tec)
			if p.handler != nil {
				p.handler.OnBusOff()
			}
		}
	case p.tec >= PassiveLimit || p.rec >= PassiveLimit:
		p.state = ErrorPassive
	default:
		p.state = ErrorActive
	}
}
