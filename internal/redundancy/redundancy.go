// Package redundancy models the CANELy media redundancy scheme of [17]
// ("A Columbus' egg idea for CAN media redundancy", FTCS-29) — the
// mechanism behind the "media redundancy: yes" row of the paper's
// Figure 11 and the footnote-4 assumption that medium partitions do not
// partition the *network*.
//
// The egg: replicate the transmission medium and drive every replica
// simultaneously from the same CAN controller. No protocol coordinates the
// replicas — each receiver merely *selects* among its per-medium receive
// lines, and a local media-selection unit masks a medium once its observed
// error count crosses a threshold. Because every frame travels on every
// medium, masking is purely local and instantaneous: a partition, a
// stuck-at fault or a babbling segment on one medium is transparent as
// long as one replica still connects the nodes.
//
// The model is structural rather than bit-level: media have fault states
// (healthy, partitioned at a point, stuck-dominant, stuck-recessive), nodes
// have positions along the media, and Broadcast computes which receivers
// obtain a frame and what each node's selection unit learns from the
// attempt. The properties proved by the tests are the ones the paper
// relies on: single-medium faults never partition a dual-media network,
// and selection units converge to masking faulty media within a bounded
// number of frames.
package redundancy

import (
	"fmt"
)

// MediumState is the health of one medium replica.
type MediumState int

// Medium fault states.
const (
	// Healthy carries traffic between all positions.
	Healthy MediumState = iota
	// Partitioned is physically cut at CutAt: positions < CutAt cannot
	// reach positions >= CutAt.
	Partitioned
	// StuckDominant is jammed by a permanent dominant level: nothing can
	// be transmitted, and every attempt is observed as an error.
	StuckDominant
	// StuckRecessive is dead (e.g. open circuit at the driver): frames
	// never appear on it, observed as missing traffic.
	StuckRecessive
)

// String names the state.
func (s MediumState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Partitioned:
		return "partitioned"
	case StuckDominant:
		return "stuck-dominant"
	default:
		return "stuck-recessive"
	}
}

// Medium is one replica of the transmission medium.
type Medium struct {
	State MediumState
	// CutAt is the partition point (meaningful only when Partitioned).
	CutAt int
}

// reaches reports whether a frame injected at position from appears at
// position to on this medium.
func (m Medium) reaches(from, to int) bool {
	switch m.State {
	case Healthy:
		return true
	case Partitioned:
		return (from < m.CutAt) == (to < m.CutAt)
	default:
		return false
	}
}

// erroneous reports whether listening on this medium yields error
// signatures (rather than mere silence).
func (m Medium) erroneous() bool { return m.State == StuckDominant }

// Selector is a node's media-selection unit: per-medium error counters and
// the masking decision.
type Selector struct {
	threshold int
	errors    []int
	masked    []bool
}

// NewSelector creates a selection unit over nMedia replicas that masks a
// medium after threshold observed errors.
func NewSelector(nMedia, threshold int) *Selector {
	if nMedia <= 0 {
		panic("redundancy: need at least one medium")
	}
	if threshold <= 0 {
		threshold = 1
	}
	return &Selector{
		threshold: threshold,
		errors:    make([]int, nMedia),
		masked:    make([]bool, nMedia),
	}
}

// Masked reports whether medium i is currently masked out.
func (s *Selector) Masked(i int) bool { return s.masked[i] }

// noteError records an error observation and masks past the threshold.
func (s *Selector) noteError(i int) {
	s.errors[i]++
	if s.errors[i] >= s.threshold {
		s.masked[i] = true
	}
}

// noteGood records a clean reception (slow decay of the error count).
func (s *Selector) noteGood(i int) {
	if s.errors[i] > 0 && !s.masked[i] {
		s.errors[i]--
	}
}

// Network is a set of nodes attached to replicated media.
type Network struct {
	media     []Medium
	positions []int // node index -> physical position
	selectors []*Selector
}

// NewNetwork builds a network of n nodes at positions 0..n-1 over copies
// of the given media, with per-node selection units.
func NewNetwork(n int, media []Medium, maskThreshold int) *Network {
	if n <= 0 {
		panic("redundancy: need at least one node")
	}
	if len(media) == 0 {
		panic("redundancy: need at least one medium")
	}
	net := &Network{media: append([]Medium(nil), media...)}
	for i := 0; i < n; i++ {
		net.positions = append(net.positions, i)
		net.selectors = append(net.selectors, NewSelector(len(media), maskThreshold))
	}
	return net
}

// SetMedium changes a medium's fault state mid-run.
func (net *Network) SetMedium(i int, m Medium) {
	if i < 0 || i >= len(net.media) {
		panic(fmt.Sprintf("redundancy: medium %d out of range", i))
	}
	net.media[i] = m
}

// Selector exposes a node's selection unit.
func (net *Network) Selector(node int) *Selector { return net.selectors[node] }

// Broadcast injects one frame at the sender and reports which nodes
// received it. Each receiver takes the frame from any unmasked medium that
// delivers it; media observed erroneous feed the selection units.
func (net *Network) Broadcast(sender int) (received []bool) {
	received = make([]bool, len(net.positions))
	from := net.positions[sender]
	for node, pos := range net.positions {
		if node == sender {
			received[node] = true // self-reception via the controller
			continue
		}
		sel := net.selectors[node]
		for mi, m := range net.media {
			if sel.Masked(mi) {
				continue
			}
			switch {
			case m.erroneous():
				sel.noteError(mi)
			case m.reaches(from, pos):
				received[node] = true
				sel.noteGood(mi)
			default:
				// Silence where traffic was due: once the node learns (via
				// another medium) that a frame existed, the quiet medium is
				// suspect. Charged only if some other medium delivered.
			}
		}
		if received[node] {
			// Cross-check: any unmasked medium that stayed silent while a
			// sibling delivered is charged an error.
			for mi, m := range net.media {
				if !sel.Masked(mi) && !m.erroneous() && !m.reaches(from, pos) {
					sel.noteError(mi)
				}
			}
		}
	}
	return received
}

// Connected reports whether every node received the last broadcast — the
// paper's "no network partition" property.
func Connected(received []bool) bool {
	for _, r := range received {
		if !r {
			return false
		}
	}
	return true
}
