package redundancy_test

// End-to-end media-redundancy test: built on the full stack (external test
// package — the stack imports this package's production code, so the test
// cannot live inside package redundancy).

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/fault"
	"canely/internal/sim"
	"canely/internal/stack"
)

// TestMembershipOverDualMedia is the end-to-end payoff: a full CANELy
// membership stack over replicated media keeps all views consistent while
// one medium is jammed mid-run.
func TestMembershipOverDualMedia(t *testing.T) {
	jam := fault.NewScript(fault.Rule{
		Match:      fault.NewMatch(0),
		Occurrence: 40, // let the system settle first, then jam A forever
		Decision:   fault.Decision{Corrupt: true},
		Repeat:     true,
	})
	s := sim.NewScheduler()
	mediumA := stack.NewMedium(s, stack.MediumConfig{Injector: jam})
	mediumB := stack.NewMedium(s, stack.MediumConfig{})
	cfg := stack.Config{
		FD: fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond},
		Membership: membership.Config{
			Tm:        50 * time.Millisecond,
			TjoinWait: 120 * time.Millisecond,
			RHA:       membership.RHAConfig{Trha: 5 * time.Millisecond, J: 2},
		},
		J: 2,
	}
	var stacks []*stack.Stack
	for i := 0; i < 4; i++ {
		st, err := stack.New(s, []stack.Medium{mediumA, mediumB}, can.NodeID(i), cfg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		stacks = append(stacks, st)
	}
	view := can.MakeSet(0, 1, 2, 3)
	for _, st := range stacks {
		st.Bootstrap(view)
	}
	s.RunUntil(sim.Time(800 * time.Millisecond))
	for i, st := range stacks {
		if st.Msh.View() != view {
			t.Fatalf("node %d view = %v despite media redundancy", i, st.Msh.View())
		}
	}
	// The jam really happened and the selection units really switched.
	switched := 0
	for _, st := range stacks {
		if st.ActiveMedium() == 1 {
			switched++
		}
	}
	if switched == 0 {
		t.Fatal("no node failed over — the jam never bit")
	}
}
