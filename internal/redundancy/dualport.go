package redundancy

import (
	"fmt"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/sim"
)

// DualPort realizes the Columbus' egg at the controller interface: one
// logical CAN controller driving two replicated media (two bus instances
// on the same scheduler). Transmissions go out on both media; reception is
// by selection — indications pass through from the currently active medium
// and the standby is monitored. When the standby delivers a frame the
// active medium fails to match within the grace window, the selection unit
// fails over, so a partition, jam or dead driver on one medium never
// partitions the node.
//
// During a failover a frame may be delivered twice (once per medium);
// duplicates are within CAN's LLC contract (LCAN3, at-least-once) and every
// CANELy protocol absorbs them by design — the paper's duplicate counters
// exist for exactly this class of event.
//
// DualPort implements canlayer.Controller, so the entire protocol stack
// runs over it unchanged.
type DualPort struct {
	sched *sim.Scheduler
	ports [2]Port
	// Grace is how long a standby delivery waits for the active medium to
	// match before triggering failover (default: one worst-case frame).
	grace time.Duration

	handler bus.Handler
	active  int

	// recent remembers deliveries per medium for matching, keyed by frame
	// identity; values are the virtual delivery instants.
	recent [2]map[frameKey][]sim.Time
	// waiting tracks standby frames pending an active match.
	waiting map[frameKey]sim.Event

	// Failovers counts medium switches (diagnostics).
	Failovers int
}

// frameKey identifies a frame on the wire for cross-media matching.
type frameKey struct {
	id   uint32
	rtr  bool
	data [can.MaxData]byte
	dlc  uint8
	cnf  bool // confirmation events are matched separately
}

func keyOf(f can.Frame, cnf bool) frameKey {
	return frameKey{id: f.ID, rtr: f.RTR, data: f.Data, dlc: f.DLC, cnf: cnf}
}

// Port is the single-medium controller surface a DualPort replicates over:
// the exposed controller interface plus the liveness the selection unit
// monitors. Satisfied by *bus.Port and by the fastbus substrate's ports.
type Port interface {
	canlayer.Controller
	Crash()
	Operational() bool
}

var _ Port = (*bus.Port)(nil)

// NewDualPort attaches the node to both media. The two ports must carry
// the same node identity.
func NewDualPort(sched *sim.Scheduler, a, b Port, grace time.Duration) *DualPort {
	if a.ID() != b.ID() {
		panic(fmt.Sprintf("redundancy: port identities differ: %v vs %v", a.ID(), b.ID()))
	}
	if grace <= 0 {
		grace = 200 * time.Microsecond
	}
	d := &DualPort{
		sched:   sched,
		ports:   [2]Port{a, b},
		grace:   grace,
		waiting: make(map[frameKey]sim.Event),
	}
	d.recent[0] = make(map[frameKey][]sim.Time)
	d.recent[1] = make(map[frameKey][]sim.Time)
	a.SetHandler(&mediumTap{d: d, medium: 0})
	b.SetHandler(&mediumTap{d: d, medium: 1})
	return d
}

// Active returns the index of the active medium (0 or 1).
func (d *DualPort) Active() int { return d.active }

// canlayer.Controller implementation.

// ID returns the node identity.
func (d *DualPort) ID() can.NodeID { return d.ports[0].ID() }

// SetHandler installs the logical indication receiver.
func (d *DualPort) SetHandler(h bus.Handler) { d.handler = h }

// Request queues the frame on both media. It succeeds if at least one
// medium accepted it.
func (d *DualPort) Request(f can.Frame) error {
	err0 := d.ports[0].Request(f)
	err1 := d.ports[1].Request(f)
	if err0 != nil && err1 != nil {
		return err0
	}
	return nil
}

// Abort cancels the pending request on both media.
func (d *DualPort) Abort(id uint32) bool {
	a := d.ports[0].Abort(id)
	b := d.ports[1].Abort(id)
	return a || b
}

// PendingEquivalent probes both media.
func (d *DualPort) PendingEquivalent(f can.Frame) bool {
	return d.ports[0].PendingEquivalent(f) || d.ports[1].PendingEquivalent(f)
}

// Crash fail-silences the node on both media.
func (d *DualPort) Crash() {
	d.ports[0].Crash()
	d.ports[1].Crash()
}

// Operational reports whether the node can still exchange traffic on at
// least one medium.
func (d *DualPort) Operational() bool {
	return d.ports[0].Operational() || d.ports[1].Operational()
}

var _ canlayer.Controller = (*DualPort)(nil)

// mediumTap receives one medium's indications.
type mediumTap struct {
	d      *DualPort
	medium int
}

func (t *mediumTap) OnFrame(f can.Frame, own bool) { t.d.onEvent(t.medium, f, own, false) }
func (t *mediumTap) OnConfirm(f can.Frame)         { t.d.onEvent(t.medium, f, false, true) }

// OnBusOff on the active medium triggers failover; on both, it propagates.
func (t *mediumTap) OnBusOff() {
	d := t.d
	other := 1 - t.medium
	if t.medium == d.active && d.ports[other].Operational() {
		d.failover(other)
		return
	}
	if !d.ports[0].Operational() && !d.ports[1].Operational() && d.handler != nil {
		d.handler.OnBusOff()
	}
}

// onEvent runs the selection logic for one frame or confirmation event.
func (d *DualPort) onEvent(medium int, f can.Frame, own, cnf bool) {
	key := keyOf(f, cnf)
	now := d.sched.Now()
	d.recent[medium][key] = append(d.recent[medium][key], now)
	d.gc(medium, key, now)

	if medium == d.active {
		// Pass through; a standby copy waiting on this frame is satisfied.
		if ev, ok := d.waiting[key]; ok {
			ev.Cancel()
			delete(d.waiting, key)
		}
		d.dispatch(f, own, cnf)
		return
	}
	// Standby delivery: if the active medium already matched it (same
	// identity within the grace window), drop the copy; otherwise arm the
	// failover timer.
	if d.matchedRecently(d.active, key, now) {
		return
	}
	if _, pending := d.waiting[key]; pending {
		return
	}
	fCopy, ownCopy, cnfCopy := f, own, cnf
	d.waiting[key] = d.sched.After(d.grace, func() {
		delete(d.waiting, keyOf(fCopy, cnfCopy))
		// The active medium never produced the frame: it is failing.
		d.failover(medium)
		d.dispatch(fCopy, ownCopy, cnfCopy)
	})
}

// matchedRecently reports whether the medium produced an equal event
// within the grace window.
func (d *DualPort) matchedRecently(medium int, key frameKey, now sim.Time) bool {
	for _, at := range d.recent[medium][key] {
		if now.Sub(at) <= d.grace {
			return true
		}
	}
	return false
}

// gc trims match records older than the grace window.
func (d *DualPort) gc(medium int, key frameKey, now sim.Time) {
	times := d.recent[medium][key]
	keep := times[:0]
	for _, at := range times {
		if now.Sub(at) <= d.grace {
			keep = append(keep, at)
		}
	}
	if len(keep) == 0 {
		delete(d.recent[medium], key)
		return
	}
	d.recent[medium][key] = keep
}

// failover switches the active medium.
func (d *DualPort) failover(to int) {
	if d.active == to {
		return
	}
	d.active = to
	d.Failovers++
	// Pending waits belong to the previous selection decision.
	for k, ev := range d.waiting {
		ev.Cancel()
		delete(d.waiting, k)
	}
}

// dispatch forwards an event to the logical handler.
func (d *DualPort) dispatch(f can.Frame, own, cnf bool) {
	if d.handler == nil {
		return
	}
	if cnf {
		d.handler.OnConfirm(f)
		return
	}
	d.handler.OnFrame(f, own)
}
