package redundancy

import (
	"testing"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/fault"
	"canely/internal/sim"
)

// dualRig builds n nodes, each attached through a DualPort to two buses on
// one scheduler. injB injects faults on medium B (index 1) only.
type dualRig struct {
	sched  *sim.Scheduler
	busA   *bus.Bus
	busB   *bus.Bus
	duals  []*DualPort
	layers []*canlayer.Layer
}

func newDualRig(t *testing.T, n int, injA, injB fault.Injector) *dualRig {
	t.Helper()
	s := sim.NewScheduler()
	r := &dualRig{
		sched: s,
		busA:  bus.New(s, bus.Config{Injector: injA}),
		busB:  bus.New(s, bus.Config{Injector: injB}),
	}
	for i := 0; i < n; i++ {
		a := r.busA.Attach(can.NodeID(i))
		b := r.busB.Attach(can.NodeID(i))
		d := NewDualPort(s, a, b, 0)
		r.duals = append(r.duals, d)
		r.layers = append(r.layers, canlayer.New(d))
	}
	return r
}

func TestDualPortFaultFreeSingleDeliveryStream(t *testing.T) {
	r := newDualRig(t, 3, nil, nil)
	var got []can.MID
	cnf := 0
	r.layers[1].HandleDataInd(func(m can.MID, _ []byte) { got = append(got, m) })
	r.layers[0].HandleDataCnf(func(can.MID) { cnf++ })
	for k := 0; k < 5; k++ {
		if err := r.layers[0].DataReq(can.DataSign(0, 0, uint8(k)), []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
		r.sched.Run()
	}
	// Five messages on two media: exactly five logical deliveries and
	// confirmations (no duplicates from the replica).
	if len(got) != 5 {
		t.Fatalf("deliveries = %d, want 5", len(got))
	}
	if cnf != 5 {
		t.Fatalf("confirms = %d, want 5", cnf)
	}
	if r.duals[1].Failovers != 0 {
		t.Fatal("spurious failover in a fault-free run")
	}
}

func TestDualPortSurvivesJammedActiveMedium(t *testing.T) {
	// Medium A (the initial active) corrupts every frame: receivers obtain
	// traffic only via medium B. The selection unit must fail over and the
	// stream must continue.
	jam := fault.NewScript(fault.Rule{
		Match:    fault.NewMatch(0),
		Decision: fault.Decision{Corrupt: true},
		Repeat:   true,
	})
	r := newDualRig(t, 3, jam, nil)
	var got [][]byte
	r.layers[2].HandleDataInd(func(_ can.MID, d []byte) {
		got = append(got, append([]byte(nil), d...))
	})
	for k := 0; k < 4; k++ {
		r.layers[0].DataReq(can.DataSign(0, 0, uint8(k)), []byte{byte(10 + k)})
		r.sched.RunFor(2 * time.Millisecond)
	}
	if len(got) < 4 {
		t.Fatalf("deliveries = %d, want >= 4 (stream must survive the jam)", len(got))
	}
	if r.duals[2].Failovers == 0 {
		t.Fatal("receiver never failed over to the healthy medium")
	}
	if r.duals[2].Active() != 1 {
		t.Fatal("active medium should be B after the jam")
	}
}

func TestDualPortPartitionedMediumTransparent(t *testing.T) {
	// Medium A drops every frame at node 2 (partition-like): node 2's
	// selection unit fails over to B; nodes 0/1 stay on A. Everyone keeps
	// receiving everything.
	cut := fault.NewScript(fault.Rule{
		Match:    fault.NewMatch(0),
		Decision: fault.Decision{InconsistentVictims: can.MakeSet(2)},
		Repeat:   true,
	})
	r := newDualRig(t, 3, cut, nil)
	counts := make([]int, 3)
	for i := 1; i < 3; i++ {
		i := i
		r.layers[i].HandleDataInd(func(can.MID, []byte) { counts[i]++ })
	}
	for k := 0; k < 4; k++ {
		r.layers[0].DataReq(can.DataSign(0, 0, uint8(k)), []byte{1})
		r.sched.RunFor(2 * time.Millisecond)
	}
	if counts[2] < 4 {
		t.Fatalf("partitioned node received %d, want >= 4", counts[2])
	}
	if counts[1] < 4 {
		t.Fatalf("healthy node received %d", counts[1])
	}
}

func TestDualPortRequiresMatchingIdentity(t *testing.T) {
	s := sim.NewScheduler()
	a := bus.New(s, bus.Config{}).Attach(1)
	b := bus.New(s, bus.Config{}).Attach(2)
	defer func() {
		if recover() == nil {
			t.Fatal("identity mismatch should panic")
		}
	}()
	NewDualPort(s, a, b, 0)
}

func TestDualPortCrashSilencesBothMedia(t *testing.T) {
	r := newDualRig(t, 2, nil, nil)
	r.duals[0].Crash()
	if err := r.layers[0].DataReq(can.DataSign(0, 0, 1), nil); err == nil {
		t.Fatal("request after crash accepted")
	}
}
