package redundancy

import (
	"testing"
	"testing/quick"
)

func TestSingleMediumPartitionSplitsTheNetwork(t *testing.T) {
	// The failure mode CANELy must rule out: one medium, one cut.
	net := NewNetwork(6, []Medium{{State: Partitioned, CutAt: 3}}, 3)
	got := net.Broadcast(0)
	for node := 0; node < 3; node++ {
		if !got[node] {
			t.Fatalf("node %d on the sender's side should receive", node)
		}
	}
	for node := 3; node < 6; node++ {
		if got[node] {
			t.Fatalf("node %d across the cut must not receive", node)
		}
	}
	if Connected(got) {
		t.Fatal("a single partitioned medium must split the network")
	}
}

func TestDualMediaMaskPartition(t *testing.T) {
	// The Columbus' egg: the same cut on one of two media is invisible.
	net := NewNetwork(6, []Medium{
		{State: Partitioned, CutAt: 3},
		{State: Healthy},
	}, 3)
	for i := 0; i < 10; i++ {
		if !Connected(net.Broadcast(i % 6)) {
			t.Fatalf("broadcast %d not fully delivered", i)
		}
	}
	// The far-side nodes' selectors must have masked the cut medium.
	if !net.Selector(5).Masked(0) {
		t.Fatal("selection unit never masked the partitioned medium")
	}
	if net.Selector(5).Masked(1) {
		t.Fatal("healthy medium wrongly masked")
	}
}

func TestStuckDominantMediumIsMaskedAndServiceContinues(t *testing.T) {
	net := NewNetwork(4, []Medium{
		{State: StuckDominant},
		{State: Healthy},
	}, 3)
	for i := 0; i < 8; i++ {
		if !Connected(net.Broadcast(i % 4)) {
			t.Fatalf("broadcast %d lost", i)
		}
	}
	for node := 0; node < 4; node++ {
		if node == 3 {
			continue
		}
		if !net.Selector(node).Masked(0) {
			t.Fatalf("node %d never masked the jammed medium", node)
		}
	}
}

func TestStuckRecessiveMediumTransparent(t *testing.T) {
	net := NewNetwork(4, []Medium{
		{State: StuckRecessive},
		{State: Healthy},
	}, 3)
	for i := 0; i < 8; i++ {
		if !Connected(net.Broadcast(i % 4)) {
			t.Fatalf("broadcast %d lost", i)
		}
	}
	// The dead medium is observed silent-while-sibling-delivered: masked.
	if !net.Selector(1).Masked(0) {
		t.Fatal("dead medium never masked")
	}
}

func TestMidRunMediumFailure(t *testing.T) {
	net := NewNetwork(5, []Medium{{State: Healthy}, {State: Healthy}}, 3)
	for i := 0; i < 5; i++ {
		if !Connected(net.Broadcast(i % 5)) {
			t.Fatal("healthy phase broken")
		}
	}
	net.SetMedium(0, Medium{State: Partitioned, CutAt: 2})
	for i := 0; i < 10; i++ {
		if !Connected(net.Broadcast(i % 5)) {
			t.Fatalf("post-failure broadcast %d lost", i)
		}
	}
}

func TestHealthyMediaNeverMasked(t *testing.T) {
	net := NewNetwork(4, []Medium{{State: Healthy}, {State: Healthy}}, 2)
	for i := 0; i < 50; i++ {
		net.Broadcast(i % 4)
	}
	for node := 0; node < 4; node++ {
		for mi := 0; mi < 2; mi++ {
			if net.Selector(node).Masked(mi) {
				t.Fatalf("node %d masked healthy medium %d", node, mi)
			}
		}
	}
}

// Property: with two media, ANY single-medium fault leaves the network
// connected on every broadcast — the paper's footnote-4 guarantee.
func TestAnySingleMediumFaultToleratedProperty(t *testing.T) {
	prop := func(stateRaw, cutRaw, senderRaw uint8) bool {
		state := MediumState(stateRaw%3) + 1 // Partitioned..StuckRecessive
		n := 6
		cut := int(cutRaw%5) + 1
		net := NewNetwork(n, []Medium{
			{State: state, CutAt: cut},
			{State: Healthy},
		}, 3)
		for i := 0; i < 12; i++ {
			sender := (int(senderRaw) + i) % n
			if !Connected(net.Broadcast(sender)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { NewNetwork(0, []Medium{{}}, 1) },
		func() { NewNetwork(1, nil, 1) },
		func() { NewSelector(0, 1) },
		func() { NewNetwork(2, []Medium{{}}, 1).SetMedium(5, Medium{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[MediumState]string{
		Healthy:        "healthy",
		Partitioned:    "partitioned",
		StuckDominant:  "stuck-dominant",
		StuckRecessive: "stuck-recessive",
	} {
		if s.String() != want {
			t.Fatalf("String(%d) = %q", s, s.String())
		}
	}
}
