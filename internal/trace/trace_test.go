package trace

import (
	"strings"
	"testing"
	"time"

	"canely/internal/sim"
)

func TestEmitAndFilter(t *testing.T) {
	now := sim.Time(0)
	tr := New(func() sim.Time { return now })
	tr.Emit(KindCrash, 3, "boom")
	now = sim.Time(5 * time.Millisecond)
	tr.Emit(KindELS, 1, "sign %d", 7)
	tr.Emit(KindCrash, 4, "boom2")

	if got := tr.Count(KindCrash); got != 2 {
		t.Fatalf("crash count = %d", got)
	}
	ev := tr.Filter(KindELS)
	if len(ev) != 1 || ev[0].At != sim.Time(5*time.Millisecond) || ev[0].Msg != "sign 7" {
		t.Fatalf("filtered = %+v", ev)
	}
	if len(tr.Events()) != 3 {
		t.Fatal("Events length wrong")
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Emit(KindCrash, 0, "x") // must not panic
	if tr.Events() != nil || tr.Count(KindCrash) != 0 {
		t.Fatal("nil trace should be empty")
	}
	tr.Subscribe(func(Event) {})
	if tr.Summary() != "" {
		t.Fatal("nil summary should be empty")
	}
}

func TestSubscribe(t *testing.T) {
	tr := New(nil)
	var got []Event
	tr.Subscribe(func(e Event) { got = append(got, e) })
	tr.Emit(KindELS, 2, "x")
	if len(got) != 1 || got[0].Node != 2 {
		t.Fatalf("sink got %+v", got)
	}
}

func TestDumpAndSummary(t *testing.T) {
	tr := New(nil)
	tr.Emit(KindELS, 1, "a")
	tr.Emit(KindELS, 2, "b")
	tr.Emit(KindCrash, -1, "c")
	var sb strings.Builder
	tr.Dump(&sb)
	if n := strings.Count(sb.String(), "\n"); n != 3 {
		t.Fatalf("dump lines = %d", n)
	}
	if !strings.Contains(sb.String(), "bus") {
		t.Fatal("node -1 should render as bus")
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "els") || !strings.Contains(sum, "2") {
		t.Fatalf("summary = %q", sum)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: sim.Time(time.Millisecond), Kind: KindELS, Node: 7, Msg: "hi"}
	s := e.String()
	if !strings.Contains(s, "n07") || !strings.Contains(s, "hi") || !strings.Contains(s, "1ms") {
		t.Fatalf("String = %q", s)
	}
}

func TestLatencies(t *testing.T) {
	var l Latencies
	if l.Min() != 0 || l.Max() != 0 || l.Mean() != 0 || l.Percentile(50) != 0 {
		t.Fatal("empty latencies should be zero")
	}
	for i := 1; i <= 100; i++ {
		l.Add(0, time.Duration(i)*time.Millisecond, "s")
	}
	if l.N() != 100 {
		t.Fatal("N wrong")
	}
	if l.Min() != time.Millisecond || l.Max() != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", l.Min(), l.Max())
	}
	if got := l.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if got := l.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := l.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := l.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	if !strings.Contains(l.String(), "n=100") {
		t.Fatalf("String = %q", l.String())
	}
}

func TestLatencyQuantilesEmptyAndSingle(t *testing.T) {
	var l Latencies
	if l.Quantile(0.5) != 0 || l.P50() != 0 || l.P95() != 0 || l.P99() != 0 {
		t.Fatal("empty sample set must yield zero quantiles")
	}
	l.Add(0, 7*time.Millisecond, "only")
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := l.Quantile(q); got != 7*time.Millisecond {
			t.Fatalf("one-sample quantile(%v) = %v, want 7ms", q, got)
		}
	}
}

func TestLatencyQuantileInterpolation(t *testing.T) {
	var l Latencies
	for _, ms := range []int{40, 10, 30, 20} { // insertion order must not matter
		l.Add(0, time.Duration(ms)*time.Millisecond, "s")
	}
	if got := l.P50(); got != 25*time.Millisecond {
		t.Fatalf("p50 = %v, want interpolated 25ms", got)
	}
	if got := l.Quantile(0.25); got != 17500*time.Microsecond {
		t.Fatalf("q25 = %v, want 17.5ms", got)
	}
	if l.Quantile(0) != 10*time.Millisecond || l.Quantile(1) != 40*time.Millisecond {
		t.Fatal("extreme quantiles must hit min/max")
	}
	if l.Quantile(-0.5) != 10*time.Millisecond || l.Quantile(1.5) != 40*time.Millisecond {
		t.Fatal("out-of-range q must clamp")
	}
	// A large sample: p95/p99 sit between the neighbouring order statistics.
	var big Latencies
	for i := 1; i <= 100; i++ {
		big.Add(0, time.Duration(i)*time.Millisecond, "s")
	}
	if got := big.P95(); got != 95050*time.Microsecond {
		t.Fatalf("p95 = %v, want 95.05ms (R-7)", got)
	}
	if got := big.P99(); got != 99010*time.Microsecond {
		t.Fatalf("p99 = %v, want 99.01ms (R-7)", got)
	}
}
