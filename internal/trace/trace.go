// Package trace provides structured event tracing and metric collection for
// simulation runs. Traces are the raw material for the experiment harness:
// every layer (bus, controllers, protocols) emits events through a shared
// Trace, and collectors reduce them to the quantities the paper reports
// (bandwidth utilization, detection latency, agreement times).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"canely/internal/sim"
)

// Kind classifies trace events.
type Kind string

// Event kinds emitted by the layers in this repository.
const (
	KindTxStart      Kind = "tx-start"
	KindTxSuccess    Kind = "tx-ok"
	KindTxError      Kind = "tx-err"
	KindTxIncons     Kind = "tx-incons"
	KindCrash        Kind = "crash"
	KindBusOff       Kind = "bus-off"
	KindFDANotify    Kind = "fda-nty"
	KindFDNotify     Kind = "fd-nty"
	KindELS          Kind = "els"
	KindRHAStart     Kind = "rha-start"
	KindRHAEnd       Kind = "rha-end"
	KindViewChange   Kind = "view-change"
	KindJoinRequest  Kind = "join-req"
	KindLeaveRequest Kind = "leave-req"
	KindFedDigest    Kind = "fed-digest"
	KindSiteChange   Kind = "site-change"
)

// Event is one timestamped occurrence.
type Event struct {
	At   sim.Time
	Kind Kind
	Node int // -1 when not node-specific
	Msg  string
}

// String renders the event as one trace line.
func (e Event) String() string {
	who := "bus"
	if e.Node >= 0 {
		who = fmt.Sprintf("n%02d", e.Node)
	}
	return fmt.Sprintf("%12v %-10s %-4s %s", e.At, e.Kind, who, e.Msg)
}

// Trace accumulates events. The zero value is usable and discards nothing.
// A nil *Trace is also usable everywhere and discards everything, so layers
// can trace unconditionally.
type Trace struct {
	events []Event
	clock  func() sim.Time
	sinks  []func(Event)
}

// New returns a Trace that timestamps events with the given clock.
func New(clock func() sim.Time) *Trace {
	return &Trace{clock: clock}
}

// Emit records an event. Node may be -1 for bus-global events.
func (t *Trace) Emit(kind Kind, node int, format string, args ...any) {
	if t == nil {
		return
	}
	var at sim.Time
	if t.clock != nil {
		at = t.clock()
	}
	e := Event{At: at, Kind: kind, Node: node, Msg: fmt.Sprintf(format, args...)}
	t.events = append(t.events, e)
	for _, sink := range t.sinks {
		sink(e)
	}
}

// Subscribe registers a live sink invoked on every subsequent event.
func (t *Trace) Subscribe(sink func(Event)) {
	if t == nil || sink == nil {
		return
	}
	t.sinks = append(t.sinks, sink)
}

// Events returns the recorded events in order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Filter returns events of the given kind.
func (t *Trace) Filter(kind Kind) []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for _, e := range t.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events of the kind were recorded.
func (t *Trace) Count(kind Kind) int { return len(t.Filter(kind)) }

// Dump writes the full trace to w.
func (t *Trace) Dump(w io.Writer) {
	if t == nil {
		return
	}
	for _, e := range t.events {
		fmt.Fprintln(w, e)
	}
}

// Summary returns a per-kind event count table, sorted by kind.
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	counts := map[Kind]int{}
	for _, e := range t.events {
		counts[e.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var sb strings.Builder
	for _, k := range kinds {
		fmt.Fprintf(&sb, "%-12s %d\n", k, counts[Kind(k)])
	}
	return sb.String()
}
