package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"canely/internal/sim"
)

// LatencySample is one measured latency (e.g. crash-to-notification).
type LatencySample struct {
	At    sim.Time
	Value time.Duration
	Label string
}

// Latencies collects latency samples and reduces them to the usual summary
// statistics.
type Latencies struct {
	samples []LatencySample
}

// Add records a sample.
func (l *Latencies) Add(at sim.Time, v time.Duration, label string) {
	l.samples = append(l.samples, LatencySample{At: at, Value: v, Label: label})
}

// N returns the sample count.
func (l *Latencies) N() int { return len(l.samples) }

// Samples returns the raw samples.
func (l *Latencies) Samples() []LatencySample { return l.samples }

// Min returns the smallest sample, or 0 when empty.
func (l *Latencies) Min() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	min := l.samples[0].Value
	for _, s := range l.samples[1:] {
		if s.Value < min {
			min = s.Value
		}
	}
	return min
}

// Max returns the largest sample, or 0 when empty.
func (l *Latencies) Max() time.Duration {
	var max time.Duration
	for _, s := range l.samples {
		if s.Value > max {
			max = s.Value
		}
	}
	return max
}

// Mean returns the arithmetic mean, or 0 when empty.
func (l *Latencies) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range l.samples {
		sum += float64(s.Value)
	}
	return time.Duration(sum / float64(len(l.samples)))
}

// Percentile returns the p-th percentile (0 < p <= 100) by nearest-rank.
func (l *Latencies) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	vals := make([]time.Duration, len(l.samples))
	for i, s := range l.samples {
		vals[i] = s.Value
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	rank := int(math.Ceil(p/100*float64(len(vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(vals) {
		rank = len(vals) - 1
	}
	return vals[rank]
}

// String summarizes the distribution.
func (l *Latencies) String() string {
	return fmt.Sprintf("n=%d min=%v mean=%v p99=%v max=%v",
		l.N(), l.Min(), l.Mean(), l.Percentile(99), l.Max())
}
