package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"canely/internal/sim"
)

// LatencySample is one measured latency (e.g. crash-to-notification).
type LatencySample struct {
	At    sim.Time
	Value time.Duration
	Label string
}

// Latencies collects latency samples and reduces them to the usual summary
// statistics.
type Latencies struct {
	samples []LatencySample
}

// Add records a sample.
func (l *Latencies) Add(at sim.Time, v time.Duration, label string) {
	l.samples = append(l.samples, LatencySample{At: at, Value: v, Label: label})
}

// N returns the sample count.
func (l *Latencies) N() int { return len(l.samples) }

// Samples returns the raw samples.
func (l *Latencies) Samples() []LatencySample { return l.samples }

// Min returns the smallest sample, or 0 when empty.
func (l *Latencies) Min() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	min := l.samples[0].Value
	for _, s := range l.samples[1:] {
		if s.Value < min {
			min = s.Value
		}
	}
	return min
}

// Max returns the largest sample, or 0 when empty.
func (l *Latencies) Max() time.Duration {
	var max time.Duration
	for _, s := range l.samples {
		if s.Value > max {
			max = s.Value
		}
	}
	return max
}

// Mean returns the arithmetic mean, or 0 when empty.
func (l *Latencies) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range l.samples {
		sum += float64(s.Value)
	}
	return time.Duration(sum / float64(len(l.samples)))
}

// Percentile returns the p-th percentile (0 < p <= 100) by nearest-rank.
func (l *Latencies) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	vals := l.sorted()
	rank := int(math.Ceil(p/100*float64(len(vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(vals) {
		rank = len(vals) - 1
	}
	return vals[rank]
}

// Quantile returns the q-quantile (0 <= q <= 1) with linear interpolation
// between order statistics (the R-7 rule). It is safe on the empty sample
// set (0) and on a single sample (that sample).
func (l *Latencies) Quantile(q float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	vals := l.sorted()
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	pos := q * float64(len(vals)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(vals) {
		return vals[len(vals)-1]
	}
	return vals[lo] + time.Duration(math.Round(frac*float64(vals[lo+1]-vals[lo])))
}

// P50 returns the interpolated median.
func (l *Latencies) P50() time.Duration { return l.Quantile(0.50) }

// P95 returns the interpolated 95th quantile.
func (l *Latencies) P95() time.Duration { return l.Quantile(0.95) }

// P99 returns the interpolated 99th quantile.
func (l *Latencies) P99() time.Duration { return l.Quantile(0.99) }

// sorted returns the sample values in ascending order.
func (l *Latencies) sorted() []time.Duration {
	vals := make([]time.Duration, len(l.samples))
	for i, s := range l.samples {
		vals[i] = s.Value
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// String summarizes the distribution.
func (l *Latencies) String() string {
	return fmt.Sprintf("n=%d min=%v mean=%v p99=%v max=%v",
		l.N(), l.Min(), l.Mean(), l.Percentile(99), l.Max())
}
