package clocksync

import (
	"testing"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/sim"
)

type node struct {
	port  *bus.Port
	layer *canlayer.Layer
	clock *Clock
	sync  *Synchronizer
}

type rig struct {
	sched  *sim.Scheduler
	bus    *bus.Bus
	nodes  []*node
	master can.NodeID
}

// drifts in fractional units: node i gets drifts[i].
func newRig(t *testing.T, drifts []float64, cfg Config) *rig {
	t.Helper()
	s := sim.NewScheduler()
	b := bus.New(s, bus.Config{})
	r := &rig{sched: s, bus: b}
	for i, d := range drifts {
		nd := &node{}
		nd.port = b.Attach(can.NodeID(i))
		nd.layer = canlayer.New(nd.port)
		nd.clock = NewClock(s, d, time.Microsecond)
		sync, err := New(s, nd.layer, nd.clock, func() can.NodeID { return r.master }, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nd.sync = sync
		r.nodes = append(r.nodes, nd)
	}
	return r
}

// spread returns the max pairwise clock difference among alive nodes.
func (r *rig) spread() time.Duration {
	var lo, hi time.Duration
	first := true
	for _, nd := range r.nodes {
		if !nd.port.Alive() {
			continue
		}
		v := nd.clock.Now()
		if first {
			lo, hi, first = v, v, false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

func TestUnsynchronizedClocksDrift(t *testing.T) {
	r := newRig(t, []float64{100e-6, -100e-6, 0}, DefaultConfig())
	r.sched.RunUntil(sim.Time(time.Second))
	// 200 ppm over 1 s = 200 µs apart.
	if got := r.spread(); got < 150*time.Microsecond {
		t.Fatalf("unsynchronized spread = %v, want ~200µs", got)
	}
}

func TestSynchronizedPrecisionTensOfMicroseconds(t *testing.T) {
	// The Figure 11 claim: with ±100 ppm crystals and 100 ms rounds, the
	// CANELy service holds clocks within tens of microseconds.
	r := newRig(t, []float64{100e-6, -100e-6, 50e-6, 0}, DefaultConfig())
	for _, nd := range r.nodes {
		nd.sync.Start()
	}
	r.sched.RunUntil(sim.Time(2 * time.Second))
	if got := r.spread(); got > 50*time.Microsecond {
		t.Fatalf("synchronized spread = %v, want tens of µs", got)
	}
	for i, nd := range r.nodes {
		if nd.sync.Rounds < 15 {
			t.Fatalf("node %d completed only %d rounds", i, nd.sync.Rounds)
		}
	}
}

func TestPrecisionScalesWithRoundPeriod(t *testing.T) {
	fast := newRig(t, []float64{100e-6, -100e-6}, Config{Period: 50 * time.Millisecond})
	slow := newRig(t, []float64{100e-6, -100e-6}, Config{Period: 400 * time.Millisecond})
	for _, r := range []*rig{fast, slow} {
		for _, nd := range r.nodes {
			nd.sync.Start()
		}
		r.sched.RunUntil(sim.Time(2 * time.Second))
	}
	if fast.spread() >= slow.spread() {
		t.Fatalf("faster rounds should give tighter precision: %v vs %v",
			fast.spread(), slow.spread())
	}
}

func TestMasterFailover(t *testing.T) {
	r := newRig(t, []float64{100e-6, -100e-6, 30e-6}, DefaultConfig())
	for _, nd := range r.nodes {
		nd.sync.Start()
	}
	r.sched.RunUntil(sim.Time(500 * time.Millisecond))
	before := r.spread()
	if before > 50*time.Microsecond {
		t.Fatalf("pre-failover spread = %v", before)
	}
	// The master (node 0) dies; the surviving nodes' master function now
	// selects node 1 — in CANELy, this is the membership change.
	r.nodes[0].port.Crash()
	r.master = 1
	r.sched.RunUntil(sim.Time(2 * time.Second))
	if got := r.spread(); got > 50*time.Microsecond {
		t.Fatalf("post-failover spread = %v, sync did not survive master crash", got)
	}
	if r.nodes[1].sync.Rounds < 10 {
		t.Fatal("new master did not run rounds")
	}
}

func TestLateJoinerMissedSyncSkipsRound(t *testing.T) {
	r := newRig(t, []float64{0, 50e-6}, DefaultConfig())
	r.nodes[0].sync.Start()
	r.nodes[1].sync.Start()
	// Node 1's first follow-up arrives without a latch only if it missed
	// the SYNC; simulate by clearing its latch store mid-round: no crash,
	// no bogus adjustment.
	r.sched.RunUntil(sim.Time(90 * time.Millisecond))
	for k := range r.nodes[1].sync.latches {
		delete(r.nodes[1].sync.latches, k)
	}
	r.sched.RunUntil(sim.Time(350 * time.Millisecond))
	if r.nodes[1].sync.Rounds == 0 {
		t.Fatal("later rounds should still adjust")
	}
}

func TestClockPrimitives(t *testing.T) {
	s := sim.NewScheduler()
	c := NewClock(s, 100e-6, 10*time.Microsecond)
	s.RunUntil(sim.Time(time.Second))
	now := c.Now()
	want := time.Second + 100*time.Microsecond
	if now != want {
		t.Fatalf("Now = %v, want %v", now, want)
	}
	if l := c.Latch(); l%(10*time.Microsecond) != 0 {
		t.Fatalf("Latch %v not quantized", l)
	}
	c.Adjust(-time.Millisecond)
	if c.Now() != want-time.Millisecond {
		t.Fatal("Adjust not applied")
	}
}

func TestConfigValidation(t *testing.T) {
	if (Config{}).Validate() == nil {
		t.Fatal("zero period accepted")
	}
}
