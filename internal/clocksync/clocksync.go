// Package clocksync implements fault-tolerant clock synchronization for
// CAN in the style of [15] (Rodrigues, Guimarães, Rufino — RTSS 1998), the
// CANELy companion service behind the "clock synch. precision: tens of µs"
// row of the paper's Figure 11.
//
// The scheme exploits CAN's tightness: a frame that completes on the bus is
// received by every correct node at physically the same instant (within
// propagation and input-capture quantization). Synchronization therefore
// needs no round-trip estimation:
//
//  1. The master broadcasts a SYNC frame; every node (master included)
//     latches its local clock at the frame's reception instant.
//  2. The master broadcasts a FOLLOW-UP carrying its own latched value.
//  3. Every receiver adjusts its clock by (master latch − local latch).
//
// Queuing and arbitration delays do not hurt precision — only the shared
// reception instant matters. Residual error is the input-capture
// quantization plus the drift accumulated between rounds: with crystal
// drifts around 100 ppm and rounds every ~100 ms, clocks agree to tens of
// microseconds, reproducing the Figure 11 claim.
//
// Fault tolerance comes from the membership service: the master is a
// deterministic function of the agreed view (the lowest member), so a
// master crash is healed by the next membership change without any extra
// election protocol.
package clocksync

import (
	"encoding/binary"
	"fmt"
	"time"

	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/sim"
)

// Clock is a drifting local clock: it advances at (1+Drift) relative to
// the perfect simulation timeline, plus an adjustable offset. It models a
// node's crystal plus the adjustment register the synchronization writes.
type Clock struct {
	sched *sim.Scheduler
	// drift is the fractional rate error, e.g. 100e-6 for +100 ppm.
	drift  float64
	offset time.Duration
	// quantum is the input-capture quantization applied to latched values.
	quantum time.Duration
}

// NewClock creates a clock with the given rate error and capture quantum.
func NewClock(sched *sim.Scheduler, drift float64, quantum time.Duration) *Clock {
	if quantum <= 0 {
		quantum = time.Microsecond
	}
	return &Clock{sched: sched, drift: drift, quantum: quantum}
}

// Now returns the local clock reading.
func (c *Clock) Now() time.Duration {
	real := time.Duration(c.sched.Now())
	return c.offset + real + time.Duration(float64(real)*c.drift)
}

// Latch returns the local reading quantized to the capture granularity —
// what the hardware timestamps a frame-reception event with.
func (c *Clock) Latch() time.Duration {
	v := c.Now()
	return v - v%c.quantum
}

// Adjust applies a synchronization correction.
func (c *Clock) Adjust(delta time.Duration) { c.offset += delta }

// Config parameterizes the synchronizer.
type Config struct {
	// Period is the synchronization round period (default 100 ms).
	Period time.Duration
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("clocksync: period must be positive, got %v", c.Period)
	}
	return nil
}

// DefaultConfig returns the reference parameterization.
func DefaultConfig() Config { return Config{Period: 100 * time.Millisecond} }

// MasterFn returns the node that should currently act as synchronization
// master — in CANELy, a deterministic function of the membership view.
type MasterFn func() can.NodeID

// Synchronizer is the per-node protocol entity.
type Synchronizer struct {
	cfg    Config
	sched  *sim.Scheduler
	layer  *canlayer.Layer
	clock  *Clock
	master MasterFn
	local  can.NodeID

	ticker *sim.Ticker
	round  uint8
	// latches holds the local latch per (round, master) awaiting follow-up.
	latches map[uint16]time.Duration

	// Rounds counts completed adjustments (diagnostics).
	Rounds int
}

// New creates a synchronizer. master decides, at each instant, which node
// runs the rounds; all nodes evaluate the same function of the agreed
// membership view, so exactly one member acts.
func New(sched *sim.Scheduler, layer *canlayer.Layer, clock *Clock, master MasterFn, cfg Config) (*Synchronizer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Synchronizer{
		cfg:     cfg,
		sched:   sched,
		layer:   layer,
		clock:   clock,
		master:  master,
		local:   layer.NodeID(),
		latches: make(map[uint16]time.Duration),
	}
	s.ticker = sim.NewTicker(sched, s.tick)
	layer.HandleDataInd(s.onDataInd)
	return s, nil
}

// Clock exposes the synchronized local clock.
func (s *Synchronizer) Clock() *Clock { return s.clock }

// Start begins the periodic rounds.
func (s *Synchronizer) Start() { s.ticker.Start(s.cfg.Period) }

// Stop halts the rounds.
func (s *Synchronizer) Stop() { s.ticker.Stop() }

// tick starts a round if the local node is the current master.
func (s *Synchronizer) tick() {
	if s.master() != s.local {
		return
	}
	s.round++
	_ = s.layer.DataReq(can.SyncSign(s.round, s.local), nil)
}

func latchKey(round uint8, master can.NodeID) uint16 {
	return uint16(round)<<8 | uint16(master)
}

// onDataInd handles both phases. SYNC: latch the local clock at the shared
// reception instant (own transmissions included — the master latches its
// own SYNC the same way). FOLLOW-UP: apply the correction.
func (s *Synchronizer) onDataInd(mid can.MID, data []byte) {
	if mid.Type != can.TypeSync {
		return
	}
	key := latchKey(mid.Param, mid.Src)
	switch mid.Ref {
	case 0: // SYNC
		latch := s.clock.Latch()
		s.latches[key] = latch
		if mid.Src == s.local {
			// Master: publish the latched value in the follow-up.
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(latch))
			_ = s.layer.DataReq(can.FollowUpSign(mid.Param, s.local), buf[:])
		}
	case 1: // FOLLOW-UP
		local, ok := s.latches[key]
		if !ok {
			// We missed the SYNC (e.g. joined mid-round): skip this round.
			return
		}
		delete(s.latches, key)
		masterLatch := time.Duration(binary.LittleEndian.Uint64(data))
		s.clock.Adjust(masterLatch - local)
		s.Rounds++
	}
}
