package fault

import (
	"fmt"
	"strings"

	"canely/internal/can"
)

// Match selects transmissions for a scripted fault.
type Match struct {
	// Type restricts to one CANELy message type. Use AnyType to match all;
	// a zero Type matches only the (currently unassigned) type value 0, so
	// a script targeting whatever type holds the lowest numeric value is
	// expressible.
	Type can.MsgType
	// Param restricts the mid parameter (e.g. the failed/joining node id).
	// Use AnyParam to match all.
	Param int
	// Sender restricts to transmissions that include this node among the
	// senders. Use AnySender to match all.
	Sender int
	// MinAttempt restricts to retransmissions (attempt >= MinAttempt);
	// zero matches the first attempt onward.
	MinAttempt int
	// Segments restricts to transmissions tagged with at least one of these
	// federation segments (see TxContext.Segments and Tag). The empty set —
	// the zero value, so every pre-federation Match literal keeps its
	// meaning — matches any transmission, tagged or not.
	Segments can.NodeSet
}

// Wildcards for Match fields.
const (
	// AnyType matches every message type. The sentinel lies outside the
	// 5-bit range a MID can encode, so it can never collide with a real
	// type the way the former 0-means-any convention could.
	AnyType   can.MsgType = 0xFF
	AnyParam              = -1
	AnySender             = -1
)

// NewMatch returns a Match with wildcard param and sender, restricted to a
// message type. NewMatch(0) keeps its historical meaning of "any type";
// use a Match literal to target type value 0 itself.
func NewMatch(t can.MsgType) Match {
	if t == 0 {
		t = AnyType
	}
	return Match{Type: t, Param: AnyParam, Sender: AnySender}
}

func (m Match) matches(ctx TxContext) bool {
	mid, err := can.DecodeMID(ctx.Frame.ID)
	if err != nil {
		return false
	}
	if m.Type != AnyType && mid.Type != m.Type {
		return false
	}
	if m.Param != AnyParam && int(mid.Param) != m.Param {
		return false
	}
	if m.Sender != AnySender && !ctx.Senders.Contains(can.NodeID(m.Sender)) {
		return false
	}
	if m.MinAttempt != 0 && ctx.Attempt < m.MinAttempt {
		return false
	}
	if !m.Segments.Empty() && m.Segments.Intersect(ctx.Segments).Empty() {
		return false
	}
	return true
}

// Rule is one scripted fault: the Occurrence-th transmission matching Match
// suffers Decision. Occurrence counts from 1.
type Rule struct {
	Match      Match
	Occurrence int
	Decision   Decision
	// Repeat applies the decision to every match from Occurrence onward
	// instead of only once.
	Repeat bool

	seen  int
	fired bool
}

// Script is a deterministic, ordered fault program. It implements Injector.
// Rules are evaluated in order; the first rule that fires decides the
// transmission (at most one rule fires per transmission).
type Script struct {
	rules []*Rule
}

// NewScript builds a script from the given rules.
func NewScript(rules ...Rule) *Script {
	s := &Script{}
	for i := range rules {
		r := rules[i]
		if r.Occurrence <= 0 {
			r.Occurrence = 1
		}
		s.rules = append(s.rules, &r)
	}
	return s
}

// Add appends a rule to the script.
func (s *Script) Add(r Rule) {
	if r.Occurrence <= 0 {
		r.Occurrence = 1
	}
	s.rules = append(s.rules, &r)
}

// Decide implements Injector.
func (s *Script) Decide(ctx TxContext) Decision {
	for _, r := range s.rules {
		if r.fired && !r.Repeat {
			continue
		}
		if !r.Match.matches(ctx) {
			continue
		}
		r.seen++
		if r.seen < r.Occurrence {
			continue
		}
		r.fired = true
		return r.Decision
	}
	return Decision{}
}

// Exhausted reports whether every non-repeating rule has fired — useful for
// tests asserting a scenario actually happened.
func (s *Script) Exhausted() bool {
	for _, r := range s.rules {
		if !r.fired {
			return false
		}
	}
	return true
}

// PendingRules lists indices of rules that have not fired, for diagnostics.
func (s *Script) PendingRules() string {
	var parts []string
	for i, r := range s.rules {
		if !r.fired {
			parts = append(parts, fmt.Sprintf("#%d(%v,occ=%d,seen=%d)", i, r.Match.Type, r.Occurrence, r.seen))
		}
	}
	return strings.Join(parts, " ")
}

var _ Injector = (*Script)(nil)

// Chain composes injectors: the first non-clean decision wins. This lets a
// test overlay a deterministic script on top of background stochastic noise.
type Chain []Injector

// Decide implements Injector.
func (c Chain) Decide(ctx TxContext) Decision {
	for _, inj := range c {
		if d := inj.Decide(ctx); !d.Clean() {
			return d
		}
	}
	return Decision{}
}

var _ Injector = Chain(nil)

// Counting wraps an injector and tallies what was injected, for assertions
// and experiment reports.
type Counting struct {
	Inner Injector

	Transmissions int
	Corruptions   int
	Inconsistent  int
	SenderCrashes int
}

// Decide implements Injector.
func (c *Counting) Decide(ctx TxContext) Decision {
	c.Transmissions++
	d := c.Inner.Decide(ctx)
	if d.Corrupt {
		c.Corruptions++
	}
	if !d.InconsistentVictims.Empty() {
		c.Inconsistent++
	}
	if d.CrashSenders {
		c.SenderCrashes++
	}
	return d
}

var _ Injector = (*Counting)(nil)
