// Package fault implements the failure semantics of the CANELy system model
// (paper §4) as injectable behaviour for the simulated bus:
//
//   - consistent omissions: a transmission is corrupted for every receiver,
//     detected by CAN error signalling and masked by retransmission
//     (properties MCAN2/MCAN3);
//   - inconsistent omissions: faults hitting the last two bits of a frame
//     leave a subset of receivers without the frame while the others accept
//     it, producing duplicates on recovery or — if the sender dies before
//     retransmitting — an inconsistent message omission (property LCAN4);
//   - sender crashes, optionally coupled to a transmission so the exact
//     scenario of [18] can be scripted;
//   - bounded omission degree: stochastic injection respects the k and j
//     bounds per reference interval that the protocols are parameterized
//     with.
//
// Injection decisions are made per physical transmission through the
// Injector interface; the bus applies them.
package fault

import (
	"time"

	"canely/internal/can"
	"canely/internal/sim"
)

// TxContext describes one physical transmission about to complete on the
// bus. Senders is the set of transmitters (more than one when identical
// remote frames clustered); Receivers is the set of live listening nodes,
// excluding the senders.
type TxContext struct {
	Now       sim.Time
	Frame     can.Frame
	Senders   can.NodeSet
	Receivers can.NodeSet
	// Attempt counts transmissions of this queued request, starting at 1.
	Attempt int
	// Segments identifies the federation segment(s) this transmission
	// belongs to. The simulated media know nothing about segments, so the
	// set is empty unless a Tag injector wraps the medium's injector; on a
	// backbone medium, digest frames are additionally tagged with the
	// segment they summarize (their mid param).
	Segments can.NodeSet
}

// Decision is the outcome imposed on a transmission.
type Decision struct {
	// Corrupt marks a consistent corruption: every node observes the error,
	// an error frame follows and the frame is retransmitted automatically.
	Corrupt bool
	// InconsistentVictims lists receivers hit in the last two bits: they do
	// not accept the frame, everyone else does, and the senders schedule a
	// retransmission (duplicates at the non-victims). Ignored when Corrupt.
	InconsistentVictims can.NodeSet
	// CrashSenders kills the transmitting node(s) immediately after this
	// transmission, i.e. before any retransmission — combined with
	// InconsistentVictims this is the inconsistent-omission scenario.
	CrashSenders bool
	// OverloadFrames appends reactive overload frames after an otherwise
	// successful transmission, delaying the next start of frame — one of
	// the inaccessibility events enumerated in [22]. ISO 11898 permits at
	// most two consecutive overload frames; the bus clamps accordingly.
	OverloadFrames int
}

// Clean reports whether the decision leaves the transmission untouched.
func (d Decision) Clean() bool {
	return !d.Corrupt && d.InconsistentVictims.Empty() && !d.CrashSenders &&
		d.OverloadFrames == 0
}

// Injector decides the fate of each physical transmission.
type Injector interface {
	Decide(ctx TxContext) Decision
}

// None is an Injector that never injects faults.
type None struct{}

// Decide implements Injector.
func (None) Decide(TxContext) Decision { return Decision{} }

var _ Injector = None{}

// Stochastic injects faults at configured per-transmission probabilities
// while honouring the bounded omission degrees of the system model: no more
// than K omissions and no more than J inconsistent omissions per reference
// interval. The zero value injects nothing; use NewStochastic.
type Stochastic struct {
	rng *sim.RNG

	// PCorrupt is the per-transmission probability of a consistent
	// corruption.
	PCorrupt float64
	// PInconsistent is the per-transmission probability of an error in the
	// last two bits at a random, non-empty, proper subset of receivers.
	PInconsistent float64
	// K bounds total omissions per reference interval (MCAN3). Zero means
	// no faults of that class.
	K int
	// J bounds inconsistent omissions per reference interval (LCAN4).
	J int
	// Interval is the reference interval for the K and J bounds.
	Interval time.Duration

	windowStart  sim.Time
	omissions    int
	inconsistent int
}

// NewStochastic builds a stochastic injector with the given fault rates and
// degree bounds over the reference interval.
func NewStochastic(rng *sim.RNG, pCorrupt, pInconsistent float64, k, j int, interval time.Duration) *Stochastic {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &Stochastic{
		rng:           rng,
		PCorrupt:      pCorrupt,
		PInconsistent: pInconsistent,
		K:             k,
		J:             j,
		Interval:      interval,
	}
}

// Decide implements Injector.
func (s *Stochastic) Decide(ctx TxContext) Decision {
	if s.rng == nil {
		return Decision{}
	}
	s.roll(ctx.Now)
	if s.omissions >= s.K {
		return Decision{}
	}
	if s.rng.Bool(s.PCorrupt) {
		s.omissions++
		return Decision{Corrupt: true}
	}
	if s.inconsistent < s.J && !ctx.Receivers.Empty() && s.rng.Bool(s.PInconsistent) {
		victims := s.pickVictims(ctx.Receivers)
		if !victims.Empty() {
			s.omissions++
			s.inconsistent++
			return Decision{InconsistentVictims: victims}
		}
	}
	return Decision{}
}

// roll advances the degree-bound accounting window.
func (s *Stochastic) roll(now sim.Time) {
	for now.Sub(s.windowStart) >= s.Interval {
		s.windowStart = s.windowStart.Add(s.Interval)
		s.omissions = 0
		s.inconsistent = 0
	}
}

// pickVictims chooses a non-empty subset of receivers, biased toward small
// subsets (the paper notes the victim set "may have only one element").
func (s *Stochastic) pickVictims(receivers can.NodeSet) can.NodeSet {
	ids := receivers.IDs()
	if len(ids) == 0 {
		return can.EmptySet
	}
	n := 1
	for n < len(ids) && s.rng.Bool(0.3) {
		n++
	}
	var out can.NodeSet
	for _, i := range s.rng.Subset(len(ids), n) {
		out = out.Add(ids[i])
	}
	return out
}

var _ Injector = (*Stochastic)(nil)
