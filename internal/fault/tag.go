package fault

import "canely/internal/can"

// Tag wraps an injector, stamping every transmission of its medium with a
// federation segment id before delegating. The simulated media know nothing
// about segments, so the federation drivers install one Tag per segment
// medium; segment-scoped rules (Match.Segments) then target everything a
// segment transmits. A nil Inner tags without injecting, which lets one
// stateful Script be shared across media behind per-medium tags.
type Tag struct {
	// Segment is the id stamped on every transmission of this medium.
	Segment can.NodeID
	// Inner decides the transmission after tagging; nil injects nothing.
	Inner Injector
}

// Decide implements Injector.
func (t Tag) Decide(ctx TxContext) Decision {
	ctx.Segments = ctx.Segments.Add(t.Segment)
	if t.Inner == nil {
		return Decision{}
	}
	return t.Inner.Decide(ctx)
}

var _ Injector = Tag{}

// TagDigests stamps federation digest transmissions with the segment they
// summarize (the mid param of a TypeFed frame). Installed on a backbone
// medium — which carries digests for many segments and belongs to none —
// it lets a rule target one segment's digests: the scripted
// segment-partition fault. Non-digest frames pass through untagged.
type TagDigests struct {
	// Inner decides the transmission after tagging; nil injects nothing.
	Inner Injector
}

// Decide implements Injector.
func (t TagDigests) Decide(ctx TxContext) Decision {
	if mid, err := can.DecodeMID(ctx.Frame.ID); err == nil && mid.Type == can.TypeFed {
		ctx.Segments = ctx.Segments.Add(can.NodeID(mid.Param))
	}
	if t.Inner == nil {
		return Decision{}
	}
	return t.Inner.Decide(ctx)
}

var _ Injector = TagDigests{}
