package fault

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/sim"
)

func ctxAt(now sim.Time, frame can.Frame, senders, receivers can.NodeSet, attempt int) TxContext {
	return TxContext{Now: now, Frame: frame, Senders: senders, Receivers: receivers, Attempt: attempt}
}

func elsFrame(r can.NodeID) can.Frame {
	return can.Frame{ID: can.ELSSign(r).Encode(), RTR: true}
}

func TestNoneInjectsNothing(t *testing.T) {
	var inj None
	d := inj.Decide(ctxAt(0, elsFrame(1), can.MakeSet(1), can.MakeSet(2, 3), 1))
	if !d.Clean() {
		t.Fatal("None must not inject")
	}
}

func TestStochasticRespectsOmissionDegree(t *testing.T) {
	rng := sim.NewRNG(11)
	inj := NewStochastic(rng, 1.0, 0, 2, 0, 10*time.Millisecond)
	var corrupted int
	for i := 0; i < 10; i++ {
		d := inj.Decide(ctxAt(sim.Time(i)*sim.Time(time.Millisecond), elsFrame(1), can.MakeSet(1), can.MakeSet(2), 1))
		if d.Corrupt {
			corrupted++
		}
	}
	if corrupted != 2 {
		t.Fatalf("corrupted = %d, want K=2 within one interval", corrupted)
	}
}

func TestStochasticWindowRollsOver(t *testing.T) {
	rng := sim.NewRNG(11)
	inj := NewStochastic(rng, 1.0, 0, 1, 0, 10*time.Millisecond)
	d1 := inj.Decide(ctxAt(0, elsFrame(1), can.MakeSet(1), can.MakeSet(2), 1))
	d2 := inj.Decide(ctxAt(sim.Time(time.Millisecond), elsFrame(1), can.MakeSet(1), can.MakeSet(2), 1))
	d3 := inj.Decide(ctxAt(sim.Time(11*time.Millisecond), elsFrame(1), can.MakeSet(1), can.MakeSet(2), 1))
	if !d1.Corrupt || d2.Corrupt || !d3.Corrupt {
		t.Fatalf("window accounting wrong: %v %v %v", d1.Corrupt, d2.Corrupt, d3.Corrupt)
	}
}

func TestStochasticInconsistentBoundedByJ(t *testing.T) {
	rng := sim.NewRNG(5)
	inj := NewStochastic(rng, 0, 1.0, 10, 2, 100*time.Millisecond)
	incons := 0
	for i := 0; i < 8; i++ {
		d := inj.Decide(ctxAt(sim.Time(i)*1000, elsFrame(1), can.MakeSet(1), can.MakeSet(2, 3, 4), 1))
		if !d.InconsistentVictims.Empty() {
			incons++
			if !d.InconsistentVictims.SubsetOf(can.MakeSet(2, 3, 4)) {
				t.Fatal("victims must be receivers")
			}
		}
	}
	if incons != 2 {
		t.Fatalf("inconsistent = %d, want J=2", incons)
	}
}

func TestStochasticNoReceiversNoInconsistency(t *testing.T) {
	rng := sim.NewRNG(5)
	inj := NewStochastic(rng, 0, 1.0, 10, 10, time.Second)
	d := inj.Decide(ctxAt(0, elsFrame(1), can.MakeSet(1), can.EmptySet, 1))
	if !d.Clean() {
		t.Fatal("no receivers: nothing to be inconsistent about")
	}
}

func TestStochasticDeterministicForSeed(t *testing.T) {
	run := func() []bool {
		inj := NewStochastic(sim.NewRNG(77), 0.5, 0.3, 100, 100, time.Second)
		var out []bool
		for i := 0; i < 50; i++ {
			d := inj.Decide(ctxAt(sim.Time(i)*1000, elsFrame(1), can.MakeSet(1), can.MakeSet(2, 3), 1))
			out = append(out, d.Clean())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("stochastic injector not reproducible")
		}
	}
}

func TestScriptOccurrence(t *testing.T) {
	s := NewScript(Rule{
		Match:      NewMatch(can.TypeELS),
		Occurrence: 2,
		Decision:   Decision{Corrupt: true},
	})
	ctx := ctxAt(0, elsFrame(3), can.MakeSet(3), can.MakeSet(1), 1)
	if d := s.Decide(ctx); !d.Clean() {
		t.Fatal("first occurrence should pass")
	}
	if d := s.Decide(ctx); !d.Corrupt {
		t.Fatal("second occurrence should corrupt")
	}
	if d := s.Decide(ctx); !d.Clean() {
		t.Fatal("rule should fire once")
	}
	if !s.Exhausted() {
		t.Fatal("script should be exhausted")
	}
}

func TestScriptRepeat(t *testing.T) {
	s := NewScript(Rule{
		Match:    NewMatch(can.TypeELS),
		Decision: Decision{Corrupt: true},
		Repeat:   true,
	})
	ctx := ctxAt(0, elsFrame(3), can.MakeSet(3), can.MakeSet(1), 1)
	for i := 0; i < 3; i++ {
		if d := s.Decide(ctx); !d.Corrupt {
			t.Fatal("repeating rule should always fire")
		}
	}
}

func TestScriptMatchFields(t *testing.T) {
	m := Match{Type: can.TypeFDA, Param: 3, Sender: 1, MinAttempt: 2}
	fda3 := can.Frame{ID: can.FDASign(3).Encode(), RTR: true}
	fda4 := can.Frame{ID: can.FDASign(4).Encode(), RTR: true}
	if m.matches(ctxAt(0, fda3, can.MakeSet(1), can.EmptySet, 1)) {
		t.Fatal("attempt 1 should not match MinAttempt 2")
	}
	if !m.matches(ctxAt(0, fda3, can.MakeSet(1), can.EmptySet, 2)) {
		t.Fatal("should match")
	}
	if m.matches(ctxAt(0, fda4, can.MakeSet(1), can.EmptySet, 2)) {
		t.Fatal("param mismatch should not match")
	}
	if m.matches(ctxAt(0, fda3, can.MakeSet(2), can.EmptySet, 2)) {
		t.Fatal("sender mismatch should not match")
	}
	// Wildcards.
	w := NewMatch(0)
	if !w.matches(ctxAt(0, fda4, can.MakeSet(9), can.EmptySet, 1)) {
		t.Fatal("wildcard match failed")
	}
}

func TestScriptInconsistentPlusCrashScenario(t *testing.T) {
	// The exact scenario of [18]: ELS from node 2 suffers a last-two-bit
	// error at node 5 and node 2 dies before retransmitting.
	s := NewScript(Rule{
		Match: Match{Type: can.TypeELS, Param: 2, Sender: AnySender},
		Decision: Decision{
			InconsistentVictims: can.MakeSet(5),
			CrashSenders:        true,
		},
	})
	d := s.Decide(ctxAt(0, elsFrame(2), can.MakeSet(2), can.MakeSet(1, 5), 1))
	if d.InconsistentVictims != can.MakeSet(5) || !d.CrashSenders {
		t.Fatalf("decision = %+v", d)
	}
}

func TestChainFirstNonCleanWins(t *testing.T) {
	s1 := NewScript() // empty: always clean
	s2 := NewScript(Rule{Match: NewMatch(0), Decision: Decision{Corrupt: true}, Repeat: true})
	c := Chain{s1, s2}
	d := c.Decide(ctxAt(0, elsFrame(1), can.MakeSet(1), can.MakeSet(2), 1))
	if !d.Corrupt {
		t.Fatal("chain should fall through to the scripted corrupt")
	}
}

func TestCountingTallies(t *testing.T) {
	inner := NewScript(
		Rule{Match: NewMatch(0), Occurrence: 1, Decision: Decision{Corrupt: true}},
		Rule{Match: NewMatch(0), Occurrence: 1, Decision: Decision{InconsistentVictims: can.MakeSet(2), CrashSenders: true}},
	)
	c := &Counting{Inner: inner}
	ctx := ctxAt(0, elsFrame(1), can.MakeSet(1), can.MakeSet(2), 1)
	c.Decide(ctx)
	c.Decide(ctx)
	c.Decide(ctx)
	if c.Transmissions != 3 || c.Corruptions != 1 || c.Inconsistent != 1 || c.SenderCrashes != 1 {
		t.Fatalf("counts = %+v", *c)
	}
}

func TestScriptPendingRules(t *testing.T) {
	s := NewScript(Rule{Match: NewMatch(can.TypeFDA), Occurrence: 3})
	if s.Exhausted() {
		t.Fatal("fresh script should not be exhausted")
	}
	if s.PendingRules() == "" {
		t.Fatal("pending rules should be reported")
	}
}

func TestScriptTargetsLowestValuedType(t *testing.T) {
	// TypeFDA holds the lowest assigned message-type value. Before AnyType
	// existed, 0 doubled as the wildcard, so no rule could ever single out
	// a type whose numeric value is 0 — and any future renumbering that
	// assigned 0 would silently turn a targeted rule into a catch-all.
	// A rule against the lowest type must fire on that type only.
	s := NewScript(Rule{
		Match:    NewMatch(can.TypeFDA),
		Decision: Decision{Corrupt: true},
		Repeat:   true,
	})
	els := ctxAt(0, elsFrame(3), can.MakeSet(3), can.EmptySet, 1)
	if d := s.Decide(els); !d.Clean() {
		t.Fatal("FDA rule fired on an ELS frame")
	}
	fda := ctxAt(0, can.Frame{ID: can.FDASign(3).Encode(), RTR: true}, can.MakeSet(1), can.EmptySet, 1)
	if d := s.Decide(fda); !d.Corrupt {
		t.Fatal("FDA rule did not fire on an FDA frame")
	}
}

func TestAnyTypeWildcard(t *testing.T) {
	// The explicit sentinel and the historical NewMatch(0) spelling both
	// wildcard the type; a literal zero Type no longer does.
	els := ctxAt(0, elsFrame(3), can.MakeSet(3), can.EmptySet, 1)
	if !(Match{Type: AnyType, Param: AnyParam, Sender: AnySender}).matches(els) {
		t.Fatal("AnyType should match every type")
	}
	if NewMatch(0) != NewMatch(AnyType) {
		t.Fatal("NewMatch(0) must keep meaning any type")
	}
	if (Match{Type: 0, Param: AnyParam, Sender: AnySender}).matches(els) {
		t.Fatal("a zero-Type literal must not wildcard")
	}
}

func TestSegmentScopedMatch(t *testing.T) {
	// The empty Segments set is the zero value, so every pre-federation
	// Match literal keeps matching transmissions regardless of tagging.
	els := ctxAt(0, elsFrame(3), can.MakeSet(3), can.EmptySet, 1)
	any := Match{Type: AnyType, Param: AnyParam, Sender: AnySender}
	if !any.matches(els) {
		t.Fatal("untagged transmission must match a segment-wildcard rule")
	}
	tagged := els
	tagged.Segments = can.MakeSet(2)
	if !any.matches(tagged) {
		t.Fatal("tagged transmission must match a segment-wildcard rule")
	}

	seg2 := Match{Type: AnyType, Param: AnyParam, Sender: AnySender, Segments: can.MakeSet(2)}
	if seg2.matches(els) {
		t.Fatal("segment-scoped rule fired on an untagged transmission")
	}
	if !seg2.matches(tagged) {
		t.Fatal("segment-scoped rule missed its own segment")
	}
	other := els
	other.Segments = can.MakeSet(3)
	if seg2.matches(other) {
		t.Fatal("segment-scoped rule fired on another segment")
	}
	// A multi-segment scope matches on any overlap.
	multi := Match{Type: AnyType, Param: AnyParam, Sender: AnySender, Segments: can.MakeSet(1, 2)}
	if !multi.matches(tagged) || multi.matches(other) {
		t.Fatal("multi-segment scope intersected wrongly")
	}
}

func TestTagScopesScriptToOneMedium(t *testing.T) {
	// One stateful script shared across two segment media behind tags: the
	// segment-1 rule must fire only for transmissions of segment 1.
	script := NewScript(Rule{
		Match:    Match{Type: AnyType, Param: AnyParam, Sender: AnySender, Segments: can.MakeSet(1)},
		Decision: Decision{Corrupt: true},
		Repeat:   true,
	})
	seg0 := Tag{Segment: 0, Inner: script}
	seg1 := Tag{Segment: 1, Inner: script}
	ctx := ctxAt(0, elsFrame(3), can.MakeSet(3), can.EmptySet, 1)
	if d := seg0.Decide(ctx); !d.Clean() {
		t.Fatal("segment-1 rule fired on segment 0")
	}
	if d := seg1.Decide(ctx); !d.Corrupt {
		t.Fatal("segment-1 rule did not fire on segment 1")
	}
	// Tagging without an inner injector is a clean pass-through.
	if d := (Tag{Segment: 5}).Decide(ctx); !d.Clean() {
		t.Fatal("bare Tag injected")
	}
}

func TestTagDigestsTargetsOneSegmentsDigests(t *testing.T) {
	// The scripted segment-partition fault: on a backbone medium, corrupt
	// every digest summarizing segment 2, touch nothing else.
	script := NewScript(Rule{
		Match:    Match{Type: can.TypeFed, Param: AnyParam, Sender: AnySender, Segments: can.MakeSet(2)},
		Decision: Decision{Corrupt: true},
		Repeat:   true,
	})
	backbone := TagDigests{Inner: script}
	dig := func(seg can.NodeID, gw can.NodeID) TxContext {
		f := can.Frame{ID: can.FedDigestSign(seg, gw).Encode()}
		f.SetPayload(can.MakeSet(0, 1).Bytes())
		return ctxAt(0, f, can.MakeSet(gw), can.EmptySet, 1)
	}
	if d := backbone.Decide(dig(2, 4)); !d.Corrupt {
		t.Fatal("segment-2 digest not partitioned")
	}
	if d := backbone.Decide(dig(3, 6)); !d.Clean() {
		t.Fatal("segment-3 digest partitioned")
	}
	if d := backbone.Decide(ctxAt(0, elsFrame(1), can.MakeSet(1), can.EmptySet, 1)); !d.Clean() {
		t.Fatal("non-digest backbone frame partitioned")
	}
}

func TestMatchTargetsGatewayDigests(t *testing.T) {
	// The scripted gateway-crash fault: the Occurrence-th digest transmitted
	// by one gateway crashes it, digests from other gateways pass.
	script := NewScript(Rule{
		Match:      Match{Type: can.TypeFed, Param: AnyParam, Sender: 4},
		Occurrence: 2,
		Decision:   Decision{CrashSenders: true},
	})
	dig := func(gw can.NodeID) TxContext {
		f := can.Frame{ID: can.FedDigestSign(1, gw).Encode()}
		f.SetPayload(can.MakeSet(0).Bytes())
		return ctxAt(0, f, can.MakeSet(gw), can.EmptySet, 1)
	}
	if d := script.Decide(dig(5)); !d.Clean() {
		t.Fatal("rule fired on the wrong gateway")
	}
	if d := script.Decide(dig(4)); !d.Clean() {
		t.Fatal("rule fired before its occurrence")
	}
	if d := script.Decide(dig(4)); !d.CrashSenders {
		t.Fatal("rule did not crash the targeted gateway")
	}
}
