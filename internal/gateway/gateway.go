// Package gateway implements the bridge node of a multi-segment CANELy
// federation. A Gateway attaches to two or more stack.Medium instances —
// simulated segments (bit or fast substrate), a backbone interconnect, or
// live rt media — and plays two roles at once:
//
//   - Frame bridging: per-direction filter tables decide which received
//     frames cross from one link to another. Forwarded frames pass through
//     a bounded store-and-forward queue with a configurable per-hop
//     latency, like a real CAN gateway's mailbox; when the queue is full
//     the frame is dropped (and counted). Nothing is forwarded by default:
//     segment-local protocol traffic (life-signs, FDA, RHA, membership)
//     never leaves its segment, which is what keeps per-segment CANELy
//     membership sound in a federation.
//
//   - Hierarchical membership: on every segment medium the gateway runs a
//     full member stack, so segment membership observes the gateway like
//     any other node and the gateway observes the segment's agreed view.
//     Those views feed the sans-I/O federation core
//     (internal/federation), whose digests are transmitted on the raw
//     (backbone) links; the core's site view is the gateway's answer to
//     "which segments are alive".
//
// The Gateway is scheduler-driven and sans-goroutine: over simulated media
// it is deterministic and replayable (the federation core's streams record
// into internal/replay); over rt media it runs on the loop exactly like a
// live node. Faults arrive through internal/fault on the attached media —
// segment-scoped rules (fault.Tag) partition whole segments, sender-scoped
// rules on digests crash gateways — or directly via Crash.
package gateway

import (
	"fmt"
	"time"

	"canely/internal/can"
	"canely/internal/core/membership"
	"canely/internal/core/proto"
	"canely/internal/federation"
	"canely/internal/replay"
	"canely/internal/sim"
	"canely/internal/stack"
	"canely/internal/trace"
)

// Filter decides whether a received frame crosses from one link to another.
type Filter func(f can.Frame) bool

// ForwardAll is a Filter that bridges every frame.
func ForwardAll(can.Frame) bool { return true }

// ForwardType returns a Filter bridging only frames of one message type.
func ForwardType(t can.MsgType) Filter {
	return func(f can.Frame) bool {
		mid, err := can.DecodeMID(f.ID)
		return err == nil && mid.Type == t
	}
}

// Config parameterizes a Gateway.
type Config struct {
	// ID is the federation-wide gateway identity: the source of digests,
	// the leader-suppression tiebreaker, and the attach id on raw links.
	ID can.NodeID
	// Tann is the digest announcement period.
	Tann time.Duration
	// Tstale is the segment staleness bound (>= 4*Tann, federation.Config).
	Tstale time.Duration
	// Queue bounds the store-and-forward queue in frames; 0 means 32.
	Queue int
	// Latency is the per-frame forwarding delay through the queue.
	Latency time.Duration
	// Recorder, when non-nil, captures the federation core's event/command
	// streams for deterministic re-execution (internal/replay).
	Recorder *replay.Log
	// Trace is the optional diagnostic sink.
	Trace *trace.Trace
}

// route is one direction of a filter table entry.
type route struct {
	to    *Link
	allow Filter
}

// Link is one gateway attachment: a member link (full stack on a segment)
// or a raw link (bare port on a backbone).
type Link struct {
	g       *Gateway
	segment can.NodeID   // member links only
	member  *stack.Stack // nil on raw links
	port    stack.Port   // transmit endpoint (raw attach, or the member stack's port)
	view    can.NodeSet  // member bootstrap view
	raw     bool
	routes  []route
}

// Stack returns the member stack of a member link (nil on raw links).
func (l *Link) Stack() *stack.Stack { return l.member }

// Segment returns the segment id of a member link.
func (l *Link) Segment() can.NodeID { return l.segment }

// Gateway bridges frames and federates membership across its links.
type Gateway struct {
	sched *sim.Scheduler
	cfg   Config

	links   []*Link
	members []*Link
	raws    []*Link

	fed    *federation.Core
	booted bool

	// Binding-owned alarm machinery for the federation core, mirroring the
	// stack binding: a lazy announce timer and a raw chasing scan event.
	annTimer *sim.Timer
	scanEv   sim.Event

	// onSite fans out fed-can.nty consumers in registration order.
	onSite []func(active, failed can.NodeSet)

	// Store-and-forward accounting.
	queued  int
	dropped int

	crashed bool

	// bufs is the fedStep command-buffer free-list (see stack.Stack.bufs).
	bufs []*proto.CommandBuf
}

// New creates a gateway; attach links with AddMemberLink/AddRawLink, wire
// filter tables with Forward, then Bootstrap.
func New(sched *sim.Scheduler, cfg Config) (*Gateway, error) {
	if !cfg.ID.Valid() {
		return nil, fmt.Errorf("gateway: invalid gateway id %d", cfg.ID)
	}
	if cfg.Queue == 0 {
		cfg.Queue = 32
	}
	g := &Gateway{sched: sched, cfg: cfg}
	g.annTimer = sim.NewTimer(sched, func() {
		g.fedStep(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFedAnnounce})
	})
	return g, nil
}

// AddMemberLink attaches the gateway to a segment medium as a full member
// of that segment: localID is the gateway's node identity inside the
// segment, view the segment's pre-agreed bootstrap view (which must include
// localID), scfg the member stack parameterization and hooks an optional
// observer chained before the gateway's own frame snooping.
func (g *Gateway) AddMemberLink(m stack.Medium, segment, localID can.NodeID, view can.NodeSet, scfg stack.Config, hooks *stack.Hooks) (*Link, error) {
	if g.booted {
		return nil, fmt.Errorf("gateway: links must be attached before Bootstrap")
	}
	if !segment.Valid() {
		return nil, fmt.Errorf("gateway: invalid segment id %d", segment)
	}
	l := &Link{g: g, segment: segment, view: view}
	st, err := stack.New(g.sched, []stack.Medium{m}, localID, scfg, g.cfg.Trace, g.memberHooks(l, hooks))
	if err != nil {
		return nil, err
	}
	l.member = st
	l.port = st.Ports[0]
	st.OnChange(func(ch membership.Change) {
		g.fedStep(proto.Event{Kind: proto.EvFedLocalView, Node: segment, View: ch.Active})
	})
	g.links = append(g.links, l)
	g.members = append(g.members, l)
	return l, nil
}

// AddRawLink attaches the gateway to a backbone medium as a bare port: no
// member stack, digests in and out, plus whatever the filter tables bridge.
func (g *Gateway) AddRawLink(m stack.Medium) (*Link, error) {
	if g.booted {
		return nil, fmt.Errorf("gateway: links must be attached before Bootstrap")
	}
	l := &Link{g: g, raw: true}
	l.port = m.Attach(g.cfg.ID)
	l.port.SetHandler(&rawHandler{g: g, l: l})
	g.links = append(g.links, l)
	g.raws = append(g.raws, l)
	return l, nil
}

// Forward installs a filter table entry: frames received on from that pass
// allow are queued for transmission on to.
func (g *Gateway) Forward(from, to *Link, allow Filter) {
	from.routes = append(from.routes, route{to: to, allow: allow})
}

// Bootstrap builds the federation core over the attached member segments,
// bootstraps every member stack with its pre-agreed segment view, then
// installs the pre-agreed initial site view — in that order, so the first
// digests announce real member sets.
func (g *Gateway) Bootstrap(site can.NodeSet) error {
	if g.booted {
		return fmt.Errorf("gateway: already bootstrapped")
	}
	var locals can.NodeSet
	for _, l := range g.members {
		locals = locals.Add(l.segment)
	}
	fcfg := federation.Config{Gateway: g.cfg.ID, Locals: locals, Tann: g.cfg.Tann, Tstale: g.cfg.Tstale}
	fed, err := federation.New(fcfg)
	if err != nil {
		return err
	}
	g.fed = fed
	g.booted = true
	if g.cfg.Recorder != nil {
		g.cfg.Recorder.RegisterFed(g.cfg.ID, fcfg)
	}
	for _, l := range g.members {
		l.member.Bootstrap(l.view)
	}
	// Membership bootstrap installs the pre-agreed view without a change
	// notification (nothing changed), so seed the local views explicitly.
	for _, l := range g.members {
		g.fedStep(proto.Event{Kind: proto.EvFedLocalView, Node: l.segment, View: l.member.Msh.View()})
	}
	g.fedStep(proto.Event{Kind: proto.EvBootstrap, View: site})
	return nil
}

// OnSiteChange registers a site view consumer (fed-can.nty).
func (g *Gateway) OnSiteChange(fn func(active, failed can.NodeSet)) {
	g.onSite = append(g.onSite, fn)
}

// SiteView returns the gateway's current cross-segment site view.
func (g *Gateway) SiteView() can.NodeSet {
	if g.fed == nil {
		return can.EmptySet
	}
	return g.fed.SiteView()
}

// Members returns the gateway's last known membership view of a segment.
func (g *Gateway) Members(seg can.NodeID) can.NodeSet {
	if g.fed == nil {
		return can.EmptySet
	}
	return g.fed.Members(seg)
}

// ID returns the federation-wide gateway identity.
func (g *Gateway) ID() can.NodeID { return g.cfg.ID }

// Dropped returns the number of frames the store-and-forward queue refused.
func (g *Gateway) Dropped() int { return g.dropped }

// Alive reports whether the gateway has not crashed.
func (g *Gateway) Alive() bool { return !g.crashed }

// Crash fail-silences the gateway on every link: member stacks and raw
// ports stop transmitting, timers stop, queued forwards are discarded.
func (g *Gateway) Crash() {
	if g.crashed {
		return
	}
	g.crashed = true
	for _, l := range g.members {
		l.member.Crash()
	}
	for _, l := range g.raws {
		l.port.Crash()
	}
	g.annTimer.Stop()
	g.scanEv.Cancel()
	g.scanEv = sim.Event{}
	if g.cfg.Trace != nil {
		g.cfg.Trace.Emit(trace.KindCrash, int(g.cfg.ID), "gateway crash")
	}
}

// memberHooks chains an optional user observer before the gateway's frame
// snooping on a member link.
func (g *Gateway) memberHooks(l *Link, user *stack.Hooks) *stack.Hooks {
	h := &stack.Hooks{}
	if user != nil {
		*h = *user
	}
	userInd := h.OnIndication
	h.OnIndication = func(node can.NodeID, f can.Frame, own bool) {
		if userInd != nil {
			userInd(node, f, own)
		}
		g.onLinkFrame(l, f, own)
	}
	return h
}

// rawHandler adapts a raw link's port indications.
type rawHandler struct {
	g *Gateway
	l *Link
}

func (h *rawHandler) OnFrame(f can.Frame, own bool) { h.g.onLinkFrame(h.l, f, own) }
func (h *rawHandler) OnConfirm(can.Frame)           {}
func (h *rawHandler) OnBusOff()                     {}

// onLinkFrame is the shared reception path of every link: federation
// digests feed the core, the filter tables decide what is bridged. Own
// transmissions are skipped — a forwarded frame is transmitted by this
// gateway on the target medium, so self-reception must not re-forward.
func (g *Gateway) onLinkFrame(l *Link, f can.Frame, own bool) {
	if own || g.crashed {
		return
	}
	if mid, err := can.DecodeMID(f.ID); err == nil && mid.Type == can.TypeFed && !f.RTR {
		g.fedStep(proto.Event{Kind: proto.EvDataInd, MID: mid}.WithPayload(f.Payload()))
	}
	for _, r := range l.routes {
		if r.allow(f) {
			g.enqueue(f, r.to)
		}
	}
}

// enqueue passes a frame through the bounded store-and-forward queue.
func (g *Gateway) enqueue(f can.Frame, to *Link) {
	if g.queued >= g.cfg.Queue {
		g.dropped++
		return
	}
	g.queued++
	g.sched.After(g.cfg.Latency, func() {
		g.queued--
		if g.crashed {
			return
		}
		_ = to.port.Request(f)
	})
}

// fedStep pumps one event through the federation core, records it, and
// executes the command stream — the gateway-side mirror of stack.inject.
func (g *Gateway) fedStep(ev proto.Event) {
	if g.fed == nil || g.crashed {
		return
	}
	ev.At = g.sched.Now()
	buf := g.getBuf()
	g.fed.StepInto(ev, buf)
	if g.cfg.Recorder != nil {
		g.cfg.Recorder.Append(g.cfg.ID, ev, buf.Commands())
	}
	g.fedExec(buf.Commands())
	g.putBuf(buf)
}

func (g *Gateway) getBuf() *proto.CommandBuf {
	if n := len(g.bufs); n > 0 {
		buf := g.bufs[n-1]
		g.bufs = g.bufs[:n-1]
		return buf
	}
	return new(proto.CommandBuf)
}

func (g *Gateway) putBuf(buf *proto.CommandBuf) {
	buf.Reset()
	g.bufs = append(g.bufs, buf)
}

// fedExec carries out a federation command stream against the raw links,
// the alarm machinery and the site notification consumers.
func (g *Gateway) fedExec(cmds []proto.Command) {
	for _, c := range cmds {
		switch c.Kind {
		case proto.CmdSendData:
			f := can.Frame{ID: c.MID.Encode()}
			f.SetPayload(c.Payload())
			for _, l := range g.raws {
				_ = l.port.Request(f)
			}
		case proto.CmdSetTimer:
			switch c.Timer {
			case proto.TimerFedAnnounce:
				g.annTimer.Start(c.Delay)
			case proto.TimerFedScan:
				g.scanEv.Cancel()
				g.scanEv = g.sched.After(c.Delay, func() {
					// Drop the handle before reuse: the scheduler recycles
					// the fired event (see stack.New's scan machinery).
					g.scanEv = sim.Event{}
					g.fedStep(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFedScan})
				})
			}
		case proto.CmdCancelTimer:
			switch c.Timer {
			case proto.TimerFedAnnounce:
				g.annTimer.Stop()
			case proto.TimerFedScan:
				g.scanEv.Cancel()
				g.scanEv = sim.Event{}
			}
		case proto.CmdTrace:
			if g.cfg.Trace != nil {
				g.cfg.Trace.Emit(c.TraceKind, int(g.cfg.ID), "%s", c.TraceText())
			}
		case proto.CmdNotifySite:
			for _, fn := range g.onSite {
				fn(c.Active, c.Failed)
			}
		}
	}
}
