package gateway

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/replay"
	"canely/internal/sim"
	"canely/internal/stack"
)

func testStackCfg() stack.Config {
	return stack.Config{
		FD: fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond},
		Membership: membership.Config{
			Tm:        50 * time.Millisecond,
			TjoinWait: 120 * time.Millisecond,
			RHA:       membership.RHAConfig{Trha: 5 * time.Millisecond, J: 2},
		},
		J: 2,
	}
}

func newMedium(sched *sim.Scheduler) stack.Medium {
	return stack.NewMedium(sched, stack.MediumConfig{Rate: can.Rate1Mbps})
}

// frameSink records raw frame deliveries with their arrival times.
type frameSink struct {
	sched  *sim.Scheduler
	frames []can.Frame
	at     []sim.Time
}

func (s *frameSink) OnFrame(f can.Frame, own bool) {
	if own {
		return
	}
	s.frames = append(s.frames, f)
	s.at = append(s.at, s.sched.Now())
}
func (s *frameSink) OnConfirm(can.Frame) {}
func (s *frameSink) OnBusOff()           {}

// TestForwardBridgesWithLatency checks the bridging mechanics alone: a
// frame transmitted on medium A crosses to medium B exactly when a filter
// table entry admits it, delayed by the store-and-forward latency.
func TestForwardBridgesWithLatency(t *testing.T) {
	sched := sim.NewScheduler()
	a, b := newMedium(sched), newMedium(sched)

	g, err := New(sched, Config{ID: 9, Tann: 10 * time.Millisecond,
		Tstale: 40 * time.Millisecond, Latency: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	la, errA := g.AddRawLink(a)
	lb, errB := g.AddRawLink(b)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	g.Forward(la, lb, ForwardType(can.TypeData))

	sender := a.Attach(1)
	sender.SetHandler(&frameSink{sched: sched})
	sink := &frameSink{sched: sched}
	b.Attach(2).SetHandler(sink)

	data := can.Frame{ID: can.DataSign(0, 1, 1).Encode()}
	data.SetPayload([]byte{0xAB})
	if err := sender.Request(data); err != nil {
		t.Fatal(err)
	}
	// An RTR frame of a non-admitted type must not cross.
	rtr := can.Frame{ID: can.ELSSign(1).Encode(), RTR: true}
	if err := sender.Request(rtr); err != nil {
		t.Fatal(err)
	}

	sched.RunFor(20 * time.Millisecond)
	if len(sink.frames) != 1 {
		t.Fatalf("medium B saw %d frames, want 1 (filtered bridge): %v", len(sink.frames), sink.frames)
	}
	if sink.frames[0].ID != data.ID || sink.frames[0].Payload()[0] != 0xAB {
		t.Fatalf("bridged frame mangled: %+v", sink.frames[0])
	}
	if sink.at[0] < sim.Time(5*time.Millisecond) {
		t.Fatalf("bridged frame arrived at %v, before the 5ms forwarding latency", sink.at[0])
	}
	if g.Dropped() != 0 {
		t.Fatalf("unexpected drops: %d", g.Dropped())
	}
}

// TestForwardQueueBound checks that the store-and-forward queue drops
// beyond its bound and counts what it refused.
func TestForwardQueueBound(t *testing.T) {
	sched := sim.NewScheduler()
	a, b := newMedium(sched), newMedium(sched)

	g, err := New(sched, Config{ID: 9, Tann: 10 * time.Millisecond,
		Tstale: 40 * time.Millisecond, Queue: 1, Latency: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	la, _ := g.AddRawLink(a)
	lb, _ := g.AddRawLink(b)
	g.Forward(la, lb, ForwardAll)

	// Three senders deliver back-to-back, far faster than the 10ms
	// forwarding latency drains the depth-1 queue.
	for i := can.NodeID(1); i <= 3; i++ {
		p := a.Attach(i)
		p.SetHandler(&frameSink{sched: sched})
		f := can.Frame{ID: can.DataSign(0, i, 1).Encode()}
		f.SetPayload([]byte{byte(i)})
		if err := p.Request(f); err != nil {
			t.Fatal(err)
		}
	}
	sink := &frameSink{sched: sched}
	b.Attach(5).SetHandler(sink)

	sched.RunFor(50 * time.Millisecond)
	if len(sink.frames) != 1 {
		t.Fatalf("medium B saw %d frames, want 1 (queue bound 1): %v", len(sink.frames), sink.frames)
	}
	if g.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", g.Dropped())
	}
}

// fedFixture is a two-segment federation: each segment medium carries two
// plain nodes (ids 0, 1) plus the gateway as member id 5; gateways talk
// digests over a raw backbone medium.
type fedFixture struct {
	sched    *sim.Scheduler
	backbone stack.Medium
	segMedia []stack.Medium
	nodes    [][]*stack.Stack
	gws      []*Gateway
}

const segView = can.NodeSet(1<<0 | 1<<1 | 1<<5) // {n00, n01, n05}

func newFedFixture(t *testing.T, segments int, rec func(i int) *replay.Log) *fedFixture {
	t.Helper()
	fx := &fedFixture{sched: sim.NewScheduler()}
	fx.backbone = newMedium(fx.sched)
	for s := 0; s < segments; s++ {
		m := newMedium(fx.sched)
		fx.segMedia = append(fx.segMedia, m)
		var nodes []*stack.Stack
		for _, id := range []can.NodeID{0, 1} {
			st, err := stack.New(fx.sched, []stack.Medium{m}, id, testStackCfg(), nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, st)
		}
		fx.nodes = append(fx.nodes, nodes)

		var log *replay.Log
		if rec != nil {
			log = rec(s)
		}
		g, err := New(fx.sched, Config{ID: can.NodeID(10 + s), Tann: 10 * time.Millisecond,
			Tstale: 40 * time.Millisecond, Recorder: log})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddMemberLink(m, can.NodeID(s), 5, segView, testStackCfg(), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddRawLink(fx.backbone); err != nil {
			t.Fatal(err)
		}
		fx.gws = append(fx.gws, g)
	}
	return fx
}

func (fx *fedFixture) bootstrap(t *testing.T, site can.NodeSet) {
	t.Helper()
	for _, seg := range fx.nodes {
		for _, st := range seg {
			st.Bootstrap(segView)
		}
	}
	for _, g := range fx.gws {
		if err := g.Bootstrap(site); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFederationConvergesAndDetectsGatewayCrash drives the fixture to the
// agreed two-segment site view, crashes one gateway, and checks staleness
// removes its segment at the survivor within Tstale plus one scan.
func TestFederationConvergesAndDetectsGatewayCrash(t *testing.T) {
	fx := newFedFixture(t, 2, nil)
	site := can.MakeSet(0, 1)

	var failures []can.NodeSet
	fx.gws[0].OnSiteChange(func(_, failed can.NodeSet) {
		if !failed.Empty() {
			failures = append(failures, failed)
		}
	})

	fx.bootstrap(t, site)
	fx.sched.RunFor(100 * time.Millisecond)
	for i, g := range fx.gws {
		if got := g.SiteView(); got != site {
			t.Fatalf("gateway %d site view %v, want %v", i, got, site)
		}
	}
	if got := fx.gws[0].Members(1); got != segView {
		t.Fatalf("gateway 0 sees segment 1 members %v, want %v", got, segView)
	}

	fx.gws[1].Crash()
	if fx.gws[1].Alive() {
		t.Fatal("crashed gateway still alive")
	}
	fx.sched.RunFor(100 * time.Millisecond)
	if got, want := fx.gws[0].SiteView(), can.MakeSet(0); got != want {
		t.Fatalf("after gateway-1 crash, gateway 0 site view %v, want %v", got, want)
	}
	if len(failures) != 1 || failures[0] != can.MakeSet(1) {
		t.Fatalf("site failure notifications %v, want one removal of segment 1", failures)
	}
}

// TestRedundantGatewayFailover puts two gateways on segment 1 (member ids
// 5 and 6). The backup stays digest-suppressed while the primary lives;
// after the primary crashes it takes over fast enough that segment 1 never
// leaves the remote site view (Tstale >= 4*Tann ride-through).
func TestRedundantGatewayFailover(t *testing.T) {
	fx := newFedFixture(t, 2, nil)
	seg1View := can.NodeSet(1<<0 | 1<<1 | 1<<5 | 1<<6)

	backup, err := New(fx.sched, Config{ID: 13, Tann: 10 * time.Millisecond,
		Tstale: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := backup.AddMemberLink(fx.segMedia[1], 1, 6, seg1View, testStackCfg(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := backup.AddRawLink(fx.backbone); err != nil {
		t.Fatal(err)
	}

	var removals []can.NodeSet
	fx.gws[0].OnSiteChange(func(_, failed can.NodeSet) {
		if !failed.Empty() {
			removals = append(removals, failed)
		}
	})

	site := can.MakeSet(0, 1)
	for _, st := range fx.nodes[0] {
		st.Bootstrap(segView)
	}
	for _, st := range fx.nodes[1] {
		st.Bootstrap(seg1View)
	}
	fx.gws[1].links[0].view = seg1View // primary's member view matches the wider segment
	for _, g := range []*Gateway{fx.gws[0], fx.gws[1], backup} {
		if err := g.Bootstrap(site); err != nil {
			t.Fatal(err)
		}
	}

	fx.sched.RunFor(100 * time.Millisecond)
	if got := fx.gws[0].SiteView(); got != site {
		t.Fatalf("site view before failover %v, want %v", got, site)
	}

	fx.gws[1].Crash()
	fx.sched.RunFor(200 * time.Millisecond)
	if got := fx.gws[0].SiteView(); got != site {
		t.Fatalf("site view after failover %v, want %v (backup should keep segment 1 announced)", got, site)
	}
	if len(removals) != 0 {
		t.Fatalf("segment removed during failover: %v (Tstale ride-through violated)", removals)
	}
}

// TestGatewayRecordingReplays captures both gateways' federation streams
// and checks the logs re-execute exactly (replay.Verify).
func TestGatewayRecordingReplays(t *testing.T) {
	logs := []*replay.Log{replay.New(), replay.New()}
	fx := newFedFixture(t, 2, func(i int) *replay.Log { return logs[i] })
	fx.bootstrap(t, can.MakeSet(0, 1))
	fx.sched.RunFor(100 * time.Millisecond)
	fx.gws[1].Crash()
	fx.sched.RunFor(100 * time.Millisecond)

	for i, log := range logs {
		if len(log.Records) == 0 {
			t.Fatalf("gateway %d recorded nothing", i)
		}
		if err := log.Verify(); err != nil {
			t.Fatalf("gateway %d capture does not replay: %v", i, err)
		}
	}
}

// TestLinksFrozenAfterBootstrap pins the attach-before-bootstrap contract.
func TestLinksFrozenAfterBootstrap(t *testing.T) {
	sched := sim.NewScheduler()
	g, err := New(sched, Config{ID: 9, Tann: 10 * time.Millisecond, Tstale: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddRawLink(newMedium(sched)); err != nil {
		t.Fatal(err)
	}
	if err := g.Bootstrap(can.EmptySet); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddRawLink(newMedium(sched)); err == nil {
		t.Fatal("AddRawLink accepted after Bootstrap")
	}
	if err := g.Bootstrap(can.EmptySet); err == nil {
		t.Fatal("double Bootstrap accepted")
	}
}
