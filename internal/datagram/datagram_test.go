package datagram

// The tests audit the substrate against the stack.Medium / stack.Port
// contract the two bus substrates established: Elapsed monotonicity,
// Attach-after-start, double-attach panics, crash (port close)
// idempotence, mailbox replacement, abort semantics — plus the properties
// this substrate adds: per-seed determinism, independent per-link
// sampling, unicast gossip routing over lossy broadcast fan-out.

import (
	"testing"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/sim"
)

// rec is a recording bus.Handler.
type rec struct {
	frames   []can.Frame
	own      int
	confirms int
}

func (r *rec) OnFrame(f can.Frame, own bool) {
	if own {
		r.own++
		return
	}
	r.frames = append(r.frames, f)
}
func (r *rec) OnConfirm(can.Frame) { r.confirms++ }
func (r *rec) OnBusOff()           {}

func dataFrame(src can.NodeID, payload ...byte) can.Frame {
	f := can.Frame{ID: can.DataSign(0, src, 0).Encode()}
	f.SetPayload(payload)
	return f
}

func gossipFrame(dest, src can.NodeID, payload ...byte) can.Frame {
	f := can.Frame{ID: can.GossipSign(dest, src, 0).Encode()}
	f.SetPayload(payload)
	return f
}

func newNet(t *testing.T, cfg Config) (*sim.Scheduler, *Net) {
	t.Helper()
	sched := sim.NewScheduler()
	return sched, New(sched, cfg)
}

func TestAttachContract(t *testing.T) {
	_, n := newNet(t, Config{})
	n.Attach(0)
	mustPanic(t, "double attach", func() { n.Attach(0) })
	mustPanic(t, "invalid id", func() { n.Attach(can.NodeID(can.MaxNodes)) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// TestBroadcastFanOut: a non-gossip frame reaches every other attached
// node exactly once on lossless links; the sender sees loopback + confirm
// but no foreign indication.
func TestBroadcastFanOut(t *testing.T) {
	sched, n := newNet(t, Config{})
	hs := make([]*rec, 4)
	ports := make([]*Port, 4)
	for i := range hs {
		hs[i] = &rec{}
		ports[i] = n.Attach(can.NodeID(i))
		ports[i].SetHandler(hs[i])
	}
	if err := ports[1].Request(dataFrame(1, 0xAB)); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if hs[1].own != 1 || hs[1].confirms != 1 || len(hs[1].frames) != 0 {
		t.Errorf("sender saw own=%d confirms=%d foreign=%d, want 1/1/0", hs[1].own, hs[1].confirms, len(hs[1].frames))
	}
	for _, i := range []int{0, 2, 3} {
		if len(hs[i].frames) != 1 {
			t.Errorf("node %d received %d copies, want 1", i, len(hs[i].frames))
		}
	}
	if got := n.Stats().FramesOK; got != 1 {
		t.Errorf("FramesOK %d, want 1", got)
	}
}

// TestGossipUnicast: a gossip-typed frame reaches only its destination.
func TestGossipUnicast(t *testing.T) {
	sched, n := newNet(t, Config{})
	hs := make([]*rec, 3)
	for i := range hs {
		hs[i] = &rec{}
		n.Attach(can.NodeID(i)).SetHandler(hs[i])
	}
	if err := n.ports[0].Request(gossipFrame(2, 0, 0x01)); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(hs[1].frames) != 0 {
		t.Error("bystander received a unicast gossip frame")
	}
	if len(hs[2].frames) != 1 {
		t.Errorf("destination received %d copies, want 1", len(hs[2].frames))
	}
}

// TestElapsedMonotone: Elapsed follows the scheduler clock and includes
// serialization plus link delay.
func TestElapsedMonotone(t *testing.T) {
	sched, n := newNet(t, Config{Link: LinkParams{DelayMin: time.Millisecond}})
	h := &rec{}
	n.Attach(0)
	n.Attach(1).SetHandler(h)
	if n.Elapsed() != 0 {
		t.Fatalf("fresh network elapsed %v", n.Elapsed())
	}
	last := n.Elapsed()
	if err := n.ports[0].Request(dataFrame(0, 1)); err != nil {
		t.Fatal(err)
	}
	for sched.Step() {
		if now := n.Elapsed(); now < last {
			t.Fatalf("Elapsed moved backwards: %v -> %v", last, now)
		} else {
			last = now
		}
	}
	if len(h.frames) != 1 {
		t.Fatalf("frame not delivered")
	}
	if n.Elapsed() < time.Millisecond {
		t.Errorf("Elapsed %v does not include the propagation floor", n.Elapsed())
	}
}

// TestMailboxReplace: a waiting request with the same (ID, RTR) is
// replaced in place; the serializing frame is not.
func TestMailboxReplace(t *testing.T) {
	sched, n := newNet(t, Config{})
	h := &rec{}
	n.Attach(0)
	n.Attach(1).SetHandler(h)
	p := n.ports[0]
	blocker := dataFrame(0, 0xFF) // heads the queue, serializes first
	if err := p.Request(blocker); err != nil {
		t.Fatal(err)
	}
	f := can.Frame{ID: can.DataSign(1, 0, 7).Encode()}
	f.SetPayload([]byte{1})
	if err := p.Request(f); err != nil {
		t.Fatal(err)
	}
	f2 := f
	f2.SetPayload([]byte{2})
	if err := p.Request(f2); err != nil {
		t.Fatal(err)
	}
	if p.QueueLen() != 1 {
		t.Fatalf("queue length %d after replacement, want 1", p.QueueLen())
	}
	sched.Run()
	if len(h.frames) != 2 {
		t.Fatalf("receiver got %d frames, want 2 (blocker + replaced)", len(h.frames))
	}
	if got := h.frames[1].Payload(); len(got) != 1 || got[0] != 2 {
		t.Errorf("replaced mailbox delivered payload %v, want [2]", got)
	}
}

// TestAbortSemantics: waiting requests are abortable, the serializing
// frame is not (it is already on the wire).
func TestAbortSemantics(t *testing.T) {
	sched, n := newNet(t, Config{})
	n.Attach(0)
	n.Attach(1).SetHandler(&rec{})
	p := n.ports[0]
	first := dataFrame(0, 1)
	second := can.Frame{ID: can.DataSign(1, 0, 7).Encode()}
	if err := p.Request(first); err != nil {
		t.Fatal(err)
	}
	if err := p.Request(second); err != nil {
		t.Fatal(err)
	}
	if p.Abort(first.ID) {
		t.Error("aborted the frame being serialized")
	}
	if !p.Pending(second.ID) || !p.Abort(second.ID) {
		t.Error("waiting request not abortable")
	}
	if p.Pending(second.ID) {
		t.Error("aborted request still pending")
	}
	sched.Run()
	if p.TxSuccesses() != 1 {
		t.Errorf("tx successes %d, want 1", p.TxSuccesses())
	}
}

// TestCrashIdempotent: Crash is the port-close operation; closing twice is
// a no-op, and a crashed port rejects requests and receives nothing.
func TestCrashIdempotent(t *testing.T) {
	sched, n := newNet(t, Config{})
	h := &rec{}
	n.Attach(0)
	n.Attach(1).SetHandler(h)
	p := n.ports[1]
	p.Crash()
	p.Crash() // idempotent
	if p.Alive() || p.Operational() {
		t.Error("crashed port reports alive")
	}
	if err := p.Request(dataFrame(1, 1)); err != bus.ErrRequestRejected {
		t.Errorf("crashed port accepted a request: %v", err)
	}
	if err := n.ports[0].Request(dataFrame(0, 1)); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(h.frames) != 0 {
		t.Error("crashed port received traffic")
	}
	if n.AliveSet() != can.MakeSet(0) {
		t.Errorf("alive set %v, want {0}", n.AliveSet())
	}
}

// TestCrashCannotRecallInFlight: a copy already in flight still arrives
// after the sender crashes; a copy not yet serialized never leaves.
func TestCrashCannotRecallInFlight(t *testing.T) {
	sched, n := newNet(t, Config{Link: LinkParams{DelayMin: time.Millisecond}})
	h := &rec{}
	n.Attach(0)
	n.Attach(1).SetHandler(h)
	p := n.ports[0]
	if err := p.Request(dataFrame(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Request(can.Frame{ID: can.DataSign(1, 0, 7).Encode()}); err != nil {
		t.Fatal(err)
	}
	// Step to the instant the first frame finishes serializing — its copy
	// is in flight (1 ms link delay), the second is still on the wire —
	// then crash the sender.
	for sched.Step() && p.TxSuccesses() < 1 {
	}
	if p.TxSuccesses() != 1 {
		t.Fatalf("first frame never serialized (tx=%d)", p.TxSuccesses())
	}
	p.Crash()
	sched.Run()
	if len(h.frames) != 1 {
		t.Errorf("receiver got %d frames, want exactly the in-flight copy", len(h.frames))
	}
}

// TestSeedDeterminism: identical seeds reproduce drops, duplicates and
// delivery counts exactly; different seeds diverge.
func TestSeedDeterminism(t *testing.T) {
	lossy := LinkParams{Drop: 0.3, DelayJitter: time.Millisecond, Duplicate: 0.2}
	run := func(seed int64) (delivered int, s bus.Stats) {
		sched := sim.NewScheduler()
		n := New(sched, Config{Seed: seed, Link: lossy})
		h := &rec{}
		n.Attach(0)
		n.Attach(1).SetHandler(h)
		for i := 0; i < 50; i++ {
			f := can.Frame{ID: can.DataSign(0, 0, uint8(i)).Encode()}
			if err := n.ports[0].Request(f); err != nil {
				t.Fatal(err)
			}
			sched.Run()
		}
		return len(h.frames), n.Stats()
	}
	d1, s1 := run(7)
	d2, s2 := run(7)
	if d1 != d2 || s1.FramesError != s2.FramesError || s1.FramesInconsistent != s2.FramesInconsistent {
		t.Fatalf("same seed diverged: %d/%v vs %d/%v", d1, s1, d2, s2)
	}
	if s1.FramesError == 0 || s1.FramesInconsistent == 0 {
		t.Fatalf("lossy run lost nothing (drops=%d dups=%d): sampling inert", s1.FramesError, s1.FramesInconsistent)
	}
	d3, s3 := run(8)
	if d1 == d3 && s1.FramesError == s3.FramesError && s1.FramesInconsistent == s3.FramesInconsistent {
		t.Error("different seeds reproduced identical loss patterns")
	}
}

// TestPerLinkOverride: PerLink pins one ordered link to certain loss while
// the reverse direction stays lossless.
func TestPerLinkOverride(t *testing.T) {
	sched := sim.NewScheduler()
	n := New(sched, Config{PerLink: func(from, to can.NodeID) LinkParams {
		if from == 0 && to == 1 {
			return LinkParams{Drop: 0.999999999}
		}
		return LinkParams{}
	}})
	h0, h1 := &rec{}, &rec{}
	n.Attach(0).SetHandler(h0)
	n.Attach(1).SetHandler(h1)
	if err := n.ports[0].Request(dataFrame(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := n.ports[1].Request(dataFrame(1, 2)); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(h1.frames) != 0 {
		t.Error("near-certain drop delivered on the 0->1 link")
	}
	if len(h0.frames) != 1 {
		t.Error("lossless 1->0 link lost the frame")
	}
}

// TestStatsSynthesis: the snapshot carries serialized bits per type and
// the fault-confinement fields hold the datagram analogues.
func TestStatsSynthesis(t *testing.T) {
	sched, n := newNet(t, Config{})
	n.Attach(0)
	n.Attach(1).SetHandler(&rec{})
	p := n.ports[0]
	if err := p.Request(gossipFrame(1, 0, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	s := n.Stats()
	if s.FramesOK != 1 || s.BitsBusy == 0 {
		t.Errorf("stats %+v missing serialized traffic", s)
	}
	if s.BitsByType[can.TypeGossip] == 0 {
		t.Error("gossip bits not classified by type")
	}
	if st := p.State(); st != bus.ErrorActive {
		t.Errorf("state %v, want permanently error-active", st)
	}
	if tec, rec := p.Counters(); tec != 0 || rec != 0 {
		t.Errorf("fault counters (%d,%d), want (0,0)", tec, rec)
	}
}
