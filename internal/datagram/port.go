package datagram

import (
	"canely/internal/bus"
	"canely/internal/can"
)

// Port is one node's network interface: CAN-shaped local semantics
// (mailbox transmit requests, completion confirms, own-frame loopback)
// over a lossy point-to-point network. There is no fault confinement —
// the interface never error-signals, so TEC/REC stay zero and the state
// is permanently error-active until a crash.
type Port struct {
	net     *Net
	id      can.NodeID
	handler bus.Handler

	// current is the frame being serialized; queue holds the waiting
	// requests in FIFO order (no arbitration, so no identifier order).
	current   can.Frame
	serializg bool
	queue     []can.Frame

	alive bool
	txOK  int
	rxOK  int
}

// ID returns the node identity of this interface.
func (p *Port) ID() can.NodeID { return p.id }

// SetHandler installs the indication receiver.
func (p *Port) SetHandler(h bus.Handler) { p.handler = h }

// Alive reports whether the node has not crashed.
func (p *Port) Alive() bool { return p.alive }

// Operational reports whether the interface exchanges traffic. There is
// no bus-off on a point-to-point network, so this equals Alive.
func (p *Port) Operational() bool { return p.alive }

// State returns the fault-confinement state: always error-active (the
// interface has no error counters to escalate).
func (p *Port) State() bus.ControllerState { return bus.ErrorActive }

// Counters returns (TEC, REC): always zero.
func (p *Port) Counters() (tec, rec int) { return 0, 0 }

// TxSuccesses returns the number of serialized (confirmed) frames.
func (p *Port) TxSuccesses() int { return p.txOK }

// RxSuccesses returns the number of delivered frames.
func (p *Port) RxSuccesses() int { return p.rxOK }

// Request queues a frame for transmission with mailbox semantics: a
// waiting request with the same identifier and kind is replaced in place;
// the frame being serialized is already on the wire and is not affected.
func (p *Port) Request(f can.Frame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if !p.alive {
		return bus.ErrRequestRejected
	}
	for i := range p.queue {
		if p.queue[i].ID == f.ID && p.queue[i].RTR == f.RTR {
			p.queue[i] = f
			return nil
		}
	}
	p.queue = append(p.queue, f)
	if !p.serializg {
		p.startNext()
	}
	return nil
}

// startNext begins serializing the head of the queue.
func (p *Port) startNext() {
	p.current = p.queue[0]
	p.queue = p.queue[1:]
	p.serializg = true
	dur := p.net.rate.DurationOf(can.FrameBits(p.current))
	p.net.sched.After(dur, p.complete)
}

// complete finishes the serialization of p.current: confirm the sender,
// loop the frame back (own indication), hand it to the network, continue
// with the next queued request.
func (p *Port) complete() {
	if !p.alive {
		return // crashed mid-serialization: the frame never left
	}
	f := p.current
	p.serializg = false
	p.txOK++
	if p.handler != nil {
		p.handler.OnConfirm(f)
		p.handler.OnFrame(f, true)
	}
	p.net.transmit(p.id, f)
	if len(p.queue) > 0 && p.alive {
		p.startNext()
	}
}

// Pending reports whether a request with the identifier is queued or being
// serialized.
func (p *Port) Pending(id uint32) bool {
	if p.serializg && p.current.ID == id {
		return true
	}
	for i := range p.queue {
		if p.queue[i].ID == id {
			return true
		}
	}
	return false
}

// PendingEquivalent reports whether a transmit request indistinguishable
// on the wire from f is queued or being serialized.
func (p *Port) PendingEquivalent(f can.Frame) bool {
	if p.serializg && p.current.SameWire(f) {
		return true
	}
	for i := range p.queue {
		if p.queue[i].SameWire(f) {
			return true
		}
	}
	return false
}

// Abort cancels a waiting transmit request; the frame being serialized is
// not recalled.
func (p *Port) Abort(id uint32) bool {
	for i := range p.queue {
		if p.queue[i].ID == id {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			return true
		}
	}
	return false
}

// Crash fail-silences the node: transmit and receive stop immediately and
// the queue is discarded. Copies already in flight toward other nodes
// still arrive (a datagram cannot be recalled). Idempotent: crashing a
// crashed port is a no-op.
func (p *Port) Crash() {
	if !p.alive {
		return
	}
	p.alive = false
	p.serializg = false
	p.queue = nil
	p.net.alive = p.net.alive.Remove(p.id)
}

// QueueLen returns the number of waiting transmit requests (the frame
// being serialized excluded).
func (p *Port) QueueLen() int { return len(p.queue) }
