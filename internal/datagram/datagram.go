// Package datagram is the third Medium substrate: a point-to-point, lossy
// packet network with none of CAN's physical-layer guarantees. Where
// internal/bus and internal/fastbus model a shared wire — arbitration,
// wired-AND clustering, consistent frame completion — datagram models the
// asynchronous-network environment the gossip baseline (internal/gossip)
// is designed for:
//
//   - every node owns a full-duplex interface serializing its own frames
//     independently (no arbitration, no priority inversion, no shared-wire
//     occupancy);
//   - each ordered (sender, receiver) link samples drop, delay and
//     duplication from its own seeded stream, so a run is reproducible per
//     seed and perturbing one link never shifts the draws of another
//     (sim.RNG.Split discipline, internal/fault's seeded-script spirit);
//   - delivery is per-receiver: a frame addressed to the gossip
//     destination (can.TypeGossip) is unicast; any other frame fans out to
//     every other attached node with independent link sampling — a "lossy
//     broadcast" that deliberately breaks the consistent-omission property
//     the CANELy agreement argument rests on.
//
// Senders still observe CAN-shaped local semantics — mailbox transmit
// requests, completion confirms, own-frame loopback — so the substrate
// satisfies the stack.Medium/stack.Port contract and stacks bind to it
// unchanged; what changes is only what the network promises.
package datagram

import (
	"fmt"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/sim"
)

// LinkParams is the per-link perturbation distribution.
type LinkParams struct {
	// Drop is the probability a copy is lost in transit.
	Drop float64
	// DelayMin is the propagation floor added to every delivered copy.
	DelayMin time.Duration
	// DelayJitter widens the delay to DelayMin + U[0, DelayJitter).
	DelayJitter time.Duration
	// Duplicate is the probability a delivered copy arrives twice (the
	// second copy samples its own delay).
	Duplicate float64
}

// Validate checks the distribution parameters.
func (p LinkParams) Validate() error {
	if p.Drop < 0 || p.Drop >= 1 {
		return fmt.Errorf("datagram: drop probability %v outside [0,1)", p.Drop)
	}
	if p.Duplicate < 0 || p.Duplicate >= 1 {
		return fmt.Errorf("datagram: duplicate probability %v outside [0,1)", p.Duplicate)
	}
	if p.DelayMin < 0 || p.DelayJitter < 0 {
		return fmt.Errorf("datagram: negative delay parameters")
	}
	return nil
}

// Config parameterizes the network.
type Config struct {
	// Rate is the per-interface serialization rate; defaults to 1 Mbit/s.
	Rate can.BitRate
	// Seed roots the per-link sampling streams.
	Seed int64
	// Link is the default distribution applied to every ordered link.
	Link LinkParams
	// PerLink overrides the distribution for specific ordered (from, to)
	// pairs; nil keeps Link everywhere.
	PerLink func(from, to can.NodeID) LinkParams
}

// Net is the simulated packet network. Create one with New, attach Ports,
// then run the scheduler.
type Net struct {
	sched *sim.Scheduler
	rate  can.BitRate
	cfg   Config
	root  *sim.RNG

	ports [can.MaxNodes]*Port
	order []can.NodeID
	alive can.NodeSet

	links map[uint16]*link

	stats counters
}

// link is the state of one ordered (from, to) pair: its distribution and
// its private sampling stream.
type link struct {
	p   LinkParams
	rng *sim.RNG
}

// counters accumulates network statistics in the flat-array style of
// fastbus; the bus.Stats shape is synthesized on snapshot. BitsBusy reads
// as aggregate serialized bits across all interfaces (there is no shared
// wire to occupy), FramesError counts dropped copies, and
// FramesInconsistent counts duplicated copies — the closest analogue of
// "the wire disagreed with the sender" this substrate has.
type counters struct {
	framesOK   int
	dropped    int
	duplicated int
	bitsBusy   int64
	bitsByType [16]int64
}

func (c *counters) snapshot() bus.Stats {
	s := bus.Stats{
		FramesOK:           c.framesOK,
		FramesError:        c.dropped,
		FramesInconsistent: c.duplicated,
		BitsBusy:           c.bitsBusy,
		BitsByType:         make(map[can.MsgType]int64),
	}
	for t, v := range c.bitsByType {
		if v != 0 {
			s.BitsByType[can.MsgType(t)] = v
		}
	}
	return s
}

// New builds a network on the given scheduler.
func New(sched *sim.Scheduler, cfg Config) *Net {
	if sched == nil {
		panic("datagram: nil scheduler")
	}
	if cfg.Rate == 0 {
		cfg.Rate = can.Rate1Mbps
	}
	if err := cfg.Link.Validate(); err != nil {
		panic(err)
	}
	return &Net{
		sched: sched,
		rate:  cfg.Rate,
		cfg:   cfg,
		root:  sim.NewRNG(cfg.Seed),
		links: make(map[uint16]*link),
	}
}

// Attach connects a new interface for the node. Attaching an id twice
// panics. Attachment is allowed at any virtual time: a port attached after
// traffic started simply misses what was delivered before it existed.
func (n *Net) Attach(id can.NodeID) *Port {
	if !id.Valid() {
		panic(fmt.Sprintf("datagram: invalid node id %d", id))
	}
	if n.ports[id] != nil {
		panic(fmt.Sprintf("datagram: node %v attached twice", id))
	}
	p := &Port{net: n, id: id, alive: true}
	n.ports[id] = p
	n.order = append(n.order, id)
	n.alive = n.alive.Add(id)
	return p
}

// Rate returns the per-interface serialization rate.
func (n *Net) Rate() can.BitRate { return n.rate }

// AliveSet returns the set of operational nodes.
func (n *Net) AliveSet() can.NodeSet { return n.alive }

// Stats returns a snapshot of the accumulated network statistics.
func (n *Net) Stats() bus.Stats { return n.stats.snapshot() }

// Elapsed returns the network's time base. Monotone: it reads the
// scheduler clock, which never moves backwards.
func (n *Net) Elapsed() time.Duration { return time.Duration(n.sched.Now()) }

// Dropped returns the number of copies lost in transit.
func (n *Net) Dropped() int { return n.stats.dropped }

// linkFor returns (lazily creating) the state of the ordered link.
func (n *Net) linkFor(from, to can.NodeID) *link {
	key := uint16(from)<<8 | uint16(to)
	if l := n.links[key]; l != nil {
		return l
	}
	p := n.cfg.Link
	if n.cfg.PerLink != nil {
		p = n.cfg.PerLink(from, to)
		if err := p.Validate(); err != nil {
			panic(err)
		}
	}
	l := &link{p: p, rng: n.root.Split(fmt.Sprintf("link/%d->%d", from, to))}
	n.links[key] = l
	return l
}

// typeOf classifies a frame for the per-type statistics.
func typeOf(f can.Frame) can.MsgType {
	mid, err := can.DecodeMID(f.ID)
	if err != nil {
		return 0
	}
	return mid.Type
}

// transmit routes a serialized frame: unicast for gossip traffic, lossy
// fan-out for everything else. Each copy samples its link independently.
func (n *Net) transmit(from can.NodeID, f can.Frame) {
	n.stats.framesOK++
	bits := int64(can.FrameBits(f))
	n.stats.bitsBusy += bits
	n.stats.bitsByType[typeOf(f)] += bits
	if mid, err := can.DecodeMID(f.ID); err == nil && mid.Type == can.TypeGossip {
		n.deliver(from, can.GossipDest(mid), f)
		return
	}
	for _, id := range n.order {
		if id != from {
			n.deliver(from, id, f)
		}
	}
}

// deliver samples one link and schedules the arriving copies.
func (n *Net) deliver(from, to can.NodeID, f can.Frame) {
	dst := n.ports[to]
	if dst == nil || !dst.alive {
		return
	}
	l := n.linkFor(from, to)
	if l.rng.Bool(l.p.Drop) {
		n.stats.dropped++
		return
	}
	n.arrive(dst, f, l)
	if l.rng.Bool(l.p.Duplicate) {
		n.stats.duplicated++
		n.arrive(dst, f, l)
	}
}

// arrive schedules one copy's arrival after its sampled delay. Liveness is
// re-checked at arrival time: a receiver that crashed while the copy was
// in flight hears nothing, but a sender crash cannot recall it.
func (n *Net) arrive(dst *Port, f can.Frame, l *link) {
	delay := sim.Duration(l.p.DelayMin) + l.rng.Duration(sim.Duration(l.p.DelayJitter))
	n.sched.After(delay, func() {
		if dst.alive && dst.handler != nil {
			dst.rxOK++
			dst.handler.OnFrame(f, false)
		}
	})
}
