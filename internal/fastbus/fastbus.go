// Package fastbus is the frame-level CAN substrate: the exact MAC/LLC
// semantics of the bit-accurate internal/bus simulator — lowest-identifier
// arbitration, wired-AND clustering of identical remote frames, exact frame
// durations from the can.Timing worst-case stuffing math, end-of-frame
// inconsistent-omission injection, TEC/REC fault confinement with the
// error-passive suspend-transmission penalty — resolved analytically per
// physical frame, with none of the diagnostic machinery.
//
// Where internal/bus keeps a structured trace, per-message-type occupancy
// maps and map-indexed ports, fastbus keeps dense arrays, plain counters and
// zero per-frame allocations on the success path. A seeded simulation
// delivers the same frame sequence, drives the same fault-injector decision
// stream and reaches the same controller and membership states on either
// substrate (asserted by the equivalence suite in the root package); fastbus
// is simply an order of magnitude cheaper per run, which is what Monte-Carlo
// campaigns care about.
//
// The deliberate differences: no trace (diagnose on internal/bus), Stats()
// is synthesized from counters on demand, and the per-frame overload /
// error overhead arithmetic is shared via the exported internal/bus
// constants rather than duplicated.
package fastbus

import (
	"fmt"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/fault"
	"canely/internal/sim"
)

// Config parameterizes a fastbus medium.
type Config struct {
	// Rate is the signalling rate; defaults to 1 Mbit/s.
	Rate can.BitRate
	// Injector decides per-transmission faults; defaults to fault.None.
	Injector fault.Injector
}

// Bus is the frame-level channel. Create one with New, attach Ports, then
// run the scheduler.
type Bus struct {
	sched *sim.Scheduler
	rate  can.BitRate
	inj   fault.Injector

	// ports is indexed by node id; order preserves attach order for the
	// deterministic delivery sweep.
	ports [can.MaxNodes]*Port
	order []can.NodeID
	// alive caches the operational set; crash and bus-off are one-way
	// transitions, so incremental removal is exact.
	alive can.NodeSet

	// busy is true while a frame is on the wire (the complete event is
	// pending); the trailing overhead after complete is tracked analytically
	// by busyUntil instead of occupying an event of its own.
	busy         bool
	busyUntil    sim.Time
	arbScheduled bool
	current      transmission
	onWire       bool // current is valid

	// kickEv is the pending re-arbitration alarm, if any: the single event
	// that steps over a wire-occupancy gap (frame tail or error-passive
	// suspension) when — and only when — transmit work is actually queued.
	// An idle gap with no queued work costs no event at all: the bus state
	// advances analytically when the next request arrives (see kick).
	kickEv sim.Event

	// Pre-bound event callbacks: scheduling a method value allocates, so
	// the per-frame events reuse these.
	arbitrateFn func()
	completeFn  func()
	kickFn      func()

	// observer, when non-nil, sees every physically delivered frame once
	// (after MAC resolution, before per-port dispatch) — the bus-tap hook
	// live brokers and traffic analyzers attach to.
	observer func(f can.Frame)

	stats counters
}

// transmission is the frame currently on the wire.
type transmission struct {
	frame   can.Frame
	senders can.NodeSet
	attempt int
}

// New creates a fastbus on the given scheduler.
func New(sched *sim.Scheduler, cfg Config) *Bus {
	if sched == nil {
		panic("fastbus: nil scheduler")
	}
	if cfg.Rate == 0 {
		cfg.Rate = can.Rate1Mbps
	}
	if cfg.Injector == nil {
		cfg.Injector = fault.None{}
	}
	b := &Bus{sched: sched, rate: cfg.Rate, inj: cfg.Injector}
	b.arbitrateFn = b.arbitrate
	b.completeFn = b.complete
	b.kickFn = func() {
		b.kickEv = sim.Event{}
		b.kick()
	}
	return b
}

// Rate returns the configured bit rate.
func (b *Bus) Rate() can.BitRate { return b.rate }

// Scheduler returns the simulation scheduler the bus runs on.
func (b *Bus) Scheduler() *sim.Scheduler { return b.sched }

// Stats synthesizes a bit-accurate-compatible statistics snapshot from the
// counters.
func (b *Bus) Stats() bus.Stats { return b.stats.snapshot() }

// Advances reports how the bus stepped over post-frame wire-occupancy gaps:
// batched gaps were skipped analytically (no scheduler event — the next
// request re-arbitrates directly), stepped gaps needed one alarm at the
// gap's end because transmit work was already waiting.
func (b *Bus) Advances() (batched, stepped uint64) {
	return b.stats.advBatched, b.stats.advStepped
}

// SetObserver installs a bus-level tap that sees every physically delivered
// frame once, before per-port dispatch. Pass nil to detach.
func (b *Bus) SetObserver(fn func(f can.Frame)) { b.observer = fn }

// Elapsed returns the bus time base for utilization computations.
func (b *Bus) Elapsed() time.Duration { return time.Duration(b.sched.Now()) }

// Attach connects a new controller to the bus. Attaching the same node id
// twice panics: node identity is a static configuration property.
func (b *Bus) Attach(id can.NodeID) *Port {
	if !id.Valid() {
		panic(fmt.Sprintf("fastbus: invalid node id %d", id))
	}
	if b.ports[id] != nil {
		panic(fmt.Sprintf("fastbus: node %v attached twice", id))
	}
	p := &Port{bus: b, id: id, alive: true}
	b.ports[id] = p
	b.order = append(b.order, id)
	b.alive = b.alive.Add(id)
	return p
}

// Port returns the attached port for a node id, or nil.
func (b *Bus) Port(id can.NodeID) *Port {
	if !id.Valid() {
		return nil
	}
	return b.ports[id]
}

// AliveSet returns the set of nodes whose controllers are operational
// (attached, not crashed, not bus-off).
func (b *Bus) AliveSet() can.NodeSet { return b.alive }

// drop removes a node from the cached operational set (crash or bus-off).
func (b *Bus) drop(id can.NodeID) { b.alive = b.alive.Remove(id) }

// kick schedules an arbitration pass if the bus is free and work is queued.
// Arbitration runs as its own event at the current instant so that every
// same-instant transmit request joins it — that is what clusters identical
// remote frames requested simultaneously into one physical frame. While the
// trailing overhead of the previous frame still occupies the wire, kick
// steps once to the end of that gap (scheduleKick) instead of relying on a
// per-frame unlock event.
func (b *Bus) kick() {
	if b.busy || b.arbScheduled {
		return
	}
	if !b.haveWork() {
		return
	}
	if now := b.sched.Now(); now < b.busyUntil {
		b.scheduleKick(b.busyUntil)
		return
	}
	b.arbScheduled = true
	b.sched.At(b.sched.Now(), b.arbitrateFn)
}

// haveWork reports whether any operational port has a queued request.
func (b *Bus) haveWork() bool {
	for _, id := range b.order {
		if p := b.ports[id]; p.operational() && len(p.queue) > 0 {
			return true
		}
	}
	return false
}

// scheduleKick arranges for kick to run at instant t — the next instant the
// wire could be re-arbitrated — unless a kick at or before t is already
// pending. Chasing the minimum keeps at most one alarm live regardless of
// how many gaps (frame tails, suspensions) overlap.
func (b *Bus) scheduleKick(t sim.Time) {
	if b.kickEv.Pending() && b.kickEv.When() <= t {
		return
	}
	b.kickEv.Cancel()
	b.kickEv = b.sched.At(t, b.kickFn)
}

// arbitrate resolves the next transmission: the lowest pending identifier
// wins; identical remote frames from several nodes cluster into one
// physical frame.
func (b *Bus) arbitrate() {
	b.arbScheduled = false
	if b.busy {
		return
	}
	now := b.sched.Now()
	var winner *can.Frame
	suspendedWork := sim.Never
	for _, id := range b.order {
		p := b.ports[id]
		if !p.operational() || len(p.queue) == 0 {
			continue
		}
		if p.suspendUntil > now {
			// Error-passive suspend transmission: this node sits out this
			// arbitration; remember to retry when its penalty elapses.
			if p.suspendUntil < suspendedWork {
				suspendedWork = p.suspendUntil
			}
			continue
		}
		head := &p.queue[0].frame
		if winner == nil || head.ID < winner.ID {
			winner = head
		}
	}
	if winner == nil {
		if suspendedWork != sim.Never {
			// Step directly to the earliest suspend expiry; a request from a
			// non-suspended node arriving earlier re-arbitrates immediately.
			b.scheduleKick(suspendedWork)
		}
		return
	}
	frame := *winner
	var senders can.NodeSet
	attempt := 0
	for _, id := range b.order {
		p := b.ports[id]
		if !p.operational() || len(p.queue) == 0 || p.suspendUntil > now {
			continue
		}
		head := &p.queue[0]
		switch {
		case head.frame == frame || head.frame.SameWire(frame):
			senders = senders.Add(id)
			head.attempts++
			if head.attempts > attempt {
				attempt = head.attempts
			}
		case head.frame.ID == frame.ID:
			// Two distinct frames with one identifier would corrupt each
			// other on a real bus; the CANELy mid scheme statically
			// prevents it, so reaching here is a protocol bug.
			panic(fmt.Sprintf("fastbus: identifier collision %#x between distinct frames", frame.ID))
		}
	}
	if senders.Empty() {
		panic("fastbus: arbitration winner has no sender")
	}

	b.busy = true
	b.current = transmission{frame: frame, senders: senders, attempt: attempt}
	b.onWire = true
	b.sched.After(b.rate.DurationOf(can.FrameBits(frame)), b.completeFn)
}

// complete finishes the transmission on the wire, applying any injected
// fault and dispatching indications/confirmations.
func (b *Bus) complete() {
	tx := &b.current
	receivers := b.alive.Diff(tx.senders)
	decision := b.inj.Decide(fault.TxContext{
		Now:       b.sched.Now(),
		Frame:     tx.frame,
		Senders:   tx.senders,
		Receivers: receivers,
		Attempt:   tx.attempt,
	})

	frameBits := can.FrameBits(tx.frame)
	switch {
	case decision.Corrupt:
		b.stats.recordError(tx.frame, frameBits, b.rate)
		b.bumpErrorCounters(tx.senders, receivers)
		// The frame plus the error frame plus intermission occupy the wire;
		// the request stays queued at every sender for retransmission.
		b.finish(can.ErrorFrameMaxBits + can.InterframeBits)

	case !decision.InconsistentVictims.Empty():
		victims := decision.InconsistentVictims.Intersect(receivers)
		accepted := receivers.Diff(victims)
		b.stats.recordInconsistent(tx.frame, frameBits)
		// Nodes past the last-but-one bit accept the frame; the victims
		// signal an error the senders observe, so the senders treat the
		// attempt as failed and keep the request queued.
		b.deliver(tx.frame, accepted, can.EmptySet)
		b.bumpErrorCounters(tx.senders, victims)
		if decision.CrashSenders {
			for s := tx.senders; !s.Empty(); {
				id := s.Lowest()
				s = s.Remove(id)
				b.ports[id].Crash()
			}
		}
		b.finish(can.ErrorFrameMaxBits + can.InterframeBits)

	default:
		b.stats.recordSuccess(tx.frame, frameBits)
		b.deliver(tx.frame, receivers, tx.senders)
		for s := tx.senders; !s.Empty(); {
			id := s.Lowest()
			s = s.Remove(id)
			p := b.ports[id]
			if !p.operational() {
				// The sender crashed (or went bus-off) while its frame was
				// on the wire: the frame still completed, but there is no
				// queue entry left and nobody to confirm to.
				continue
			}
			p.dequeue(tx.frame)
			p.onTxSuccess()
			if p.handler != nil {
				p.handler.OnConfirm(tx.frame)
			}
		}
		if decision.CrashSenders {
			for s := tx.senders; !s.Empty(); {
				id := s.Lowest()
				s = s.Remove(id)
				b.ports[id].Crash()
			}
		}
		overhead := can.InterframeBits
		if n := decision.OverloadFrames; n > 0 {
			// ISO 11898 bounds reactive overload frames to two in a row.
			if n > 2 {
				n = 2
			}
			overhead += n * can.OverloadFrameMaxBits
		}
		b.finish(overhead)
	}
}

// deliver dispatches a frame indication to receivers and self-reception to
// senders, in deterministic node order.
func (b *Bus) deliver(f can.Frame, receivers, senders can.NodeSet) {
	if b.observer != nil {
		b.observer(f)
	}
	for _, id := range b.order {
		p := b.ports[id]
		if !p.operational() || p.handler == nil {
			continue
		}
		switch {
		case receivers.Contains(id):
			p.onRxSuccess()
			p.handler.OnFrame(f, false)
		case senders.Contains(id):
			p.handler.OnFrame(f, true)
		}
	}
}

// bumpErrorCounters applies the fault-confinement counter rules after a
// failed transmission.
func (b *Bus) bumpErrorCounters(senders, victims can.NodeSet) {
	for s := senders; !s.Empty(); {
		id := s.Lowest()
		s = s.Remove(id)
		b.ports[id].onTxError()
	}
	for s := victims; !s.Empty(); {
		id := s.Lowest()
		s = s.Remove(id)
		b.ports[id].onRxError()
	}
}

// finish accounts the trailing overhead analytically: instead of occupying
// an unconditional per-frame unlock event, the gap's end is recorded in
// busyUntil and an alarm is scheduled only when transmit work is already
// waiting for it (a stepped advance); otherwise the gap costs nothing (a
// batched advance). It also applies the suspend-transmission penalty to
// error-passive senders.
func (b *Bus) finish(overheadBits int) {
	senders := can.EmptySet
	if b.onWire {
		senders = b.current.senders
	}
	busFree := b.sched.Now().Add(b.rate.DurationOf(overheadBits))
	for s := senders; !s.Empty(); {
		id := s.Lowest()
		s = s.Remove(id)
		if p := b.ports[id]; p.state == bus.ErrorPassive {
			p.suspendUntil = busFree.Add(b.rate.DurationOf(bus.SuspendTransmissionBits))
		}
	}
	b.stats.recordOverhead(overheadBits, b.rate)
	b.onWire = false
	b.busy = false
	b.busyUntil = busFree
	b.kick()
	if b.kickEv.Pending() {
		b.stats.advStepped++
	} else {
		b.stats.advBatched++
	}
}

// transmitting reports whether the given identifier is on the wire now.
func (b *Bus) transmitting(id uint32) bool {
	return b.busy && b.onWire && b.current.frame.ID == id
}
