package fastbus

import (
	"time"

	"canely/internal/bus"
	"canely/internal/can"
)

// counters is the flat-array replacement for the bit-accurate substrate's
// map-backed Stats: every per-frame update is an integer bump, and the
// bus.Stats shape is synthesized only when a snapshot is requested.
type counters struct {
	// Batched-vs-stepped idle-gap advances (see Bus.Advances).
	advBatched uint64
	advStepped uint64

	framesOK           int
	framesError        int
	framesInconsistent int

	bitsBusy  int64
	errorBits int64
	inaccess  time.Duration

	// bitsByType is indexed by can.MsgType (1..11; slot 0 collects frames
	// with undecodable identifiers, matching the bit-accurate substrate).
	bitsByType [16]int64
	lastType   can.MsgType
}

func typeOf(f can.Frame) can.MsgType {
	mid, err := can.DecodeMID(f.ID)
	if err != nil {
		return 0
	}
	return mid.Type
}

func (c *counters) recordSuccess(f can.Frame, bits int) {
	c.framesOK++
	c.bitsBusy += int64(bits)
	c.lastType = typeOf(f)
	c.bitsByType[c.lastType] += int64(bits)
}

func (c *counters) recordError(f can.Frame, bits int, r can.BitRate) {
	c.framesError++
	c.bitsBusy += int64(bits)
	c.errorBits += int64(bits)
	c.lastType = typeOf(f)
	c.bitsByType[c.lastType] += int64(bits)
	c.inaccess += r.DurationOf(bits)
}

func (c *counters) recordInconsistent(f can.Frame, bits int) {
	c.framesInconsistent++
	c.bitsBusy += int64(bits)
	c.lastType = typeOf(f)
	c.bitsByType[c.lastType] += int64(bits)
}

// recordOverhead accounts trailing wire occupancy against the type of the
// frame that caused it; bits beyond the interframe space are error
// signalling and count toward inaccessibility.
func (c *counters) recordOverhead(bits int, r can.BitRate) {
	c.bitsBusy += int64(bits)
	c.bitsByType[c.lastType] += int64(bits)
	if bits > can.InterframeBits {
		err := bits - can.InterframeBits
		c.errorBits += int64(err)
		c.inaccess += r.DurationOf(err)
	}
}

// snapshot builds a bus.Stats view of the counters, with the same field
// semantics as the bit-accurate substrate's Stats.
func (c *counters) snapshot() bus.Stats {
	s := bus.Stats{
		FramesOK:           c.framesOK,
		FramesError:        c.framesError,
		FramesInconsistent: c.framesInconsistent,
		BitsBusy:           c.bitsBusy,
		ErrorBits:          c.errorBits,
		Inaccessibility:    c.inaccess,
		BitsByType:         make(map[can.MsgType]int64),
	}
	for t, v := range c.bitsByType {
		if v != 0 {
			s.BitsByType[can.MsgType(t)] = v
		}
	}
	return s
}
