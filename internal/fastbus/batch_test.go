package fastbus

import (
	"testing"

	"canely/internal/can"
	"canely/internal/sim"
)

// sink is a minimal bus.Handler for driving the bus directly in tests.
type sink struct {
	frames []can.Frame
}

func (s *sink) OnFrame(f can.Frame, own bool) {
	if !own {
		s.frames = append(s.frames, f)
	}
}
func (s *sink) OnConfirm(can.Frame) {}
func (s *sink) OnBusOff()           {}

func frame(id uint16) can.Frame {
	return can.Frame{ID: uint32(id), DLC: 1, Data: [can.MaxData]byte{0x01}}
}

// TestAdvancesBatchedWhenIdle: a lone transmission with no follow-up work
// must skip its trailing-overhead gap analytically — no alarm, one batched
// advance, zero stepped advances.
func TestAdvancesBatchedWhenIdle(t *testing.T) {
	sched := sim.NewScheduler()
	b := New(sched, Config{Rate: can.Rate1Mbps})
	tx, rx := b.Attach(1), b.Attach(2)
	tx.SetHandler(&sink{})
	rxh := &sink{}
	rx.SetHandler(rxh)

	if err := tx.Request(frame(0x100)); err != nil {
		t.Fatalf("request: %v", err)
	}
	sched.Run()

	if len(rxh.frames) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(rxh.frames))
	}
	batched, stepped := b.Advances()
	if batched != 1 || stepped != 0 {
		t.Fatalf("advances = (batched=%d, stepped=%d), want (1, 0)", batched, stepped)
	}
}

// TestAdvancesSteppedWhenBackToBack: with a second frame already queued when
// the first completes, the bus must schedule exactly one alarm at the end of
// the trailing overhead (a stepped advance) and still deliver both frames.
func TestAdvancesSteppedWhenBackToBack(t *testing.T) {
	sched := sim.NewScheduler()
	b := New(sched, Config{Rate: can.Rate1Mbps})
	tx, rx := b.Attach(1), b.Attach(2)
	tx.SetHandler(&sink{})
	rxh := &sink{}
	rx.SetHandler(rxh)

	if err := tx.Request(frame(0x100)); err != nil {
		t.Fatalf("request 1: %v", err)
	}
	if err := tx.Request(frame(0x101)); err != nil {
		t.Fatalf("request 2: %v", err)
	}
	sched.Run()

	if len(rxh.frames) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(rxh.frames))
	}
	batched, stepped := b.Advances()
	if stepped != 1 {
		t.Fatalf("stepped advances = %d, want 1 (second frame waits out the first's tail)", stepped)
	}
	if batched != 1 {
		t.Fatalf("batched advances = %d, want 1 (final tail has no waiter)", batched)
	}
}

// TestBackToBackSpacing: the second of two back-to-back frames must start
// only after the first frame's full wire occupancy (frame + trailing
// overhead) — batching the idle-gap bookkeeping must not let it start early.
func TestBackToBackSpacing(t *testing.T) {
	run := func(requests int) sim.Time {
		sched := sim.NewScheduler()
		b := New(sched, Config{Rate: can.Rate1Mbps})
		tx, rx := b.Attach(1), b.Attach(2)
		tx.SetHandler(&sink{})
		rxh := &sink{}
		rx.SetHandler(rxh)
		for i := 0; i < requests; i++ {
			if err := tx.Request(frame(uint16(0x100 + i))); err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
		}
		sched.Run()
		if len(rxh.frames) != requests {
			t.Fatalf("delivered %d frames, want %d", len(rxh.frames), requests)
		}
		return sched.Now()
	}

	one, two, three := run(1), run(2), run(3)
	// run(1) ends at the complete event (the tail is analytic, no alarm), so
	// each extra frame must add exactly tail + frame-time: strictly more
	// than a lone frame, and the same increment at every queue depth.
	if two-one <= one {
		t.Fatalf("second frame added %v, want more than a frame-time %v (tail was skipped)",
			sim.Duration(two-one), sim.Duration(one))
	}
	if two-one != three-two {
		t.Fatalf("frame spacing drifts: +%v then +%v", sim.Duration(two-one), sim.Duration(three-two))
	}
}

// TestObserverSeesDeliveredFrames: the bus-level tap must see each
// physically delivered frame exactly once, regardless of receiver count.
func TestObserverSeesDeliveredFrames(t *testing.T) {
	sched := sim.NewScheduler()
	b := New(sched, Config{Rate: can.Rate1Mbps})
	tx := b.Attach(1)
	tx.SetHandler(&sink{})
	for id := can.NodeID(2); id <= 4; id++ {
		p := b.Attach(id)
		p.SetHandler(&sink{})
	}

	var tapped []can.Frame
	b.SetObserver(func(f can.Frame) { tapped = append(tapped, f) })

	if err := tx.Request(frame(0x100)); err != nil {
		t.Fatalf("request: %v", err)
	}
	if err := tx.Request(frame(0x101)); err != nil {
		t.Fatalf("request: %v", err)
	}
	sched.Run()

	if len(tapped) != 2 {
		t.Fatalf("observer saw %d frames, want 2 (once per physical frame)", len(tapped))
	}
	if tapped[0].ID != 0x100 || tapped[1].ID != 0x101 {
		t.Fatalf("observer frames out of order: %v, %v", tapped[0].ID, tapped[1].ID)
	}

	b.SetObserver(nil)
	if err := tx.Request(frame(0x102)); err != nil {
		t.Fatalf("request: %v", err)
	}
	sched.Run()
	if len(tapped) != 2 {
		t.Fatalf("detached observer still saw frames: %d", len(tapped))
	}
}
