package fastbus

import (
	"fmt"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/sim"
)

// txReq is a queued transmit request. Stored by value: the queue head is
// read every arbitration pass, and pointer-free slices keep the whole queue
// on one cache line for the typical one-or-two-entry case.
type txReq struct {
	frame    can.Frame
	attempts int
}

// Port is a CAN controller attached to the fast bus: the same transmit
// queue, receive path, abort and TEC/REC fault-confinement semantics as
// bus.Port, without the trace emissions.
type Port struct {
	bus     *Bus
	id      can.NodeID
	handler bus.Handler
	queue   []txReq

	alive bool
	tec   int
	rec   int
	state bus.ControllerState

	// suspendUntil implements the error-passive suspend-transmission rule
	// (ISO 11898 §8.9).
	suspendUntil sim.Time

	txOK int
	rxOK int
}

// ID returns the node identity of this controller.
func (p *Port) ID() can.NodeID { return p.id }

// SetHandler installs the indication receiver.
func (p *Port) SetHandler(h bus.Handler) { p.handler = h }

// State returns the fault-confinement state.
func (p *Port) State() bus.ControllerState { return p.state }

// Counters returns (TEC, REC).
func (p *Port) Counters() (tec, rec int) { return p.tec, p.rec }

// Alive reports whether the node has not crashed.
func (p *Port) Alive() bool { return p.alive }

// Operational reports whether the controller exchanges traffic: alive and
// not bus-off.
func (p *Port) Operational() bool { return p.operational() }

func (p *Port) operational() bool { return p.alive && p.state != bus.BusOff }

// TxSuccesses returns the number of successfully transmitted frames.
func (p *Port) TxSuccesses() int { return p.txOK }

// RxSuccesses returns the number of successfully received frames.
func (p *Port) RxSuccesses() int { return p.rxOK }

// Request queues a frame for transmission with the mailbox semantics of
// bus.Port: a pending request with the same identifier is replaced; the
// queue is kept in identifier order, equal identifiers in request order.
func (p *Port) Request(f can.Frame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if !p.operational() {
		return bus.ErrRequestRejected
	}
	for i := range p.queue {
		if p.queue[i].frame.ID == f.ID && p.queue[i].frame.RTR == f.RTR {
			p.queue[i].frame = f
			p.queue[i].attempts = 0
			p.bus.kick()
			return nil
		}
	}
	at := len(p.queue)
	for i := range p.queue {
		if p.queue[i].frame.ID > f.ID {
			at = i
			break
		}
	}
	p.queue = append(p.queue, txReq{})
	copy(p.queue[at+1:], p.queue[at:])
	p.queue[at] = txReq{frame: f}
	p.bus.kick()
	return nil
}

// PendingEquivalent reports whether a transmit request indistinguishable on
// the wire from f is queued.
func (p *Port) PendingEquivalent(f can.Frame) bool {
	for i := range p.queue {
		if p.queue[i].frame.SameWire(f) {
			return true
		}
	}
	return false
}

// Pending reports whether a request with the identifier is queued.
func (p *Port) Pending(id uint32) bool {
	for i := range p.queue {
		if p.queue[i].frame.ID == id {
			return true
		}
	}
	return false
}

// QueueLen returns the number of queued transmit requests.
func (p *Port) QueueLen() int { return len(p.queue) }

// Abort cancels a pending transmit request; a frame already on the wire is
// not recalled.
func (p *Port) Abort(id uint32) bool {
	if p.bus.transmitting(id) && p.bus.current.senders.Contains(p.id) {
		return false
	}
	for i := range p.queue {
		if p.queue[i].frame.ID == id {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			return true
		}
	}
	return false
}

// Crash fail-silences the node: the controller stops transmitting and
// receiving immediately and its queue is discarded.
func (p *Port) Crash() {
	if !p.alive {
		return
	}
	p.alive = false
	p.queue = nil
	p.bus.drop(p.id)
}

// dequeue removes the queued request matching a completed frame.
func (p *Port) dequeue(f can.Frame) {
	for i := range p.queue {
		if p.queue[i].frame.ID == f.ID && p.queue[i].frame.RTR == f.RTR {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("fastbus: %v confirmed a frame it never queued: %v", p.id, f))
}

// Fault-confinement transitions — the exact arithmetic of bus.Port, via the
// constants that package exports.

func (p *Port) onTxSuccess() {
	p.txOK++
	if p.tec > 0 {
		p.tec--
	}
	p.refreshState()
}

func (p *Port) onRxSuccess() {
	p.rxOK++
	if p.rec > 0 {
		if p.rec > bus.PassiveLimit {
			p.rec = bus.MaxRECAfterFix
		} else {
			p.rec--
		}
	}
	p.refreshState()
}

func (p *Port) onTxError() {
	p.tec += bus.TECOnError
	p.refreshState()
}

func (p *Port) onRxError() {
	p.rec += bus.RECOnError
	p.refreshState()
}

func (p *Port) refreshState() {
	switch {
	case p.tec >= bus.BusOffLimit:
		if p.state != bus.BusOff {
			p.state = bus.BusOff
			p.queue = nil
			p.bus.drop(p.id)
			if p.handler != nil {
				p.handler.OnBusOff()
			}
		}
	case p.tec >= bus.PassiveLimit || p.rec >= bus.PassiveLimit:
		p.state = bus.ErrorPassive
	default:
		p.state = bus.ErrorActive
	}
}
