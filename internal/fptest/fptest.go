// Package fptest checks the Fingerprint contract every sans-I/O protocol
// core honours: the fingerprint is a pure function of the core's observable
// state (equal states hash equal — the exploration engine's state-hash
// pruning is unsound otherwise) and covers all of it (every state-mutating
// Step perturbs the hash — a silently un-fingerprinted field would let the
// engine prune two genuinely different states against each other and skip
// the schedules separating them).
package fptest

import (
	"hash/maphash"
	"testing"

	"canely/internal/core/proto"
)

// Core is the slice of a protocol core the fingerprint properties need:
// every core under test exposes the sans-I/O StepInto plus Fingerprint.
type Core interface {
	StepInto(proto.Event, *proto.CommandBuf)
	Fingerprint(*maphash.Hash)
}

// Step is one scripted event together with the expected effect on the
// fingerprint: Mutates marks steps that change observable state and must
// perturb the hash; unmarked steps must leave it untouched (absorbed
// events, idempotent re-deliveries).
type Step struct {
	Name    string
	Ev      proto.Event
	Mutates bool
}

// CheckClone checks the Clone contract the exploration engine's
// checkpoint-and-branch machinery rests on, at every split point of the
// script: a clone taken after k steps must hash identically to its
// original (Clone ⇒ equal observable state — fingerprint equality is the
// proof obligation that makes checkpoint resumption sound), stepping the
// clone through the script's remainder must track the reference
// trajectory step for step (the clone is a full peer, not a shallow
// view), and must leave the original's fingerprint untouched (no aliased
// mutable state).
func CheckClone(t *testing.T, fresh func() Core, clone func(Core) Core, script []Step) {
	t.Helper()
	seed := maphash.MakeSeed()
	sum := func(c Core) uint64 {
		var h maphash.Hash
		h.SetSeed(seed)
		c.Fingerprint(&h)
		return h.Sum64()
	}

	// Reference trajectory: the uncloned run's fingerprint at every prefix.
	ref := fresh()
	fps := []uint64{sum(ref)}
	var buf proto.CommandBuf
	for _, st := range script {
		buf.Reset()
		ref.StepInto(st.Ev, &buf)
		fps = append(fps, sum(ref))
	}

	for k := 0; k <= len(script); k++ {
		a := fresh()
		for _, st := range script[:k] {
			buf.Reset()
			a.StepInto(st.Ev, &buf)
		}
		c := clone(a)
		if got := sum(c); got != fps[k] {
			t.Errorf("clone at step %d hashes %#x, the original state hashes %#x", k, got, fps[k])
			continue
		}
		for i, st := range script[k:] {
			buf.Reset()
			c.StepInto(st.Ev, &buf)
			if got := sum(c); got != fps[k+i+1] {
				t.Errorf("clone taken at step %d diverged from the reference after step %d (%s): %#x vs %#x",
					k, k+i, st.Name, got, fps[k+i+1])
				break
			}
			if got := sum(a); got != fps[k] {
				t.Errorf("stepping a clone taken at step %d mutated the original at step %d (%s): aliased state",
					k, k+i, st.Name)
				break
			}
		}
	}
}

// Check drives a fresh core through the script asserting the perturbation
// property at every step, then replays the identical script on a second
// fresh core and asserts fingerprint equality at every prefix — two cores
// that processed the same events are in equal states and must hash equal.
func Check(t *testing.T, fresh func() Core, script []Step) {
	t.Helper()
	seed := maphash.MakeSeed()
	sum := func(c Core) uint64 {
		var h maphash.Hash
		h.SetSeed(seed)
		c.Fingerprint(&h)
		return h.Sum64()
	}

	a := fresh()
	fps := []uint64{sum(a)}
	var buf proto.CommandBuf
	for i, st := range script {
		buf.Reset()
		a.StepInto(st.Ev, &buf)
		fp := sum(a)
		prev := fps[len(fps)-1]
		if st.Mutates && fp == prev {
			t.Errorf("step %d (%s): state-mutating step left the fingerprint unchanged", i, st.Name)
		}
		if !st.Mutates && fp != prev {
			t.Errorf("step %d (%s): step marked non-mutating perturbed the fingerprint", i, st.Name)
		}
		fps = append(fps, fp)
	}

	b := fresh()
	if got := sum(b); got != fps[0] {
		t.Errorf("fresh cores disagree: %#x vs %#x", got, fps[0])
	}
	for i, st := range script {
		buf.Reset()
		b.StepInto(st.Ev, &buf)
		if got := sum(b); got != fps[i+1] {
			t.Errorf("step %d (%s): replay reached fingerprint %#x, original run had %#x",
				i, st.Name, got, fps[i+1])
		}
	}
}
