// Package fptest checks the Fingerprint contract every sans-I/O protocol
// core honours: the fingerprint is a pure function of the core's observable
// state (equal states hash equal — the exploration engine's state-hash
// pruning is unsound otherwise) and covers all of it (every state-mutating
// Step perturbs the hash — a silently un-fingerprinted field would let the
// engine prune two genuinely different states against each other and skip
// the schedules separating them).
package fptest

import (
	"hash/maphash"
	"testing"

	"canely/internal/core/proto"
)

// Core is the slice of a protocol core the fingerprint properties need:
// every core under test exposes the sans-I/O StepInto plus Fingerprint.
type Core interface {
	StepInto(proto.Event, *proto.CommandBuf)
	Fingerprint(*maphash.Hash)
}

// Step is one scripted event together with the expected effect on the
// fingerprint: Mutates marks steps that change observable state and must
// perturb the hash; unmarked steps must leave it untouched (absorbed
// events, idempotent re-deliveries).
type Step struct {
	Name    string
	Ev      proto.Event
	Mutates bool
}

// Check drives a fresh core through the script asserting the perturbation
// property at every step, then replays the identical script on a second
// fresh core and asserts fingerprint equality at every prefix — two cores
// that processed the same events are in equal states and must hash equal.
func Check(t *testing.T, fresh func() Core, script []Step) {
	t.Helper()
	seed := maphash.MakeSeed()
	sum := func(c Core) uint64 {
		var h maphash.Hash
		h.SetSeed(seed)
		c.Fingerprint(&h)
		return h.Sum64()
	}

	a := fresh()
	fps := []uint64{sum(a)}
	var buf proto.CommandBuf
	for i, st := range script {
		buf.Reset()
		a.StepInto(st.Ev, &buf)
		fp := sum(a)
		prev := fps[len(fps)-1]
		if st.Mutates && fp == prev {
			t.Errorf("step %d (%s): state-mutating step left the fingerprint unchanged", i, st.Name)
		}
		if !st.Mutates && fp != prev {
			t.Errorf("step %d (%s): step marked non-mutating perturbed the fingerprint", i, st.Name)
		}
		fps = append(fps, fp)
	}

	b := fresh()
	if got := sum(b); got != fps[0] {
		t.Errorf("fresh cores disagree: %#x vs %#x", got, fps[0])
	}
	for i, st := range script {
		buf.Reset()
		b.StepInto(st.Ev, &buf)
		if got := sum(b); got != fps[i+1] {
			t.Errorf("step %d (%s): replay reached fingerprint %#x, original run had %#x",
				i, st.Name, got, fps[i+1])
		}
	}
}
