package rt

import (
	"fmt"
	"time"

	"canely/internal/can"
	"canely/internal/core/membership"
	"canely/internal/replay"
	"canely/internal/sim"
	"canely/internal/stack"
)

// NodeConfig parameterizes one live node.
type NodeConfig struct {
	// ID is the node identity on the bus.
	ID can.NodeID
	// Broker is the primary broker address ("unix:/path" or
	// "[tcp:]host:port").
	Broker string
	// BrokerB, when non-empty, dials a second broker as the replicated
	// medium of the CANELy media-redundancy scheme: the stack drives both
	// through the selection unit, exactly as under simulated dual media.
	BrokerB string
	// Stack parameterizes the protocol stack (FD, membership, J,
	// DualGrace). The zero value is invalid; fill FD and Membership.
	Stack stack.Config
	// Rate, when non-zero, asserts the brokers' signalling rate.
	Rate can.BitRate
	// Record captures the node's core event/command streams for
	// deterministic re-verification (EventLog).
	Record bool
	// Hooks optionally observes the stack's layer boundaries. Callbacks
	// run on the node's loop goroutine.
	Hooks *stack.Hooks
	// Dial tunes connection establishment and reconnect backoff. Addr and
	// Rate fields are overridden per broker.
	Dial DialConfig
}

// Node is one live CANELy site: the full Figure 5 stack assembled by
// internal/stack over one or two broker connections, driven by wall-clock
// timers on a dedicated Loop.
//
// Exported methods are goroutine-safe: each marshals onto the loop and
// waits. They must not be called from protocol callbacks (OnChange, Hooks)
// — those already run on the loop; use the Stack directly there.
type Node struct {
	loop  *Loop
	media []*Medium
	stack *stack.Stack
	log   *replay.Log

	tickers []*sim.Ticker
	seq     uint8
}

// StartNode dials the broker(s), assembles the protocol stack and starts
// the node's event loop. The returned node is quiescent until Bootstrap or
// Join.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.Broker == "" {
		return nil, fmt.Errorf("rt: no broker address")
	}
	loop := StartLoop()
	n := &Node{loop: loop}
	fail := func(err error) (*Node, error) {
		for _, m := range n.media {
			m.Close()
		}
		loop.Close()
		return nil, err
	}

	addrs := []string{cfg.Broker}
	if cfg.BrokerB != "" {
		addrs = append(addrs, cfg.BrokerB)
	}
	var media []stack.Medium
	for _, addr := range addrs {
		dc := cfg.Dial
		dc.Addr = addr
		dc.Rate = cfg.Rate
		m, err := DialMedium(loop, cfg.ID, dc)
		if err != nil {
			return fail(err)
		}
		n.media = append(n.media, m)
		media = append(media, m)
	}

	scfg := cfg.Stack
	if cfg.Record {
		n.log = replay.New()
		scfg.Recorder = n.log
	}
	var buildErr error
	// The stack is assembled on the loop so frame indications racing in
	// from the broker serialize after the handlers are installed.
	if !loop.Call(func() {
		n.stack, buildErr = stack.New(loop.Scheduler(), media, cfg.ID, scfg, nil, cfg.Hooks)
	}) {
		buildErr = fmt.Errorf("rt: loop closed during stack assembly")
	}
	if buildErr != nil {
		return fail(buildErr)
	}
	return n, nil
}

// Loop returns the node's event loop (for scheduling application work at
// wall-clock instants via Post/Call).
func (n *Node) Loop() *Loop { return n.loop }

// Stack returns the underlying protocol stack. It must only be touched
// from the loop goroutine.
func (n *Node) Stack() *stack.Stack { return n.stack }

// ID returns the node identity.
func (n *Node) ID() can.NodeID { return n.stack.ID() }

// Bootstrap installs a pre-agreed initial view and starts the protocol
// machinery.
func (n *Node) Bootstrap(view can.NodeSet) {
	n.loop.Call(func() { n.stack.Bootstrap(view) })
}

// Join requests integration into the active site set.
func (n *Node) Join() { n.loop.Call(n.stack.Join) }

// Leave requests withdrawal from the site membership view.
func (n *Node) Leave() { n.loop.Call(n.stack.Leave) }

// Crash fail-silences the node on every medium.
func (n *Node) Crash() {
	n.loop.Call(func() {
		for _, t := range n.tickers {
			t.Stop()
		}
		n.stack.Crash()
	})
}

// View returns the current site membership view.
func (n *Node) View() can.NodeSet {
	var v can.NodeSet
	n.loop.Call(func() { v = n.stack.Msh.View() })
	return v
}

// Member reports whether the node is currently a full member.
func (n *Node) Member() bool {
	var ok bool
	n.loop.Call(func() { ok = n.stack.Msh.Member() })
	return ok
}

// Alive reports whether the node is operational on at least one medium.
func (n *Node) Alive() bool {
	var ok bool
	n.loop.Call(func() { ok = n.stack.Alive() })
	return ok
}

// Connected reports whether the primary broker link is up.
func (n *Node) Connected() bool {
	var ok bool
	n.loop.Call(func() { ok = n.media[0].port.Connected() })
	return ok
}

// LifeSigns returns the number of explicit life-signs requested so far.
func (n *Node) LifeSigns() int {
	var v int
	n.loop.Call(func() { v = n.stack.Det.LifeSigns() })
	return v
}

// OnChange registers a membership change consumer. The callback runs on
// the loop goroutine.
func (n *Node) OnChange(fn func(membership.Change)) {
	n.loop.Call(func() { n.stack.OnChange(fn) })
}

// Send broadcasts one application data message on a stream (implicit
// heartbeat traffic).
func (n *Node) Send(stream uint8, payload []byte) error {
	var err error
	n.loop.Call(func() {
		n.seq++
		err = n.stack.Layer.DataReq(can.DataSign(stream, n.ID(), n.seq), payload)
	})
	return err
}

// StartCyclicTraffic emits one application message on the stream every
// period, phase-shifted by the node id to avoid lock-step requests from
// co-started processes.
func (n *Node) StartCyclicTraffic(stream uint8, period time.Duration, payload []byte) {
	n.loop.Call(func() {
		t := sim.NewTicker(n.loop.Scheduler(), func() {
			if n.stack.Alive() {
				n.seq++
				_ = n.stack.Layer.DataReq(can.DataSign(stream, n.stack.ID(), n.seq), payload)
			}
		})
		first := period/time.Duration(can.MaxNodes)*time.Duration(n.stack.ID()) + time.Millisecond
		t.StartAt(first, period)
		n.tickers = append(n.tickers, t)
	})
}

// EventLog returns the recorded core event/command log (nil unless
// NodeConfig.Record). Read it only after Close: the loop appends to it
// while running.
func (n *Node) EventLog() *replay.Log { return n.log }

// Close stops the node: media torn down, loop stopped. The protocol state
// remains readable through Stack afterwards (the loop no longer runs, so
// single-goroutine access is safe again for whoever holds the Node).
func (n *Node) Close() {
	for _, m := range n.media {
		m.Close()
	}
	n.loop.Close()
}
