package rt

import (
	"testing"
	"time"

	"canely/internal/can"
)

// TestBackoffSchedule pins the reconnect backoff shared by the DialMedium
// initial loop and the manage redial loop: the base doubles from
// BackoffMin up to BackoffMax, every delay carries at most 50% jitter
// above its base, and the sequence is a pure function of (seed, node) —
// equal pairs replay byte-identical schedules while distinct nodes
// de-synchronize even under a shared seed.
func TestBackoffSchedule(t *testing.T) {
	cfg := DialConfig{}
	cfg.fillDefaults()

	draw := func(seed int64, id can.NodeID, n int) []time.Duration {
		c := cfg
		c.BackoffSeed = seed
		bo := newBackoff(&c, id)
		out := make([]time.Duration, n)
		for i := range out {
			out[i] = bo.next()
		}
		return out
	}

	a := draw(7, 0, 12)
	base := cfg.BackoffMin
	for i, d := range a {
		if d < base || d > base+base/2 {
			t.Errorf("delay %d = %v outside [%v, %v]", i, d, base, base+base/2)
		}
		if base *= 2; base > cfg.BackoffMax {
			base = cfg.BackoffMax
		}
	}

	// Determinism: the same (seed, node) pair replays the exact sequence.
	b := draw(7, 0, 12)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic: delay %d = %v then %v", i, a[i], b[i])
		}
	}

	// De-synchronization: a different node under the same seed, and the
	// same node under a different seed, must both diverge somewhere.
	for name, other := range map[string][]time.Duration{
		"node": draw(7, 1, 12),
		"seed": draw(8, 0, 12),
	} {
		same := true
		for i := range a {
			if a[i] != other[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("distinct %s produced an identical schedule: lockstep redials", name)
		}
	}
}
