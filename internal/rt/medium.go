package rt

import (
	"fmt"
	"net"
	"sync"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/sim"
	"canely/internal/stack"
	"canely/internal/wire"
)

// DialConfig parameterizes a live medium (one broker connection).
type DialConfig struct {
	// Addr is the broker address: "unix:/path" or "[tcp:]host:port".
	Addr string
	// Rate, when non-zero, asserts the broker's signalling rate: a
	// mismatching Welcome fails the dial. Zero adopts the broker's rate.
	Rate can.BitRate
	// DialTimeout bounds the initial connection (including handshake and
	// retries). Defaults to 10 s.
	DialTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential reconnect backoff after
	// a broker disconnect: the base delay starts at BackoffMin and doubles
	// up to BackoffMax, and each sleep adds up to 50% randomized jitter on
	// top of the base. Defaults 25 ms and 1 s.
	BackoffMin, BackoffMax time.Duration
	// BackoffSeed seeds the jitter. The node identity is folded in, so a
	// fleet sharing one seed (or the zero default) still spreads its
	// redials; equal (seed, id) pairs reproduce the exact sleep sequence.
	BackoffSeed int64
	// WriteTimeout bounds one message write to the broker. Defaults 2 s.
	WriteTimeout time.Duration
	// Role classifies the client at the broker (Hello): the zero value is
	// a plain node; gateways dial their raw digest links with RoleGateway.
	Role wire.Role
	// OnStatus, when non-nil, observes link transitions (true = connected)
	// on the loop goroutine. Test hook.
	OnStatus func(up bool)
	// Logf, when non-nil, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

func (c *DialConfig) fillDefaults() {
	if c.DialTimeout == 0 {
		c.DialTimeout = 10 * time.Second
	}
	if c.BackoffMin == 0 {
		c.BackoffMin = 25 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 2 * time.Second
	}
}

// Medium is the node-side binding of one broker connection to the
// stack.Medium contract. Unlike a simulated medium, which carries every
// node of the network, a live Medium serves exactly one node: the one
// whose identity was given to DialMedium. Attach must be called once,
// with that identity.
//
// The Medium owns a manager goroutine that dials, hands the connection to
// the loop, pumps broker messages onto the loop, and redials with bounded
// exponential backoff when the broker goes away. While disconnected the
// controller behaves like a confined (bus-off) controller — no traffic in
// either direction — except that the condition is recoverable: transmit
// requests accumulate in the port's mailbox queue and are replayed on
// reconnect, so protocol actions taken during an outage (life-signs,
// failure-sign requests) are transmitted as soon as the bus returns.
type Medium struct {
	loop *Loop
	cfg  DialConfig
	id   can.NodeID
	rate can.BitRate
	port *Port

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup
}

// backoff produces the reconnect delays: bounded exponential doubling
// with seeded randomized jitter. Without jitter every client of a
// restarted broker sleeps the identical schedule and the whole fleet
// redials in lockstep — a thundering herd aimed at the broker that just
// died under load. Each call returns base + U[0, base/2] and then
// doubles the base (capped at max), so delays stay within
// [BackoffMin, 1.5*BackoffMax] and distinct (seed, id) pairs
// de-synchronize while equal pairs replay byte-identical sequences.
type backoff struct {
	base, max time.Duration
	rng       *sim.RNG
}

func newBackoff(cfg *DialConfig, id can.NodeID) *backoff {
	return &backoff{
		base: cfg.BackoffMin,
		max:  cfg.BackoffMax,
		rng:  sim.NewRNG(cfg.BackoffSeed).Split(fmt.Sprintf("rt/backoff/n%02d", id)),
	}
}

// next returns the delay to sleep before the upcoming dial attempt and
// advances the schedule.
func (b *backoff) next() time.Duration {
	d := b.base + b.rng.Duration(b.base/2+1)
	if b.base *= 2; b.base > b.max {
		b.base = b.max
	}
	return d
}

// DialMedium connects node id to a broker and returns the medium for
// stack.New. The initial dial is synchronous (bounded by DialTimeout) so
// that configuration errors fail fast; reconnects afterwards are
// automatic. loop must already be running.
func DialMedium(loop *Loop, id can.NodeID, cfg DialConfig) (*Medium, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("rt: invalid node id %d", id)
	}
	cfg.fillDefaults()
	m := &Medium{loop: loop, cfg: cfg, id: id, closed: make(chan struct{})}
	m.port = &Port{m: m, id: id, alive: true}

	deadline := time.Now().Add(cfg.DialTimeout)
	bo := newBackoff(&cfg, id)
	var conn net.Conn
	var rate can.BitRate
	for {
		var err error
		conn, rate, err = m.dialOnce(deadline)
		if err == nil {
			break
		}
		delay := bo.next()
		if time.Now().Add(delay).After(deadline) {
			return nil, fmt.Errorf("rt: dialing broker %s: %w", cfg.Addr, err)
		}
		time.Sleep(delay)
	}
	m.rate = rate

	m.wg.Add(1)
	go m.manage(conn)
	return m, nil
}

// dialOnce performs one dial + handshake attempt.
func (m *Medium) dialOnce(deadline time.Time) (net.Conn, can.BitRate, error) {
	network, address := SplitAddr(m.cfg.Addr)
	d := net.Dialer{Deadline: deadline}
	conn, err := d.Dial(network, address)
	if err != nil {
		return nil, 0, err
	}
	_ = conn.SetDeadline(deadline)
	if err := wire.Write(conn, wire.Msg{Kind: wire.KindHello, Node: m.id, Role: m.cfg.Role}); err != nil {
		conn.Close()
		return nil, 0, fmt.Errorf("hello: %w", err)
	}
	welcome, err := wire.Read(conn)
	if err != nil || welcome.Kind != wire.KindWelcome {
		conn.Close()
		if err == nil {
			err = fmt.Errorf("unexpected %v before welcome", welcome.Kind)
		}
		return nil, 0, fmt.Errorf("welcome: %w", err)
	}
	if m.cfg.Rate != 0 && welcome.Rate != m.cfg.Rate {
		conn.Close()
		return nil, 0, fmt.Errorf("broker rate %d, want %d", welcome.Rate, m.cfg.Rate)
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, welcome.Rate, nil
}

// manage owns the connection lifecycle: bind, pump, unbind, redial. All
// protocol state is touched via the loop; Call (not Post) is used for the
// bind/unbind transitions so they serialize with the pumped messages.
func (m *Medium) manage(conn net.Conn) {
	defer m.wg.Done()
	for {
		if conn != nil {
			m.loop.Call(func() { m.port.bind(conn) })
			m.pump(conn)
			c := conn
			m.loop.Call(func() { m.port.unbind(c) })
			conn = nil
		}
		select {
		case <-m.closed:
			return
		default:
		}
		// Redial with jittered bounded exponential backoff, forever (a
		// broker restart may take arbitrarily long; the port queues
		// meanwhile). Each outage restarts the schedule at BackoffMin.
		bo := newBackoff(&m.cfg, m.id)
		for {
			var err error
			conn, _, err = m.dialOnce(time.Now().Add(m.cfg.BackoffMax + time.Second))
			if err == nil {
				break
			}
			m.logf("canelynode %v: redial %s: %v", m.id, m.cfg.Addr, err)
			select {
			case <-m.closed:
				return
			case <-time.After(bo.next()):
			}
		}
	}
}

// pump forwards broker messages onto the loop until the connection dies.
func (m *Medium) pump(conn net.Conn) {
	for {
		msg, err := wire.Read(conn)
		if err != nil {
			select {
			case <-m.closed:
			default:
				m.logf("canelynode %v: link down: %v", m.id, err)
			}
			conn.Close()
			return
		}
		m.loop.Post(func() { m.port.onMessage(conn, msg) })
	}
}

func (m *Medium) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// PushDigest reports a gateway's current site view to the broker (a
// KindDigest record): pure observability, never interpreted by the MAC
// emulation. Loop-owned, like every port operation — gateways call it from
// site-change callbacks, which already run on the loop.
func (m *Medium) PushDigest(seg can.NodeID, view can.NodeSet) {
	m.port.forward(wire.Msg{Kind: wire.KindDigest, Seg: seg, Node: m.id, View: view})
}

// Close tears the medium down: no further reconnects, connection closed.
// The loop keeps running; Close only severs this medium.
func (m *Medium) Close() {
	m.closeOnce.Do(func() {
		close(m.closed)
		m.loop.Call(func() {
			if m.port.conn != nil {
				m.port.conn.Close()
			}
		})
	})
	m.wg.Wait()
}

// --- stack.Medium contract -------------------------------------------------

// Attach returns the node's controller port. It must be called exactly
// once, with the identity the medium was dialled for.
func (m *Medium) Attach(id can.NodeID) stack.Port {
	if id != m.id {
		panic(fmt.Sprintf("rt: medium dialled for %v, attach of %v", m.id, id))
	}
	if m.port.attached {
		panic(fmt.Sprintf("rt: node %v attached twice", id))
	}
	m.port.attached = true
	return m.port
}

// Rate returns the broker's signalling rate.
func (m *Medium) Rate() can.BitRate { return m.rate }

// AliveSet reports only this node's liveness: a live medium has no global
// view of the bus (the broker does). Experiments needing the global set
// run on the simulated media.
func (m *Medium) AliveSet() can.NodeSet {
	if m.port.alive {
		return can.MakeSet(m.id)
	}
	return can.EmptySet
}

// Stats synthesizes a minimal statistics snapshot from the local
// controller counters; wire-level occupancy accounting lives at the
// broker.
func (m *Medium) Stats() bus.Stats {
	return bus.Stats{FramesOK: m.port.txOK + m.port.rxOK}
}

// Elapsed returns the wall-clock time base of the medium.
func (m *Medium) Elapsed() time.Duration { return m.loop.Elapsed() }

var _ stack.Medium = (*Medium)(nil)

// --- stack.Port contract ---------------------------------------------------

// Port is the live CAN controller front-end: it mirrors the mailbox
// semantics of the simulated controllers in a shadow queue (which answers
// PendingEquivalent locally and replays un-confirmed requests after a
// reconnect) and forwards everything else to the broker.
//
// All methods and fields are loop-owned: the stack binding calls them from
// protocol code running on the loop, and the medium's manager marshals
// connection events onto the loop.
type Port struct {
	m        *Medium
	id       can.NodeID
	attached bool
	handler  bus.Handler

	conn net.Conn // nil while disconnected
	// queue shadows the broker-side transmit queue: requests not yet
	// confirmed. Mailbox semantics: one entry per (ID, RTR).
	queue []can.Frame

	alive bool
	state bus.ControllerState
	tec   int
	rec   int
	txOK  int
	rxOK  int
}

var _ stack.Port = (*Port)(nil)

// ID returns the node identity.
func (p *Port) ID() can.NodeID { return p.id }

// SetHandler installs the indication receiver.
func (p *Port) SetHandler(h bus.Handler) { p.handler = h }

// Request queues a frame for transmission. While the broker link is down
// the request is retained (mailbox semantics) and replayed on reconnect;
// only a crashed or bus-off controller rejects.
func (p *Port) Request(f can.Frame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if !p.Operational() {
		return bus.ErrRequestRejected
	}
	for i := range p.queue {
		if p.queue[i].ID == f.ID && p.queue[i].RTR == f.RTR {
			p.queue[i] = f
			p.forward(wire.Msg{Kind: wire.KindRequest, Frame: f})
			return nil
		}
	}
	p.queue = append(p.queue, f)
	p.forward(wire.Msg{Kind: wire.KindRequest, Frame: f})
	return nil
}

// Abort cancels a pending transmit request. It reports whether a shadow
// entry was removed; a frame already on the broker's wire cannot be
// recalled, in which case a confirmation for the aborted identifier may
// still arrive (and is ignored).
func (p *Port) Abort(id uint32) bool {
	removed := false
	for i := range p.queue {
		if p.queue[i].ID == id {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			removed = true
			break
		}
	}
	p.forward(wire.Msg{Kind: wire.KindAbort, ID: id})
	return removed
}

// PendingEquivalent reports whether a wire-equivalent request is queued.
func (p *Port) PendingEquivalent(f can.Frame) bool {
	for i := range p.queue {
		if p.queue[i].SameWire(f) {
			return true
		}
	}
	return false
}

// Crash fail-silences the node: the broker's controller is killed (so the
// bus sees the same one-way transition as a simulated crash) and the link
// is torn down for good.
func (p *Port) Crash() {
	if !p.alive {
		return
	}
	p.alive = false
	p.queue = nil
	p.forward(wire.Msg{Kind: wire.KindCrash})
	// Severing the medium stops the reconnect manager: a crashed node
	// never returns (a restarted process is a fresh join).
	go p.m.Close()
}

// Alive reports whether the node has not crashed.
func (p *Port) Alive() bool { return p.alive }

// Operational reports whether the controller exchanges traffic eventually:
// alive and not confined. A disconnected-but-alive port still reports
// true — the outage is transient and its queue survives, unlike bus-off.
func (p *Port) Operational() bool { return p.alive && p.state != bus.BusOff }

// Connected reports whether the broker link is currently up.
func (p *Port) Connected() bool { return p.conn != nil }

// State returns the last fault-confinement state reported by the broker.
func (p *Port) State() bus.ControllerState { return p.state }

// Counters returns the last (TEC, REC) reported by the broker.
func (p *Port) Counters() (tec, rec int) { return p.tec, p.rec }

// TxSuccesses returns the number of confirmed transmissions.
func (p *Port) TxSuccesses() int { return p.txOK }

// RxSuccesses returns the number of received frames.
func (p *Port) RxSuccesses() int { return p.rxOK }

// forward writes one message to the broker when connected; a write
// failure severs the connection and lets the manager redial.
func (p *Port) forward(m wire.Msg) {
	if p.conn == nil {
		return
	}
	_ = p.conn.SetWriteDeadline(time.Now().Add(p.m.cfg.WriteTimeout))
	if err := wire.Write(p.conn, m); err != nil {
		p.m.logf("canelynode %v: write failed: %v", p.id, err)
		p.conn.Close()
		p.conn = nil
	}
}

// bind adopts a fresh connection and replays the shadow queue: every
// request not confirmed before the outage is requeued at the (possibly
// restarted) broker. Runs on the loop.
func (p *Port) bind(conn net.Conn) {
	p.conn = conn
	if p.m.cfg.OnStatus != nil {
		p.m.cfg.OnStatus(true)
	}
	for _, f := range p.queue {
		p.forward(wire.Msg{Kind: wire.KindRequest, Frame: f})
		if p.conn == nil {
			return // write failed mid-replay; manager will redial
		}
	}
}

// unbind drops a dead connection. Runs on the loop.
func (p *Port) unbind(conn net.Conn) {
	if p.conn == conn {
		p.conn = nil
		if p.m.cfg.OnStatus != nil {
			p.m.cfg.OnStatus(false)
		}
	}
}

// onMessage applies one broker message. Messages raced from a connection
// that has since been unbound are ignored. Runs on the loop.
func (p *Port) onMessage(conn net.Conn, m wire.Msg) {
	if p.conn != conn || !p.alive {
		return
	}
	switch m.Kind {
	case wire.KindFrame:
		if !m.Own {
			p.rxOK++
		}
		if p.handler != nil {
			p.handler.OnFrame(m.Frame, m.Own)
		}
	case wire.KindConfirm:
		p.dequeue(m.Frame)
		p.txOK++
		if p.handler != nil {
			p.handler.OnConfirm(m.Frame)
		}
	case wire.KindState:
		wasOff := p.state == bus.BusOff
		p.state = m.State
		p.tec, p.rec = int(m.TEC), int(m.REC)
		if p.state == bus.BusOff && !wasOff {
			p.queue = nil
			if p.handler != nil {
				p.handler.OnBusOff()
			}
		}
	}
}

// dequeue drops the shadow entry matching a confirmed frame. Unlike the
// simulated controllers this tolerates a miss: an aborted-but-on-the-wire
// frame is confirmed without a queue entry.
func (p *Port) dequeue(f can.Frame) {
	for i := range p.queue {
		if p.queue[i].ID == f.ID && p.queue[i].RTR == f.RTR {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			return
		}
	}
}
