// Package rt is the live runtime binding of the CANELy protocol suite: it
// runs the same sans-I/O cores and internal/stack layer assembly as the
// simulator, but against wall-clock time and real sockets instead of the
// discrete-event scheduler and a simulated medium.
//
// The package has two halves:
//
//   - Broker is the bus side: a canelyd process accepts node connections
//     over TCP or Unix-domain sockets and emulates the CAN MAC centrally —
//     priority arbitration among pending frames, wired-AND clustering of
//     identical remote frames, per-frame duration pacing at the configured
//     bit rate and TEC/REC fault confinement — by running the frame-level
//     internal/fastbus substrate on a wall-clock-paced event loop.
//
//   - Medium/Node is the node side: a Medium dials the broker and exposes
//     the stack.Medium/stack.Port contract, so internal/stack and every
//     facade layer above it (groups, ordered delivery, clock sync,
//     dual-media redundancy across two brokers) compose unchanged. A Node
//     assembles the full per-node stack on its own Loop and offers a
//     goroutine-safe front-end.
//
// The keystone is Loop: a single-goroutine executor that owns a
// sim.Scheduler and paces it against the wall clock (virtual instant v
// occurs at wall instant epoch+v). Everything written for the simulator —
// timers, the stack binding's alarm machinery, the CommandBuf free-list
// discipline, replay recording — runs on a Loop without modification,
// because the Loop preserves the single-owner execution model the
// simulator guarantees: external goroutines inject work with Post/Call and
// never touch protocol state directly.
package rt

import (
	"sync"
	"time"

	"canely/internal/sim"
)

// Loop drives a sim.Scheduler against the wall clock on one goroutine.
// Virtual time maps to wall time via a fixed epoch: the scheduler is
// advanced to now-epoch before the loop sleeps, and every scheduled event
// fires at (or as soon as possible after) its wall-clock deadline.
//
// All protocol state bound to the loop's scheduler must be touched only
// from the loop goroutine; other goroutines inject work with Post (fire
// and forget) or Call (synchronous). This carries the simulator's
// single-owner discipline — and with it the reusable CommandBuf free-lists
// of the stack binding — into a concurrent process unchanged.
type Loop struct {
	sched *sim.Scheduler
	epoch time.Time

	posts chan func()

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewLoop creates a loop positioned at virtual time zero (= wall clock
// now). Run must be started on its own goroutine before the loop is used.
func NewLoop() *Loop {
	return &Loop{
		sched: sim.NewScheduler(),
		epoch: time.Now(),
		posts: make(chan func(), 256),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// StartLoop creates a loop and starts Run on a new goroutine.
func StartLoop() *Loop {
	l := NewLoop()
	go l.Run()
	return l
}

// Scheduler returns the loop's scheduler. It must only be used from the
// loop goroutine (i.e. from posted functions or protocol callbacks).
func (l *Loop) Scheduler() *sim.Scheduler { return l.sched }

// Elapsed returns the wall-clock time since the loop's epoch — the live
// counterpart of a medium's virtual time base. Safe from any goroutine.
func (l *Loop) Elapsed() time.Duration { return time.Since(l.epoch) }

// now converts the current wall instant to virtual time.
func (l *Loop) now() sim.Time { return sim.Time(time.Since(l.epoch)) }

// Run executes the loop until Close. It alternates between running every
// scheduler event whose deadline has passed on the wall clock and sleeping
// until the earliest of the next deadline or injected work.
func (l *Loop) Run() {
	defer close(l.done)
	// The timer is reused across iterations; the Stop/drain dance covers
	// the fired-but-unread case of a previous round.
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		l.sched.RunUntil(l.now())

		wait := time.Hour
		if next := l.sched.NextDeadline(); next != sim.Never {
			wait = time.Duration(next) - l.Elapsed()
			if wait < 0 {
				wait = 0
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)

		select {
		case fn := <-l.posts:
			// Advance the scheduler clock (firing any events already due)
			// before injected work runs: protocol bindings stamp events with
			// sched.Now(), and a clock stale from the last wake would move
			// every timeout computed from such a stamp systematically early.
			l.sched.RunUntil(l.now())
			fn()
			l.drain()
		case <-timer.C:
		case <-l.stop:
			l.drain()
			return
		}
	}
}

// drain runs queued posts without blocking.
func (l *Loop) drain() {
	for {
		select {
		case fn := <-l.posts:
			fn()
		default:
			return
		}
	}
}

// Post schedules fn to run on the loop goroutine. It blocks only when the
// injection queue is full (backpressure), and drops the work if the loop
// has been closed.
func (l *Loop) Post(fn func()) {
	select {
	case l.posts <- fn:
	case <-l.done:
	}
}

// Call runs fn on the loop goroutine and waits for it to complete. It
// returns false when the loop shut down before fn could run. Call must not
// be used from the loop goroutine itself — that would deadlock; loop-side
// code simply calls fn directly.
func (l *Loop) Call(fn func()) bool {
	ran := make(chan struct{})
	select {
	case l.posts <- func() { fn(); close(ran) }:
	case <-l.done:
		return false
	}
	select {
	case <-ran:
		return true
	case <-l.done:
		// The loop drains its queue on shutdown, so fn may still have run;
		// report conservatively only if it did.
		select {
		case <-ran:
			return true
		default:
			return false
		}
	}
}

// Close stops the loop and waits for the loop goroutine to exit. Queued
// posts are drained before Run returns.
func (l *Loop) Close() {
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.done
}
