package rt

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/wire"
)

// dialBroker handshakes a raw protocol client against a test broker.
func dialBroker(t *testing.T, b *Broker, id can.NodeID, role wire.Role) net.Conn {
	t.Helper()
	conn, err := net.Dial(b.Addr().Network(), b.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := wire.Write(conn, wire.Msg{Kind: wire.KindHello, Node: id, Role: role}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	welcome, err := wire.Read(conn)
	if err != nil || welcome.Kind != wire.KindWelcome {
		t.Fatalf("welcome: %v (%v)", err, welcome.Kind)
	}
	return conn
}

// TestTapFanOutAndMetrics: passive taps see every delivered frame without
// holding a controller identity, and /metrics reports the load counters.
func TestTapFanOutAndMetrics(t *testing.T) {
	b, err := ListenBroker("127.0.0.1:0", BrokerConfig{MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const taps = 40
	tapConns := make([]net.Conn, taps)
	for i := range tapConns {
		tapConns[i] = dialBroker(t, b, 0, wire.RoleTap)
		defer tapConns[i].Close()
	}

	sender := dialBroker(t, b, 1, wire.RoleNode)
	defer sender.Close()

	const frames = 10
	for i := 0; i < frames; i++ {
		f := can.Frame{ID: uint32(0x100 + i), DLC: 1}
		if err := wire.Write(sender, wire.Msg{Kind: wire.KindRequest, Frame: f}); err != nil {
			t.Fatalf("request: %v", err)
		}
	}

	// Every tap must observe all frames, in bus order.
	for i, conn := range tapConns {
		r := bufio.NewReader(conn)
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		for j := 0; j < frames; j++ {
			m, err := wire.Read(r)
			if err != nil {
				t.Fatalf("tap %d frame %d: %v", i, j, err)
			}
			if m.Kind != wire.KindFrame || m.Frame.ID != uint32(0x100+j) {
				t.Fatalf("tap %d got %v id %#x, want frame %#x", i, m.Kind, m.Frame.ID, 0x100+j)
			}
			if m.Own {
				t.Fatalf("tap %d frame %d flagged own", i, j)
			}
		}
	}

	m := b.Metrics()
	if m.Taps != taps || m.Conns != 1 {
		t.Fatalf("metrics gauges = %d taps / %d conns, want %d / 1", m.Taps, m.Conns, taps)
	}
	if m.FramesDelivered < frames {
		t.Fatalf("frames delivered = %d, want >= %d", m.FramesDelivered, frames)
	}
	// Fan-out wrote at least taps*frames messages plus the sender's own
	// indications and confirms.
	if m.MsgsSent < taps*frames {
		t.Fatalf("msgs sent = %d, want >= %d", m.MsgsSent, taps*frames)
	}

	url := b.MetricsURL()
	if url == "" {
		t.Fatal("no metrics URL")
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("metrics get: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"canelyd_connections 1", "canelyd_taps 40",
		"canelyd_frames_delivered_total", "canelyd_queue_overflows_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestSlowTapDroppedBoundedQueue: a tap that never reads must be dropped
// once its backlog exceeds the socket buffer plus QueueDepth — bounded
// backpressure — while healthy clients on other shards keep flowing.
func TestSlowTapDroppedBoundedQueue(t *testing.T) {
	// Unix socket: its kernel buffers are small and fixed, so the unread
	// backlog hits the broker's own queue bound in seconds (TCP loopback
	// buffers autotune to megabytes and would absorb the whole test).
	// Shards: 4 pins each client to its own writer, so the slow tap's
	// write stall cannot delay (and overflow) the others' queues.
	b, err := ListenBroker("unix:"+t.TempDir()+"/broker.sock", BrokerConfig{
		Shards:       4,
		QueueDepth:   256,
		WriteTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	slow := dialBroker(t, b, 0, wire.RoleTap) // never reads after Welcome
	defer slow.Close()
	healthy := dialBroker(t, b, 0, wire.RoleTap)
	defer healthy.Close()
	sender := dialBroker(t, b, 1, wire.RoleNode)
	defer sender.Close()
	// Drain the healthy connections in the background: this test only
	// watches the broker's counters.
	var healthyFrames atomic.Int64
	go func() {
		r := bufio.NewReader(healthy)
		for {
			if _, err := wire.Read(r); err != nil {
				return
			}
			healthyFrames.Add(1)
		}
	}()
	go func() {
		r := bufio.NewReader(sender)
		for {
			if _, err := wire.Read(r); err != nil {
				return
			}
		}
	}()

	// Keep the port's transmit queue full of distinct-ID requests so the
	// bus streams frames back-to-back at full rate; the unread tap's
	// backlog then outgrows its socket buffer and the broker's queue
	// bound in a few wall seconds.
	deadline := time.Now().Add(60 * time.Second)
	dropped := false
	next := uint32(0)
	for !dropped && time.Now().Before(deadline) {
		for i := 0; i < 256; i++ {
			f := can.Frame{ID: 0x200 + next%(1<<20), DLC: 8}
			next++
			if err := wire.Write(sender, wire.Msg{Kind: wire.KindRequest, Frame: f}); err != nil {
				t.Fatalf("request: %v", err)
			}
		}
		time.Sleep(20 * time.Millisecond)
		m := b.Metrics()
		dropped = m.Overflows+m.WriteErrors > 0
	}
	if !dropped {
		t.Fatal("slow tap was never dropped: queue growth is not bounded")
	}
	if b.Metrics().Taps != 1 {
		// The gauge may lag the counter by the reader-unregister hop.
		time.Sleep(500 * time.Millisecond)
	}

	// The broker must have closed the slow tap's connection...
	_ = slow.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1<<16)
	for {
		if _, err := slow.Read(buf); err != nil {
			break // EOF/reset: dropped, as required
		}
	}
	// ...while the healthy tap kept receiving frames.
	if healthyFrames.Load() == 0 {
		t.Fatal("healthy tap starved while the slow tap backed up")
	}
}
