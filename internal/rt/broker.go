package rt

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/fastbus"
	"canely/internal/wire"
)

// BrokerConfig parameterizes a bus broker.
type BrokerConfig struct {
	// Rate is the emulated signalling rate; defaults to 1 Mbit/s. Lower
	// rates stretch frame durations (a 125 kbit/s frame lasts ~1 ms),
	// which is friendlier to the timer resolution of a non-real-time OS.
	Rate can.BitRate
	// WriteTimeout bounds one batched write to a client before the client
	// is dropped (a wedged client must not stall its shard's writer).
	// Defaults to 2 s.
	WriteTimeout time.Duration
	// Shards is the number of writer goroutines client output is sharded
	// across; <= 0 picks a small CPU-proportional default. The bus loop
	// never writes to sockets itself: it appends to per-client bounded
	// queues and the shard writers drain them with batched, buffered
	// writes.
	Shards int
	// QueueDepth bounds each client's outbound queue, in messages.
	// A client that stays QueueDepth messages behind the bus is dropped
	// (bounded backpressure — a slow reader can cost at most QueueDepth
	// messages of memory, never unbounded growth). Defaults to 512.
	QueueDepth int
	// MetricsAddr, when non-empty, serves the plain-text /metrics endpoint
	// on this address ("host:port"): connections, frames, queue depths,
	// drops. Use Broker.MetricsURL for the bound address.
	MetricsAddr string
	// Logf, when non-nil, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// BrokerMetrics is a point-in-time snapshot of the broker's load counters
// (the same numbers /metrics serves).
type BrokerMetrics struct {
	// Conns and Taps are current-connection gauges (node/gateway clients
	// and passive taps respectively).
	Conns int64
	Taps  int64
	// FramesDelivered counts physical frames the emulated bus delivered.
	FramesDelivered int64
	// MsgsSent counts protocol messages written to clients.
	MsgsSent int64
	// QueueDepth is the instantaneous total of queued outbound messages.
	QueueDepth int64
	// Overflows counts clients dropped for exceeding QueueDepth;
	// WriteErrors counts clients dropped on failed or timed-out writes.
	Overflows   int64
	WriteErrors int64
}

// Broker emulates one CAN medium over local sockets: it accepts node
// connections, queues their transmit requests into a frame-level
// internal/fastbus bus, and paces that bus's discrete events against the
// wall clock on a Loop. Arbitration, wired-AND clustering of identical
// remote frames, exact frame durations and TEC/REC fault confinement are
// therefore byte-for-byte the simulator's arithmetic; only the clock and
// the transport differ.
//
// Output never blocks the bus loop: every indication is appended to the
// client's bounded queue and written by one of a small pool of shard
// writer goroutines with per-flush batching (see shard). Passive
// wire.RoleTap clients observe every delivered frame without occupying a
// controller identity, which is what lets one broker carry far more
// connections than can.MaxNodes.
type Broker struct {
	cfg  BrokerConfig
	ln   net.Listener
	loop *Loop
	bus  *fastbus.Bus

	// clients and handlers are loop-owned: every access happens on the
	// loop goroutine. handlers persist across reconnects of the same node
	// (the fastbus port keeps its confinement state); clients are the
	// currently-bound connections. taps is the set of passive observers.
	clients  map[can.NodeID]*brokerClient
	handlers map[can.NodeID]*brokerHandler
	taps     map[*brokerClient]struct{}
	// digests retains the last site digest per gateway client — the
	// broker-side observability point for cross-segment agreement. It is
	// loop-owned.
	digests map[can.NodeID]wire.Msg

	shards  []*shard
	nextSh  atomic.Int64
	metrics brokerCounters
	msrv    *http.Server
	mln     net.Listener

	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}
}

// brokerCounters are the atomics behind /metrics. Writers are spread over
// the loop and the shard goroutines, so everything is atomic.
type brokerCounters struct {
	conns       atomic.Int64
	taps        atomic.Int64
	frames      atomic.Int64
	sent        atomic.Int64
	queued      atomic.Int64
	overflows   atomic.Int64
	writeErrors atomic.Int64
}

// brokerClient is one bound connection: a node, gateway or tap.
type brokerClient struct {
	conn net.Conn
	id   can.NodeID
	tap  bool
	sh   *shard

	// mu guards the outbound queue. Enqueuers (the loop, mostly) append;
	// the shard writer swaps the queue out wholesale per flush.
	mu      sync.Mutex
	queue   []wire.Msg
	ready   bool // already on the shard's ready list
	dropped bool
}

// shard is one writer goroutine plus the ready-list of its clients that
// have queued output. Clients are assigned round-robin at registration;
// a client's messages are only ever written by its own shard, so per-client
// ordering is total.
type shard struct {
	b  *Broker
	mu sync.Mutex
	// ready holds clients with pending output, each at most once (the
	// client's ready flag). Bounded by the shard's client population.
	ready []*brokerClient
	kick  chan struct{} // cap 1: "ready list non-empty" doorbell
	batch []wire.Msg    // writer-local flush scratch
	buf   *bufio.Writer // writer-local, Reset per flush
}

// SplitAddr splits a broker address of the form "unix:/path" or
// "[tcp:]host:port" into a network and a dial/listen address.
func SplitAddr(addr string) (network, address string) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", strings.TrimPrefix(addr, "unix:")
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", strings.TrimPrefix(addr, "tcp:")
	default:
		return "tcp", addr
	}
}

// ListenBroker starts a broker on the given address ("unix:/path" or
// "[tcp:]host:port") and begins accepting clients immediately.
func ListenBroker(addr string, cfg BrokerConfig) (*Broker, error) {
	network, address := SplitAddr(addr)
	ln, err := net.Listen(network, address)
	if err != nil {
		return nil, fmt.Errorf("rt: broker listen: %w", err)
	}
	if cfg.Rate == 0 {
		cfg.Rate = can.Rate1Mbps
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 2 * time.Second
	}
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 512
	}
	b := &Broker{
		cfg:      cfg,
		ln:       ln,
		loop:     StartLoop(),
		clients:  make(map[can.NodeID]*brokerClient),
		handlers: make(map[can.NodeID]*brokerHandler),
		taps:     make(map[*brokerClient]struct{}),
		digests:  make(map[can.NodeID]wire.Msg),
		closed:   make(chan struct{}),
	}
	b.bus = fastbus.New(b.loop.Scheduler(), fastbus.Config{Rate: cfg.Rate})
	// The observer runs on the loop during bus events: count the frame and
	// fan it out to the passive taps (loop-owned set, so no lock).
	b.bus.SetObserver(func(f can.Frame) {
		b.metrics.frames.Add(1)
		if len(b.taps) == 0 {
			return
		}
		m := wire.Msg{Kind: wire.KindFrame, Frame: f}
		for cl := range b.taps {
			b.send(cl, m)
		}
	})
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{b: b, kick: make(chan struct{}, 1), buf: bufio.NewWriterSize(nil, 4096)}
		b.shards = append(b.shards, sh)
		b.wg.Add(1)
		go sh.run()
	}
	if cfg.MetricsAddr != "" {
		if err := b.serveMetrics(cfg.MetricsAddr); err != nil {
			b.Close()
			return nil, err
		}
	}
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// defaultShards picks the writer-pool size: enough goroutines to keep
// several NICs busy, not so many that mostly-idle brokers pay for them.
func defaultShards() int {
	n := runtime.NumCPU()
	if n > 8 {
		n = 8
	}
	if n < 2 {
		n = 2
	}
	return n
}

// Addr returns the broker's bound listen address.
func (b *Broker) Addr() net.Addr { return b.ln.Addr() }

// Rate returns the emulated signalling rate.
func (b *Broker) Rate() can.BitRate { return b.cfg.Rate }

// Metrics snapshots the load counters.
func (b *Broker) Metrics() BrokerMetrics {
	return BrokerMetrics{
		Conns:           b.metrics.conns.Load(),
		Taps:            b.metrics.taps.Load(),
		FramesDelivered: b.metrics.frames.Load(),
		MsgsSent:        b.metrics.sent.Load(),
		QueueDepth:      b.metrics.queued.Load(),
		Overflows:       b.metrics.overflows.Load(),
		WriteErrors:     b.metrics.writeErrors.Load(),
	}
}

// MetricsURL returns the /metrics endpoint URL, or "" when not serving.
func (b *Broker) MetricsURL() string {
	if b.mln == nil {
		return ""
	}
	return "http://" + b.mln.Addr().String() + "/metrics"
}

// serveMetrics binds the metrics listener and serves the plain-text
// counters.
func (b *Broker) serveMetrics(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("rt: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		m := b.Metrics()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "canelyd_connections %d\n", m.Conns)
		fmt.Fprintf(w, "canelyd_taps %d\n", m.Taps)
		fmt.Fprintf(w, "canelyd_frames_delivered_total %d\n", m.FramesDelivered)
		fmt.Fprintf(w, "canelyd_msgs_sent_total %d\n", m.MsgsSent)
		fmt.Fprintf(w, "canelyd_queue_depth %d\n", m.QueueDepth)
		fmt.Fprintf(w, "canelyd_queue_overflows_total %d\n", m.Overflows)
		fmt.Fprintf(w, "canelyd_write_errors_total %d\n", m.WriteErrors)
	})
	b.mln = ln
	b.msrv = &http.Server{Handler: mux}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		_ = b.msrv.Serve(ln)
	}()
	return nil
}

// logf emits a lifecycle diagnostic when configured.
func (b *Broker) logf(format string, args ...any) {
	if b.cfg.Logf != nil {
		b.cfg.Logf(format, args...)
	}
}

// acceptLoop admits clients until the listener closes.
func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			select {
			case <-b.closed:
			default:
				b.logf("canelyd: accept: %v", err)
			}
			return
		}
		b.wg.Add(1)
		go b.serveConn(conn)
	}
}

// serveConn handshakes one client and pumps its requests into the bus
// loop. It runs on a per-connection goroutine; every touch of bus state is
// marshalled onto the loop.
func (b *Broker) serveConn(conn net.Conn) {
	defer b.wg.Done()
	defer conn.Close()

	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	hello, err := wire.Read(conn)
	if err != nil || hello.Kind != wire.KindHello {
		b.logf("canelyd: %v: bad hello: %v", conn.RemoteAddr(), err)
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	id := hello.Node

	sh := b.shards[int(b.nextSh.Add(1))%len(b.shards)]
	cl := &brokerClient{conn: conn, id: id, tap: hello.Role == wire.RoleTap, sh: sh}
	if !b.loop.Call(func() { b.register(cl) }) {
		return // broker shut down mid-handshake
	}
	if cl.tap {
		b.metrics.taps.Add(1)
		defer b.metrics.taps.Add(-1)
	} else {
		b.metrics.conns.Add(1)
		defer b.metrics.conns.Add(-1)
	}
	b.logf("canelyd: %v %v attached from %v", hello.Role, id, conn.RemoteAddr())

	for {
		msg, err := wire.Read(conn)
		if err != nil {
			b.loop.Post(func() { b.unregister(cl) })
			b.logf("canelyd: %v detached: %v", id, err)
			return
		}
		if cl.tap {
			// Taps are read-only after Hello.
			b.loop.Post(func() { b.unregister(cl) })
			b.logf("canelyd: tap from %v sent %v; dropping", conn.RemoteAddr(), msg.Kind)
			return
		}
		switch msg.Kind {
		case wire.KindRequest:
			f := msg.Frame
			b.loop.Post(func() { b.request(cl, f) })
		case wire.KindAbort:
			fid := msg.ID
			b.loop.Post(func() {
				if p := b.bus.Port(cl.id); p != nil {
					p.Abort(fid)
				}
			})
		case wire.KindCrash:
			b.loop.Post(func() {
				if p := b.bus.Port(cl.id); p != nil {
					p.Crash()
				}
			})
		case wire.KindDigest:
			d := msg
			b.loop.Post(func() { b.digests[d.Node] = d })
			b.logf("canelyd: gateway %v site digest for segment %v: %v", msg.Node, msg.Seg, msg.View)
		default:
			b.loop.Post(func() { b.unregister(cl) })
			b.logf("canelyd: %v sent unexpected %v; dropping", id, msg.Kind)
			return
		}
	}
}

// register binds a connection to a node's port, attaching the port on
// first contact and rebinding (replacing any stale connection) on
// reconnect. Taps only join the observer set. Runs on the loop.
func (b *Broker) register(cl *brokerClient) {
	if cl.tap {
		b.taps[cl] = struct{}{}
		b.send(cl, wire.Msg{Kind: wire.KindWelcome, Rate: b.cfg.Rate})
		return
	}
	if old := b.clients[cl.id]; old != nil {
		// A reconnecting node supersedes its previous connection: close it
		// so its reader unblocks and unregisters.
		old.conn.Close()
	}
	b.clients[cl.id] = cl
	if b.bus.Port(cl.id) == nil {
		port := b.bus.Attach(cl.id)
		h := &brokerHandler{b: b, id: cl.id}
		b.handlers[cl.id] = h
		port.SetHandler(h)
	}
	// Welcome is queued on the loop so it cannot reorder against frame
	// indications already flowing to this node: all of a client's output
	// goes through one queue drained by one shard writer.
	b.send(cl, wire.Msg{Kind: wire.KindWelcome, Rate: b.cfg.Rate})
	// A reconnecting node must learn confinement transitions that happened
	// while it was away (e.g. it went bus-off between connections).
	if p := b.bus.Port(cl.id); p != nil && p.State() != bus.ErrorActive {
		tec, rec := p.Counters()
		b.send(cl, wire.Msg{
			Kind: wire.KindState, State: p.State(),
			TEC: clampU16(tec), REC: clampU16(rec),
		})
	}
}

// unregister unbinds a connection. The port (and its confinement state)
// stays attached so the node can reconnect. Runs on the loop.
func (b *Broker) unregister(cl *brokerClient) {
	if cl.tap {
		delete(b.taps, cl)
	} else if b.clients[cl.id] == cl {
		delete(b.clients, cl.id)
	}
	cl.conn.Close()
}

// request queues a transmit request at the node's port. Runs on the loop.
func (b *Broker) request(cl *brokerClient, f can.Frame) {
	p := b.bus.Port(cl.id)
	if p == nil || b.clients[cl.id] != cl {
		return
	}
	// A rejected request (crashed or bus-off controller) is dropped
	// silently, exactly as the simulated stack binding drops it.
	_ = p.Request(f)
}

// send enqueues one message for a client and rings its shard. Never
// blocks: a queue at QueueDepth marks the client dropped (bounded
// backpressure) and its reader unregisters it. Consecutive State pushes
// coalesce — only the newest confinement snapshot matters — so a storm of
// transitions cannot evict a slow-but-live client. Runs on the loop (and
// on shard writers for nothing: writers only drain).
func (b *Broker) send(cl *brokerClient, m wire.Msg) {
	cl.mu.Lock()
	if cl.dropped {
		cl.mu.Unlock()
		return
	}
	if n := len(cl.queue); n > 0 && m.Kind == wire.KindState && cl.queue[n-1].Kind == wire.KindState {
		cl.queue[n-1] = m
	} else if n >= b.cfg.QueueDepth {
		cl.dropped = true
		cl.queue = nil
		b.metrics.queued.Add(-int64(n))
		cl.mu.Unlock()
		b.metrics.overflows.Add(1)
		b.logf("canelyd: %v overflowed %d queued messages; dropping", cl.id, n)
		// Close outside the lock; the connection's reader unregisters it.
		cl.conn.Close()
		return
	} else {
		cl.queue = append(cl.queue, m)
		b.metrics.queued.Add(1)
	}
	needKick := !cl.ready
	cl.ready = true
	cl.mu.Unlock()
	if needKick {
		cl.sh.enqueue(cl)
	}
}

// enqueue puts a client on the shard's ready list and rings the doorbell.
func (s *shard) enqueue(cl *brokerClient) {
	s.mu.Lock()
	s.ready = append(s.ready, cl)
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// run is the shard writer: it drains ready clients until the broker
// closes, batching each client's whole backlog into one buffered write.
func (s *shard) run() {
	defer s.b.wg.Done()
	for {
		select {
		case <-s.kick:
		case <-s.b.closed:
			return
		}
		for {
			s.mu.Lock()
			if len(s.ready) == 0 {
				s.mu.Unlock()
				break
			}
			cl := s.ready[0]
			copy(s.ready, s.ready[1:])
			s.ready = s.ready[:len(s.ready)-1]
			s.mu.Unlock()
			s.flush(cl)
		}
	}
}

// flush writes everything queued for one client. The queue is swapped out
// under the lock and written outside it, so the loop keeps enqueueing
// while the socket write is in flight. Loops until the queue is observed
// empty, at which point the ready flag is cleared atomically with that
// observation.
func (s *shard) flush(cl *brokerClient) {
	for {
		cl.mu.Lock()
		if cl.dropped || len(cl.queue) == 0 {
			cl.ready = false
			cl.mu.Unlock()
			return
		}
		s.batch = append(s.batch[:0], cl.queue...)
		cl.queue = cl.queue[:0]
		cl.mu.Unlock()

		n := len(s.batch)
		s.b.metrics.queued.Add(-int64(n))
		_ = cl.conn.SetWriteDeadline(time.Now().Add(s.b.cfg.WriteTimeout))
		s.buf.Reset(cl.conn)
		err := error(nil)
		for i := range s.batch {
			if err = wire.Write(s.buf, s.batch[i]); err != nil {
				break
			}
		}
		if err == nil {
			err = s.buf.Flush()
		}
		if err != nil {
			cl.mu.Lock()
			cl.dropped = true
			dropped := len(cl.queue)
			cl.queue = nil
			cl.ready = false
			cl.mu.Unlock()
			s.b.metrics.queued.Add(-int64(dropped))
			s.b.metrics.writeErrors.Add(1)
			s.b.logf("canelyd: %v write failed: %v", cl.id, err)
			// The connection's reader unblocks on the close and unregisters.
			cl.conn.Close()
			return
		}
		s.b.metrics.sent.Add(int64(n))
	}
}

// brokerHandler forwards one port's bus indications to whichever
// connection currently binds the node. It is installed once per attached
// port and survives reconnects.
type brokerHandler struct {
	b         *Broker
	id        can.NodeID
	lastState bus.ControllerState
}

var _ bus.Handler = (*brokerHandler)(nil)

func (h *brokerHandler) OnFrame(f can.Frame, own bool) {
	if cl := h.b.clients[h.id]; cl != nil {
		h.b.send(cl, wire.Msg{Kind: wire.KindFrame, Frame: f, Own: own})
	}
	h.pushState()
}

func (h *brokerHandler) OnConfirm(f can.Frame) {
	if cl := h.b.clients[h.id]; cl != nil {
		h.b.send(cl, wire.Msg{Kind: wire.KindConfirm, Frame: f})
	}
	h.pushState()
}

func (h *brokerHandler) OnBusOff() {
	h.pushState()
}

// pushState reports fault-confinement transitions to the client. The
// confinement counters move silently on bus errors (the handler sees only
// successful traffic and bus-off), so each indication is also used to
// piggyback a state change observed since the last one; a transition is
// therefore reported with bounded lag rather than per-error chatter.
func (h *brokerHandler) pushState() {
	p := h.b.bus.Port(h.id)
	if p == nil || p.State() == h.lastState {
		return
	}
	h.lastState = p.State()
	cl := h.b.clients[h.id]
	if cl == nil {
		return
	}
	tec, rec := p.Counters()
	h.b.send(cl, wire.Msg{
		Kind: wire.KindState, State: p.State(),
		TEC: clampU16(tec), REC: clampU16(rec),
	})
}

// SiteDigest returns the last site digest a gateway pushed, if any.
func (b *Broker) SiteDigest(gw can.NodeID) (seg can.NodeID, view can.NodeSet, ok bool) {
	b.loop.Call(func() {
		var d wire.Msg
		if d, ok = b.digests[gw]; ok {
			seg, view = d.Seg, d.View
		}
	})
	return seg, view, ok
}

func clampU16(v int) uint16 {
	if v < 0 {
		return 0
	}
	if v > 1<<16-1 {
		return 1<<16 - 1
	}
	return uint16(v)
}

// Close shuts the broker down: stops accepting, closes every client
// connection, stops the shard writers and the bus loop. Safe to call more
// than once.
func (b *Broker) Close() {
	b.closeOnce.Do(func() {
		close(b.closed)
		b.ln.Close()
		if b.msrv != nil {
			b.msrv.Close()
		}
		b.loop.Call(func() {
			for id, cl := range b.clients {
				cl.conn.Close()
				delete(b.clients, id)
			}
			for cl := range b.taps {
				cl.conn.Close()
				delete(b.taps, cl)
			}
		})
		b.loop.Close()
		b.wg.Wait()
	})
}
