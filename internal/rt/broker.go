package rt

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/fastbus"
	"canely/internal/wire"
)

// BrokerConfig parameterizes a bus broker.
type BrokerConfig struct {
	// Rate is the emulated signalling rate; defaults to 1 Mbit/s. Lower
	// rates stretch frame durations (a 125 kbit/s frame lasts ~1 ms),
	// which is friendlier to the timer resolution of a non-real-time OS.
	Rate can.BitRate
	// WriteTimeout bounds a single message write to a client before the
	// client is dropped (a wedged client must not stall the bus loop).
	// Defaults to 2 s.
	WriteTimeout time.Duration
	// Logf, when non-nil, receives connection lifecycle diagnostics.
	Logf func(format string, args ...any)
}

// Broker emulates one CAN medium over local sockets: it accepts node
// connections, queues their transmit requests into a frame-level
// internal/fastbus bus, and paces that bus's discrete events against the
// wall clock on a Loop. Arbitration, wired-AND clustering of identical
// remote frames, exact frame durations and TEC/REC fault confinement are
// therefore byte-for-byte the simulator's arithmetic; only the clock and
// the transport differ.
type Broker struct {
	cfg  BrokerConfig
	ln   net.Listener
	loop *Loop
	bus  *fastbus.Bus

	// clients and handlers are loop-owned: every access happens on the
	// loop goroutine. handlers persist across reconnects of the same node
	// (the fastbus port keeps its confinement state); clients are the
	// currently-bound connections.
	clients  map[can.NodeID]*brokerClient
	handlers map[can.NodeID]*brokerHandler
	// digests retains the last site digest per gateway client — the
	// broker-side observability point for cross-segment agreement. It is
	// loop-owned.
	digests map[can.NodeID]wire.Msg

	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}
}

// brokerClient is one bound node connection.
type brokerClient struct {
	conn net.Conn
	id   can.NodeID
}

// SplitAddr splits a broker address of the form "unix:/path" or
// "[tcp:]host:port" into a network and a dial/listen address.
func SplitAddr(addr string) (network, address string) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", strings.TrimPrefix(addr, "unix:")
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", strings.TrimPrefix(addr, "tcp:")
	default:
		return "tcp", addr
	}
}

// ListenBroker starts a broker on the given address ("unix:/path" or
// "[tcp:]host:port") and begins accepting clients immediately.
func ListenBroker(addr string, cfg BrokerConfig) (*Broker, error) {
	network, address := SplitAddr(addr)
	ln, err := net.Listen(network, address)
	if err != nil {
		return nil, fmt.Errorf("rt: broker listen: %w", err)
	}
	if cfg.Rate == 0 {
		cfg.Rate = can.Rate1Mbps
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 2 * time.Second
	}
	b := &Broker{
		cfg:      cfg,
		ln:       ln,
		loop:     StartLoop(),
		clients:  make(map[can.NodeID]*brokerClient),
		handlers: make(map[can.NodeID]*brokerHandler),
		digests:  make(map[can.NodeID]wire.Msg),
		closed:   make(chan struct{}),
	}
	b.bus = fastbus.New(b.loop.Scheduler(), fastbus.Config{Rate: cfg.Rate})
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr returns the broker's bound listen address.
func (b *Broker) Addr() net.Addr { return b.ln.Addr() }

// Rate returns the emulated signalling rate.
func (b *Broker) Rate() can.BitRate { return b.cfg.Rate }

// logf emits a lifecycle diagnostic when configured.
func (b *Broker) logf(format string, args ...any) {
	if b.cfg.Logf != nil {
		b.cfg.Logf(format, args...)
	}
}

// acceptLoop admits clients until the listener closes.
func (b *Broker) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			select {
			case <-b.closed:
			default:
				b.logf("canelyd: accept: %v", err)
			}
			return
		}
		b.wg.Add(1)
		go b.serveConn(conn)
	}
}

// serveConn handshakes one client and pumps its requests into the bus
// loop. It runs on a per-connection goroutine; every touch of bus state is
// marshalled onto the loop.
func (b *Broker) serveConn(conn net.Conn) {
	defer b.wg.Done()
	defer conn.Close()

	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	hello, err := wire.Read(conn)
	if err != nil || hello.Kind != wire.KindHello {
		b.logf("canelyd: %v: bad hello: %v", conn.RemoteAddr(), err)
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	id := hello.Node

	cl := &brokerClient{conn: conn, id: id}
	if !b.loop.Call(func() { b.register(cl) }) {
		return // broker shut down mid-handshake
	}
	b.logf("canelyd: %v %v attached from %v", hello.Role, id, conn.RemoteAddr())

	for {
		msg, err := wire.Read(conn)
		if err != nil {
			b.loop.Post(func() { b.unregister(cl) })
			b.logf("canelyd: %v detached: %v", id, err)
			return
		}
		switch msg.Kind {
		case wire.KindRequest:
			f := msg.Frame
			b.loop.Post(func() { b.request(cl, f) })
		case wire.KindAbort:
			fid := msg.ID
			b.loop.Post(func() {
				if p := b.bus.Port(cl.id); p != nil {
					p.Abort(fid)
				}
			})
		case wire.KindCrash:
			b.loop.Post(func() {
				if p := b.bus.Port(cl.id); p != nil {
					p.Crash()
				}
			})
		case wire.KindDigest:
			d := msg
			b.loop.Post(func() { b.digests[d.Node] = d })
			b.logf("canelyd: gateway %v site digest for segment %v: %v", msg.Node, msg.Seg, msg.View)
		default:
			b.loop.Post(func() { b.unregister(cl) })
			b.logf("canelyd: %v sent unexpected %v; dropping", id, msg.Kind)
			return
		}
	}
}

// register binds a connection to a node's port, attaching the port on
// first contact and rebinding (replacing any stale connection) on
// reconnect. Runs on the loop.
func (b *Broker) register(cl *brokerClient) {
	if old := b.clients[cl.id]; old != nil {
		// A reconnecting node supersedes its previous connection: close it
		// so its reader unblocks and unregisters.
		old.conn.Close()
	}
	b.clients[cl.id] = cl
	if b.bus.Port(cl.id) == nil {
		port := b.bus.Attach(cl.id)
		h := &brokerHandler{b: b, id: cl.id}
		b.handlers[cl.id] = h
		port.SetHandler(h)
	}
	// Welcome is written on the loop so it cannot interleave with frame
	// indications already flowing to this node.
	b.send(cl, wire.Msg{Kind: wire.KindWelcome, Rate: b.cfg.Rate})
	// A reconnecting node must learn confinement transitions that happened
	// while it was away (e.g. it went bus-off between connections).
	if p := b.bus.Port(cl.id); p != nil && p.State() != bus.ErrorActive {
		tec, rec := p.Counters()
		b.send(cl, wire.Msg{
			Kind: wire.KindState, State: p.State(),
			TEC: clampU16(tec), REC: clampU16(rec),
		})
	}
}

// unregister unbinds a connection. The port (and its confinement state)
// stays attached so the node can reconnect. Runs on the loop.
func (b *Broker) unregister(cl *brokerClient) {
	if b.clients[cl.id] == cl {
		delete(b.clients, cl.id)
	}
	cl.conn.Close()
}

// request queues a transmit request at the node's port. Runs on the loop.
func (b *Broker) request(cl *brokerClient, f can.Frame) {
	p := b.bus.Port(cl.id)
	if p == nil || b.clients[cl.id] != cl {
		return
	}
	// A rejected request (crashed or bus-off controller) is dropped
	// silently, exactly as the simulated stack binding drops it.
	_ = p.Request(f)
}

// send writes one message to a bound client, dropping the client on a
// stalled or failed write so the bus loop never wedges. Runs on the loop.
func (b *Broker) send(cl *brokerClient, m wire.Msg) {
	if b.clients[cl.id] != cl {
		return
	}
	_ = cl.conn.SetWriteDeadline(time.Now().Add(b.cfg.WriteTimeout))
	if err := wire.Write(cl.conn, m); err != nil {
		b.logf("canelyd: %v write failed: %v", cl.id, err)
		b.unregister(cl)
	}
}

// brokerHandler forwards one port's bus indications to whichever
// connection currently binds the node. It is installed once per attached
// port and survives reconnects.
type brokerHandler struct {
	b         *Broker
	id        can.NodeID
	lastState bus.ControllerState
}

var _ bus.Handler = (*brokerHandler)(nil)

func (h *brokerHandler) OnFrame(f can.Frame, own bool) {
	if cl := h.b.clients[h.id]; cl != nil {
		h.b.send(cl, wire.Msg{Kind: wire.KindFrame, Frame: f, Own: own})
	}
	h.pushState()
}

func (h *brokerHandler) OnConfirm(f can.Frame) {
	if cl := h.b.clients[h.id]; cl != nil {
		h.b.send(cl, wire.Msg{Kind: wire.KindConfirm, Frame: f})
	}
	h.pushState()
}

func (h *brokerHandler) OnBusOff() {
	h.pushState()
}

// pushState reports fault-confinement transitions to the client. The
// confinement counters move silently on bus errors (the handler sees only
// successful traffic and bus-off), so each indication is also used to
// piggyback a state change observed since the last one; a transition is
// therefore reported with bounded lag rather than per-error chatter.
func (h *brokerHandler) pushState() {
	p := h.b.bus.Port(h.id)
	if p == nil || p.State() == h.lastState {
		return
	}
	h.lastState = p.State()
	cl := h.b.clients[h.id]
	if cl == nil {
		return
	}
	tec, rec := p.Counters()
	h.b.send(cl, wire.Msg{
		Kind: wire.KindState, State: p.State(),
		TEC: clampU16(tec), REC: clampU16(rec),
	})
}

// SiteDigest returns the last site digest a gateway pushed, if any.
func (b *Broker) SiteDigest(gw can.NodeID) (seg can.NodeID, view can.NodeSet, ok bool) {
	b.loop.Call(func() {
		var d wire.Msg
		if d, ok = b.digests[gw]; ok {
			seg, view = d.Seg, d.View
		}
	})
	return seg, view, ok
}

func clampU16(v int) uint16 {
	if v < 0 {
		return 0
	}
	if v > 1<<16-1 {
		return 1<<16 - 1
	}
	return uint16(v)
}

// Close shuts the broker down: stops accepting, closes every client
// connection, and stops the bus loop. Safe to call more than once.
func (b *Broker) Close() {
	b.closeOnce.Do(func() {
		close(b.closed)
		b.ln.Close()
		b.loop.Call(func() {
			for id, cl := range b.clients {
				cl.conn.Close()
				delete(b.clients, id)
			}
		})
		b.loop.Close()
		b.wg.Wait()
	})
}
