package rt

import (
	"fmt"
	"time"

	"canely/internal/can"
	"canely/internal/gateway"
	"canely/internal/replay"
	"canely/internal/stack"
	"canely/internal/wire"
)

// GatewayConfig parameterizes one live federation gateway.
type GatewayConfig struct {
	// ID is the federation-wide gateway identity: the digest source and
	// the identity of the raw digest link on every broker. It must not
	// collide with any plain node id on those brokers.
	ID can.NodeID
	// Member is the gateway's member identity inside each segment (the
	// same local id on every broker; segment id spaces are independent).
	Member can.NodeID
	// Brokers lists one broker address per segment, in segment order.
	Brokers []string
	// Segments names the segment each broker emulates; nil defaults to
	// 0..len(Brokers)-1.
	Segments []can.NodeID
	// Views are the pre-agreed per-segment bootstrap views, parallel to
	// Brokers; each must include Member.
	Views []can.NodeSet
	// Stack parameterizes the member stacks (FD, membership, J).
	Stack stack.Config
	// Tann and Tstale parameterize the federation layer.
	Tann, Tstale time.Duration
	// Queue and Latency parameterize the store-and-forward stage.
	Queue   int
	Latency time.Duration
	// Rate, when non-zero, asserts the brokers' signalling rate.
	Rate can.BitRate
	// Record captures the federation core's event/command streams
	// (EventLog).
	Record bool
	// Hooks optionally observes the member stacks' layer boundaries.
	Hooks *stack.Hooks
	// Dial tunes connection establishment; Addr, Rate and Role are
	// overridden per connection.
	Dial DialConfig
}

// GatewayNode is one live federation gateway: a gateway.Gateway dual-homed
// (or more) over broker connections — per segment, a full member stack on
// one connection plus a raw digest link on a second — driven by wall-clock
// timers on a dedicated Loop, exactly like Node drives its stack.
//
// Exported methods are goroutine-safe; they must not be called from
// protocol callbacks (those already run on the loop).
type GatewayNode struct {
	loop     *Loop
	gw       *gateway.Gateway
	members  []*Medium
	raws     []*Medium
	segments []can.NodeID
	log      *replay.Log
}

// StartGateway dials every broker twice (member stack + raw digest link),
// assembles the gateway and starts its event loop. The returned gateway is
// quiescent until Bootstrap.
func StartGateway(cfg GatewayConfig) (*GatewayNode, error) {
	if len(cfg.Brokers) == 0 {
		return nil, fmt.Errorf("rt: no broker addresses")
	}
	if cfg.Segments == nil {
		for i := range cfg.Brokers {
			cfg.Segments = append(cfg.Segments, can.NodeID(i))
		}
	}
	if len(cfg.Segments) != len(cfg.Brokers) || len(cfg.Views) != len(cfg.Brokers) {
		return nil, fmt.Errorf("rt: %d brokers need %d segments and views, have %d and %d",
			len(cfg.Brokers), len(cfg.Brokers), len(cfg.Segments), len(cfg.Views))
	}
	loop := StartLoop()
	g := &GatewayNode{loop: loop, segments: cfg.Segments}
	fail := func(err error) (*GatewayNode, error) {
		for _, m := range g.members {
			m.Close()
		}
		for _, m := range g.raws {
			m.Close()
		}
		loop.Close()
		return nil, err
	}

	for _, addr := range cfg.Brokers {
		dc := cfg.Dial
		dc.Addr = addr
		dc.Rate = cfg.Rate
		dc.Role = wire.RoleNode
		member, err := DialMedium(loop, cfg.Member, dc)
		if err != nil {
			return fail(err)
		}
		g.members = append(g.members, member)
		dc.Role = wire.RoleGateway
		raw, err := DialMedium(loop, cfg.ID, dc)
		if err != nil {
			return fail(err)
		}
		g.raws = append(g.raws, raw)
	}

	if cfg.Record {
		g.log = replay.New()
	}
	var buildErr error
	if !loop.Call(func() {
		g.gw, buildErr = gateway.New(loop.Scheduler(), gateway.Config{
			ID: cfg.ID, Tann: cfg.Tann, Tstale: cfg.Tstale,
			Queue: cfg.Queue, Latency: cfg.Latency, Recorder: g.log,
		})
		if buildErr != nil {
			return
		}
		for i := range cfg.Brokers {
			_, buildErr = g.gw.AddMemberLink(g.members[i], cfg.Segments[i], cfg.Member,
				cfg.Views[i], cfg.Stack, cfg.Hooks)
			if buildErr != nil {
				return
			}
			if _, buildErr = g.gw.AddRawLink(g.raws[i]); buildErr != nil {
				return
			}
		}
		// Every site transition is pushed to all brokers for observability.
		g.gw.OnSiteChange(func(active, _ can.NodeSet) {
			for i, raw := range g.raws {
				raw.PushDigest(g.segments[i], active)
			}
		})
	}) {
		buildErr = fmt.Errorf("rt: loop closed during gateway assembly")
	}
	if buildErr != nil {
		return fail(buildErr)
	}
	return g, nil
}

// Loop returns the gateway's event loop.
func (g *GatewayNode) Loop() *Loop { return g.loop }

// Gateway returns the underlying gateway. It must only be touched from the
// loop goroutine.
func (g *GatewayNode) Gateway() *gateway.Gateway { return g.gw }

// ID returns the federation-wide gateway identity.
func (g *GatewayNode) ID() can.NodeID { return g.gw.ID() }

// Bootstrap installs the pre-agreed member views and the pre-agreed
// initial site view, and starts the protocol machinery.
func (g *GatewayNode) Bootstrap(site can.NodeSet) error {
	var err error
	g.loop.Call(func() {
		if err = g.gw.Bootstrap(site); err != nil {
			return
		}
		for i, raw := range g.raws {
			raw.PushDigest(g.segments[i], g.gw.SiteView())
		}
	})
	return err
}

// SiteView returns the gateway's current cross-segment site view.
func (g *GatewayNode) SiteView() can.NodeSet {
	var v can.NodeSet
	g.loop.Call(func() { v = g.gw.SiteView() })
	return v
}

// Members returns the gateway's last known membership view of a segment.
func (g *GatewayNode) Members(seg can.NodeID) can.NodeSet {
	var v can.NodeSet
	g.loop.Call(func() { v = g.gw.Members(seg) })
	return v
}

// OnSiteChange registers a site view consumer. The callback runs on the
// loop goroutine.
func (g *GatewayNode) OnSiteChange(fn func(active, failed can.NodeSet)) {
	g.loop.Call(func() { g.gw.OnSiteChange(fn) })
}

// Alive reports whether the gateway has not crashed.
func (g *GatewayNode) Alive() bool {
	var ok bool
	g.loop.Call(func() { ok = g.gw.Alive() })
	return ok
}

// Crash fail-silences the gateway on every link.
func (g *GatewayNode) Crash() { g.loop.Call(g.gw.Crash) }

// EventLog returns the recorded federation event/command log (nil unless
// GatewayConfig.Record). Read it only after Close.
func (g *GatewayNode) EventLog() *replay.Log { return g.log }

// Close stops the gateway: media torn down, loop stopped. Protocol state
// remains readable through Gateway afterwards.
func (g *GatewayNode) Close() {
	for _, m := range g.members {
		m.Close()
	}
	for _, m := range g.raws {
		m.Close()
	}
	g.loop.Close()
}
