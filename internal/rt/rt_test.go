package rt

import (
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/stack"
)

// liveConfig returns protocol parameters relaxed for wall-clock execution:
// periods are large against OS scheduling jitter, so the tests stay sound
// on loaded CI machines.
func liveConfig(tb, ttd, tm time.Duration) stack.Config {
	return stack.Config{
		FD: fd.Config{Tb: tb, Ttd: ttd},
		Membership: membership.Config{
			Tm:        tm,
			TjoinWait: 10 * tm,
			RHA:       membership.RHAConfig{Trha: tm / 4, J: 2},
		},
		J: 2,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestLoopPostCallClose(t *testing.T) {
	l := StartLoop()
	var n atomic.Int32
	l.Post(func() { n.Add(1) })
	if !l.Call(func() { n.Add(1) }) {
		t.Fatal("Call on a running loop reported closed")
	}
	if got := n.Load(); got != 2 {
		t.Fatalf("after Call, %d effects, want 2 (Post must be ordered before)", got)
	}
	l.Close()
	l.Close() // idempotent
	if l.Call(func() { n.Add(1) }) {
		t.Fatal("Call after Close reported success")
	}
}

func TestLoopTimersFireOnWallClock(t *testing.T) {
	l := StartLoop()
	defer l.Close()
	const delay = 60 * time.Millisecond
	fired := make(chan time.Duration, 1)
	start := time.Now()
	l.Call(func() {
		l.Scheduler().After(delay, func() { fired <- time.Since(start) })
	})
	select {
	case got := <-fired:
		if got < delay {
			t.Fatalf("timer fired after %v, before its %v deadline", got, delay)
		}
		if got > delay+500*time.Millisecond {
			t.Fatalf("timer fired after %v, far past its %v deadline", got, delay)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestLoopStampsInjectedWorkWithCurrentTime(t *testing.T) {
	// Work posted while the loop sleeps must observe a scheduler clock near
	// the wall instant of injection, not the instant of the loop's last
	// wake — protocol timeouts are computed from these stamps.
	l := StartLoop()
	defer l.Close()
	time.Sleep(80 * time.Millisecond) // let the loop go idle
	var lag time.Duration
	l.Call(func() { lag = l.Elapsed() - time.Duration(l.Scheduler().Now()) })
	if lag > 50*time.Millisecond {
		t.Fatalf("scheduler clock lags wall clock by %v at injection", lag)
	}
}

// startCluster boots a broker and n bootstrapped founders on it.
func startCluster(t *testing.T, addr string, n int, scfg stack.Config, record can.NodeSet) (*Broker, []*Node) {
	t.Helper()
	broker, err := ListenBroker(addr, BrokerConfig{Rate: can.Rate125Kbps})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(broker.Close)
	// A unix listener's Addr drops the "unix:" scheme the dialer needs;
	// re-derive the dialable form from the requested address.
	dial := broker.Addr().String()
	if network, _ := SplitAddr(addr); network == "unix" {
		dial = addr
	}
	nodes := make([]*Node, n)
	for i := range nodes {
		nd, err := StartNode(NodeConfig{
			ID:     can.NodeID(i),
			Broker: dial,
			Stack:  scfg,
			Record: record.Contains(can.NodeID(i)),
			Dial:   DialConfig{BackoffMin: 10 * time.Millisecond, BackoffMax: 100 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(nd.Close)
		nodes[i] = nd
	}
	view := can.RangeSet(0, can.NodeID(n))
	for _, nd := range nodes {
		nd.Bootstrap(view)
	}
	return broker, nodes
}

// TestLiveJoinCrashConvergesAndReplays is the live acceptance scenario: a
// seeded three-node site over real sockets and wall-clock timers accepts a
// joiner, detects a crash, and every correct node reports the same final
// view. One node records its core event/command streams; the capture must
// re-verify on fresh pure cores, command for command.
func TestLiveJoinCrashConvergesAndReplays(t *testing.T) {
	scfg := liveConfig(120*time.Millisecond, 60*time.Millisecond, 300*time.Millisecond)
	broker, nodes := startCluster(t, "127.0.0.1:0", 3, scfg, can.MakeSet(0))

	waitFor(t, 5*time.Second, "bootstrap steady state", func() bool {
		return nodes[0].View() == can.RangeSet(0, 3)
	})

	joiner, err := StartNode(NodeConfig{
		ID: 3, Broker: broker.Addr().String(), Stack: scfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(joiner.Close)
	joiner.Join()
	waitFor(t, 10*time.Second, "join to complete", func() bool {
		return joiner.Member() && nodes[0].View().Contains(3)
	})

	nodes[2].Crash()
	want := can.MakeSet(0, 1, 3)
	waitFor(t, 10*time.Second, "crash detection and agreement", func() bool {
		return nodes[0].View() == want && nodes[1].View() == want && joiner.View() == want
	})
	if v := nodes[1].View(); v != want {
		t.Fatalf("node 1 view %v, want %v", v, want)
	}

	nodes[0].Close()
	log := nodes[0].EventLog()
	if len(log.Records) == 0 {
		t.Fatal("recorded run produced no records")
	}
	if err := log.Verify(); err != nil {
		t.Fatalf("live capture does not replay: %v", err)
	}
}

// TestBrokerRestartReconnectsAndReconverges kills the broker under a
// running three-node site and restarts it on the same address: every node
// must redial with backoff, no node may wedge, and the site must still
// hold one agreed view — then prove the bus works by detecting a fresh
// crash.
func TestBrokerRestartReconnectsAndReconverges(t *testing.T) {
	// Surveillance runs at Tb+Ttd = 900 ms; the restart gap below stays
	// well under it, so the outage is bridged without false suspicions
	// (falsely excluded nodes do not auto-rejoin).
	scfg := liveConfig(600*time.Millisecond, 300*time.Millisecond, 1200*time.Millisecond)
	addr := "unix:" + filepath.Join(t.TempDir(), "canely.sock")
	broker, nodes := startCluster(t, addr, 3, scfg, 0)

	full := can.RangeSet(0, 3)
	waitFor(t, 10*time.Second, "bootstrap steady state", func() bool {
		return nodes[0].View() == full && nodes[1].View() == full && nodes[2].View() == full
	})

	broker.Close()
	waitFor(t, 5*time.Second, "nodes to notice the dead broker", func() bool {
		for _, nd := range nodes {
			if nd.Connected() {
				return false
			}
		}
		return true
	})

	broker2, err := ListenBroker(addr, BrokerConfig{Rate: can.Rate125Kbps})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(broker2.Close)
	waitFor(t, 5*time.Second, "nodes to reconnect", func() bool {
		for _, nd := range nodes {
			if !nd.Connected() {
				return false
			}
		}
		return true
	})

	// One full surveillance + membership cycle after the outage the site
	// must still agree on the full view — nobody was falsely expelled.
	time.Sleep(scfg.FD.Tb + scfg.FD.Ttd + scfg.Membership.Tm)
	for i, nd := range nodes {
		if v := nd.View(); v != full {
			t.Fatalf("node %d view %v after broker restart, want %v", i, v, full)
		}
	}

	// The restarted bus must be fully functional: a crash is detected and
	// agreed by the survivors.
	nodes[2].Crash()
	want := can.MakeSet(0, 1)
	waitFor(t, 15*time.Second, "crash detection after restart", func() bool {
		return nodes[0].View() == want && nodes[1].View() == want
	})
}

// TestMediumRejectsRateMismatch asserts the fail-fast path for
// misconfigured clusters.
func TestMediumRejectsRateMismatch(t *testing.T) {
	broker, err := ListenBroker("127.0.0.1:0", BrokerConfig{Rate: can.Rate125Kbps})
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	loop := StartLoop()
	defer loop.Close()
	_, err = DialMedium(loop, 1, DialConfig{
		Addr: broker.Addr().String(), Rate: can.Rate1Mbps,
		DialTimeout: 500 * time.Millisecond, BackoffMin: 50 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("dial with mismatching rate succeeded")
	}
}

// TestSplitAddr pins the address syntax of the CLIs.
func TestSplitAddr(t *testing.T) {
	cases := []struct{ in, network, address string }{
		{"unix:/tmp/x.sock", "unix", "/tmp/x.sock"},
		{"tcp:127.0.0.1:80", "tcp", "127.0.0.1:80"},
		{"127.0.0.1:80", "tcp", "127.0.0.1:80"},
		{":8964", "tcp", ":8964"},
	}
	for _, c := range cases {
		n, a := SplitAddr(c.in)
		if n != c.network || a != c.address {
			t.Fatalf("SplitAddr(%q) = %q,%q want %q,%q", c.in, n, a, c.network, c.address)
		}
	}
}

func ExampleSplitAddr() {
	n, a := SplitAddr("unix:/run/canely.sock")
	fmt.Println(n, a)
	// Output: unix /run/canely.sock
}
