// Package prof wires the conventional -cpuprofile / -memprofile flag pair
// into the CLIs. The files it writes are standard pprof profiles:
//
//	go tool pprof -top ./campaign cpu.out
//	go tool pprof -top -sample_index=alloc_space ./campaign mem.out
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (empty disables it) and returns a
// stop function that ends the CPU profile and, when memPath is non-empty,
// snapshots the heap profile there (after a GC, so the numbers reflect live
// and cumulative allocation, not collection timing). Call stop exactly
// once, on every exit path that should produce profiles.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: closing %s: %w", cpuPath, err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return fmt.Errorf("prof: writing heap profile: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("prof: closing %s: %w", memPath, err)
			}
		}
		return nil
	}, nil
}
