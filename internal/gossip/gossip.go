// Package gossip implements a SWIM-style failure detector and membership
// protocol as a sans-I/O core — the asynchronous-network baseline the
// CANELy comparison study measures against (ROADMAP item 1, in the spirit
// of Das/Gupta/Motivala's SWIM and the unreliable-failure-detector
// literature).
//
// The protocol assumes nothing the CANELy stack gets for free from CAN's
// wired-AND: no broadcast, no arbitration, no consistent omission. Every
// message is a unicast datagram that may be dropped, delayed or
// duplicated (internal/datagram). Failure detection is therefore
// probabilistic — probe timeouts instead of bounded-delay surveillance —
// and membership is disseminated epidemically by piggybacking updates on
// the probe traffic instead of being agreed via RHA.
//
// One protocol period (Config.Period):
//
//	tick     pick the next round-robin member M, send ping(M), arm the
//	         ack deadline
//	ack      deadline 1 (AckTimeout): no direct ack — send ping-req(M)
//	         to Fanout other members, which forward a ping to M on our
//	         behalf; M acks the origin directly
//	ack      deadline 2 (2×AckTimeout): still no ack — suspect M and
//	         gossip suspect(M, inc)
//	suspect  SuspectTimeout later, an unrefuted suspicion is confirmed:
//	         M is declared dead and removed from the view
//
// A node that learns it is suspected refutes by incrementing its own
// incarnation and gossiping alive(self, inc'): per-node state forms a
// lattice ordered by (incarnation, alive < suspect < dead), so updates
// commute and every node converges on the highest point it has seen.
//
// The core follows the same contract as the seven CANELy cores: pure
// StepInto(proto.Event, *proto.CommandBuf), comparable value state, O(1)
// Clone, residue-free Fingerprint — so the explorer, checkpointing,
// record/replay and fuzzing machinery apply verbatim.
package gossip

import (
	"fmt"
	"hash/maphash"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
	"canely/internal/sim"
)

// Config parameterizes the SWIM core.
type Config struct {
	// Period is the protocol period T: one probe per period.
	Period time.Duration
	// AckTimeout is the wait for a direct ack before falling back to
	// indirect probing, and then for an indirect ack before suspecting.
	// The full probe (2×AckTimeout) must fit inside one period.
	AckTimeout time.Duration
	// SuspectTimeout is how long a suspicion stands before the node is
	// declared dead; the window in which the suspect can refute. Refutation
	// travels over piggybacked gossip hops, so this should span several
	// periods (SWIM's suspicion multiplier).
	SuspectTimeout time.Duration
	// Fanout is the number of ping-req relays asked to probe indirectly.
	Fanout int
	// Retransmit is the per-update piggyback budget: how many outgoing
	// messages carry a membership update before it falls silent
	// (SWIM's λ·log n dissemination parameter, fixed small here because
	// the frame-addressable cluster is capped at can.MaxNodes).
	Retransmit int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Period <= 0 {
		return fmt.Errorf("gossip: period must be positive, got %v", c.Period)
	}
	if c.AckTimeout <= 0 {
		return fmt.Errorf("gossip: ack timeout must be positive, got %v", c.AckTimeout)
	}
	if 2*c.AckTimeout > c.Period {
		return fmt.Errorf("gossip: probe 2×AckTimeout %v exceeds period %v", 2*c.AckTimeout, c.Period)
	}
	if c.SuspectTimeout <= 0 {
		return fmt.Errorf("gossip: suspect timeout must be positive, got %v", c.SuspectTimeout)
	}
	if c.Fanout < 1 {
		return fmt.Errorf("gossip: fanout must be at least 1, got %d", c.Fanout)
	}
	if c.Retransmit < 1 {
		return fmt.Errorf("gossip: retransmit budget must be at least 1, got %d", c.Retransmit)
	}
	return nil
}

// DefaultConfig returns the parameters used by the simulation studies.
func DefaultConfig() Config {
	return Config{
		Period:         20 * time.Millisecond,
		AckTimeout:     5 * time.Millisecond,
		SuspectTimeout: 120 * time.Millisecond,
		Fanout:         2,
		Retransmit:     4,
	}
}

// Message kinds, carried in the high nibble of the mid Ref; the low nibble
// is a 4-bit probe sequence number.
const (
	kindPing    = 1 // payload[0] = origin the ack must be sent to
	kindAck     = 2 // answers a ping; matched on (Src, seq)
	kindPingReq = 3 // payload[0] = subject to probe on the sender's behalf
	kindJoin    = 4 // sender asks to be admitted; answered with an ack
)

// Per-node status in the update lattice. Rank order matters: at equal
// incarnation the higher status wins.
const (
	stNone    uint8 = iota // never heard of
	stAlive                // member in good standing
	stSuspect              // unrefuted probe failure
	stDead                 // confirmed failed, removed from the view
)

// packRef packs a message kind and probe sequence into a mid Ref.
func packRef(kind, seq uint8) uint8 { return kind<<4 | seq&0x0F }

// Core is the SWIM protocol core at one node. All state is inline value
// state — no pointers, maps or slices — so Clone is a struct copy.
type Core struct {
	cfg   Config
	local can.NodeID

	started bool // bootstrap or join consumed; timers running
	left    bool // voluntary leave requested

	// The update lattice: st/inc are meaningful for ids in
	// members ∪ dead; members = alive ∪ suspects, disjoint from dead.
	st       [can.MaxNodes]uint8
	inc      [can.MaxNodes]uint8
	members  can.NodeSet
	suspects can.NodeSet
	dead     can.NodeSet

	// Round-robin probe rotation and the probe in flight.
	nextIdx  uint8
	probeSeq uint8
	probing  bool
	indirect bool
	target   can.NodeID

	// Suspicion expiries, chasing-minimum (fd.Detector pattern): a slot is
	// meaningful only while its suspects bit is set, scanAt only while
	// scanPending.
	suspectAt   [can.MaxNodes]sim.Time
	scanAt      sim.Time
	scanPending bool

	// Piggyback queue: one entry per node, refreshed whenever the node's
	// lattice point advances; sends is the remaining transmission budget.
	// pbCursor rotates the scan start so no node id starves when more
	// entries hold budget than one payload fits.
	queue    [can.MaxNodes]queueEntry
	pbCursor uint8

	// msgs counts outgoing gossip messages for the bandwidth experiments.
	// Diagnostic only — never hashed, so it cannot split equal states.
	msgs int
}

type queueEntry struct {
	st    uint8
	inc   uint8
	sends uint8
}

// New creates the protocol core for the given node.
func New(local can.NodeID, cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !local.Valid() {
		return nil, fmt.Errorf("gossip: invalid local node id %d", local)
	}
	g := &Core{cfg: cfg, local: local}
	g.st[local] = stAlive
	g.members = can.MakeSet(local)
	return g, nil
}

// Clone returns an independent deep copy of the core.
func (g *Core) Clone() *Core {
	c := *g
	return &c
}

// Restore overwrites the core's state with src's (same node, same config).
func (g *Core) Restore(src *Core) { *g = *src }

// View returns the current membership view: every node believed alive or
// suspected, the local node included.
func (g *Core) View() can.NodeSet { return g.members }

// Alive returns the members not currently under suspicion.
func (g *Core) Alive() can.NodeSet { return g.members.Diff(g.suspects) }

// Suspects returns the members currently under suspicion.
func (g *Core) Suspects() can.NodeSet { return g.suspects }

// Dead returns the nodes this core has confirmed failed.
func (g *Core) Dead() can.NodeSet { return g.dead }

// Started reports whether the core has consumed a bootstrap or join.
func (g *Core) Started() bool { return g.started }

// Incarnation returns the highest incarnation known for node n.
func (g *Core) Incarnation(n can.NodeID) uint8 { return g.inc[n] }

// Msgs returns the number of gossip messages sent.
func (g *Core) Msgs() int { return g.msgs }

// Quiet reports that no probe is in flight, nothing is suspected and the
// piggyback queue is drained: the only activity reachable from here (with
// all members responsive) is periodic ping/ack traffic.
func (g *Core) Quiet() bool {
	if g.probing || !g.suspects.Empty() {
		return false
	}
	for n := range g.queue {
		if g.queue[n].sends > 0 {
			return false
		}
	}
	return true
}

// Fingerprint writes the core's complete mutable state into h. Lattice
// slots are meaningful only for members ∪ dead, suspicion deadlines only
// while the suspects bit is set, probe fields only while probing — the
// unguarded residue is skipped so logically equal states hash equal.
func (g *Core) Fingerprint(h *maphash.Hash) {
	proto.HashU64(h, uint64(g.local))
	proto.HashBool(h, g.started)
	proto.HashBool(h, g.left)
	proto.HashU64(h, uint64(g.members))
	proto.HashU64(h, uint64(g.suspects))
	proto.HashU64(h, uint64(g.dead))
	for s := g.members.Union(g.dead); !s.Empty(); {
		n := s.Lowest()
		s = s.Remove(n)
		proto.HashU64(h, uint64(g.st[n])<<8|uint64(g.inc[n]))
	}
	for s := g.suspects; !s.Empty(); {
		n := s.Lowest()
		s = s.Remove(n)
		proto.HashU64(h, uint64(g.suspectAt[n]))
	}
	proto.HashBool(h, g.scanPending)
	if g.scanPending {
		proto.HashU64(h, uint64(g.scanAt))
	}
	proto.HashU64(h, uint64(g.nextIdx)<<16|uint64(g.probeSeq)<<8|uint64(g.pbCursor))
	proto.HashBool(h, g.probing)
	if g.probing {
		proto.HashBool(h, g.indirect)
		proto.HashU64(h, uint64(g.target))
	}
	for n := range g.queue {
		if q := g.queue[n]; q.sends > 0 {
			proto.HashU64(h, uint64(n)<<24|uint64(q.st)<<16|uint64(q.inc)<<8|uint64(q.sends))
		}
	}
}

// Step consumes one event and returns a fresh command slice (nil when the
// event produced no action). Compatibility wrapper over StepInto.
func (g *Core) Step(ev proto.Event) []proto.Command {
	var buf proto.CommandBuf
	g.StepInto(ev, &buf)
	return buf.Commands()
}

// StepInto consumes one event, appending the resulting commands to buf.
func (g *Core) StepInto(ev proto.Event, buf *proto.CommandBuf) {
	switch ev.Kind {
	case proto.EvBootstrap:
		g.bootstrap(ev, buf)
	case proto.EvJoin:
		g.join(ev, buf)
	case proto.EvLeave:
		g.leave(ev, buf)
	case proto.EvDataInd:
		// Traffic before bootstrap/join is discarded: accepting it would
		// build lattice state the initial-view installation then clobbers.
		if g.started && ev.MID.Type == can.TypeGossip && can.GossipDest(ev.MID) == g.local {
			g.receive(ev, buf)
		}
	case proto.EvTimerFired:
		if !g.started {
			return
		}
		switch ev.Timer {
		case proto.TimerGossipTick:
			g.tick(ev.At, buf)
		case proto.TimerGossipAck:
			g.ackExpired(ev.At, buf)
		case proto.TimerGossipSuspect:
			g.suspectScan(ev.At, buf)
		}
	}
}

// bootstrap installs a pre-agreed initial view and starts the period.
func (g *Core) bootstrap(ev proto.Event, buf *proto.CommandBuf) {
	if g.started {
		return
	}
	g.started = true
	old := g.members
	for s := ev.View; !s.Empty(); {
		n := s.Lowest()
		s = s.Remove(n)
		g.st[n] = stAlive
		g.members = g.members.Add(n)
	}
	if g.members != old {
		buf.Put(proto.TraceViewChange(old, g.members))
		buf.Put(proto.NotifyView(g.members, 0, false))
	}
	buf.Put(proto.SetTimer(proto.TimerGossipTick, sim.Duration(g.cfg.Period)))
}

// join starts the core as a joiner: ev.View names the seed contacts the
// join request is sent to. The contacts admit the joiner and answer with
// acks whose piggyback introduces the membership.
func (g *Core) join(ev proto.Event, buf *proto.CommandBuf) {
	if g.started {
		return
	}
	g.started = true
	for s := ev.View.Remove(g.local); !s.Empty(); {
		n := s.Lowest()
		s = s.Remove(n)
		g.sendMsg(kindJoin, 0, n, 0, buf)
	}
	buf.Put(proto.SetTimer(proto.TimerGossipTick, sim.Duration(g.cfg.Period)))
}

// leave gossips dead(self) voluntarily. The core keeps ticking so the
// update disseminates; peers remove us as left rather than failed only in
// the sense that the update precedes any suspicion.
func (g *Core) leave(ev proto.Event, buf *proto.CommandBuf) {
	if !g.started || g.left {
		return
	}
	g.left = true
	g.enqueue(g.local, stDead, g.inc[g.local])
	buf.Put(proto.TraceLeaveRequested())
	buf.Put(proto.NotifyView(g.members.Remove(g.local), 0, true))
}

// tick opens a protocol period: resolve a probe the previous period left
// hanging, pick the next round-robin target, ping it.
func (g *Core) tick(now sim.Time, buf *proto.CommandBuf) {
	if g.probing {
		// Period ended with the probe unresolved (only reachable when the
		// binding delays the ack alarm past the period): count it failed.
		g.probeFailed(now, buf)
	}
	if t, ok := g.nextTarget(); ok {
		g.probeSeq = (g.probeSeq + 1) & 0x0F
		g.probing, g.indirect, g.target = true, false, t
		g.sendMsg(kindPing, g.probeSeq, t, g.local, buf)
		buf.Put(proto.SetTimer(proto.TimerGossipAck, sim.Duration(g.cfg.AckTimeout)))
	}
	buf.Put(proto.SetTimer(proto.TimerGossipTick, sim.Duration(g.cfg.Period)))
}

// nextTarget scans the id space round-robin for the next probeable member.
func (g *Core) nextTarget() (can.NodeID, bool) {
	cand := g.members.Remove(g.local)
	if cand.Empty() {
		return 0, false
	}
	for i := 1; i <= can.MaxNodes; i++ {
		n := can.NodeID((int(g.nextIdx) + i) % can.MaxNodes)
		if cand.Contains(n) {
			g.nextIdx = uint8(n)
			return n, true
		}
	}
	return 0, false
}

// ackExpired advances the probe state machine: direct wait → indirect
// wait → suspicion.
func (g *Core) ackExpired(now sim.Time, buf *proto.CommandBuf) {
	if !g.probing {
		return // stale alarm: the ack arrived first
	}
	if !g.indirect {
		g.indirect = true
		relays := g.members.Remove(g.local).Remove(g.target)
		for k := 0; k < g.cfg.Fanout && !relays.Empty(); k++ {
			r := relays.Lowest()
			relays = relays.Remove(r)
			g.sendMsg(kindPingReq, g.probeSeq, r, g.target, buf)
		}
		// Retry the direct path alongside the relays: one lost datagram
		// must not be enough to put a suspicion in circulation.
		g.sendMsg(kindPing, g.probeSeq, g.target, g.local, buf)
		buf.Put(proto.SetTimer(proto.TimerGossipAck, sim.Duration(g.cfg.AckTimeout)))
		return
	}
	g.probeFailed(now, buf)
}

// probeFailed suspects the unresponsive target.
func (g *Core) probeFailed(now sim.Time, buf *proto.CommandBuf) {
	t := g.target
	g.probing = false
	g.applyUpdate(t, stSuspect, g.inc[t], now, buf)
}

// receive handles a gossip message addressed to this node.
func (g *Core) receive(ev proto.Event, buf *proto.CommandBuf) {
	kind, seq := ev.MID.Ref>>4, ev.MID.Ref&0x0F
	src := ev.MID.Src
	p := ev.Payload()
	aux, auxOK := can.NodeID(0), false
	if len(p) > 0 && can.NodeID(p[0]).Valid() {
		aux, auxOK = can.NodeID(p[0]), true
	}
	// A message from a node we confirmed dead is a contradiction worth
	// gossiping about: re-queue the death verdict so our reply carries it;
	// a live sender refutes with a higher incarnation and the false
	// removal heals (anti-entropy for drained update queues).
	if g.st[src] == stDead {
		g.enqueue(src, stDead, g.inc[src])
	}
	// Piggybacked updates apply first on every kind: an ack can carry the
	// very suspicion it refutes.
	refuted := false
	for i := 1; i+1 < len(p); i += 2 {
		n := can.NodeID(p[i] & 0x3F)
		st := p[i] >> 6
		if st == 0 || st > stDead || !n.Valid() {
			continue
		}
		if n == g.local && st != stAlive && !g.left {
			refuted = true
		}
		g.applyUpdate(n, st, p[i+1], ev.At, buf)
	}
	// A refutation must reach the node that voiced the claim, not only the
	// targets our rotation happens to visit next: if this exchange's reply
	// would not go back to src, send it one directly. The refutation entry
	// was just enqueued with a full budget, so it rides the piggyback.
	replyToSrc := kind == kindJoin || (kind == kindPing && (!auxOK || aux == src))
	if refuted && !replyToSrc {
		g.sendMsg(kindAck, seq, src, g.local, buf)
	}
	switch kind {
	case kindPing:
		// aux is the probe origin the ack must reach (the relay path of a
		// ping-req ends with the subject acking the origin directly).
		origin := src
		if auxOK {
			origin = aux
		}
		g.sendMsg(kindAck, seq, origin, g.local, buf)
	case kindAck:
		if g.probing && src == g.target && seq == g.probeSeq {
			g.probing = false
			buf.Put(proto.CancelTimer(proto.TimerGossipAck))
		}
	case kindPingReq:
		// Probe aux on src's behalf: forward a ping telling the subject to
		// ack src directly, echoing src's sequence number.
		if auxOK && aux != g.local {
			g.sendMsg(kindPing, seq, aux, src, buf)
		}
	case kindJoin:
		// Admit the joiner: its (re)join supersedes any prior lattice
		// point, and every current member's entry is re-queued so the
		// joiner learns the view from our next few piggybacks.
		next := g.inc[src]
		if g.st[src] != stNone && g.st[src] != stAlive {
			next++
		}
		g.applyUpdate(src, stAlive, next, ev.At, buf)
		for s := g.members; !s.Empty(); {
			n := s.Lowest()
			s = s.Remove(n)
			g.enqueue(n, g.st[n], g.inc[n])
		}
		g.sendMsg(kindAck, seq, src, g.local, buf)
	}
}

// supersedes reports whether (st, inc) advances node n's lattice point.
func (g *Core) supersedes(n can.NodeID, st, inc uint8) bool {
	cur := g.st[n]
	if cur == stNone {
		return true
	}
	if inc != g.inc[n] {
		return inc > g.inc[n]
	}
	return st > cur
}

// applyUpdate merges one membership update into the lattice, queues it for
// dissemination if it advanced, and emits view notifications on member-set
// changes. Updates about the local node are special: a suspicion or death
// claim is refuted by bumping our incarnation and gossiping alive.
func (g *Core) applyUpdate(n can.NodeID, st, inc uint8, now sim.Time, buf *proto.CommandBuf) {
	if n == g.local && st != stAlive && !g.left {
		if inc >= g.inc[g.local] {
			g.inc[g.local] = inc + 1
		}
		// Re-circulate the refutation even against a stale claim: the
		// claimer's copy of our alive update may have drained from every
		// queue, and an unanswered claim converts to a false removal.
		g.enqueue(g.local, stAlive, g.inc[g.local])
		return
	}
	if !g.supersedes(n, st, inc) {
		return
	}
	old := g.members
	g.st[n], g.inc[n] = st, inc
	switch st {
	case stAlive:
		g.members = g.members.Add(n)
		g.suspects = g.suspects.Remove(n)
		g.dead = g.dead.Remove(n)
	case stSuspect:
		g.members = g.members.Add(n)
		g.dead = g.dead.Remove(n)
		if !g.suspects.Contains(n) {
			g.suspects = g.suspects.Add(n)
			g.suspectAt[n] = now + sim.Time(g.cfg.SuspectTimeout)
			g.ensureSuspectScan(now, buf)
		}
	case stDead:
		g.members = g.members.Remove(n)
		g.suspects = g.suspects.Remove(n)
		g.dead = g.dead.Add(n)
		if g.probing && g.target == n {
			g.probing = false
			buf.Put(proto.CancelTimer(proto.TimerGossipAck))
		}
	}
	g.enqueue(n, st, inc)
	if g.members != old {
		buf.Put(proto.TraceViewChange(old, g.members))
		var failed can.NodeSet
		if st == stDead {
			failed = can.MakeSet(n)
		}
		buf.Put(proto.NotifyView(g.members, failed, false))
	}
}

// suspectScan confirms every suspicion whose timeout has expired and
// re-arms the scan at the earliest remaining expiry.
func (g *Core) suspectScan(now sim.Time, buf *proto.CommandBuf) {
	g.scanPending = false
	for s := g.suspects; !s.Empty(); {
		n := s.Lowest()
		s = s.Remove(n)
		if g.suspectAt[n] <= now {
			buf.Put(proto.TraceNodeFailed(n))
			g.applyUpdate(n, stDead, g.inc[n], now, buf)
		}
	}
	g.ensureSuspectScan(now, buf)
}

// ensureSuspectScan keeps the single suspicion alarm chasing the earliest
// armed expiry (the fd.Detector scan pattern): re-arm only when the
// earliest deadline moved ahead of the pending alarm.
func (g *Core) ensureSuspectScan(now sim.Time, buf *proto.CommandBuf) {
	earliest, any := sim.Time(0), false
	for s := g.suspects; !s.Empty(); {
		n := s.Lowest()
		s = s.Remove(n)
		if !any || g.suspectAt[n] < earliest {
			earliest, any = g.suspectAt[n], true
		}
	}
	if !any {
		if g.scanPending {
			g.scanPending = false
			buf.Put(proto.CancelTimer(proto.TimerGossipSuspect))
		}
		return
	}
	if g.scanPending && g.scanAt <= earliest {
		return
	}
	g.scanPending, g.scanAt = true, earliest
	d := earliest - now
	if d <= 0 {
		d = 1 // defensive: timer delays stay strictly positive
	}
	buf.Put(proto.SetTimer(proto.TimerGossipSuspect, sim.Duration(d)))
}

// enqueue refreshes node n's piggyback entry with a full send budget.
func (g *Core) enqueue(n can.NodeID, st, inc uint8) {
	if st == stNone {
		return
	}
	g.queue[n] = queueEntry{st: st, inc: inc, sends: uint8(g.cfg.Retransmit)}
}

// sendMsg emits one gossip message: kind and seq in the Ref, aux in
// payload[0], and as many queued membership updates as fit piggybacked
// behind it.
func (g *Core) sendMsg(kind, seq uint8, dest, aux can.NodeID, buf *proto.CommandBuf) {
	var p [can.MaxData]byte
	p[0] = byte(aux)
	w := 1
	for i := 0; i < can.MaxNodes && w+1 < len(p); i++ {
		n := (int(g.pbCursor) + i) % can.MaxNodes
		q := &g.queue[n]
		if q.sends == 0 {
			continue
		}
		q.sends--
		p[w] = byte(n) | q.st<<6
		p[w+1] = q.inc
		w += 2
	}
	g.pbCursor = (g.pbCursor + 1) % can.MaxNodes
	buf.Put(proto.SendData(can.GossipSign(dest, g.local, packRef(kind, seq)), p[:w]))
	g.msgs++
}
