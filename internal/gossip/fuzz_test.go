package gossip

// FuzzGossipCore drives the pure SWIM core through arbitrary valid event
// sequences. Because the core is sans-I/O, the fuzzer needs no substrate,
// scheduler or harness — just bytes decoded into events — and checks the
// structural invariants the runtime binding and the comparison study rely
// on:
//
//   - StepInto never panics on valid input.
//   - The local node stays in its own view until it leaves (refutation
//     defeats every suspicion or death claim about self).
//   - Suspects are members (suspicion is a degraded membership state, not
//     an exit), and the dead set is disjoint from the member set.
//   - The per-node lattice point (incarnation, state rank) never moves
//     backwards: stale gossip cannot resurrect an older view of a node.
//   - Every armed timer has a strictly positive delay (the binding would
//     otherwise busy-loop the scheduler).

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
	"canely/internal/sim"
)

func fuzzEvent(op, a, b byte) proto.Event {
	at := sim.Time(int64(a)) * sim.Time(time.Millisecond)
	src := can.NodeID(b % 8)
	kind := (a >> 4) & 0x07
	seq := a & 0x0F
	switch op % 8 {
	case 0:
		// Bootstrap view: arbitrary 8-node subset forced to contain the
		// local node 0.
		return proto.Event{Kind: proto.EvBootstrap, At: at, View: can.NodeSet(uint64(a)) | can.MakeSet(0)}
	case 1:
		return proto.Event{Kind: proto.EvJoin, At: at, View: can.NodeSet(uint64(b))}
	case 2:
		return proto.Event{Kind: proto.EvLeave, At: at}
	case 3:
		return proto.Event{Kind: proto.EvTimerFired, At: at, Timer: proto.TimerGossipTick}
	case 4:
		return proto.Event{Kind: proto.EvTimerFired, At: at, Timer: proto.TimerGossipAck}
	case 5:
		return proto.Event{Kind: proto.EvTimerFired, At: at, Timer: proto.TimerGossipSuspect}
	case 6:
		// A unicast gossip message to us: arbitrary kind (including the
		// undefined ones the dispatch must ignore), one piggyback entry.
		ev := proto.Event{Kind: proto.EvDataInd, At: at, MID: can.GossipSign(0, src, packRef(kind, seq))}
		return ev.WithPayload([]byte{b, a, b})
	case 7:
		// Sometimes misaddressed (dest 1) — the core must ignore those.
		ev := proto.Event{Kind: proto.EvDataInd, At: at, MID: can.GossipSign(can.NodeID(b%2), src, packRef(kind, seq))}
		return ev.WithPayload([]byte{b % 8, b, a, a, b})
	}
	panic("unreachable")
}

func FuzzGossipCore(f *testing.F) {
	f.Add([]byte{0, 7, 1, 3, 20, 0, 6, 0x21, 1})                   // bootstrap, tick, ack
	f.Add([]byte{1, 6, 2, 3, 20, 0, 4, 25, 0, 5, 200, 0})          // join, probe, timeouts
	f.Add([]byte{0, 255, 7, 6, 0x12, 0x82, 6, 0x13, 0xC2, 2, 9, 0}) // suspicion, death, leave
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := New(0, Config{
			Period:         20 * time.Millisecond,
			AckTimeout:     5 * time.Millisecond,
			SuspectTimeout: 120 * time.Millisecond,
			Fanout:         2,
			Retransmit:     3,
		})
		if err != nil {
			t.Fatal(err)
		}
		var prevSt, prevInc [can.MaxNodes]uint8
		for i := 0; i+2 < len(data); i += 3 {
			ev := fuzzEvent(data[i], data[i+1], data[i+2])
			cmds := g.Step(ev)

			if !g.left && !g.View().Contains(0) {
				t.Fatalf("event %v evicted the local node from its own view", ev)
			}
			if bad := g.Suspects() &^ g.View(); bad != 0 {
				t.Fatalf("suspects %v outside the member set %v", bad, g.View())
			}
			if bad := g.Dead() & g.View(); bad != 0 {
				t.Fatalf("nodes %v both dead and members", bad)
			}
			for n := 0; n < can.MaxNodes; n++ {
				if g.inc[n] < prevInc[n] ||
					(g.inc[n] == prevInc[n] && g.st[n] < prevSt[n]) {
					t.Fatalf("event %v moved node %d backwards in the lattice: (%d,%d) -> (%d,%d)",
						ev, n, prevInc[n], prevSt[n], g.inc[n], g.st[n])
				}
				prevSt[n], prevInc[n] = g.st[n], g.inc[n]
			}
			for _, c := range cmds {
				if c.Kind == proto.CmdSetTimer && c.Delay <= 0 {
					t.Fatalf("non-positive timer delay in %v", c)
				}
			}
		}
	})
}
