package gossip

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
	"canely/internal/datagram"
	simtime "canely/internal/sim"
)

func testConfig() Config {
	return Config{
		Period:         20 * time.Millisecond,
		AckTimeout:     5 * time.Millisecond,
		SuspectTimeout: 120 * time.Millisecond,
		Fanout:         2,
		Retransmit:     4,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Period = 0 },
		func(c *Config) { c.AckTimeout = 0 },
		func(c *Config) { c.AckTimeout = c.Period }, // 2×Ack > Period
		func(c *Config) { c.SuspectTimeout = -1 },
		func(c *Config) { c.Fanout = 0 },
		func(c *Config) { c.Retransmit = 0 },
	}
	for i, mut := range bad {
		c := testConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// TestBootstrapSteadyState: a bootstrapped cluster with lossless links
// keeps its view forever — probes are acked, nobody is ever suspected.
func TestBootstrapSteadyState(t *testing.T) {
	nw, err := NewNetwork(NetworkConfig{Nodes: 4, Core: testConfig(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	all := can.NodeSet(0b1111)
	nw.Bootstrap(all)
	nw.RunFor(2 * time.Second)
	for id := can.NodeID(0); id < 4; id++ {
		c := nw.Core(id)
		if c.View() != all {
			t.Errorf("node %v view %v, want %v", id, c.View(), all)
		}
		if !c.Suspects().Empty() || !c.Dead().Empty() {
			t.Errorf("node %v has residue: suspects=%v dead=%v", id, c.Suspects(), c.Dead())
		}
	}
}

// TestCrashDetection: survivors converge on the view without the crashed
// node within the analytic bound (probe rotation + probe + suspicion +
// dissemination periods).
func TestCrashDetection(t *testing.T) {
	cfg := testConfig()
	nw, err := NewNetwork(NetworkConfig{Nodes: 4, Core: cfg, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	all := can.NodeSet(0b1111)
	nw.Bootstrap(all)
	nw.RunFor(200 * time.Millisecond)
	nw.Crash(3)
	// Worst case: every survivor rotates through 3 targets before probing
	// node 3, the probe burns one period, suspicion one timeout, and the
	// confirm gossips around within a few more periods.
	nw.RunFor(8*cfg.Period + cfg.SuspectTimeout + 100*time.Millisecond)
	want := can.NodeSet(0b0111)
	for id := can.NodeID(0); id < 3; id++ {
		c := nw.Core(id)
		if c.View() != want {
			t.Errorf("node %v view %v, want %v", id, c.View(), want)
		}
		if !c.Dead().Contains(3) {
			t.Errorf("node %v never confirmed node 3 dead", id)
		}
	}
}

// TestJoinIntroduction: a joiner admitted through seed contacts converges
// on the full view, and the incumbents admit it.
func TestJoinIntroduction(t *testing.T) {
	nw, err := NewNetwork(NetworkConfig{Nodes: 3, Core: testConfig(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	boot := can.NodeSet(0b011)
	nw.Bootstrap(boot)
	nw.RunFor(100 * time.Millisecond)
	nw.Join(2, boot)
	nw.RunFor(500 * time.Millisecond)
	want := can.NodeSet(0b111)
	for id := can.NodeID(0); id < 3; id++ {
		if got := nw.Core(id).View(); got != want {
			t.Errorf("node %v view %v, want %v", id, got, want)
		}
	}
}

// TestLossyConvergence: under 10% per-link loss the cluster detects a
// real crash and refutation heals every false suspicion — the survivors
// reach the correct common view. Loss keeps injecting transient false
// suspicions forever, so the assertion is eventual convergence (a polled
// snapshot where all views agree), not stability at a fixed instant.
func TestLossyConvergence(t *testing.T) {
	for _, seed := range []int64{4, 10, 15} {
		cfg := testConfig()
		nw, err := NewNetwork(NetworkConfig{
			Nodes: 8, Core: cfg, Seed: seed,
			Link: datagram.LinkParams{Drop: 0.10, DelayMin: 100 * time.Microsecond, DelayJitter: 400 * time.Microsecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		all := can.NodeSet(0xFF)
		nw.Bootstrap(all)
		nw.RunFor(1 * time.Second)
		nw.Crash(5)
		want := all.Remove(5)
		converged := false
		for i := 0; i < 100 && !converged; i++ {
			nw.RunFor(100 * time.Millisecond)
			converged = true
			for id := can.NodeID(0); id < 8; id++ {
				if id != 5 && nw.Core(id).View() != want {
					converged = false
				}
			}
		}
		if !converged {
			t.Errorf("seed %d: survivors never converged on %v within 10s", seed, want)
			for id := can.NodeID(0); id < 8; id++ {
				if id != 5 {
					t.Logf("  node %v view %v", id, nw.Core(id).View())
				}
			}
		}
	}
}

// TestRefutation: a core that learns it is suspected bumps its incarnation
// and gossips alive(self, inc').
func TestRefutation(t *testing.T) {
	g, err := New(1, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.Step(proto.Event{Kind: proto.EvBootstrap, View: can.NodeSet(0b111)})
	if g.Incarnation(1) != 0 {
		t.Fatalf("fresh incarnation %d, want 0", g.Incarnation(1))
	}
	// Piggyback suspect(n1, inc 0) on a ping from node 0.
	ev := proto.Event{Kind: proto.EvDataInd, At: 1, MID: can.GossipSign(1, 0, packRef(kindPing, 3))}
	ev = ev.WithPayload([]byte{0, 1 | stSuspect<<6, 0})
	cmds := g.Step(ev)
	if g.Incarnation(1) != 1 {
		t.Fatalf("suspected core has incarnation %d, want 1 (refuted)", g.Incarnation(1))
	}
	if g.Suspects().Contains(1) || !g.View().Contains(1) {
		t.Fatal("core suspected itself")
	}
	// The refutation must ride the very ack answering the ping.
	found := false
	for _, c := range cmds {
		if c.Kind != proto.CmdSendData {
			continue
		}
		p := c.Payload()
		for i := 1; i+1 < len(p); i += 2 {
			if p[i] == 1|stAlive<<6 && p[i+1] == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("refutation alive(n1, inc 1) not piggybacked on the ack")
	}
}

// TestDeadStaysDeadSameIncarnation: once confirmed dead, alive updates at
// the same incarnation cannot resurrect a node; a higher incarnation can.
func TestDeadStaysDeadSameIncarnation(t *testing.T) {
	g, err := New(0, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	g.Step(proto.Event{Kind: proto.EvBootstrap, View: can.NodeSet(0b111)})
	feed := func(at simtime.Time, upd ...byte) {
		ev := proto.Event{Kind: proto.EvDataInd, At: at, MID: can.GossipSign(0, 1, packRef(kindPing, 1))}
		g.Step(ev.WithPayload(append([]byte{1}, upd...)))
	}
	feed(1, 2|stDead<<6, 0)
	if g.View().Contains(2) || !g.Dead().Contains(2) {
		t.Fatal("dead update ignored")
	}
	feed(2, 2|stAlive<<6, 0)
	if g.View().Contains(2) {
		t.Fatal("alive at the dead incarnation resurrected node 2")
	}
	feed(3, 2|stAlive<<6, 1)
	if !g.View().Contains(2) || g.Dead().Contains(2) {
		t.Fatal("alive at a higher incarnation failed to resurrect node 2")
	}
}

// TestAttachAfterTrafficStarts pins the Attach-after-start half of the
// Medium contract on the gossip binding's substrate: a late port simply
// misses earlier traffic.
func TestAttachAfterTrafficStarts(t *testing.T) {
	nw, err := NewNetwork(NetworkConfig{Nodes: 3, Core: testConfig(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	nw.Bootstrap(can.NodeSet(0b011))
	nw.RunFor(100 * time.Millisecond)
	late := nw.Net.Attach(9)
	if !late.Alive() {
		t.Fatal("late attachment not alive")
	}
	if late.RxSuccesses() != 0 {
		t.Fatal("late attachment observed traffic from before it existed")
	}
}
