package gossip

import (
	"fmt"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/core/proto"
	"canely/internal/datagram"
	"canely/internal/sim"
)

// NetworkConfig parameterizes a simulated gossip cluster.
type NetworkConfig struct {
	// Nodes is the cluster size (ids 0..Nodes-1), at most can.MaxNodes.
	Nodes int
	// Core parameterizes every node's SWIM core.
	Core Config
	// Rate is the per-interface serialization rate.
	Rate can.BitRate
	// Link is the loss/delay/duplication distribution of every link.
	Link datagram.LinkParams
	// Seed roots the network's sampling streams.
	Seed int64
}

// Network binds n gossip cores to a shared datagram substrate: the runtime
// harness the gossip integration tests and small-scale experiments run on,
// playing the role internal/stack plays for the CANELy cores. The binding
// owns only alarm machinery and command execution; all protocol state is
// in the cores.
type Network struct {
	Sched *sim.Scheduler
	Net   *datagram.Net
	nodes []*boundNode
}

// The binding receives indications through the controller handler.
var _ bus.Handler = (*boundNode)(nil)

// boundNode is one core's runtime binding.
type boundNode struct {
	nw     *Network
	id     can.NodeID
	core   *Core
	port   *datagram.Port
	timers [proto.NumTimers]sim.Event
	buf    proto.CommandBuf
}

// NewNetwork builds the cluster. Nodes start idle: drive them with
// Bootstrap and Join, then run the scheduler.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.Nodes < 2 || cfg.Nodes > can.MaxNodes {
		return nil, fmt.Errorf("gossip: cluster size %d outside [2,%d]", cfg.Nodes, can.MaxNodes)
	}
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	sched := sim.NewScheduler()
	nw := &Network{
		Sched: sched,
		Net:   datagram.New(sched, datagram.Config{Rate: cfg.Rate, Seed: cfg.Seed, Link: cfg.Link}),
	}
	for i := 0; i < cfg.Nodes; i++ {
		id := can.NodeID(i)
		core, err := New(id, cfg.Core)
		if err != nil {
			return nil, err
		}
		n := &boundNode{nw: nw, id: id, core: core, port: nw.Net.Attach(id)}
		n.port.SetHandler(n)
		nw.nodes = append(nw.nodes, n)
	}
	return nw, nil
}

// Core returns node id's protocol core (read-only inspection).
func (nw *Network) Core(id can.NodeID) *Core { return nw.nodes[id].core }

// Bootstrap installs the initial view at every member of view.
func (nw *Network) Bootstrap(view can.NodeSet) {
	for s := view; !s.Empty(); {
		id := s.Lowest()
		s = s.Remove(id)
		nw.nodes[id].step(proto.Event{Kind: proto.EvBootstrap, At: nw.Sched.Now(), View: view})
	}
}

// Join starts node id as a joiner through the seed contacts.
func (nw *Network) Join(id can.NodeID, contacts can.NodeSet) {
	nw.nodes[id].step(proto.Event{Kind: proto.EvJoin, At: nw.Sched.Now(), View: contacts})
}

// Crash fail-silences node id.
func (nw *Network) Crash(id can.NodeID) {
	n := nw.nodes[id]
	n.port.Crash()
	for i := range n.timers {
		n.timers[i].Cancel()
	}
}

// RunFor advances the cluster by d of virtual time.
func (nw *Network) RunFor(d time.Duration) { nw.Sched.RunFor(sim.Duration(d)) }

// OnFrame implements bus.Handler: a delivered frame becomes EvDataInd.
func (n *boundNode) OnFrame(f can.Frame, own bool) {
	if own || f.RTR {
		return
	}
	mid, err := can.DecodeMID(f.ID)
	if err != nil || mid.Type != can.TypeGossip {
		return
	}
	ev := proto.Event{Kind: proto.EvDataInd, At: n.nw.Sched.Now(), MID: mid}
	n.step(ev.WithPayload(f.Payload()))
}

// OnConfirm implements bus.Handler (unused: datagram sends are
// fire-and-forget at this layer).
func (n *boundNode) OnConfirm(can.Frame) {}

// OnBusOff implements bus.Handler (unreachable: the datagram port has no
// fault confinement).
func (n *boundNode) OnBusOff() {}

// step feeds one event to the core and executes the resulting commands.
func (n *boundNode) step(ev proto.Event) {
	n.buf.Reset()
	n.core.StepInto(ev, &n.buf)
	for _, c := range n.buf.Commands() {
		switch c.Kind {
		case proto.CmdSendData:
			f := can.Frame{ID: c.MID.Encode()}
			f.SetPayload(c.Payload())
			_ = n.port.Request(f) // rejected only after a crash
		case proto.CmdSetTimer:
			n.timers[c.Timer].Cancel()
			id := c.Timer
			n.timers[c.Timer] = n.nw.Sched.After(c.Delay, func() {
				n.step(proto.Event{Kind: proto.EvTimerFired, At: n.nw.Sched.Now(), Timer: id})
			})
		case proto.CmdCancelTimer:
			n.timers[c.Timer].Cancel()
		}
	}
}
