package gossip

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
	"canely/internal/fptest"
	"canely/internal/sim"
)

func fpAt(ms int) sim.Time { return sim.Time(time.Duration(ms) * time.Millisecond) }

// fpScript drives one core (local node 0) through every state dimension
// the fingerprint must cover: view installation, probe machinery, the
// suspicion lattice, refutation, confirmation, withdrawal — interleaved
// with absorbed re-deliveries that must NOT perturb the hash.
func fpScript() []fptest.Step {
	ack := proto.Event{Kind: proto.EvDataInd, At: fpAt(21), MID: can.GossipSign(0, 1, packRef(kindAck, 1))}
	susp := proto.Event{Kind: proto.EvDataInd, At: fpAt(30), MID: can.GossipSign(0, 1, packRef(kindAck, 2))}
	ping := proto.Event{Kind: proto.EvDataInd, At: fpAt(35), MID: can.GossipSign(0, 1, packRef(kindPing, 2))}
	return []fptest.Step{
		{Name: "bootstrap", Ev: proto.Event{Kind: proto.EvBootstrap, At: fpAt(0), View: can.MakeSet(0, 1, 2)}, Mutates: true},
		{Name: "duplicate bootstrap absorbed", Ev: proto.Event{Kind: proto.EvBootstrap, At: fpAt(1), View: can.MakeSet(0, 1, 2, 3)}},
		{Name: "tick opens a probe", Ev: proto.Event{Kind: proto.EvTimerFired, At: fpAt(20), Timer: proto.TimerGossipTick}, Mutates: true},
		{Name: "ack resolves the probe", Ev: ack.WithPayload([]byte{1}), Mutates: true},
		{Name: "stale ack absorbed", Ev: ack.WithPayload([]byte{1})},
		{Name: "gossip suspects n2", Ev: susp.WithPayload([]byte{1, 2 | stSuspect<<6, 0}), Mutates: true},
		{Name: "same suspicion re-delivered", Ev: susp.WithPayload([]byte{1, 2 | stSuspect<<6, 0})},
		{Name: "claim about self refuted", Ev: ping.WithPayload([]byte{1, 0 | stSuspect<<6, 0}), Mutates: true},
		{Name: "suspicion expires to dead", Ev: proto.Event{Kind: proto.EvTimerFired, At: fpAt(200), Timer: proto.TimerGossipSuspect}, Mutates: true},
		{Name: "leave", Ev: proto.Event{Kind: proto.EvLeave, At: fpAt(210)}, Mutates: true},
	}
}

func fpFresh(t *testing.T) func() fptest.Core {
	return func() fptest.Core {
		g, err := New(0, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}

// TestGossipFingerprint: the fingerprint is a pure, complete function of
// the core's observable state — the property the exploration engine's
// state-hash pruning rests on.
func TestGossipFingerprint(t *testing.T) {
	fptest.Check(t, fpFresh(t), fpScript())
}

// TestGossipClone: a clone taken at any split point hashes identically,
// tracks the reference trajectory, and never aliases its original — the
// property checkpoint-and-branch exploration rests on.
func TestGossipClone(t *testing.T) {
	fptest.CheckClone(t, fpFresh(t), func(c fptest.Core) fptest.Core {
		return c.(*Core).Clone()
	}, fpScript())
}
