package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MetricReport is the aggregate of one metric at one grid point.
type MetricReport struct {
	Name string `json:"name"`
	Agg  Agg    `json:"agg"`
}

// PointReport summarizes all runs of one grid point.
type PointReport struct {
	Labels []Label `json:"labels,omitempty"`
	Runs   int     `json:"runs"`
	Failed int     `json:"failed"`
	// Errors lists the distinct failure messages in first-occurrence order.
	Errors []string `json:"errors,omitempty"`
	// Metrics are sorted by name.
	Metrics []MetricReport `json:"metrics"`
}

// Key renders the point's grid coordinates, e.g. "tb=10ms,tm=50ms".
func (p PointReport) Key() string {
	if len(p.Labels) == 0 {
		return "(single point)"
	}
	parts := make([]string, len(p.Labels))
	for i, l := range p.Labels {
		parts[i] = l.String()
	}
	return strings.Join(parts, ",")
}

// Report is the statistical summary of a campaign: the exported artifact.
// It carries no wall-clock state, so two executions of the same spec
// produce byte-identical JSON regardless of worker count.
type Report struct {
	Name   string        `json:"name"`
	Axes   []string      `json:"axes,omitempty"`
	Seeds  int           `json:"seeds"`
	Runs   int           `json:"runs"`
	Failed int           `json:"failed"`
	Points []PointReport `json:"points"`
}

// Summarize reduces ordered run results to a Report. Results must be in run
// order, as returned by Runner.Run; aggregation is sequential, so the
// floating-point reductions are reproducible.
func Summarize(spec *Spec, runs []RunResult) *Report {
	rep := &Report{Name: spec.Name, Seeds: spec.seedsN(), Runs: len(runs)}
	for _, ax := range spec.Axes {
		rep.Axes = append(rep.Axes, ax.Name)
	}
	points := spec.Points()
	for pt := 0; pt < points; pt++ {
		pr := PointReport{}
		samples := map[string]*Sample{}
		for _, r := range runs {
			if r.Params.Point != pt {
				continue
			}
			if pr.Runs == 0 {
				pr.Labels = r.Params.Labels
			}
			pr.Runs++
			if r.Failed() {
				pr.Failed++
				rep.Failed++
				if !contains(pr.Errors, r.Err) {
					pr.Errors = append(pr.Errors, r.Err)
				}
				continue
			}
			// Metric names iterate a map, but each value lands in its own
			// accumulator, so the per-metric Add order stays the run order.
			for name, v := range r.Metrics {
				s := samples[name]
				if s == nil {
					s = &Sample{}
					samples[name] = s
				}
				s.Add(v)
			}
		}
		names := make([]string, 0, len(samples))
		for name := range samples {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			pr.Metrics = append(pr.Metrics, MetricReport{Name: name, Agg: samples[name].Summary()})
		}
		rep.Points = append(rep.Points, pr)
	}
	return rep
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// JSON renders the report as indented, deterministic JSON.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteCSV writes one row per (grid point, metric) with the axis values as
// leading columns.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{}, r.Axes...)
	header = append(header, "metric", "count", "failed", "mean", "min", "max", "p50", "p95", "p99", "ci95")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, p := range r.Points {
		for _, m := range p.Metrics {
			row := make([]string, 0, len(header))
			for _, l := range p.Labels {
				row = append(row, l.Value)
			}
			row = append(row, m.Name,
				strconv.Itoa(m.Agg.Count), strconv.Itoa(p.Failed),
				ftoa(m.Agg.Mean), ftoa(m.Agg.Min), ftoa(m.Agg.Max),
				ftoa(m.Agg.P50), ftoa(m.Agg.P95), ftoa(m.Agg.P99), ftoa(m.Agg.CI95))
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Table renders the report as a human-readable table.
func (r *Report) Table() string {
	keyW := len("point")
	for _, p := range r.Points {
		if n := len(p.Key()); n > keyW {
			keyW = n
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "campaign %q: %d runs (%d failed)\n", r.Name, r.Runs, r.Failed)
	fmt.Fprintf(&sb, "%-*s %-22s %6s %10s %10s %10s %10s %10s %10s\n",
		keyW, "point", "metric", "n", "mean", "p50", "p95", "p99", "max", "±ci95")
	for _, p := range r.Points {
		for _, m := range p.Metrics {
			a := m.Agg
			fmt.Fprintf(&sb, "%-*s %-22s %6d %10.4g %10.4g %10.4g %10.4g %10.4g %10.4g\n",
				keyW, p.Key(), m.Name, a.Count, a.Mean, a.P50, a.P95, a.P99, a.Max, a.CI95)
		}
		if p.Failed > 0 {
			fmt.Fprintf(&sb, "%-*s %d/%d runs failed: %s\n",
				keyW, p.Key(), p.Failed, p.Runs, strings.Join(p.Errors, "; "))
		}
	}
	return sb.String()
}
