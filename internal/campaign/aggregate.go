package campaign

import (
	"math"
	"sort"
)

// Sample is a mergeable statistical accumulator over float64 observations.
// It keeps the raw sample set (campaign metrics are a handful of floats per
// run, so memory is never the constraint) and reduces it to the summary the
// Report exports. Accumulation order is significant only in the last
// floating-point bits of the mean; Summarize always feeds samples in run
// order, which is what makes campaign aggregates byte-stable across worker
// counts.
type Sample struct {
	vals     []float64
	sum      float64
	min, max float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if len(s.vals) == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.sum += v
	s.vals = append(s.vals, v)
}

// Merge folds another accumulator into s, as if o's observations had been
// Added to s in order. Merging the same partitions in the same order yields
// identical summaries.
func (s *Sample) Merge(o *Sample) {
	for _, v := range o.vals {
		s.Add(v)
	}
}

// N returns the observation count.
func (s *Sample) N() int { return len(s.vals) }

// Mean returns the arithmetic mean, or 0 when empty.
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return s.sum / float64(len(s.vals))
}

// Min returns the smallest observation, or 0 when empty.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 when empty.
func (s *Sample) Max() float64 { return s.max }

// Quantile returns the q-quantile (0 <= q <= 1) of the sample set with
// linear interpolation between order statistics (the R-7 rule). It is safe
// on the empty set (0) and on a single sample (that sample).
func (s *Sample) Quantile(q float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted interpolates the q-quantile of an ascending non-empty
// slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two observations.
func (s *Sample) StdDev() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval of the mean: 1.96·s/√n. Zero for fewer than two observations.
func (s *Sample) CI95() float64 {
	n := len(s.vals)
	if n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(n))
}

// Agg is the exported summary of one metric at one grid point.
type Agg struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// CI95 is the half-width of the 95% confidence interval of the mean.
	CI95 float64 `json:"ci95"`
}

// Summary reduces the accumulator to its exported form.
func (s *Sample) Summary() Agg {
	if len(s.vals) == 0 {
		return Agg{}
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	return Agg{
		Count: s.N(),
		Mean:  s.Mean(),
		Min:   s.min,
		Max:   s.max,
		P50:   quantileSorted(sorted, 0.50),
		P95:   quantileSorted(sorted, 0.95),
		P99:   quantileSorted(sorted, 0.99),
		CI95:  s.CI95(),
	}
}

// MergeMetric accumulates one named metric across all successful runs, in
// run order — the campaign-wide distribution of a metric, ignoring grid
// point boundaries.
func MergeMetric(runs []RunResult, name string) *Sample {
	s := &Sample{}
	for _, r := range runs {
		if r.Failed() {
			continue
		}
		if v, ok := r.Metrics[name]; ok {
			s.Add(v)
		}
	}
	return s
}
