package campaign

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"canely"
	"canely/internal/sim"
)

// syntheticSpec is a cheap fully deterministic campaign: metrics derived
// from the run seed through the repository RNG. 2 axes × 500 seeds = 1000
// runs.
func syntheticSpec() *Spec {
	return &Spec{
		Name: "synthetic",
		Base: canely.DefaultConfig(),
		Axes: []Axis{{Name: "mode", Values: []AxisValue{
			{Label: "a", Value: 1.0},
			{Label: "b", Value: 2.0},
		}}},
		Seeds: SeedRange{Base: 7, N: 500},
		Run: func(p Params) (map[string]float64, error) {
			rng := sim.NewRNG(p.Seed)
			scale := p.Values[0].(float64)
			return map[string]float64{
				"x": scale * rng.Float64(),
				"y": float64(p.Trial%13) + rng.Float64(),
			}, nil
		},
	}
}

// TestAggregateJSONIdenticalAcrossWorkerCounts is the determinism
// acceptance criterion: a 1000-run campaign produces byte-identical
// aggregate JSON no matter how many workers executed it.
func TestAggregateJSONIdenticalAcrossWorkerCounts(t *testing.T) {
	spec := syntheticSpec()
	if spec.TotalRuns() < 1000 {
		t.Fatalf("campaign too small for the acceptance bar: %d runs", spec.TotalRuns())
	}
	var ref []byte
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		runner := Runner{Workers: workers}
		runs, err := runner.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := Summarize(spec, runs).JSON()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("aggregate JSON differs between 1 and %d workers", workers)
		}
	}
}

// TestRealSimulationDeterminism runs genuine CANELy crash simulations
// through the pool and checks worker-count independence end to end.
func TestRealSimulationDeterminism(t *testing.T) {
	spec := &Spec{
		Name: "real-crash",
		Base: canely.DefaultConfig(),
		Axes: []Axis{DurationAxis("tb",
			func(c *canely.Config, v time.Duration) { c.Tb = v },
			5*time.Millisecond, 10*time.Millisecond)},
		Seeds: SeedRange{Base: 1, N: 3},
		Run: func(p Params) (map[string]float64, error) {
			net := canely.NewNetwork(p.Config, 4)
			net.BootstrapAll()
			net.Run(30 * time.Millisecond)
			victim := canely.NodeID(p.Trial % 3)
			var detected time.Duration
			net.Node(3).OnChange(func(ch canely.Change) {
				if detected == 0 && ch.Failed.Contains(victim) {
					detected = net.Now()
				}
			})
			crashAt := net.Now()
			net.Node(victim).Crash()
			net.Run(p.Config.DetectionLatencyBound() + p.Config.Tm)
			if detected == 0 {
				return nil, fmt.Errorf("crash of %v not detected", victim)
			}
			return map[string]float64{"detection_ms": float64(detected-crashAt) / 1e6}, nil
		},
	}
	var ref []byte
	for _, workers := range []int{1, 3} {
		runner := Runner{Workers: workers}
		runs, err := runner.Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Summarize(spec, runs).JSON()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
		} else if !bytes.Equal(ref, got) {
			t.Fatalf("real-simulation JSON differs across worker counts:\n%s\nvs\n%s", ref, got)
		}
	}
	rep := Summarize(spec, mustRun(t, spec, 2))
	if rep.Failed != 0 {
		t.Fatalf("unexpected failed trials: %+v", rep)
	}
	for _, p := range rep.Points {
		if len(p.Metrics) != 1 || p.Metrics[0].Name != "detection_ms" {
			t.Fatalf("metrics = %+v", p.Metrics)
		}
		if a := p.Metrics[0].Agg; a.Count != 3 || a.Mean <= 0 || a.Max < a.P99 || a.P99 < a.P50 {
			t.Fatalf("implausible aggregate %+v", a)
		}
	}
}

func mustRun(t *testing.T, spec *Spec, workers int) []RunResult {
	t.Helper()
	runner := Runner{Workers: workers}
	runs, err := runner.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

// TestPanicIsolation: a panicking run becomes a failed trial, the campaign
// and its sibling runs complete.
func TestPanicIsolation(t *testing.T) {
	spec := syntheticSpec()
	inner := spec.Run
	spec.Run = func(p Params) (map[string]float64, error) {
		if p.Index == 137 {
			panic("boom")
		}
		if p.Index == 138 {
			return nil, fmt.Errorf("soft failure")
		}
		return inner(p)
	}
	runs := mustRun(t, spec, 8)
	if !runs[137].Failed() || !strings.Contains(runs[137].Err, "panic: boom") {
		t.Fatalf("run 137 = %+v", runs[137])
	}
	if !runs[138].Failed() || runs[138].Err != "soft failure" {
		t.Fatalf("run 138 = %+v", runs[138])
	}
	rep := Summarize(spec, runs)
	if rep.Failed != 2 {
		t.Fatalf("report failed = %d, want 2", rep.Failed)
	}
	ok := 0
	for _, r := range runs {
		if !r.Failed() {
			ok++
		}
	}
	if ok != len(runs)-2 {
		t.Fatalf("%d successful runs, want %d", ok, len(runs)-2)
	}
	// The point that hosts the failures records the distinct messages.
	pt := rep.Points[runs[137].Params.Point]
	if pt.Failed != 2 || len(pt.Errors) != 2 {
		t.Fatalf("point report = %+v", pt)
	}
}

// TestCancellation: a cancelled context stops the campaign with its error.
func TestCancellation(t *testing.T) {
	spec := syntheticSpec()
	ctx, cancel := context.WithCancel(context.Background())
	started := false
	inner := spec.Run
	spec.Run = func(p Params) (map[string]float64, error) {
		if !started {
			started = true
			cancel()
		}
		return inner(p)
	}
	runner := Runner{Workers: 1}
	if _, err := runner.Run(ctx, spec); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestProgressCallback(t *testing.T) {
	spec := syntheticSpec()
	spec.Seeds.N = 25
	var calls int
	var last int
	runner := Runner{Workers: 4, Progress: func(done, total int) {
		calls++
		last = done
		if total != spec.TotalRuns() {
			t.Errorf("total = %d, want %d", total, spec.TotalRuns())
		}
	}}
	if _, err := runner.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if calls != spec.TotalRuns() || last != spec.TotalRuns() {
		t.Fatalf("calls = %d, last = %d, want %d", calls, last, spec.TotalRuns())
	}
}

func TestSpecValidation(t *testing.T) {
	runner := Runner{}
	if _, err := runner.Run(context.Background(), &Spec{Name: "norun"}); err == nil {
		t.Fatal("spec without extractor accepted")
	}
	bad := syntheticSpec()
	bad.Axes = append(bad.Axes, Axis{Name: "empty"})
	if _, err := runner.Run(context.Background(), bad); err == nil {
		t.Fatal("empty axis accepted")
	}
}

// TestGridEnumeration pins the odometer order: last axis fastest,
// point-major run indexing, per-run config isolation.
func TestGridEnumeration(t *testing.T) {
	spec := &Spec{
		Name: "grid",
		Base: canely.DefaultConfig(),
		Axes: []Axis{
			DurationAxis("tb", func(c *canely.Config, v time.Duration) { c.Tb = v },
				5*time.Millisecond, 10*time.Millisecond),
			IntAxis("c", 0, 1, 20),
		},
		Seeds: SeedRange{Base: 100, N: 2},
		Run:   func(p Params) (map[string]float64, error) { return nil, nil },
	}
	if spec.Points() != 6 || spec.TotalRuns() != 12 {
		t.Fatalf("points=%d runs=%d", spec.Points(), spec.TotalRuns())
	}
	p := spec.params(0)
	if p.Point != 0 || p.Trial != 0 || p.Seed != 100 || p.Config.Seed != 100 {
		t.Fatalf("params(0) = %+v", p)
	}
	if p.Labels[0].String() != "tb=5ms" || p.Labels[1].String() != "c=0" {
		t.Fatalf("labels(0) = %v", p.Labels)
	}
	// Run 3 = point 1 (tb=5ms, c=1), trial 1.
	p = spec.params(3)
	if p.Point != 1 || p.Trial != 1 || p.Seed != 101 {
		t.Fatalf("params(3) = %+v", p)
	}
	if p.Labels[1].Value != "1" || p.Values[1].(int) != 1 {
		t.Fatalf("axis payload = %+v", p)
	}
	// Last run: tb=10ms, c=20.
	p = spec.params(11)
	if p.Config.Tb != 10*time.Millisecond || p.Values[1].(int) != 20 {
		t.Fatalf("params(11) = %+v", p)
	}
	if spec.Base.Tb != canely.DefaultConfig().Tb {
		t.Fatal("axis Apply leaked into the base config")
	}
}

func TestSampleMergeMatchesSequential(t *testing.T) {
	var seq, a, b Sample
	vals := []float64{5, 1, 4, 4, 8, 2, 0.5}
	for i, v := range vals {
		seq.Add(v)
		if i < 3 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Summary() != seq.Summary() {
		t.Fatalf("merged %+v != sequential %+v", a.Summary(), seq.Summary())
	}
	if a.N() != len(vals) || a.Min() != 0.5 || a.Max() != 8 {
		t.Fatalf("merged sample %+v", a.Summary())
	}
}

func TestSampleQuantiles(t *testing.T) {
	var empty Sample
	if empty.Quantile(0.5) != 0 || empty.Summary() != (Agg{}) {
		t.Fatal("empty sample must summarize to zeros")
	}
	var one Sample
	one.Add(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if one.Quantile(q) != 42 {
			t.Fatalf("one-sample quantile(%v) = %v", q, one.Quantile(q))
		}
	}
	if one.CI95() != 0 {
		t.Fatal("one-sample CI must be 0")
	}
	var s Sample
	for _, v := range []float64{10, 20, 30, 40} {
		s.Add(v)
	}
	if got := s.Quantile(0.5); got != 25 {
		t.Fatalf("p50 = %v, want 25 (interpolated)", got)
	}
	if got := s.Quantile(0.25); got != 17.5 {
		t.Fatalf("p25 = %v, want 17.5", got)
	}
	if s.Quantile(0) != 10 || s.Quantile(1) != 40 {
		t.Fatal("extreme quantiles must hit min/max")
	}
	if math.Abs(s.CI95()-1.96*s.StdDev()/2) > 1e-12 {
		t.Fatalf("ci95 = %v", s.CI95())
	}
}

func TestMergeMetric(t *testing.T) {
	runs := []RunResult{
		{Metrics: map[string]float64{"x": 1}},
		{Err: "failed"},
		{Metrics: map[string]float64{"x": 3, "y": 9}},
	}
	s := MergeMetric(runs, "x")
	if s.N() != 2 || s.Mean() != 2 {
		t.Fatalf("merged x: n=%d mean=%v", s.N(), s.Mean())
	}
}

// TestSchedulerPoolingTransparent: runs executed through the worker pool
// (which injects a reused, Reset scheduler per worker) must produce exactly
// the metrics of the same extractor invoked standalone on a fresh scheduler,
// and the retained results must not leak the pooled scheduler out of the
// worker (Params.Config.Scheduler stays as the spec derived it: nil).
func TestSchedulerPoolingTransparent(t *testing.T) {
	spec := &Spec{
		Name:  "pool-transparent",
		Base:  canely.DefaultConfig(),
		Seeds: SeedRange{Base: 7, N: 8},
		Run: func(p Params) (map[string]float64, error) {
			net := canely.NewNetwork(p.Config, 5)
			net.BootstrapAll()
			net.Run(200 * time.Millisecond)
			net.Node(2).Crash()
			net.Run(p.Config.DetectionLatencyBound() + p.Config.Tm)
			m := net.Node(0).View()
			return map[string]float64{"members": float64(m.Count())}, nil
		},
	}
	runs := mustRun(t, spec, 2)
	for _, res := range runs {
		if res.Failed() {
			t.Fatalf("run %d failed: %s", res.Params.Index, res.Err)
		}
		if res.Params.Config.Scheduler != nil {
			t.Fatalf("run %d retained the pooled scheduler in its Params", res.Params.Index)
		}
		fresh, err := spec.Run(res.Params) // Scheduler nil: standalone, unpooled
		if err != nil {
			t.Fatalf("standalone rerun %d: %v", res.Params.Index, err)
		}
		if len(fresh) != len(res.Metrics) || fresh["members"] != res.Metrics["members"] {
			t.Fatalf("run %d: pooled metrics %v != fresh metrics %v",
				res.Params.Index, res.Metrics, fresh)
		}
	}
}
