package campaign

import "time"

// QoS is the per-run quality-of-service sample of an unreliable failure
// detector, after the usual QoS vocabulary (Chen/Toueg; Duarte et al. in
// PAPERS.md): how fast a real crash is detected, how often the detector is
// wrong, and whether the membership views of correct nodes diverged.
type QoS struct {
	// Detected reports whether the injected crash was ever notified;
	// DetectionTime is the crash-to-notification latency and DetectedAt the
	// virtual instant of the notification (both meaningful only when
	// Detected).
	Detected      bool
	DetectionTime time.Duration
	DetectedAt    time.Duration
	// Mistakes counts failure notifications for nodes that had not crashed
	// (premature or wrong suspicions).
	Mistakes int
	// AgreementViolations counts correct member nodes whose final view
	// disagrees with the observer's.
	AgreementViolations int
}

// Metrics reduces the sample to campaign metrics. DetectionTime is exported
// in milliseconds only for detected crashes, so undetected runs do not drag
// the latency distribution to zero; "detected" carries the hit rate.
func (q QoS) Metrics() map[string]float64 {
	m := map[string]float64{
		"detected":             boolToFloat(q.Detected),
		"mistakes":             float64(q.Mistakes),
		"agreement_violations": float64(q.AgreementViolations),
	}
	if q.Detected {
		m["detection_ms"] = float64(q.DetectionTime) / 1e6
	}
	return m
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
