// Package campaign is a parallel Monte-Carlo simulation-campaign engine.
//
// A campaign fans a parameter grid × seed sweep × fault-plan matrix out into
// many independent CANELy simulations. Each run stays single-threaded and
// bit-reproducible — the parallelism is *across* runs, scaling with
// GOMAXPROCS — and the per-run results are reduced to mergeable statistical
// aggregates (count/mean/min/max, interpolated quantiles, 95% confidence
// intervals) that are byte-identical regardless of how many workers executed
// the campaign or in which order the runs completed.
//
// The moving parts:
//
//   - Spec declares the campaign: a base canely.Config, grid Axes that
//     mutate it (heartbeat periods, fault plans, …), a SeedRange swept at
//     every grid point, and a per-run extractor func returning named
//     metrics.
//   - Runner executes the runs on a bounded worker pool with context
//     cancellation, per-run panic isolation (a panicking run is recorded as
//     a failed trial, not a crashed campaign) and progress callbacks.
//   - Summarize reduces the ordered run results to a Report; the Report
//     exports as JSON, CSV and a human table.
//
// Determinism contract: the extractor must build all simulation state
// (networks, fault scripts) from its Params alone — runs share nothing, so
// the result of run i never depends on scheduling. Stateful injectors such
// as *fault.Script must be constructed inside an AxisValue.Apply or inside
// the extractor, never shared through Spec.Base.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"canely"
	"canely/internal/sim"
)

// Label is one axis coordinate of a grid point, e.g. {"tb", "10ms"}.
type Label struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
}

func (l Label) String() string { return l.Axis + "=" + l.Value }

// AxisValue is one value on a grid axis. Apply (optional) mutates the run's
// configuration; Value (optional) is an opaque payload the extractor can
// read through Params.Values — the escape hatch for workload parameters
// (churn counts, network sizes) that live outside canely.Config. Apply is
// invoked once per run on that run's private Config copy, so it is the
// right place to build per-run stateful fault scripts.
type AxisValue struct {
	Label string
	Apply func(*canely.Config)
	Value any
}

// Axis is one dimension of the parameter grid.
type Axis struct {
	Name   string
	Values []AxisValue
}

// DurationAxis builds an axis over a time.Duration configuration knob.
func DurationAxis(name string, apply func(*canely.Config, time.Duration), vals ...time.Duration) Axis {
	ax := Axis{Name: name}
	for _, v := range vals {
		v := v
		ax.Values = append(ax.Values, AxisValue{
			Label: v.String(),
			Apply: func(c *canely.Config) { apply(c, v) },
			Value: v,
		})
	}
	return ax
}

// FloatAxis builds an axis over a float64 configuration knob (e.g. fault
// probabilities).
func FloatAxis(name string, apply func(*canely.Config, float64), vals ...float64) Axis {
	ax := Axis{Name: name}
	for _, v := range vals {
		v := v
		ax.Values = append(ax.Values, AxisValue{
			Label: fmt.Sprintf("%g", v),
			Apply: func(c *canely.Config) { apply(c, v) },
			Value: v,
		})
	}
	return ax
}

// IntAxis builds a workload axis over plain integers, carried to the
// extractor through Params.Values without touching the configuration.
func IntAxis(name string, vals ...int) Axis {
	ax := Axis{Name: name}
	for _, v := range vals {
		ax.Values = append(ax.Values, AxisValue{Label: fmt.Sprintf("%d", v), Value: v})
	}
	return ax
}

// SeedRange is the seed sweep applied at every grid point: seeds
// Base..Base+N-1. Every grid point sees the same seeds, which pairs the
// comparison across points.
type SeedRange struct {
	Base int64
	N    int
}

// Params is the full parameterization of one run, derived deterministically
// from the run index alone.
type Params struct {
	// Index is the global run index in 0..TotalRuns-1; Point and Trial are
	// its decomposition into grid point and seed position.
	Index int
	Point int
	Trial int
	// Seed is the simulation seed, already installed in Config.Seed.
	Seed int64
	// Config is this run's private configuration copy: base config with the
	// grid point's axis values applied.
	Config canely.Config
	// Labels and Values mirror the grid point's axis coordinates (Values
	// holds the AxisValue.Value payloads, one per axis, possibly nil).
	Labels []Label
	Values []any
}

// Extractor runs one simulation and reduces it to named metrics. A nil map
// with a nil error is allowed (a run that contributes no samples). Errors
// and panics are recorded as failed trials.
type Extractor func(p Params) (map[string]float64, error)

// Spec declares a campaign.
type Spec struct {
	// Name tags the exported artifacts.
	Name string
	// Base is the configuration every run starts from. It must not carry
	// shared mutable state (see the package determinism contract).
	Base canely.Config
	// Axes span the parameter grid; an empty grid is a single point.
	Axes []Axis
	// Seeds is the per-point seed sweep; N defaults to 1.
	Seeds SeedRange
	// Run is the per-run extractor.
	Run Extractor
}

// Points returns the number of grid points (product of axis sizes).
func (s *Spec) Points() int {
	n := 1
	for _, ax := range s.Axes {
		n *= len(ax.Values)
	}
	return n
}

func (s *Spec) seedsN() int {
	if s.Seeds.N <= 0 {
		return 1
	}
	return s.Seeds.N
}

// TotalRuns returns the campaign size: grid points × seeds.
func (s *Spec) TotalRuns() int { return s.Points() * s.seedsN() }

// validate rejects malformed specs before any worker starts.
func (s *Spec) validate() error {
	if s.Run == nil {
		return fmt.Errorf("campaign: spec %q has no extractor", s.Name)
	}
	for _, ax := range s.Axes {
		if len(ax.Values) == 0 {
			return fmt.Errorf("campaign: axis %q has no values", ax.Name)
		}
	}
	return nil
}

// params derives run i's full parameterization. Runs are enumerated
// point-major (all seeds of point 0, then point 1, …) and points odometer
// style with the last axis fastest.
func (s *Spec) params(i int) Params {
	seeds := s.seedsN()
	p := Params{Index: i, Point: i / seeds, Trial: i % seeds}
	p.Seed = s.Seeds.Base + int64(p.Trial)
	p.Config = s.Base
	if len(s.Axes) > 0 {
		idx := make([]int, len(s.Axes))
		rem := p.Point
		for a := len(s.Axes) - 1; a >= 0; a-- {
			n := len(s.Axes[a].Values)
			idx[a] = rem % n
			rem /= n
		}
		p.Labels = make([]Label, len(s.Axes))
		p.Values = make([]any, len(s.Axes))
		for a, ax := range s.Axes {
			v := ax.Values[idx[a]]
			p.Labels[a] = Label{Axis: ax.Name, Value: v.Label}
			p.Values[a] = v.Value
			if v.Apply != nil {
				v.Apply(&p.Config)
			}
		}
	}
	p.Config.Seed = p.Seed
	return p
}

// RunResult is the outcome of one run.
type RunResult struct {
	Params  Params
	Metrics map[string]float64
	// Err is non-empty for a failed trial: an extractor error or a
	// recovered panic.
	Err string
}

// Failed reports whether the run is a failed trial.
func (r RunResult) Failed() bool { return r.Err != "" }

// execute runs one trial with panic isolation. sched, when non-nil, is the
// worker's pooled scheduler: it is handed to the extractor through
// Params.Config.Scheduler so canely.NewNetwork resets and reuses its arena
// instead of growing a fresh one per run. The retained result keeps
// Config.Scheduler as derived from the spec (normally nil), so results are
// byte-identical whether or not pooling was in effect.
func (s *Spec) execute(i int, sched *sim.Scheduler) (res RunResult) {
	res.Params = s.params(i)
	defer func() {
		if r := recover(); r != nil {
			res.Metrics = nil
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()
	p := res.Params
	if sched != nil {
		p.Config.Scheduler = sched
	}
	m, err := s.Run(p)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Metrics = m
	return res
}

// Runner executes campaigns on a bounded worker pool.
type Runner struct {
	// Workers bounds the concurrent runs; <= 0 means GOMAXPROCS.
	Workers int
	// Progress, if set, is called after every completed run with the number
	// of runs done so far and the campaign total. Calls are serialized but
	// arrive in completion order, which depends on scheduling. Setting it
	// puts a shared mutex on the completion path; throughput benchmarks
	// leave it nil.
	Progress func(done, total int)
	// WorkerRuns, after Run returns, holds how many runs each worker
	// executed — the load-balance diagnostic behind the throughput numbers
	// in BENCH_campaign.json.
	WorkerRuns []int
}

// workerScratch is one worker's private hot state: the pooled scheduler its
// runs reuse and its completed-run counter. Padded to 128 bytes — two cache
// lines — so slice-adjacent workers never write-share a line even through
// the adjacent-line spatial prefetcher: with the old design every completed
// run touched cross-worker shared state (an unbuffered channel handoff plus
// a progress mutex), which flattened worker scaling on multi-core hosts.
type workerScratch struct {
	sched *sim.Scheduler
	runs  int64
	_     [112]byte
}

// Run executes every run of the spec and returns the results ordered by run
// index — the ordering (and therefore every aggregate computed from it) is
// independent of worker count and completion order. On context
// cancellation the workers stop claiming further runs, finish the run in
// flight, and Run returns ctx.Err().
//
// Work distribution is chunked claiming off an atomic cursor: a worker
// grabs a span of consecutive run indices at a time, so the per-run cost of
// synchronization is one padded-counter bump and 1/chunk-th of an atomic
// add, with no channel handoff. Runs within a chunk share grid-point cache
// locality (runs are enumerated point-major), and the chunk size caps at a
// small fraction of total/workers so tail imbalance stays bounded.
//
// Each worker owns one arena-backed scheduler for its whole lifetime,
// injected into every run through Config.Scheduler (see execute): after the
// first few runs the arena has grown to the campaign's peak live-event
// population and run churn stops touching the allocator, which is what
// keeps the w1→wN ladder off the allocator's shared locks.
func (r *Runner) Run(ctx context.Context, spec *Spec) ([]RunResult, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := spec.TotalRuns()
	if workers > total {
		workers = total
	}
	chunk := total / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 64 {
		chunk = 64
	}
	results := make([]RunResult, total)
	scratch := make([]workerScratch, workers)
	var (
		cursor  atomic.Int64
		skipped atomic.Bool
		wg      sync.WaitGroup
		mu      sync.Mutex
		done    int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ws *workerScratch) {
			defer wg.Done()
			ws.sched = sim.NewScheduler()
			for {
				if ctx.Err() != nil {
					skipped.Store(true)
					return
				}
				start := int(cursor.Add(int64(chunk))) - chunk
				if start >= total {
					return
				}
				end := start + chunk
				if end > total {
					end = total
				}
				for i := start; i < end; i++ {
					if ctx.Err() != nil {
						skipped.Store(true)
						return
					}
					results[i] = spec.execute(i, ws.sched)
					ws.runs++
					if r.Progress != nil {
						mu.Lock()
						done++
						r.Progress(done, total)
						mu.Unlock()
					}
				}
			}
		}(&scratch[w])
	}
	wg.Wait()
	r.WorkerRuns = make([]int, workers)
	for w := range scratch {
		r.WorkerRuns[w] = int(scratch[w].runs)
	}
	if skipped.Load() {
		return nil, ctx.Err()
	}
	return results, nil
}
