// Package canlayer implements the CAN standard layer interface of the paper
// (Figure 4): the transmit request primitives for data and remote frames
// (can-data.req, can-rtr.req), transmit confirmations (.cnf), arrival
// indications (.ind, own transmissions included), the abort service
// (can-abort.req) and — crucially for CANELy — the non-standard notification
// primitive can-data.nty, which signals the arrival of a data frame without
// delivering its payload. The notification primitive is what lets the node
// failure detector use ordinary application traffic as implicit heartbeats.
//
// A Layer multiplexes several protocol entities over one controller: each
// entity registers callbacks for the indications it consumes, mirroring the
// protocol stack of Figure 5.
package canlayer

import (
	"fmt"

	"canely/internal/bus"
	"canely/internal/can"
)

// Controller is the exposed CAN controller interface the layer drives. A
// bus.Port implements it directly; the media-redundancy layer
// (internal/redundancy) implements it over replicated ports, transparently
// to every protocol above.
type Controller interface {
	// ID returns the node identity of the controller.
	ID() can.NodeID
	// Request queues a frame for transmission.
	Request(f can.Frame) error
	// Abort cancels a pending transmit request for the identifier.
	Abort(id uint32) bool
	// PendingEquivalent reports whether a wire-equivalent transmit request
	// is already queued.
	PendingEquivalent(f can.Frame) bool
	// SetHandler installs the indication receiver.
	SetHandler(h bus.Handler)
}

// The canonical controller satisfies the interface.
var _ Controller = (*bus.Port)(nil)

// Layer adapts a Controller to the paper's service primitives.
type Layer struct {
	port Controller

	dataInd []func(mid can.MID, data []byte)
	rtrInd  []func(mid can.MID)
	dataNty []func(mid can.MID)
	dataCnf []func(mid can.MID)
	rtrCnf  []func(mid can.MID)
	busOff  []func()
}

// New wraps a controller. The layer installs itself as its handler.
func New(ctrl Controller) *Layer {
	if ctrl == nil {
		panic("canlayer: nil controller")
	}
	l := &Layer{port: ctrl}
	ctrl.SetHandler((*handler)(l))
	return l
}

// NodeID returns the local node identity.
func (l *Layer) NodeID() can.NodeID { return l.port.ID() }

// DataReq requests transmission of a data frame (can-data.req). Only one
// node may transmit a given data mid at a time; the mid codec guarantees it
// by embedding the source.
func (l *Layer) DataReq(mid can.MID, data []byte) error {
	if err := mid.Validate(); err != nil {
		return err
	}
	if mid.Src != l.port.ID() && mid.Type != can.TypeRHA {
		return fmt.Errorf("canlayer: data mid %v does not name local node %v", mid, l.port.ID())
	}
	var f can.Frame
	f.ID = mid.Encode()
	f.SetPayload(data)
	return l.port.Request(f)
}

// RTRReq requests transmission of a remote frame (can-rtr.req). Several
// nodes may simultaneously request the same remote frame; the bus clusters
// them into one physical frame.
func (l *Layer) RTRReq(mid can.MID) error {
	if err := mid.Validate(); err != nil {
		return err
	}
	return l.port.Request(can.Frame{ID: mid.Encode(), RTR: true})
}

// PendingEquivalentRTR reports whether an equivalent remote-frame transmit
// request is already queued locally — the guard FDA's recipients apply
// before requesting a failure-sign retransmission.
func (l *Layer) PendingEquivalentRTR(mid can.MID) bool {
	return l.port.PendingEquivalent(can.Frame{ID: mid.Encode(), RTR: true})
}

// AbortReq cancels a pending transmit request (can-abort.req). It has
// effect only on pending requests and reports whether one was removed.
func (l *Layer) AbortReq(mid can.MID) bool {
	return l.port.Abort(mid.Encode())
}

// HandleDataInd registers a can-data.ind consumer (message arrival with
// payload, own transmissions included).
func (l *Layer) HandleDataInd(fn func(mid can.MID, data []byte)) {
	l.dataInd = append(l.dataInd, fn)
}

// HandleRTRInd registers a can-rtr.ind consumer (remote frame arrival, own
// transmissions included).
func (l *Layer) HandleRTRInd(fn func(mid can.MID)) {
	l.rtrInd = append(l.rtrInd, fn)
}

// HandleDataNty registers a can-data.nty consumer: the arrival of any data
// frame, own transmissions included, without the message data. This is the
// paper's extension to the standard interface.
func (l *Layer) HandleDataNty(fn func(mid can.MID)) {
	l.dataNty = append(l.dataNty, fn)
}

// HandleDataCnf registers a can-data.cnf consumer.
func (l *Layer) HandleDataCnf(fn func(mid can.MID)) {
	l.dataCnf = append(l.dataCnf, fn)
}

// HandleRTRCnf registers a can-rtr.cnf consumer.
func (l *Layer) HandleRTRCnf(fn func(mid can.MID)) {
	l.rtrCnf = append(l.rtrCnf, fn)
}

// HandleBusOff registers a fault-confinement shutdown consumer.
func (l *Layer) HandleBusOff(fn func()) {
	l.busOff = append(l.busOff, fn)
}

// handler adapts Layer to bus.Handler without exporting the bus-facing
// methods on Layer itself.
type handler Layer

var _ bus.Handler = (*handler)(nil)

func (h *handler) OnFrame(f can.Frame, own bool) {
	mid, err := can.DecodeMID(f.ID)
	if err != nil {
		// Frames outside the CANELy identifier plan are invisible to the
		// protocol suite (acceptance filtering).
		return
	}
	l := (*Layer)(h)
	if f.RTR {
		for _, fn := range l.rtrInd {
			fn(mid)
		}
		return
	}
	for _, fn := range l.dataNty {
		fn(mid)
	}
	for _, fn := range l.dataInd {
		fn(mid, f.Payload())
	}
}

func (h *handler) OnConfirm(f can.Frame) {
	mid, err := can.DecodeMID(f.ID)
	if err != nil {
		return
	}
	l := (*Layer)(h)
	if f.RTR {
		for _, fn := range l.rtrCnf {
			fn(mid)
		}
		return
	}
	for _, fn := range l.dataCnf {
		fn(mid)
	}
}

func (h *handler) OnBusOff() {
	for _, fn := range (*Layer)(h).busOff {
		fn()
	}
}
