package canlayer

import (
	"testing"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/fault"
	"canely/internal/sim"
)

type rig struct {
	sched  *sim.Scheduler
	bus    *bus.Bus
	layers []*Layer
}

func newRig(t *testing.T, n int, inj fault.Injector) *rig {
	t.Helper()
	s := sim.NewScheduler()
	b := bus.New(s, bus.Config{Injector: inj})
	r := &rig{sched: s, bus: b}
	for i := 0; i < n; i++ {
		r.layers = append(r.layers, New(b.Attach(can.NodeID(i))))
	}
	return r
}

func TestDataReqDeliversIndAndNty(t *testing.T) {
	r := newRig(t, 3, nil)
	var ntyMids, indMids []can.MID
	var indData [][]byte
	r.layers[1].HandleDataNty(func(m can.MID) { ntyMids = append(ntyMids, m) })
	r.layers[1].HandleDataInd(func(m can.MID, d []byte) {
		indMids = append(indMids, m)
		indData = append(indData, append([]byte(nil), d...))
	})
	mid := can.DataSign(4, 0, 9)
	if err := r.layers[0].DataReq(mid, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	r.sched.Run()
	if len(ntyMids) != 1 || ntyMids[0] != mid {
		t.Fatalf("nty = %v", ntyMids)
	}
	if len(indMids) != 1 || string(indData[0]) != "\x01\x02\x03" {
		t.Fatalf("ind = %v data = %v", indMids, indData)
	}
}

func TestOwnTransmissionNotified(t *testing.T) {
	// Figure 4: .ind and .nty include own transmissions — the failure
	// detector restarts the local timer from its own data traffic.
	r := newRig(t, 2, nil)
	ownNty := 0
	r.layers[0].HandleDataNty(func(can.MID) { ownNty++ })
	cnf := 0
	r.layers[0].HandleDataCnf(func(can.MID) { cnf++ })
	r.layers[0].DataReq(can.DataSign(0, 0, 1), []byte{7})
	r.sched.Run()
	if ownNty != 1 {
		t.Fatalf("own nty = %d, want 1", ownNty)
	}
	if cnf != 1 {
		t.Fatalf("cnf = %d, want 1", cnf)
	}
}

func TestRTRReqIndAndCnf(t *testing.T) {
	r := newRig(t, 2, nil)
	var got []can.MID
	r.layers[1].HandleRTRInd(func(m can.MID) { got = append(got, m) })
	ownInd := 0
	r.layers[0].HandleRTRInd(func(can.MID) { ownInd++ })
	rtrCnf := 0
	r.layers[0].HandleRTRCnf(func(can.MID) { rtrCnf++ })
	mid := can.ELSSign(0)
	if err := r.layers[0].RTRReq(mid); err != nil {
		t.Fatal(err)
	}
	r.sched.Run()
	if len(got) != 1 || got[0] != mid {
		t.Fatalf("rtr ind = %v", got)
	}
	if ownInd != 1 {
		t.Fatal("own rtr transmissions must also be indicated")
	}
	if rtrCnf != 1 {
		t.Fatal("rtr cnf missing")
	}
}

func TestDataNtyCarriesNoPayloadDependency(t *testing.T) {
	// .nty consumers must never depend on data: the callback only gets the
	// mid. (Compile-time property; here we just confirm dispatch order:
	// nty fires before ind.)
	r := newRig(t, 2, nil)
	var order []string
	r.layers[1].HandleDataNty(func(can.MID) { order = append(order, "nty") })
	r.layers[1].HandleDataInd(func(can.MID, []byte) { order = append(order, "ind") })
	r.layers[0].DataReq(can.DataSign(0, 0, 1), nil)
	r.sched.Run()
	if len(order) != 2 || order[0] != "nty" || order[1] != "ind" {
		t.Fatalf("dispatch order = %v", order)
	}
}

func TestDataReqRejectsForeignSource(t *testing.T) {
	r := newRig(t, 2, nil)
	if err := r.layers[0].DataReq(can.DataSign(0, 1, 0), nil); err == nil {
		t.Fatal("data mid with foreign src must be rejected")
	}
}

func TestDataReqAllowsRHAForeignSrc(t *testing.T) {
	// RHA data frames carry the identity of the node that (re)proposed the
	// vector; during joins a node forwards a vector under its own identity,
	// but the check must not block RHA frames generally.
	r := newRig(t, 2, nil)
	if err := r.layers[0].DataReq(can.RHASign(2, 0), can.MakeSet(0, 1).Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestAbortReq(t *testing.T) {
	r := newRig(t, 2, nil)
	// Block the wire with another node's frame so ours stays pending.
	r.layers[1].RTRReq(can.FDASign(0))
	r.sched.Step()
	mid := can.DataSign(0, 0, 1)
	r.layers[0].DataReq(mid, []byte{1})
	if !r.layers[0].AbortReq(mid) {
		t.Fatal("abort of pending request failed")
	}
	if r.layers[0].AbortReq(mid) {
		t.Fatal("second abort should find nothing")
	}
}

func TestPendingEquivalentRTR(t *testing.T) {
	r := newRig(t, 2, nil)
	r.layers[1].RTRReq(can.FDASign(0))
	r.sched.Step() // wire busy
	mid := can.FDASign(7)
	r.layers[0].RTRReq(mid)
	if !r.layers[0].PendingEquivalentRTR(mid) {
		t.Fatal("pending equivalent not detected")
	}
	if r.layers[0].PendingEquivalentRTR(can.FDASign(8)) {
		t.Fatal("false equivalent")
	}
}

func TestMulticastDispatchOrder(t *testing.T) {
	r := newRig(t, 2, nil)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		r.layers[1].HandleRTRInd(func(can.MID) { order = append(order, i) })
	}
	r.layers[0].RTRReq(can.ELSSign(0))
	r.sched.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestInvalidMIDRejected(t *testing.T) {
	r := newRig(t, 1, nil)
	if err := r.layers[0].RTRReq(can.MID{}); err == nil {
		t.Fatal("zero mid must be rejected")
	}
	if err := r.layers[0].DataReq(can.MID{Type: 99, Src: 0}, nil); err == nil {
		t.Fatal("unknown type must be rejected")
	}
}

func TestBusOffPropagates(t *testing.T) {
	script := fault.NewScript(fault.Rule{
		Match:    fault.NewMatch(can.TypeData),
		Decision: fault.Decision{Corrupt: true},
		Repeat:   true,
	})
	r := newRig(t, 2, script)
	notified := false
	r.layers[0].HandleBusOff(func() { notified = true })
	r.layers[0].DataReq(can.DataSign(0, 0, 1), nil)
	r.sched.Run()
	if !notified {
		t.Fatal("bus-off not propagated to the layer")
	}
}

func TestNodeID(t *testing.T) {
	r := newRig(t, 2, nil)
	if r.layers[1].NodeID() != 1 {
		t.Fatal("NodeID passthrough wrong")
	}
}
