package baselines

import (
	"testing"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/sim"
)

type rig struct {
	sched  *sim.Scheduler
	bus    *bus.Bus
	ports  []*bus.Port
	layers []*canlayer.Layer
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	s := sim.NewScheduler()
	b := bus.New(s, bus.Config{})
	r := &rig{sched: s, bus: b}
	for i := 0; i < n; i++ {
		p := b.Attach(can.NodeID(i))
		r.ports = append(r.ports, p)
		r.layers = append(r.layers, canlayer.New(p))
	}
	return r
}

func TestOSEKRingRotates(t *testing.T) {
	r := newRig(t, 4)
	ring := can.MakeSet(0, 1, 2, 3)
	cfg := DefaultOSEKConfig()
	var nodes []*OSEKNode
	for _, l := range r.layers {
		n, err := NewOSEKNode(r.sched, l, ring, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.Start()
	}
	// Two full rotations: 8 ring messages in ~800 ms.
	r.sched.RunUntil(sim.Time(850 * time.Millisecond))
	total := 0
	for _, n := range nodes {
		total += n.RingMessages
	}
	if total < 8 || total > 9 {
		t.Fatalf("ring messages = %d, want ~8 over two rotations", total)
	}
	for i, n := range nodes {
		if n.RingMessages < 2 {
			t.Fatalf("node %d forwarded only %d times", i, n.RingMessages)
		}
	}
}

func TestOSEKDetectsCrashedSuccessor(t *testing.T) {
	r := newRig(t, 4)
	ring := can.MakeSet(0, 1, 2, 3)
	cfg := DefaultOSEKConfig()
	var nodes []*OSEKNode
	var absences []struct {
		detector int
		gone     can.NodeID
		at       sim.Time
	}
	for i, l := range r.layers {
		n, err := NewOSEKNode(r.sched, l, ring, cfg)
		if err != nil {
			t.Fatal(err)
		}
		i := i
		n.OnAbsent(func(gone can.NodeID) {
			absences = append(absences, struct {
				detector int
				gone     can.NodeID
				at       sim.Time
			}{i, gone, r.sched.Now()})
		})
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.Start()
	}
	r.sched.RunUntil(sim.Time(150 * time.Millisecond))
	crashAt := r.sched.Now()
	r.ports[2].Crash()
	r.sched.RunUntil(sim.Time(2 * time.Second))

	if len(absences) == 0 {
		t.Fatal("crashed node never detected")
	}
	first := absences[0]
	if first.gone != 2 || first.detector != 1 {
		t.Fatalf("first absence = %+v, want node 1 detecting node 2", first)
	}
	latency := first.at.Sub(crashAt)
	// §6.6: worst case ~ (n-1)*TTyp + TMax; must be far above CANELy's
	// tens of ms and below the model bound.
	bound := time.Duration(3)*cfg.TTyp + cfg.TMax + 10*time.Millisecond
	if latency > bound {
		t.Fatalf("OSEK latency %v exceeds bound %v", latency, bound)
	}
	if latency < 100*time.Millisecond {
		t.Fatalf("OSEK latency %v implausibly low", latency)
	}
	// The ring keeps rotating over the survivors.
	before := nodes[0].RingMessages
	r.sched.RunUntil(sim.Time(3 * time.Second))
	if nodes[0].RingMessages <= before {
		t.Fatal("ring stalled after reconfiguration")
	}
	if nodes[1].Present().Contains(2) {
		t.Fatal("detector still lists the crashed node")
	}
}

func TestOSEKSingleSurvivorSelfToken(t *testing.T) {
	r := newRig(t, 2)
	ring := can.MakeSet(0, 1)
	var nodes []*OSEKNode
	for _, l := range r.layers {
		n, err := NewOSEKNode(r.sched, l, ring, DefaultOSEKConfig())
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.Start()
	}
	r.sched.RunUntil(sim.Time(50 * time.Millisecond))
	r.ports[1].Crash()
	r.sched.RunUntil(sim.Time(2 * time.Second))
	if nodes[0].Present() != can.MakeSet(0) {
		t.Fatalf("survivor ring = %v", nodes[0].Present())
	}
}

func TestOSEKConfigValidation(t *testing.T) {
	if (OSEKConfig{}).Validate() == nil {
		t.Fatal("zero config accepted")
	}
	r := newRig(t, 1)
	if _, err := NewOSEKNode(r.sched, r.layers[0], can.MakeSet(5), DefaultOSEKConfig()); err == nil {
		t.Fatal("ring without local node accepted")
	}
}

func TestCANopenGuardingHappyPath(t *testing.T) {
	r := newRig(t, 4)
	master, err := NewCANopenMaster(r.sched, r.layers[0], []can.NodeID{1, 2, 3}, DefaultCANopenConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		NewCANopenSlave(r.layers[i])
	}
	master.Start()
	r.sched.RunUntil(sim.Time(time.Second))
	if !master.Lost().Empty() {
		t.Fatalf("false losses: %v", master.Lost())
	}
	if master.GuardRequests < 27 {
		t.Fatalf("guard requests = %d, want ~30 (3 slaves x 10 rounds)", master.GuardRequests)
	}
}

func TestCANopenDetectsCrashedSlave(t *testing.T) {
	r := newRig(t, 3)
	cfg := DefaultCANopenConfig()
	master, err := NewCANopenMaster(r.sched, r.layers[0], []can.NodeID{1, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		NewCANopenSlave(r.layers[i])
	}
	var lostAt sim.Time
	var lost []can.NodeID
	master.OnLost(func(s can.NodeID) {
		lost = append(lost, s)
		lostAt = r.sched.Now()
	})
	master.Start()
	r.sched.RunUntil(sim.Time(250 * time.Millisecond))
	crashAt := r.sched.Now()
	r.ports[2].Crash()
	r.sched.RunUntil(sim.Time(2 * time.Second))

	if len(lost) != 1 || lost[0] != 2 {
		t.Fatalf("lost = %v", lost)
	}
	latency := lostAt.Sub(crashAt)
	bound := time.Duration(cfg.LifeFactor+1)*cfg.GuardTime + 10*time.Millisecond
	if latency > bound {
		t.Fatalf("CANopen latency %v exceeds bound %v", latency, bound)
	}
	// Lost slaves are no longer polled.
	before := master.GuardRequests
	r.sched.RunUntil(sim.Time(2*time.Second + 3*cfg.GuardTime))
	polls := master.GuardRequests - before
	if polls > 4 {
		t.Fatalf("polls after loss = %d, lost slave still guarded", polls)
	}
}

func TestCANopenConfigValidation(t *testing.T) {
	if (CANopenConfig{GuardTime: time.Second}).Validate() == nil {
		t.Fatal("zero life factor accepted")
	}
	if (CANopenConfig{LifeFactor: 2}).Validate() == nil {
		t.Fatal("zero guard time accepted")
	}
}

func TestSchemesBandwidthComparison(t *testing.T) {
	// The paper's motivation for implicit heartbeats: CANELy's steady
	// state costs at most b life-signs per Tb, while node guarding costs
	// 2 frames per slave per GuardTime regardless of traffic. Verify the
	// simulated guard traffic is as predicted.
	r := newRig(t, 3)
	master, err := NewCANopenMaster(r.sched, r.layers[0], []can.NodeID{1, 2}, DefaultCANopenConfig())
	if err != nil {
		t.Fatal(err)
	}
	NewCANopenSlave(r.layers[1])
	NewCANopenSlave(r.layers[2])
	master.Start()
	r.sched.RunUntil(sim.Time(time.Second))
	st := r.bus.Stats()
	// 10 rounds x 2 slaves x (request + reply) = 40 frames.
	if st.FramesOK < 36 || st.FramesOK > 40 {
		t.Fatalf("guarding frames = %d, want ~40", st.FramesOK)
	}
	if st.BitsByType[can.TypeGuard] == 0 {
		t.Fatal("guard traffic not accounted")
	}
}
