package baselines

import (
	"fmt"
	"time"

	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/sim"
)

// CANopenConfig parameterizes NMT node guarding.
type CANopenConfig struct {
	// GuardTime is the master's polling period per slave (default 100 ms).
	GuardTime time.Duration
	// LifeFactor is the number of consecutive unanswered guard requests
	// after which a slave is declared lost (default 2).
	LifeFactor int
}

// DefaultCANopenConfig returns the reference node-guarding timing.
func DefaultCANopenConfig() CANopenConfig {
	return CANopenConfig{GuardTime: 100 * time.Millisecond, LifeFactor: 2}
}

// Validate checks the configuration.
func (c CANopenConfig) Validate() error {
	if c.GuardTime <= 0 {
		return fmt.Errorf("baselines: guard time must be positive, got %v", c.GuardTime)
	}
	if c.LifeFactor <= 0 {
		return fmt.Errorf("baselines: life factor must be positive, got %d", c.LifeFactor)
	}
	return nil
}

// CANopenMaster cyclically inquires each slave through a remote frame and
// expects a status reply. This is the centralized scheme the paper
// contrasts with CANELy's distributed, fault-tolerant service: only the
// master learns of a failure, and the master itself is unmonitored.
type CANopenMaster struct {
	cfg    CANopenConfig
	sched  *sim.Scheduler
	layer  *canlayer.Layer
	slaves []can.NodeID

	ticker  *sim.Ticker
	missed  map[can.NodeID]int
	replied map[can.NodeID]bool
	lost    can.NodeSet

	onLost []func(can.NodeID)

	// GuardRequests counts polls sent (bandwidth accounting).
	GuardRequests int
}

// NewCANopenMaster creates the master guarding the given slaves.
func NewCANopenMaster(sched *sim.Scheduler, layer *canlayer.Layer, slaves []can.NodeID, cfg CANopenConfig) (*CANopenMaster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &CANopenMaster{
		cfg:     cfg,
		sched:   sched,
		layer:   layer,
		slaves:  append([]can.NodeID(nil), slaves...),
		missed:  make(map[can.NodeID]int),
		replied: make(map[can.NodeID]bool),
	}
	m.ticker = sim.NewTicker(sched, m.pollRound)
	layer.HandleDataInd(m.onDataInd)
	return m, nil
}

// OnLost registers a consumer for slave-lost events (master-local only).
func (m *CANopenMaster) OnLost(fn func(can.NodeID)) { m.onLost = append(m.onLost, fn) }

// Lost returns the set of slaves declared lost.
func (m *CANopenMaster) Lost() can.NodeSet { return m.lost }

// Start begins the guarding cycle.
func (m *CANopenMaster) Start() { m.ticker.Start(m.cfg.GuardTime) }

// Stop halts the guarding cycle.
func (m *CANopenMaster) Stop() { m.ticker.Stop() }

// pollRound closes the previous round's bookkeeping and polls every slave
// not yet declared lost.
func (m *CANopenMaster) pollRound() {
	for _, s := range m.slaves {
		if m.lost.Contains(s) {
			continue
		}
		if m.GuardRequests > 0 && !m.replied[s] {
			m.missed[s]++
			if m.missed[s] >= m.cfg.LifeFactor {
				m.lost = m.lost.Add(s)
				for _, fn := range m.onLost {
					fn(s)
				}
				continue
			}
		} else {
			m.missed[s] = 0
		}
		m.replied[s] = false
		m.GuardRequests++
		_ = m.layer.RTRReq(can.GuardSign(s))
	}
}

// onDataInd records slave status replies.
func (m *CANopenMaster) onDataInd(mid can.MID, _ []byte) {
	if mid.Type != can.TypeGuard {
		return
	}
	m.replied[can.NodeID(mid.Param)] = true
}

// CANopenSlave answers the master's guard requests with its status.
type CANopenSlave struct {
	layer *canlayer.Layer
	local can.NodeID
	// toggle mimics the CANopen guard-bit alternation in the status byte.
	toggle uint8
}

// NewCANopenSlave creates a slave entity.
func NewCANopenSlave(layer *canlayer.Layer) *CANopenSlave {
	s := &CANopenSlave{layer: layer, local: layer.NodeID()}
	layer.HandleRTRInd(s.onRTRInd)
	return s
}

// onRTRInd answers guard requests addressed to the local node.
func (s *CANopenSlave) onRTRInd(mid can.MID) {
	if mid.Type != can.TypeGuard || can.NodeID(mid.Param) != s.local {
		return
	}
	s.toggle ^= 0x80
	// Status: operational (0x05) with alternating toggle bit.
	_ = s.layer.DataReq(can.GuardReplySign(s.local), []byte{0x05 | s.toggle})
}
