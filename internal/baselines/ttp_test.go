package baselines

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/sim"
)

func TestTTPSteadyStateViewsStable(t *testing.T) {
	sched := sim.NewScheduler()
	c, err := NewTTPCluster(sched, 4, DefaultTTPConfig())
	if err != nil {
		t.Fatal(err)
	}
	changes := 0
	for i := 0; i < 4; i++ {
		c.OnChange(can.NodeID(i), func(can.NodeSet, can.NodeID) { changes++ })
	}
	c.Start()
	sched.RunUntil(sim.Time(100 * time.Millisecond))
	if changes != 0 {
		t.Fatalf("changes = %d in fault-free TTP operation", changes)
	}
	if c.View(0) != can.MakeSet(0, 1, 2, 3) {
		t.Fatalf("view = %v", c.View(0))
	}
}

func TestTTPDetectsCrashWithinOneRound(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := DefaultTTPConfig()
	c, err := NewTTPCluster(sched, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var detectedAt sim.Time
	c.OnChange(0, func(_ can.NodeSet, failed can.NodeID) {
		if failed == 2 && detectedAt == 0 {
			detectedAt = sched.Now()
		}
	})
	c.Start()
	sched.RunUntil(sim.Time(10 * time.Millisecond))
	crashAt := sched.Now()
	c.Crash(2)
	sched.RunUntil(sim.Time(50 * time.Millisecond))
	if detectedAt == 0 {
		t.Fatal("crash never detected")
	}
	latency := detectedAt.Sub(crashAt)
	if bound := cfg.MembershipLatencyBound(4); latency > bound {
		t.Fatalf("TTP latency %v exceeds one-round bound %v", latency, bound)
	}
	// All survivors share the updated view (synchronized removal).
	for _, id := range []can.NodeID{0, 1, 3} {
		if c.View(id) != can.MakeSet(0, 1, 3) {
			t.Fatalf("node %v view = %v", id, c.View(id))
		}
	}
}

func TestTTPMultipleCrashes(t *testing.T) {
	sched := sim.NewScheduler()
	c, err := NewTTPCluster(sched, 5, DefaultTTPConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	sched.RunUntil(sim.Time(3 * time.Millisecond))
	c.Crash(1)
	c.Crash(4)
	sched.RunUntil(sim.Time(50 * time.Millisecond))
	want := can.MakeSet(0, 2, 3)
	for _, id := range []can.NodeID{0, 2, 3} {
		if c.View(id) != want {
			t.Fatalf("node %v view = %v, want %v", id, c.View(id), want)
		}
	}
}

func TestTTPLatencyVersusCANELyScale(t *testing.T) {
	// Figure 11 context: TTP's one-round detection at 1 ms slots is in the
	// same "tens of ms" class as CANELy only for small clusters; the model
	// bound is linear in n.
	cfg := DefaultTTPConfig()
	if cfg.MembershipLatencyBound(8) != 9*time.Millisecond {
		t.Fatalf("bound(8) = %v", cfg.MembershipLatencyBound(8))
	}
	if cfg.Round(32) != 32*time.Millisecond {
		t.Fatalf("round(32) = %v", cfg.Round(32))
	}
}

func TestTTPConfigValidation(t *testing.T) {
	if (TTPConfig{}).Validate() == nil {
		t.Fatal("zero slot accepted")
	}
	sched := sim.NewScheduler()
	if _, err := NewTTPCluster(sched, 0, DefaultTTPConfig()); err == nil {
		t.Fatal("empty cluster accepted")
	}
}
