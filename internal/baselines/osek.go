// Package baselines implements the two industry-standard CAN node failure
// detection schemes the paper compares against in §6.6, runnable on the
// same simulated bus as the CANELy suite:
//
//   - OSEK NM: distributed network management over a logical ring. Every
//     alive node forwards a ring message to its successor; a successor that
//     stays silent past the ring timeout is skipped and deemed absent. Its
//     weakness is latency: the token must rotate the whole ring before a
//     silent node's slot comes up, giving worst-case detection "in the
//     order of one second" at the reference parameters.
//
//   - CANopen NMT node guarding: a master cyclically polls each slave with
//     a remote frame and the slave answers with its state; after a
//     configurable number of missed answers the slave is lost. Its
//     weaknesses are its centralized nature (only the master learns of the
//     failure, and the master is a single point of failure) and the
//     bandwidth of the polling.
package baselines

import (
	"fmt"
	"sort"
	"time"

	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/sim"
)

// OSEKConfig parameterizes the OSEK NM logical ring.
type OSEKConfig struct {
	// TTyp is the typical delay a node waits after receiving the token
	// before forwarding its ring message (default 100 ms).
	TTyp time.Duration
	// TMax is the timeout after which a silent successor is skipped
	// (default 260 ms).
	TMax time.Duration
}

// DefaultOSEKConfig returns the reference OSEK NM timing.
func DefaultOSEKConfig() OSEKConfig {
	return OSEKConfig{TTyp: 100 * time.Millisecond, TMax: 260 * time.Millisecond}
}

// Validate checks the configuration.
func (c OSEKConfig) Validate() error {
	if c.TTyp <= 0 || c.TMax <= 0 {
		return fmt.Errorf("baselines: OSEK timing must be positive, got TTyp=%v TMax=%v", c.TTyp, c.TMax)
	}
	return nil
}

// OSEKNode is one participant of the OSEK NM logical ring.
type OSEKNode struct {
	cfg   OSEKConfig
	sched *sim.Scheduler
	layer *canlayer.Layer
	local can.NodeID

	present  can.NodeSet // nodes currently in the logical ring
	typTimer *sim.Timer  // delay before forwarding the token
	maxTimer *sim.Timer  // successor surveillance
	waitFor  can.NodeID  // successor we expect a ring message from

	onAbsent []func(can.NodeID)

	// RingMessages counts ring messages sent (bandwidth accounting).
	RingMessages int
}

// NewOSEKNode creates a ring participant. ring is the stable configuration
// of the logical ring (all configured nodes, the local one included).
func NewOSEKNode(sched *sim.Scheduler, layer *canlayer.Layer, ring can.NodeSet, cfg OSEKConfig) (*OSEKNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !ring.Contains(layer.NodeID()) {
		return nil, fmt.Errorf("baselines: ring %v omits local node %v", ring, layer.NodeID())
	}
	n := &OSEKNode{
		cfg:     cfg,
		sched:   sched,
		layer:   layer,
		local:   layer.NodeID(),
		present: ring,
	}
	n.typTimer = sim.NewTimer(sched, n.forward)
	n.maxTimer = sim.NewTimer(sched, n.successorSilent)
	layer.HandleDataInd(n.onDataInd)
	return n, nil
}

// OnAbsent registers a consumer for skipped-node notifications. Note the
// contrast with CANELy: the notification fires only at the node that
// happened to hold the token; consistency across the ring takes further
// rotations.
func (n *OSEKNode) OnAbsent(fn func(can.NodeID)) { n.onAbsent = append(n.onAbsent, fn) }

// Present returns the node's current picture of the ring.
func (n *OSEKNode) Present() can.NodeSet { return n.present }

// Start boots the ring: the alive node with the lowest identifier
// originates the first token after TTyp.
func (n *OSEKNode) Start() {
	ids := n.present.IDs()
	if len(ids) > 0 && ids[0] == n.local {
		n.typTimer.Start(n.cfg.TTyp)
	}
}

// successor returns the next ring member after the local node.
func (n *OSEKNode) successor() can.NodeID {
	ids := n.present.IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if id > n.local {
			return id
		}
	}
	return ids[0] // wrap around (possibly the local node itself)
}

// forward sends the ring message to the successor and starts surveillance.
func (n *OSEKNode) forward() {
	succ := n.successor()
	n.RingMessages++
	_ = n.layer.DataReq(can.RingSign(succ, n.local), []byte{byte(succ)})
	if succ != n.local {
		n.waitFor = succ
		n.maxTimer.Start(n.cfg.TMax)
	}
}

// onDataInd observes ring traffic. A ring message addressed to the local
// node is the token: forward after TTyp. Any ring message from the awaited
// successor clears its surveillance.
func (n *OSEKNode) onDataInd(mid can.MID, _ []byte) {
	if mid.Type != can.TypeRing {
		return
	}
	if mid.Src == n.waitFor && n.maxTimer.Armed() {
		n.maxTimer.Stop()
	}
	if can.NodeID(mid.Param) == n.local && mid.Src != n.local {
		n.typTimer.Start(n.cfg.TTyp)
	}
}

// successorSilent skips a silent successor: it is removed from the ring
// picture, consumers are notified and the token is re-forwarded to the
// next member.
func (n *OSEKNode) successorSilent() {
	gone := n.waitFor
	n.present = n.present.Remove(gone)
	for _, fn := range n.onAbsent {
		fn(gone)
	}
	n.forward()
}
