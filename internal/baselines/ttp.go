package baselines

import (
	"fmt"
	"time"

	"canely/internal/can"
	"canely/internal/sim"
)

// TTP is a behavioural model of the Time-Triggered Protocol's membership
// service (Kopetz & Grunsteidl [10]), the reference point of the paper's
// Figures 1 and 11. A TTP system is a set of fail-silent nodes on a TDMA
// bus: each node broadcasts exactly once per round in its statically
// assigned slot, and every frame carries the sender's membership view.
// A node that stays silent in its slot is removed from the view by every
// receiver at the end of that slot, so failures are detected within one
// TDMA round — the "membership: provided" property CAN lacks natively.
//
// The model abstracts the physical layer (TTP is not CAN; it runs on its
// own replicated channels) and keeps the temporal structure: slot timing,
// synchronized views, crash detection latency of at most one round.

// TTPConfig parameterizes the TDMA schedule.
type TTPConfig struct {
	// Slot is the TDMA slot duration (default 1 ms — TTP class C wheels).
	Slot time.Duration
}

// DefaultTTPConfig returns the reference slot timing.
func DefaultTTPConfig() TTPConfig { return TTPConfig{Slot: time.Millisecond} }

// Validate checks the configuration.
func (c TTPConfig) Validate() error {
	if c.Slot <= 0 {
		return fmt.Errorf("baselines: TTP slot must be positive, got %v", c.Slot)
	}
	return nil
}

// Round returns the TDMA round duration for n nodes.
func (c TTPConfig) Round(n int) time.Duration { return time.Duration(n) * c.Slot }

// MembershipLatencyBound is TTP's worst-case crash-to-removal latency: the
// crash happens right after the node's slot, so its silence shows one full
// round later, at the end of its next slot.
func (c TTPConfig) MembershipLatencyBound(n int) time.Duration {
	return c.Round(n) + c.Slot
}

// TTPCluster simulates one TTP cluster on the discrete-event scheduler.
type TTPCluster struct {
	cfg   TTPConfig
	sched *sim.Scheduler
	nodes []*ttpNode
	slot  int
}

type ttpNode struct {
	id      can.NodeID
	alive   bool
	view    can.NodeSet
	onChg   []func(view can.NodeSet, failed can.NodeID)
	cluster *TTPCluster
}

// NewTTPCluster builds a cluster of n nodes with synchronized views.
func NewTTPCluster(sched *sim.Scheduler, n int, cfg TTPConfig) (*TTPCluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("baselines: TTP cluster needs nodes, got %d", n)
	}
	c := &TTPCluster{cfg: cfg, sched: sched}
	all := can.RangeSet(0, can.NodeID(n))
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, &ttpNode{
			id:      can.NodeID(i),
			alive:   true,
			view:    all,
			cluster: c,
		})
	}
	return c, nil
}

// Start begins the TDMA wheel.
func (c *TTPCluster) Start() {
	c.sched.After(c.cfg.Slot, c.endOfSlot)
}

// Crash fail-silences a node.
func (c *TTPCluster) Crash(id can.NodeID) { c.nodes[id].alive = false }

// View returns a node's membership view.
func (c *TTPCluster) View(id can.NodeID) can.NodeSet { return c.nodes[id].view }

// Alive reports whether a node has not crashed.
func (c *TTPCluster) Alive(id can.NodeID) bool { return c.nodes[id].alive }

// OnChange registers a membership change consumer at a node.
func (c *TTPCluster) OnChange(id can.NodeID, fn func(view can.NodeSet, failed can.NodeID)) {
	c.nodes[id].onChg = append(c.nodes[id].onChg, fn)
}

// endOfSlot evaluates the slot owner's transmission: silence in an owned
// slot removes the owner from every correct node's view, synchronously —
// TTP's synchronized time base makes the removal consistent by
// construction.
func (c *TTPCluster) endOfSlot() {
	owner := c.nodes[c.slot%len(c.nodes)]
	stillMember := false
	for _, n := range c.nodes {
		if n.alive && n.view.Contains(owner.id) {
			stillMember = true
			break
		}
	}
	if stillMember && !owner.alive {
		for _, n := range c.nodes {
			if !n.alive || !n.view.Contains(owner.id) {
				continue
			}
			n.view = n.view.Remove(owner.id)
			for _, fn := range n.onChg {
				fn(n.view, owner.id)
			}
		}
	}
	c.slot++
	c.sched.After(c.cfg.Slot, c.endOfSlot)
}
