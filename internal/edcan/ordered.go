package edcan

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/sim"
)

// Ordered implements a TOTCAN-style totally ordered atomic broadcast after
// [18]: an accept-deadline protocol on top of the EDCAN eager diffusion.
//
// The sender stamps each message with an accept deadline (transmission
// instant + Δ). Eager diffusion guarantees that every correct node holds a
// copy well before the deadline (Δ must cover the worst-case diffusion
// time, which the bounded omission degrees make known). At the deadline —
// the same instant network-wide, courtesy of the CANELy clock
// synchronization service — every node delivers its pending messages in
// (deadline, origin, reference) order. A copy first obtained after its
// deadline is discarded: with Δ properly dimensioned that only happens to
// nodes about to be expelled anyway, preserving agreement among correct
// nodes.
//
// Wire format: the first four payload bytes carry the deadline in
// microseconds (little endian); up to four bytes of user data follow. The
// 32-bit microsecond stamp bounds one simulation run to ~71 minutes of
// virtual time — far beyond any experiment in this repository; a real
// deployment would use the synchronized clock's epoch arithmetic instead.
type Ordered struct {
	cfg   OrderedConfig
	sched *sim.Scheduler
	bc    *Broadcaster

	deliver []func(origin can.NodeID, ref uint8, data []byte)
	pending []orderedMsg

	// Delivered counts messages handed upward; Discarded counts copies
	// that arrived past their accept deadline.
	Delivered int
	Discarded int
}

// OrderedConfig parameterizes the accept-deadline broadcast.
type OrderedConfig struct {
	// Delta is the accept-deadline offset; it must exceed the worst-case
	// diffusion time (transmission + j recovery waves).
	Delta time.Duration
	// J is the inconsistent omission degree bound, forwarded to EDCAN.
	J int
}

// Validate checks the configuration.
func (c OrderedConfig) Validate() error {
	if c.Delta <= 0 {
		return fmt.Errorf("edcan: accept-deadline offset must be positive, got %v", c.Delta)
	}
	if c.J < 0 {
		return fmt.Errorf("edcan: J must be non-negative, got %d", c.J)
	}
	return nil
}

// MaxOrderedData is the user payload limit of one ordered message (the
// deadline stamp takes four of CAN's eight bytes).
const MaxOrderedData = can.MaxData - 4

type orderedMsg struct {
	deadline time.Duration
	origin   can.NodeID
	ref      uint8
	data     []byte
}

// NewOrdered creates the protocol entity on top of a fresh EDCAN
// broadcaster bound to the layer.
func NewOrdered(sched *sim.Scheduler, layer *canlayer.Layer, cfg OrderedConfig) (*Ordered, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bc, err := New(layer, Config{J: cfg.J})
	if err != nil {
		return nil, err
	}
	o := &Ordered{cfg: cfg, sched: sched, bc: bc}
	bc.Deliver(o.onCopy)
	return o, nil
}

// Deliver registers a consumer; messages arrive in the network-wide total
// order.
func (o *Ordered) Deliver(fn func(origin can.NodeID, ref uint8, data []byte)) {
	o.deliver = append(o.deliver, fn)
}

// Broadcast sends a payload (at most MaxOrderedData bytes) in total order.
func (o *Ordered) Broadcast(data []byte) (uint8, error) {
	if len(data) > MaxOrderedData {
		return 0, fmt.Errorf("edcan: ordered payload %d exceeds %d bytes", len(data), MaxOrderedData)
	}
	deadline := time.Duration(o.sched.Now()) + o.cfg.Delta
	buf := make([]byte, 4+len(data))
	binary.LittleEndian.PutUint32(buf, uint32(deadline/time.Microsecond))
	copy(buf[4:], data)
	return o.bc.Broadcast(buf)
}

// onCopy receives the first EDCAN copy of each message and schedules its
// deadline delivery.
func (o *Ordered) onCopy(origin can.NodeID, ref uint8, payload []byte) {
	if len(payload) < 4 {
		return // not an ordered message
	}
	deadline := time.Duration(binary.LittleEndian.Uint32(payload)) * time.Microsecond
	now := time.Duration(o.sched.Now())
	if deadline < now {
		// The copy reached us only after its accept deadline: reject. The
		// other nodes delivered at the deadline; a correct Δ makes this a
		// coverage failure, not a normal-case event.
		o.Discarded++
		return
	}
	msg := orderedMsg{
		deadline: deadline,
		origin:   origin,
		ref:      ref,
		data:     append([]byte(nil), payload[4:]...),
	}
	o.pending = append(o.pending, msg)
	o.sched.At(sim.Time(deadline), func() { o.deliverDue(deadline) })
}

// deliverDue delivers every pending message whose deadline has passed, in
// the global (deadline, origin, ref) order.
func (o *Ordered) deliverDue(upto time.Duration) {
	var due, rest []orderedMsg
	for _, m := range o.pending {
		if m.deadline <= upto {
			due = append(due, m)
		} else {
			rest = append(rest, m)
		}
	}
	o.pending = rest
	sort.Slice(due, func(i, j int) bool {
		a, b := due[i], due[j]
		if a.deadline != b.deadline {
			return a.deadline < b.deadline
		}
		if a.origin != b.origin {
			return a.origin < b.origin
		}
		return a.ref < b.ref
	})
	for _, m := range due {
		o.Delivered++
		for _, fn := range o.deliver {
			fn(m.origin, m.ref, m.data)
		}
	}
}
