package edcan

import (
	"fmt"
	"testing"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/fault"
	"canely/internal/sim"
)

type onode struct {
	port  *bus.Port
	layer *canlayer.Layer
	ord   *Ordered
	got   []string
}

type orig struct {
	sched *sim.Scheduler
	bus   *bus.Bus
	nodes []*onode
}

func newOrderedRig(t *testing.T, n int, cfg OrderedConfig, inj fault.Injector) *orig {
	t.Helper()
	s := sim.NewScheduler()
	b := bus.New(s, bus.Config{Injector: inj})
	r := &orig{sched: s, bus: b}
	for i := 0; i < n; i++ {
		nd := &onode{}
		nd.port = b.Attach(can.NodeID(i))
		nd.layer = canlayer.New(nd.port)
		ord, err := NewOrdered(s, nd.layer, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nd.ord = ord
		ord.Deliver(func(origin can.NodeID, ref uint8, data []byte) {
			nd.got = append(nd.got, fmt.Sprintf("%v/%d:%s", origin, ref, data))
		})
		r.nodes = append(r.nodes, nd)
	}
	return r
}

var orderedCfg = OrderedConfig{Delta: 5 * time.Millisecond, J: 2}

func TestOrderedDeliversEverywhereInSameOrder(t *testing.T) {
	r := newOrderedRig(t, 4, orderedCfg, nil)
	// Three concurrent senders.
	r.sched.At(0, func() { r.nodes[0].ord.Broadcast([]byte("a")) })
	r.sched.At(0, func() { r.nodes[1].ord.Broadcast([]byte("b")) })
	r.sched.At(sim.Time(200*time.Microsecond), func() { r.nodes[2].ord.Broadcast([]byte("c")) })
	r.sched.Run()
	ref := r.nodes[0].got
	if len(ref) != 3 {
		t.Fatalf("deliveries = %v", ref)
	}
	for i, nd := range r.nodes {
		if len(nd.got) != len(ref) {
			t.Fatalf("node %d delivered %v, node 0 %v", i, nd.got, ref)
		}
		for k := range ref {
			if nd.got[k] != ref[k] {
				t.Fatalf("order differs at node %d: %v vs %v", i, nd.got, ref)
			}
		}
	}
}

func TestOrderedSurvivesInconsistentOmissionAndCrash(t *testing.T) {
	script := fault.NewScript(fault.Rule{
		Match: fault.NewMatch(can.TypeRB),
		Decision: fault.Decision{
			InconsistentVictims: can.MakeSet(2),
			CrashSenders:        true,
		},
	})
	r := newOrderedRig(t, 4, orderedCfg, script)
	r.sched.At(0, func() { r.nodes[0].ord.Broadcast([]byte("x")) })
	r.sched.Run()
	if !script.Exhausted() {
		t.Fatalf("scenario did not fire: %s", script.PendingRules())
	}
	for i := 1; i < 4; i++ {
		if len(r.nodes[i].got) != 1 {
			t.Fatalf("node %d deliveries = %v", i, r.nodes[i].got)
		}
	}
}

func TestOrderedDeterministicTieBreak(t *testing.T) {
	// Two messages with the same deadline instant: (origin, ref) breaks
	// the tie identically everywhere.
	r := newOrderedRig(t, 3, orderedCfg, nil)
	r.sched.At(0, func() {
		r.nodes[1].ord.Broadcast([]byte("lo"))
		r.nodes[0].ord.Broadcast([]byte("eo"))
	})
	r.sched.Run()
	for i, nd := range r.nodes {
		if len(nd.got) != 2 {
			t.Fatalf("node %d got %v", i, nd.got)
		}
		if nd.got[0] != "n00/0:eo" {
			t.Fatalf("node %d tie-break order: %v", i, nd.got)
		}
	}
}

func TestOrderedLateCopyDiscarded(t *testing.T) {
	// Delta longer than one transmission (~130µs) but shorter than the
	// error-recovery retransmission (~280µs): the victim's copy arrives
	// past its deadline and is discarded there while others delivered —
	// the coverage failure mode the protocol documents.
	tiny := OrderedConfig{Delta: 200 * time.Microsecond, J: 2}
	script := fault.NewScript(fault.Rule{
		Match:    fault.NewMatch(can.TypeRB),
		Decision: fault.Decision{InconsistentVictims: can.MakeSet(2)},
	})
	r := newOrderedRig(t, 3, tiny, script)
	r.sched.At(0, func() { r.nodes[0].ord.Broadcast([]byte("z")) })
	r.sched.Run()
	if r.nodes[2].ord.Discarded == 0 {
		t.Fatal("late copy should have been discarded")
	}
	if len(r.nodes[2].got) != 0 {
		t.Fatalf("victim delivered %v despite the deadline", r.nodes[2].got)
	}
	if len(r.nodes[1].got) != 1 {
		t.Fatal("non-victim should deliver")
	}
}

func TestOrderedPayloadLimit(t *testing.T) {
	r := newOrderedRig(t, 2, orderedCfg, nil)
	if _, err := r.nodes[0].ord.Broadcast(make([]byte, MaxOrderedData+1)); err == nil {
		t.Fatal("oversized ordered payload accepted")
	}
	if _, err := r.nodes[0].ord.Broadcast(make([]byte, MaxOrderedData)); err != nil {
		t.Fatal(err)
	}
}

func TestOrderedConfigValidation(t *testing.T) {
	if (OrderedConfig{Delta: 0, J: 0}).Validate() == nil {
		t.Fatal("zero delta accepted")
	}
	if (OrderedConfig{Delta: time.Millisecond, J: -1}).Validate() == nil {
		t.Fatal("negative J accepted")
	}
}

func TestOrderedManyMessagesTotalOrderProperty(t *testing.T) {
	// A burst of messages from every node: all correct nodes deliver the
	// exact same sequence. Delta must cover the whole burst's bus backlog
	// (~60 frames of diffusion traffic), otherwise the accept-deadline
	// rule consistently rejects the starved lowest-priority messages.
	r := newOrderedRig(t, 5, OrderedConfig{Delta: 20 * time.Millisecond, J: 2}, nil)
	for i := 0; i < 5; i++ {
		i := i
		for k := 0; k < 4; k++ {
			k := k
			at := sim.Time(i*137+k*311) * sim.Time(time.Microsecond)
			r.sched.At(at, func() {
				r.nodes[i].ord.Broadcast([]byte{byte(i), byte(k)})
			})
		}
	}
	r.sched.Run()
	ref := r.nodes[0].got
	if len(ref) != 20 {
		t.Fatalf("deliveries = %d, want 20", len(ref))
	}
	for i, nd := range r.nodes {
		for k := range ref {
			if nd.got[k] != ref[k] {
				t.Fatalf("node %d order differs at %d: %v vs %v", i, k, nd.got[k], ref[k])
			}
		}
	}
}

func TestOrderedOverloadRejectsConsistently(t *testing.T) {
	// When Delta cannot cover the bus backlog, the accept-deadline rule
	// starves the lowest-priority messages past their deadlines — but it
	// does so at EVERY node identically: the delivered sequences still
	// agree, and the discard counts match. Consistent rejection is the
	// property that distinguishes the deadline rule from a timeout hack.
	r := newOrderedRig(t, 5, OrderedConfig{Delta: 5 * time.Millisecond, J: 2}, nil)
	for i := 0; i < 5; i++ {
		i := i
		for k := 0; k < 4; k++ {
			at := sim.Time(i*137) * sim.Time(time.Microsecond)
			r.sched.At(at, func() {
				if _, err := r.nodes[i].ord.Broadcast([]byte{byte(i)}); err != nil {
					t.Errorf("broadcast: %v", err)
				}
			})
		}
	}
	r.sched.Run()
	ref := r.nodes[0]
	if ref.ord.Discarded == 0 {
		t.Skip("no overload manifested; nothing to check")
	}
	for i, nd := range r.nodes {
		if nd.ord.Discarded != ref.ord.Discarded {
			t.Fatalf("node %d discarded %d, node 0 discarded %d",
				i, nd.ord.Discarded, ref.ord.Discarded)
		}
		if len(nd.got) != len(ref.got) {
			t.Fatalf("node %d delivered %d, node 0 %d", i, len(nd.got), len(ref.got))
		}
		for k := range ref.got {
			if nd.got[k] != ref.got[k] {
				t.Fatalf("node %d order differs: %v vs %v", i, nd.got, ref.got)
			}
		}
	}
}
