package edcan

import (
	"testing"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/fault"
	"canely/internal/sim"
)

type rnode struct {
	port  *bus.Port
	layer *canlayer.Layer
	rel   *RELCAN
	got   []string
}

type rrig struct {
	sched *sim.Scheduler
	bus   *bus.Bus
	nodes []*rnode
}

var relCfg = RELCANConfig{Timeout: 2 * time.Millisecond, J: 2}

func newRelRig(t *testing.T, n int, inj fault.Injector) *rrig {
	t.Helper()
	s := sim.NewScheduler()
	b := bus.New(s, bus.Config{Injector: inj})
	r := &rrig{sched: s, bus: b}
	for i := 0; i < n; i++ {
		nd := &rnode{}
		nd.port = b.Attach(can.NodeID(i))
		nd.layer = canlayer.New(nd.port)
		rel, err := NewRELCAN(s, nd.layer, relCfg)
		if err != nil {
			t.Fatal(err)
		}
		nd.rel = rel
		rel.Deliver(func(origin can.NodeID, ref uint8, data []byte) {
			nd.got = append(nd.got, string(data))
		})
		r.nodes = append(r.nodes, nd)
	}
	return r
}

func TestRELCANFaultFreeCostsTwoFrames(t *testing.T) {
	r := newRelRig(t, 8, nil)
	if _, err := r.nodes[0].rel.Broadcast([]byte("m")); err != nil {
		t.Fatal(err)
	}
	r.sched.Run()
	// The lazy protocol's whole point: message + CONFIRM, independent of
	// network size (EDCAN would pay ~n frames here).
	if got := r.bus.Stats().FramesOK; got != 2 {
		t.Fatalf("frames = %d, want 2", got)
	}
	for i, nd := range r.nodes {
		if len(nd.got) != 1 || nd.got[0] != "m" {
			t.Fatalf("node %d delivered %v", i, nd.got)
		}
	}
}

func TestRELCANDeliveryBeforeTimeout(t *testing.T) {
	r := newRelRig(t, 3, nil)
	r.nodes[0].rel.Broadcast([]byte("q"))
	// Delivery must happen on CONFIRM (~2 frame slots), far earlier than
	// the fallback timeout.
	r.sched.RunUntil(sim.Time(500 * time.Microsecond))
	for i := 1; i < 3; i++ {
		if len(r.nodes[i].got) != 1 {
			t.Fatalf("node %d should deliver on CONFIRM, got %v", i, r.nodes[i].got)
		}
		if r.nodes[i].rel.Fallbacks != 0 {
			t.Fatalf("node %d used the fallback in a fault-free run", i)
		}
	}
}

func TestRELCANSenderCrashBeforeConfirmFallsBack(t *testing.T) {
	// The sender's message completes but the sender dies before the
	// CONFIRM goes out: recipients time out and diffuse eagerly.
	script := fault.NewScript(fault.Rule{
		Match:    fault.Match{Type: can.TypeRel, Param: fault.AnyParam, Sender: 0},
		Decision: fault.Decision{CrashSenders: true},
	})
	r := newRelRig(t, 4, script)
	r.nodes[0].rel.Broadcast([]byte("w"))
	r.sched.Run()
	for i := 1; i < 4; i++ {
		if len(r.nodes[i].got) != 1 || r.nodes[i].got[0] != "w" {
			t.Fatalf("node %d delivered %v (agreement broken)", i, r.nodes[i].got)
		}
	}
	fallbacks := 0
	for _, nd := range r.nodes {
		fallbacks += nd.rel.Fallbacks
	}
	if fallbacks == 0 {
		t.Fatal("no fallback despite the missing CONFIRM")
	}
}

func TestRELCANInconsistentOmissionWithSenderCrash(t *testing.T) {
	// The hardest case: the message is inconsistently omitted at node 2
	// AND the sender dies. Node 2 has nothing and no CONFIRM ever comes;
	// the other recipients' fallback diffusion must reach it.
	script := fault.NewScript(fault.Rule{
		Match: fault.Match{Type: can.TypeRel, Param: fault.AnyParam, Sender: 0},
		Decision: fault.Decision{
			InconsistentVictims: can.MakeSet(2),
			CrashSenders:        true,
		},
	})
	r := newRelRig(t, 4, script)
	r.nodes[0].rel.Broadcast([]byte("v"))
	r.sched.Run()
	if !script.Exhausted() {
		t.Fatalf("scenario did not fire: %s", script.PendingRules())
	}
	for i := 1; i < 4; i++ {
		if len(r.nodes[i].got) != 1 || r.nodes[i].got[0] != "v" {
			t.Fatalf("node %d delivered %v", i, r.nodes[i].got)
		}
	}
}

func TestRELCANDuplicateSuppression(t *testing.T) {
	// Under fallback, the diffusion is bounded by J like EDCAN's.
	script := fault.NewScript(fault.Rule{
		Match:    fault.Match{Type: can.TypeRel, Param: fault.AnyParam, Sender: 0},
		Decision: fault.Decision{CrashSenders: true},
	})
	r := newRelRig(t, 8, script)
	r.nodes[0].rel.Broadcast([]byte("d"))
	r.sched.Run()
	frames := r.bus.Stats().FramesOK
	// Original + at most J+1-ish fallback copies, not n.
	if frames > 5 {
		t.Fatalf("frames = %d, fallback diffusion unbounded", frames)
	}
	for i := 1; i < 8; i++ {
		if len(r.nodes[i].got) != 1 {
			t.Fatalf("node %d delivered %v", i, r.nodes[i].got)
		}
	}
}

func TestRELCANMultipleMessagesAndRefWrap(t *testing.T) {
	r := newRelRig(t, 3, nil)
	refs := map[uint8]bool{}
	for k := 0; k < 5; k++ {
		ref, err := r.nodes[0].rel.Broadcast([]byte{byte('a' + k)})
		if err != nil {
			t.Fatal(err)
		}
		if ref&can.RelConfirmFlag != 0 {
			t.Fatalf("ref %#x collides with the confirm flag", ref)
		}
		if refs[ref] {
			t.Fatalf("ref %d reused", ref)
		}
		refs[ref] = true
		r.sched.Run()
	}
	if len(r.nodes[1].got) != 5 {
		t.Fatalf("deliveries = %v", r.nodes[1].got)
	}
}

func TestRELCANConcurrentSenders(t *testing.T) {
	r := newRelRig(t, 4, nil)
	r.sched.At(0, func() {
		r.nodes[0].rel.Broadcast([]byte("a"))
		r.nodes[1].rel.Broadcast([]byte("b"))
	})
	r.sched.Run()
	for i, nd := range r.nodes {
		if len(nd.got) != 2 {
			t.Fatalf("node %d delivered %v", i, nd.got)
		}
	}
}

func TestRELCANConfigValidation(t *testing.T) {
	if (RELCANConfig{J: 1}).Validate() == nil {
		t.Fatal("zero timeout accepted")
	}
	if (RELCANConfig{Timeout: time.Millisecond, J: -1}).Validate() == nil {
		t.Fatal("negative J accepted")
	}
}
