package edcan

import (
	"testing"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/fault"
	"canely/internal/sim"
)

type node struct {
	port  *bus.Port
	layer *canlayer.Layer
	bc    *Broadcaster
	got   []string
}

type rig struct {
	sched *sim.Scheduler
	bus   *bus.Bus
	nodes []*node
}

func newRig(t *testing.T, n, j int, inj fault.Injector) *rig {
	t.Helper()
	s := sim.NewScheduler()
	b := bus.New(s, bus.Config{Injector: inj})
	r := &rig{sched: s, bus: b}
	for i := 0; i < n; i++ {
		nd := &node{}
		nd.port = b.Attach(can.NodeID(i))
		nd.layer = canlayer.New(nd.port)
		bc, err := New(nd.layer, Config{J: j})
		if err != nil {
			t.Fatal(err)
		}
		nd.bc = bc
		bc.Deliver(func(origin can.NodeID, ref uint8, data []byte) {
			nd.got = append(nd.got, string(data))
		})
		r.nodes = append(r.nodes, nd)
	}
	return r
}

func TestBroadcastDeliversExactlyOnceEverywhere(t *testing.T) {
	r := newRig(t, 4, 2, nil)
	if _, err := r.nodes[0].bc.Broadcast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	r.sched.Run()
	for i, nd := range r.nodes {
		if len(nd.got) != 1 || nd.got[0] != "hello" {
			t.Fatalf("node %d delivered %v", i, nd.got)
		}
	}
}

func TestDuplicateSuppressionBoundsTraffic(t *testing.T) {
	// With J=1, once 2 copies circulate the remaining retransmission
	// requests are aborted: total frames stay well under n.
	r := newRig(t, 8, 1, nil)
	r.nodes[0].bc.Broadcast([]byte("x"))
	r.sched.Run()
	frames := r.bus.Stats().FramesOK
	if frames > 4 {
		t.Fatalf("frames = %d, duplicate suppression ineffective", frames)
	}
	for i, nd := range r.nodes {
		if len(nd.got) != 1 {
			t.Fatalf("node %d deliveries = %d", i, len(nd.got))
		}
	}
}

func TestAgreementDespiteInconsistentOmissionAndSenderCrash(t *testing.T) {
	// LCAN2's weakness made good: the first transmission reaches only node
	// 1, the origin dies, node 1's eager retransmission covers the rest.
	script := fault.NewScript(fault.Rule{
		Match: fault.NewMatch(can.TypeRB),
		Decision: fault.Decision{
			InconsistentVictims: can.MakeSet(2, 3),
			CrashSenders:        true,
		},
	})
	r := newRig(t, 4, 2, script)
	r.nodes[0].bc.Broadcast([]byte("critical"))
	r.sched.Run()
	if !script.Exhausted() {
		t.Fatalf("scenario did not trigger: %s", script.PendingRules())
	}
	for i := 1; i < 4; i++ {
		if len(r.nodes[i].got) != 1 || r.nodes[i].got[0] != "critical" {
			t.Fatalf("node %d delivered %v (agreement broken)", i, r.nodes[i].got)
		}
	}
}

func TestConcurrentBroadcastsKeepIdentity(t *testing.T) {
	r := newRig(t, 3, 2, nil)
	r.nodes[0].bc.Broadcast([]byte("a"))
	r.nodes[1].bc.Broadcast([]byte("b"))
	r.sched.Run()
	for i, nd := range r.nodes {
		if len(nd.got) != 2 {
			t.Fatalf("node %d deliveries = %v", i, nd.got)
		}
		seen := map[string]bool{}
		for _, m := range nd.got {
			seen[m] = true
		}
		if !seen["a"] || !seen["b"] {
			t.Fatalf("node %d missing a message: %v", i, nd.got)
		}
	}
}

func TestRefsDistinguishMessagesFromSameOrigin(t *testing.T) {
	r := newRig(t, 2, 2, nil)
	ref1, _ := r.nodes[0].bc.Broadcast([]byte("m1"))
	ref2, _ := r.nodes[0].bc.Broadcast([]byte("m2"))
	if ref1 == ref2 {
		t.Fatal("refs must differ")
	}
	r.sched.Run()
	if len(r.nodes[1].got) != 2 {
		t.Fatalf("deliveries = %v", r.nodes[1].got)
	}
	if r.nodes[1].bc.Copies(0, ref1) == 0 || r.nodes[1].bc.Copies(0, ref2) == 0 {
		t.Fatal("copy accounting wrong")
	}
}

func TestRetransmissionsCountedForAblation(t *testing.T) {
	r := newRig(t, 5, 10, nil) // large J: no suppression
	r.nodes[0].bc.Broadcast([]byte("z"))
	r.sched.Run()
	total := 0
	for _, nd := range r.nodes {
		total += nd.bc.Retransmissions
	}
	// Every recipient retransmits once: n-1 = 4 eager retransmissions —
	// the bandwidth price FDA's remote-frame clustering avoids.
	if total != 4 {
		t.Fatalf("retransmissions = %d, want 4", total)
	}
	if got := r.bus.Stats().FramesOK; got != 5 {
		t.Fatalf("frames = %d, want 5 (original + 4 diffusions)", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if (Config{J: -1}).Validate() == nil {
		t.Fatal("negative J accepted")
	}
}
