package edcan

import (
	"fmt"
	"time"

	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/sim"
)

// RELCAN is the lazy two-phase reliable broadcast of [18], the bandwidth-
// frugal sibling of the eager EDCAN diffusion:
//
//  1. The sender transmits the message and, on its transmit confirmation,
//     broadcasts a lightweight CONFIRM remote frame. CAN's acceptance rule
//     (a receiver takes a frame as valid once the last-but-one bit of its
//     end-of-frame passed without error) means a confirmed transmission
//     reached every correct node, so recipients deliver on CONFIRM.
//  2. If the CONFIRM does not arrive within the fallback timeout — the
//     sender crashed mid-protocol, possibly leaving an inconsistent
//     omission behind — the recipients switch to eager diffusion: each
//     retransmits its copy (bounded by the inconsistent omission degree)
//     and delivers.
//
// Fault-free cost: exactly two physical frames regardless of network size.
// Failure cost: the EDCAN diffusion, paid only when a sender actually dies.
type RELCAN struct {
	cfg   RELCANConfig
	sched *sim.Scheduler
	layer *canlayer.Layer
	local can.NodeID

	deliver []func(origin can.NodeID, ref uint8, data []byte)

	state   map[msgKey]*relState
	nextRef uint8

	// Confirms and Fallbacks count protocol outcomes (diagnostics).
	Confirms  int
	Fallbacks int
}

// RELCANConfig parameterizes the protocol.
type RELCANConfig struct {
	// Timeout is the fallback delay: how long a recipient waits for the
	// sender's CONFIRM before diffusing eagerly. It must exceed the
	// worst-case delay between the message and its confirmation (one
	// frame slot plus queuing).
	Timeout time.Duration
	// J is the inconsistent omission degree bound.
	J int
}

// Validate checks the configuration.
func (c RELCANConfig) Validate() error {
	if c.Timeout <= 0 {
		return fmt.Errorf("edcan: RELCAN timeout must be positive, got %v", c.Timeout)
	}
	if c.J < 0 {
		return fmt.Errorf("edcan: J must be non-negative, got %d", c.J)
	}
	return nil
}

type relState struct {
	data      []byte
	have      bool
	confirmed bool
	delivered bool
	ndup      int
	retx      bool
	pendMid   can.MID
	hasPend   bool
	timer     *sim.Timer
}

// NewRELCAN creates the protocol entity on a layer.
func NewRELCAN(sched *sim.Scheduler, layer *canlayer.Layer, cfg RELCANConfig) (*RELCAN, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &RELCAN{
		cfg:   cfg,
		sched: sched,
		layer: layer,
		local: layer.NodeID(),
		state: make(map[msgKey]*relState),
	}
	layer.HandleDataInd(r.onDataInd)
	layer.HandleDataCnf(r.onDataCnf)
	layer.HandleRTRInd(r.onRTRInd)
	return r, nil
}

// Deliver registers a consumer; each message is delivered at most once.
func (r *RELCAN) Deliver(fn func(origin can.NodeID, ref uint8, data []byte)) {
	r.deliver = append(r.deliver, fn)
}

// Broadcast reliably broadcasts a payload. References wrap at 128 (the top
// bit marks confirmations); as with EDCAN, a reference may only be reused
// once its previous incarnation has left the network, which holds at CAN
// bandwidths by the same time-separation argument the paper applies to
// node reintegration.
func (r *RELCAN) Broadcast(data []byte) (uint8, error) {
	ref := r.nextRef & ^uint8(can.RelConfirmFlag)
	r.nextRef = (r.nextRef + 1) % can.RelConfirmFlag
	if err := r.layer.DataReq(can.RelSign(r.local, r.local, ref), data); err != nil {
		return 0, err
	}
	return ref, nil
}

func (r *RELCAN) get(key msgKey) *relState {
	st, ok := r.state[key]
	if !ok {
		st = &relState{}
		r.state[key] = st
	}
	return st
}

func (r *RELCAN) deliverOnce(key msgKey, st *relState) {
	if st.delivered || !st.have {
		return
	}
	st.delivered = true
	if st.timer != nil {
		st.timer.Stop()
	}
	for _, fn := range r.deliver {
		fn(key.origin, key.ref, st.data)
	}
}

// onDataInd handles message copies — originals from the origin and
// fallback retransmissions from peers (own transmissions included).
func (r *RELCAN) onDataInd(mid can.MID, data []byte) {
	if mid.Type != can.TypeRel {
		return
	}
	key := msgKey{can.NodeID(mid.Param), mid.Ref}
	st := r.get(key)
	st.ndup++
	if st.ndup > r.cfg.J && st.hasPend {
		// Enough copies circulate that even J inconsistent omissions
		// cannot have hidden the message: our own fallback copy is
		// redundant (same duplicate-suppression rule as EDCAN/RHA).
		r.layer.AbortReq(st.pendMid)
		st.hasPend = false
	}
	if !st.have {
		st.have = true
		st.data = append([]byte(nil), data...)
	}
	switch {
	case key.origin == r.local:
		// Own message observed on the bus: safe to deliver locally.
		r.deliverOnce(key, st)
	case mid.Src != key.origin:
		// A fallback retransmission: the sender is gone. Deliver, and join
		// the diffusion unless enough copies circulate already.
		r.deliverOnce(key, st)
		r.maybeRetransmit(key, st)
	case st.confirmed:
		r.deliverOnce(key, st)
	case st.timer == nil:
		// First original copy, no confirmation yet: await it.
		key := key
		st.timer = sim.NewTimer(r.sched, func() { r.fallback(key) })
		st.timer.Start(r.cfg.Timeout)
	}
}

// onDataCnf fires at the origin when its message completed: per the CAN
// acceptance rule every correct node now holds it, so confirm.
func (r *RELCAN) onDataCnf(mid can.MID) {
	if mid.Type != can.TypeRel || can.NodeID(mid.Param) != r.local {
		return
	}
	_ = r.layer.RTRReq(can.RelConfirmSign(r.local, mid.Ref))
}

// onRTRInd handles CONFIRM frames.
func (r *RELCAN) onRTRInd(mid can.MID) {
	if mid.Type != can.TypeRel || mid.Ref&can.RelConfirmFlag == 0 {
		return
	}
	key := msgKey{can.NodeID(mid.Param), mid.Ref &^ can.RelConfirmFlag}
	st := r.get(key)
	st.confirmed = true
	r.Confirms++
	r.deliverOnce(key, st)
}

// fallback fires when the confirmation never came: the sender failed.
func (r *RELCAN) fallback(key msgKey) {
	st := r.get(key)
	if st.delivered || st.confirmed {
		return
	}
	r.Fallbacks++
	r.deliverOnce(key, st)
	r.maybeRetransmit(key, st)
}

// maybeRetransmit joins the eager diffusion, bounded by J.
func (r *RELCAN) maybeRetransmit(key msgKey, st *relState) {
	if st.retx || st.ndup > r.cfg.J {
		return
	}
	st.retx = true
	mid := can.RelSign(key.origin, r.local, key.ref)
	if err := r.layer.DataReq(mid, st.data); err == nil {
		st.pendMid = mid
		st.hasPend = true
	}
}
