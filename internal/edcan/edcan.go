// Package edcan implements the EDCAN ("Eager Diffusion") reliable broadcast
// protocol of [18] ("Fault-tolerant broadcasts in CAN", FTCS-28) for
// application data messages. EDCAN is the ancestor of the paper's FDA
// micro-protocol: every recipient of the first copy of a message eagerly
// retransmits it, so even if the original transmission suffered an
// inconsistent omission and the sender crashed before retransmitting, any
// single correct recipient suffices to complete the broadcast.
//
// Unlike FDA — which specializes the scheme to contentless failure-signs
// carried in clusterable remote frames — EDCAN diffuses data frames, so
// each retransmission is a distinct physical frame (identified by the
// retransmitter). The cost difference between the two is exactly what the
// clustering ablation benchmark measures.
package edcan

import (
	"fmt"

	"canely/internal/can"
	"canely/internal/canlayer"
)

// Config parameterizes the broadcaster.
type Config struct {
	// J is the inconsistent omission degree bound (LCAN4): once more than
	// J copies of a message were observed, a pending local retransmission
	// is aborted.
	J int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.J < 0 {
		return fmt.Errorf("edcan: J must be non-negative, got %d", c.J)
	}
	return nil
}

// msgKey identifies one broadcast message network-wide.
type msgKey struct {
	origin can.NodeID
	ref    uint8
}

// Broadcaster is the EDCAN protocol entity at one node.
type Broadcaster struct {
	cfg   Config
	layer *canlayer.Layer
	local can.NodeID

	deliver []func(origin can.NodeID, ref uint8, data []byte)

	ndup    map[msgKey]int
	pending map[msgKey]can.MID
	nextRef uint8

	// Retransmissions counts eager retransmissions issued locally
	// (bandwidth accounting for the ablation experiments).
	Retransmissions int
}

// New creates the protocol entity and hooks it to the layer.
func New(layer *canlayer.Layer, cfg Config) (*Broadcaster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := &Broadcaster{
		cfg:     cfg,
		layer:   layer,
		local:   layer.NodeID(),
		ndup:    make(map[msgKey]int),
		pending: make(map[msgKey]can.MID),
	}
	layer.HandleDataInd(b.onDataInd)
	return b, nil
}

// Deliver registers a message consumer. Messages are delivered exactly
// once per (origin, ref), in reception order.
func (b *Broadcaster) Deliver(fn func(origin can.NodeID, ref uint8, data []byte)) {
	b.deliver = append(b.deliver, fn)
}

// Broadcast reliably broadcasts a payload, returning the message reference.
//
// References wrap after 256 messages per origin: a reference may only be
// reused once its previous incarnation has left the network (delivered
// everywhere and no retransmissions in flight). This is the paper's own
// time-separation discipline — the same one the membership protocol
// applies to node reintegration — and holds trivially at CAN bandwidths,
// where 256 in-flight broadcasts from one origin exceed the wire capacity
// by orders of magnitude.
func (b *Broadcaster) Broadcast(data []byte) (uint8, error) {
	ref := b.nextRef
	b.nextRef++
	mid := can.RBSign(b.local, b.local, ref)
	if err := b.layer.DataReq(mid, data); err != nil {
		return 0, err
	}
	b.pending[msgKey{b.local, ref}] = mid
	return ref, nil
}

// onDataInd implements the eager diffusion: deliver the first copy and
// retransmit it under the local identity; suppress retransmissions once
// more than J copies circulate.
func (b *Broadcaster) onDataInd(mid can.MID, data []byte) {
	if mid.Type != can.TypeRB {
		return
	}
	key := msgKey{can.NodeID(mid.Param), mid.Ref}
	b.ndup[key]++
	switch {
	case b.ndup[key] == 1:
		for _, fn := range b.deliver {
			fn(key.origin, key.ref, data)
		}
		if key.origin != b.local {
			retx := can.RBSign(key.origin, b.local, key.ref)
			if err := b.layer.DataReq(retx, data); err == nil {
				b.pending[key] = retx
				b.Retransmissions++
			}
		}
	case b.ndup[key] > b.cfg.J:
		if pend, ok := b.pending[key]; ok {
			b.layer.AbortReq(pend)
			delete(b.pending, key)
		}
	}
}

// Copies returns how many copies of a message were observed locally.
func (b *Broadcaster) Copies(origin can.NodeID, ref uint8) int {
	return b.ndup[msgKey{origin, ref}]
}
