// Package stack makes the per-node layer architecture of the paper's
// Figure 5 explicit: a Medium abstraction over the simulated channel, a
// Port per (node, medium) attachment, and a Stack that composes the
// exposed controller interface, the CAN standard layer (with can-data.nty),
// the FDA and failure-detection entities, the RHA/site-membership protocol
// and the optional companion services (process groups over RELCAN, totally
// ordered broadcast, clock synchronization).
//
// Two substrates implement Medium: the bit-time-accurate internal/bus
// simulator (full trace and per-type wire accounting — the diagnostic
// substrate) and internal/fastbus, a frame-level discrete-event substrate
// with identical MAC/LLC semantics but none of the diagnostic overhead —
// the Monte-Carlo campaign workhorse. Both resolve arbitration, wired-AND
// remote-frame clustering, exact frame durations and end-of-frame
// inconsistent omissions; a seeded run delivers the same frame sequence and
// reaches the same membership views on either.
//
// Every layer boundary carries a uniform hook point (Hooks) for trace
// events and fault injection, so experiments can observe or perturb the
// stack without reaching into protocol internals.
package stack

import (
	"fmt"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/clocksync"
	"canely/internal/core/fd"
	"canely/internal/core/groups"
	"canely/internal/core/membership"
	"canely/internal/edcan"
	"canely/internal/redundancy"
	"canely/internal/sim"
	"canely/internal/trace"
)

// Port is the per-node endpoint a Medium exposes: the exposed controller
// interface of Figure 4 (transmit request, abort, pending probes, the
// indication callback registration) plus the crash/fault-confinement
// surface the facade and the redundancy layer observe.
type Port interface {
	canlayer.Controller
	// Crash fail-silences the node on this medium.
	Crash()
	// Alive reports whether the node has not crashed.
	Alive() bool
	// Operational reports whether the controller exchanges traffic (alive
	// and not bus-off).
	Operational() bool
	// State returns the fault-confinement state.
	State() bus.ControllerState
	// Counters returns (TEC, REC).
	Counters() (tec, rec int)
	// TxSuccesses returns the number of successfully transmitted frames.
	TxSuccesses() int
	// RxSuccesses returns the number of successfully received frames.
	RxSuccesses() int
}

// Medium is one simulated channel: nodes attach Ports to it, and it answers
// the timing and accounting queries the experiments take their measurements
// from. Delivery and confirmation flow through the bus.Handler each Port's
// SetHandler installs.
type Medium interface {
	// Attach connects a new controller for the node. Attaching an id twice
	// panics.
	Attach(id can.NodeID) Port
	// Rate returns the signalling rate.
	Rate() can.BitRate
	// AliveSet returns the set of operational nodes.
	AliveSet() can.NodeSet
	// Stats returns a snapshot of the accumulated wire statistics.
	Stats() bus.Stats
	// Elapsed returns the medium's time base for utilization computations.
	Elapsed() time.Duration
}

// Hooks is the uniform observation and fault-injection surface at the
// stack's layer boundaries. Every field is optional; a nil Hooks (or any
// nil field) costs nothing. Hook callbacks observe after the protocol
// entities at the same boundary, except FilterIndication, which runs first
// and may suppress the event entirely.
type Hooks struct {
	// FilterIndication runs at the controller -> standard-layer boundary
	// before any protocol entity sees the frame; returning false drops the
	// indication at this node only — targeted receive-omission injection.
	FilterIndication func(node can.NodeID, f can.Frame, own bool) bool
	// OnIndication observes every frame indication entering the standard
	// layer (own transmissions included).
	OnIndication func(node can.NodeID, f can.Frame, own bool)
	// OnConfirm observes transmit confirmations at the same boundary.
	OnConfirm func(node can.NodeID, f can.Frame)
	// OnBusOff observes fault-confinement shutdown at the same boundary.
	OnBusOff func(node can.NodeID)
	// OnDataNty observes the can-data.nty primitive at the standard-layer ->
	// failure-detection boundary.
	OnDataNty func(node can.NodeID, mid can.MID)
	// OnFDANotify observes fda-can.nty (FDA -> detector boundary).
	OnFDANotify func(node, failed can.NodeID)
	// OnFDNotify observes fd-can.nty (detector -> membership boundary).
	OnFDNotify func(node, failed can.NodeID)
	// OnViewChange observes msh-can.nty (membership -> application
	// boundary).
	OnViewChange func(node can.NodeID, ch membership.Change)
}

// Config parameterizes one node's stack.
type Config struct {
	// FD parameterizes the failure-detection layer (Tb, Ttd).
	FD fd.Config
	// Membership parameterizes the RHA/site-membership layer.
	Membership membership.Config
	// J is the inconsistent omission degree bound shared by the
	// EDCAN-family broadcast services the stack can enable.
	J int
	// DualGrace is the media-redundancy selection grace window (zero picks
	// the redundancy layer's default).
	DualGrace time.Duration
}

// Stack is one node's protocol stack, assembled bottom-up over one or two
// media. Fields are exported in layer order; the zero value is not usable —
// build one with New.
type Stack struct {
	sched *sim.Scheduler
	cfg   Config
	tr    *trace.Trace
	id    can.NodeID

	// Ports holds the per-medium attachments in medium order.
	Ports []Port
	// Dual is the media-redundancy selection unit (nil single-medium).
	Dual *redundancy.DualPort
	// Ctrl is the exposed controller interface the standard layer drives:
	// Ports[0], the DualPort, or the hook interposer.
	Ctrl canlayer.Controller
	// Layer is the CAN standard layer with the can-data.nty extension.
	Layer *canlayer.Layer
	// FDA is the failure detection agreement micro-protocol entity.
	FDA *fd.FDA
	// Det is the node failure detection protocol entity.
	Det *fd.Detector
	// Msh is the RHA/site membership protocol entity.
	Msh *membership.Protocol

	// Optional companion services, nil until enabled.
	Groups  *groups.Service
	Ordered *edcan.Ordered
	Sync    *clocksync.Synchronizer
}

// New assembles a node's stack on the given media (one, or two for media
// redundancy). hooks may be nil.
func New(sched *sim.Scheduler, media []Medium, id can.NodeID, cfg Config, tr *trace.Trace, hooks *Hooks) (*Stack, error) {
	switch len(media) {
	case 1, 2:
	default:
		return nil, fmt.Errorf("stack: need one or two media, got %d", len(media))
	}
	st := &Stack{sched: sched, cfg: cfg, tr: tr, id: id}
	for _, m := range media {
		st.Ports = append(st.Ports, m.Attach(id))
	}
	var ctrl canlayer.Controller = st.Ports[0]
	if len(media) == 2 {
		st.Dual = redundancy.NewDualPort(sched, st.Ports[0], st.Ports[1], cfg.DualGrace)
		ctrl = st.Dual
	}
	if hooks != nil {
		ctrl = &hookedController{Controller: ctrl, node: id, hooks: hooks}
	}
	st.Ctrl = ctrl
	st.Layer = canlayer.New(ctrl)
	st.FDA = fd.NewFDA(st.Layer)
	det, err := fd.NewDetector(sched, st.Layer, st.FDA, cfg.FD, tr)
	if err != nil {
		return nil, err
	}
	st.Det = det
	msh, err := membership.New(sched, st.Layer, det, cfg.Membership, tr)
	if err != nil {
		return nil, err
	}
	st.Msh = msh
	if hooks != nil {
		st.registerUpperHooks(hooks)
	}
	return st, nil
}

// registerUpperHooks attaches the upper-boundary observers after the real
// consumers, so hook observation never reorders protocol processing.
func (st *Stack) registerUpperHooks(h *Hooks) {
	id := st.id
	if fn := h.OnDataNty; fn != nil {
		st.Layer.HandleDataNty(func(mid can.MID) { fn(id, mid) })
	}
	if fn := h.OnFDANotify; fn != nil {
		st.FDA.Notify(func(failed can.NodeID) { fn(id, failed) })
	}
	if fn := h.OnFDNotify; fn != nil {
		st.Det.Notify(func(failed can.NodeID) { fn(id, failed) })
	}
	if fn := h.OnViewChange; fn != nil {
		st.Msh.OnChange(func(ch membership.Change) { fn(id, ch) })
	}
}

// ID returns the node identity.
func (st *Stack) ID() can.NodeID { return st.id }

// Crash fail-silences the node on every attached medium.
func (st *Stack) Crash() {
	if st.Dual != nil {
		st.Dual.Crash()
		return
	}
	st.Ports[0].Crash()
}

// Alive reports whether the node is operational on at least one medium.
func (st *Stack) Alive() bool {
	if st.Dual != nil {
		return st.Dual.Operational()
	}
	return st.Ports[0].Operational()
}

// ActiveMedium returns the index of the medium the node currently receives
// from (always 0 single-medium).
func (st *Stack) ActiveMedium() int {
	if st.Dual == nil {
		return 0
	}
	return st.Dual.Active()
}

// EnableGroups starts the process-group membership service: registrations
// travel over a RELCAN reliable broadcast and group views are pruned by the
// site membership service.
func (st *Stack) EnableGroups() error {
	if st.Groups != nil {
		return fmt.Errorf("stack: groups already enabled on %v", st.id)
	}
	rel, err := edcan.NewRELCAN(st.sched, st.Layer, edcan.RELCANConfig{
		Timeout: 2 * st.cfg.FD.Ttd,
		J:       st.cfg.J,
	})
	if err != nil {
		return err
	}
	st.Groups = groups.New(rel, st.Msh, st.id)
	return nil
}

// EnableOrdered starts the TOTCAN-style totally ordered broadcast service
// with the given accept-deadline offset.
func (st *Stack) EnableOrdered(delta time.Duration) error {
	if st.Ordered != nil {
		return fmt.Errorf("stack: ordered broadcast already enabled on %v", st.id)
	}
	ord, err := edcan.NewOrdered(st.sched, st.Layer, edcan.OrderedConfig{
		Delta: delta,
		J:     st.cfg.J,
	})
	if err != nil {
		return err
	}
	st.Ordered = ord
	return nil
}

// EnableClockSync starts the clock synchronization service. The master is
// the lowest node in the agreed membership view, so a master crash is
// healed by the membership service with no extra election.
func (st *Stack) EnableClockSync(drift float64, period time.Duration) error {
	if st.Sync != nil {
		return fmt.Errorf("stack: clock sync already enabled on %v", st.id)
	}
	clock := clocksync.NewClock(st.sched, drift, time.Microsecond)
	master := func() can.NodeID {
		ids := st.Msh.View().IDs()
		if len(ids) == 0 {
			return st.id // not yet integrated: act alone
		}
		return ids[0]
	}
	s, err := clocksync.New(st.sched, st.Layer, clock, master, clocksync.Config{Period: period})
	if err != nil {
		return err
	}
	st.Sync = s
	s.Start()
	return nil
}

// hookedController interposes the controller -> standard-layer boundary.
type hookedController struct {
	canlayer.Controller
	node  can.NodeID
	hooks *Hooks
}

// SetHandler wraps the layer's handler with the boundary hooks.
func (hc *hookedController) SetHandler(h bus.Handler) {
	hc.Controller.SetHandler(&hookHandler{inner: h, node: hc.node, hooks: hc.hooks})
}

type hookHandler struct {
	inner bus.Handler
	node  can.NodeID
	hooks *Hooks
}

func (h *hookHandler) OnFrame(f can.Frame, own bool) {
	if flt := h.hooks.FilterIndication; flt != nil && !flt(h.node, f, own) {
		return
	}
	if fn := h.hooks.OnIndication; fn != nil {
		fn(h.node, f, own)
	}
	h.inner.OnFrame(f, own)
}

func (h *hookHandler) OnConfirm(f can.Frame) {
	if fn := h.hooks.OnConfirm; fn != nil {
		fn(h.node, f)
	}
	h.inner.OnConfirm(f)
}

func (h *hookHandler) OnBusOff() {
	if fn := h.hooks.OnBusOff; fn != nil {
		fn(h.node)
	}
	h.inner.OnBusOff()
}
