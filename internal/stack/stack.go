// Package stack makes the per-node layer architecture of the paper's
// Figure 5 explicit: a Medium abstraction over the simulated channel, a
// Port per (node, medium) attachment, and a Stack that composes the
// exposed controller interface, the CAN standard layer (with can-data.nty),
// the sans-I/O protocol cores (FDA, failure detection, RHA, site
// membership — internal/core) and the optional companion services (process
// groups over RELCAN, totally ordered broadcast, clock synchronization).
//
// The Stack is the runtime binding of the cores: it pumps frame
// indications and timer expiries into the composite core as proto.Events
// and executes the returned proto.Commands against the layer, the
// scheduler and the notification hooks. All protocol state lives in the
// cores; the binding owns only the alarm machinery (one scan event and two
// lazy timers per node), the notification fan-out and the optional event
// recorder (internal/replay).
//
// Two substrates implement Medium: the bit-time-accurate internal/bus
// simulator (full trace and per-type wire accounting — the diagnostic
// substrate) and internal/fastbus, a frame-level discrete-event substrate
// with identical MAC/LLC semantics but none of the diagnostic overhead —
// the Monte-Carlo campaign workhorse. Both resolve arbitration, wired-AND
// remote-frame clustering, exact frame durations and end-of-frame
// inconsistent omissions; a seeded run delivers the same frame sequence and
// reaches the same membership views on either.
//
// Every layer boundary carries a uniform hook point (Hooks) for trace
// events and fault injection, so experiments can observe or perturb the
// stack without reaching into protocol internals.
package stack

import (
	"fmt"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/clocksync"
	"canely/internal/core"
	"canely/internal/core/fd"
	"canely/internal/core/groups"
	"canely/internal/core/membership"
	"canely/internal/core/proto"
	"canely/internal/edcan"
	"canely/internal/redundancy"
	"canely/internal/replay"
	"canely/internal/sim"
	"canely/internal/trace"
)

// Port is the per-node endpoint a Medium exposes: the exposed controller
// interface of Figure 4 (transmit request, abort, pending probes, the
// indication callback registration) plus the crash/fault-confinement
// surface the facade and the redundancy layer observe.
type Port interface {
	canlayer.Controller
	// Crash fail-silences the node on this medium.
	Crash()
	// Alive reports whether the node has not crashed.
	Alive() bool
	// Operational reports whether the controller exchanges traffic (alive
	// and not bus-off).
	Operational() bool
	// State returns the fault-confinement state.
	State() bus.ControllerState
	// Counters returns (TEC, REC).
	Counters() (tec, rec int)
	// TxSuccesses returns the number of successfully transmitted frames.
	TxSuccesses() int
	// RxSuccesses returns the number of successfully received frames.
	RxSuccesses() int
}

// Medium is one simulated channel: nodes attach Ports to it, and it answers
// the timing and accounting queries the experiments take their measurements
// from. Delivery and confirmation flow through the bus.Handler each Port's
// SetHandler installs.
type Medium interface {
	// Attach connects a new controller for the node. Attaching an id twice
	// panics.
	Attach(id can.NodeID) Port
	// Rate returns the signalling rate.
	Rate() can.BitRate
	// AliveSet returns the set of operational nodes.
	AliveSet() can.NodeSet
	// Stats returns a snapshot of the accumulated wire statistics.
	Stats() bus.Stats
	// Elapsed returns the medium's time base for utilization computations.
	Elapsed() time.Duration
}

// Hooks is the uniform observation and fault-injection surface at the
// stack's layer boundaries. Every field is optional; a nil Hooks (or any
// nil field) costs nothing. Hook callbacks observe after the protocol
// entities at the same boundary, except FilterIndication, which runs first
// and may suppress the event entirely.
type Hooks struct {
	// FilterIndication runs at the controller -> standard-layer boundary
	// before any protocol entity sees the frame; returning false drops the
	// indication at this node only — targeted receive-omission injection.
	FilterIndication func(node can.NodeID, f can.Frame, own bool) bool
	// OnIndication observes every frame indication entering the standard
	// layer (own transmissions included).
	OnIndication func(node can.NodeID, f can.Frame, own bool)
	// OnConfirm observes transmit confirmations at the same boundary.
	OnConfirm func(node can.NodeID, f can.Frame)
	// OnBusOff observes fault-confinement shutdown at the same boundary.
	OnBusOff func(node can.NodeID)
	// OnDataNty observes the can-data.nty primitive at the standard-layer ->
	// failure-detection boundary.
	OnDataNty func(node can.NodeID, mid can.MID)
	// OnFDANotify observes fda-can.nty (FDA -> detector boundary).
	OnFDANotify func(node, failed can.NodeID)
	// OnFDNotify observes fd-can.nty (detector -> membership boundary).
	OnFDNotify func(node, failed can.NodeID)
	// OnViewChange observes msh-can.nty (membership -> application
	// boundary).
	OnViewChange func(node can.NodeID, ch membership.Change)
}

// Config parameterizes one node's stack.
type Config struct {
	// FD parameterizes the failure-detection layer (Tb, Ttd).
	FD fd.Config
	// Membership parameterizes the RHA/site-membership layer.
	Membership membership.Config
	// J is the inconsistent omission degree bound shared by the
	// EDCAN-family broadcast services the stack can enable.
	J int
	// DualGrace is the media-redundancy selection grace window (zero picks
	// the redundancy layer's default).
	DualGrace time.Duration
	// Recorder, when non-nil, captures this node's core event/command
	// streams for deterministic re-execution (internal/replay).
	Recorder *replay.Log
}

// Stack is one node's protocol stack, assembled bottom-up over one or two
// media. Fields are exported in layer order; the zero value is not usable —
// build one with New.
type Stack struct {
	sched *sim.Scheduler
	cfg   Config
	tr    *trace.Trace
	id    can.NodeID

	// Ports holds the per-medium attachments in medium order.
	Ports []Port
	// Dual is the media-redundancy selection unit (nil single-medium).
	Dual *redundancy.DualPort
	// Ctrl is the exposed controller interface the standard layer drives:
	// Ports[0], the DualPort, or the hook interposer.
	Ctrl canlayer.Controller
	// Layer is the CAN standard layer with the can-data.nty extension.
	Layer *canlayer.Layer
	// Core is the composite sans-I/O protocol core this binding drives.
	Core *core.Node
	// FDA, Det, Msh and RHA alias the sub-cores of Core for diagnostics.
	FDA *fd.FDA
	Det *fd.Detector
	Msh *membership.Protocol
	RHA *membership.RHA

	// Binding-owned alarm machinery: the failure detector's scan event and
	// the lazy membership-cycle and RHA-termination timers.
	scanEv   sim.Event
	scanFire func()
	mshTimer *sim.Timer
	rhaTimer *sim.Timer

	// onChange fans out msh-can.nty consumers in registration order (the
	// boundary hook first, then services and the application).
	onChange []func(membership.Change)
	hooks    *Hooks

	// bufs is a free-list of command buffers for inject. A plain reusable
	// field would not do: executing a command stream can re-enter inject
	// (a CmdNotifyView consumer may call Join/Leave/FDStart), and the outer
	// stream must survive the nested step. Depth beyond 2 is rare, so the
	// list stays tiny and steady-state injects allocate nothing.
	bufs []*proto.CommandBuf

	// Optional companion services, nil until enabled.
	Groups  *groups.Service
	Ordered *edcan.Ordered
	Sync    *clocksync.Synchronizer
}

// New assembles a node's stack on the given media (one, or two for media
// redundancy). hooks may be nil.
func New(sched *sim.Scheduler, media []Medium, id can.NodeID, cfg Config, tr *trace.Trace, hooks *Hooks) (*Stack, error) {
	switch len(media) {
	case 1, 2:
	default:
		return nil, fmt.Errorf("stack: need one or two media, got %d", len(media))
	}
	st := &Stack{sched: sched, cfg: cfg, tr: tr, id: id, hooks: hooks}
	for _, m := range media {
		st.Ports = append(st.Ports, m.Attach(id))
	}
	var ctrl canlayer.Controller = st.Ports[0]
	if len(media) == 2 {
		st.Dual = redundancy.NewDualPort(sched, st.Ports[0], st.Ports[1], cfg.DualGrace)
		ctrl = st.Dual
	}
	if hooks != nil {
		ctrl = &hookedController{Controller: ctrl, node: id, hooks: hooks}
	}
	st.Ctrl = ctrl
	st.Layer = canlayer.New(ctrl)
	cn, err := core.New(id, core.Config{FD: cfg.FD, Membership: cfg.Membership})
	if err != nil {
		return nil, err
	}
	st.Core = cn
	st.FDA, st.Det, st.Msh, st.RHA = cn.FDA, cn.Det, cn.Msh, cn.RHA
	if cfg.Recorder != nil {
		cfg.Recorder.Register(id, core.Config{FD: cfg.FD, Membership: cfg.Membership})
	}

	// Alarm machinery. The scan event is raw (cancel + reschedule chases
	// the earliest deadline); the cycle and termination alarms are lazy
	// timers.
	st.scanFire = func() {
		// Drop the handle: the scheduler recycles the fired event's slot
		// once this callback returns. Generation-checked handles make a
		// stale Cancel a no-op anyway, but clearing keeps the invariant
		// "scanEv names the pending scan or nothing" explicit.
		st.scanEv = sim.Event{}
		st.inject(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFDScan})
	}
	st.mshTimer = sim.NewTimer(sched, func() {
		st.inject(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerMshCycle})
	})
	st.rhaTimer = sim.NewTimer(sched, func() {
		st.inject(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerRHATerm})
	})

	// Event pumps, in the handler order of the layered implementation:
	// remote frames feed FDA/detector/membership, data notifications feed
	// detector/membership (with the boundary hook after them and before
	// delivery), data indications feed the RHA.
	st.Layer.HandleRTRInd(func(mid can.MID) {
		st.inject(proto.Event{Kind: proto.EvRTRInd, MID: mid})
	})
	st.Layer.HandleDataNty(func(mid can.MID) {
		st.inject(proto.Event{Kind: proto.EvDataNty, MID: mid})
	})
	if hooks != nil && hooks.OnDataNty != nil {
		fn := hooks.OnDataNty
		st.Layer.HandleDataNty(func(mid can.MID) { fn(id, mid) })
	}
	st.Layer.HandleDataInd(func(mid can.MID, data []byte) {
		st.inject(proto.Event{Kind: proto.EvDataInd, MID: mid}.WithPayload(data))
	})

	// The view-change boundary hook observes before services and the
	// application, mirroring its registration position in the layered
	// implementation.
	if hooks != nil && hooks.OnViewChange != nil {
		fn := hooks.OnViewChange
		st.onChange = append(st.onChange, func(ch membership.Change) { fn(id, ch) })
	}
	return st, nil
}

// inject pumps one event through the composite core, records it when a
// recorder is attached, and executes the command stream. The command buffer
// comes from the stack's free-list and returns to it afterwards; the
// recorder copies what it retains.
func (st *Stack) inject(ev proto.Event) {
	ev.At = st.sched.Now()
	buf := st.getBuf()
	st.Core.StepInto(ev, buf)
	if st.cfg.Recorder != nil {
		st.cfg.Recorder.Append(st.id, ev, buf.Commands())
	}
	st.exec(buf.Commands())
	st.putBuf(buf)
}

// getBuf pops a command buffer off the free-list (or grows the list).
func (st *Stack) getBuf() *proto.CommandBuf {
	if n := len(st.bufs); n > 0 {
		buf := st.bufs[n-1]
		st.bufs = st.bufs[:n-1]
		return buf
	}
	return new(proto.CommandBuf)
}

// putBuf resets a buffer and pushes it back for reuse.
func (st *Stack) putBuf(buf *proto.CommandBuf) {
	buf.Reset()
	st.bufs = append(st.bufs, buf)
}

// exec carries out a command stream against the layer, the alarm machinery
// and the notification consumers, in order.
func (st *Stack) exec(cmds []proto.Command) {
	for _, c := range cmds {
		switch c.Kind {
		case proto.CmdSendRTR:
			if c.UnlessPending && st.Layer.PendingEquivalentRTR(c.MID) {
				continue
			}
			// A request failure means the local controller died; the
			// protocols terminate locally and the node is about to be
			// detected.
			_ = st.Layer.RTRReq(c.MID)
		case proto.CmdSendData:
			_ = st.Layer.DataReq(c.MID, c.Payload())
		case proto.CmdAbort:
			st.Layer.AbortReq(c.MID)
		case proto.CmdSetTimer:
			switch c.Timer {
			case proto.TimerFDScan:
				st.scanEv.Cancel()
				st.scanEv = st.sched.After(c.Delay, st.scanFire)
			case proto.TimerMshCycle:
				st.mshTimer.Start(c.Delay)
			case proto.TimerRHATerm:
				st.rhaTimer.Start(c.Delay)
			}
		case proto.CmdCancelTimer:
			switch c.Timer {
			case proto.TimerFDScan:
				st.scanEv.Cancel()
				st.scanEv = sim.Event{}
			case proto.TimerMshCycle:
				st.mshTimer.Stop()
			case proto.TimerRHATerm:
				st.rhaTimer.Stop()
			}
		case proto.CmdTrace:
			// Formatting is lazy: TraceText renders the message template only
			// when a sink is actually attached (the fast substrate runs with
			// no trace, so steady-state campaign steps never format).
			if st.tr != nil {
				st.tr.Emit(c.TraceKind, int(st.id), "%s", c.TraceText())
			}
		case proto.CmdNotifyView:
			ch := membership.Change{Active: c.Active, Failed: c.Failed, Left: c.Left}
			for _, fn := range st.onChange {
				fn(ch)
			}
		case proto.CmdFDANty:
			if st.hooks != nil && st.hooks.OnFDANotify != nil {
				st.hooks.OnFDANotify(st.id, c.Node)
			}
		case proto.CmdFDNty:
			if st.hooks != nil && st.hooks.OnFDNotify != nil {
				st.hooks.OnFDNotify(st.id, c.Node)
			}
		}
		// The remaining inter-core kinds (fda-req, fd-start, rha-req, ...)
		// were already routed by the composite core; here they are markers
		// with no binding-level effect.
	}
}

// Bootstrap installs a pre-agreed initial view at the membership core.
func (st *Stack) Bootstrap(view can.NodeSet) {
	st.inject(proto.Event{Kind: proto.EvBootstrap, View: view})
}

// Join requests integration of this node into the active site set.
func (st *Stack) Join() { st.inject(proto.Event{Kind: proto.EvJoin}) }

// Leave requests withdrawal of this node from the site membership view.
func (st *Stack) Leave() { st.inject(proto.Event{Kind: proto.EvLeave}) }

// OnChange registers a membership change consumer (msh-can.nty).
func (st *Stack) OnChange(fn func(membership.Change)) {
	st.onChange = append(st.onChange, fn)
}

// FDStart begins failure-detection surveillance of a node
// (fd-can.req(START, r)).
func (st *Stack) FDStart(r can.NodeID) {
	st.inject(proto.Event{Kind: proto.EvFDStart, Node: r})
}

// FDStop ends failure-detection surveillance of a node
// (fd-can.req(STOP, r)).
func (st *Stack) FDStop(r can.NodeID) {
	st.inject(proto.Event{Kind: proto.EvFDStop, Node: r})
}

// FDARequest invokes the failure-sign diffusion protocol directly
// (fda-can.req) — the detector does this on surveillance expiry; tests and
// experiments use it to exercise the FDA in isolation.
func (st *Stack) FDARequest(failed can.NodeID) {
	st.inject(proto.Event{Kind: proto.EvFDARequest, Node: failed})
}

// ID returns the node identity.
func (st *Stack) ID() can.NodeID { return st.id }

// Crash fail-silences the node on every attached medium.
func (st *Stack) Crash() {
	if st.Dual != nil {
		st.Dual.Crash()
		return
	}
	st.Ports[0].Crash()
}

// Alive reports whether the node is operational on at least one medium.
func (st *Stack) Alive() bool {
	if st.Dual != nil {
		return st.Dual.Operational()
	}
	return st.Ports[0].Operational()
}

// ActiveMedium returns the index of the medium the node currently receives
// from (always 0 single-medium).
func (st *Stack) ActiveMedium() int {
	if st.Dual == nil {
		return 0
	}
	return st.Dual.Active()
}

// siteView adapts the stack to the groups service's site membership
// dependency.
type siteView struct{ st *Stack }

func (v siteView) View() can.NodeSet                    { return v.st.Msh.View() }
func (v siteView) OnChange(fn func(membership.Change)) { v.st.OnChange(fn) }

// EnableGroups starts the process-group membership service: registrations
// travel over a RELCAN reliable broadcast and group views are pruned by the
// site membership service.
func (st *Stack) EnableGroups() error {
	if st.Groups != nil {
		return fmt.Errorf("stack: groups already enabled on %v", st.id)
	}
	rel, err := edcan.NewRELCAN(st.sched, st.Layer, edcan.RELCANConfig{
		Timeout: 2 * st.cfg.FD.Ttd,
		J:       st.cfg.J,
	})
	if err != nil {
		return err
	}
	st.Groups = groups.New(rel, siteView{st}, st.id)
	return nil
}

// EnableOrdered starts the TOTCAN-style totally ordered broadcast service
// with the given accept-deadline offset.
func (st *Stack) EnableOrdered(delta time.Duration) error {
	if st.Ordered != nil {
		return fmt.Errorf("stack: ordered broadcast already enabled on %v", st.id)
	}
	ord, err := edcan.NewOrdered(st.sched, st.Layer, edcan.OrderedConfig{
		Delta: delta,
		J:     st.cfg.J,
	})
	if err != nil {
		return err
	}
	st.Ordered = ord
	return nil
}

// EnableClockSync starts the clock synchronization service. The master is
// the lowest node in the agreed membership view, so a master crash is
// healed by the membership service with no extra election.
func (st *Stack) EnableClockSync(drift float64, period time.Duration) error {
	if st.Sync != nil {
		return fmt.Errorf("stack: clock sync already enabled on %v", st.id)
	}
	clock := clocksync.NewClock(st.sched, drift, time.Microsecond)
	master := func() can.NodeID {
		ids := st.Msh.View().IDs()
		if len(ids) == 0 {
			return st.id // not yet integrated: act alone
		}
		return ids[0]
	}
	s, err := clocksync.New(st.sched, st.Layer, clock, master, clocksync.Config{Period: period})
	if err != nil {
		return err
	}
	st.Sync = s
	s.Start()
	return nil
}

// hookedController interposes the controller -> standard-layer boundary.
type hookedController struct {
	canlayer.Controller
	node  can.NodeID
	hooks *Hooks
}

// SetHandler wraps the layer's handler with the boundary hooks.
func (hc *hookedController) SetHandler(h bus.Handler) {
	hc.Controller.SetHandler(&hookHandler{inner: h, node: hc.node, hooks: hc.hooks})
}

type hookHandler struct {
	inner bus.Handler
	node  can.NodeID
	hooks *Hooks
}

func (h *hookHandler) OnFrame(f can.Frame, own bool) {
	if flt := h.hooks.FilterIndication; flt != nil && !flt(h.node, f, own) {
		return
	}
	if fn := h.hooks.OnIndication; fn != nil {
		fn(h.node, f, own)
	}
	h.inner.OnFrame(f, own)
}

func (h *hookHandler) OnConfirm(f can.Frame) {
	if fn := h.hooks.OnConfirm; fn != nil {
		fn(h.node, f)
	}
	h.inner.OnConfirm(f)
}

func (h *hookHandler) OnBusOff() {
	if fn := h.hooks.OnBusOff; fn != nil {
		fn(h.node)
	}
	h.inner.OnBusOff()
}
