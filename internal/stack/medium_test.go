package stack

import (
	"strings"
	"testing"
)

func TestSubstrateStringParseRoundTrip(t *testing.T) {
	for _, s := range []Substrate{BitAccurate, Fast, Datagram} {
		got, err := ParseSubstrate(s.String())
		if err != nil {
			t.Fatalf("ParseSubstrate(%v.String()): %v", int(s), err)
		}
		if got != s {
			t.Fatalf("round trip: %v -> %q -> %v", int(s), s.String(), int(got))
		}
	}
}

func TestSubstrateStringUnknown(t *testing.T) {
	// An out-of-range value must say so, not masquerade as the default
	// substrate — and must not survive a parse round trip.
	for _, s := range []Substrate{-1, 3, 99} {
		str := s.String()
		if str == "bit" || str == "fast" || str == "datagram" {
			t.Fatalf("Substrate(%d).String() = %q claims a real substrate", int(s), str)
		}
		if !strings.Contains(str, "substrate") {
			t.Fatalf("Substrate(%d).String() = %q, want a substrate(N) form", int(s), str)
		}
		if _, err := ParseSubstrate(str); err == nil {
			t.Fatalf("ParseSubstrate(%q) accepted an unknown substrate", str)
		}
	}
}

func TestParseSubstrateSpellings(t *testing.T) {
	for spec, want := range map[string]Substrate{
		"bit": BitAccurate, "bit-accurate": BitAccurate, "": BitAccurate,
		"fast": Fast, "fastbus": Fast,
		"datagram": Datagram, "udp": Datagram,
	} {
		got, err := ParseSubstrate(spec)
		if err != nil || got != want {
			t.Fatalf("ParseSubstrate(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	if _, err := ParseSubstrate("quantum"); err == nil {
		t.Fatal("ParseSubstrate accepted garbage")
	}
}
