package stack

import (
	"fmt"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/datagram"
	"canely/internal/fastbus"
	"canely/internal/fault"
	"canely/internal/sim"
	"canely/internal/trace"
)

// Substrate selects the simulation substrate under a stack.
type Substrate int

const (
	// BitAccurate is the internal/bus simulator: bit-time-accurate wire
	// accounting, full structured trace, per-type occupancy statistics.
	// The diagnostic substrate, and the default.
	BitAccurate Substrate = iota
	// Fast is the internal/fastbus frame-level substrate: identical MAC/LLC
	// semantics and timing resolution, no trace, counter-only statistics.
	// Roughly an order of magnitude more campaign runs per second.
	Fast
	// Datagram is the internal/datagram point-to-point lossy substrate:
	// no shared wire, no arbitration, no wired-AND — seeded per-link
	// drop/delay/duplication instead. The environment of the gossip
	// baseline (internal/gossip), deliberately outside the CAN properties
	// the CANELy agreement argument needs.
	Datagram
)

// String names the substrate as accepted by the CLIs' -substrate flag.
// Values outside the enumeration render as such instead of masquerading as
// the default substrate.
func (s Substrate) String() string {
	switch s {
	case BitAccurate:
		return "bit"
	case Fast:
		return "fast"
	case Datagram:
		return "datagram"
	}
	return fmt.Sprintf("substrate(%d)", int(s))
}

// ParseSubstrate parses a -substrate flag value ("bit", "fast" or
// "datagram").
func ParseSubstrate(v string) (Substrate, error) {
	switch v {
	case "bit", "bit-accurate", "":
		return BitAccurate, nil
	case "fast", "fastbus":
		return Fast, nil
	case "datagram", "udp":
		return Datagram, nil
	}
	return 0, fmt.Errorf("stack: unknown substrate %q (want \"bit\", \"fast\" or \"datagram\")", v)
}

// MediumConfig parameterizes a Medium.
type MediumConfig struct {
	// Substrate picks the implementation; the zero value is BitAccurate.
	Substrate Substrate
	// Rate is the signalling rate; defaults to 1 Mbit/s.
	Rate can.BitRate
	// Injector decides per-transmission faults; defaults to fault.None.
	Injector fault.Injector
	// Trace receives wire events on the bit-accurate substrate; the fast
	// substrate never traces.
	Trace *trace.Trace
	// Seed roots the datagram substrate's per-link sampling streams; the
	// bus substrates ignore it (their faults come from Injector scripts).
	Seed int64
	// Link is the datagram substrate's default per-link distribution.
	Link datagram.LinkParams
	// PerLink overrides the distribution for specific ordered links
	// (datagram substrate only).
	PerLink func(from, to can.NodeID) datagram.LinkParams
}

// NewMedium builds a Medium on the given scheduler.
func NewMedium(sched *sim.Scheduler, cfg MediumConfig) Medium {
	switch cfg.Substrate {
	case Fast:
		return fastMedium{fastbus.New(sched, fastbus.Config{Rate: cfg.Rate, Injector: cfg.Injector})}
	case Datagram:
		return dgMedium{datagram.New(sched, datagram.Config{
			Rate: cfg.Rate, Seed: cfg.Seed, Link: cfg.Link, PerLink: cfg.PerLink,
		})}
	default:
		return bitMedium{bus.New(sched, bus.Config{Rate: cfg.Rate, Injector: cfg.Injector, Trace: cfg.Trace})}
	}
}

// bitMedium adapts the bit-accurate bus to the Medium interface (the only
// impedance is Attach's concrete return type).
type bitMedium struct{ *bus.Bus }

func (m bitMedium) Attach(id can.NodeID) Port { return m.Bus.Attach(id) }

// Elapsed is promoted from *bus.Bus; restated here only for documentation
// symmetry with fastMedium.
func (m bitMedium) Elapsed() time.Duration { return m.Bus.Elapsed() }

// fastMedium adapts the frame-level substrate.
type fastMedium struct{ *fastbus.Bus }

func (m fastMedium) Attach(id can.NodeID) Port { return m.Bus.Attach(id) }

// dgMedium adapts the point-to-point datagram substrate.
type dgMedium struct{ *datagram.Net }

func (m dgMedium) Attach(id can.NodeID) Port { return m.Net.Attach(id) }
