// Package core composes the four sans-I/O protocol cores of one CANELy
// node — failure detection agreement (FDA), node failure detection, the
// reception history agreement (RHA) and site membership — into a single
// Node with one Step(Event) []Command entry point.
//
// The sub-cores talk to each other through inter-core command kinds
// (CmdFDARequest, CmdFDANty, CmdFDNty, CmdRHARequest, ...). Node routes
// each such command depth-first at its position in the stream: the target
// core steps on the matching event, the routed expansion is spliced in
// BEFORE the marker command itself, and the marker stays in the stream so
// the runtime binding can surface it as a boundary notification hook. This
// reproduces exactly the effect ordering of the layered implementation,
// where inter-entity notifications were synchronous upcalls running before
// the caller's next statement and before any boundary observer.
//
// Node is still pure: Step touches no scheduler, bus or trace machinery,
// so the composite can be re-executed from a recorded event log
// (internal/replay) or driven through permuted event orderings (the
// interleaving explorer in this package) with bit-identical results.
package core

import (
	"canely/internal/can"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/core/proto"
	"canely/internal/sim"
)

// Config parameterizes one node's protocol cores.
type Config struct {
	FD         fd.Config
	Membership membership.Config
}

// Node is the composite protocol core of one CANELy node.
type Node struct {
	ID  can.NodeID
	FDA *fd.FDA
	Det *fd.Detector
	Msh *membership.Protocol
	RHA *membership.RHA
}

// New builds the composite core. The RHA core reads the membership
// protocol's Rf/Rj/Rl sets live (Figure 7 line i04).
func New(id can.NodeID, cfg Config) (*Node, error) {
	det, err := fd.NewDetector(id, cfg.FD)
	if err != nil {
		return nil, err
	}
	msh, err := membership.New(id, cfg.Membership)
	if err != nil {
		return nil, err
	}
	rha, err := membership.NewRHA(id, cfg.Membership.RHA, msh)
	if err != nil {
		return nil, err
	}
	return &Node{ID: id, FDA: fd.NewFDA(), Det: det, Msh: msh, RHA: rha}, nil
}

// Step consumes one event, dispatching it to the interested sub-cores in
// the order the layered stack registered their indication handlers, and
// routes inter-core commands. It returns the fully-expanded command
// stream, in execution order.
func (n *Node) Step(ev proto.Event) []proto.Command {
	var out []proto.Command
	switch ev.Kind {
	case proto.EvRTRInd:
		// Handler order of the layered stack: FDA, detector, membership.
		out = n.route(out, n.FDA.Step(ev), ev.At)
		out = n.route(out, n.Det.Step(ev), ev.At)
		out = n.route(out, n.Msh.Step(ev), ev.At)
	case proto.EvDataNty:
		out = n.route(out, n.Det.Step(ev), ev.At)
		out = n.route(out, n.Msh.Step(ev), ev.At)
	case proto.EvDataInd:
		out = n.route(out, n.RHA.Step(ev), ev.At)
	case proto.EvTimerFired:
		switch ev.Timer {
		case proto.TimerFDScan:
			out = n.route(out, n.Det.Step(ev), ev.At)
		case proto.TimerMshCycle:
			out = n.route(out, n.Msh.Step(ev), ev.At)
		case proto.TimerRHATerm:
			out = n.route(out, n.RHA.Step(ev), ev.At)
		}
	case proto.EvBootstrap, proto.EvJoin, proto.EvLeave, proto.EvFDNty,
		proto.EvRHAInit, proto.EvRHAEnd:
		out = n.route(out, n.Msh.Step(ev), ev.At)
	case proto.EvFDStart, proto.EvFDStop, proto.EvFDANty:
		out = n.route(out, n.Det.Step(ev), ev.At)
	case proto.EvFDARequest, proto.EvFDACancel:
		out = n.route(out, n.FDA.Step(ev), ev.At)
	case proto.EvRHARequest:
		out = n.route(out, n.RHA.Step(ev), ev.At)
	}
	return out
}

// route appends cmds to out, splicing in the depth-first expansion of each
// inter-core command before the command itself.
func (n *Node) route(out, cmds []proto.Command, at sim.Time) []proto.Command {
	for _, c := range cmds {
		switch c.Kind {
		case proto.CmdFDARequest:
			out = n.route(out, n.FDA.Step(proto.Event{Kind: proto.EvFDARequest, At: at, Node: c.Node}), at)
		case proto.CmdFDACancel:
			out = n.route(out, n.FDA.Step(proto.Event{Kind: proto.EvFDACancel, At: at, Node: c.Node}), at)
		case proto.CmdFDANty:
			out = n.route(out, n.Det.Step(proto.Event{Kind: proto.EvFDANty, At: at, Node: c.Node}), at)
		case proto.CmdFDNty:
			out = n.route(out, n.Msh.Step(proto.Event{Kind: proto.EvFDNty, At: at, Node: c.Node}), at)
		case proto.CmdFDStart:
			out = n.route(out, n.Det.Step(proto.Event{Kind: proto.EvFDStart, At: at, Node: c.Node}), at)
		case proto.CmdFDStop:
			out = n.route(out, n.Det.Step(proto.Event{Kind: proto.EvFDStop, At: at, Node: c.Node}), at)
		case proto.CmdRHARequest:
			out = n.route(out, n.RHA.Step(proto.Event{Kind: proto.EvRHARequest, At: at}), at)
		case proto.CmdRHAInit:
			out = n.route(out, n.Msh.Step(proto.Event{Kind: proto.EvRHAInit, At: at}), at)
		case proto.CmdRHAEnd:
			out = n.route(out, n.Msh.Step(proto.Event{Kind: proto.EvRHAEnd, At: at, View: c.View}), at)
		}
		out = append(out, c)
	}
	return out
}
