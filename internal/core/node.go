// Package core composes the four sans-I/O protocol cores of one CANELy
// node — failure detection agreement (FDA), node failure detection, the
// reception history agreement (RHA) and site membership — into a single
// Node with one StepInto(Event, *CommandBuf) entry point (Step remains as
// a slice-returning compatibility wrapper).
//
// The sub-cores talk to each other through inter-core command kinds
// (CmdFDARequest, CmdFDANty, CmdFDNty, CmdRHARequest, ...). Node routes
// each such command depth-first at its position in the stream: the target
// core steps on the matching event, the routed expansion is spliced in
// BEFORE the marker command itself, and the marker stays in the stream so
// the runtime binding can surface it as a boundary notification hook. This
// reproduces exactly the effect ordering of the layered implementation,
// where inter-entity notifications were synchronous upcalls running before
// the caller's next statement and before any boundary observer.
//
// Node is still pure: Step touches no scheduler, bus or trace machinery,
// so the composite can be re-executed from a recorded event log
// (internal/replay) or driven through permuted event orderings (the
// interleaving explorer in this package) with bit-identical results.
package core

import (
	"hash/maphash"

	"canely/internal/can"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/core/proto"
	"canely/internal/sim"
)

// Config parameterizes one node's protocol cores.
type Config struct {
	FD         fd.Config
	Membership membership.Config
}

// Node is the composite protocol core of one CANELy node.
type Node struct {
	ID  can.NodeID
	FDA *fd.FDA
	Det *fd.Detector
	Msh *membership.Protocol
	RHA *membership.RHA

	// scratch is the reusable routing buffer: each sub-core step appends
	// into it, the new segment is walked for inter-core expansion, and the
	// buffer is truncated back. Steps never run concurrently (a core is
	// single-node state), so one buffer per Node suffices; it grows to the
	// deepest routing chain once and steady-state steps allocate nothing.
	scratch proto.CommandBuf
}

// stepper is the emit-into-buffer entry point shared by all sub-cores.
type stepper interface {
	StepInto(proto.Event, *proto.CommandBuf)
}

// New builds the composite core. The RHA core reads the membership
// protocol's Rf/Rj/Rl sets live (Figure 7 line i04).
func New(id can.NodeID, cfg Config) (*Node, error) {
	det, err := fd.NewDetector(id, cfg.FD)
	if err != nil {
		return nil, err
	}
	msh, err := membership.New(id, cfg.Membership)
	if err != nil {
		return nil, err
	}
	rha, err := membership.NewRHA(id, cfg.Membership.RHA, msh)
	if err != nil {
		return nil, err
	}
	return &Node{ID: id, FDA: fd.NewFDA(), Det: det, Msh: msh, RHA: rha}, nil
}

// Clone returns an independent deep copy of the composite core: every
// sub-core cloned, the RHA environment re-bound to the cloned membership
// protocol, and a fresh routing scratch (the scratch is transient and
// empty between steps).
func (n *Node) Clone() *Node {
	msh := n.Msh.Clone()
	return &Node{
		ID:  n.ID,
		FDA: n.FDA.Clone(),
		Det: n.Det.Clone(),
		Msh: msh,
		RHA: n.RHA.Clone(msh),
	}
}

// Restore replaces n's state with a deep copy of src's, reusing n's
// storage — the allocation-free path the exploration engine's snapshot
// pool restores nodes through. The scratch buffer keeps n's own storage.
func (n *Node) Restore(src *Node) {
	n.ID = src.ID
	*n.FDA = *src.FDA
	*n.Det = *src.Det
	*n.Msh = *src.Msh
	n.RHA.CopyFrom(src.RHA, n.Msh)
}

// Fingerprint writes the composite core's complete mutable state into h:
// the node identity followed by every sub-core's fingerprint in a fixed
// order. The scratch routing buffer is transient (empty between steps) and
// carries no state, so it is excluded.
func (n *Node) Fingerprint(h *maphash.Hash) {
	proto.HashU64(h, uint64(n.ID))
	n.FDA.Fingerprint(h)
	n.Det.Fingerprint(h)
	n.Msh.Fingerprint(h)
	n.RHA.Fingerprint(h)
}

// Step consumes one event and returns the fully-expanded command stream as
// a fresh slice. Compatibility wrapper over StepInto.
func (n *Node) Step(ev proto.Event) []proto.Command {
	var buf proto.CommandBuf
	n.StepInto(ev, &buf)
	return buf.Commands()
}

// StepInto consumes one event, dispatching it to the interested sub-cores
// in the order the layered stack registered their indication handlers, and
// routes inter-core commands. The fully-expanded command stream is appended
// to out in execution order.
func (n *Node) StepInto(ev proto.Event, out *proto.CommandBuf) {
	switch ev.Kind {
	case proto.EvRTRInd:
		// Handler order of the layered stack: FDA, detector, membership.
		n.subStep(n.FDA, ev, out)
		n.subStep(n.Det, ev, out)
		n.subStep(n.Msh, ev, out)
	case proto.EvDataNty:
		n.subStep(n.Det, ev, out)
		n.subStep(n.Msh, ev, out)
	case proto.EvDataInd:
		n.subStep(n.RHA, ev, out)
	case proto.EvTimerFired:
		switch ev.Timer {
		case proto.TimerFDScan:
			n.subStep(n.Det, ev, out)
		case proto.TimerMshCycle:
			n.subStep(n.Msh, ev, out)
		case proto.TimerRHATerm:
			n.subStep(n.RHA, ev, out)
		}
	case proto.EvBootstrap, proto.EvJoin, proto.EvLeave, proto.EvFDNty,
		proto.EvRHAInit, proto.EvRHAEnd:
		n.subStep(n.Msh, ev, out)
	case proto.EvFDStart, proto.EvFDStop, proto.EvFDANty:
		n.subStep(n.Det, ev, out)
	case proto.EvFDARequest, proto.EvFDACancel, proto.EvFDAForget:
		n.subStep(n.FDA, ev, out)
	case proto.EvRHARequest:
		n.subStep(n.RHA, ev, out)
	}
}

// subStep lets one sub-core consume ev, then routes its emission into out:
// each inter-core command's depth-first expansion is spliced in before the
// command itself.
//
// The emission lands in a segment [mark, Len) of the shared scratch buffer.
// Each command is copied out by value before the recursive expansion (which
// reuses the scratch past the segment and may grow, i.e. reallocate, it),
// and the segment is truncated away when the walk completes — so the
// scratch's high-water mark is the deepest routing chain ever taken, after
// which no step allocates.
func (n *Node) subStep(s stepper, ev proto.Event, out *proto.CommandBuf) {
	mark := n.scratch.Len()
	s.StepInto(ev, &n.scratch)
	for i := mark; i < n.scratch.Len(); i++ {
		c := n.scratch.At(i)
		n.expand(c, ev.At, out)
		out.Put(c)
	}
	n.scratch.Truncate(mark)
}

// expand routes one inter-core command to its target core; marker commands
// of other kinds expand to nothing.
func (n *Node) expand(c proto.Command, at sim.Time, out *proto.CommandBuf) {
	switch c.Kind {
	case proto.CmdFDARequest:
		n.subStep(n.FDA, proto.Event{Kind: proto.EvFDARequest, At: at, Node: c.Node}, out)
	case proto.CmdFDACancel:
		n.subStep(n.FDA, proto.Event{Kind: proto.EvFDACancel, At: at, Node: c.Node}, out)
	case proto.CmdFDAForget:
		n.subStep(n.FDA, proto.Event{Kind: proto.EvFDAForget, At: at, Node: c.Node}, out)
	case proto.CmdFDANty:
		n.subStep(n.Det, proto.Event{Kind: proto.EvFDANty, At: at, Node: c.Node}, out)
	case proto.CmdFDNty:
		n.subStep(n.Msh, proto.Event{Kind: proto.EvFDNty, At: at, Node: c.Node}, out)
	case proto.CmdFDStart:
		n.subStep(n.Det, proto.Event{Kind: proto.EvFDStart, At: at, Node: c.Node}, out)
	case proto.CmdFDStop:
		n.subStep(n.Det, proto.Event{Kind: proto.EvFDStop, At: at, Node: c.Node}, out)
	case proto.CmdRHARequest:
		n.subStep(n.RHA, proto.Event{Kind: proto.EvRHARequest, At: at}, out)
	case proto.CmdRHAInit:
		n.subStep(n.Msh, proto.Event{Kind: proto.EvRHAInit, At: at}, out)
	case proto.CmdRHAEnd:
		n.subStep(n.Msh, proto.Event{Kind: proto.EvRHAEnd, At: at, View: c.View}, out)
	}
}
