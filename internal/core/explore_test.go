package core_test

// Interleaving exploration: because the protocol cores are sans-I/O, a whole
// 3-node system can be driven through systematically permuted event
// orderings with no bus, scheduler or real time. The harness that used to
// live in this file — the modelled MAC layer, the decision-vector DFS, the
// safety/liveness checks — grew into the parallel exploration engine at
// internal/explore; this test is now a thin wrapper that drives the engine
// in its pinned compatibility mode (one worker, no pruning, no partial-order
// reduction) and asserts the walk still visits the exact schedule tree the
// historical in-test DFS visited.

import (
	"context"
	"testing"

	"canely/internal/explore"
)

// TestInterleavingExplorer searches the schedule tree of the 3-node
// join+crash scenario: ≥1000 distinct schedules, every one of which must
// satisfy agreement and liveness. The counts are pinned to the historical
// DFS (1200 schedules, 641 exercising the crash): any drift means either
// the engine's harness semantics or the cores' command streams changed.
func TestInterleavingExplorer(t *testing.T) {
	const target = 1200
	e, err := explore.New(explore.Config{
		Scenario: explore.DefaultScenario(),
		Workers:  1,
		Target:   target,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Violation; v != nil {
		t.Fatalf("schedule %v violates the protocol: %s", v.Vec, v.Msg)
	}
	if res.Schedules < 1000 {
		t.Fatalf("explored only %d schedules, want >= 1000", res.Schedules)
	}
	if res.CrashSchedules == 0 {
		t.Fatal("no explored schedule exercised the crash")
	}
	if res.Schedules != target || res.CrashSchedules != 641 {
		t.Fatalf("explored %d schedules (%d with a crash), the historical DFS explored %d (641)",
			res.Schedules, res.CrashSchedules, target)
	}
	t.Logf("explored %d schedules (%d with a crash), no violation", res.Schedules, res.CrashSchedules)
}
