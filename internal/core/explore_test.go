package core_test

// Interleaving explorer: because the protocol cores are sans-I/O, a whole
// 3-node system can be driven through systematically permuted event
// orderings with no bus, scheduler or real time — a bounded stateless
// search in the spirit of model checkers like CHESS/dPOR over the join and
// crash scenario of the paper's Figures 8/9.
//
// The harness models the properties the protocols actually assume of the
// MAC layer — broadcast with identical delivery order everywhere, identical
// remote frames merging into one transmission (the FDA's clustering), and a
// bounded delivery delay Ttd — but leaves everything else (which queued
// frame wins arbitration, whether a due timer beats a pending frame, when
// the crash hits) to the explorer. Every schedule must preserve agreement
// (all full members hold identical views containing themselves) and
// liveness (the joiner integrates, the crash is expelled, survivors
// converge on exactly the alive set).

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/core/proto"
	"canely/internal/sim"
)

const (
	expTtd   = 2 * time.Millisecond
	expSkew  = time.Millisecond // clock-jitter window for timer races
	expEnd   = sim.Time(500 * time.Millisecond)
	expCrash = sim.Time(150 * time.Millisecond) // crash eligible until here
	maxSteps = 6000
	maxDepth = 25 // decision points the search branches on
)

func expConfig() core.Config {
	return core.Config{
		FD: fd.Config{Tb: 10 * time.Millisecond, Ttd: expTtd},
		Membership: membership.Config{
			Tm:        50 * time.Millisecond,
			TjoinWait: 120 * time.Millisecond,
			RHA:       membership.RHAConfig{Trha: 5 * time.Millisecond, J: 2},
		},
	}
}

type expFrame struct {
	mid    can.MID
	rtr    bool
	data   []byte
	sender can.NodeID
	sentAt sim.Time
}

type timerKey struct {
	node can.NodeID
	id   proto.TimerID
}

// expSystem is one 3-node system under exploration.
type expSystem struct {
	now     sim.Time
	nodes   []*core.Node
	alive   []bool
	frames  []expFrame
	timers  map[timerKey]sim.Time
	crashed bool
}

func newExpSystem(t *testing.T) *expSystem {
	t.Helper()
	s := &expSystem{timers: map[timerKey]sim.Time{}}
	for i := 0; i < 3; i++ {
		n, err := core.New(can.NodeID(i), expConfig())
		if err != nil {
			t.Fatal(err)
		}
		s.nodes = append(s.nodes, n)
		s.alive = append(s.alive, true)
	}
	// Nodes 0 and 1 come up on a pre-agreed view; node 2 requests to join.
	view := can.MakeSet(0, 1)
	for i := 0; i < 2; i++ {
		s.exec(can.NodeID(i), s.nodes[i].Step(proto.Event{Kind: proto.EvBootstrap, View: view}))
	}
	s.exec(2, s.nodes[2].Step(proto.Event{Kind: proto.EvJoin}))
	return s
}

// exec applies a core's command stream to the modelled bus and alarms.
// Inter-core commands were already routed by the composite core; the
// marker/trace kinds are no-ops here.
func (s *expSystem) exec(n can.NodeID, cmds []proto.Command) {
	for _, c := range cmds {
		switch c.Kind {
		case proto.CmdSendRTR:
			if c.UnlessPending && s.pendingRTR(c.MID) {
				continue
			}
			s.frames = append(s.frames, expFrame{mid: c.MID, rtr: true, sender: n, sentAt: s.now})
		case proto.CmdSendData:
			s.frames = append(s.frames, expFrame{
				mid: c.MID, data: append([]byte(nil), c.Payload()...), sender: n, sentAt: s.now,
			})
		case proto.CmdAbort:
			for i, f := range s.frames {
				if f.sender == n && f.mid == c.MID {
					s.frames = append(s.frames[:i], s.frames[i+1:]...)
					break
				}
			}
		case proto.CmdSetTimer:
			s.timers[timerKey{n, c.Timer}] = s.now.Add(time.Duration(c.Delay))
		case proto.CmdCancelTimer:
			delete(s.timers, timerKey{n, c.Timer})
		}
	}
}

func (s *expSystem) pendingRTR(mid can.MID) bool {
	for _, f := range s.frames {
		if f.rtr && f.mid == mid {
			return true
		}
	}
	return false
}

// horizon is the latest instant a timer may fire at: every pending frame
// must have been delivered within Ttd of its transmit request.
func (s *expSystem) horizon() sim.Time {
	h := sim.Time(1 << 62)
	for _, f := range s.frames {
		if d := f.sentAt.Add(expTtd); d < h {
			h = d
		}
	}
	return h
}

// expAction is one schedulable step. Exactly one of the fields is active.
type expAction struct {
	frame int  // index into frames, or -1
	timer *timerKey
	crash bool
}

// enabled lists the schedulable actions in deterministic order: pending
// frames (in queue order), due timers (deadline order), the crash.
//
// A timer is schedulable when its deadline respects the frame-delivery
// bound (horizon) and lies within expSkew of the earliest armed deadline:
// timers on one virtual clock fire in deadline order, but near-simultaneous
// deadlines (bootstrap-synchronized scans, the members' cycle timers) race
// within clock jitter — exactly the races worth exploring. Without the
// bound the search would "explore" unreal schedules that starve a node's
// timers forever.
func (s *expSystem) enabled() []expAction {
	var out []expAction
	for i := range s.frames {
		out = append(out, expAction{frame: i})
	}
	h := s.horizon()
	minD := sim.Time(1 << 62)
	for _, d := range s.timers {
		if d < minD {
			minD = d
		}
	}
	var due []timerKey
	for n := can.NodeID(0); n < 3; n++ {
		for id := proto.TimerID(0); id < proto.NumTimers; id++ {
			k := timerKey{n, id}
			if d, ok := s.timers[k]; ok && d <= h && d <= minD.Add(expSkew) {
				due = append(due, k)
			}
		}
	}
	sort.Slice(due, func(i, j int) bool {
		di, dj := s.timers[due[i]], s.timers[due[j]]
		if di != dj {
			return di < dj
		}
		if due[i].node != due[j].node {
			return due[i].node < due[j].node
		}
		return due[i].id < due[j].id
	})
	for i := range due {
		k := due[i]
		out = append(out, expAction{frame: -1, timer: &k})
	}
	if !s.crashed && s.now <= expCrash {
		out = append(out, expAction{frame: -1, crash: true})
	}
	return out
}

func (s *expSystem) apply(a expAction) {
	switch {
	case a.crash:
		s.crashed = true
		s.alive[1] = false
		var keep []expFrame
		for _, f := range s.frames {
			if f.sender != 1 {
				keep = append(keep, f)
			}
		}
		s.frames = keep
		for k := range s.timers {
			if k.node == 1 {
				delete(s.timers, k)
			}
		}
	case a.timer != nil:
		k := *a.timer
		d := s.timers[k]
		delete(s.timers, k)
		if d > s.now {
			s.now = d
		}
		s.exec(k.node, s.nodes[k.node].Step(proto.Event{
			Kind: proto.EvTimerFired, Timer: k.id, At: s.now, Node: k.node,
		}))
	default:
		f := s.frames[a.frame]
		// Identical remote frames merge into the one transmission the
		// receivers observe (the clustering property the FDA relies on).
		var keep []expFrame
		for _, g := range s.frames {
			if g.rtr && f.rtr && g.mid == f.mid {
				continue
			}
			if !f.rtr && g.sender == f.sender && g.mid == f.mid && g.rtr == f.rtr {
				continue
			}
			keep = append(keep, g)
		}
		s.frames = keep
		for n := can.NodeID(0); n < 3; n++ {
			if !s.alive[n] {
				continue
			}
			if f.rtr {
				s.exec(n, s.nodes[n].Step(proto.Event{Kind: proto.EvRTRInd, MID: f.mid, At: s.now}))
			} else {
				s.exec(n, s.nodes[n].Step(proto.Event{Kind: proto.EvDataNty, MID: f.mid, At: s.now}))
				s.exec(n, s.nodes[n].Step(proto.Event{Kind: proto.EvDataInd, MID: f.mid, At: s.now}.WithPayload(f.data)))
			}
		}
	}
}

// runSchedule executes one schedule described by the decision vector vec
// (choice 0 assumed past its end) and returns the observed branching count
// at each decision point (capped at maxDepth) plus a violation, if any.
func runSchedule(t *testing.T, vec []int) (counts []int, crashed bool, err error) {
	s := newExpSystem(t)
	decision := 0
	for step := 0; step < maxSteps && s.now < expEnd; step++ {
		en := s.enabled()
		if len(en) == 0 {
			break
		}
		choice := 0
		if len(en) > 1 && decision < maxDepth {
			if decision < len(counts) {
				panic("unreachable")
			}
			counts = append(counts, len(en))
			if decision < len(vec) {
				choice = vec[decision]
			}
			decision++
		}
		if choice >= len(en) {
			choice = len(en) - 1
		}
		s.apply(en[choice])

		// Safety, on every step: a full member's view contains itself.
		for n := can.NodeID(0); n < 3; n++ {
			if s.alive[n] && s.nodes[n].Msh.Member() && !s.nodes[n].Msh.View().Contains(n) {
				return counts, s.crashed, fmt.Errorf("node %v is a member of a view %v omitting itself", n, s.nodes[n].Msh.View())
			}
		}
	}
	// Liveness + agreement at the end of the schedule.
	want := can.MakeSet(0, 1, 2)
	if s.crashed {
		want = can.MakeSet(0, 2)
	}
	for n := can.NodeID(0); n < 3; n++ {
		if !s.alive[n] {
			continue
		}
		if !s.nodes[n].Msh.Member() {
			return counts, s.crashed, fmt.Errorf("node %v never (re)integrated; view=%v", n, s.nodes[n].Msh.View())
		}
		if got := s.nodes[n].Msh.View(); got != want {
			return counts, s.crashed, fmt.Errorf("node %v converged on %v, want %v", n, got, want)
		}
	}
	return counts, s.crashed, nil
}

// TestInterleavingExplorer searches the schedule tree of the 3-node
// join+crash scenario: ≥1000 distinct schedules, every one of which must
// satisfy agreement and liveness.
func TestInterleavingExplorer(t *testing.T) {
	const target = 1200
	type prefix struct{ vec []int }
	stack := []prefix{{nil}}
	schedules, crashSchedules := 0, 0
	for len(stack) > 0 && schedules < target {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		counts, crashed, err := runSchedule(t, p.vec)
		schedules++
		if crashed {
			crashSchedules++
		}
		if err != nil {
			t.Fatalf("schedule %v violates the protocol: %v", p.vec, err)
		}
		// Branch on every decision point past the explored prefix: choice 0
		// is the schedule just run, alternatives are new schedules.
		for i := len(p.vec); i < len(counts); i++ {
			for c := counts[i] - 1; c >= 1; c-- {
				child := make([]int, i+1)
				copy(child, p.vec)
				child[i] = c
				stack = append(stack, prefix{child})
			}
		}
	}
	if schedules < 1000 {
		t.Fatalf("explored only %d schedules, want >= 1000", schedules)
	}
	if crashSchedules == 0 {
		t.Fatal("no explored schedule exercised the crash")
	}
	t.Logf("explored %d schedules (%d with a crash), no violation", schedules, crashSchedules)
}
