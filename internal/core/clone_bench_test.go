package core_test

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/core/proto"
)

// benchNode builds a bootstrapped composite core mid-protocol — the state a
// checkpoint typically captures.
func benchNode(b *testing.B) *core.Node {
	b.Helper()
	cfg := core.Config{
		FD: fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond},
		Membership: membership.Config{
			Tm:        50 * time.Millisecond,
			TjoinWait: 120 * time.Millisecond,
			RHA:       membership.RHAConfig{Trha: 5 * time.Millisecond, J: 2},
		},
	}
	n, err := core.New(0, cfg)
	if err != nil {
		b.Fatal(err)
	}
	n.Step(proto.Event{Kind: proto.EvBootstrap, View: can.MakeSet(0, 1), At: 0})
	n.Step(proto.Event{Kind: proto.EvRTRInd, MID: can.JoinSign(2), At: fpAt(1)})
	n.Step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerMshCycle, At: fpAt(50), Node: 0})
	return n
}

// BenchmarkNodeClone measures the checkpoint capture cost per node: one
// deep copy of all four sub-cores.
func BenchmarkNodeClone(b *testing.B) {
	n := benchNode(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Clone()
	}
}

// BenchmarkNodeRestore measures the allocation-free resume path: deep-copy
// assignment into existing storage.
func BenchmarkNodeRestore(b *testing.B) {
	n := benchNode(b)
	dst := n.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Restore(n)
	}
}
