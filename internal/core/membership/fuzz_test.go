package membership

// FuzzMembershipCore drives the pure membership core through arbitrary
// valid event sequences. Because the core is sans-I/O, the fuzzer needs no
// bus, scheduler or harness — just bytes decoded into events — and checks
// the structural invariants the runtime binding and the paper both rely on:
//
//   - Step never panics on valid input (bootstrap views are forced to
//     contain the local node, the one documented panic).
//   - The view Rf only changes at cycle boundaries (bootstrap, cycle timer,
//     RHA init, RHA end) — request collection and failure folding must not
//     touch it mid-cycle.
//   - Within a cycle the view is monotone: an RHA-init resynchronization
//     can only shrink Rf (by folding Fset), never grow it; the same holds
//     for a cycle-timer expiry at a full member.
//   - An agreed RHA vector bounds the next view: Rf' ⊆ rhv.
//   - A node that completed its withdrawal (final Left notification) stays
//     out: no later event may silently re-integrate it.

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
)

func fuzzEvent(op, arg byte) proto.Event {
	r := can.NodeID(arg % 16)
	switch op % 10 {
	case 0:
		// Bootstrap view: arbitrary 16-node subset forced to contain the
		// local node 0.
		return proto.Event{Kind: proto.EvBootstrap, View: can.NodeSet(uint64(arg)) | can.MakeSet(0)}
	case 1:
		return proto.Event{Kind: proto.EvJoin}
	case 2:
		return proto.Event{Kind: proto.EvLeave}
	case 3:
		return proto.Event{Kind: proto.EvRTRInd, MID: can.JoinSign(r)}
	case 4:
		return proto.Event{Kind: proto.EvRTRInd, MID: can.LeaveSign(r)}
	case 5:
		return proto.Event{Kind: proto.EvRTRInd, MID: can.ELSSign(r)}
	case 6:
		return proto.Event{Kind: proto.EvDataNty, MID: can.DataSign(arg%4, r, arg)}
	case 7:
		return proto.Event{Kind: proto.EvFDNty, Node: r}
	case 8:
		return proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerMshCycle}
	case 9:
		if arg%2 == 0 {
			return proto.Event{Kind: proto.EvRHAInit}
		}
		return proto.Event{Kind: proto.EvRHAEnd, View: can.NodeSet(uint64(arg))}
	}
	panic("unreachable")
}

func FuzzMembershipCore(f *testing.F) {
	f.Add([]byte{0, 7, 8, 3})             // bootstrap, cycle, join sign
	f.Add([]byte{1, 1, 8, 0, 9, 0, 9, 1}) // join, cold-start cycle, RHA round
	f.Add([]byte{0, 255, 7, 1, 7, 2, 8, 0, 9, 1, 2, 0, 8, 0}) // failures + leave
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := New(0, Config{
			Tm:        50 * time.Millisecond,
			TjoinWait: 120 * time.Millisecond,
			RHA:       RHAConfig{Trha: 5 * time.Millisecond, J: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		hasLeft := false
		for i := 0; i+1 < len(data); i += 2 {
			ev := fuzzEvent(data[i], data[i+1])
			before := p.View()
			wasMember := p.Member()
			cmds := p.Step(ev)
			after := p.View()

			switch ev.Kind {
			case proto.EvJoin, proto.EvLeave, proto.EvRTRInd, proto.EvDataNty, proto.EvFDNty:
				if after != before {
					t.Fatalf("event %v changed the view mid-cycle: %v -> %v", ev, before, after)
				}
			case proto.EvRHAInit:
				if after.Diff(before) != can.EmptySet {
					t.Fatalf("RHA init grew the view: %v -> %v", before, after)
				}
			case proto.EvTimerFired:
				if wasMember && after.Diff(before) != can.EmptySet {
					t.Fatalf("cycle timer grew a member's view: %v -> %v", before, after)
				}
			case proto.EvRHAEnd:
				if after.Diff(ev.View) != can.EmptySet {
					t.Fatalf("view %v escapes the agreed vector %v", after, ev.View)
				}
			}

			for _, c := range cmds {
				if c.Kind == proto.CmdSetTimer && c.Delay <= 0 {
					t.Fatalf("non-positive timer delay in %v", c)
				}
				if c.Kind == proto.CmdNotifyView && c.Left {
					hasLeft = true
				}
			}
			if hasLeft && p.Member() {
				// Only an explicit re-join or bootstrap may bring the node back.
				if ev.Kind != proto.EvBootstrap && ev.Kind != proto.EvJoin &&
					ev.Kind != proto.EvTimerFired && ev.Kind != proto.EvRHAEnd {
					t.Fatalf("event %v re-integrated a withdrawn node", ev)
				}
				hasLeft = false
			}
		}
	})
}
