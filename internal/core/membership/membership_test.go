package membership_test

import (
	"testing"
	"testing/quick"
	"time"

	"canely/internal/can"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/fault"
	"canely/internal/sim"
	"canely/internal/stack"
)

type node struct {
	st      *stack.Stack
	changes []membership.Change
}

type rig struct {
	sched  *sim.Scheduler
	medium stack.Medium
	nodes  []*node
	cfg    membership.Config
}

func testConfig() membership.Config {
	return membership.Config{
		Tm:        50 * time.Millisecond,
		TjoinWait: 120 * time.Millisecond,
		RHA:       membership.RHAConfig{Trha: 5 * time.Millisecond, J: 2},
	}
}

func newRig(t *testing.T, n int, inj fault.Injector) *rig {
	return newRigCfg(t, n, inj, testConfig())
}

func newRigCfg(t *testing.T, n int, inj fault.Injector, cfg membership.Config) *rig {
	t.Helper()
	s := sim.NewScheduler()
	r := &rig{sched: s, medium: stack.NewMedium(s, stack.MediumConfig{Injector: inj}), cfg: cfg}
	scfg := stack.Config{
		FD:         fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond},
		Membership: cfg,
		J:          cfg.RHA.J,
	}
	for i := 0; i < n; i++ {
		st, err := stack.New(s, []stack.Medium{r.medium}, can.NodeID(i), scfg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		nd := &node{st: st}
		st.OnChange(func(c membership.Change) { nd.changes = append(nd.changes, c) })
		r.nodes = append(r.nodes, nd)
	}
	return r
}

func (r *rig) bootstrap(view can.NodeSet) {
	for _, nd := range r.nodes {
		if view.Contains(nd.st.ID()) {
			nd.st.Bootstrap(view)
		}
	}
}

func (r *rig) run(d time.Duration) { r.sched.RunFor(d) }

func (r *rig) requireViews(t *testing.T, want can.NodeSet) {
	t.Helper()
	for i, nd := range r.nodes {
		if !nd.st.Alive() || !nd.st.Msh.Member() {
			continue
		}
		if nd.st.Msh.View() != want {
			t.Fatalf("node %d view = %v, want %v", i, nd.st.Msh.View(), want)
		}
	}
}

func TestBootstrapViewInstalled(t *testing.T) {
	r := newRig(t, 3, nil)
	r.bootstrap(can.MakeSet(0, 1, 2))
	r.run(200 * time.Millisecond)
	r.requireViews(t, can.MakeSet(0, 1, 2))
	for i, nd := range r.nodes {
		if nd.st.Msh.Cycles == 0 {
			t.Fatalf("node %d never cycled", i)
		}
		if len(nd.changes) != 0 {
			t.Fatalf("node %d spurious changes: %+v", i, nd.changes)
		}
	}
}

func TestBootstrapRequiresLocal(t *testing.T) {
	r := newRig(t, 2, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("bootstrap without local node should panic")
		}
	}()
	r.nodes[0].st.Bootstrap(can.MakeSet(1))
}

func TestJoinIntegration(t *testing.T) {
	r := newRig(t, 4, nil)
	r.bootstrap(can.MakeSet(0, 1, 2))
	r.run(30 * time.Millisecond)
	r.nodes[3].st.Join()
	r.run(2*r.cfg.Tm + 20*time.Millisecond)
	r.requireViews(t, can.MakeSet(0, 1, 2, 3))
	if !r.nodes[3].st.Msh.Member() {
		t.Fatal("joiner not integrated")
	}
	// Every member (incl. the joiner) received exactly one join change.
	for i, nd := range r.nodes {
		if len(nd.changes) != 1 || !nd.changes[0].Failed.Empty() {
			t.Fatalf("node %d changes = %+v", i, nd.changes)
		}
	}
}

func TestJoinIdempotentWhenMember(t *testing.T) {
	r := newRig(t, 2, nil)
	r.bootstrap(can.MakeSet(0, 1))
	r.run(10 * time.Millisecond)
	r.nodes[0].st.Join() // already a member: no-op
	r.run(3 * r.cfg.Tm)
	for _, nd := range r.nodes {
		if len(nd.changes) != 0 {
			t.Fatalf("join of an existing member caused changes: %+v", nd.changes)
		}
	}
}

func TestLeaveWithdrawal(t *testing.T) {
	r := newRig(t, 3, nil)
	r.bootstrap(can.MakeSet(0, 1, 2))
	r.run(20 * time.Millisecond)
	r.nodes[2].st.Leave()
	r.run(2*r.cfg.Tm + 20*time.Millisecond)
	r.requireViews(t, can.MakeSet(0, 1))
	last := r.nodes[2].changes[len(r.nodes[2].changes)-1]
	if !last.Left {
		t.Fatalf("leaver's final change = %+v, want Left", last)
	}
	if r.nodes[2].st.Msh.Member() {
		t.Fatal("leaver still a member")
	}
}

func TestLeaveOfNonMemberIgnored(t *testing.T) {
	r := newRig(t, 2, nil)
	r.bootstrap(can.MakeSet(0))
	r.nodes[1].st.Leave()
	r.run(3 * r.cfg.Tm)
	if r.nodes[0].st.Msh.View() != can.MakeSet(0) {
		t.Fatalf("view = %v", r.nodes[0].st.Msh.View())
	}
}

func TestFailureFoldedIntoView(t *testing.T) {
	r := newRig(t, 3, nil)
	r.bootstrap(can.MakeSet(0, 1, 2))
	r.run(30 * time.Millisecond)
	r.nodes[1].st.Ports[0].Crash()
	r.run(200 * time.Millisecond)
	r.requireViews(t, can.MakeSet(0, 2))
	// Immediate failure notification carried (view-F, {failed}).
	for _, i := range []int{0, 2} {
		found := false
		for _, c := range r.nodes[i].changes {
			if c.Failed == can.MakeSet(1) && c.Active == can.MakeSet(0, 2) {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d missing failure change: %+v", i, r.nodes[i].changes)
		}
	}
}

func TestRHASkippedWithoutPendingRequests(t *testing.T) {
	r := newRig(t, 3, nil)
	r.bootstrap(can.MakeSet(0, 1, 2))
	r.run(500 * time.Millisecond)
	for i, nd := range r.nodes {
		if nd.st.RHA.Executions != 0 {
			t.Fatalf("node %d ran RHA %d times with no pending join/leave",
				i, nd.st.RHA.Executions)
		}
	}
}

func TestRHAConvergesOnInconsistentJoinDelivery(t *testing.T) {
	// The JOIN remote frame from node 3 is inconsistently omitted at node
	// 1: Rj differs across members, so their initial RHVs differ. RHA must
	// still deliver identical vectors everywhere (the join simply fails
	// this cycle and is retried).
	script := fault.NewScript(fault.Rule{
		Match:    fault.Match{Type: can.TypeJoin, Param: 3, Sender: fault.AnySender},
		Decision: fault.Decision{InconsistentVictims: can.MakeSet(1)},
	})
	r := newRig(t, 4, script)
	r.bootstrap(can.MakeSet(0, 1, 2))
	r.run(30 * time.Millisecond)
	r.nodes[3].st.Join()
	r.run(4*r.cfg.Tm + 40*time.Millisecond)
	if !script.Exhausted() {
		t.Fatalf("scenario did not trigger: %s", script.PendingRules())
	}
	// All correct members agree; the joiner eventually integrates through
	// the CAN retry of its join (the retry-join path).
	views := map[can.NodeSet]int{}
	for i := 0; i < 3; i++ {
		views[r.nodes[i].st.Msh.View()]++
	}
	if len(views) != 1 {
		t.Fatalf("members disagree: %v", views)
	}
}

func TestJoinRetryAfterMissedIntegration(t *testing.T) {
	// ALL copies of node 3's first JOIN are lost to members 1 and 2 while
	// member 0 sees it — worst-case inconsistency. Node 3 must not
	// bootstrap a singleton view (members are active) and must eventually
	// integrate via retry.
	script := fault.NewScript(fault.Rule{
		Match:    fault.Match{Type: can.TypeJoin, Param: 3, Sender: fault.AnySender},
		Decision: fault.Decision{InconsistentVictims: can.MakeSet(1, 2)},
	})
	r := newRig(t, 4, script)
	r.bootstrap(can.MakeSet(0, 1, 2))
	r.run(30 * time.Millisecond)
	r.nodes[3].st.Join()
	r.run(2 * r.cfg.TjoinWait)
	if !r.nodes[3].st.Msh.Member() {
		t.Fatalf("joiner never integrated; view=%v", r.nodes[3].st.Msh.View())
	}
	r.requireViews(t, can.MakeSet(0, 1, 2, 3))
}

func TestColdStartBootstrap(t *testing.T) {
	r := newRig(t, 3, nil)
	for _, nd := range r.nodes {
		nd.st.Join()
	}
	r.run(r.cfg.TjoinWait + 3*r.cfg.Tm)
	r.requireViews(t, can.MakeSet(0, 1, 2))
	for i, nd := range r.nodes {
		if !nd.st.Msh.Member() {
			t.Fatalf("node %d not integrated on cold start", i)
		}
	}
}

func TestStaggeredColdStart(t *testing.T) {
	r := newRig(t, 3, nil)
	r.nodes[0].st.Join()
	r.sched.RunFor(5 * time.Millisecond)
	r.nodes[1].st.Join()
	r.sched.RunFor(5 * time.Millisecond)
	r.nodes[2].st.Join()
	r.run(r.cfg.TjoinWait + 4*r.cfg.Tm)
	r.requireViews(t, can.MakeSet(0, 1, 2))
}

func TestLateJoinerAfterColdStart(t *testing.T) {
	r := newRig(t, 4, nil)
	for i := 0; i < 3; i++ {
		r.nodes[i].st.Join()
	}
	r.run(r.cfg.TjoinWait + 3*r.cfg.Tm)
	r.nodes[3].st.Join()
	r.run(2*r.cfg.Tm + 20*time.Millisecond)
	r.requireViews(t, can.MakeSet(0, 1, 2, 3))
}

func TestStaleJoinRequestExpiresAfterTwoCycles(t *testing.T) {
	// A JOIN arrives at members but the joiner crashes immediately: the
	// join request must not linger in Rj forever (footnote 10).
	r := newRig(t, 3, nil)
	r.bootstrap(can.MakeSet(0, 1))
	r.run(20 * time.Millisecond)
	r.nodes[2].st.Join()
	r.run(time.Millisecond)
	r.nodes[2].st.Ports[0].Crash()
	r.run(5 * r.cfg.Tm)
	// The dead joiner integrated briefly (its JOIN was agreed) or not at
	// all; either way the members must converge on {0,1} once its silence
	// is detected, and Rj must be empty so RHA stops running.
	r.requireViews(t, can.MakeSet(0, 1))
	beforeExecs := []int{r.nodes[0].st.RHA.Executions, r.nodes[1].st.RHA.Executions}
	r.run(4 * r.cfg.Tm)
	for i := 0; i < 2; i++ {
		if r.nodes[i].st.RHA.Executions != beforeExecs[i] {
			t.Fatalf("node %d still running RHA for a stale join", i)
		}
	}
}

func TestChangeNotificationOnlyWhenCompositionChanges(t *testing.T) {
	r := newRig(t, 3, nil)
	r.bootstrap(can.MakeSet(0, 1, 2))
	r.run(20 * time.Millisecond)
	r.nodes[2].st.Leave()
	r.run(6 * r.cfg.Tm)
	for _, i := range []int{0, 1} {
		if len(r.nodes[i].changes) != 1 {
			t.Fatalf("node %d changes = %+v, want exactly one", i, r.nodes[i].changes)
		}
	}
}

func TestConcurrentLeaves(t *testing.T) {
	r := newRig(t, 4, nil)
	r.bootstrap(can.MakeSet(0, 1, 2, 3))
	r.run(20 * time.Millisecond)
	r.nodes[2].st.Leave()
	r.nodes[3].st.Leave()
	r.run(2*r.cfg.Tm + 20*time.Millisecond)
	r.requireViews(t, can.MakeSet(0, 1))
}

func TestMassChurn(t *testing.T) {
	// Figure 10's "multiple join/leave" regime: many membership events in
	// one cycle, all agreed consistently.
	r := newRig(t, 8, nil)
	r.bootstrap(can.MakeSet(0, 1, 2, 3))
	r.run(20 * time.Millisecond)
	for i := 4; i < 8; i++ {
		r.nodes[i].st.Join()
	}
	r.nodes[0].st.Leave()
	r.run(2*r.cfg.Tm + 40*time.Millisecond)
	r.requireViews(t, can.MakeSet(1, 2, 3, 4, 5, 6, 7))
}

func TestConfigValidation(t *testing.T) {
	c := testConfig()
	c.Tm = 0
	if c.Validate() == nil {
		t.Fatal("zero Tm accepted")
	}
	c = testConfig()
	c.TjoinWait = c.Tm
	if c.Validate() == nil {
		t.Fatal("TjoinWait <= Tm accepted")
	}
	c = testConfig()
	c.RHA.Trha = c.Tm
	if c.Validate() == nil {
		t.Fatal("Trha >= Tm accepted")
	}
	c = testConfig()
	c.RHA.J = -1
	if c.Validate() == nil {
		t.Fatal("negative J accepted")
	}
}

func TestRHADuplicateSuppressionBound(t *testing.T) {
	// With J=0 the RHA must still converge — the duplicate-suppression
	// abort is an optimization, not a correctness requirement.
	cfg := testConfig()
	cfg.RHA.J = 0
	r := newRigCfg(t, 3, nil, cfg)
	r.bootstrap(can.MakeSet(0, 1))
	r.run(20 * time.Millisecond)
	r.nodes[2].st.Join()
	r.run(2*r.cfg.Tm + 20*time.Millisecond)
	r.requireViews(t, can.MakeSet(0, 1, 2))
}

// TestRHAIntersectionConvergenceProperty checks the algebra the RHA
// convergence rests on: from any multiset of initial vectors, repeated
// pairwise intersection in ANY exchange order converges to the global
// intersection — so the protocol's agreed value is order-independent.
func TestRHAIntersectionConvergenceProperty(t *testing.T) {
	prop := func(raw []uint64, order []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		vectors := make([]can.NodeSet, len(raw))
		global := can.FullSet
		for i, v := range raw {
			vectors[i] = can.NodeSet(v)
			global = global.Intersect(vectors[i])
		}
		// Simulate arbitrary pairwise gossip rounds.
		steps := len(vectors)*len(vectors)*2 + len(order)
		for s := 0; s < steps; s++ {
			var a, b int
			if len(order) > 0 {
				a = int(order[s%len(order)]) % len(vectors)
				b = int(order[(s+1)%len(order)]) % len(vectors)
			} else {
				a, b = s%len(vectors), (s+1)%len(vectors)
			}
			// Deterministic full sweep interleaved to guarantee coverage.
			c, d := s%len(vectors), (s/len(vectors))%len(vectors)
			vectors[a] = vectors[a].Intersect(vectors[b])
			vectors[b] = vectors[a]
			vectors[c] = vectors[c].Intersect(vectors[d])
			vectors[d] = vectors[c]
		}
		for _, v := range vectors {
			if v != global {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRHAStragglerRHVTriggersBenignReexecution(t *testing.T) {
	// An RHV signal arriving at a node with no execution running (e.g. a
	// straggler after END) starts a fresh execution (Figure 7 line r02)
	// that converges to the same view — consistency is preserved, only
	// bandwidth is spent.
	r := newRig(t, 3, nil)
	r.bootstrap(can.MakeSet(0, 1, 2))
	r.run(20 * time.Millisecond)
	// Inject a synthetic RHV broadcast from node 0 outside any execution.
	rhv := can.MakeSet(0, 1, 2)
	if err := r.nodes[0].st.Layer.DataReq(can.RHASign(rhv.Count(), 0), rhv.Bytes()); err != nil {
		t.Fatal(err)
	}
	r.run(3 * r.cfg.Tm)
	r.requireViews(t, can.MakeSet(0, 1, 2))
	for i, nd := range r.nodes {
		if nd.st.RHA.Executions == 0 {
			t.Fatalf("node %d never executed RHA for the straggler", i)
		}
	}
}

func TestRHANonMemberAdoptsReceivedVector(t *testing.T) {
	// A node outside the view (no valid Rf) must adopt the received vector
	// as its initial value (Figure 7 line a05) and deliver the agreed END.
	r := newRig(t, 4, nil)
	r.bootstrap(can.MakeSet(0, 1, 2)) // node 3 not bootstrapped, not joined
	r.run(20 * time.Millisecond)
	// Members run an RHA (triggered by a join of node 3).
	r.nodes[3].st.Join()
	r.run(2*r.cfg.Tm + 20*time.Millisecond)
	if !r.nodes[3].st.Msh.Member() {
		t.Fatalf("non-member never integrated: view=%v", r.nodes[3].st.Msh.View())
	}
	if r.nodes[3].st.Msh.View() != can.MakeSet(0, 1, 2, 3) {
		t.Fatalf("adopted view = %v", r.nodes[3].st.Msh.View())
	}
}

func TestMembershipLeaveDuringJoinCycle(t *testing.T) {
	// A join and the leave of another member land in the same cycle; the
	// single RHA execution must settle both.
	r := newRig(t, 4, nil)
	r.bootstrap(can.MakeSet(0, 1, 2))
	r.run(20 * time.Millisecond)
	r.nodes[3].st.Join()
	r.nodes[1].st.Leave()
	r.run(2*r.cfg.Tm + 20*time.Millisecond)
	r.requireViews(t, can.MakeSet(0, 2, 3))
	execs := r.nodes[0].st.RHA.Executions
	if execs == 0 || execs > 2 {
		t.Fatalf("RHA executions = %d, want 1-2 for a combined cycle", execs)
	}
}
