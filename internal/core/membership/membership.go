package membership

import (
	"fmt"
	"hash/maphash"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
)

// Config parameterizes the site membership protocol (Figure 9).
type Config struct {
	// Tm is the membership cycle period.
	Tm time.Duration
	// TjoinWait is the maximum join wait delay armed when a node requests
	// integration; it must be much longer than Tm (footnote 9). If it
	// expires with no full member active, the joiners bootstrap a view
	// among themselves.
	TjoinWait time.Duration
	// RHA configures the reception history agreement micro-protocol.
	RHA RHAConfig
	// RHAEveryCycle disables the bandwidth-saving skip of Figure 9 line
	// s22: the RHA micro-protocol then runs every membership cycle even
	// with no pending join/leave requests. This exists purely for the
	// ablation benchmarks that quantify the skip's saving.
	RHAEveryCycle bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Tm <= 0 {
		return fmt.Errorf("membership: cycle period Tm must be positive, got %v", c.Tm)
	}
	if c.TjoinWait <= c.Tm {
		return fmt.Errorf("membership: join wait %v must exceed the cycle period %v", c.TjoinWait, c.Tm)
	}
	if c.RHA.Trha >= c.Tm {
		return fmt.Errorf("membership: RHA termination %v must be shorter than the cycle period %v", c.RHA.Trha, c.Tm)
	}
	return c.RHA.Validate()
}

// Change is a membership change notification (msh-can.nty): the set of
// active sites and the set of failed nodes being reported.
type Change struct {
	Active can.NodeSet
	Failed can.NodeSet
	// Left reports the local node's own successful withdrawal: the final
	// notification a leaving node receives.
	Left bool
}

// Protocol is the site membership protocol core at one node. It
// consistently maintains Rf, the site membership view, across node crash
// failures (folded in from the companion failure detection service) and
// node join/leave events (agreed through the RHA micro-protocol).
//
// The core is sans-I/O: it consumes proto.Events and emits proto.Commands.
// Interactions with the companion cores travel as command kinds — CmdFDStart
// and CmdFDStop toward the failure detector, CmdRHARequest toward the RHA —
// routed by the composite core (internal/core) at their position in the
// command stream.
type Protocol struct {
	cfg   Config
	local can.NodeID

	// Protocol data sets (Figure 9 line i01).
	rf     can.NodeSet // site membership view
	rj     can.NodeSet // nodes in a joining process
	rjPrev can.NodeSet // joiners carried from the previous cycle (footnote 10)
	rl     can.NodeSet // nodes requesting withdrawal
	fset   can.NodeSet // crash failures detected this cycle

	// Cycles counts membership cycle completions (diagnostics).
	Cycles int
	left   bool

	// sawActivity records evidence of active full members observed while
	// the local node is not integrated (RHA executions, life-signs,
	// application traffic). It gates the cold-start bootstrap: a joining
	// node whose join wait elapsed retries the join when full members are
	// demonstrably active, instead of bootstrapping a spurious singleton
	// view. The paper's pseudocode (line s18) assumes the timer can only
	// expire at a non-integrated node when "no full-member is active";
	// this flag is what makes that assumption checkable.
	sawActivity bool
}

// New creates the membership protocol core for the given node.
func New(local can.NodeID, cfg Config) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !local.Valid() {
		return nil, fmt.Errorf("membership: invalid local node id %d", local)
	}
	return &Protocol{cfg: cfg, local: local}, nil
}

// Clone returns an independent deep copy of the core.
func (p *Protocol) Clone() *Protocol {
	c := *p
	return &c
}

// Quiescent reports that no membership work is pending: no join, leave or
// failure residue awaits the next cycle, and no stale join request is
// carried over. From a quiescent state an idle cycle re-arms the timer and
// bumps the diagnostic counter without touching the view. The exploration
// engine's settle shortcut keys on it.
func (p *Protocol) Quiescent() bool {
	return p.rj.Empty() && p.rjPrev.Empty() && p.rl.Empty() && p.fset.Empty()
}

// SharedSets: the sets of Figure 7 line i04 the RHA core reads live.
func (p *Protocol) FullMembers() can.NodeSet { return p.rf }

// Joining returns Rj (see SharedSets).
func (p *Protocol) Joining() can.NodeSet { return p.rj }

// Leaving returns Rl (see SharedSets).
func (p *Protocol) Leaving() can.NodeSet { return p.rl }

var _ SharedSets = (*Protocol)(nil)

// View returns Rf, the current site membership view.
func (p *Protocol) View() can.NodeSet { return p.rf }

// Member reports whether the local node is currently a full member.
func (p *Protocol) Member() bool { return p.rf.Contains(p.local) }

// Fingerprint writes the protocol's complete mutable state into h: the
// five protocol data sets of Figure 9 plus the cycle counter and the two
// boolean latches.
func (p *Protocol) Fingerprint(h *maphash.Hash) {
	proto.HashU64(h, uint64(p.local))
	proto.HashU64(h, uint64(p.rf))
	proto.HashU64(h, uint64(p.rj))
	proto.HashU64(h, uint64(p.rjPrev))
	proto.HashU64(h, uint64(p.rl))
	proto.HashU64(h, uint64(p.fset))
	proto.HashU64(h, uint64(p.Cycles))
	proto.HashBool(h, p.left)
	proto.HashBool(h, p.sawActivity)
}

// Step consumes one event and returns a fresh command slice (nil when the
// event produced no action). Compatibility wrapper over StepInto.
func (p *Protocol) Step(ev proto.Event) []proto.Command {
	var buf proto.CommandBuf
	p.StepInto(ev, &buf)
	return buf.Commands()
}

// StepInto consumes one event, appending the resulting commands to buf.
func (p *Protocol) StepInto(ev proto.Event, buf *proto.CommandBuf) {
	switch ev.Kind {
	case proto.EvBootstrap:
		p.bootstrap(ev.View, buf)
	case proto.EvJoin:
		p.join(buf)
	case proto.EvLeave:
		p.leave(buf)
	case proto.EvRTRInd:
		p.onRTRInd(ev.MID)
	case proto.EvDataNty:
		p.onDataNty(ev.MID)
	case proto.EvFDNty:
		p.onFDNty(ev.Node, buf)
	case proto.EvTimerFired:
		if ev.Timer == proto.TimerMshCycle {
			p.cycle(true, buf)
		}
	case proto.EvRHAInit:
		// Resynchronize the membership cycle when an execution of the RHA
		// micro-protocol starts (line s17, first disjunct).
		if !p.rf.Contains(p.local) {
			p.sawActivity = true
		}
		p.cycle(false, buf)
	case proto.EvRHAEnd:
		p.onRHAEnd(ev.View, buf)
	}
}

// bootstrap installs a pre-agreed initial view, starts the membership cycle
// and begins failure-detection surveillance of every member. The paper
// describes steady-state operation; bootstrapping with a static initial
// configuration is the standard way such systems come up (the alternative —
// concurrent joins onto an empty bus — also works, via Join).
func (p *Protocol) bootstrap(view can.NodeSet, buf *proto.CommandBuf) {
	if !view.Contains(p.local) {
		panic(fmt.Sprintf("membership: bootstrap view %v omits local node %v", view, p.local))
	}
	p.rf = view
	buf.Put(proto.SetTimer(proto.TimerMshCycle, p.cfg.Tm))
	for s := view; !s.Empty(); {
		r := s.Lowest()
		s = s.Remove(r)
		buf.Put(proto.FDStart(r))
	}
}

// join requests integration of the local node into the set of active sites
// (msh-can.req(JOIN), lines s00–s03).
func (p *Protocol) join(buf *proto.CommandBuf) {
	if p.rf.Contains(p.local) {
		return
	}
	p.left = false
	p.sawActivity = false
	buf.Put(proto.SetTimer(proto.TimerMshCycle, p.cfg.TjoinWait))
	buf.Put(proto.SendRTR(can.JoinSign(p.local)))
	buf.Put(proto.TraceJoinRequested())
}

// leave requests withdrawal of the local node from the site membership
// view (msh-can.req(LEAVE), lines s07–s09).
func (p *Protocol) leave(buf *proto.CommandBuf) {
	if !p.rf.Contains(p.local) {
		return
	}
	buf.Put(proto.SendRTR(can.LeaveSign(p.local)))
	buf.Put(proto.TraceLeaveRequested())
}

// onRTRInd collects join/leave requests (lines s04–s06, s10–s12). Local
// and remote requests are handled identically: both arrive through the
// bus, own transmissions included.
func (p *Protocol) onRTRInd(mid can.MID) {
	switch mid.Type {
	case can.TypeJoin:
		p.rj = p.rj.Add(can.NodeID(mid.Param))
	case can.TypeLeave:
		p.rl = p.rl.Add(can.NodeID(mid.Param))
	case can.TypeELS:
		// A life-sign proves a full member is active.
		if !p.rf.Contains(p.local) && can.NodeID(mid.Param) != p.local {
			p.sawActivity = true
		}
	}
}

// onDataNty observes application traffic from other nodes as evidence of
// active members while the local node is not yet integrated.
func (p *Protocol) onDataNty(mid can.MID) {
	if mid.Type == can.TypeData && !p.rf.Contains(p.local) && mid.Src != p.local {
		p.sawActivity = true
	}
}

// onFDNty folds a consistently-signalled node crash into the protocol
// (lines s13–s16): the failure is accumulated for the cycle's view update
// and a membership change is notified immediately.
func (p *Protocol) onFDNty(r can.NodeID, buf *proto.CommandBuf) {
	if !r.Valid() {
		return
	}
	p.fset = p.fset.Add(r)
	p.changeNty(p.rf.Diff(p.fset), can.MakeSet(r), buf)
}

// cycle implements lines s17–s27; timerExpired distinguishes the cycle
// timer disjunct of line s17 from the RHA-init disjunct.
func (p *Protocol) cycle(timerExpired bool, buf *proto.CommandBuf) {
	if p.left {
		return
	}
	if timerExpired && !p.rf.Contains(p.local) {
		if p.sawActivity {
			// Full members are demonstrably active but our join did not
			// integrate (e.g. the JOIN frame was inconsistently omitted at
			// some members, or we were expelled after an inconsistent
			// failure): retry the join rather than bootstrapping a
			// spurious parallel view.
			p.sawActivity = false
			buf.Put(proto.SetTimer(proto.TimerMshCycle, p.cfg.TjoinWait))
			buf.Put(proto.SendRTR(can.JoinSign(p.local)))
			buf.Put(proto.TraceJoinRetried())
			return
		}
		// The join wait elapsed with no full member active: the joiners
		// bootstrap the view among themselves (lines s18–s20).
		p.rf = p.rj
	}
	buf.Put(proto.SetTimer(proto.TimerMshCycle, p.cfg.Tm))
	p.Cycles++
	if !p.rj.Empty() || !p.rl.Empty() || p.cfg.RHAEveryCycle {
		buf.Put(proto.RHARequest())
	} else {
		p.viewProc(p.rf, buf)
	}
}

// onRHAEnd applies the agreed reception history vector (lines s28–s34).
func (p *Protocol) onRHAEnd(rhv can.NodeSet, buf *proto.CommandBuf) {
	old := p.rf
	wasMember := old.Contains(p.local)
	p.viewProc(rhv, buf)
	joinersIn := !p.rj.Intersect(p.rf).Empty()
	leaversOut := !p.rl.Diff(p.rf).Empty()
	if joinersIn || leaversOut {
		p.changeNty(p.rf, can.EmptySet, buf)
	}
	p.dataProc(wasMember, p.rf.Diff(old), buf)
}

// viewProc implements msh-view-proc (lines a00–a02): the new view is the
// agreed set minus the failures detected during the cycle.
func (p *Protocol) viewProc(rw can.NodeSet, buf *proto.CommandBuf) {
	old := p.rf
	p.rf = rw.Diff(p.fset)
	p.fset = can.EmptySet
	if p.rf != old {
		buf.Put(proto.TraceViewChange(old, p.rf))
	}
}

// dataProc implements msh-data-proc (lines a03–a09): start failure
// detection for integrated joiners and every node that (re)entered the
// agreed view, expire stale join requests after two cycles (footnote 10),
// stop surveillance of withdrawn nodes.
//
// entered is Rf − Rf_old: the nodes this view change admitted. Surveillance
// must cover them even when they never filed a join request — an agreed
// vector built from a peer's not-yet-folded Rf can readmit a node whose
// failure this node already folded, and without re-monitoring (and without
// resetting the FDA diffusion counters) such a resurrected node could never
// be expelled again: the stale counters would swallow the fresh
// failure-sign request. The interleaving explorer finds exactly this
// divergence when a failure agreement races the RHA termination alarms.
func (p *Protocol) dataProc(wasMember bool, entered can.NodeSet, buf *proto.CommandBuf) {
	for s := entered; !s.Empty(); {
		r := s.Lowest()
		s = s.Remove(r)
		buf.Put(proto.FDAForget(r))
	}
	toStart := p.rj.Intersect(p.rf).Union(entered)
	if !wasMember && p.rf.Contains(p.local) {
		// The local node just became a member: begin surveillance of the
		// entire view (the paper omits this detail; existing members
		// already monitor each other, the newcomer must catch up).
		toStart = p.rf
	}
	for s := toStart; !s.Empty(); {
		r := s.Lowest()
		s = s.Remove(r)
		buf.Put(proto.FDStart(r))
	}
	// A join request that failed to integrate (inconsistent reception of
	// the JOIN frame at some members) is retried for one further cycle and
	// then dropped, so Rj cannot grow without bound.
	p.rj = p.rj.Diff(p.rf).Diff(p.rjPrev)
	p.rjPrev = p.rj
	for s := p.rl.Diff(p.rf); !s.Empty(); {
		r := s.Lowest()
		s = s.Remove(r)
		buf.Put(proto.FDStop(r))
	}
	p.rl = p.rl.Intersect(p.rf)
}

// changeNty implements msh-chg-nty (lines a10–a18): full members receive
// the change; a node whose withdrawal completed receives its final
// notification and stops cycling.
func (p *Protocol) changeNty(rw, fw can.NodeSet, buf *proto.CommandBuf) {
	switch {
	case p.rf.Contains(p.local):
		buf.Put(proto.NotifyView(rw, fw, false))
	case p.rl.Contains(p.local):
		p.left = true
		// The node is out: stop cycling, stop signalling activity (the
		// local ELS generator) and deliver the final notification.
		buf.Put(proto.CancelTimer(proto.TimerMshCycle))
		buf.Put(proto.FDStop(p.local))
		buf.Put(proto.NotifyView(p.rf, can.MakeSet(p.local), true))
	}
}
